package lp

import (
	"errors"
	"fmt"

	"repro/internal/rat"
)

// ErrIterationLimit is returned when the pivot budget is exhausted.
// With Bland's rule over exact rationals this indicates a genuinely
// enormous problem rather than cycling.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

// maxPivotsFactor bounds pivots at factor*(rows+cols), a generous
// budget for the platform-sized programs of this package.
const maxPivotsFactor = 200

// colKind distinguishes tableau columns for extraction and duals.
type colKind int8

const (
	colStruct  colKind = iota
	colSlack           // +1 coefficient in its row (LE rows)
	colSurplus         // -1 coefficient in its row (GE rows)
	colArtificial
)

// column describes one tableau column.
type column struct {
	kind colKind
	vr   Var  // for colStruct: the model variable
	neg  bool // for colStruct: the negative part of a free variable
	row  int  // for slack/surplus/artificial: the owning row
}

// stdRow is a standardized constraint row.
type stdRow struct {
	coef    []rat.Rat // over structural columns
	op      Op
	rhs     rat.Rat
	conIdx  int  // index into model.cons, or -1 for an upper-bound row
	flipped bool // row was negated to make rhs >= 0
	origin  int  // row index at tableau construction (before removals)
}

// tableau is a dense simplex tableau in canonical (basis = identity)
// form with an incrementally maintained reduced-cost vector.
type tableau struct {
	a      [][]rat.Rat // m x n
	b      []rat.Rat   // m
	basis  []int       // m
	banned []bool      // n: artificial columns excluded in phase 2
	d      []rat.Rat   // n reduced costs (c_j - c_B B^-1 A_j)
	cols   []column
	rows   []stdRow // parallel to a (after any redundant-row removal)
}

// Solve runs the exact two-phase primal simplex with Bland's rule and
// returns an exact rational optimum (or Infeasible/Unbounded status).
func (m *Model) Solve() (*Solution, error) {
	t := m.standardize()
	limit := maxPivotsFactor * (len(t.a) + len(t.cols) + 1)

	// Phase 1: maximize -(sum of artificials).
	c1 := make([]rat.Rat, len(t.cols))
	hasArt := false
	for j, col := range t.cols {
		if col.kind == colArtificial {
			c1[j] = rat.FromInt(-1)
			hasArt = true
		}
	}
	if hasArt {
		t.priceOut(c1)
		if err := t.iterate(limit); err != nil {
			return nil, fmt.Errorf("phase 1: %w", err)
		}
		if t.objective(c1).Sign() != 0 {
			return &Solution{Status: Infeasible, model: m}, nil
		}
		t.banArtificials()
	}

	// Phase 2: real objective (negated for minimization).
	c2 := make([]rat.Rat, len(t.cols))
	for j, col := range t.cols {
		if col.kind != colStruct {
			continue
		}
		c := m.obj[col.vr]
		if col.neg {
			c = c.Neg()
		}
		if m.sense == Minimize {
			c = c.Neg()
		}
		c2[j] = c
	}
	t.priceOut(c2)
	if err := t.iterate(limit); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded, model: m}, nil
		}
		return nil, fmt.Errorf("phase 2: %w", err)
	}

	// Extract primal values.
	values := make([]rat.Rat, m.NumVars())
	for i, bj := range t.basis {
		col := t.cols[bj]
		if col.kind != colStruct {
			continue
		}
		if col.neg {
			values[col.vr] = values[col.vr].Sub(t.b[i])
		} else {
			values[col.vr] = values[col.vr].Add(t.b[i])
		}
	}
	obj := m.ObjectiveAt(values)

	// Extract duals: y_i from the reduced cost of the column that was
	// the identity column of row i (slack: y=-d, surplus: y=+d,
	// artificial: y=-d). Flip back rows that were negated.
	duals := make([]rat.Rat, m.NumCons())
	for j, col := range t.cols {
		var y rat.Rat
		switch col.kind {
		case colSlack, colArtificial:
			y = t.d[j].Neg()
		case colSurplus:
			y = t.d[j]
		default:
			continue
		}
		r := t.rowByOrigin(col.row)
		if r == nil || r.conIdx < 0 {
			continue
		}
		if r.flipped {
			y = y.Neg()
		}
		if m.sense == Minimize {
			y = y.Neg()
		}
		duals[r.conIdx] = y
	}

	return &Solution{
		Status:    Optimal,
		Objective: obj,
		values:    values,
		duals:     duals,
		model:     m,
	}, nil
}

// rowByOrigin finds the surviving row whose identity column was
// created for original (pre-removal) row index orig.
func (t *tableau) rowByOrigin(orig int) *stdRow {
	if orig < len(t.rows) && t.rows[orig].origin == orig {
		return &t.rows[orig]
	}
	for i := range t.rows {
		if t.rows[i].origin == orig {
			return &t.rows[i]
		}
	}
	return nil
}

// standardize converts the model to equational form with rhs >= 0 and
// an all-identity starting basis of slacks/artificials.
func (m *Model) standardize() *tableau {
	// Structural columns.
	var cols []column
	structOf := make([]int, m.NumVars()) // var -> first (positive) column
	for v := 0; v < m.NumVars(); v++ {
		structOf[v] = len(cols)
		cols = append(cols, column{kind: colStruct, vr: Var(v)})
		if m.free[v] {
			cols = append(cols, column{kind: colStruct, vr: Var(v), neg: true})
		}
	}
	nStruct := len(cols)

	// Rows: constraints then upper bounds.
	var rows []stdRow
	addRow := func(coefVar map[Var]rat.Rat, op Op, rhs rat.Rat, conIdx int) {
		coef := make([]rat.Rat, nStruct)
		for v, c := range coefVar {
			j := structOf[v]
			coef[j] = coef[j].Add(c)
			if m.free[v] {
				coef[j+1] = coef[j+1].Sub(c)
			}
		}
		flipped := false
		if rhs.Sign() < 0 {
			flipped = true
			rhs = rhs.Neg()
			for j := range coef {
				coef[j] = coef[j].Neg()
			}
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows = append(rows, stdRow{coef: coef, op: op, rhs: rhs, conIdx: conIdx, flipped: flipped})
	}
	for i, c := range m.cons {
		cv := make(map[Var]rat.Rat, len(c.Expr))
		for _, term := range c.Expr {
			cv[term.Var] = cv[term.Var].Add(term.Coef)
		}
		addRow(cv, c.Op, c.RHS, i)
	}
	for v := 0; v < m.NumVars(); v++ {
		if m.hasUp[v] {
			addRow(map[Var]rat.Rat{Var(v): rat.One()}, LE, m.upper[v], -1)
		}
	}

	// Slack/surplus/artificial columns and the initial basis.
	mRows := len(rows)
	t := &tableau{
		a:     make([][]rat.Rat, mRows),
		b:     make([]rat.Rat, mRows),
		basis: make([]int, mRows),
	}
	for i := range rows {
		rows[i].origin = i
	}
	for i, r := range rows {
		switch r.op {
		case LE:
			cols = append(cols, column{kind: colSlack, row: i})
		case GE:
			cols = append(cols, column{kind: colSurplus, row: i})
			cols = append(cols, column{kind: colArtificial, row: i})
		case EQ:
			cols = append(cols, column{kind: colArtificial, row: i})
		}
	}
	n := len(cols)
	for i, r := range rows {
		row := make([]rat.Rat, n)
		copy(row, r.coef)
		t.a[i] = row
		t.b[i] = r.rhs
	}
	for j, col := range cols {
		switch col.kind {
		case colSlack:
			t.a[col.row][j] = rat.One()
			t.basis[col.row] = j
		case colSurplus:
			t.a[col.row][j] = rat.FromInt(-1)
		case colArtificial:
			t.a[col.row][j] = rat.One()
			t.basis[col.row] = j
		}
	}
	t.cols = cols
	t.rows = rows
	t.banned = make([]bool, n)
	t.d = make([]rat.Rat, n)
	return t
}

// priceOut initializes the reduced costs d_j = c_j - c_B B^-1 A_j for
// the current basis and cost vector c.
func (t *tableau) priceOut(c []rat.Rat) {
	for j := range t.d {
		t.d[j] = c[j]
	}
	for i, bj := range t.basis {
		cb := c[bj]
		if cb.IsZero() {
			continue
		}
		for j := range t.d {
			if t.a[i][j].IsZero() {
				continue
			}
			t.d[j] = t.d[j].Sub(cb.Mul(t.a[i][j]))
		}
	}
}

// objective returns c_B . b for the current basis.
func (t *tableau) objective(c []rat.Rat) rat.Rat {
	z := rat.Zero()
	for i, bj := range t.basis {
		z = z.Add(c[bj].Mul(t.b[i]))
	}
	return z
}

var errUnbounded = errors.New("lp: unbounded")

// iterate runs Bland-rule pivots until optimality (all d_j <= 0 over
// unbanned columns) or unboundedness.
func (t *tableau) iterate(limit int) error {
	for iter := 0; ; iter++ {
		if iter > limit {
			return ErrIterationLimit
		}
		// Entering: smallest-index unbanned column with d > 0.
		enter := -1
		for j := range t.d {
			if !t.banned[j] && t.d[j].Sign() > 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil
		}
		// Leaving: min ratio b_i / a_ie over a_ie > 0; ties by
		// smallest basic variable index (Bland).
		leave := -1
		var best rat.Rat
		for i := range t.a {
			aie := t.a[i][enter]
			if aie.Sign() <= 0 {
				continue
			}
			ratio := t.b[i].Div(aie)
			if leave < 0 || ratio.Less(best) ||
				(ratio.Equal(best) && t.basis[i] < t.basis[leave]) {
				leave, best = i, ratio
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot performs a full tableau pivot on (r, e), keeping b, a and the
// reduced costs canonical for the new basis.
func (t *tableau) pivot(r, e int) {
	piv := t.a[r][e]
	inv := piv.Inv()
	row := t.a[r]
	for j := range row {
		if !row[j].IsZero() {
			row[j] = row[j].Mul(inv)
		}
	}
	t.b[r] = t.b[r].Mul(inv)
	for i := range t.a {
		if i == r {
			continue
		}
		f := t.a[i][e]
		if f.IsZero() {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			if !row[j].IsZero() {
				ai[j] = ai[j].Sub(f.Mul(row[j]))
			}
		}
		t.b[i] = t.b[i].Sub(f.Mul(t.b[r]))
	}
	f := t.d[e]
	if !f.IsZero() {
		for j := range t.d {
			if !row[j].IsZero() {
				t.d[j] = t.d[j].Sub(f.Mul(row[j]))
			}
		}
	}
	t.basis[r] = e
}

// banArtificials excludes artificial columns after phase 1, pivoting
// out any artificial that is still (degenerately) basic and dropping
// rows that turn out to be redundant.
func (t *tableau) banArtificials() {
	for j, col := range t.cols {
		if col.kind == colArtificial {
			t.banned[j] = true
		}
	}
	for i := 0; i < len(t.a); i++ {
		bj := t.basis[i]
		if t.cols[bj].kind != colArtificial {
			continue
		}
		// Degenerate artificial basic at value 0: pivot it out on any
		// unbanned nonzero coefficient (rhs is 0, so any sign is safe).
		pivoted := false
		for j := range t.cols {
			if t.banned[j] || t.cols[j].kind == colArtificial {
				continue
			}
			if !t.a[i][j].IsZero() {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: remove it.
			last := len(t.a) - 1
			t.a[i], t.a[last] = t.a[last], t.a[i]
			t.b[i], t.b[last] = t.b[last], t.b[i]
			t.basis[i], t.basis[last] = t.basis[last], t.basis[i]
			t.rows[i], t.rows[last] = t.rows[last], t.rows[i]
			t.a = t.a[:last]
			t.b = t.b[:last]
			t.basis = t.basis[:last]
			t.rows = t.rows[:last]
			i--
		}
	}
}
