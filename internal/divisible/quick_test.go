package divisible

import (
	"testing"
	"testing/quick"

	"repro/pkg/steady/rat"
)

// quickStar maps raw bytes to a star instance with 1..5 workers.
func quickStar(raw []byte) *Star {
	if len(raw) < 3 {
		return nil
	}
	s := &Star{MasterW: rat.FromInt(int64(raw[0]%5) + 1)}
	for i := 1; i+1 < len(raw) && len(s.W) < 5; i += 2 {
		s.W = append(s.W, rat.FromInt(int64(raw[i]%5)+1))
		s.C = append(s.C, rat.FromInt(int64(raw[i+1]%5)+1))
	}
	if len(s.W) == 0 {
		return nil
	}
	return s
}

// TestQuickOneRoundInvariants: chunks sum to W, every participant
// finishes exactly at the makespan, and the makespan respects the
// steady-state lower bound.
func TestQuickOneRoundInvariants(t *testing.T) {
	f := func(raw []byte, wRaw uint8) bool {
		s := quickStar(raw)
		if s == nil {
			return true
		}
		W := rat.FromInt(int64(wRaw%50) + 1)
		order := make([]int, len(s.W))
		for i := range order {
			order[i] = i
		}
		M, chunks, err := s.OneRound(order, W)
		if err != nil {
			return false
		}
		if !rat.Sum(chunks...).Equal(W) {
			return false
		}
		// Master completion.
		if !s.MasterW.Mul(chunks[0]).Equal(M) {
			return false
		}
		// Worker completions.
		clock := rat.Zero()
		for _, i := range order {
			clock = clock.Add(s.C[i].Mul(chunks[i+1]))
			if !clock.Add(s.W[i].Mul(chunks[i+1])).Equal(M) {
				return false
			}
		}
		// Steady-state bound.
		rate, err := s.SteadyStateRate()
		if err != nil {
			return false
		}
		return !M.Less(W.Div(rate))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMultiRoundMonotone: without latencies, doubling the rounds
// never hurts, and every makespan respects the bound.
func TestQuickMultiRoundMonotone(t *testing.T) {
	f := func(raw []byte) bool {
		s := quickStar(raw)
		if s == nil {
			return true
		}
		W := rat.FromInt(60)
		rate, err := s.SteadyStateRate()
		if err != nil {
			return false
		}
		lb := W.Div(rate)
		prev := rat.Zero()
		for ri, rounds := range []int{1, 2, 4, 8} {
			m, err := s.MultiRound(W, rounds)
			if err != nil {
				return false
			}
			if m.Less(lb) {
				return false
			}
			if ri > 0 && m.Cmp(prev) > 0 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
