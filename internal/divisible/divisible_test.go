package divisible

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/rat"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rr(n, d int64) rat.Rat { return rat.New(n, d) }

func simpleStar() *Star {
	return &Star{
		MasterW: ri(2),
		W:       []rat.Rat{ri(1), ri(3)},
		C:       []rat.Rat{ri(1), ri(2)},
	}
}

func TestValidate(t *testing.T) {
	if err := simpleStar().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Star{
		{},
		{W: []rat.Rat{ri(1)}, C: nil},
		{W: []rat.Rat{ri(0)}, C: []rat.Rat{ri(1)}},
		{W: []rat.Rat{ri(1)}, C: []rat.Rat{ri(0)}},
		{MasterW: ri(-1), W: []rat.Rat{ri(1)}, C: []rat.Rat{ri(1)}},
		{W: []rat.Rat{ri(1)}, C: []rat.Rat{ri(1)}, L: []rat.Rat{ri(-1)}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestOneRoundSimultaneousCompletion verifies the defining optimality
// property of the closed form: every participant finishes exactly at
// the makespan.
func TestOneRoundSimultaneousCompletion(t *testing.T) {
	s := simpleStar()
	W := ri(10)
	M, chunks, err := s.OneRound([]int{0, 1}, W)
	if err != nil {
		t.Fatal(err)
	}
	// Master: w_m * x_0 == M.
	if !s.MasterW.Mul(chunks[0]).Equal(M) {
		t.Fatalf("master finishes at %v != %v", s.MasterW.Mul(chunks[0]), M)
	}
	// Worker finish times.
	clock := rat.Zero()
	for _, i := range []int{0, 1} {
		clock = clock.Add(s.C[i].Mul(chunks[i+1]))
		finish := clock.Add(s.W[i].Mul(chunks[i+1]))
		if !finish.Equal(M) {
			t.Fatalf("worker %d finishes at %v != makespan %v", i, finish, M)
		}
	}
	// Chunks cover the whole load.
	total := rat.Sum(chunks...)
	if !total.Equal(W) {
		t.Fatalf("chunks sum to %v != %v", total, W)
	}
}

func TestOneRoundLinearInLoad(t *testing.T) {
	// Without latencies the closed form is homogeneous: M(2W) = 2M(W).
	s := simpleStar()
	m1, _, err := s.OneRound([]int{0, 1}, ri(5))
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := s.OneRound([]int{0, 1}, ri(10))
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Equal(m1.Mul(ri(2))) {
		t.Fatalf("M not linear: %v vs %v", m1, m2)
	}
}

func TestOneRoundOrderErrors(t *testing.T) {
	s := simpleStar()
	for _, order := range [][]int{{0}, {0, 0}, {0, 5}} {
		if _, _, err := s.OneRound(order, ri(1)); err == nil {
			t.Errorf("order %v: expected error", order)
		}
	}
	if _, _, err := s.OneRound([]int{0, 1}, ri(0)); err == nil {
		t.Fatal("expected load error")
	}
}

// TestBestOrderIsCheapLinkFirst checks the classical result on random
// instances: some cheapest-link-first order achieves the best
// single-round makespan.
func TestBestOrderIsCheapLinkFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		s := &Star{MasterW: ri(1 + rng.Int63n(5))}
		for i := 0; i < n; i++ {
			s.W = append(s.W, ri(1+rng.Int63n(5)))
			s.C = append(s.C, ri(1+rng.Int63n(5)))
		}
		best, _, err := s.BestOneRound(ri(20))
		if err != nil {
			t.Fatal(err)
		}
		// Cheap-link-first order (stable on ties).
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i := 1; i < n; i++ {
			for j := i; j > 0 && s.C[order[j]].Less(s.C[order[j-1]]); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		m, _, err := s.OneRound(order, ri(20))
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(best) {
			t.Fatalf("trial %d: cheap-first %v != best %v (C=%v)", trial, m, best, s.C)
		}
	}
}

func TestSteadyStateRateBoundsOneRound(t *testing.T) {
	// W / rate is a lower bound on any makespan.
	s := simpleStar()
	rate, err := s.SteadyStateRate()
	if err != nil {
		t.Fatal(err)
	}
	W := ri(50)
	m, _, err := s.OneRound([]int{0, 1}, W)
	if err != nil {
		t.Fatal(err)
	}
	if m.Less(W.Div(rate)) {
		t.Fatalf("one round %v beats the steady-state bound %v", m, W.Div(rate))
	}
}

func TestMultiRoundConvergesToSteadyState(t *testing.T) {
	// Without latencies, more rounds always helps and the makespan
	// tends to W / rate (the §5.2 story with C = 0).
	s := simpleStar()
	W := ri(100)
	rate, _ := s.SteadyStateRate()
	lb := W.Div(rate)
	prev := rat.Zero()
	first := true
	for _, rounds := range []int{1, 2, 4, 16, 64, 256} {
		m, err := s.MultiRound(W, rounds)
		if err != nil {
			t.Fatal(err)
		}
		if m.Less(lb) {
			t.Fatalf("rounds=%d: %v beats lower bound %v", rounds, m, lb)
		}
		if !first && m.Cmp(prev) > 0 {
			t.Fatalf("rounds=%d: makespan increased %v -> %v", rounds, prev, m)
		}
		prev, first = m, false
	}
	// Within 2% at 256 rounds.
	gap := prev.Sub(lb).Div(lb)
	if gap.Cmp(rr(1, 50)) > 0 {
		t.Fatalf("256 rounds still %v away from the bound", gap)
	}
}

func TestMultiRoundLatencyTradeoff(t *testing.T) {
	// With per-message latency the optimal number of rounds is
	// interior: makespan(m) decreases then increases — the sqrt
	// trade-off of §5.2.
	s := simpleStar()
	s.L = []rat.Rat{ri(2), ri(2)}
	W := ri(200)
	var ms []rat.Rat
	rounds := []int{1, 2, 4, 8, 16, 64, 256}
	for _, r := range rounds {
		m, err := s.MultiRound(W, r)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	// Find the argmin; it must be strictly inside the range.
	best := 0
	for i := range ms {
		if ms[i].Less(ms[best]) {
			best = i
		}
	}
	if best == 0 || best == len(ms)-1 {
		t.Fatalf("optimum at the boundary (%d rounds): %v", rounds[best], ms)
	}
}

func TestOneRoundWithLatencies(t *testing.T) {
	s := simpleStar()
	s.L = []rat.Rat{ri(1), ri(1)}
	mLat, _, err := s.OneRound([]int{0, 1}, ri(10))
	if err != nil {
		t.Fatal(err)
	}
	s.L = nil
	mNo, _, err := s.OneRound([]int{0, 1}, ri(10))
	if err != nil {
		t.Fatal(err)
	}
	if !mNo.Less(mLat) {
		t.Fatalf("latency did not increase the makespan: %v vs %v", mNo, mLat)
	}
}

func TestMultiRoundErrors(t *testing.T) {
	s := simpleStar()
	if _, err := s.MultiRound(ri(10), 0); err == nil {
		t.Fatal("expected rounds error")
	}
	if _, err := s.MultiRound(ri(0), 1); err == nil {
		t.Fatal("expected load error")
	}
}

func TestMasterlessStar(t *testing.T) {
	s := &Star{
		W: []rat.Rat{ri(2)},
		C: []rat.Rat{ri(1)},
	}
	M, chunks, err := s.OneRound([]int{0}, ri(6))
	if err != nil {
		t.Fatal(err)
	}
	if !chunks[0].IsZero() {
		t.Fatal("master without compute got a chunk")
	}
	// 6 units: send 6*1, compute 6*2, finish = 6 + 12 = 18.
	if !M.Equal(ri(18)) {
		t.Fatalf("makespan %v, want 18", M)
	}
}
