// Package divisible implements divisible-load scheduling on star
// platforms — the application the paper cites as an early success of
// the steady-state strategy ("It was successfully applied to
// divisible load computations in [8]", §5.2; also listed in §6).
//
// A divisible load of W units can be split arbitrarily. The master
// sends each worker one chunk per round over its link (one-port: the
// master serves workers sequentially), and computation overlaps
// communication. Everything is exact rational arithmetic.
package divisible

import (
	"fmt"

	"repro/pkg/steady/rat"
)

// Star describes the divisible-load platform: a master that can
// optionally compute, and n workers behind dedicated links.
type Star struct {
	// MasterW is the master's time per load unit (zero sign = master
	// does not compute).
	MasterW rat.Rat
	// W[i] is worker i's time per load unit; C[i] its link's time per
	// load unit; L[i] an optional per-message start-up latency.
	W []rat.Rat
	C []rat.Rat
	L []rat.Rat
}

// Validate checks the instance.
func (s *Star) Validate() error {
	if len(s.W) == 0 {
		return fmt.Errorf("divisible: no workers")
	}
	if len(s.C) != len(s.W) || (s.L != nil && len(s.L) != len(s.W)) {
		return fmt.Errorf("divisible: mismatched lengths")
	}
	if s.MasterW.Sign() < 0 {
		return fmt.Errorf("divisible: negative master weight")
	}
	for i := range s.W {
		if s.W[i].Sign() <= 0 || s.C[i].Sign() <= 0 {
			return fmt.Errorf("divisible: worker %d needs positive w and c", i)
		}
		if s.L != nil && s.L[i].Sign() < 0 {
			return fmt.Errorf("divisible: negative latency")
		}
	}
	return nil
}

func (s *Star) latency(i int) rat.Rat {
	if s.L == nil {
		return rat.Zero()
	}
	return s.L[i]
}

// OneRound computes the optimal single-round distribution of load W
// for the given worker activation order: the classical closed form
// where every participant finishes at the same instant (any slack
// could be re-distributed, so simultaneous completion is necessary at
// the optimum). It returns the makespan and the chunk sizes (index 0
// is the master's own share when it computes).
//
// Derivation: with activation order o(1..n), worker o(k) starts
// receiving when o(k-1)'s transfer ends and finishes at
// sum_{j<=k} (L_j + c_j x_j) + w_k x_k = M. All x are linear in M, so
// x_k = a_k M + b_k with
//
//	a_k = (1 - sum_{j<k} c_j a_j) / (c_k + w_k)
//	b_k = -(sum_{j<k} (L_j + c_j b_j) + L_k) / (c_k + w_k)
//
// and M solves sum x = W.
func (s *Star) OneRound(order []int, W rat.Rat) (makespan rat.Rat, chunks []rat.Rat, err error) {
	if err := s.Validate(); err != nil {
		return rat.Zero(), nil, err
	}
	if W.Sign() <= 0 {
		return rat.Zero(), nil, fmt.Errorf("divisible: load must be positive")
	}
	if len(order) != len(s.W) {
		return rat.Zero(), nil, fmt.Errorf("divisible: order must list every worker")
	}
	seen := make([]bool, len(s.W))
	for _, i := range order {
		if i < 0 || i >= len(s.W) || seen[i] {
			return rat.Zero(), nil, fmt.Errorf("divisible: bad order")
		}
		seen[i] = true
	}

	// x = a*M + b per participant; master first (no communication).
	var aSum, bSum rat.Rat
	masterComputes := s.MasterW.Sign() > 0
	var aM rat.Rat
	if masterComputes {
		aM = s.MasterW.Inv() // x_m = M / w_m
		aSum = aSum.Add(aM)
	}
	// Prefix of the master's sending timeline: sum (L_j + c_j x_j).
	prefA, prefB := rat.Zero(), rat.Zero()
	aW := make([]rat.Rat, len(order))
	bW := make([]rat.Rat, len(order))
	for k, i := range order {
		den := s.C[i].Add(s.W[i])
		aW[k] = rat.One().Sub(prefA).Div(den)
		bW[k] = prefB.Add(s.latency(i)).Neg().Div(den)
		prefA = prefA.Add(s.C[i].Mul(aW[k]))
		prefB = prefB.Add(s.latency(i)).Add(s.C[i].Mul(bW[k]))
		aSum = aSum.Add(aW[k])
		bSum = bSum.Add(bW[k])
	}
	if aSum.Sign() <= 0 {
		return rat.Zero(), nil, fmt.Errorf("divisible: degenerate instance")
	}
	M := W.Sub(bSum).Div(aSum)

	chunks = make([]rat.Rat, len(s.W)+1)
	if masterComputes {
		chunks[0] = aM.Mul(M)
	}
	for k, i := range order {
		x := aW[k].Mul(M).Add(bW[k])
		if x.Sign() < 0 {
			// With large latencies a far worker may best receive
			// nothing; the closed form then does not apply. Signal it.
			return rat.Zero(), nil, fmt.Errorf("divisible: worker %d gets negative chunk (drop it from the order)", i)
		}
		chunks[i+1] = x
	}
	return M, chunks, nil
}

// BestOneRound tries every activation order (n <= 8) and returns the
// best single-round makespan with its order.
func (s *Star) BestOneRound(W rat.Rat) (rat.Rat, []int, error) {
	n := len(s.W)
	if n > 8 {
		return rat.Zero(), nil, fmt.Errorf("divisible: exhaustive order search limited to 8 workers")
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var best rat.Rat
	var bestOrder []int
	var rec func(k int) error
	rec = func(k int) error {
		if k == n {
			m, _, err := s.OneRound(perm, W)
			if err != nil {
				return nil // orders where a worker would get a negative chunk are skipped
			}
			if bestOrder == nil || m.Less(best) {
				best = m
				bestOrder = append([]int(nil), perm...)
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := rec(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return rat.Zero(), nil, err
	}
	if bestOrder == nil {
		return rat.Zero(), nil, fmt.Errorf("divisible: no feasible order")
	}
	return best, bestOrder, nil
}

// SteadyStateRate returns the platform's asymptotic processing rate
// (load units per time unit): the same fractional-knapsack bound as
// master-slave tasking — the master's unit of sending time is spent
// on the cheapest links first, each worker capped at its compute rate
// — plus the master's own rate. No finite schedule can beat W / rate.
func (s *Star) SteadyStateRate() (rat.Rat, error) {
	if err := s.Validate(); err != nil {
		return rat.Zero(), err
	}
	type worker struct{ c, rate rat.Rat }
	ws := make([]worker, len(s.W))
	for i := range s.W {
		ws[i] = worker{c: s.C[i], rate: s.W[i].Inv()}
	}
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].c.Less(ws[j-1].c); j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	rate := rat.Zero()
	if s.MasterW.Sign() > 0 {
		rate = s.MasterW.Inv()
	}
	budget := rat.One()
	for _, w := range ws {
		if budget.Sign() <= 0 {
			break
		}
		need := w.c.Mul(w.rate)
		if need.Cmp(budget) <= 0 {
			rate = rate.Add(w.rate)
			budget = budget.Sub(need)
		} else {
			rate = rate.Add(budget.Div(w.c))
			budget = rat.Zero()
		}
	}
	return rate, nil
}

// MultiRound computes the exact makespan of the uniform
// multi-installment schedule: the load is cut into `rounds` equal
// waves, each wave split between participants in proportion to their
// steady-state rates, and the master sends installments round-robin;
// a worker computes installment j after finishing installment j-1
// (receive/compute overlap across installments). This is the §5.2
// strategy: more rounds means earlier overlap (less idle ramp-up) but
// more per-message latency.
func (s *Star) MultiRound(W rat.Rat, rounds int) (rat.Rat, error) {
	if err := s.Validate(); err != nil {
		return rat.Zero(), err
	}
	if rounds < 1 {
		return rat.Zero(), fmt.Errorf("divisible: rounds must be >= 1")
	}
	if W.Sign() <= 0 {
		return rat.Zero(), fmt.Errorf("divisible: load must be positive")
	}
	// Per-wave shares proportional to steady-state activity: worker i
	// gets x_i with x_i <= rate_i * tau and master port sum c_i x_i
	// <= tau for the wave duration tau = waveLoad / rate. Using the
	// knapsack rates directly keeps every wave feasible.
	rate, err := s.SteadyStateRate()
	if err != nil {
		return rat.Zero(), err
	}
	waveLoad := W.Div(rat.FromInt(int64(rounds)))
	tau := waveLoad.Div(rate)

	// Shares per wave (same knapsack walk as SteadyStateRate).
	share := make([]rat.Rat, len(s.W))
	masterShare := rat.Zero()
	if s.MasterW.Sign() > 0 {
		masterShare = s.MasterW.Inv().Mul(tau)
	}
	type worker struct {
		idx     int
		c, rate rat.Rat
	}
	ws := make([]worker, len(s.W))
	for i := range s.W {
		ws[i] = worker{idx: i, c: s.C[i], rate: s.W[i].Inv()}
	}
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].c.Less(ws[j-1].c); j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	budget := rat.One()
	for _, w := range ws {
		if budget.Sign() <= 0 {
			break
		}
		need := w.c.Mul(w.rate)
		var x rat.Rat
		if need.Cmp(budget) <= 0 {
			x = w.rate.Mul(tau)
			budget = budget.Sub(need)
		} else {
			x = budget.Div(w.c).Mul(tau)
			budget = rat.Zero()
		}
		share[w.idx] = x
	}

	// Exact timeline. The master sends waves back to back, workers in
	// cheap-link-first order within a wave; worker i's installment j
	// computes at max(recvDone, prevComputeDone) + w*x.
	sendClock := rat.Zero()
	computeDone := make([]rat.Rat, len(s.W))
	makespan := rat.Zero()
	for r := 0; r < rounds; r++ {
		for _, w := range ws {
			i := w.idx
			if share[i].Sign() == 0 {
				continue
			}
			sendClock = sendClock.Add(s.latency(i)).Add(s.C[i].Mul(share[i]))
			start := rat.Max(sendClock, computeDone[i])
			computeDone[i] = start.Add(s.W[i].Mul(share[i]))
			makespan = rat.Max(makespan, computeDone[i])
		}
	}
	if s.MasterW.Sign() > 0 {
		masterDone := s.MasterW.Mul(masterShare).Mul(rat.FromInt(int64(rounds)))
		makespan = rat.Max(makespan, masterDone)
	}
	return makespan, nil
}
