// Package experiments regenerates every figure and claim of the
// paper's evaluation (see DESIGN.md §3 for the experiment index).
// Each Ek function prints the rows/series recorded in EXPERIMENTS.md;
// cmd/experiments is the CLI entry point and the root bench_test.go
// times each one.
package experiments

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"sort"
	"time"

	"repro/internal/adaptive"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/divisible"
	"repro/internal/schedule"
	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	sim "repro/pkg/steady/sim/event"
)

// Registry maps experiment ids to their runners, in presentation order.
func Registry() []struct {
	ID   string
	Desc string
	Run  func(w io.Writer) error
} {
	return []struct {
		ID   string
		Desc string
		Run  func(w io.Writer) error
	}{
		{"E1", "Fig. 1 master-slave: LP, reconstruction, simulation", E1},
		{"E2", "pipelined scatter: LP + reconstruction", E2},
		{"E3", "Fig. 2/3 multicast counterexample", E3},
		{"E4", "broadcast: max-operator bound is achievable", E4},
		{"E5", "asymptotic optimality of the periodic schedule", E5},
		{"E6", "start-up costs and m-period grouping", E6},
		{"E7", "fixed-period approximation", E7},
		{"E8", "dynamic adaptation on a drifting platform", E8},
		{"E9", "send-or-receive model: bound vs greedy schedule", E9},
		{"E10", "topology discovery: naive vs probed vs true", E10},
		{"E11", "DAG collections: rate bound vs allocations", E11},
		{"E12", "reduce and personalized all-to-all", E12},
		{"E13", "steady-state vs makespan-oriented baselines", E13},
		{"E14", "solver ablation: exact vs float simplex", E14},
		{"E15", "divisible load: one-round vs multi-round vs bound", E15},
		{"E16", "multiport models (§5.1.2): cards vs aggregated bound", E16},
		{"E17", "multicast at scale: greedy heuristic vs LP bound ([7])", E17},
	}
}

// E1 regenerates the §3.1 result on the Figure 1 platform.
func E1(w io.Writer) error {
	p := platform.Figure1()
	master := p.NodeByName("P1")
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SSMS(G) on Figure 1, master=%s\n", p.Name(master))
	fmt.Fprintf(w, "  ntask(G) = %v = %.4f tasks/time-unit\n", ms.Throughput, ms.Throughput.Float64())
	for i := 0; i < p.NumNodes(); i++ {
		fmt.Fprintf(w, "  alpha[%s] = %-8v (rate %v)\n", p.Name(i), ms.Alpha[i], ms.ComputeRate(i))
	}
	for e := 0; e < p.NumEdges(); e++ {
		if ms.S[e].Sign() > 0 {
			ed := p.Edge(e)
			fmt.Fprintf(w, "  s[%s->%s] = %v\n", p.Name(ed.From), p.Name(ed.To), ms.S[e])
		}
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  reconstruction: %v\n", per)
	spec, err := per.EventSpec()
	if err != nil {
		return err
	}
	stats, err := sim.RunPeriodic(spec, 20, sim.PeriodicOptions{PerPeriod: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  simulation: steady state after %d periods (platform depth %d)\n",
		stats.SteadyAfter, p.MaxDepthFrom(master))
	fmt.Fprintf(w, "  simulation: %v tasks per period in steady state (= T*ntask = %v)\n",
		stats.DonePerPeriod[len(stats.DonePerPeriod)-1], per.TasksPerPeriod)
	return nil
}

// E2 regenerates the §3.2 pipelined scatter result.
func E2(w io.Writer) error {
	p := platform.Figure1()
	src := p.NodeByName("P1")
	targets := []int{p.NodeByName("P4"), p.NodeByName("P5"), p.NodeByName("P6")}
	sc, err := core.SolveScatter(p, src, targets)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SSPS(G) on Figure 1, source=%s, targets={P4,P5,P6}\n", p.Name(src))
	fmt.Fprintf(w, "  TP = %v = %.4f scatters/time-unit\n", sc.Throughput, sc.Throughput.Float64())
	sp, err := schedule.ReconstructScatter(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  reconstruction: %v\n", sp)

	rng := rand.New(rand.NewSource(42))
	q := platform.RandomConnected(rng, 8, 8, 4, 4, 0.2)
	var tg []int
	for i := 1; i <= 4; i++ {
		tg = append(tg, i)
	}
	sc2, err := core.SolveScatter(q, 0, tg)
	if err != nil {
		return err
	}
	sp2, err := schedule.ReconstructScatter(sc2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "random 8-node platform, 4 targets:\n  TP = %v; %v\n", sc2.Throughput, sp2)
	return nil
}

// E3 regenerates the Figure 2/3 multicast counterexample.
func E3(w io.Writer) error {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)

	sum, err := core.SolveMulticastSum(p, src, targets)
	if err != nil {
		return err
	}
	bound, err := core.SolveMulticastBound(p, src, targets)
	if err != nil {
		return err
	}
	pack, err := core.SolveTreePacking(p, src, targets)
	if err != nil {
		return err
	}
	_, single, err := core.BestSingleTree(p, src, targets)
	if err != nil {
		return err
	}
	greedy, err := core.GreedyTreePacking(p, src, targets)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Multicast on Figure 2, source=P0, targets={P5,P6}\n")
	fmt.Fprintf(w, "  sum-LP (scatter semantics, achievable) : TP = %v\n", sum.Throughput)
	fmt.Fprintf(w, "  best single tree                       : TP = %v\n", single)
	fmt.Fprintf(w, "  greedy tree packing (heuristic, [7])   : TP = %v\n", greedy.Throughput)
	fmt.Fprintf(w, "  EXACT optimum (tree packing, %2d trees) : TP = %v\n", pack.NumTrees, pack.Throughput)
	fmt.Fprintf(w, "  max-LP bound (paper's relaxation)      : TP = %v\n", bound.Throughput)
	fmt.Fprintf(w, "  => bound %v is NOT achievable (gap %v), as §4.3 argues\n",
		bound.Throughput, bound.Throughput.Sub(pack.Throughput))
	fmt.Fprintf(w, "  optimal packing routes (cf. Figure 3(d) two-tree conflict):\n")
	for _, tr := range pack.Trees {
		fmt.Fprintf(w, "    rate %v on tree:", tr.Rate)
		for _, e := range tr.Edges {
			ed := p.Edge(e)
			fmt.Fprintf(w, " %s->%s", p.Name(ed.From), p.Name(ed.To))
		}
		fmt.Fprintln(w)
	}
	shared := core.TreeEdgeConflict(p, pack.Trees)
	for _, e := range shared {
		ed := p.Edge(e)
		fmt.Fprintf(w, "  shared edge between trees: %s->%s (c=%v)\n",
			p.Name(ed.From), p.Name(ed.To), ed.C)
	}
	return nil
}

// E4 shows the broadcast bound is met by tree packing (§4.3, [5]).
func E4(w io.Writer) error {
	type tc struct {
		name string
		p    *platform.Platform
		src  int
	}
	p2 := platform.Figure2()
	cases := []tc{{"Figure 2", p2, p2.NodeByName("P0")}}
	rng := rand.New(rand.NewSource(7))
	for len(cases) < 3 {
		q := platform.RandomConnected(rng, 5, 2, 3, 3, 0)
		if q.NumEdges() <= 14 {
			cases = append(cases, tc{fmt.Sprintf("random-%d", len(cases)), q, 0})
		}
	}
	fmt.Fprintf(w, "Broadcast: max-operator bound vs exact tree packing\n")
	for _, c := range cases {
		bound, err := core.SolveBroadcastBound(c.p, c.src)
		if err != nil {
			return err
		}
		var targets []int
		for i := 0; i < c.p.NumNodes(); i++ {
			if i != c.src {
				targets = append(targets, i)
			}
		}
		pack, err := core.SolveTreePacking(c.p, c.src, targets)
		if err != nil {
			return err
		}
		status := "ACHIEVED"
		if !pack.Throughput.Equal(bound.Throughput) {
			status = "GAP"
		}
		fmt.Fprintf(w, "  %-10s bound %-8v packing %-8v %s\n",
			c.name, bound.Throughput, pack.Throughput, status)
	}
	return nil
}

// E5 regenerates the §4.2 asymptotic-optimality series.
func E5(w io.Writer) error {
	p := platform.Figure1()
	master := p.NodeByName("P1")
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		return err
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Asymptotic optimality on Figure 1 (T=%v, %v tasks/period)\n",
		per.Period, per.TasksPerPeriod)
	spec, err := per.EventSpec()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-10s %-10s %-12s %-10s\n", "n", "periods", "makespan", "ratio")
	for _, n := range []int64{100, 1000, 10000, 100000, 1000000} {
		periods, err := sim.RunUntil(spec, big.NewInt(n), sim.PeriodicOptions{})
		if err != nil {
			return err
		}
		T, _ := new(big.Float).SetInt(per.Period).Float64()
		makespan := float64(periods) * T
		lb := float64(n) / ms.Throughput.Float64()
		fmt.Fprintf(w, "  %-10d %-10d %-12.1f %.6f\n", n, periods, makespan, makespan/lb)
	}
	return nil
}

// E6 regenerates the §5.2 start-up-cost amortization series.
func E6(w io.Writer) error {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, p.NodeByName("P1"))
	if err != nil {
		return err
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		return err
	}
	C := rat.FromInt(5)
	startup := func(int) rat.Rat { return C }
	fmt.Fprintf(w, "Start-up costs C=%v per communication round on Figure 1\n", C)
	fmt.Fprintf(w, "  optimum without start-ups: %v = %.4f\n", per.Throughput, per.Throughput.Float64())
	fmt.Fprintf(w, "  %-8s %-14s %-10s\n", "m", "eff.throughput", "fraction")
	for _, m := range []int64{1, 2, 4, 8, 16, 64, 256} {
		eff := per.Grouped(m).EffectiveThroughput(startup)
		fmt.Fprintf(w, "  %-8d %-14.4f %.4f\n", m, eff.Float64(),
			eff.Div(per.Throughput).Float64())
	}
	// The sqrt rule: m* = ceil(sqrt(n / ntask) / T) periods grouped.
	fmt.Fprintf(w, "  sqrt rule: for n tasks, group m ~ sqrt(n/ntask)/T periods (§5.2)\n")
	return nil
}

// E7 regenerates the §5.4 fixed-period series.
func E7(w io.Writer) error {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, p.NodeByName("P1"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fixed-period approximation on Figure 1 (optimum %v)\n", ms.Throughput)
	fmt.Fprintf(w, "  %-8s %-14s %-10s\n", "P", "throughput", "fraction")
	for _, P := range []int64{1, 2, 3, 6, 12, 48, 192} {
		per, err := schedule.FixedPeriod(ms, P)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8d %-14v %.4f\n", P, per.Throughput,
			per.Throughput.Div(ms.Throughput).Float64())
	}
	return nil
}

// E8 regenerates the §5.5 dynamic-adaptation comparison.
func E8(w io.Writer) error {
	p := platform.Star(platform.WInt(20),
		[]platform.Weight{platform.WInt(2), platform.WInt(2), platform.WInt(3)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(1), rat.FromInt(2)})
	tree, err := sim.ShortestPathTree(p, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(11))
	edgeLoad := []*sim.LoadTrace{
		sim.StepLoad([]float64{0, 300}, []float64{4, 1}),
		sim.StepLoad([]float64{0, 300}, []float64{1, 4}),
		sim.RandomWalkLoad(rng, 900, 60, 1, 3),
	}
	const horizon = 900
	run := func(pol sim.Policy, epoch float64, onEpoch func(float64, *sim.EpochObservation)) (int, error) {
		res, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
			Platform: p, Tree: tree, Master: 0, Horizon: horizon,
			Policy: pol, EdgeLoad: edgeLoad,
			EpochLength: epoch, OnEpoch: onEpoch,
		})
		if err != nil {
			return 0, err
		}
		return res.Done, nil
	}
	fmt.Fprintf(w, "Drifting 3-worker star, horizon %d\n", horizon)

	fc, err := run(baseline.FCFS{}, 0, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-28s %d tasks\n", "demand-driven fcfs", fc)

	_, polStatic, err := adaptive.NewController(p, 0, tree)
	if err != nil {
		return err
	}
	st, err := run(polStatic, 0, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-28s %d tasks\n", "static LP quotas (t=0)", st)

	ctl, polDyn, err := adaptive.NewController(p, 0, tree)
	if err != nil {
		return err
	}
	dy, err := run(polDyn, 60, ctl.OnEpoch)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-28s %d tasks (%d LP re-solves)\n", "adaptive (epoch re-solve)", dy, ctl.Resolves)
	return nil
}

// E9 regenerates the §5.1.1 send-or-receive evaluation.
func E9(w io.Writer) error {
	fmt.Fprintf(w, "Send-or-receive model (§5.1.1): LP bound vs greedy coloring\n")
	fmt.Fprintf(w, "  %-12s %-12s %-12s %-12s %-8s\n", "platform", "2-port", "1-port bound", "achieved", "slots")
	run := func(name string, p *platform.Platform, master int) error {
		base, err := core.SolveMasterSlave(p, master)
		if err != nil {
			return err
		}
		sr, err := core.SolveMasterSlavePort(p, master, core.SendOrReceive)
		if err != nil {
			return err
		}
		ev, err := schedule.EvaluateSendRecv(sr)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-12s %-12.4f %-12.4f %-12.4f %-8d\n", name,
			base.Throughput.Float64(), ev.Bound.Float64(), ev.Achieved.Float64(), ev.Slots)
		return nil
	}
	if err := run("figure1", platform.Figure1(), 0); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 3; i++ {
		p := platform.RandomConnected(rng, 6+i, 4, 4, 4, 0.1)
		if err := run(fmt.Sprintf("random-%d", i), p, 0); err != nil {
			return err
		}
	}
	return nil
}

// E10 regenerates the §5.3 topology-discovery comparison.
func E10(w io.Writer) error {
	rng := rand.New(rand.NewSource(29))
	fmt.Fprintf(w, "Topology discovery (§5.3): steady-state throughput per model\n")
	fmt.Fprintf(w, "  %-10s %-12s %-14s %-12s %-8s\n", "hidden", "naive-pings", "reconstructed", "true", "probes")
	for trial := 0; trial < 4; trial++ {
		// Hidden 2-level tree, every router with >= 2 slaves.
		p := platform.New()
		m := p.AddNode("M", platform.WInt(2+rng.Int63n(4)))
		var slaves []int
		routers := 2 + rng.Intn(2)
		for r := 0; r < routers; r++ {
			hub := p.AddNode(fmt.Sprintf("R%d", r), platform.WInf())
			p.AddEdge(m, hub, rat.FromInt(1+rng.Int63n(3)))
			kids := 2 + rng.Intn(2)
			for k := 0; k < kids; k++ {
				s := p.AddNode(fmt.Sprintf("S%d_%d", r, k), platform.WInt(1+rng.Int63n(4)))
				p.AddEdge(hub, s, rat.FromInt(1+rng.Int63n(3)))
				slaves = append(slaves, s)
			}
		}
		pr, err := discovery.NewProber(p, m, slaves)
		if err != nil {
			return err
		}
		naive := discovery.NaiveComplete(pr)
		rec, err := discovery.ReconstructTree(pr)
		if err != nil {
			return err
		}
		tMS, err := core.SolveMasterSlave(p, m)
		if err != nil {
			return err
		}
		nMS, err := core.SolveMasterSlave(naive, 0)
		if err != nil {
			return err
		}
		rMS, err := core.SolveMasterSlave(rec, rec.NodeByName("M"))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  tree-%-5d %-12.4f %-14.4f %-12.4f %-8d\n", trial,
			nMS.Throughput.Float64(), rMS.Throughput.Float64(), tMS.Throughput.Float64(), pr.Probes)
	}
	return nil
}

// E11 regenerates the §4.2 DAG-collections comparison.
func E11(w io.Writer) error {
	p := platform.New()
	a := p.AddNode("A", platform.WInt(1))
	b := p.AddNode("B", platform.WInt(2))
	c := p.AddNode("C", platform.WInt(3))
	p.AddBoth(a, b, rat.One())
	p.AddBoth(b, c, rat.FromInt(2))
	fmt.Fprintf(w, "DAG collections (§4.2) on a 3-node chain platform\n")
	fmt.Fprintf(w, "  %-12s %-14s %-14s %-8s\n", "DAG", "rate bound", "alloc achieved", "gap")
	dags := []struct {
		name string
		d    *core.DAG
	}{
		{"chain-2", core.ChainDAG(2)},
		{"chain-3", core.ChainDAG(3)},
		{"chain-4", core.ChainDAG(4)},
		{"forkjoin-2", core.ForkJoinDAG(2)},
		{"forkjoin-3", core.ForkJoinDAG(3)},
	}
	for _, dg := range dags {
		rate, err := core.SolveDAGRateBound(p, dg.d, 0)
		if err != nil {
			return err
		}
		alloc, err := core.SolveDAGAllocation(p, dg.d)
		if err != nil {
			return err
		}
		gap := rate.Throughput.Sub(alloc.Throughput)
		fmt.Fprintf(w, "  %-12s %-14v %-14v %v\n", dg.name, rate.Throughput, alloc.Throughput, gap)
	}
	fmt.Fprintf(w, "  (rate LP = upper bound; allocations = achievable [6,4];\n")
	fmt.Fprintf(w, "   the general exact complexity is the paper's open problem)\n")
	return nil
}

// E12 regenerates the §4.2 reduce / all-to-all extensions.
func E12(w io.Writer) error {
	p := platform.Figure1()
	root := p.NodeByName("P1")
	red, err := core.SolveReduceBound(p, root)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Reduce to %s on Figure 1: TP = %v (broadcast on reversed graph)\n",
		p.Name(root), red.Throughput)

	ring := platform.New()
	for i := 0; i < 4; i++ {
		ring.AddNode(fmt.Sprintf("N%d", i), platform.WInt(1))
	}
	for i := 0; i < 4; i++ {
		ring.AddBoth(i, (i+1)%4, rat.One())
	}
	a2a, err := core.SolveAllToAll(ring, []int{0, 1, 2, 3})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Personalized all-to-all on a 4-ring: TP = %v per ordered pair\n", a2a.Throughput)
	return nil
}

// E13 regenerates the §1 motivation: steady-state vs practice.
func E13(w io.Writer) error {
	p := platform.Figure1()
	master := p.NodeByName("P1")
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		return err
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		return err
	}
	tree, err := sim.ShortestPathTree(p, master)
	if err != nil {
		return err
	}
	const n = 5000
	fmt.Fprintf(w, "%d tasks on Figure 1 (lower bound n/ntask = %.1f)\n",
		n, float64(n)/ms.Throughput.Float64())

	spec, err := per.EventSpec()
	if err != nil {
		return err
	}
	periods, err := sim.RunUntil(spec, big.NewInt(n), sim.PeriodicOptions{})
	if err != nil {
		return err
	}
	T, _ := new(big.Float).SetInt(per.Period).Float64()
	ssMakespan := float64(periods) * T
	lb := float64(n) / ms.Throughput.Float64()

	type row struct {
		name string
		mk   float64
	}
	rows := []row{{"steady-state periodic", ssMakespan}}

	for _, pol := range []sim.Policy{
		baseline.FCFS{},
		baseline.NewRoundRobin(),
		baseline.FastestFirst{},
		baseline.BandwidthCentric{Tree: tree},
	} {
		res, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
			Platform: p, Tree: tree, Master: master, Tasks: n, Policy: pol,
		})
		if err != nil {
			return err
		}
		rows = append(rows, row{"online " + pol.Name(), res.Makespan})
	}
	eft, err := baseline.ListScheduleMakespan(p, master, tree, n)
	if err != nil {
		return err
	}
	rows = append(rows, row{"offline EFT list schedule", eft})
	sort.Slice(rows, func(i, j int) bool { return rows[i].mk < rows[j].mk })
	fmt.Fprintf(w, "  %-28s %-12s %-8s\n", "scheduler", "makespan", "vs bound")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %-12.1f %.3f\n", r.name, r.mk, r.mk/lb)
	}
	return nil
}

// E14 regenerates the solver/coloring ablation.
func E14(w io.Writer) error {
	fmt.Fprintf(w, "Solver ablation: exact rational vs float64 simplex on SSMS\n")
	fmt.Fprintf(w, "  %-12s %-10s %-14s %-14s %-10s %-10s\n",
		"platform", "vars", "exact ntask", "float ntask", "t_exact", "t_float")
	rng := rand.New(rand.NewSource(3))
	sizes := []int{6, 10, 14, 18}
	for _, n := range sizes {
		p := platform.RandomConnected(rng, n, n, 5, 5, 0.15)
		buildVars := p.NumNodes() + p.NumEdges()

		t0 := time.Now()
		ms, err := core.SolveMasterSlave(p, 0)
		if err != nil {
			return err
		}
		dExact := time.Since(t0)

		// Same LP through the float solver.
		t0 = time.Now()
		fObj, err := solveMasterSlaveFloat(p, 0)
		if err != nil {
			return err
		}
		dFloat := time.Since(t0)
		fmt.Fprintf(w, "  %-12s %-10d %-14.6f %-14.6f %-10s %-10s\n",
			fmt.Sprintf("random-%d", n), buildVars,
			ms.Throughput.Float64(), fObj, dExact.Round(time.Microsecond), dFloat.Round(time.Microsecond))
	}
	return nil
}

// E15 regenerates the divisible-load application ([8], §5.2/§6).
func E15(w io.Writer) error {
	s := &divisible.Star{
		MasterW: rat.FromInt(4),
		W:       []rat.Rat{rat.FromInt(1), rat.FromInt(2), rat.FromInt(3)},
		C:       []rat.Rat{rat.FromInt(1), rat.FromInt(1), rat.FromInt(2)},
		L:       []rat.Rat{rat.FromInt(2), rat.FromInt(2), rat.FromInt(2)},
	}
	W := rat.FromInt(300)
	rate, err := s.SteadyStateRate()
	if err != nil {
		return err
	}
	lb := W.Div(rate)
	fmt.Fprintf(w, "Divisible load W=%v on a 3-worker star (latency 2/message)\n", W)
	fmt.Fprintf(w, "  steady-state rate %v => lower bound %v = %.1f\n", rate, lb, lb.Float64())
	best, order, err := s.BestOneRound(W)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  best single round (order %v): makespan %.1f (ratio %.4f)\n",
		order, best.Float64(), best.Div(lb).Float64())
	fmt.Fprintf(w, "  %-8s %-12s %-8s\n", "rounds", "makespan", "ratio")
	for _, r := range []int{1, 2, 4, 8, 16, 32, 64} {
		m, err := s.MultiRound(W, r)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8d %-12.1f %.4f\n", r, m.Float64(), m.Div(lb).Float64())
	}
	fmt.Fprintf(w, "  (latency makes the optimum interior: the sqrt trade-off of §5.2)\n")
	return nil
}

// E16 regenerates the §5.1.2 multiport comparison: single port vs
// fixed card wiring (reconstructible) vs any-neighbor cards (bound
// only; reconstruction complexity open).
func E16(w io.Writer) error {
	ws := make([]platform.Weight, 4)
	cs := make([]rat.Rat, 4)
	for i := range ws {
		ws[i] = platform.WInt(1)
		cs[i] = rat.One()
	}
	p := platform.Star(platform.WInt(1000), ws, cs)
	fmt.Fprintf(w, "4 unit workers behind unit links, master w=1000\n")
	fmt.Fprintf(w, "  %-8s %-14s %-18s %-14s\n", "cards", "1-port", "fixed wiring", "any-neighbor")
	single, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		return err
	}
	for _, k := range []int{1, 2, 4} {
		caps := core.UniformPorts(p, k)
		cards, err := core.SolveMasterSlaveCards(p, 0, core.RoundRobinCards(p, caps))
		if err != nil {
			return err
		}
		per, err := schedule.ReconstructCards(cards)
		if err != nil {
			return err
		}
		agg, err := core.SolveMasterSlaveMultiport(p, 0, caps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8d %-14.4f %-18s %-14.4f\n", k,
			single.Throughput.Float64(),
			fmt.Sprintf("%.4f (T=%v)", cards.Throughput.Float64(), per.Period),
			agg.Throughput.Float64())
	}
	fmt.Fprintf(w, "  (fixed wiring schedules reconstruct per card — §5.1.2;\n")
	fmt.Fprintf(w, "   the any-neighbor relaxation is a bound, its reconstruction is open)\n")
	return nil
}

// E17 runs the greedy tree-packing heuristic on platforms too large
// for Steiner-tree enumeration — the regime where the §4.3
// NP-hardness bites and reference [7]'s heuristics are the only
// option. The exact optimum is unavailable; the max-operator LP bound
// brackets the heuristic from above.
func E17(w io.Writer) error {
	rng := rand.New(rand.NewSource(37))
	fmt.Fprintf(w, "Greedy multicast packing vs LP bound on large platforms\n")
	fmt.Fprintf(w, "  %-12s %-8s %-10s %-12s %-12s %-8s\n",
		"platform", "edges", "targets", "greedy", "bound", "ratio")
	for _, n := range []int{10, 14, 18} {
		p := platform.RandomConnected(rng, n, 2*n, 3, 3, 0)
		var targets []int
		for i := 1; i <= 3; i++ {
			targets = append(targets, i)
		}
		greedy, err := core.GreedyTreePacking(p, 0, targets)
		if err != nil {
			return err
		}
		if err := greedy.CheckPacking(); err != nil {
			return err
		}
		bound, err := core.SolveMulticastBound(p, 0, targets)
		if err != nil {
			return err
		}
		ratio := greedy.Throughput.Div(bound.Throughput)
		fmt.Fprintf(w, "  %-12s %-8d %-10d %-12.4f %-12.4f %.3f\n",
			fmt.Sprintf("random-%d", n), p.NumEdges(), len(targets),
			greedy.Throughput.Float64(), bound.Throughput.Float64(), ratio.Float64())
	}
	fmt.Fprintf(w, "  (the bound may itself be unachievable — E3 — so the true gap is smaller)\n")
	return nil
}

// solveMasterSlaveFloat rebuilds the SSMS LP and solves it with the
// float64 simplex (ablation only; the exact path is authoritative).
func solveMasterSlaveFloat(p *platform.Platform, master int) (float64, error) {
	m := lp.NewModel()
	one := rat.One()
	alpha := make([]lp.Var, p.NumNodes())
	has := make([]bool, p.NumNodes())
	obj := lp.Expr{}
	for i := 0; i < p.NumNodes(); i++ {
		if p.CanCompute(i) {
			alpha[i] = m.VarRange(fmt.Sprintf("a%d", i), one)
			has[i] = true
			obj = obj.Plus(alpha[i], p.Weight(i).Val.Inv())
		}
	}
	s := make([]lp.Var, p.NumEdges())
	for e := range s {
		s[e] = m.VarRange(fmt.Sprintf("s%d", e), one)
	}
	m.Objective(lp.Maximize, obj)
	for i := 0; i < p.NumNodes(); i++ {
		out, in := lp.Expr{}, lp.Expr{}
		for _, e := range p.OutEdges(i) {
			out = out.PlusInt(s[e], 1)
		}
		for _, e := range p.InEdges(i) {
			in = in.PlusInt(s[e], 1)
		}
		if len(out) > 0 {
			m.Le("o", out, one)
		}
		if len(in) > 0 {
			m.Le("i", in, one)
		}
	}
	for _, e := range p.InEdges(master) {
		m.Eq("nm", lp.Expr{}.PlusInt(s[e], 1), rat.Zero())
	}
	for i := 0; i < p.NumNodes(); i++ {
		if i == master {
			continue
		}
		ex := lp.Expr{}
		for _, e := range p.InEdges(i) {
			ex = ex.Plus(s[e], p.Edge(e).C.Inv())
		}
		if has[i] {
			ex = ex.Plus(alpha[i], p.Weight(i).Val.Inv().Neg())
		}
		for _, e := range p.OutEdges(i) {
			ex = ex.Plus(s[e], p.Edge(e).C.Inv().Neg())
		}
		if len(ex) > 0 {
			m.Eq("c", ex, rat.Zero())
		}
	}
	sol, err := m.SolveFloat()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("float solver: %v", sol.Status)
	}
	return sol.Objective, nil
}
