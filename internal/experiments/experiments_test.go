package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun is the end-to-end integration test: every
// experiment must complete and print its headline result.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func runOne(t *testing.T, id string) string {
	t.Helper()
	for _, e := range Registry() {
		if e.ID == id {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			return buf.String()
		}
	}
	t.Fatalf("unknown experiment %s", id)
	return ""
}

// The golden assertions below pin the headline numbers recorded in
// EXPERIMENTS.md; a regression in any solver or model breaks them.

func TestE1Golden(t *testing.T) {
	out := runOne(t, "E1")
	for _, want := range []string{
		"ntask(G) = 4/3",
		"steady state after 2 periods",
		"8 tasks per period",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E1 output missing %q:\n%s", want, out)
		}
	}
}

func TestE3Golden(t *testing.T) {
	out := runOne(t, "E3")
	for _, want := range []string{
		"sum-LP (scatter semantics, achievable) : TP = 1/2",
		"EXACT optimum (tree packing,  7 trees) : TP = 3/4",
		"max-LP bound (paper's relaxation)      : TP = 1",
		"NOT achievable (gap 1/4)",
		"P3->P4 (c=2)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E3 output missing %q:\n%s", want, out)
		}
	}
}

func TestE4Golden(t *testing.T) {
	out := runOne(t, "E4")
	if strings.Contains(out, "GAP") {
		t.Fatalf("E4 found a broadcast gap (bound should be achievable):\n%s", out)
	}
	if strings.Count(out, "ACHIEVED") < 3 {
		t.Fatalf("E4 missing cases:\n%s", out)
	}
}

func TestE5GoldenRatiosDecrease(t *testing.T) {
	out := runOne(t, "E5")
	var ratios []float64
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] != "n" {
			var r float64
			if v, err := strconv.ParseFloat(fields[3], 64); err == nil {
				r = v
				ratios = append(ratios, r)
			}
		}
	}
	if len(ratios) < 4 {
		t.Fatalf("E5: found %d ratios:\n%s", len(ratios), out)
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > ratios[i-1] {
			t.Fatalf("E5 ratios not decreasing: %v", ratios)
		}
	}
	if last := ratios[len(ratios)-1]; last > 1.001 {
		t.Fatalf("E5 final ratio %v too far from 1", last)
	}
}

func TestE7GoldenReachesOptimum(t *testing.T) {
	out := runOne(t, "E7")
	if !strings.Contains(out, "1.0000") {
		t.Fatalf("E7 never reaches the optimum:\n%s", out)
	}
}

func TestE8GoldenAdaptiveWins(t *testing.T) {
	out := runOne(t, "E8")
	if !strings.Contains(out, "adaptive") || !strings.Contains(out, "re-solves") {
		t.Fatalf("E8 output malformed:\n%s", out)
	}
}

func TestE11GoldenNoNegativeGap(t *testing.T) {
	out := runOne(t, "E11")
	if strings.Contains(out, "-") && strings.Contains(out, "gap -") {
		t.Fatalf("E11 negative gap (rate bound below achievable):\n%s", out)
	}
}

func TestE2GoldenScatterThroughput(t *testing.T) {
	out := runOne(t, "E2")
	// 3/10 (previously 1/2) since the scatter LP's delivery equation
	// became net of the target's own out-flow: the old witnesses
	// carried circulations through the targets that fabricated
	// throughput never leaving the source, which the simulation
	// subsystem (pkg/steady/sim) exposed — replaying the old schedule
	// delivered 0. The corrected value is achieved by the
	// reconstructed schedule in simulated time.
	if !strings.Contains(out, "TP = 3/10") {
		t.Fatalf("E2 missing Figure 1 scatter TP = 3/10:\n%s", out)
	}
	if !strings.Contains(out, "TP = 1/12") {
		t.Fatalf("E2 missing random-platform TP = 1/12:\n%s", out)
	}
}

func TestE9GoldenBoundOrdering(t *testing.T) {
	out := runOne(t, "E9")
	// On Figure 1 the shared-port bound (1.2083) sits below the
	// two-port bound (1.3333) and the greedy schedule achieves it.
	for _, want := range []string{"1.3333", "1.2083"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E9 missing %q:\n%s", want, out)
		}
	}
}

func TestE10GoldenReconstructionBeatsNaive(t *testing.T) {
	out := runOne(t, "E10")
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 5 && strings.HasPrefix(fields[0], "tree-") {
			naive, err1 := strconv.ParseFloat(fields[1], 64)
			rec, err2 := strconv.ParseFloat(fields[2], 64)
			tru, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				continue
			}
			if naive > rec+1e-9 || rec > tru+1e-9 {
				t.Fatalf("E10 ordering violated on %s: %v %v %v", fields[0], naive, rec, tru)
			}
		}
	}
}

func TestE12GoldenCollectives(t *testing.T) {
	out := runOne(t, "E12")
	// 7/15 (previously 1/2) after the net delivery fix — see
	// TestE2GoldenScatterThroughput; the exact tree packing on the
	// reversed platform meets 7/15, so the corrected bound is tight.
	if !strings.Contains(out, "Reduce to P1 on Figure 1: TP = 7/15") {
		t.Fatalf("E12 missing reduce value:\n%s", out)
	}
	if !strings.Contains(out, "TP = 1/4 per ordered pair") {
		t.Fatalf("E12 missing all-to-all value:\n%s", out)
	}
}

func TestE13GoldenNaivePoliciesLose(t *testing.T) {
	out := runOne(t, "E13")
	// FCFS and round-robin must be visibly worse than the bound.
	var worst float64
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 3 {
			if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil && v > worst && v < 10 {
				worst = v
			}
		}
	}
	if worst < 1.1 {
		t.Fatalf("E13: no policy lost substantially (worst ratio %v):\n%s", worst, out)
	}
}

func TestE15GoldenInteriorOptimum(t *testing.T) {
	out := runOne(t, "E15")
	if !strings.Contains(out, "sqrt trade-off") {
		t.Fatalf("E15 missing trade-off note:\n%s", out)
	}
	// Parse the rounds table and find the argmin; interior expected.
	var ms []float64
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] != "rounds" {
			if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
				ms = append(ms, v)
			}
		}
	}
	if len(ms) < 5 {
		t.Fatalf("E15: parsed %d makespans:\n%s", len(ms), out)
	}
	best := 0
	for i := range ms {
		if ms[i] < ms[best] {
			best = i
		}
	}
	if best == 0 || best == len(ms)-1 {
		t.Fatalf("E15 optimum at the boundary: %v", ms)
	}
}

func TestE16GoldenCardsScale(t *testing.T) {
	out := runOne(t, "E16")
	for _, want := range []string{"2.0010", "4.0010", "reconstruct"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E16 missing %q:\n%s", want, out)
		}
	}
}

func TestE3GoldenIncludesHeuristic(t *testing.T) {
	out := runOne(t, "E3")
	if !strings.Contains(out, "greedy tree packing (heuristic, [7])   : TP = 1/2") {
		t.Fatalf("E3 missing greedy heuristic row:\n%s", out)
	}
}

func TestE14GoldenSolversAgree(t *testing.T) {
	out := runOne(t, "E14")
	lines := strings.Split(out, "\n")
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) >= 4 && strings.HasPrefix(fields[0], "random-") {
			exact, err1 := strconv.ParseFloat(fields[2], 64)
			fl, err2 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil {
				continue
			}
			if d := exact - fl; d > 1e-6 || d < -1e-6 {
				t.Fatalf("solvers disagree on %s: %v vs %v", fields[0], exact, fl)
			}
		}
	}
}

func TestE17GoldenGreedyWithinBound(t *testing.T) {
	out := runOne(t, "E17")
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && strings.HasPrefix(fields[0], "random-") {
			g, err1 := strconv.ParseFloat(fields[3], 64)
			b, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				continue
			}
			if g > b+1e-9 {
				t.Fatalf("E17: greedy %v exceeds bound %v on %s", g, b, fields[0])
			}
			if g < b/4 {
				t.Fatalf("E17: greedy %v below a quarter of the bound %v", g, b)
			}
		}
	}
}
