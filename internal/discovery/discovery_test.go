package discovery

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// hiddenTwoLevel builds master -> {router1 -> s1,s2 ; router2 ->
// s3,s4}, the canonical ENV scenario: s1 and s2 share the
// master->router1 link, s3 and s4 share master->router2. Every relay
// has two children, so the macroscopic reconstruction is exact.
func hiddenTwoLevel() (*platform.Platform, int, []int) {
	p := platform.New()
	m := p.AddNode("M", platform.WInt(4))
	r1 := p.AddNode("R1", platform.WInf())
	r2 := p.AddNode("R2", platform.WInf())
	s1 := p.AddNode("S1", platform.WInt(1))
	s2 := p.AddNode("S2", platform.WInt(2))
	s3 := p.AddNode("S3", platform.WInt(3))
	s4 := p.AddNode("S4", platform.WInt(2))
	p.AddEdge(m, r1, rat.FromInt(2))
	p.AddEdge(m, r2, rat.FromInt(1))
	p.AddEdge(r1, s1, rat.FromInt(1))
	p.AddEdge(r1, s2, rat.FromInt(3))
	p.AddEdge(r2, s3, rat.FromInt(2))
	p.AddEdge(r2, s4, rat.FromInt(1))
	return p, m, []int{s1, s2, s3, s4}
}

func TestProberSoloAndPairwise(t *testing.T) {
	p, m, slaves := hiddenTwoLevel()
	pr, err := NewProber(p, m, slaves)
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Solo(slaves[0]); got != 3 { // 2 + 1
		t.Fatalf("solo(S1) = %v, want 3", got)
	}
	if got := pr.Solo(slaves[2]); got != 3 { // 1 + 2
		t.Fatalf("solo(S3) = %v, want 3", got)
	}
	// S1 and S2 share M->R1 (cost 2): each loses 2 under contention.
	a, b := pr.Pairwise(slaves[0], slaves[1])
	if a != 5 || b != 7 {
		t.Fatalf("pairwise(S1,S2) = %v,%v want 5,7", a, b)
	}
	// S1 and S3 share nothing.
	a, c := pr.Pairwise(slaves[0], slaves[2])
	if a != 3 || c != 3 {
		t.Fatalf("pairwise(S1,S3) = %v,%v want 3,3", a, c)
	}
	if sh := pr.SharedCost(slaves[0], slaves[1]); sh != 2 {
		t.Fatalf("shared(S1,S2) = %v, want 2", sh)
	}
	if sh := pr.SharedCost(slaves[0], slaves[2]); sh != 0 {
		t.Fatalf("shared(S1,S3) = %v, want 0", sh)
	}
	if pr.Probes == 0 {
		t.Fatal("probe counter not incremented")
	}
}

func TestProberErrors(t *testing.T) {
	p, m, slaves := hiddenTwoLevel()
	if _, err := NewProber(p, m, []int{m}); err == nil {
		t.Fatal("expected master-as-slave error")
	}
	q := platform.New()
	q.AddNode("A", platform.WInt(1))
	q.AddNode("B", platform.WInt(1))
	if _, err := NewProber(q, 0, []int{1}); err == nil {
		t.Fatal("expected unreachable error")
	}
	_ = slaves
}

func TestReconstructTwoLevelExactly(t *testing.T) {
	p, m, slaves := hiddenTwoLevel()
	pr, err := NewProber(p, m, slaves)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReconstructTree(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction groups S1,S2 under one hub (shared cost 2) and
	// S3 alone (no interference): master has 2 children.
	master := rec.NodeByName("M")
	if len(rec.OutEdges(master)) != 2 {
		t.Fatalf("master has %d children, want 2\n%s", len(rec.OutEdges(master)), rec)
	}
	// The steady-state LP on the reconstruction equals the hidden
	// platform's (the payoff metric of §5.3).
	trueMS, err := core.SolveMasterSlave(p, m)
	if err != nil {
		t.Fatal(err)
	}
	recMS, err := core.SolveMasterSlave(rec, rec.NodeByName("M"))
	if err != nil {
		t.Fatal(err)
	}
	if !recMS.Throughput.Equal(trueMS.Throughput) {
		t.Fatalf("reconstructed throughput %v != true %v", recMS.Throughput, trueMS.Throughput)
	}
}

func TestModelOrderingNaiveRecTrue(t *testing.T) {
	// E10's ordering: naive pings <= interference-probed
	// reconstruction <= hidden platform, with the reconstruction
	// strictly better than pings here (it recovers the relays).
	p, m, slaves := hiddenTwoLevel()
	pr, _ := NewProber(p, m, slaves)
	naive := NaiveComplete(pr)
	rec, err := ReconstructTree(pr)
	if err != nil {
		t.Fatal(err)
	}
	trueMS, err := core.SolveMasterSlave(p, m)
	if err != nil {
		t.Fatal(err)
	}
	recMS, err := core.SolveMasterSlave(rec, rec.NodeByName("M"))
	if err != nil {
		t.Fatal(err)
	}
	naiveMS, err := core.SolveMasterSlave(naive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if naiveMS.Throughput.Cmp(recMS.Throughput) > 0 {
		t.Fatalf("naive %v beats reconstruction %v", naiveMS.Throughput, recMS.Throughput)
	}
	if recMS.Throughput.Cmp(trueMS.Throughput) > 0 {
		t.Fatalf("reconstruction %v beats hidden platform %v", recMS.Throughput, trueMS.Throughput)
	}
	if !naiveMS.Throughput.Less(recMS.Throughput) {
		t.Fatalf("reconstruction should strictly beat naive pings here: %v vs %v",
			recMS.Throughput, naiveMS.Throughput)
	}
	t.Logf("naive %v <= reconstructed %v <= true %v",
		naiveMS.Throughput, recMS.Throughput, trueMS.Throughput)
}

func TestReconstructThreeLevel(t *testing.T) {
	// master -> r1 -> {s1, r2 -> {s2, s3}}: nested sharing.
	p := platform.New()
	m := p.AddNode("M", platform.WInt(5))
	r1 := p.AddNode("R1", platform.WInf())
	r2 := p.AddNode("R2", platform.WInf())
	s1 := p.AddNode("S1", platform.WInt(1))
	s2 := p.AddNode("S2", platform.WInt(1))
	s3 := p.AddNode("S3", platform.WInt(2))
	p.AddEdge(m, r1, rat.FromInt(1))
	p.AddEdge(r1, s1, rat.FromInt(2))
	p.AddEdge(r1, r2, rat.FromInt(1))
	p.AddEdge(r2, s2, rat.FromInt(1))
	p.AddEdge(r2, s3, rat.FromInt(3))
	pr, err := NewProber(p, m, []int{s1, s2, s3})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReconstructTree(pr)
	if err != nil {
		t.Fatal(err)
	}
	trueMS, err := core.SolveMasterSlave(p, m)
	if err != nil {
		t.Fatal(err)
	}
	recMS, err := core.SolveMasterSlave(rec, rec.NodeByName("M"))
	if err != nil {
		t.Fatal(err)
	}
	if !recMS.Throughput.Equal(trueMS.Throughput) {
		t.Fatalf("3-level reconstruction throughput %v != true %v\nrec:\n%s",
			recMS.Throughput, trueMS.Throughput, rec)
	}
}

func TestReconstructRandomHiddenTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		// Random hidden tree: routers are forwarders, leaves compute.
		p := platform.New()
		m := p.AddNode("M", platform.WInt(1+rng.Int63n(4)))
		var slaves []int
		var grow func(parent int, depth int)
		id := 0
		grow = func(parent int, depth int) {
			kids := 1 + rng.Intn(3)
			for k := 0; k < kids; k++ {
				id++
				if depth <= 0 || rng.Intn(2) == 0 {
					s := p.AddNode(nodeName("S", id), platform.WInt(1+rng.Int63n(4)))
					p.AddEdge(parent, s, rat.FromInt(1+rng.Int63n(4)))
					slaves = append(slaves, s)
				} else {
					r := p.AddNode(nodeName("R", id), platform.WInf())
					p.AddEdge(parent, r, rat.FromInt(1+rng.Int63n(4)))
					grow(r, depth-1)
				}
			}
		}
		grow(m, 2)
		if len(slaves) < 2 {
			continue
		}
		pr, err := NewProber(p, m, slaves)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := ReconstructTree(pr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		trueMS, err := core.SolveMasterSlave(p, m)
		if err != nil {
			t.Fatal(err)
		}
		recMS, err := core.SolveMasterSlave(rec, rec.NodeByName("M"))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, rec)
		}
		// The macroscopic view is conservative: never an overestimate.
		if trueMS.Throughput.Less(recMS.Throughput) {
			t.Fatalf("trial %d: reconstruction %v overestimates true %v\nhidden:\n%s\nrec:\n%s",
				trial, recMS.Throughput, trueMS.Throughput, p, rec)
		}
		// Exact whenever the hidden tree has no unbranched relay
		// chain (a relay whose only child is another relay).
		if !hasRelayChain(p) && !recMS.Throughput.Equal(trueMS.Throughput) {
			t.Fatalf("trial %d: reconstructed %v != true %v without relay chains\nhidden:\n%s\nrec:\n%s",
				trial, recMS.Throughput, trueMS.Throughput, p, rec)
		}
	}
}

// hasRelayChain reports whether some forwarder has fewer than two
// children: such a relay is not a branch point, so end-to-end probes
// must collapse it into its parent link (losing its pipelining).
func hasRelayChain(p *platform.Platform) bool {
	for v := 0; v < p.NumNodes(); v++ {
		if p.CanCompute(v) {
			continue
		}
		if len(p.OutEdges(v)) < 2 {
			return true
		}
	}
	return false
}

// TestChainCollapseIsConservative pins the documented limitation: a
// relay chain M->R1->R2->S collapses to one slow link, so the
// reconstructed throughput underestimates (never overestimates) the
// hidden platform's.
func TestChainCollapseIsConservative(t *testing.T) {
	p := platform.New()
	m := p.AddNode("M", platform.WInt(3))
	r1 := p.AddNode("R1", platform.WInf())
	r2 := p.AddNode("R2", platform.WInf())
	s1 := p.AddNode("S1", platform.WInt(1))
	s2 := p.AddNode("S2", platform.WInt(1))
	p.AddEdge(m, r1, rat.FromInt(2))
	p.AddEdge(r1, r2, rat.FromInt(1))
	p.AddEdge(r2, s1, rat.FromInt(1))
	p.AddEdge(r2, s2, rat.FromInt(1))
	pr, err := NewProber(p, m, []int{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReconstructTree(pr)
	if err != nil {
		t.Fatal(err)
	}
	trueMS, err := core.SolveMasterSlave(p, m)
	if err != nil {
		t.Fatal(err)
	}
	recMS, err := core.SolveMasterSlave(rec, rec.NodeByName("M"))
	if err != nil {
		t.Fatal(err)
	}
	if trueMS.Throughput.Less(recMS.Throughput) {
		t.Fatalf("collapse overestimates: %v > %v", recMS.Throughput, trueMS.Throughput)
	}
	if !recMS.Throughput.Less(trueMS.Throughput) {
		t.Log("note: collapse happened to be lossless here")
	}
}

func nodeName(prefix string, id int) string {
	return prefix + string(rune('0'+id/10)) + string(rune('0'+id%10))
}
