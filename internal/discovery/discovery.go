// Package discovery is the reproduction's substitute for the ENV [16]
// and AlNeM [13] topology mappers of §5.3: the real tools run probe
// transfers between host pairs to detect shared links; here the
// hidden platform is simulated and probed through the same interface.
//
//   - a solo probe measures the end-to-end cost master -> slave;
//   - a pairwise probe runs two transfers simultaneously; edges shared
//     by both routes serve the streams at half speed (fair sharing),
//     so the measured slowdown reveals the cost of the shared prefix;
//   - single-linkage clustering on the shared-prefix costs (an
//     ultrametric on the leaves of a routing tree) rebuilds the
//     macroscopic tree the paper says is all we need: "some link is
//     shared between some routes, without determining the actual
//     physical topology".
package discovery

import (
	"fmt"
	"sort"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// Prober simulates probe traffic against a hidden platform. Routing
// follows shortest paths (by total cost) from the master.
type Prober struct {
	P      *platform.Platform
	Master int
	Slaves []int

	// Probes counts issued probe operations (the §5.3 "huge amount of
	// time" cost of mapping, reported by experiments).
	Probes int

	paths map[int][]int // slave -> edge list (master -> slave)
}

// NewProber prepares routing state for the hidden platform.
func NewProber(p *platform.Platform, master int, slaves []int) (*Prober, error) {
	pr := &Prober{P: p, Master: master, Slaves: append([]int(nil), slaves...), paths: map[int][]int{}}
	for _, s := range slaves {
		if s == master {
			return nil, fmt.Errorf("discovery: master cannot be a slave")
		}
		path := p.ShortestPath(master, s)
		if path == nil {
			return nil, fmt.Errorf("discovery: slave %d unreachable", s)
		}
		pr.paths[s] = path
	}
	return pr, nil
}

// Solo returns the end-to-end cost (time per unit of data) of a
// transfer master -> slave with no competing traffic.
func (pr *Prober) Solo(slave int) float64 {
	pr.Probes++
	total := 0.0
	for _, e := range pr.paths[slave] {
		total += pr.P.Edge(e).C.Float64()
	}
	return total
}

// Pairwise runs transfers master -> a and master -> b simultaneously
// and returns their effective unit costs: every edge on both routes
// serves each stream at half rate (doubling its contribution).
func (pr *Prober) Pairwise(a, b int) (costA, costB float64) {
	pr.Probes++
	onB := map[int]bool{}
	for _, e := range pr.paths[b] {
		onB[e] = true
	}
	for _, e := range pr.paths[a] {
		c := pr.P.Edge(e).C.Float64()
		if onB[e] {
			costA += 2 * c
		} else {
			costA += c
		}
	}
	onA := map[int]bool{}
	for _, e := range pr.paths[a] {
		onA[e] = true
	}
	for _, e := range pr.paths[b] {
		c := pr.P.Edge(e).C.Float64()
		if onA[e] {
			costB += 2 * c
		} else {
			costB += c
		}
	}
	return costA, costB
}

// SharedCost estimates the cost of the route prefix shared by slaves
// a and b: the extra time each stream loses under contention.
func (pr *Prober) SharedCost(a, b int) float64 {
	soloA, soloB := pr.Solo(a), pr.Solo(b)
	pairA, pairB := pr.Pairwise(a, b)
	// Both estimates equal the shared cost exactly under the fair-
	// sharing model; averaging guards future noisy models.
	return ((pairA - soloA) + (pairB - soloB)) / 2
}

// interferenceEps treats shared costs below this as independent routes.
const interferenceEps = 1e-9

// ReconstructTree rebuilds the macroscopic routing tree by
// single-linkage agglomerative clustering on shared-prefix costs.
// Internal nodes become forwarder (w = +inf) hubs; slave weights are
// taken from the hidden platform (computation speed is trivially
// measurable by running one task).
//
// Fidelity: branch points of the hidden routing tree are recovered
// exactly. Unbranched relay chains, however, are collapsed into a
// single link whose cost is the chain's total — end-to-end probes
// cannot see the store-and-forward pipelining inside a chain — so the
// reconstructed model's steady-state throughput is a conservative
// (lower) estimate of the hidden platform's, and exact whenever no
// relay feeds a single relay. ENV [16] shares this macroscopic-view
// limitation; the paper's point ("we only need a macroscopic view")
// is that the conservative model is still schedulable.
func ReconstructTree(pr *Prober) (*platform.Platform, error) {
	n := len(pr.Slaves)
	if n == 0 {
		return nil, fmt.Errorf("discovery: no slaves")
	}
	solo := make([]float64, n)
	for i, s := range pr.Slaves {
		solo[i] = pr.Solo(s)
	}
	shared := make([][]float64, n)
	for i := range shared {
		shared[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sh := pr.SharedCost(pr.Slaves[i], pr.Slaves[j])
			shared[i][j], shared[j][i] = sh, sh
		}
	}

	// Dendrogram node: either a leaf (slave) or a merge at a height
	// (= cost of the shared route prefix from the master).
	type dnode struct {
		leaf     int // slave index or -1
		height   float64
		children []int // indices into nodes
	}
	var nodes []dnode
	active := map[int]bool{}
	for i := 0; i < n; i++ {
		nodes = append(nodes, dnode{leaf: i})
		active[i] = true
	}
	sim := func(a, b int) float64 {
		// Single linkage on similarity: max shared cost across pairs.
		best := 0.0
		var la, lb []int
		var leaves func(x int) []int
		leaves = func(x int) []int {
			if nodes[x].leaf >= 0 {
				return []int{nodes[x].leaf}
			}
			var out []int
			for _, c := range nodes[x].children {
				out = append(out, leaves(c)...)
			}
			return out
		}
		la, lb = leaves(a), leaves(b)
		for _, x := range la {
			for _, y := range lb {
				if shared[x][y] > best {
					best = shared[x][y]
				}
			}
		}
		return best
	}
	for len(active) > 1 {
		// Find the most-similar active pair.
		var keys []int
		for k := range active {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		bi, bj, bs := -1, -1, 0.0
		for x := 0; x < len(keys); x++ {
			for y := x + 1; y < len(keys); y++ {
				s := sim(keys[x], keys[y])
				if s > bs {
					bi, bj, bs = keys[x], keys[y], s
				}
			}
		}
		if bi < 0 || bs <= interferenceEps {
			break // remaining clusters are independent: attach to master
		}
		nodes = append(nodes, dnode{leaf: -1, height: bs, children: []int{bi, bj}})
		delete(active, bi)
		delete(active, bj)
		active[len(nodes)-1] = true
	}

	// Flatten chains: when a merge's child is a merge at the same
	// height (within eps), absorb it (ternary+ hubs).
	var roots []int
	for k := range active {
		roots = append(roots, k)
	}
	sort.Ints(roots)

	// Emit the reconstructed platform.
	out := platform.New()
	master := out.AddNode(pr.P.Name(pr.Master), pr.P.Weight(pr.Master))
	hubs := 0
	var emit func(idx int, parent int, parentHeight float64) error
	emit = func(idx int, parent int, parentHeight float64) error {
		nd := nodes[idx]
		if nd.leaf >= 0 {
			s := pr.Slaves[nd.leaf]
			c := solo[nd.leaf] - parentHeight
			if c <= 0 {
				c = interferenceEps * 10 // degenerate probe data; keep positive
			}
			id := out.AddNode(pr.P.Name(s), pr.P.Weight(s))
			out.AddEdge(parent, id, rat.ApproxFloat(c, 1<<20))
			return nil
		}
		// Merge node: absorb same-height child merges.
		var kids []int
		var collect func(x int)
		collect = func(x int) {
			xd := nodes[x]
			if xd.leaf < 0 && xd.height <= nd.height+interferenceEps {
				for _, c := range xd.children {
					collect(c)
				}
				return
			}
			kids = append(kids, x)
		}
		for _, c := range nd.children {
			collect(c)
		}
		hubs++
		hub := out.AddNode(fmt.Sprintf("hub%d", hubs), platform.WInf())
		c := nd.height - parentHeight
		if c <= 0 {
			c = interferenceEps * 10
		}
		out.AddEdge(parent, hub, rat.ApproxFloat(c, 1<<20))
		for _, k := range kids {
			if err := emit(k, hub, nd.height); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := emit(r, master, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NaiveComplete builds the [10]-style model the paper contrasts with:
// pings between pairs give a star of independent end-to-end links.
// Under the store-and-forward probe model each link carries the whole
// path cost, so the naive model is the *most* pessimistic of the
// three (any rate vector feasible for it is feasible for the
// reconstruction and for the hidden platform): the E10 ordering is
// naive <= reconstructed <= true, quantifying what interference
// probing buys over plain pings.
func NaiveComplete(pr *Prober) *platform.Platform {
	out := platform.New()
	master := out.AddNode(pr.P.Name(pr.Master), pr.P.Weight(pr.Master))
	for i, s := range pr.Slaves {
		id := out.AddNode(pr.P.Name(s), pr.P.Weight(s))
		out.AddEdge(master, id, rat.ApproxFloat(pr.Solo(s), 1<<20))
		_ = i
	}
	return out
}
