package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/pkg/steady/platform"
)

// ErrInterrupted reports that a simulation was aborted through
// OnlineConfig.Interrupt before completing.
var ErrInterrupted = errors.New("sim: interrupted")

// Policy decides, each time a node's send port becomes free, which
// pending child request to serve next. Implementations live in
// internal/baseline (the makespan-oriented heuristics the paper
// motivates against) and internal/adaptive (LP-guided quotas).
type Policy interface {
	// Pick returns the index into pending (a slice of child node ids
	// with outstanding requests at node `from`) to serve, or -1 to
	// keep the port idle.
	Pick(from int, pending []int, st *OnlineState) int
	// Name labels the policy in experiment output.
	Name() string
}

// OnlineState exposes read-only simulation state to policies.
type OnlineState struct {
	P *platform.Platform
	// Now is the current simulated time.
	Now float64
	// Buffer[i] is the number of task files buffered at node i.
	Buffer []int
	// Done[i] is the number of tasks node i has completed.
	Done []int
	// SentTo[e] counts task files sent over edge e so far.
	SentTo []int
}

// OnlineConfig configures an online master-slave run.
type OnlineConfig struct {
	Platform *platform.Platform
	// Tree maps each non-master node to the platform edge from its
	// parent (a spanning in-tree rooted at the master). Baselines run
	// on tree overlays, matching the ENV view of §5.3.
	Tree []int
	// Master is the root holding all tasks.
	Master int
	// Tasks is the number of tasks to process (0 = run to Horizon).
	Tasks int
	// Horizon stops the simulation at this time (0 = until Tasks done).
	Horizon float64
	// Policy picks the next request to serve.
	Policy Policy
	// NodeLoad and EdgeLoad optionally slow resources over time
	// (nil entries = constant 1).
	NodeLoad []*Trace
	EdgeLoad []*Trace
	// RequestThreshold: a child re-requests work whenever its buffer
	// falls below this many tasks (default 2, the classic
	// double-buffering of demand-driven master-slave).
	RequestThreshold int
	// Interrupt, when non-nil, aborts the simulation with
	// ErrInterrupted once it becomes receivable (typically a
	// context's Done channel). Checked every few hundred events, so
	// a long run stops promptly without per-event overhead.
	Interrupt <-chan struct{}
	// EpochLength, if > 0, invokes OnEpoch every EpochLength time
	// units with per-resource observed performance (for §5.5
	// adaptive re-planning).
	EpochLength float64
	OnEpoch     func(now float64, obs *EpochObservation)
}

// EpochObservation reports measured resource performance during the
// last epoch: the adaptive scheduler's NWS-like sensor input.
type EpochObservation struct {
	// NodeBusy[i] is the fraction of the epoch node i spent computing.
	NodeBusy []float64
	// NodeRate[i] is tasks completed per time unit at node i.
	NodeRate []float64
	// EdgeRate[e] is task files per time unit carried by edge e.
	EdgeRate []float64
	// EffectiveW[i] is the observed seconds per task while busy
	// (w_i * average multiplier); 0 when no task completed.
	EffectiveW []float64
	// EffectiveC[e] is the observed seconds per file while busy.
	EffectiveC []float64
}

// OnlineResult reports an online run.
type OnlineResult struct {
	Makespan float64
	Done     int
	PerNode  []int
	PerEdge  []int
}

// event is a scheduled callback.
type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// RunOnlineMasterSlave simulates demand-driven master-slave tasking
// on a tree overlay under the one-port model: every node computes
// continuously from its buffer, children request work when low, and
// each node's send port serves one request at a time in policy order.
func RunOnlineMasterSlave(cfg OnlineConfig) (*OnlineResult, error) {
	p := cfg.Platform
	n := p.NumNodes()
	if cfg.Master < 0 || cfg.Master >= n {
		return nil, fmt.Errorf("sim: bad master")
	}
	if len(cfg.Tree) != n {
		return nil, fmt.Errorf("sim: tree must have one entry per node")
	}
	if cfg.Tasks <= 0 && cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: need Tasks or Horizon")
	}
	threshold := cfg.RequestThreshold
	if threshold <= 0 {
		threshold = 2
	}

	children := make([][]int, n) // node -> child node ids
	parentEdge := cfg.Tree
	for v := 0; v < n; v++ {
		if v == cfg.Master {
			continue
		}
		e := parentEdge[v]
		if e < 0 || e >= p.NumEdges() || p.Edge(e).To != v {
			return nil, fmt.Errorf("sim: tree edge %d does not enter node %d", e, v)
		}
		children[p.Edge(e).From] = append(children[p.Edge(e).From], v)
	}

	st := &OnlineState{
		P:      p,
		Buffer: make([]int, n),
		Done:   make([]int, n),
		SentTo: make([]int, p.NumEdges()),
	}
	var (
		h         eventHeap
		seq       int64
		now       float64
		remaining = cfg.Tasks // tasks left to hand out at the master
		doneTotal int
		computing = make([]bool, n)
		sending   = make([]bool, n)
		pending   = make([][]int, n) // node -> child ids waiting
		requested = make([]bool, n)  // child has an outstanding request
		busyCpu   = make([]float64, n)
		busyEdge  = make([]float64, p.NumEdges())
		epochDone = make([]int, n)
		epochSent = make([]int, p.NumEdges())
	)
	push := func(t float64, fn func()) {
		seq++
		heap.Push(&h, &event{t: t, seq: seq, fn: fn})
	}

	nodeLoad := func(i int) *Trace {
		if cfg.NodeLoad == nil {
			return nil
		}
		return cfg.NodeLoad[i]
	}
	edgeLoad := func(e int) *Trace {
		if cfg.EdgeLoad == nil {
			return nil
		}
		return cfg.EdgeLoad[e]
	}

	var tryCompute func(i int)
	var trySend func(i int)
	var request func(child int)

	// takeTask withdraws one task at node i (master draws from the
	// initial collection when Tasks is bounded; unbounded otherwise).
	takeTask := func(i int) bool {
		if i == cfg.Master {
			if cfg.Tasks > 0 {
				if remaining == 0 {
					return false
				}
				remaining--
				return true
			}
			return true
		}
		if st.Buffer[i] == 0 {
			return false
		}
		st.Buffer[i]--
		return true
	}

	tryCompute = func(i int) {
		if computing[i] || !p.CanCompute(i) {
			return
		}
		if !takeTask(i) {
			return
		}
		computing[i] = true
		dur := p.Weight(i).Val.Float64() * nodeLoad(i).At(now)
		start := now
		push(now+dur, func() {
			computing[i] = false
			st.Done[i]++
			epochDone[i]++
			doneTotal++
			busyCpu[i] += now - start
			tryCompute(i)
			request(i)
		})
	}

	request = func(child int) {
		if child == cfg.Master || requested[child] {
			return
		}
		if st.Buffer[child] >= threshold {
			return
		}
		parent := p.Edge(parentEdge[child]).From
		requested[child] = true
		pending[parent] = append(pending[parent], child)
		trySend(parent)
	}

	trySend = func(i int) {
		if sending[i] || len(pending[i]) == 0 {
			return
		}
		st.Now = now
		pick := cfg.Policy.Pick(i, pending[i], st)
		if pick < 0 || pick >= len(pending[i]) {
			return
		}
		child := pending[i][pick]
		if !takeTask(i) {
			// No task to forward right now: keep the request pending;
			// trySend fires again when a task arrives at this node.
			return
		}
		pending[i] = append(pending[i][:pick:pick], pending[i][pick+1:]...)
		e := parentEdge[child]
		sending[i] = true
		dur := p.Edge(e).C.Float64() * edgeLoad(e).At(now)
		start := now
		push(now+dur, func() {
			sending[i] = false
			busyEdge[e] += now - start
			st.SentTo[e]++
			epochSent[e]++
			st.Buffer[child]++
			requested[child] = false
			tryCompute(child)
			trySend(child)
			request(child) // re-request if still below threshold
			trySend(i)
		})
	}

	// Epoch ticks.
	if cfg.EpochLength > 0 && cfg.OnEpoch != nil {
		var tick func()
		tick = func() {
			obs := &EpochObservation{
				NodeBusy:   make([]float64, n),
				NodeRate:   make([]float64, n),
				EdgeRate:   make([]float64, p.NumEdges()),
				EffectiveW: make([]float64, n),
				EffectiveC: make([]float64, p.NumEdges()),
			}
			for i := 0; i < n; i++ {
				obs.NodeBusy[i] = busyCpu[i] / cfg.EpochLength
				obs.NodeRate[i] = float64(epochDone[i]) / cfg.EpochLength
				if epochDone[i] > 0 {
					obs.EffectiveW[i] = busyCpu[i] / float64(epochDone[i])
				}
				busyCpu[i] = 0
				epochDone[i] = 0
			}
			for e := 0; e < p.NumEdges(); e++ {
				obs.EdgeRate[e] = float64(epochSent[e]) / cfg.EpochLength
				if epochSent[e] > 0 {
					obs.EffectiveC[e] = busyEdge[e] / float64(epochSent[e])
				}
				busyEdge[e] = 0
				epochSent[e] = 0
			}
			cfg.OnEpoch(now, obs)
			push(now+cfg.EpochLength, tick)
		}
		push(cfg.EpochLength, tick)
	}

	// Boot: master computes; every leaf-to-root chain starts
	// requesting.
	tryCompute(cfg.Master)
	for v := 0; v < n; v++ {
		if v != cfg.Master {
			request(v)
		}
	}

	processed := 0
	for h.Len() > 0 {
		if cfg.Interrupt != nil && processed%256 == 0 {
			select {
			case <-cfg.Interrupt:
				return nil, ErrInterrupted
			default:
			}
		}
		processed++
		ev := heap.Pop(&h).(*event)
		if cfg.Horizon > 0 && ev.t > cfg.Horizon {
			now = cfg.Horizon
			break
		}
		now = ev.t
		st.Now = now
		ev.fn()
		if cfg.Tasks > 0 && doneTotal >= cfg.Tasks {
			break
		}
		if math.IsInf(now, 0) {
			return nil, fmt.Errorf("sim: time diverged")
		}
	}

	res := &OnlineResult{
		Makespan: now,
		Done:     doneTotal,
		PerNode:  append([]int(nil), st.Done...),
		PerEdge:  append([]int(nil), st.SentTo...),
	}
	return res, nil
}

// ShortestPathTree returns, for each node, the entering edge of a
// shortest-path spanning tree rooted at master (-1 for the master
// itself), the overlay on which online policies run.
func ShortestPathTree(p *platform.Platform, master int) ([]int, error) {
	tree := make([]int, p.NumNodes())
	for v := range tree {
		tree[v] = -1
	}
	for v := 0; v < p.NumNodes(); v++ {
		if v == master {
			continue
		}
		path := p.ShortestPath(master, v)
		if path == nil {
			return nil, fmt.Errorf("sim: node %d unreachable from master", v)
		}
		tree[v] = path[len(path)-1]
	}
	return tree, nil
}
