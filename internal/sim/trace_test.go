package sim

import (
	"math/rand"
	"testing"
)

// The public simulation engine (pkg/steady/sim) queries traces at
// arbitrary times, including before the first knot, past the horizon,
// and on traces that never received a breakpoint; these tests pin the
// boundary behavior it relies on.

func TestTraceAtBoundaries(t *testing.T) {
	tr := StepTrace([]float64{0, 10, 20}, []float64{1, 2, 4})
	cases := []struct {
		t    float64
		want float64
	}{
		{-5, 1},  // before the first knot: clamp to the first segment
		{0, 1},   // exactly the first knot
		{5, 1},   // inside the first segment
		{10, 2},  // exactly a breakpoint: the new segment applies
		{15, 2},  // inside a middle segment
		{20, 4},  // last breakpoint
		{1e9, 4}, // far past the horizon: the last multiplier holds
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTraceEmptyAndNil(t *testing.T) {
	var nilTrace *Trace
	empty := &Trace{}
	for _, tr := range []*Trace{nilTrace, empty} {
		if got := tr.At(-1); got != 1 {
			t.Errorf("At(-1) on empty/nil trace = %v, want 1", got)
		}
		if got := tr.At(42); got != 1 {
			t.Errorf("At(42) on empty/nil trace = %v, want 1", got)
		}
		if got := tr.Mean(10); got != 1 {
			t.Errorf("Mean(10) on empty/nil trace = %v, want 1", got)
		}
	}
	// RandomWalkTrace with a degenerate horizon produces an empty
	// trace; it must behave as the identity rather than panic.
	rw := RandomWalkTrace(rand.New(rand.NewSource(1)), 0, 10, 1, 2)
	if got := rw.At(3); got != 1 {
		t.Errorf("degenerate random walk At(3) = %v, want 1", got)
	}
}

func TestTraceMeanBoundaries(t *testing.T) {
	tr := StepTrace([]float64{0, 10}, []float64{1, 3})
	if got := tr.Mean(20); got != 2 {
		t.Errorf("Mean(20) = %v, want 2", got)
	}
	// Horizon inside the first segment.
	if got := tr.Mean(10); got != 1 {
		t.Errorf("Mean(10) = %v, want 1", got)
	}
	// Non-positive horizon degenerates to the instantaneous value.
	if got := tr.Mean(0); got != 1 {
		t.Errorf("Mean(0) = %v, want 1", got)
	}
	if got := tr.Mean(-1); got != 1 {
		t.Errorf("Mean(-1) = %v, want 1", got)
	}
	// Constant traces are flat everywhere.
	ct := ConstantTrace(2.5)
	if got := ct.Mean(7); got != 2.5 {
		t.Errorf("constant Mean(7) = %v, want 2.5", got)
	}
}

func TestTraceMeanPastLastKnot(t *testing.T) {
	// Mean over a horizon far past the last knot weights the final
	// multiplier by the remaining time.
	tr := StepTrace([]float64{0, 10}, []float64{2, 4})
	// [0,10): 2, [10,40): 4 -> (10*2 + 30*4) / 40 = 140/40 = 3.5
	if got := tr.Mean(40); got != 3.5 {
		t.Errorf("Mean(40) = %v, want 3.5", got)
	}
}
