// Package sim provides the evaluation substrate of the reproduction:
// an exact, period-granular simulator that executes reconstructed
// periodic schedules under the §2 model (used to demonstrate
// steady-state convergence and the §4.2 asymptotic optimality), and a
// float64 event-driven one-port simulator for online policies and
// dynamically changing platforms (§5.5).
//
// Substitution note (DESIGN.md): the paper's cited experiments ran on
// real clusters; this simulator implements exactly the platform model
// the LPs are written against, so bound-vs-achieved comparisons are
// exact rather than noisy.
package sim

import (
	"fmt"
	"math/big"

	"repro/internal/schedule"
)

// MSStats reports a period-granular execution of a master-slave
// periodic schedule started with cold (empty) buffers.
type MSStats struct {
	// Periods is the number of simulated periods.
	Periods int64
	// Done is the total number of tasks completed.
	Done *big.Int
	// DonePerPeriod[p] is the number of tasks completed in period p
	// (only the first few differ once steady state is reached).
	DonePerPeriod []*big.Int
	// SteadyAfter is the first period index whose completion count
	// equals the schedule's TasksPerPeriod (-1 if never reached).
	SteadyAfter int64
}

// RunPeriodicMasterSlave executes the periodic schedule for the given
// number of periods with cold buffers: a node can only compute or
// forward task files it received in *earlier* periods (store-and-
// forward at period granularity, the §4.2 construction). The master
// holds the (unbounded) initial collection.
//
// Within a period the communication pattern is certified feasible by
// the slot decomposition (schedule.Periodic.Check), so the simulation
// tracks integral task counts per period, exactly.
func RunPeriodicMasterSlave(per *schedule.Periodic, periods int64) (*MSStats, error) {
	if err := per.Check(); err != nil {
		return nil, fmt.Errorf("sim: invalid schedule: %w", err)
	}
	p := per.P
	n := p.NumNodes()

	buffer := make([]*big.Int, n)
	for i := range buffer {
		buffer[i] = new(big.Int)
	}
	stats := &MSStats{Periods: periods, Done: new(big.Int), SteadyAfter: -1}

	recv := make([]*big.Int, n)
	for period := int64(0); period < periods; period++ {
		for i := range recv {
			recv[i] = new(big.Int)
		}
		doneThis := new(big.Int)

		for i := 0; i < n; i++ {
			// Available budget this period: buffered tasks (master:
			// unlimited, modeled by not debiting).
			avail := new(big.Int).Set(buffer[i])
			master := i == per.Master

			// Forward first (fixed edge order), then compute: any
			// fixed priority reaches steady state after at most
			// depth(G) periods once every upstream buffer is full.
			for _, e := range p.OutEdges(i) {
				want := per.EdgeTasks[e]
				x := new(big.Int).Set(want)
				if !master && avail.Cmp(x) < 0 {
					x.Set(avail)
				}
				if !master {
					avail.Sub(avail, x)
				}
				recv[p.Edge(e).To].Add(recv[p.Edge(e).To], x)
			}
			c := new(big.Int).Set(per.ComputeTasks[i])
			if !master && avail.Cmp(c) < 0 {
				c.Set(avail)
			}
			if !master {
				avail.Sub(avail, c)
			}
			doneThis.Add(doneThis, c)
			if !master {
				buffer[i].Set(avail)
			}
		}
		for i := 0; i < n; i++ {
			if i != per.Master {
				buffer[i].Add(buffer[i], recv[i])
			}
		}
		stats.Done.Add(stats.Done, doneThis)
		stats.DonePerPeriod = append(stats.DonePerPeriod, doneThis)
		if stats.SteadyAfter < 0 && doneThis.Cmp(per.TasksPerPeriod) == 0 {
			stats.SteadyAfter = period
		}
	}
	return stats, nil
}

// MakespanPeriods runs the schedule from cold buffers until at least
// n tasks are done and returns the number of whole periods used. The
// wall-clock makespan is periods * T; comparing it to the bound
// n / ntask(G) demonstrates the §4.2 asymptotic optimality (constant
// additive loss, independent of n).
func MakespanPeriods(per *schedule.Periodic, n *big.Int) (int64, error) {
	if err := per.Check(); err != nil {
		return 0, fmt.Errorf("sim: invalid schedule: %w", err)
	}
	if per.TasksPerPeriod.Sign() <= 0 {
		return 0, fmt.Errorf("sim: schedule does no work")
	}
	p := per.P
	nn := p.NumNodes()
	buffer := make([]*big.Int, nn)
	for i := range buffer {
		buffer[i] = new(big.Int)
	}
	done := new(big.Int)
	recv := make([]*big.Int, nn)
	// Safety cap: steady state is reached after at most depth
	// periods, so n tasks need at most n/rate + depth + 1 periods.
	depth := int64(p.MaxDepthFrom(per.Master))
	capPeriods := new(big.Int).Div(n, per.TasksPerPeriod).Int64() + depth + 2

	for period := int64(0); ; period++ {
		if period > capPeriods {
			return 0, fmt.Errorf("sim: exceeded expected %d periods (ramp-up never completed)", capPeriods)
		}
		for i := range recv {
			recv[i] = new(big.Int)
		}
		for i := 0; i < nn; i++ {
			avail := new(big.Int).Set(buffer[i])
			master := i == per.Master
			for _, e := range p.OutEdges(i) {
				x := new(big.Int).Set(per.EdgeTasks[e])
				if !master && avail.Cmp(x) < 0 {
					x.Set(avail)
				}
				if !master {
					avail.Sub(avail, x)
				}
				recv[p.Edge(e).To].Add(recv[p.Edge(e).To], x)
			}
			c := new(big.Int).Set(per.ComputeTasks[i])
			if !master && avail.Cmp(c) < 0 {
				c.Set(avail)
			}
			if !master {
				avail.Sub(avail, c)
				buffer[i].Set(avail)
			}
			done.Add(done, c)
		}
		for i := 0; i < nn; i++ {
			if i != per.Master {
				buffer[i].Add(buffer[i], recv[i])
			}
		}
		if done.Cmp(n) >= 0 {
			return period + 1, nil
		}
	}
}
