package platform

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rat"
)

// jsonPlatform is the serialized form used by the cmd tools.
type jsonPlatform struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Name string `json:"name"`
	W    string `json:"w"` // rational or "inf"
}

type jsonEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	C    string `json:"c"`
}

// WriteJSON serializes the platform.
func (p *Platform) WriteJSON(w io.Writer) error {
	jp := jsonPlatform{}
	for i := 0; i < p.NumNodes(); i++ {
		jp.Nodes = append(jp.Nodes, jsonNode{Name: p.Name(i), W: p.Weight(i).String()})
	}
	for _, e := range p.Edges() {
		jp.Edges = append(jp.Edges, jsonEdge{
			From: p.Name(e.From), To: p.Name(e.To), C: e.C.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}

// ReadJSON deserializes a platform written by WriteJSON.
func ReadJSON(r io.Reader) (*Platform, error) {
	var jp jsonPlatform
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("platform: decode: %w", err)
	}
	p := New()
	idx := make(map[string]int, len(jp.Nodes))
	for _, n := range jp.Nodes {
		var w Weight
		if n.W == "inf" {
			w = WInf()
		} else {
			v, err := rat.Parse(n.W)
			if err != nil {
				return nil, fmt.Errorf("platform: node %s: %w", n.Name, err)
			}
			w = W(v)
		}
		idx[n.Name] = p.AddNode(n.Name, w)
	}
	for _, e := range jp.Edges {
		from, okF := idx[e.From]
		to, okT := idx[e.To]
		if !okF || !okT {
			return nil, fmt.Errorf("platform: edge %s->%s references unknown node", e.From, e.To)
		}
		c, err := rat.Parse(e.C)
		if err != nil {
			return nil, fmt.Errorf("platform: edge %s->%s: %w", e.From, e.To, err)
		}
		p.AddEdge(from, to, c)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
