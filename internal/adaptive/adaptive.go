// Package adaptive implements the §5.5 dynamic version of
// steady-state scheduling: "divide the scheduling into phases; during
// each phase, machine and network parameters are collected ... this
// information will then guide the scheduling decisions for the next
// phase". It re-solves the steady-state LP each epoch from NWS-style
// forecasts (pkg/steady/control/forecast) and turns the activity
// variables into a work-allocation policy for the online simulator.
package adaptive

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/pkg/steady/control/forecast"
	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	sim "repro/pkg/steady/sim/event"
)

// maxDen bounds the denominators of measured values fed into the
// exact LP (continued-fraction approximation of float measurements).
const maxDen = 1 << 12

// QuotaPolicy serves, among the children requesting work, the one
// furthest behind its steady-state rate. Rates come from the current
// LP solution; SetRates swaps them at epoch boundaries.
type QuotaPolicy struct {
	// rate[e] is the target task rate (tasks per time unit) of
	// platform edge e under the current LP solution.
	rate []float64
	tree []int
}

// NewQuotaPolicy builds a policy over the given overlay tree.
func NewQuotaPolicy(tree []int, nEdges int) *QuotaPolicy {
	return &QuotaPolicy{rate: make([]float64, nEdges), tree: tree}
}

// SetRates installs the per-edge target rates of a new LP solution.
func (q *QuotaPolicy) SetRates(ms *core.MasterSlave) {
	for e := range q.rate {
		q.rate[e] = ms.TasksPerUnit(e).Float64()
	}
}

// Pick implements sim.Policy: maximum deficit = rate*now - sent.
func (q *QuotaPolicy) Pick(from int, pending []int, st *sim.OnlineState) int {
	best, bestDef := 0, -1e300
	for i, child := range pending {
		e := q.tree[child]
		def := q.rate[e]*st.Now - float64(st.SentTo[e])
		if def > bestDef {
			best, bestDef = i, def
		}
	}
	return best
}

// Name implements sim.Policy.
func (q *QuotaPolicy) Name() string { return "lp-quota" }

// Controller re-estimates the platform each epoch and re-solves the
// steady-state LP, feeding the new rates to its QuotaPolicy.
type Controller struct {
	base   *platform.Platform // nominal platform (topology + base costs)
	master int
	policy *QuotaPolicy

	wEst []forecast.Predictor // per node: observed seconds/task
	cEst []forecast.Predictor // per edge: observed seconds/file

	// basis is the optimal basis of the previous epoch's LP. The
	// estimated platform keeps its topology across epochs (only node
	// weights and edge costs move), so each re-solve warm-starts from
	// it and typically finishes in a handful of pivots.
	basis *lp.Basis

	// Resolves counts LP re-solves; WarmResolves counts the subset
	// that were warm-started from the previous epoch's basis;
	// Pivots accumulates simplex pivots across those re-solves (the
	// initial cold solve of NewController is excluded from all
	// three, so Pivots/Resolves is the per-re-solve cost).
	// LastThroughput is the latest LP optimum (on the estimated
	// platform).
	Resolves       int
	WarmResolves   int
	Pivots         int64
	LastThroughput rat.Rat
}

// NewController builds a controller for the nominal platform. The
// initial rates come from the LP on the nominal values.
func NewController(p *platform.Platform, master int, tree []int) (*Controller, *QuotaPolicy, error) {
	pol := NewQuotaPolicy(tree, p.NumEdges())
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		return nil, nil, fmt.Errorf("adaptive: initial LP: %w", err)
	}
	pol.SetRates(ms)
	c := &Controller{
		base:           p,
		master:         master,
		policy:         pol,
		wEst:           make([]forecast.Predictor, p.NumNodes()),
		cEst:           make([]forecast.Predictor, p.NumEdges()),
		basis:          ms.Basis,
		LastThroughput: ms.Throughput,
	}
	for i := range c.wEst {
		c.wEst[i] = forecast.NewAdaptive()
	}
	for e := range c.cEst {
		c.cEst[e] = forecast.NewAdaptive()
	}
	return c, pol, nil
}

// Ingest records one epoch's observations, returning an error naming
// every measurement the shared guard rejected (forecast.
// CheckMeasurement: NaN, ±Inf, zero, negative). Rejected measurements
// never reach a forecaster — and therefore can never reach
// rat.ApproxFloat, which panics on non-finite input — so a corrupted
// probe degrades one series instead of crashing the controller. The
// control plane (pkg/steady/control) applies the identical guard to
// /v1/deployments telemetry, mapping it to HTTP 400.
func (c *Controller) Ingest(obs *sim.EpochObservation) error {
	var errs []error
	for i := range c.wEst {
		if v := obs.EffectiveW[i]; v != 0 { // 0 = no observation this epoch
			if err := forecast.CheckMeasurement(v); err != nil {
				errs = append(errs, fmt.Errorf("node %s w=%v: %w", c.base.Name(i), v, err))
				continue
			}
			c.wEst[i].Update(v)
		}
	}
	for e := range c.cEst {
		if v := obs.EffectiveC[e]; v != 0 {
			if err := forecast.CheckMeasurement(v); err != nil {
				ed := c.base.Edge(e)
				errs = append(errs, fmt.Errorf("edge %s>%s c=%v: %w",
					c.base.Name(ed.From), c.base.Name(ed.To), v, err))
				continue
			}
			c.cEst[e].Update(v)
		}
	}
	return errors.Join(errs...)
}

// OnEpoch is wired into sim.OnlineConfig: it records the epoch's
// observations and re-solves the LP on the forecast platform. Invalid
// measurements are dropped by Ingest (the callback signature has
// nowhere to report them; callers that want the error use Ingest
// directly).
func (c *Controller) OnEpoch(now float64, obs *sim.EpochObservation) {
	_ = c.Ingest(obs)
	est := c.EstimatedPlatform()
	ms, err := core.SolveMasterSlavePortOpts(est, c.master, core.SendAndReceive,
		&lp.Options{WarmBasis: c.basis})
	if err != nil {
		// Keep the previous rates; a transient bad estimate must not
		// crash the run.
		return
	}
	c.Resolves++
	if ms.LP.WarmStarted {
		c.WarmResolves++
	}
	c.Pivots += int64(ms.LP.Pivots)
	c.basis = ms.Basis
	c.LastThroughput = ms.Throughput
	c.policy.SetRates(ms)
}

// EstimatedPlatform returns the forecast platform: same topology as
// the nominal one, with node weights and edge costs replaced by
// forecasts wherever at least one observation exists. A forecast the
// shared guard rejects (non-finite or non-positive — possible even
// over valid observations, e.g. a smoothed series decaying to a
// denormal that rounds to zero) falls back to the nominal value, so
// the returned platform is always valid and rat.ApproxFloat is never
// fed a value it would panic on.
func (c *Controller) EstimatedPlatform() *platform.Platform {
	q := platform.New()
	for i := 0; i < c.base.NumNodes(); i++ {
		w := c.base.Weight(i)
		if !w.Inf {
			if f := c.wEst[i].Predict(); f != 0 && forecast.CheckMeasurement(f) == nil {
				w = platform.W(rat.ApproxFloat(f, maxDen))
			}
		}
		q.AddNode(c.base.Name(i), w)
	}
	for _, ed := range c.base.Edges() {
		cost := ed.C
		eIdx := q.NumEdges()
		if f := c.cEst[eIdx].Predict(); f != 0 && forecast.CheckMeasurement(f) == nil {
			cost = rat.ApproxFloat(f, maxDen)
		}
		q.AddEdge(ed.From, ed.To, cost)
	}
	return q
}
