package adaptive

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/pkg/steady/control/forecast"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	sim "repro/pkg/steady/sim/event"
)

// driftStar builds a star whose second worker's link degrades 5x at
// t=200 while the first improves: the kind of change §5.5 targets.
func driftStar() (*platform.Platform, []*sim.LoadTrace, []*sim.LoadTrace) {
	p := platform.Star(platform.WInt(20),
		[]platform.Weight{platform.WInt(2), platform.WInt(2)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(1)})
	edgeLoad := []*sim.LoadTrace{
		sim.StepLoad([]float64{0, 200}, []float64{3, 1}),
		sim.StepLoad([]float64{0, 200}, []float64{1, 5}),
	}
	return p, nil, edgeLoad
}

func TestControllerResolvesAndAdapts(t *testing.T) {
	p, nodeLoad, edgeLoad := driftStar()
	tree, err := sim.ShortestPathTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctl, pol, err := NewController(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 600,
		Policy:      pol,
		NodeLoad:    nodeLoad,
		EdgeLoad:    edgeLoad,
		EpochLength: 50,
		OnEpoch:     ctl.OnEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Resolves < 5 {
		t.Fatalf("only %d LP re-solves in 12 epochs", ctl.Resolves)
	}
	if res.Done == 0 {
		t.Fatal("no tasks done")
	}
	if ctl.LastThroughput.Sign() <= 0 {
		t.Fatal("no estimated throughput")
	}
}

func TestEstimatedPlatformTracksObservations(t *testing.T) {
	p := platform.Star(platform.WInt(4),
		[]platform.Weight{platform.WInt(2)}, []rat.Rat{rat.FromInt(1)})
	tree, _ := sim.ShortestPathTree(p, 0)
	ctl, _, err := NewController(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	// Feed observations: worker really takes 6 s/task, link 2 s/file.
	obs := &sim.EpochObservation{
		EffectiveW: []float64{0, 6},
		EffectiveC: []float64{2},
		NodeBusy:   make([]float64, 2),
		NodeRate:   make([]float64, 2),
		EdgeRate:   make([]float64, 1),
	}
	for i := 0; i < 5; i++ {
		ctl.OnEpoch(float64(i+1)*10, obs)
	}
	est := ctl.EstimatedPlatform()
	if got := est.Weight(1).Val.Float64(); got < 5.5 || got > 6.5 {
		t.Fatalf("estimated worker weight %v, want ~6", got)
	}
	if got := est.Edge(0).C.Float64(); got < 1.8 || got > 2.2 {
		t.Fatalf("estimated link cost %v, want ~2", got)
	}
	// Unobserved nodes keep nominal values.
	if !est.Weight(0).Val.Equal(rat.FromInt(4)) {
		t.Fatal("unobserved master weight changed")
	}
}

func TestAdaptiveBeatsStaleStaticQuotas(t *testing.T) {
	// E8 in miniature: under drift, epoch re-solving must not lose to
	// quotas frozen at t=0 (and usually wins).
	p, nodeLoad, edgeLoad := driftStar()
	tree, err := sim.ShortestPathTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(adaptive bool) int {
		ctl, pol, err := NewController(p, 0, tree)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.OnlineConfig{
			Platform: p, Tree: tree, Master: 0, Horizon: 800,
			Policy:   pol,
			NodeLoad: nodeLoad,
			EdgeLoad: edgeLoad,
		}
		if adaptive {
			cfg.EpochLength = 50
			cfg.OnEpoch = ctl.OnEpoch
		}
		res, err := sim.RunOnlineMasterSlave(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Done
	}
	static := run(false)
	dyn := run(true)
	t.Logf("drifting star: static quotas %d tasks, adaptive %d tasks", static, dyn)
	if dyn < static*95/100 {
		t.Fatalf("adaptive (%d) lost badly to static (%d)", dyn, static)
	}
}

func TestQuotaPolicyPrefersDeficit(t *testing.T) {
	p := platform.Star(platform.WInt(10),
		[]platform.Weight{platform.WInt(1), platform.WInt(1)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(1)})
	tree, _ := sim.ShortestPathTree(p, 0)
	pol := NewQuotaPolicy(tree, p.NumEdges())
	pol.rate[tree[1]] = 1.0 // child 1 should get 1 task/unit
	pol.rate[tree[2]] = 0.1 // child 2 nearly nothing
	st := &sim.OnlineState{
		P:      p,
		Now:    10,
		SentTo: []int{2, 0}, // child 1 already received 2, child 2 none
	}
	// Deficits: child1 = 1*10-2 = 8; child2 = 0.1*10-0 = 1.
	if pick := pol.Pick(0, []int{1, 2}, st); pick != 0 {
		t.Fatalf("picked %d, want child 1 (max deficit)", pick)
	}
	if pol.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestQuotaVsDemandDrivenOnStablePlatform(t *testing.T) {
	// Sanity: on a stable platform, LP quotas keep up with plain
	// demand-driven FCFS (both should saturate the same bound).
	p := platform.Star(platform.WInt(20),
		[]platform.Weight{platform.WInt(2), platform.WInt(4)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(2)})
	tree, _ := sim.ShortestPathTree(p, 0)
	ctl, pol, err := NewController(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	_ = ctl
	quota, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 500, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 500, Policy: baseline.FCFS{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stable star: lp-quota %d, fcfs %d", quota.Done, fcfs.Done)
	if quota.Done < fcfs.Done*90/100 {
		t.Fatalf("lp-quota (%d) far below fcfs (%d) on a stable platform", quota.Done, fcfs.Done)
	}
}

// TestIngestRejectsBadMeasurements table-tests the shared guard on
// the simulator's observation path: hostile values (NaN, ±Inf, zero
// is "no observation", negatives) are reported per-series and never
// reach a forecaster — the next EstimatedPlatform stays nominal and
// rat.ApproxFloat never sees a value it would panic on.
func TestIngestRejectsBadMeasurements(t *testing.T) {
	newCtl := func(t *testing.T) *Controller {
		t.Helper()
		p := platform.Star(platform.WInt(4),
			[]platform.Weight{platform.WInt(2)}, []rat.Rat{rat.FromInt(1)})
		tree, _ := sim.ShortestPathTree(p, 0)
		ctl, _, err := NewController(p, 0, tree)
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	obs := func(w1, c0 float64) *sim.EpochObservation {
		return &sim.EpochObservation{
			EffectiveW: []float64{0, w1},
			EffectiveC: []float64{c0},
		}
	}
	cases := map[string]struct {
		obs     *sim.EpochObservation
		substr  string
		wantErr bool
	}{
		"clean":         {obs(6, 2), "", false},
		"unobserved":    {obs(0, 0), "", false},
		"NaN node":      {obs(math.NaN(), 2), "node", true},
		"+Inf node":     {obs(math.Inf(1), 2), "node", true},
		"-Inf edge":     {obs(6, math.Inf(-1)), "edge", true},
		"negative node": {obs(-1, 2), "node", true},
		"negative edge": {obs(6, -0.5), "edge", true},
		"both bad":      {obs(math.NaN(), math.Inf(1)), "edge", true},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			ctl := newCtl(t)
			err := ctl.Ingest(tc.obs)
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("Ingest rejected a clean observation: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Ingest accepted a hostile observation")
			}
			if !errors.Is(err, forecast.ErrBadMeasurement) {
				t.Fatalf("error %v does not wrap forecast.ErrBadMeasurement", err)
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("error %q does not name the %s series", err, tc.substr)
			}
			// The rejected series stays nominal; valid measurements in
			// the same observation are still applied.
			est := ctl.EstimatedPlatform()
			if bad := tc.obs.EffectiveW[1]; bad != 0 && forecast.CheckMeasurement(bad) != nil {
				if !est.Weight(1).Val.Equal(rat.FromInt(2)) {
					t.Fatalf("rejected node measurement reached the model: w=%v", est.Weight(1).Val)
				}
			}
			if bad := tc.obs.EffectiveC[0]; bad != 0 && forecast.CheckMeasurement(bad) != nil {
				if !est.Edge(0).C.Equal(rat.FromInt(1)) {
					t.Fatalf("rejected edge measurement reached the model: c=%v", est.Edge(0).C)
				}
			}
		})
	}
	// OnEpoch survives a fully hostile epoch (it drops the batch and
	// re-solves on the previous estimates) — the §5.5 loop must not
	// crash on one corrupted probe.
	ctl := newCtl(t)
	ctl.OnEpoch(10, obs(math.NaN(), math.Inf(1)))
	if ctl.LastThroughput.Sign() <= 0 {
		t.Fatal("controller lost its schedule after a hostile epoch")
	}
}

// TestIngestPartialApplication: a bad node series must not block a
// good edge series in the same epoch (per-measurement rejection, not
// whole-batch — the simulator path has no transactional caller to
// retry, unlike the HTTP telemetry endpoint).
func TestIngestPartialApplication(t *testing.T) {
	p := platform.Star(platform.WInt(4),
		[]platform.Weight{platform.WInt(2)}, []rat.Rat{rat.FromInt(1)})
	tree, _ := sim.ShortestPathTree(p, 0)
	ctl, _, err := NewController(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err = ctl.Ingest(&sim.EpochObservation{
			EffectiveW: []float64{0, math.NaN()},
			EffectiveC: []float64{3},
		})
	}
	if err == nil {
		t.Fatal("hostile node series accepted")
	}
	est := ctl.EstimatedPlatform()
	if !est.Weight(1).Val.Equal(rat.FromInt(2)) {
		t.Fatalf("hostile node series reached the model: %v", est.Weight(1).Val)
	}
	if got := est.Edge(0).C.Float64(); got < 2.8 || got > 3.2 {
		t.Fatalf("valid edge series blocked by hostile node series: c=%v", got)
	}
}
