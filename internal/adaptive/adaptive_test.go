package adaptive

import (
	"testing"

	"repro/internal/baseline"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	sim "repro/pkg/steady/sim/event"
)

// driftStar builds a star whose second worker's link degrades 5x at
// t=200 while the first improves: the kind of change §5.5 targets.
func driftStar() (*platform.Platform, []*sim.LoadTrace, []*sim.LoadTrace) {
	p := platform.Star(platform.WInt(20),
		[]platform.Weight{platform.WInt(2), platform.WInt(2)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(1)})
	edgeLoad := []*sim.LoadTrace{
		sim.StepLoad([]float64{0, 200}, []float64{3, 1}),
		sim.StepLoad([]float64{0, 200}, []float64{1, 5}),
	}
	return p, nil, edgeLoad
}

func TestControllerResolvesAndAdapts(t *testing.T) {
	p, nodeLoad, edgeLoad := driftStar()
	tree, err := sim.ShortestPathTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctl, pol, err := NewController(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 600,
		Policy:      pol,
		NodeLoad:    nodeLoad,
		EdgeLoad:    edgeLoad,
		EpochLength: 50,
		OnEpoch:     ctl.OnEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Resolves < 5 {
		t.Fatalf("only %d LP re-solves in 12 epochs", ctl.Resolves)
	}
	if res.Done == 0 {
		t.Fatal("no tasks done")
	}
	if ctl.LastThroughput.Sign() <= 0 {
		t.Fatal("no estimated throughput")
	}
}

func TestEstimatedPlatformTracksObservations(t *testing.T) {
	p := platform.Star(platform.WInt(4),
		[]platform.Weight{platform.WInt(2)}, []rat.Rat{rat.FromInt(1)})
	tree, _ := sim.ShortestPathTree(p, 0)
	ctl, _, err := NewController(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	// Feed observations: worker really takes 6 s/task, link 2 s/file.
	obs := &sim.EpochObservation{
		EffectiveW: []float64{0, 6},
		EffectiveC: []float64{2},
		NodeBusy:   make([]float64, 2),
		NodeRate:   make([]float64, 2),
		EdgeRate:   make([]float64, 1),
	}
	for i := 0; i < 5; i++ {
		ctl.OnEpoch(float64(i+1)*10, obs)
	}
	est := ctl.EstimatedPlatform()
	if got := est.Weight(1).Val.Float64(); got < 5.5 || got > 6.5 {
		t.Fatalf("estimated worker weight %v, want ~6", got)
	}
	if got := est.Edge(0).C.Float64(); got < 1.8 || got > 2.2 {
		t.Fatalf("estimated link cost %v, want ~2", got)
	}
	// Unobserved nodes keep nominal values.
	if !est.Weight(0).Val.Equal(rat.FromInt(4)) {
		t.Fatal("unobserved master weight changed")
	}
}

func TestAdaptiveBeatsStaleStaticQuotas(t *testing.T) {
	// E8 in miniature: under drift, epoch re-solving must not lose to
	// quotas frozen at t=0 (and usually wins).
	p, nodeLoad, edgeLoad := driftStar()
	tree, err := sim.ShortestPathTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(adaptive bool) int {
		ctl, pol, err := NewController(p, 0, tree)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.OnlineConfig{
			Platform: p, Tree: tree, Master: 0, Horizon: 800,
			Policy:   pol,
			NodeLoad: nodeLoad,
			EdgeLoad: edgeLoad,
		}
		if adaptive {
			cfg.EpochLength = 50
			cfg.OnEpoch = ctl.OnEpoch
		}
		res, err := sim.RunOnlineMasterSlave(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Done
	}
	static := run(false)
	dyn := run(true)
	t.Logf("drifting star: static quotas %d tasks, adaptive %d tasks", static, dyn)
	if dyn < static*95/100 {
		t.Fatalf("adaptive (%d) lost badly to static (%d)", dyn, static)
	}
}

func TestQuotaPolicyPrefersDeficit(t *testing.T) {
	p := platform.Star(platform.WInt(10),
		[]platform.Weight{platform.WInt(1), platform.WInt(1)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(1)})
	tree, _ := sim.ShortestPathTree(p, 0)
	pol := NewQuotaPolicy(tree, p.NumEdges())
	pol.rate[tree[1]] = 1.0 // child 1 should get 1 task/unit
	pol.rate[tree[2]] = 0.1 // child 2 nearly nothing
	st := &sim.OnlineState{
		P:      p,
		Now:    10,
		SentTo: []int{2, 0}, // child 1 already received 2, child 2 none
	}
	// Deficits: child1 = 1*10-2 = 8; child2 = 0.1*10-0 = 1.
	if pick := pol.Pick(0, []int{1, 2}, st); pick != 0 {
		t.Fatalf("picked %d, want child 1 (max deficit)", pick)
	}
	if pol.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestQuotaVsDemandDrivenOnStablePlatform(t *testing.T) {
	// Sanity: on a stable platform, LP quotas keep up with plain
	// demand-driven FCFS (both should saturate the same bound).
	p := platform.Star(platform.WInt(20),
		[]platform.Weight{platform.WInt(2), platform.WInt(4)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(2)})
	tree, _ := sim.ShortestPathTree(p, 0)
	ctl, pol, err := NewController(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	_ = ctl
	quota, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 500, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 500, Policy: baseline.FCFS{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stable star: lp-quota %d, fcfs %d", quota.Done, fcfs.Done)
	if quota.Done < fcfs.Done*90/100 {
		t.Fatalf("lp-quota (%d) far below fcfs (%d) on a stable platform", quota.Done, fcfs.Done)
	}
}
