package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	sim "repro/pkg/steady/sim/event"
)

func star(t *testing.T) (*platform.Platform, []int) {
	t.Helper()
	p := platform.Star(platform.WInt(4),
		[]platform.Weight{platform.WInt(1), platform.WInt(2), platform.WInt(8)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(2), rat.FromInt(1)})
	tree, err := sim.ShortestPathTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p, tree
}

func runPolicy(t *testing.T, p *platform.Platform, tree []int, pol sim.Policy, tasks int) *sim.OnlineResult {
	t.Helper()
	res, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Tasks: tasks, Policy: pol,
	})
	if err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	if res.Done != tasks {
		t.Fatalf("%s: done %d != %d", pol.Name(), res.Done, tasks)
	}
	return res
}

func TestAllPoliciesComplete(t *testing.T) {
	p, tree := star(t)
	policies := []sim.Policy{
		FCFS{},
		NewRoundRobin(),
		FastestFirst{},
		BandwidthCentric{Tree: tree},
		Random{Rng: rand.New(rand.NewSource(9))},
	}
	for _, pol := range policies {
		res := runPolicy(t, p, tree, pol, 300)
		if res.Makespan <= 0 {
			t.Fatalf("%s: zero makespan", pol.Name())
		}
	}
}

func TestPoliciesRespectSteadyStateBound(t *testing.T) {
	// No policy can asymptotically beat ntask(G): tasks/time <= ntask.
	p, tree := star(t)
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := ms.Throughput.Float64()
	const tasks = 3000
	for _, pol := range []sim.Policy{FCFS{}, FastestFirst{}, BandwidthCentric{Tree: tree}} {
		res := runPolicy(t, p, tree, pol, tasks)
		rate := float64(tasks) / res.Makespan
		if rate > opt*1.001 {
			t.Fatalf("%s achieves %v tasks/unit, beating the LP optimum %v",
				pol.Name(), rate, opt)
		}
		t.Logf("%s: rate %.4f vs optimum %.4f (efficiency %.1f%%)",
			pol.Name(), rate, opt, 100*rate/opt)
	}
}

func TestBandwidthCentricBeatsFastestFirstWhenCommBound(t *testing.T) {
	// A fast worker behind a terrible link vs a modest worker behind
	// a good link: fastest-first wastes the master's port feeding the
	// fast-but-far machine — the [11] scenario.
	p := platform.Star(platform.WInt(50),
		[]platform.Weight{platform.WInt(1), platform.WInt(3)},
		[]rat.Rat{rat.FromInt(10), rat.FromInt(1)})
	tree, err := sim.ShortestPathTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 400
	ff := runPolicy(t, p, tree, FastestFirst{}, tasks)
	bc := runPolicy(t, p, tree, BandwidthCentric{Tree: tree}, tasks)
	if bc.Makespan >= ff.Makespan {
		t.Fatalf("bandwidth-centric (%.1f) not better than fastest-first (%.1f)",
			bc.Makespan, ff.Makespan)
	}
}

func TestListScheduleMakespan(t *testing.T) {
	p, tree := star(t)
	m1, err := ListScheduleMakespan(p, 0, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One task: best single resource. Master computes in 4 with no
	// comm; worker 0 needs 1 (comm) + 1 (compute) = 2.
	if m1 != 2 {
		t.Fatalf("1-task EFT = %v, want 2", m1)
	}
	m100, err := ListScheduleMakespan(p, 0, tree, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m100 <= m1 {
		t.Fatal("makespan must grow with n")
	}
	// Compute-only bound is a true lower bound.
	lb, err := ComputeOnlyMakespan(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m100 < lb {
		t.Fatalf("EFT %v beats compute-only bound %v", m100, lb)
	}
}

func TestListScheduleRespectsSteadyStateAsymptotics(t *testing.T) {
	p, tree := star(t)
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	m, err := ListScheduleMakespan(p, 0, tree, n)
	if err != nil {
		t.Fatal(err)
	}
	lb := float64(n) / ms.Throughput.Float64()
	if m < lb*0.999 {
		t.Fatalf("EFT makespan %v beats steady-state bound %v", m, lb)
	}
	t.Logf("EFT: %.1f vs steady-state bound %.1f (ratio %.3f)", m, lb, m/lb)
}

func TestComputeOnlyMakespan(t *testing.T) {
	p := platform.Star(platform.WInt(2),
		[]platform.Weight{platform.WInt(2)}, []rat.Rat{rat.One()})
	m, err := ComputeOnlyMakespan(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Two w=2 nodes, 10 tasks -> 5 each -> 10 time units.
	if m != 10 {
		t.Fatalf("compute-only = %v, want 10", m)
	}
}

func TestListScheduleErrors(t *testing.T) {
	p, tree := star(t)
	if _, err := ListScheduleMakespan(p, 0, tree, 0); err == nil {
		t.Fatal("expected n error")
	}
	if _, err := ListScheduleMakespan(p, 0, tree[:1], 5); err == nil {
		t.Fatal("expected tree error")
	}
	q := platform.New()
	q.AddNode("F", platform.WInf())
	if _, err := ComputeOnlyMakespan(q, 3); err == nil {
		t.Fatal("expected no-compute error")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, pol := range []sim.Policy{
		FCFS{}, NewRoundRobin(), FastestFirst{},
		BandwidthCentric{}, Random{Rng: rand.New(rand.NewSource(1))},
	} {
		if pol.Name() == "" || names[pol.Name()] {
			t.Fatalf("bad or duplicate policy name %q", pol.Name())
		}
		names[pol.Name()] = true
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rrp := NewRoundRobin()
	st := &sim.OnlineState{}
	picks := map[int]int{}
	for i := 0; i < 6; i++ {
		picks[rrp.Pick(0, []int{10, 11, 12}, st)]++
	}
	if picks[0] != 2 || picks[1] != 2 || picks[2] != 2 {
		t.Fatalf("round robin not fair: %v", picks)
	}
}
