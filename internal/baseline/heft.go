package baseline

import (
	"container/heap"
	"fmt"

	"repro/pkg/steady/platform"
)

// ListScheduleMakespan computes the makespan of the classical
// earliest-finish-time list schedule for n identical independent
// tasks on a tree overlay (HEFT degenerates to EFT when all tasks are
// equal): tasks are assigned one by one to the resource that would
// finish them soonest, respecting the one-port constraint on every
// hop of the task file's route from the master.
//
// This is the offline makespan-oriented strawman of §1: polynomial,
// reasonable, and measurably worse than the steady-state schedule on
// communication-bound platforms because it reasons per-task instead
// of per-rate.
func ListScheduleMakespan(p *platform.Platform, master int, tree []int, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("baseline: n must be positive")
	}
	nn := p.NumNodes()
	if len(tree) != nn {
		return 0, fmt.Errorf("baseline: tree size mismatch")
	}
	// Route (edge list, master -> node) per node.
	routes := make([][]int, nn)
	for v := 0; v < nn; v++ {
		if v == master {
			continue
		}
		var rev []int
		at := v
		for at != master {
			e := tree[at]
			if e < 0 || p.Edge(e).To != at {
				return 0, fmt.Errorf("baseline: malformed tree at node %d", v)
			}
			rev = append(rev, e)
			at = p.Edge(e).From
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		routes[v] = rev
	}

	var (
		sendFree = make([]float64, nn) // next time a node's out-port is free
		recvFree = make([]float64, nn) // next time a node's in-port is free
		cpuFree  = make([]float64, nn) // next time a node's cpu is free
	)
	makespan := 0.0
	for task := 0; task < n; task++ {
		bestNode, bestFinish := -1, 0.0
		// Candidate evaluation is non-destructive: recompute the
		// finish time for each node, pick the min, then commit.
		for v := 0; v < nn; v++ {
			if !p.CanCompute(v) {
				continue
			}
			finish := finishTime(p, v, routes[v], sendFree, recvFree, cpuFree, false)
			if bestNode < 0 || finish < bestFinish {
				bestNode, bestFinish = v, finish
			}
		}
		if bestNode < 0 {
			return 0, fmt.Errorf("baseline: no compute node")
		}
		finishTime(p, bestNode, routes[bestNode], sendFree, recvFree, cpuFree, true)
		if bestFinish > makespan {
			makespan = bestFinish
		}
	}
	return makespan, nil
}

// finishTime computes (and optionally commits) the earliest finish
// time of one task executed on node v, whose file travels hop by hop
// from the master.
func finishTime(p *platform.Platform, v int, route []int, sendFree, recvFree, cpuFree []float64, commit bool) float64 {
	t := 0.0
	// Each hop waits for the sender's out-port and receiver's in-port.
	for _, e := range route {
		ed := p.Edge(e)
		start := t
		if sendFree[ed.From] > start {
			start = sendFree[ed.From]
		}
		if recvFree[ed.To] > start {
			start = recvFree[ed.To]
		}
		end := start + ed.C.Float64()
		if commit {
			sendFree[ed.From] = end
			recvFree[ed.To] = end
		}
		t = end
	}
	start := t
	if cpuFree[v] > start {
		start = cpuFree[v]
	}
	end := start + p.Weight(v).Val.Float64()
	if commit {
		cpuFree[v] = end
	}
	return end
}

// taskHeapItem supports SelfishMakespan.
type taskHeapItem struct {
	free float64
	node int
}

type taskHeap []taskHeapItem

func (h taskHeap) Len() int            { return len(h) }
func (h taskHeap) Less(i, j int) bool  { return h[i].free < h[j].free }
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(taskHeapItem)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ComputeOnlyMakespan is the no-communication lower bound: n tasks
// spread over all compute nodes ignoring every transfer. No schedule
// can beat it, and the gap to the steady-state makespan quantifies
// how communication-bound the platform is.
func ComputeOnlyMakespan(p *platform.Platform, n int) (float64, error) {
	var h taskHeap
	for v := 0; v < p.NumNodes(); v++ {
		if p.CanCompute(v) {
			h = append(h, taskHeapItem{0, v})
		}
	}
	if len(h) == 0 {
		return 0, fmt.Errorf("baseline: no compute node")
	}
	heap.Init(&h)
	makespan := 0.0
	for task := 0; task < n; task++ {
		it := heap.Pop(&h).(taskHeapItem)
		end := it.free + p.Weight(it.node).Val.Float64()
		if end > makespan {
			makespan = end
		}
		heap.Push(&h, taskHeapItem{end, it.node})
	}
	return makespan, nil
}
