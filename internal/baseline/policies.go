// Package baseline implements the makespan-oriented heuristics that
// steady-state scheduling is evaluated against (§1: "makespan
// minimization turned out to be NP-hard in most practical
// situations"; practitioners therefore run greedy online policies).
//
// The demand-driven policies plug into sim.RunOnlineMasterSlave; the
// offline list scheduler (heft.go) provides the classical
// earliest-finish-time estimate.
package baseline

import (
	"math/rand"

	sim "repro/pkg/steady/sim/event"
)

// FCFS serves child requests in arrival order.
type FCFS struct{}

// Pick implements sim.Policy.
func (FCFS) Pick(from int, pending []int, st *sim.OnlineState) int { return 0 }

// Name implements sim.Policy.
func (FCFS) Name() string { return "fcfs" }

// RoundRobin cycles through children regardless of arrival order.
type RoundRobin struct {
	next map[int]int
}

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{next: map[int]int{}} }

// Pick implements sim.Policy.
func (rrp *RoundRobin) Pick(from int, pending []int, st *sim.OnlineState) int {
	i := rrp.next[from] % len(pending)
	rrp.next[from]++
	return i
}

// Name implements sim.Policy.
func (rrp *RoundRobin) Name() string { return "round-robin" }

// FastestFirst serves the requesting child with the smallest
// computation weight w (the "give work to the fastest machine"
// folk heuristic; blind to communication costs).
type FastestFirst struct{}

// Pick implements sim.Policy.
func (FastestFirst) Pick(from int, pending []int, st *sim.OnlineState) int {
	best := 0
	for i := 1; i < len(pending); i++ {
		wi := st.P.Weight(pending[i])
		wb := st.P.Weight(pending[best])
		switch {
		case wb.Inf && !wi.Inf:
			best = i
		case !wb.Inf && !wi.Inf && wi.Val.Less(wb.Val):
			best = i
		}
	}
	return best
}

// Name implements sim.Policy.
func (FastestFirst) Name() string { return "fastest-first" }

// BandwidthCentric serves the requesting child with the cheapest
// incoming link c, the bandwidth-centric principle of Carter et al.
// [11]: on a tree it is the delegation rule that realizes the optimal
// steady state without global knowledge.
type BandwidthCentric struct {
	// Tree maps each node to its parent edge, as in sim.OnlineConfig.
	Tree []int
}

// Pick implements sim.Policy.
func (b BandwidthCentric) Pick(from int, pending []int, st *sim.OnlineState) int {
	best := 0
	for i := 1; i < len(pending); i++ {
		ci := st.P.Edge(b.Tree[pending[i]]).C
		cb := st.P.Edge(b.Tree[pending[best]]).C
		if ci.Less(cb) {
			best = i
		}
	}
	return best
}

// Name implements sim.Policy.
func (b BandwidthCentric) Name() string { return "bandwidth-centric" }

// Random serves a uniformly random pending request (a control
// baseline).
type Random struct {
	Rng *rand.Rand
}

// Pick implements sim.Policy.
func (r Random) Pick(from int, pending []int, st *sim.OnlineState) int {
	return r.Rng.Intn(len(pending))
}

// Name implements sim.Policy.
func (r Random) Name() string { return "random" }
