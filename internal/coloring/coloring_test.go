package coloring

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/rat"
)

func rr(n, d int64) rat.Rat { return rat.New(n, d) }
func ri(n int64) rat.Rat    { return rat.FromInt(n) }

// checkDecomposition verifies all the §4.1 guarantees:
//   - every slot is a matching (no shared left node, no shared right node);
//   - per-edge durations sum exactly to the edge's weight;
//   - the total duration equals Delta (optimal for bipartite).
func checkDecomposition(t *testing.T, nL, nR int, edges []Edge, slots []Matching, delta rat.Rat) {
	t.Helper()
	perEdge := make(map[int]rat.Rat) // ID -> accumulated duration
	total := rat.Zero()
	for si, s := range slots {
		if s.Dur.Sign() <= 0 {
			t.Fatalf("slot %d has non-positive duration %v", si, s.Dur)
		}
		seenL := make(map[int]bool)
		seenR := make(map[int]bool)
		for _, e := range s.Edges {
			if seenL[e.L] {
				t.Fatalf("slot %d: left node %d used twice (one-port violation)", si, e.L)
			}
			if seenR[e.R] {
				t.Fatalf("slot %d: right node %d used twice (one-port violation)", si, e.R)
			}
			seenL[e.L], seenR[e.R] = true, true
			if !e.W.Equal(s.Dur) {
				t.Fatalf("slot %d: edge weight %v != slot duration %v", si, e.W, s.Dur)
			}
			perEdge[e.ID] = perEdge[e.ID].Add(s.Dur)
		}
		total = total.Add(s.Dur)
	}
	for _, e := range edges {
		if got := perEdge[e.ID]; !got.Equal(e.W) {
			t.Fatalf("edge %d: scheduled %v, want %v", e.ID, got, e.W)
		}
	}
	if !total.Equal(delta) {
		t.Fatalf("total duration %v != Delta %v (decomposition not optimal)", total, delta)
	}
	maxSlots := len(edges) + nL + nR + 2
	if len(slots) > maxSlots {
		t.Fatalf("%d slots exceeds polynomial bound %d", len(slots), maxSlots)
	}
}

func TestDecomposeEmpty(t *testing.T) {
	slots, delta, err := DecomposeBipartite(3, 3, nil)
	if err != nil || len(slots) != 0 || !delta.IsZero() {
		t.Fatalf("empty: %v %v %v", slots, delta, err)
	}
}

func TestDecomposeSingleEdge(t *testing.T) {
	edges := []Edge{{L: 0, R: 0, W: rr(3, 2), ID: 0}}
	slots, delta, err := DecomposeBipartite(1, 1, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Equal(rr(3, 2)) {
		t.Fatalf("delta = %v", delta)
	}
	checkDecomposition(t, 1, 1, edges, slots, delta)
}

func TestDecomposeConflicts(t *testing.T) {
	// Two edges sharing a sender must serialize.
	edges := []Edge{
		{L: 0, R: 0, W: ri(1), ID: 0},
		{L: 0, R: 1, W: ri(2), ID: 1},
	}
	slots, delta, err := DecomposeBipartite(1, 2, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Equal(ri(3)) {
		t.Fatalf("delta = %v, want 3", delta)
	}
	checkDecomposition(t, 1, 2, edges, slots, delta)
}

func TestDecomposeParallelizable(t *testing.T) {
	// Disjoint pairs fit in a single slot: Delta = 1 even with 3 edges.
	edges := []Edge{
		{L: 0, R: 0, W: ri(1), ID: 0},
		{L: 1, R: 1, W: ri(1), ID: 1},
		{L: 2, R: 2, W: ri(1), ID: 2},
	}
	slots, delta, err := DecomposeBipartite(3, 3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Equal(ri(1)) {
		t.Fatalf("delta = %v, want 1", delta)
	}
	checkDecomposition(t, 3, 3, edges, slots, delta)
}

func TestDecomposeAsymmetricSides(t *testing.T) {
	// More right nodes than left; rational weights.
	edges := []Edge{
		{L: 0, R: 0, W: rr(1, 3), ID: 0},
		{L: 0, R: 1, W: rr(1, 2), ID: 1},
		{L: 0, R: 2, W: rr(1, 6), ID: 2},
		{L: 1, R: 0, W: rr(2, 3), ID: 3},
		{L: 1, R: 3, W: rr(1, 4), ID: 4},
	}
	slots, delta, err := DecomposeBipartite(2, 4, edges)
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, 2, 4, edges, slots, delta)
}

func TestDecomposeMultigraph(t *testing.T) {
	// Parallel edges between the same pair must serialize.
	edges := []Edge{
		{L: 0, R: 0, W: ri(1), ID: 0},
		{L: 0, R: 0, W: ri(1), ID: 1},
	}
	slots, delta, err := DecomposeBipartite(1, 1, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Equal(ri(2)) {
		t.Fatalf("delta = %v, want 2", delta)
	}
	checkDecomposition(t, 1, 1, edges, slots, delta)
}

func TestDecomposeZeroWeightEdgesIgnored(t *testing.T) {
	edges := []Edge{
		{L: 0, R: 0, W: rat.Zero(), ID: 0},
		{L: 0, R: 1, W: ri(1), ID: 1},
	}
	slots, delta, err := DecomposeBipartite(1, 2, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Equal(ri(1)) {
		t.Fatalf("delta = %v", delta)
	}
	for _, s := range slots {
		for _, e := range s.Edges {
			if e.ID == 0 {
				t.Fatal("zero-weight edge scheduled")
			}
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, _, err := DecomposeBipartite(1, 1, []Edge{{L: 0, R: 0, W: ri(-1)}}); err == nil {
		t.Fatal("expected negative-weight error")
	}
	if _, _, err := DecomposeBipartite(1, 1, []Edge{{L: 5, R: 0, W: ri(1)}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestDecomposeRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		nL := 1 + rng.Intn(8)
		nR := 1 + rng.Intn(8)
		nE := rng.Intn(25)
		var edges []Edge
		for i := 0; i < nE; i++ {
			edges = append(edges, Edge{
				L:  rng.Intn(nL),
				R:  rng.Intn(nR),
				W:  rr(int64(rng.Intn(12)), int64(1+rng.Intn(6))),
				ID: i,
			})
		}
		slots, delta, err := DecomposeBipartite(nL, nR, edges)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Filter zero-weight edges for the exactness check.
		var nz []Edge
		for _, e := range edges {
			if e.W.Sign() > 0 {
				nz = append(nz, e)
			}
		}
		checkDecomposition(t, nL, nR, nz, slots, delta)
	}
}

func TestLoads(t *testing.T) {
	edges := []Edge{
		{L: 0, R: 1, W: ri(2)},
		{L: 0, R: 0, W: ri(1)},
	}
	l, r := Loads(2, 2, edges)
	if !l[0].Equal(ri(3)) || !l[1].IsZero() || !r[0].Equal(ri(1)) || !r[1].Equal(ri(2)) {
		t.Fatalf("loads wrong: %v %v", l, r)
	}
}

func checkGeneral(t *testing.T, n int, edges []GEdge, slots []GMatching, total, delta rat.Rat) {
	t.Helper()
	perEdge := make(map[int]rat.Rat)
	sum := rat.Zero()
	for si, s := range slots {
		seen := make(map[int]bool)
		for _, e := range s.Edges {
			if seen[e.U] || seen[e.V] {
				t.Fatalf("slot %d: endpoint reused (send-or-receive violation)", si)
			}
			seen[e.U], seen[e.V] = true, true
			perEdge[e.ID] = perEdge[e.ID].Add(s.Dur)
		}
		sum = sum.Add(s.Dur)
	}
	for _, e := range edges {
		if e.W.Sign() > 0 && !perEdge[e.ID].Equal(e.W) {
			t.Fatalf("edge %d scheduled %v, want %v", e.ID, perEdge[e.ID], e.W)
		}
	}
	if !sum.Equal(total) {
		t.Fatalf("slot sum %v != reported total %v", sum, total)
	}
	if total.Less(delta) {
		t.Fatalf("total %v below lower bound Delta %v", total, delta)
	}
	// Greedy guarantee used by E9: never more than 2*Delta.
	if total.Cmp(delta.Mul(ri(2))) > 0 {
		t.Fatalf("total %v exceeds 2*Delta %v", total, delta.Mul(ri(2)))
	}
}

func TestDecomposeGeneralTriangle(t *testing.T) {
	// A triangle of unit edges: Delta = 2 but no two edges are
	// independent, so the best possible total is 3 — the structure
	// that makes the general problem hard (§5.1.1).
	edges := []GEdge{
		{U: 0, V: 1, W: ri(1), ID: 0},
		{U: 1, V: 2, W: ri(1), ID: 1},
		{U: 2, V: 0, W: ri(1), ID: 2},
	}
	slots, total, delta := DecomposeGeneral(3, edges)
	if !delta.Equal(ri(2)) {
		t.Fatalf("delta = %v, want 2", delta)
	}
	if !total.Equal(ri(3)) {
		t.Fatalf("total = %v, want 3 (each edge alone)", total)
	}
	checkGeneral(t, 3, edges, slots, total, delta)
}

func TestDecomposeGeneralStarIsTight(t *testing.T) {
	// A star must serialize: greedy is exactly Delta here.
	edges := []GEdge{
		{U: 0, V: 1, W: ri(2), ID: 0},
		{U: 0, V: 2, W: ri(1), ID: 1},
		{U: 0, V: 3, W: rr(1, 2), ID: 2},
	}
	slots, total, delta := DecomposeGeneral(4, edges)
	if !total.Equal(delta) {
		t.Fatalf("star: total %v != delta %v", total, delta)
	}
	checkGeneral(t, 4, edges, slots, total, delta)
}

func TestDecomposeGeneralRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(8)
		nE := rng.Intn(20)
		var edges []GEdge
		for i := 0; i < nE; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, GEdge{U: u, V: v, W: rr(int64(1+rng.Intn(10)), int64(1+rng.Intn(4))), ID: i})
		}
		slots, total, delta := DecomposeGeneral(n, edges)
		checkGeneral(t, n, edges, slots, total, delta)
	}
}

func BenchmarkDecomposeBipartite(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var edges []Edge
	for i := 0; i < 60; i++ {
		edges = append(edges, Edge{
			L: rng.Intn(12), R: rng.Intn(12),
			W:  rr(int64(1+rng.Intn(20)), int64(1+rng.Intn(5))),
			ID: i,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecomposeBipartite(12, 12, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeGeneral(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var edges []GEdge
	for i := 0; i < 60; i++ {
		u, v := rng.Intn(12), rng.Intn(12)
		if u == v {
			v = (v + 1) % 12
		}
		edges = append(edges, GEdge{U: u, V: v, W: ri(int64(1 + rng.Intn(20))), ID: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecomposeGeneral(12, edges)
	}
}
