// Package coloring implements the communication-orchestration step of
// §4.1 of the paper: decomposing the weighted bipartite graph of
// per-period communications into a polynomial number of weighted
// matchings (sets of independent communications), via the weighted
// edge-coloring result of Schrijver [15, vol. A, ch. 20].
//
// It also provides the greedy decomposition for *general* graphs that
// §5.1.1 calls for under the send-OR-receive model, where the exact
// problem becomes NP-hard and only approximations are available.
package coloring

import (
	"fmt"

	"repro/pkg/steady/rat"
)

// Edge is a weighted bipartite edge between left node L and right
// node R. W is the total busy time the communication needs within the
// period. ID is an opaque payload preserved in the output.
type Edge struct {
	L, R int
	W    rat.Rat
	ID   int
}

// Matching is one time slot of the periodic schedule: the edges listed
// may all be executed simultaneously (they share no sender and no
// receiver) for duration Dur.
type Matching struct {
	Dur   rat.Rat
	Edges []Edge
}

// DecomposeBipartite decomposes the weighted bipartite multigraph
// into at most |E| + nL + nR matchings whose total duration equals
// Delta = max over nodes of total incident weight. This is the key
// §4.1 property: the LP activity variables always yield a feasible
// one-port orchestration, regardless of ordering.
//
// The construction pads the graph with dummy edges until every node
// has load exactly Delta (always possible in a bipartite graph), then
// peels Birkhoff–von-Neumann style: each round finds a perfect
// matching on the support via Hopcroft–Karp and subtracts its minimum
// weight, zeroing at least one edge per round.
func DecomposeBipartite(nL, nR int, edges []Edge) ([]Matching, rat.Rat, error) {
	for _, e := range edges {
		if e.W.Sign() < 0 {
			return nil, rat.Zero(), fmt.Errorf("coloring: negative weight on edge %d-%d", e.L, e.R)
		}
		if e.L < 0 || e.L >= nL || e.R < 0 || e.R >= nR {
			return nil, rat.Zero(), fmt.Errorf("coloring: edge %d-%d out of range", e.L, e.R)
		}
	}

	// Loads and Delta.
	loadL := make([]rat.Rat, nL)
	loadR := make([]rat.Rat, nR)
	for _, e := range edges {
		loadL[e.L] = loadL[e.L].Add(e.W)
		loadR[e.R] = loadR[e.R].Add(e.W)
	}
	delta := rat.Zero()
	for _, l := range loadL {
		delta = rat.Max(delta, l)
	}
	for _, l := range loadR {
		delta = rat.Max(delta, l)
	}
	if delta.IsZero() {
		return nil, delta, nil
	}

	// Work copies; pad the smaller side with dummy (load-0) nodes so a
	// Delta-regular completion exists.
	n := nL
	if nR > n {
		n = nR
	}
	type wedge struct {
		l, r  int
		w     rat.Rat
		orig  int // index into edges, or -1 for a dummy edge
		alive bool
	}
	var work []wedge
	for i, e := range edges {
		if e.W.Sign() == 0 {
			continue
		}
		work = append(work, wedge{l: e.L, r: e.R, w: e.W, orig: i, alive: true})
	}
	defL := make([]rat.Rat, n)
	defR := make([]rat.Rat, n)
	for i := 0; i < n; i++ {
		defL[i] = delta
		defR[i] = delta
		if i < nL {
			defL[i] = delta.Sub(loadL[i])
		}
		if i < nR {
			defR[i] = delta.Sub(loadR[i])
		}
	}
	// Greedy Delta-regular completion: total left deficiency equals
	// total right deficiency, so pairing always succeeds.
	ri := 0
	for li := 0; li < n; li++ {
		for defL[li].Sign() > 0 {
			for ri < n && defR[ri].Sign() == 0 {
				ri++
			}
			if ri >= n {
				return nil, delta, fmt.Errorf("coloring: internal: deficiency mismatch")
			}
			w := rat.Min(defL[li], defR[ri])
			work = append(work, wedge{l: li, r: ri, w: w, orig: -1, alive: true})
			defL[li] = defL[li].Sub(w)
			defR[ri] = defR[ri].Sub(w)
		}
	}

	// Peel perfect matchings.
	var out []Matching
	remaining := delta
	maxRounds := len(work) + 1
	for round := 0; remaining.Sign() > 0; round++ {
		if round > maxRounds {
			return nil, delta, fmt.Errorf("coloring: internal: too many rounds")
		}
		// Build adjacency over alive edges.
		adj := make([][]int, n) // left -> indices into work
		for i, e := range work {
			if e.alive {
				adj[e.l] = append(adj[e.l], i)
			}
		}
		match := hopcroftKarp(n, n, adj, func(i int) int { return work[i].r })
		// Verify perfection (guaranteed by regularity; check anyway).
		lambda := remaining
		cnt := 0
		for l := 0; l < n; l++ {
			ei := match[l]
			if ei < 0 {
				return nil, delta, fmt.Errorf("coloring: internal: no perfect matching (left node %d exposed)", l)
			}
			cnt++
			lambda = rat.Min(lambda, work[ei].w)
		}
		if cnt != n {
			return nil, delta, fmt.Errorf("coloring: internal: matching not perfect")
		}
		m := Matching{Dur: lambda}
		for l := 0; l < n; l++ {
			ei := match[l]
			work[ei].w = work[ei].w.Sub(lambda)
			if work[ei].w.Sign() == 0 {
				work[ei].alive = false
			}
			if o := work[ei].orig; o >= 0 {
				m.Edges = append(m.Edges, Edge{L: work[ei].l, R: work[ei].r, W: lambda, ID: edges[o].ID})
			}
		}
		out = append(out, m)
		remaining = remaining.Sub(lambda)
	}
	return out, delta, nil
}

// hopcroftKarp computes a maximum matching of the bipartite graph
// given as left-adjacency lists of edge handles; rOf maps an edge
// handle to its right endpoint. It returns, per left node, the
// matched edge handle or -1. (Kuhn augmenting paths: platform
// bipartite graphs have at most a few hundred nodes, so the simple
// O(V*E) variant is ample and easier to audit than full
// Hopcroft–Karp.)
func hopcroftKarp(nL, nR int, adj [][]int, rOf func(int) int) []int {
	matchL := make([]int, nL)  // matched edge handle per left node, or -1
	matchR := make([]int, nR)  // matched edge handle per right node, or -1
	matchRL := make([]int, nR) // left endpoint matched to r, or -1
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
		matchRL[i] = -1
	}
	visited := make([]bool, nR)
	var try func(l int) bool
	try = func(l int) bool {
		for _, e := range adj[l] {
			r := rOf(e)
			if visited[r] {
				continue
			}
			visited[r] = true
			if matchR[r] == -1 || try(matchRL[r]) {
				matchL[l] = e
				matchR[r] = e
				matchRL[r] = l
				return true
			}
		}
		return false
	}
	for l := 0; l < nL; l++ {
		if matchL[l] == -1 {
			for i := range visited {
				visited[i] = false
			}
			try(l)
		}
	}
	return matchL
}

// Loads returns the per-node total incident weight of a bipartite
// edge set (useful to assert the one-port feasibility Delta <= T).
func Loads(nL, nR int, edges []Edge) (left, right []rat.Rat) {
	left = make([]rat.Rat, nL)
	right = make([]rat.Rat, nR)
	for _, e := range edges {
		left[e.L] = left[e.L].Add(e.W)
		right[e.R] = right[e.R].Add(e.W)
	}
	return left, right
}
