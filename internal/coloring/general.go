package coloring

import (
	"sort"

	"repro/pkg/steady/rat"
)

// GEdge is a weighted edge of a general (non-bipartite) graph, as
// arises under the send-OR-receive model of §5.1.1 where a processor
// has a single port shared by emissions and receptions.
type GEdge struct {
	U, V int
	W    rat.Rat
	ID   int
}

// GMatching is a slot of simultaneous communications in the general
// model: no two edges share any endpoint.
type GMatching struct {
	Dur   rat.Rat
	Edges []GEdge
}

// DecomposeGeneral greedily decomposes a weighted general graph into
// matchings. Exact minimum-length decomposition is NP-hard (weighted
// edge coloring of arbitrary graphs, §5.1.1); the greedy
// heaviest-edge-first rule is the "efficient polynomial approximation
// algorithm" stand-in. The returned total duration is at least Delta
// (the max node load, a lower bound) and empirically close to it; E9
// measures the gap.
func DecomposeGeneral(n int, edges []GEdge) (slots []GMatching, total, delta rat.Rat) {
	load := make([]rat.Rat, n)
	for _, e := range edges {
		load[e.U] = load[e.U].Add(e.W)
		load[e.V] = load[e.V].Add(e.W)
	}
	for _, l := range load {
		delta = rat.Max(delta, l)
	}

	type wedge struct {
		u, v int
		w    rat.Rat
		id   int
	}
	work := make([]wedge, 0, len(edges))
	for _, e := range edges {
		if e.W.Sign() > 0 {
			work = append(work, wedge{e.U, e.V, e.W, e.ID})
		}
	}
	total = rat.Zero()
	used := make([]bool, n)
	for len(work) > 0 {
		// Heaviest-first maximal matching.
		sort.SliceStable(work, func(i, j int) bool {
			return work[j].w.Less(work[i].w)
		})
		for i := range used {
			used[i] = false
		}
		var matched []int
		for i, e := range work {
			if used[e.u] || used[e.v] {
				continue
			}
			used[e.u], used[e.v] = true, true
			matched = append(matched, i)
		}
		// Run the slot for the smallest matched weight so at least one
		// edge completes.
		lambda := work[matched[0]].w
		for _, i := range matched {
			lambda = rat.Min(lambda, work[i].w)
		}
		slot := GMatching{Dur: lambda}
		inSlot := make(map[int]bool, len(matched))
		for _, i := range matched {
			slot.Edges = append(slot.Edges, GEdge{U: work[i].u, V: work[i].v, W: lambda, ID: work[i].id})
			work[i].w = work[i].w.Sub(lambda)
			if work[i].w.Sign() == 0 {
				inSlot[i] = true
			}
		}
		next := work[:0]
		for i, e := range work {
			if !inSlot[i] {
				next = append(next, e)
			}
		}
		work = next
		slots = append(slots, slot)
		total = total.Add(lambda)
	}
	return slots, total, delta
}
