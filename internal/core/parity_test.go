package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
)

// TestExactFloatParityAllSolvers is the drift guard between the two
// LP engines: random platforms are run through the model builders
// behind every registered pkg/steady solver — masterslave under both
// port models, scatter, the multicast sum-LP, the max-operator bound
// (which also backs broadcast and, on the reversed platform, reduce)
// and the tree packing — and the float64 simplex must agree with the
// exact rational optimum within tolerance. If the exact engine is
// ever rewritten again, this is the test that catches a divergence
// before the goldens do.
func TestExactFloatParityAllSolvers(t *testing.T) {
	check := func(t *testing.T, name string, m *lp.Model) {
		t.Helper()
		exact, err := m.Solve()
		if err != nil {
			t.Fatalf("%s: exact: %v", name, err)
		}
		fl, err := m.SolveFloat()
		if err != nil {
			t.Fatalf("%s: float: %v", name, err)
		}
		if exact.Status != fl.Status {
			t.Fatalf("%s: exact status %v, float status %v", name, exact.Status, fl.Status)
		}
		if exact.Status != lp.Optimal {
			return
		}
		e := exact.Objective.Float64()
		tol := 1e-6 * math.Max(1, math.Abs(e))
		if d := math.Abs(e - fl.Objective); d > tol {
			t.Fatalf("%s: exact obj %v, float obj %v (diff %g)", name, exact.Objective, fl.Objective, d)
		}
	}

	for trial := int64(0); trial < 8; trial++ {
		rng := rand.New(rand.NewSource(100 + trial))
		n := 5 + rng.Intn(5)
		p := platform.RandomConnected(rng, n, n, 5, 5, 0.15)
		targets := []int{1, 2}
		if n > 6 {
			targets = append(targets, 3)
		}

		for _, pm := range []PortModel{SendAndReceive, SendOrReceive} {
			mm, err := buildMasterSlaveModel(p, 0, pm)
			if err != nil {
				t.Fatal(err)
			}
			check(t, "masterslave/"+pm.String(), mm.m)
		}
		for _, maxOp := range []bool{false, true} {
			name := "scatter"
			if maxOp {
				name = "multicast-bound"
			}
			dm, err := buildDistributionModel(p, 0, targets, SendAndReceive, maxOp)
			if err != nil {
				t.Fatal(err)
			}
			check(t, name, dm.m)
		}
		// Reduce is the max-operator bound on the reversed platform.
		rdm, err := buildDistributionModel(p.Reverse(), 0, targets, SendAndReceive, true)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "reduce-bound", rdm.m)
	}

	// Tree packing on the paper's Figure 2 (small enough to
	// enumerate).
	p2 := platform.Figure2()
	trees, err := EnumerateMulticastTrees(p2, p2.NodeByName("P0"), platform.Figure2Targets(p2))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := buildTreePackingModel(p2, trees)
	check(t, "multicast-trees", m)
}
