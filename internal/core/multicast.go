package core

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// SolveMulticastBound solves the §3.3 max-operator relaxation of
// SSPS(G): since multicast messages of a given operation are all
// identical, a single transmission on edge (i,j) may serve several
// targets, so s_ij = max_k send(i,j,k)*c_ij replaces the sum. The
// optimum is an *upper bound* on the achievable multicast throughput
// — possibly strict (the Figure 2/3 counterexample), which is why the
// result type is a Scatter with bound semantics rather than a
// schedule.
func SolveMulticastBound(p *platform.Platform, source int, targets []int) (*Scatter, error) {
	return solveDistribution(p, source, targets, SendAndReceive, true, nil)
}

// SolveMulticastBoundOpts is SolveMulticastBound under explicit LP
// options (warm starts across instance families).
func SolveMulticastBoundOpts(p *platform.Platform, source int, targets []int, opts *lp.Options) (*Scatter, error) {
	return solveDistribution(p, source, targets, SendAndReceive, true, opts)
}

// SolveMulticastSum solves the plain scatter LP for identical
// messages ("nothing prevents us to use the previous linear program,
// but the formulation now is pessimistic" — §3.3). Its value is an
// achievable lower bound on multicast throughput.
func SolveMulticastSum(p *platform.Platform, source int, targets []int) (*Scatter, error) {
	return SolveMulticastSumOpts(p, source, targets, nil)
}

// SolveMulticastSumOpts is SolveMulticastSum under explicit LP
// options (warm starts across instance families).
func SolveMulticastSumOpts(p *platform.Platform, source int, targets []int, opts *lp.Options) (*Scatter, error) {
	return solveDistribution(p, source, targets, SendAndReceive, false, opts)
}

// SolveBroadcastBound solves the max-operator LP with every node
// reachable from source as a target. For *broadcast* the bound is
// achievable ([5], §4.3): because every node ends up with the full
// information, it does not matter which messages propagate along
// which path.
func SolveBroadcastBound(p *platform.Platform, source int) (*Scatter, error) {
	return SolveBroadcastBoundOpts(p, source, nil)
}

// SolveBroadcastBoundOpts is SolveBroadcastBound under explicit LP
// options (warm starts across instance families).
func SolveBroadcastBoundOpts(p *platform.Platform, source int, opts *lp.Options) (*Scatter, error) {
	var targets []int
	reach := p.ReachableFrom(source)
	for i, ok := range reach {
		if ok && i != source {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: nothing reachable from source")
	}
	return SolveMulticastBoundOpts(p, source, targets, opts)
}

// MulticastTree is one directed Steiner arborescence rooted at the
// source and covering all targets, with Rate multicasts per time-unit
// routed along it in a tree-packing solution.
type MulticastTree struct {
	Edges []int // platform edge indices, a minimal arborescence
	Rate  rat.Rat
}

// TreePacking is the exact optimal steady-state multicast throughput
// over schedules that route every multicast instance along one tree
// (the natural class: a node needs each message once, so an
// instance's dissemination is an arborescence). Computing it requires
// enumerating Steiner arborescences — consistent with the §4.3
// NP-hardness [7] — so it is only feasible on small platforms, where
// it provides ground truth for the counterexample experiment E3.
type TreePacking struct {
	P          *platform.Platform
	Source     int
	Targets    []int
	Throughput rat.Rat
	Trees      []MulticastTree // only trees with positive rate
	NumTrees   int             // number of enumerated candidate trees

	// LP reports how the packing solve went and Basis is its optimal
	// basis (warm-startable across platforms with identical topology,
	// since the candidate tree set must match column-for-column).
	LP    lp.SolveInfo
	Basis *lp.Basis
}

// maxTreeStates bounds the arborescence enumeration frontier.
const maxTreeStates = 1 << 22

// EnumerateMulticastTrees enumerates every minimal directed Steiner
// arborescence rooted at source covering all targets. Minimal means
// every leaf is a target (useless branches pruned). Platforms must
// have at most 63 edges.
func EnumerateMulticastTrees(p *platform.Platform, source int, targets []int) ([][]int, error) {
	if p.NumEdges() > 63 {
		return nil, fmt.Errorf("core: tree enumeration limited to 63 edges (have %d)", p.NumEdges())
	}
	targetMask := uint64(0)
	for _, t := range targets {
		if t == source {
			return nil, fmt.Errorf("core: source cannot be a target")
		}
		targetMask |= 1 << uint(t)
	}

	type state struct {
		nodes uint64 // nodes already in the arborescence
		edges uint64 // chosen platform edges
	}
	start := state{nodes: 1 << uint(source)}
	seen := map[state]bool{start: true}
	queue := []state{start}
	minimal := map[uint64]bool{}

	for len(queue) > 0 {
		if len(seen) > maxTreeStates {
			return nil, fmt.Errorf("core: tree enumeration exceeded %d states", maxTreeStates)
		}
		st := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if st.nodes&targetMask == targetMask {
			// Covering arborescence: prune non-target leaves to get
			// the minimal tree, then record it.
			minimal[pruneTree(p, st.edges, source, targetMask)] = true
			continue
		}
		// Grow by one edge from a tree node to a new node.
		for e := 0; e < p.NumEdges(); e++ {
			if st.edges&(1<<uint(e)) != 0 {
				continue
			}
			ed := p.Edge(e)
			if st.nodes&(1<<uint(ed.From)) == 0 || st.nodes&(1<<uint(ed.To)) != 0 {
				continue
			}
			ns := state{
				nodes: st.nodes | 1<<uint(ed.To),
				edges: st.edges | 1<<uint(e),
			}
			if !seen[ns] {
				seen[ns] = true
				queue = append(queue, ns)
			}
		}
	}

	out := make([][]int, 0, len(minimal))
	for mask := range minimal {
		var es []int
		for e := 0; e < p.NumEdges(); e++ {
			if mask&(1<<uint(e)) != 0 {
				es = append(es, e)
			}
		}
		out = append(out, es)
	}
	// Deterministic order for reproducible experiment output.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out, nil
}

// pruneTree repeatedly removes leaf edges whose leaf is not a target,
// returning the minimal tree's edge mask.
func pruneTree(p *platform.Platform, edges uint64, source int, targetMask uint64) uint64 {
	for {
		removed := false
		for e := 0; e < p.NumEdges(); e++ {
			if edges&(1<<uint(e)) == 0 {
				continue
			}
			to := p.Edge(e).To
			if targetMask&(1<<uint(to)) != 0 {
				continue
			}
			// Is `to` a leaf (no chosen edge leaves it)?
			leaf := true
			for _, oe := range p.OutEdges(to) {
				if edges&(1<<uint(oe)) != 0 {
					leaf = false
					break
				}
			}
			if leaf {
				edges &^= 1 << uint(e)
				removed = true
			}
		}
		if !removed {
			return edges
		}
	}
}

// SolveTreePacking computes the optimal steady-state multicast
// throughput by packing enumerated Steiner arborescences under the
// one-port constraints:
//
//	maximize  sum_T x_T
//	s.t.      for every node v:  sum_T x_T * (send time of v in T) <= 1
//	                             sum_T x_T * (recv time of v in T) <= 1
func SolveTreePacking(p *platform.Platform, source int, targets []int) (*TreePacking, error) {
	return SolveTreePackingOpts(p, source, targets, nil)
}

// SolveTreePackingOpts is SolveTreePacking under explicit LP options
// (warm starts across instance families).
func SolveTreePackingOpts(p *platform.Platform, source int, targets []int, opts *lp.Options) (*TreePacking, error) {
	trees, err := EnumerateMulticastTrees(p, source, targets)
	if err != nil {
		return nil, err
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: no multicast tree covers all targets")
	}

	m, x := buildTreePackingModel(p, trees)

	sol, err := m.SolveOpts(opts)
	if err != nil {
		return nil, fmt.Errorf("core: tree packing LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: tree packing LP %v", sol.Status)
	}

	tp := &TreePacking{
		P: p, Source: source, Targets: append([]int(nil), targets...),
		Throughput: sol.Objective,
		NumTrees:   len(trees),
		LP:         sol.Info,
		Basis:      sol.Basis(),
	}
	for t := range trees {
		r := sol.Value(x[t])
		if r.Sign() > 0 {
			tp.Trees = append(tp.Trees, MulticastTree{Edges: trees[t], Rate: r})
		}
	}
	return tp, nil
}

// buildTreePackingModel constructs the arborescence-packing LP over
// the enumerated candidate trees without solving it.
func buildTreePackingModel(p *platform.Platform, trees [][]int) (*lp.Model, []lp.Var) {
	m := lp.NewModel()
	x := make([]lp.Var, len(trees))
	obj := lp.Expr{}
	for t := range trees {
		x[t] = m.Var(fmt.Sprintf("x[tree%d]", t))
		obj = obj.PlusInt(x[t], 1)
	}
	m.Objective(lp.Maximize, obj)

	// Per-node send and receive time per multicast instance of tree t.
	one := rat.One()
	for v := 0; v < p.NumNodes(); v++ {
		sendEx, recvEx := lp.Expr{}, lp.Expr{}
		for t, es := range trees {
			st, rt := rat.Zero(), rat.Zero()
			for _, e := range es {
				ed := p.Edge(e)
				if ed.From == v {
					st = st.Add(ed.C)
				}
				if ed.To == v {
					rt = rt.Add(ed.C)
				}
			}
			if st.Sign() > 0 {
				sendEx = sendEx.Plus(x[t], st)
			}
			if rt.Sign() > 0 {
				recvEx = recvEx.Plus(x[t], rt)
			}
		}
		if len(sendEx) > 0 {
			m.Le(fmt.Sprintf("send[%s]", p.Name(v)), sendEx, one)
		}
		if len(recvEx) > 0 {
			m.Le(fmt.Sprintf("recv[%s]", p.Name(v)), recvEx, one)
		}
	}
	return m, x
}

// BestSingleTree returns the enumerated tree with the highest
// single-tree throughput 1/max_v(port time of v), the simplest
// multicast heuristic, together with that throughput.
func BestSingleTree(p *platform.Platform, source int, targets []int) ([]int, rat.Rat, error) {
	trees, err := EnumerateMulticastTrees(p, source, targets)
	if err != nil {
		return nil, rat.Zero(), err
	}
	if len(trees) == 0 {
		return nil, rat.Zero(), fmt.Errorf("core: no multicast tree covers all targets")
	}
	var best []int
	bestTP := rat.Zero()
	for _, es := range trees {
		// Bottleneck: the largest per-instance busy time over any
		// send or receive port.
		bott := rat.Zero()
		for v := 0; v < p.NumNodes(); v++ {
			st, rt := rat.Zero(), rat.Zero()
			for _, e := range es {
				ed := p.Edge(e)
				if ed.From == v {
					st = st.Add(ed.C)
				}
				if ed.To == v {
					rt = rt.Add(ed.C)
				}
			}
			bott = rat.Max(bott, rat.Max(st, rt))
		}
		tp := bott.Inv()
		if bestTP.Less(tp) {
			best, bestTP = es, tp
		}
	}
	return best, bestTP, nil
}

// TreeEdgeConflict reports, for a two-tree packing, the platform
// edges used by more than one tree — the §4.3 phenomenon where
// odd-indexed (label a) and even-indexed (label b) multicast messages
// follow different trees and collide on a shared edge (P3->P4 in
// Figure 3(d)).
func TreeEdgeConflict(p *platform.Platform, trees []MulticastTree) []int {
	use := make([]int, p.NumEdges())
	for _, t := range trees {
		for _, e := range t.Edges {
			use[e]++
		}
	}
	var shared []int
	for e, n := range use {
		if n > 1 {
			shared = append(shared, e)
		}
	}
	return shared
}

// popcount is used in tests to reason about tree sizes.
func popcount(x uint64) int { return bits.OnesCount64(x) }
