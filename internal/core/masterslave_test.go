package core

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rr(n, d int64) rat.Rat { return rat.New(n, d) }

// starPlatform builds a 1-level star with the given worker weights
// and link costs; master weight wm.
func starPlatform(wm int64, ws []int64, cs []int64) *platform.Platform {
	var wws []platform.Weight
	var ccs []rat.Rat
	for i := range ws {
		wws = append(wws, platform.WInt(ws[i]))
		ccs = append(ccs, ri(cs[i]))
	}
	return platform.Star(platform.WInt(wm), wws, ccs)
}

func TestMasterSlaveSingleNode(t *testing.T) {
	p := platform.New()
	p.AddNode("M", platform.WInt(4))
	ms, err := SolveMasterSlave(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Alone, the master computes at rate 1/4.
	if !ms.Throughput.Equal(rr(1, 4)) {
		t.Fatalf("throughput = %v, want 1/4", ms.Throughput)
	}
	if !ms.Alpha[0].IsOne() {
		t.Fatalf("alpha = %v, want 1", ms.Alpha[0])
	}
}

func TestMasterSlaveStarClosedForm(t *testing.T) {
	cases := []struct {
		wm   int64
		ws   []int64
		cs   []int64
		want rat.Rat
	}{
		// Master alone at rate 1/2 + worker fully fed: 1 task every
		// 2 units of sending (c=2), worker computes at 1/3 < 1/2
		// available; so worker contributes 1/3 (needs 2/3 port time).
		{2, []int64{3}, []int64{2}, rr(1, 2).Add(rr(1, 3))},
		// Port saturates: two identical workers c=1,w=1 want rate 1
		// each, but the port gives 1 total.
		{10, []int64{1, 1}, []int64{1, 1}, rr(1, 10).Add(ri(1))},
		// Heterogeneous: cheapest link first.
		{5, []int64{2, 4}, []int64{1, 3}, rr(1, 5).Add(rr(1, 2)).Add(rat.Min(rr(1, 4), rr(1, 2).Div(ri(3))))},
	}
	for ci, c := range cases {
		p := starPlatform(c.wm, c.ws, c.cs)
		ms, err := SolveMasterSlave(p, 0)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		closed, err := StarThroughput(p, 0)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !ms.Throughput.Equal(closed) {
			t.Errorf("case %d: LP %v != closed form %v", ci, ms.Throughput, closed)
		}
		if !ms.Throughput.Equal(c.want) {
			t.Errorf("case %d: throughput %v, want %v", ci, ms.Throughput, c.want)
		}
	}
}

func TestMasterSlaveRandomStarsMatchClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		ws := make([]int64, n)
		cs := make([]int64, n)
		for i := range ws {
			ws[i] = 1 + rng.Int63n(6)
			cs[i] = 1 + rng.Int63n(6)
		}
		p := starPlatform(1+rng.Int63n(6), ws, cs)
		ms, err := SolveMasterSlave(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		closed, err := StarThroughput(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ms.Throughput.Equal(closed) {
			t.Fatalf("trial %d: LP %v != closed form %v\n%s", trial, ms.Throughput, closed, p)
		}
	}
}

func TestMasterSlaveFigure1(t *testing.T) {
	p := platform.Figure1()
	master := p.NodeByName("P1")
	ms, err := SolveMasterSlave(p, master)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Check(); err != nil {
		t.Fatal(err)
	}
	// The platform's total compute rate is an upper bound.
	cap := rat.Zero()
	for i := 0; i < p.NumNodes(); i++ {
		if p.CanCompute(i) {
			cap = cap.Add(p.Weight(i).Val.Inv())
		}
	}
	if ms.Throughput.Cmp(cap) > 0 {
		t.Fatalf("throughput %v exceeds compute capacity %v", ms.Throughput, cap)
	}
	// The master alone is a lower bound.
	if ms.Throughput.Less(p.Weight(master).Val.Inv()) {
		t.Fatalf("throughput %v below master-only rate", ms.Throughput)
	}
	// Deterministic regression value (also recorded in EXPERIMENTS.md).
	t.Logf("Figure 1 ntask(G) = %v = %.4f", ms.Throughput, ms.Throughput.Float64())
}

func TestMasterSlaveForwarderOnly(t *testing.T) {
	// master -> forwarder(inf) -> worker: the forwarder relays tasks
	// it cannot compute.
	p := platform.New()
	m := p.AddNode("M", platform.WInt(10))
	f := p.AddNode("F", platform.WInf())
	w := p.AddNode("W", platform.WInt(1))
	p.AddEdge(m, f, ri(1))
	p.AddEdge(f, w, ri(1))
	ms, err := SolveMasterSlave(p, m)
	if err != nil {
		t.Fatal(err)
	}
	want := rr(1, 10).Add(ri(1)) // master rate + worker fully fed
	if !ms.Throughput.Equal(want) {
		t.Fatalf("throughput = %v, want %v", ms.Throughput, want)
	}
	if !ms.Alpha[f].IsZero() {
		t.Fatal("forwarder computes")
	}
}

func TestMasterSlaveBottleneckLink(t *testing.T) {
	// A slow link caps the worker contribution at 1/c.
	p := platform.New()
	m := p.AddNode("M", platform.WInt(100))
	w := p.AddNode("W", platform.WInt(1))
	p.AddEdge(m, w, ri(4))
	ms, err := SolveMasterSlave(p, m)
	if err != nil {
		t.Fatal(err)
	}
	want := rr(1, 100).Add(rr(1, 4))
	if !ms.Throughput.Equal(want) {
		t.Fatalf("throughput = %v, want %v", ms.Throughput, want)
	}
}

func TestMasterSlaveCyclePlatformsConservation(t *testing.T) {
	// Random strongly-connected platforms: solution must pass all
	// checks; the Check() call inside Solve already enforces this, so
	// here we just assert solvability and sane bounds.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 12; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(6), rng.Intn(8), 5, 5, 0.2)
		ms, err := SolveMasterSlave(p, 0)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		cap := rat.Zero()
		for i := 0; i < p.NumNodes(); i++ {
			if p.CanCompute(i) {
				cap = cap.Add(p.Weight(i).Val.Inv())
			}
		}
		if ms.Throughput.Cmp(cap) > 0 || ms.Throughput.Sign() <= 0 {
			t.Fatalf("trial %d: throughput %v out of (0, %v]", trial, ms.Throughput, cap)
		}
	}
}

func TestMasterSlaveMoreEdgesNeverHurts(t *testing.T) {
	// Monotonicity: adding a link cannot decrease optimal throughput.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 8; trial++ {
		p := platform.RandomConnected(rng, 5, 2, 4, 4, 0)
		ms1, err := SolveMasterSlave(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := p.Clone()
		// Add an edge between a random unconnected pair.
		added := false
		for tries := 0; tries < 50 && !added; tries++ {
			u, v := rng.Intn(5), rng.Intn(5)
			if u != v && q.FindEdge(u, v) < 0 && v != 0 {
				q.AddEdge(u, v, ri(1))
				added = true
			}
		}
		if !added {
			continue
		}
		ms2, err := SolveMasterSlave(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ms2.Throughput.Less(ms1.Throughput) {
			t.Fatalf("trial %d: adding an edge decreased throughput %v -> %v",
				trial, ms1.Throughput, ms2.Throughput)
		}
	}
}

func TestMasterSlaveErrors(t *testing.T) {
	p := platform.Figure1()
	if _, err := SolveMasterSlave(p, -1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// All-forwarder platform cannot compute anything.
	q := platform.New()
	a := q.AddNode("A", platform.WInf())
	b := q.AddNode("B", platform.WInf())
	q.AddEdge(a, b, ri(1))
	if _, err := SolveMasterSlave(q, a); err == nil {
		t.Fatal("expected no-compute error")
	}
}

func TestStarThroughputRejectsNonStar(t *testing.T) {
	p := platform.Figure1()
	if _, err := StarThroughput(p, 0); err == nil {
		t.Fatal("expected non-star error")
	}
}

func TestComputeRateAndTasksPerUnit(t *testing.T) {
	p := platform.New()
	m := p.AddNode("M", platform.WInt(2))
	w := p.AddNode("W", platform.WInt(1))
	e := p.AddEdge(m, w, ri(2))
	ms, err := SolveMasterSlave(p, m)
	if err != nil {
		t.Fatal(err)
	}
	// Worker wants rate 1 but link gives 1/2.
	if !ms.TasksPerUnit(e).Equal(rr(1, 2)) {
		t.Fatalf("edge rate = %v", ms.TasksPerUnit(e))
	}
	if !ms.ComputeRate(m).Equal(rr(1, 2)) {
		t.Fatalf("master rate = %v", ms.ComputeRate(m))
	}
}
