package core

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func twoNodePlatform() *platform.Platform {
	p := platform.New()
	a := p.AddNode("A", platform.WInt(1))
	b := p.AddNode("B", platform.WInt(1))
	p.AddBoth(a, b, rat.One())
	return p
}

func TestDAGValidate(t *testing.T) {
	if err := ChainDAG(3).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ForkJoinDAG(3).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &DAG{Ops: []rat.Rat{rat.One(), rat.One()},
		Files: []File{{From: 0, To: 1, Size: rat.One()}, {From: 1, To: 0, Size: rat.One()}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected cycle error")
	}
	if err := (&DAG{}).Validate(); err == nil {
		t.Fatal("expected empty error")
	}
	if err := (&DAG{Ops: []rat.Rat{rat.Zero()}}).Validate(); err == nil {
		t.Fatal("expected weight error")
	}
	if err := (&DAG{Ops: []rat.Rat{rat.One()},
		Files: []File{{From: 0, To: 0, Size: rat.One()}}}).Validate(); err == nil {
		t.Fatal("expected self-file error")
	}
}

func TestDAGShapes(t *testing.T) {
	c := ChainDAG(4)
	if len(c.Ops) != 4 || len(c.Files) != 3 {
		t.Fatal("chain shape wrong")
	}
	f := ForkJoinDAG(3)
	if len(f.Ops) != 5 || len(f.Files) != 6 {
		t.Fatal("fork-join shape wrong")
	}
}

func TestDAGSingleTaskEqualsMasterSlaveStyleBound(t *testing.T) {
	// A 1-task DAG on two unit nodes: both nodes compute, TP = 2.
	p := twoNodePlatform()
	d := &DAG{Ops: []rat.Rat{rat.One()}}
	rate, err := SolveDAGRateBound(p, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rate.Throughput.Equal(ri(2)) {
		t.Fatalf("rate bound = %v, want 2", rate.Throughput)
	}
	alloc, err := SolveDAGAllocation(p, d)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Throughput.Equal(ri(2)) {
		t.Fatalf("allocation = %v, want 2", alloc.Throughput)
	}
}

func TestDAGChainOnTwoNodes(t *testing.T) {
	// Chain T0->T1 (unit everything) on two unit nodes with unit
	// links. Each node can run both tasks locally (no comm): total
	// capacity 2 task-units/node => TP = 1 per node => 2 total / 2
	// tasks = 1. Allocation and rate bound agree.
	p := twoNodePlatform()
	d := ChainDAG(2)
	rate, err := SolveDAGRateBound(p, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := SolveDAGAllocation(p, d)
	if err != nil {
		t.Fatal(err)
	}
	if !rate.Throughput.Equal(ri(1)) {
		t.Fatalf("rate = %v, want 1", rate.Throughput)
	}
	if !alloc.Throughput.Equal(ri(1)) {
		t.Fatalf("alloc = %v, want 1", alloc.Throughput)
	}
}

func TestDAGRateBoundDominatesAllocation(t *testing.T) {
	// The rate LP relaxes instance consistency, so it always
	// dominates the allocation packing (E11's measured gap).
	p := platform.New()
	a := p.AddNode("A", platform.WInt(1))
	b := p.AddNode("B", platform.WInt(2))
	c := p.AddNode("C", platform.WInt(3))
	p.AddBoth(a, b, rat.One())
	p.AddBoth(b, c, ri(2))
	for _, d := range []*DAG{ChainDAG(2), ChainDAG(3), ForkJoinDAG(2)} {
		rate, err := SolveDAGRateBound(p, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := SolveDAGAllocation(p, d)
		if err != nil {
			t.Fatal(err)
		}
		if rate.Throughput.Less(alloc.Throughput) {
			t.Fatalf("rate bound %v below achievable %v", rate.Throughput, alloc.Throughput)
		}
	}
}

func TestDAGForwarderCannotCompute(t *testing.T) {
	p := platform.New()
	a := p.AddNode("A", platform.WInt(1))
	f := p.AddNode("F", platform.WInf())
	p.AddBoth(a, f, rat.One())
	d := ChainDAG(2)
	rate, err := SolveDAGRateBound(p, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Only A computes: 2 unit tasks per instance on a unit node => 1/2.
	if !rate.Throughput.Equal(rr(1, 2)) {
		t.Fatalf("rate = %v, want 1/2", rate.Throughput)
	}
	for k := range d.Ops {
		if !rate.Cons[f][k].IsZero() {
			t.Fatal("forwarder assigned compute")
		}
	}
}

func TestDAGAllocationCapGuard(t *testing.T) {
	// 12 tasks on 8 compute nodes = 8^12 allocations: must refuse.
	p := platform.Clique(rand.New(rand.NewSource(1)), 8, 3, 3)
	d := ChainDAG(12)
	if _, err := SolveDAGAllocation(p, d); err == nil {
		t.Fatal("expected enumeration-cap error")
	}
}

func TestDAGRateHeterogeneous(t *testing.T) {
	// Fork-join on Figure 1: just assert solvable + bounded by total
	// task-weighted capacity.
	p := platform.Figure1()
	d := ForkJoinDAG(2)
	rate, err := SolveDAGRateBound(p, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	totalOps := rat.Zero()
	for _, o := range d.Ops {
		totalOps = totalOps.Add(o)
	}
	cap := rat.Zero()
	for i := 0; i < p.NumNodes(); i++ {
		if p.CanCompute(i) {
			cap = cap.Add(p.Weight(i).Val.Inv())
		}
	}
	if rate.Throughput.Mul(totalOps).Cmp(cap) > 0 {
		t.Fatalf("rate %v exceeds capacity bound", rate.Throughput)
	}
}
