package core

import (
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// Failure injection: every independent verifier must reject tampered
// solutions. These tests pin the checkers' sensitivity — without
// them, a checker that silently accepts anything would still make the
// solver tests pass.

func TestCheckRejectsTamperedMasterSlave(t *testing.T) {
	p := platform.Figure1()
	ms, err := SolveMasterSlave(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(name string, mutate func(*MasterSlave)) {
		t.Helper()
		c := *ms
		c.Alpha = append([]rat.Rat(nil), ms.Alpha...)
		c.S = append([]rat.Rat(nil), ms.S...)
		mutate(&c)
		if err := c.Check(); err == nil {
			t.Errorf("%s: tampered solution accepted", name)
		}
	}
	tamper("alpha out of range", func(c *MasterSlave) {
		c.Alpha[0] = rat.FromInt(2)
	})
	tamper("negative s", func(c *MasterSlave) {
		c.S[0] = rat.FromInt(-1)
	})
	tamper("conservation broken", func(c *MasterSlave) {
		// Bump one edge's activity: the receiving node now gets more
		// than it consumes.
		for e := range c.S {
			if c.S[e].Sign() > 0 && p.Edge(e).From == c.Master {
				c.S[e] = c.S[e].Div(rat.FromInt(2))
				break
			}
		}
	})
	tamper("throughput inflated", func(c *MasterSlave) {
		c.Throughput = c.Throughput.Mul(rat.FromInt(2))
	})
	tamper("master receives", func(c *MasterSlave) {
		in := p.InEdges(c.Master)
		if len(in) == 0 {
			t.Skip("no incoming edges")
		}
		c.S[in[0]] = rat.New(1, 7)
	})
}

func TestCheckRejectsTamperedScatter(t *testing.T) {
	p := platform.Figure1()
	src := p.NodeByName("P1")
	targets := []int{p.NodeByName("P4"), p.NodeByName("P6")}
	sc, err := SolveScatter(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() *Scatter {
		c := *sc
		c.S = append([]rat.Rat(nil), sc.S...)
		c.Send = make([][]rat.Rat, len(sc.Send))
		for e := range sc.Send {
			c.Send[e] = append([]rat.Rat(nil), sc.Send[e]...)
		}
		return &c
	}
	c := clone()
	c.Throughput = c.Throughput.Add(rat.One())
	if err := c.Check(); err == nil {
		t.Error("inflated scatter throughput accepted")
	}
	c = clone()
	for e := range c.Send {
		if c.Send[e][0].Sign() > 0 {
			c.Send[e][0] = c.Send[e][0].Mul(rat.FromInt(3))
			break
		}
	}
	if err := c.Check(); err == nil {
		t.Error("broken edge coupling accepted")
	}
}

func TestCheckRejectsTamperedAllToAll(t *testing.T) {
	ring := platform.New()
	for i := 0; i < 3; i++ {
		ring.AddNode(string(rune('A'+i)), platform.WInt(1))
	}
	ring.AddBoth(0, 1, rat.One())
	ring.AddBoth(1, 2, rat.One())
	ring.AddBoth(0, 2, rat.One())
	a2a, err := SolveAllToAll(ring, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	a2a.Throughput = a2a.Throughput.Mul(rat.FromInt(2))
	if err := a2a.Check(); err == nil {
		t.Error("inflated all-to-all throughput accepted")
	}
}

func TestCheckMultiportRejectsOverload(t *testing.T) {
	p := platform.Figure1()
	caps := UniformPorts(p, 2)
	ms, err := SolveMasterSlaveMultiport(p, 0, caps)
	if err != nil {
		t.Fatal(err)
	}
	// Claim the solution fits in a single port: it should not.
	if err := CheckMultiport(ms, UniformPorts(p, 1)); err == nil {
		// The optimum may happen to fit one port on some platforms;
		// force an overload instead.
		ms.S[p.OutEdges(0)[0]] = rat.One()
		ms.S[p.OutEdges(0)[1]] = rat.One()
		if err := CheckMultiport(ms, UniformPorts(p, 1)); err == nil {
			t.Error("overloaded multiport solution accepted")
		}
	}
}
