package core

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/platform"
)

func TestScatterSingleTarget(t *testing.T) {
	// src -> t over one edge of cost 3: TP = 1/3.
	p := platform.New()
	s := p.AddNode("S", platform.WInt(1))
	d := p.AddNode("T", platform.WInt(1))
	p.AddEdge(s, d, ri(3))
	sc, err := SolveScatter(p, s, []int{d})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Throughput.Equal(rr(1, 3)) {
		t.Fatalf("TP = %v, want 1/3", sc.Throughput)
	}
}

func TestScatterStarSharedPort(t *testing.T) {
	// Two targets behind unit links: the source port splits, TP = 1/2.
	p := platform.New()
	s := p.AddNode("S", platform.WInt(1))
	a := p.AddNode("A", platform.WInt(1))
	b := p.AddNode("B", platform.WInt(1))
	p.AddEdge(s, a, ri(1))
	p.AddEdge(s, b, ri(1))
	sc, err := SolveScatter(p, s, []int{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Throughput.Equal(rr(1, 2)) {
		t.Fatalf("TP = %v, want 1/2", sc.Throughput)
	}
}

func TestScatterMultipathBeatsSinglePath(t *testing.T) {
	// Diamond src -> {A,B} -> T: two disjoint routes double the
	// receiving throughput up to the target's in-port limit.
	p := platform.New()
	s := p.AddNode("S", platform.WInt(1))
	a := p.AddNode("A", platform.WInt(1))
	b := p.AddNode("B", platform.WInt(1))
	d := p.AddNode("T", platform.WInt(1))
	p.AddEdge(s, a, ri(2))
	p.AddEdge(s, b, ri(2))
	p.AddEdge(a, d, ri(2))
	p.AddEdge(b, d, ri(2))
	sc, err := SolveScatter(p, s, []int{d})
	if err != nil {
		t.Fatal(err)
	}
	// Source out-port: 1 unit; each message costs 2 on the first hop
	// whichever route; so injection rate 1/2. Target in-port: also
	// supports 1/2. TP = 1/2 (vs single path 1/2 limited by... both
	// paths share nothing, but source port caps at 1/2).
	if !sc.Throughput.Equal(rr(1, 2)) {
		t.Fatalf("TP = %v, want 1/2", sc.Throughput)
	}
}

func TestScatterFigure1(t *testing.T) {
	p := platform.Figure1()
	src := p.NodeByName("P1")
	targets := []int{p.NodeByName("P4"), p.NodeByName("P5"), p.NodeByName("P6")}
	sc, err := SolveScatter(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Check(); err != nil {
		t.Fatal(err)
	}
	if sc.Throughput.Sign() <= 0 {
		t.Fatal("expected positive scatter throughput")
	}
	t.Logf("Figure 1 scatter TP = %v = %.4f", sc.Throughput, sc.Throughput.Float64())
}

func TestScatterRandomPlatformsChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(4), rng.Intn(6), 4, 4, 0.1)
		var targets []int
		for i := 1; i < p.NumNodes() && len(targets) < 3; i++ {
			targets = append(targets, i)
		}
		sc, err := SolveScatter(p, 0, targets)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		if err := sc.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sc.Throughput.Sign() <= 0 {
			t.Fatalf("trial %d: TP = %v on a strongly connected platform", trial, sc.Throughput)
		}
	}
}

func TestScatterBoundDominatesSum(t *testing.T) {
	// For any target set: relaxing sum to max can only help.
	p := platform.Figure1()
	src := p.NodeByName("P1")
	targets := []int{p.NodeByName("P4"), p.NodeByName("P6")}
	sum, err := SolveMulticastSum(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := SolveMulticastBound(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Throughput.Less(sum.Throughput) {
		t.Fatalf("max relaxation %v below sum %v", bound.Throughput, sum.Throughput)
	}
}

func TestScatterSendOrReceiveTighter(t *testing.T) {
	// The §5.1.1 shared-port model can never beat the base model.
	p := platform.Figure1()
	src := p.NodeByName("P1")
	targets := []int{p.NodeByName("P4"), p.NodeByName("P5")}
	base, err := SolveScatter(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SolveScatterPort(p, src, targets, SendOrReceive)
	if err != nil {
		t.Fatal(err)
	}
	if base.Throughput.Less(shared.Throughput) {
		t.Fatalf("send-or-receive %v beats send-and-receive %v", shared.Throughput, base.Throughput)
	}
	// On this platform relays must both receive and send, so the
	// shared port strictly hurts.
	if !shared.Throughput.Less(base.Throughput) {
		t.Logf("note: shared-port model did not strictly reduce TP (%v)", shared.Throughput)
	}
}

func TestReduceEqualsBroadcastOnReverse(t *testing.T) {
	// Figure 1 is bidirectional, so every node can reach the root.
	p := platform.Figure1()
	root := p.NodeByName("P1")
	red, err := SolveReduceBound(p, root)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := SolveBroadcastBound(p.Reverse(), root)
	if err != nil {
		t.Fatal(err)
	}
	if !red.Throughput.Equal(bb.Throughput) {
		t.Fatalf("reduce %v != reversed broadcast %v", red.Throughput, bb.Throughput)
	}
	if red.P != p {
		t.Fatal("reduce solution not presented on the original platform")
	}
	// A reduce to an unreachable root is correctly rejected: Figure 2's
	// P0 has no incoming edges.
	q := platform.Figure2()
	if _, err := SolveReduceBound(q, q.NodeByName("P0")); err == nil {
		t.Fatal("expected unreachable-root error")
	}
}

func TestAllToAllRing(t *testing.T) {
	// Symmetric 3-ring with unit links: all 6 ordered pairs exchange
	// messages; solution must satisfy conservation and be positive.
	rng := rand.New(rand.NewSource(1))
	_ = rng
	p := platform.New()
	for i := 0; i < 3; i++ {
		p.AddNode([]string{"A", "B", "C"}[i], platform.WInt(1))
	}
	p.AddBoth(0, 1, ri(1))
	p.AddBoth(1, 2, ri(1))
	p.AddBoth(0, 2, ri(1))
	a2a, err := SolveAllToAll(p, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a2a.Check(); err != nil {
		t.Fatal(err)
	}
	// Each node must send 2 distinct unit-cost messages per operation
	// and its out-port allows 1 time-unit: TP = 1/2 by symmetry.
	if !a2a.Throughput.Equal(rr(1, 2)) {
		t.Fatalf("all-to-all TP = %v, want 1/2", a2a.Throughput)
	}
}

func TestAllToAllErrors(t *testing.T) {
	p := platform.Figure1()
	if _, err := SolveAllToAll(p, []int{0}); err == nil {
		t.Fatal("expected too-few-participants error")
	}
	if _, err := SolveAllToAll(p, []int{0, 0}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := SolveAllToAll(p, []int{0, 99}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestScatterThroughVsAround(t *testing.T) {
	// A relay with an expensive direct edge: LP must route through
	// the cheap relay. src->relay (1), relay->t (1), src->t (10).
	p := platform.New()
	s := p.AddNode("S", platform.WInt(1))
	r := p.AddNode("R", platform.WInf())
	d := p.AddNode("T", platform.WInt(1))
	p.AddEdge(s, r, ri(1))
	p.AddEdge(r, d, ri(1))
	eDirect := p.AddEdge(s, d, ri(10))
	sc, err := SolveScatter(p, s, []int{d})
	if err != nil {
		t.Fatal(err)
	}
	// Relay path alone: 1 msg/unit; direct adds 1/10 more, both can
	// run in parallel but target in-port limits total time: in-port
	// receives via both edges: s_rd + s_sd <= 1. Optimal: saturate
	// relay route (1 msg/unit uses full in-port)... so TP = 1.
	if !sc.Throughput.IsOne() {
		t.Fatalf("TP = %v, want 1", sc.Throughput)
	}
	_ = eDirect
}
