package core

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// fanStar builds a master with k unit workers over unit links — the
// platform where extra network cards pay off linearly.
func fanStar(k int) *platform.Platform {
	ws := make([]platform.Weight, k)
	cs := make([]rat.Rat, k)
	for i := range ws {
		ws[i] = platform.WInt(1)
		cs[i] = rat.One()
	}
	return platform.Star(platform.WInt(1000), ws, cs)
}

func TestMultiportScalesWithCards(t *testing.T) {
	p := fanStar(4)
	// One card: the master's port feeds 1 task/unit in total.
	ms1, err := SolveMasterSlaveMultiport(p, 0, UniformPorts(p, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Four cards: all four workers fully fed.
	ms4, err := SolveMasterSlaveMultiport(p, 0, UniformPorts(p, 4))
	if err != nil {
		t.Fatal(err)
	}
	base := rat.New(1, 1000)
	if !ms1.Throughput.Equal(base.Add(rat.One())) {
		t.Fatalf("1 card: %v, want 1 + 1/1000", ms1.Throughput)
	}
	if !ms4.Throughput.Equal(base.Add(rat.FromInt(4))) {
		t.Fatalf("4 cards: %v, want 4 + 1/1000", ms4.Throughput)
	}
}

func TestMultiportMatchesSinglePortAtK1(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(4), rng.Intn(5), 4, 4, 0.1)
		a, err := SolveMasterSlave(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveMasterSlaveMultiport(p, 0, UniformPorts(p, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !a.Throughput.Equal(b.Throughput) {
			t.Fatalf("trial %d: k=1 multiport %v != single port %v", trial, b.Throughput, a.Throughput)
		}
	}
}

func TestMultiportMonotoneInCards(t *testing.T) {
	p := platform.Figure1()
	prev := rat.Zero()
	for k := 1; k <= 3; k++ {
		ms, err := SolveMasterSlaveMultiport(p, 0, UniformPorts(p, k))
		if err != nil {
			t.Fatal(err)
		}
		if ms.Throughput.Less(prev) {
			t.Fatalf("k=%d decreased throughput", k)
		}
		prev = ms.Throughput
	}
}

func TestMultiportEdgeCapacityStillBinds(t *testing.T) {
	// One worker, many cards: the single link's s_e <= 1 still caps
	// the rate at 1/c regardless of card count.
	p := platform.Star(platform.WInt(1000),
		[]platform.Weight{platform.WInt(1)}, []rat.Rat{rat.FromInt(2)})
	ms, err := SolveMasterSlaveMultiport(p, 0, UniformPorts(p, 8))
	if err != nil {
		t.Fatal(err)
	}
	want := rat.New(1, 1000).Add(rat.New(1, 2))
	if !ms.Throughput.Equal(want) {
		t.Fatalf("throughput %v, want %v", ms.Throughput, want)
	}
}

func TestPortCapsValidate(t *testing.T) {
	p := fanStar(2)
	bad := PortCaps{Send: []int{1}, Recv: []int{1}}
	if err := bad.Validate(p); err == nil {
		t.Fatal("expected size error")
	}
	zero := UniformPorts(p, 1)
	zero.Send[0] = 0
	if err := zero.Validate(p); err == nil {
		t.Fatal("expected zero-card error")
	}
}

func TestCardsFixedWiring(t *testing.T) {
	p := fanStar(4)
	caps := UniformPorts(p, 2)
	assign := RoundRobinCards(p, caps)
	cs, err := SolveMasterSlaveCards(p, 0, assign)
	if err != nil {
		t.Fatal(err)
	}
	// Two cards at the master, workers round-robined 2 per card:
	// each card feeds 2 unit workers over unit links -> 1 task/unit
	// per card, 2 total.
	want := rat.New(1, 1000).Add(rat.FromInt(2))
	if !cs.Throughput.Equal(want) {
		t.Fatalf("throughput %v, want %v", cs.Throughput, want)
	}
}

func TestCardsNeverBeatAggregatedBound(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 6; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(4), rng.Intn(6), 4, 4, 0.1)
		k := 1 + rng.Intn(3)
		caps := UniformPorts(p, k)
		agg, err := SolveMasterSlaveMultiport(p, 0, caps)
		if err != nil {
			t.Fatal(err)
		}
		cards, err := SolveMasterSlaveCards(p, 0, RoundRobinCards(p, caps))
		if err != nil {
			t.Fatal(err)
		}
		if agg.Throughput.Less(cards.Throughput) {
			t.Fatalf("trial %d: fixed wiring %v beats aggregated relaxation %v",
				trial, cards.Throughput, agg.Throughput)
		}
	}
}

func TestCardAssignValidate(t *testing.T) {
	p := fanStar(2)
	caps := UniformPorts(p, 1)
	a := RoundRobinCards(p, caps)
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
	a.SendCard[0] = 5
	if err := a.Validate(p); err == nil {
		t.Fatal("expected invalid-card error")
	}
	b := CardAssign{Caps: caps}
	if err := b.Validate(p); err == nil {
		t.Fatal("expected coverage error")
	}
}
