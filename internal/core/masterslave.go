package core

import (
	"fmt"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// MasterSlave is the solved steady-state master-slave program SSMS(G)
// of §3.1: the master initially holds a large collection of
// independent identical tasks; the solution says which fraction of
// each time-unit every node computes (Alpha) and every edge carries
// task files (S).
type MasterSlave struct {
	P      *platform.Platform
	Master int
	Model  PortModel

	// Throughput is ntask(G) = sum over nodes of alpha_i / w_i, the
	// optimal number of tasks processed per time-unit in steady state.
	Throughput rat.Rat
	// Alpha[i] is the fraction of time node i spends computing.
	Alpha []rat.Rat
	// S[e] is the fraction of time edge e's sender spends sending
	// task files along e.
	S []rat.Rat

	// LP reports how the underlying solve went (pivot counts,
	// warm-start outcome) and Basis is the optimal basis, usable to
	// warm-start the LP of a structurally identical platform (same
	// node/edge counts and compute/forwarder pattern).
	LP    lp.SolveInfo
	Basis *lp.Basis
}

// TasksPerUnit returns, for edge e, the (rational) number of task
// files crossing e per time-unit: s_e / c_e.
func (ms *MasterSlave) TasksPerUnit(e int) rat.Rat {
	return ms.S[e].Div(ms.P.Edge(e).C)
}

// ComputeRate returns node i's tasks computed per time-unit:
// alpha_i / w_i (zero for forwarder-only nodes).
func (ms *MasterSlave) ComputeRate(i int) rat.Rat {
	w := ms.P.Weight(i)
	if w.Inf {
		return rat.Zero()
	}
	return ms.Alpha[i].Div(w.Val)
}

// SolveMasterSlave builds and solves SSMS(G) under the base
// send-and-receive model.
func SolveMasterSlave(p *platform.Platform, master int) (*MasterSlave, error) {
	return SolveMasterSlavePort(p, master, SendAndReceive)
}

// SolveMasterSlavePort builds and solves SSMS(G) under the given port
// model. The LP is exactly the one displayed in §3.1:
//
//	maximize   ntask(G) = sum_i alpha_i / w_i
//	subject to 0 <= alpha_i <= 1
//	           0 <= s_ij <= 1
//	           sum_j s_ij <= 1                  (one-port, out)
//	           sum_j s_ji <= 1                  (one-port, in)
//	           s_jm = 0                         (master receives nothing)
//	           sum_j s_ji/c_ji = alpha_i/w_i + sum_j s_ij/c_ij  (i != m)
func SolveMasterSlavePort(p *platform.Platform, master int, pm PortModel) (*MasterSlave, error) {
	return SolveMasterSlavePortOpts(p, master, pm, nil)
}

// SolveMasterSlavePortOpts is SolveMasterSlavePort under explicit LP
// options — the warm-start entry point: pass the Basis of a
// previously solved structurally identical instance to re-solve in a
// handful of pivots (pkg/steady/batch and internal/adaptive do).
func SolveMasterSlavePortOpts(p *platform.Platform, master int, pm PortModel, opts *lp.Options) (*MasterSlave, error) {
	mm, err := buildMasterSlaveModel(p, master, pm)
	if err != nil {
		return nil, err
	}
	m, alpha, hasAlpha, sVar := mm.m, mm.alpha, mm.hasAlpha, mm.sVar

	sol, err := m.SolveOpts(opts)
	if err != nil {
		return nil, fmt.Errorf("core: master-slave LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: master-slave LP %v", sol.Status)
	}

	ms := &MasterSlave{
		P:          p,
		Master:     master,
		Model:      pm,
		Throughput: sol.Objective,
		Alpha:      make([]rat.Rat, p.NumNodes()),
		S:          make([]rat.Rat, p.NumEdges()),
		LP:         sol.Info,
		Basis:      sol.Basis(),
	}
	for i := 0; i < p.NumNodes(); i++ {
		if hasAlpha[i] {
			ms.Alpha[i] = sol.Value(alpha[i])
		}
	}
	for e := 0; e < p.NumEdges(); e++ {
		ms.S[e] = sol.Value(sVar[e])
	}
	if err := ms.Check(); err != nil {
		return nil, fmt.Errorf("core: solver returned invalid solution: %w", err)
	}
	return ms, nil
}

// msModel is the built-but-unsolved SSMS(G) linear program, exposing
// the variable handles the solver (and the parity/golden tests) need.
type msModel struct {
	m        *lp.Model
	alpha    []lp.Var
	hasAlpha []bool
	sVar     []lp.Var
}

// buildMasterSlaveModel constructs the §3.1 LP without solving it.
func buildMasterSlaveModel(p *platform.Platform, master int, pm PortModel) (*msModel, error) {
	if master < 0 || master >= p.NumNodes() {
		return nil, fmt.Errorf("core: master index %d out of range", master)
	}
	m := lp.NewModel()
	one := rat.One()

	alpha := make([]lp.Var, p.NumNodes())
	hasAlpha := make([]bool, p.NumNodes())
	for i := 0; i < p.NumNodes(); i++ {
		if p.CanCompute(i) {
			alpha[i] = m.VarRange(fmt.Sprintf("alpha[%s]", p.Name(i)), one)
			hasAlpha[i] = true
		}
	}
	sVar := make([]lp.Var, p.NumEdges())
	for e := 0; e < p.NumEdges(); e++ {
		ed := p.Edge(e)
		sVar[e] = m.VarRange(fmt.Sprintf("s[%s->%s#%d]", p.Name(ed.From), p.Name(ed.To), e), one)
	}

	// Objective: sum alpha_i / w_i.
	obj := lp.Expr{}
	for i := 0; i < p.NumNodes(); i++ {
		if hasAlpha[i] {
			obj = obj.Plus(alpha[i], p.Weight(i).Val.Inv())
		}
	}
	if len(obj) == 0 {
		return nil, fmt.Errorf("core: no node can compute")
	}
	m.Objective(lp.Maximize, obj)

	addOnePortConstraints(m, p, sVar, pm)

	// The master does not receive anything.
	for _, e := range p.InEdges(master) {
		m.Eq(fmt.Sprintf("no-recv-master[%d]", e), lp.Expr{}.PlusInt(sVar[e], 1), rat.Zero())
	}

	// Conservation law at every non-master node:
	// received rate = compute rate + forwarded rate.
	for i := 0; i < p.NumNodes(); i++ {
		if i == master {
			continue
		}
		e := lp.Expr{}
		for _, ei := range p.InEdges(i) {
			e = e.Plus(sVar[ei], p.Edge(ei).C.Inv())
		}
		if hasAlpha[i] {
			e = e.Plus(alpha[i], p.Weight(i).Val.Inv().Neg())
		}
		for _, eo := range p.OutEdges(i) {
			e = e.Plus(sVar[eo], p.Edge(eo).C.Inv().Neg())
		}
		if len(e) == 0 {
			continue
		}
		m.Eq(fmt.Sprintf("conserve[%s]", p.Name(i)), e, rat.Zero())
	}
	return &msModel{m: m, alpha: alpha, hasAlpha: hasAlpha, sVar: sVar}, nil
}

// Check re-verifies every SSMS equation on the stored activity
// variables using independent code (not the LP solver).
func (ms *MasterSlave) Check() error {
	p := ms.P
	one := rat.One()
	for i, a := range ms.Alpha {
		if a.Sign() < 0 || a.Cmp(one) > 0 {
			return fmt.Errorf("core: alpha[%s] = %v outside [0,1]", p.Name(i), a)
		}
		if !p.CanCompute(i) && !a.IsZero() {
			return fmt.Errorf("core: forwarder %s computes", p.Name(i))
		}
	}
	for e, s := range ms.S {
		if s.Sign() < 0 || s.Cmp(one) > 0 {
			return fmt.Errorf("core: s[%d] = %v outside [0,1]", e, s)
		}
	}
	if err := checkOnePort(p, ms.S, ms.Model); err != nil {
		return err
	}
	for _, e := range p.InEdges(ms.Master) {
		if !ms.S[e].IsZero() {
			return fmt.Errorf("core: master receives on edge %d", e)
		}
	}
	for i := 0; i < p.NumNodes(); i++ {
		if i == ms.Master {
			continue
		}
		in := rat.Zero()
		for _, e := range p.InEdges(i) {
			in = in.Add(ms.TasksPerUnit(e))
		}
		out := ms.ComputeRate(i)
		for _, e := range p.OutEdges(i) {
			out = out.Add(ms.TasksPerUnit(e))
		}
		if !in.Equal(out) {
			return fmt.Errorf("core: conservation violated at %s: in %v != out %v",
				p.Name(i), in, out)
		}
	}
	tp := rat.Zero()
	for i := range ms.Alpha {
		tp = tp.Add(ms.ComputeRate(i))
	}
	if !tp.Equal(ms.Throughput) {
		return fmt.Errorf("core: throughput %v != sum of compute rates %v", ms.Throughput, tp)
	}
	return nil
}

// StarThroughput returns the closed-form optimal steady-state
// throughput for a single-level star (master + workers), used to
// cross-check the LP: the master computes at rate 1/w_m and
// distributes its unit of sending time to workers by increasing link
// cost c_j (a fractional knapsack), each worker being capped at its
// compute rate 1/w_j.
func StarThroughput(p *platform.Platform, master int) (rat.Rat, error) {
	if len(p.InEdges(master)) != 0 {
		return rat.Zero(), fmt.Errorf("core: not a star rooted at %d", master)
	}
	type worker struct {
		c, rate rat.Rat
	}
	var ws []worker
	for _, e := range p.OutEdges(master) {
		ed := p.Edge(e)
		if len(p.OutEdges(ed.To)) != 0 {
			return rat.Zero(), fmt.Errorf("core: node %s is not a leaf", p.Name(ed.To))
		}
		w := p.Weight(ed.To)
		if w.Inf {
			continue // a forwarder leaf contributes nothing
		}
		ws = append(ws, worker{c: ed.C, rate: w.Val.Inv()})
	}
	// Sort by increasing c (cheapest links first): insertion sort is
	// fine at star sizes.
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].c.Less(ws[j-1].c); j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	tp := rat.Zero()
	if p.CanCompute(master) {
		tp = p.Weight(master).Val.Inv()
	}
	budget := rat.One() // one unit of master sending time
	for _, w := range ws {
		if budget.Sign() <= 0 {
			break
		}
		need := w.c.Mul(w.rate) // time to feed the worker at full rate
		if need.Cmp(budget) <= 0 {
			tp = tp.Add(w.rate)
			budget = budget.Sub(need)
		} else {
			tp = tp.Add(budget.Div(w.c))
			budget = rat.Zero()
		}
	}
	return tp, nil
}
