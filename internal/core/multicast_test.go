package core

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// TestFigure2MulticastBound reproduces §3.3/§4.3: on the Figure 2
// platform the max-operator LP reaches a throughput of exactly one
// message per time-unit.
func TestFigure2MulticastBound(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	bound, err := SolveMulticastBound(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !bound.Throughput.IsOne() {
		t.Fatalf("max-operator bound = %v, want exactly 1 (paper: 'reaches the throughput of one message per time-unit')", bound.Throughput)
	}
}

// TestFigure2SumLP reproduces the pessimistic sum formulation: with
// distinct-message accounting the source port is the bottleneck
// (every message leaves P0 twice at unit cost), so TP = 1/2.
func TestFigure2SumLP(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	sum, err := SolveMulticastSum(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Throughput.Equal(rr(1, 2)) {
		t.Fatalf("sum LP = %v, want 1/2", sum.Throughput)
	}
}

// TestFigure2TreePackingGap is the heart of the counterexample: the
// true optimal multicast throughput (exact tree packing) is strictly
// below the max-operator bound of 1, proving the bound unachievable —
// "reconstructing a schedule from the solution of the linear program
// is not possible" (§4.3).
func TestFigure2TreePackingGap(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)

	pack, err := SolveTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Figure 2: enumerated %d minimal Steiner trees; optimal packing TP = %v = %.4f",
		pack.NumTrees, pack.Throughput, pack.Throughput.Float64())

	one := rat.One()
	if pack.Throughput.Cmp(one) >= 0 {
		t.Fatalf("tree packing %v >= 1: counterexample not reproduced", pack.Throughput)
	}
	// Sum LP is achievable, so packing must be at least 1/2.
	if pack.Throughput.Less(rr(1, 2)) {
		t.Fatalf("tree packing %v below the achievable sum-LP value 1/2", pack.Throughput)
	}
}

// TestFigure2TwoTreeConflict reconstructs Figure 3(d): serving both
// targets at rate 1 requires two different trees (odd/even messages),
// and those trees collide on the capacity-2 edge P3->P4.
func TestFigure2TwoTreeConflict(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	p3, p4 := p.NodeByName("P3"), p.NodeByName("P4")
	e34 := p.FindEdge(p3, p4)

	// The two routes of §4.3. To P5: a-messages P0->P1->P5 and
	// b-messages P0->P2->P3->P4->P5. To P6: a-messages (route r1)
	// P0->P1->P3->P4->P6 and b-messages (route r2) P0->P2->P6.
	find := func(names ...string) []int {
		var es []int
		for i := 0; i+1 < len(names); i++ {
			e := p.FindEdge(p.NodeByName(names[i]), p.NodeByName(names[i+1]))
			if e < 0 {
				t.Fatalf("missing edge %s->%s", names[i], names[i+1])
			}
			es = append(es, e)
		}
		return es
	}
	treeA := append(find("P0", "P1", "P5"), find("P1", "P3", "P4", "P6")...) // odd messages
	treeB := append(find("P0", "P2", "P3", "P4", "P5"), find("P2", "P6")...) // even messages

	// Both are valid multicast trees of the enumeration.
	trees, err := EnumerateMulticastTrees(p, src, platform.Figure2Targets(p))
	if err != nil {
		t.Fatal(err)
	}
	contains := func(es []int) bool {
		want := map[int]bool{}
		for _, e := range es {
			want[e] = true
		}
	outer:
		for _, tr := range trees {
			if len(tr) != len(es) {
				continue
			}
			for _, e := range tr {
				if !want[e] {
					continue outer
				}
			}
			return true
		}
		return false
	}
	if !contains(treeA) || !contains(treeB) {
		t.Fatal("the paper's two trees are not among the enumerated minimal trees")
	}

	// Both trees use P3->P4: one a-message and one b-message per
	// time-unit would need 2*c34 = 4 time-units of edge time per
	// 2 time-units — infeasible, exactly Figure 3(d)'s conflict.
	shared := TreeEdgeConflict(p, []MulticastTree{
		{Edges: treeA, Rate: rr(1, 2)},
		{Edges: treeB, Rate: rr(1, 2)},
	})
	found := false
	for _, e := range shared {
		if e == e34 {
			found = true
		}
	}
	if !found {
		t.Fatal("P3->P4 not shared between the two trees")
	}
	// Per-instance load on P3->P4 at rate 1/2 each: c34*(1/2+1/2) = 2
	// per time-unit > 1: the pair of trees alone is infeasible at
	// total rate 1.
	c34 := p.Edge(e34).C
	load := c34.Mul(rr(1, 2)).Add(c34.Mul(rr(1, 2)))
	if load.Cmp(rat.One()) <= 0 {
		t.Fatalf("expected overload on P3->P4, got %v", load)
	}
}

// TestFigure2MaxLPFlowsMatchFigure3 checks that the max-operator LP
// admits (as a feasible point) exactly the flows drawn in Figure 3:
// 1/2 per edge and per target on the two routes.
func TestFigure2MaxLPFlowsMatchFigure3(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)

	half := rr(1, 2)
	flow := make([][]rat.Rat, p.NumEdges()) // [edge][targetIdx]
	s := make([]rat.Rat, p.NumEdges())
	for e := range flow {
		flow[e] = make([]rat.Rat, 2)
	}
	set := func(a, b string, k int) {
		e := p.FindEdge(p.NodeByName(a), p.NodeByName(b))
		if e < 0 {
			t.Fatalf("missing edge %s->%s", a, b)
		}
		flow[e][k] = half
	}
	// Figure 3(a): flows for target P5 (k=0).
	set("P0", "P1", 0)
	set("P1", "P5", 0)
	set("P0", "P2", 0)
	set("P2", "P3", 0)
	set("P3", "P4", 0)
	set("P4", "P5", 0)
	// Figure 3(b): flows for target P6 (k=1).
	set("P0", "P1", 1)
	set("P1", "P3", 1)
	set("P3", "P4", 1)
	set("P4", "P6", 1)
	set("P0", "P2", 1)
	set("P2", "P6", 1)
	// s_e = max_k flow*c.
	for e := 0; e < p.NumEdges(); e++ {
		c := p.Edge(e).C
		for k := 0; k < 2; k++ {
			s[e] = rat.Max(s[e], flow[e][k].Mul(c))
		}
	}
	cand := &Scatter{
		P: p, Source: src, Targets: targets, Model: SendAndReceive,
		Throughput: rat.One(), S: s, Send: flow,
	}
	if err := cand.check(true); err != nil {
		t.Fatalf("Figure 3 flows rejected by max-LP feasibility check: %v", err)
	}
}

func TestEnumerateTreesSmall(t *testing.T) {
	// Diamond: src -> {a, b} -> dst; two minimal trees to reach dst.
	p := platform.New()
	s := p.AddNode("S", platform.WInt(1))
	a := p.AddNode("A", platform.WInt(1))
	b := p.AddNode("B", platform.WInt(1))
	d := p.AddNode("D", platform.WInt(1))
	p.AddEdge(s, a, ri(1))
	p.AddEdge(s, b, ri(1))
	p.AddEdge(a, d, ri(1))
	p.AddEdge(b, d, ri(1))
	trees, err := EnumerateMulticastTrees(p, s, []int{d})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	for _, tr := range trees {
		if len(tr) != 2 {
			t.Fatalf("tree %v not minimal", tr)
		}
	}
}

func TestEnumerateTreesPrunesNonTargetLeaves(t *testing.T) {
	// Extra dead-end node X must never appear in a minimal tree.
	p := platform.New()
	s := p.AddNode("S", platform.WInt(1))
	tgt := p.AddNode("T", platform.WInt(1))
	x := p.AddNode("X", platform.WInt(1))
	p.AddEdge(s, tgt, ri(1))
	ex := p.AddEdge(s, x, ri(1))
	trees, err := EnumerateMulticastTrees(p, s, []int{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	for _, e := range trees[0] {
		if e == ex {
			t.Fatal("pruned edge present")
		}
	}
}

func TestTreePackingSingleChain(t *testing.T) {
	// src -> t: throughput limited by the only edge: 1/c.
	p := platform.New()
	s := p.AddNode("S", platform.WInt(1))
	d := p.AddNode("T", platform.WInt(1))
	p.AddEdge(s, d, ri(4))
	pack, err := SolveTreePacking(p, s, []int{d})
	if err != nil {
		t.Fatal(err)
	}
	if !pack.Throughput.Equal(rr(1, 4)) {
		t.Fatalf("packing = %v, want 1/4", pack.Throughput)
	}
}

func TestBestSingleTreeLowerBoundsPacking(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	_, single, err := BestSingleTree(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := SolveTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if pack.Throughput.Less(single) {
		t.Fatalf("packing %v below single tree %v", pack.Throughput, single)
	}
	t.Logf("Figure 2 best single tree TP = %v, packing = %v", single, pack.Throughput)
}

// TestOrderingSumLEPackingLEBound asserts the fundamental sandwich of
// §3.3 on random platforms: sum-LP <= tree packing <= max-LP bound.
func TestOrderingSumLEPackingLEBound(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	trials := 0
	for attempt := 0; attempt < 40 && trials < 10; attempt++ {
		p := platform.RandomConnected(rng, 5+rng.Intn(2), rng.Intn(4), 3, 3, 0)
		if p.NumEdges() > 16 { // keep the enumeration tiny
			continue
		}
		src := 0
		var targets []int
		for i := 1; i < p.NumNodes() && len(targets) < 2; i++ {
			targets = append(targets, i)
		}
		sum, err := SolveMulticastSum(p, src, targets)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := SolveMulticastBound(p, src, targets)
		if err != nil {
			t.Fatal(err)
		}
		pack, err := SolveTreePacking(p, src, targets)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Throughput.Cmp(pack.Throughput) > 0 {
			t.Fatalf("sum %v > packing %v\n%s", sum.Throughput, pack.Throughput, p)
		}
		if pack.Throughput.Cmp(bound.Throughput) > 0 {
			t.Fatalf("packing %v > bound %v\n%s", pack.Throughput, bound.Throughput, p)
		}
		trials++
	}
	if trials < 5 {
		t.Fatalf("only %d usable random platforms", trials)
	}
}

// TestBroadcastBoundAchievableOnFigure2 is E4: for broadcast (all
// nodes are targets) the max-operator bound is achievable [5]; on
// Figure 2 the tree packing must meet it exactly.
func TestBroadcastBoundAchievableOnFigure2(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	bound, err := SolveBroadcastBound(p, src)
	if err != nil {
		t.Fatal(err)
	}
	var targets []int
	for i := 0; i < p.NumNodes(); i++ {
		if i != src {
			targets = append(targets, i)
		}
	}
	pack, err := SolveTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Figure 2 broadcast: bound = %v, packing = %v", bound.Throughput, pack.Throughput)
	if !pack.Throughput.Equal(bound.Throughput) {
		t.Fatalf("broadcast bound %v not met by packing %v (paper claims achievability)",
			bound.Throughput, pack.Throughput)
	}
}

func TestMulticastErrors(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	if _, err := SolveMulticastBound(p, src, []int{src}); err == nil {
		t.Fatal("expected source-as-target error")
	}
	if _, err := SolveMulticastBound(p, src, nil); err == nil {
		t.Fatal("expected no-targets error")
	}
	if _, err := SolveMulticastBound(p, src, []int{99}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := SolveMulticastBound(p, 99, []int{1}); err == nil {
		t.Fatal("expected bad-source error")
	}
	tg := platform.Figure2Targets(p)
	if _, err := SolveMulticastBound(p, src, []int{tg[0], tg[0]}); err == nil {
		t.Fatal("expected duplicate-target error")
	}
	// Unreachable target makes the LP force TP = 0.
	q := platform.New()
	a := q.AddNode("A", platform.WInt(1))
	b := q.AddNode("B", platform.WInt(1))
	c := q.AddNode("C", platform.WInt(1))
	q.AddEdge(a, b, ri(1))
	sol, err := SolveMulticastBound(q, a, []int{c})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Throughput.IsZero() {
		t.Fatalf("unreachable target should force TP=0, got %v", sol.Throughput)
	}
}

func TestPopcountHelper(t *testing.T) {
	if popcount(0b1011) != 3 {
		t.Fatal("popcount wrong")
	}
}
