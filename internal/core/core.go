// Package core implements the paper's primary contribution: the
// steady-state linear programs of §3 and their surrounding theory.
//
//   - Master-slave tasking (§3.1): SSMS(G), maximizing the number of
//     independent equal-sized tasks processed per time-unit.
//   - Pipelined scatter (§3.2): SSPS(G), maximizing the common
//     throughput of a series of scatter operations.
//   - Pipelined broadcast/multicast (§3.3): the max-operator variant,
//     which upper-bounds multicast throughput (unachievable in
//     general — Figure 2/3's counterexample, reproduced in
//     multicast.go) and is achievable for broadcast.
//   - Extensions of §4.2 and §5: reduce and personalized all-to-all,
//     collections of DAGs, and the send-OR-receive port model.
//
// Every Solve* function returns exact rational activity variables
// computed by the exact simplex of internal/lp, together with an
// independent Check* verifier that re-validates the paper's equations
// (one-port constraints, conservation laws) on the returned solution.
package core

import (
	"fmt"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// PortModel selects the communication model of §2 (full overlap,
// separate send and receive ports) or the restricted §5.1.1 model
// where a processor can either send or receive at any given time.
type PortModel int

const (
	// SendAndReceive is the paper's base model: at most one emission
	// and one reception at a time, overlapping with computation.
	SendAndReceive PortModel = iota
	// SendOrReceive shares a single port for emissions and
	// receptions (§5.1.1); schedule reconstruction becomes NP-hard.
	SendOrReceive
)

func (m PortModel) String() string {
	if m == SendOrReceive {
		return "send-or-receive"
	}
	return "send-and-receive"
}

// addOnePortConstraints adds the model's port constraints for every
// node: either separate in/out budgets (third and fourth equations of
// SSMS) or a combined budget under SendOrReceive.
func addOnePortConstraints(m *lp.Model, p *platform.Platform, sVar []lp.Var, pm PortModel) {
	one := rat.One()
	for i := 0; i < p.NumNodes(); i++ {
		switch pm {
		case SendAndReceive:
			out := lp.Expr{}
			for _, e := range p.OutEdges(i) {
				out = out.PlusInt(sVar[e], 1)
			}
			if len(out) > 0 {
				m.Le(fmt.Sprintf("out-port[%s]", p.Name(i)), out, one)
			}
			in := lp.Expr{}
			for _, e := range p.InEdges(i) {
				in = in.PlusInt(sVar[e], 1)
			}
			if len(in) > 0 {
				m.Le(fmt.Sprintf("in-port[%s]", p.Name(i)), in, one)
			}
		case SendOrReceive:
			both := lp.Expr{}
			for _, e := range p.OutEdges(i) {
				both = both.PlusInt(sVar[e], 1)
			}
			for _, e := range p.InEdges(i) {
				both = both.PlusInt(sVar[e], 1)
			}
			if len(both) > 0 {
				m.Le(fmt.Sprintf("port[%s]", p.Name(i)), both, one)
			}
		}
	}
}

// checkOnePort verifies the port constraints on concrete activity
// values (fraction of time spent on each edge).
func checkOnePort(p *platform.Platform, s []rat.Rat, pm PortModel) error {
	one := rat.One()
	for i := 0; i < p.NumNodes(); i++ {
		out, in := rat.Zero(), rat.Zero()
		for _, e := range p.OutEdges(i) {
			out = out.Add(s[e])
		}
		for _, e := range p.InEdges(i) {
			in = in.Add(s[e])
		}
		switch pm {
		case SendAndReceive:
			if out.Cmp(one) > 0 {
				return fmt.Errorf("core: node %s sends %v > 1", p.Name(i), out)
			}
			if in.Cmp(one) > 0 {
				return fmt.Errorf("core: node %s receives %v > 1", p.Name(i), in)
			}
		case SendOrReceive:
			if out.Add(in).Cmp(one) > 0 {
				return fmt.Errorf("core: node %s uses port %v > 1", p.Name(i), out.Add(in))
			}
		}
	}
	return nil
}
