package core

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func TestGreedyPackingFigure2(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	greedy, err := GreedyTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.CheckPacking(); err != nil {
		t.Fatal(err)
	}
	exact, err := SolveTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Throughput.Less(greedy.Throughput) {
		t.Fatalf("greedy %v beats the exact optimum %v", greedy.Throughput, exact.Throughput)
	}
	// The heuristic should get at least the single-best-tree value.
	_, single, err := BestSingleTree(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Throughput.Less(single) {
		t.Fatalf("greedy %v below single best tree %v", greedy.Throughput, single)
	}
	t.Logf("Figure 2 greedy packing: %v of exact %v (bound 1)", greedy.Throughput, exact.Throughput)
}

func TestGreedyPackingNeverExceedsBoundOrExact(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	checked := 0
	for attempt := 0; attempt < 30 && checked < 8; attempt++ {
		p := platform.RandomConnected(rng, 5+rng.Intn(2), rng.Intn(4), 3, 3, 0)
		if p.NumEdges() > 14 {
			continue
		}
		targets := []int{1, 2}
		greedy, err := GreedyTreePacking(p, 0, targets)
		if err != nil {
			continue // budget-blocked instances are acceptable for the heuristic
		}
		if err := greedy.CheckPacking(); err != nil {
			t.Fatalf("invalid greedy packing: %v", err)
		}
		bound, err := SolveMulticastBound(p, 0, targets)
		if err != nil {
			t.Fatal(err)
		}
		if bound.Throughput.Less(greedy.Throughput) {
			t.Fatalf("greedy %v exceeds LP bound %v", greedy.Throughput, bound.Throughput)
		}
		exact, err := SolveTreePacking(p, 0, targets)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Throughput.Less(greedy.Throughput) {
			t.Fatalf("greedy %v beats exact %v", greedy.Throughput, exact.Throughput)
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestGreedyPackingScalesBeyondEnumeration(t *testing.T) {
	// A platform with > 63 edges: enumeration refuses, greedy works.
	rng := rand.New(rand.NewSource(17))
	p := platform.Clique(rng, 9, 3, 3) // 72 directed edges
	if p.NumEdges() <= 63 {
		t.Fatalf("test platform too small: %d edges", p.NumEdges())
	}
	targets := []int{1, 2, 3}
	if _, err := EnumerateMulticastTrees(p, 0, targets); err == nil {
		t.Fatal("enumeration should refuse > 63 edges")
	}
	greedy, err := GreedyTreePacking(p, 0, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.CheckPacking(); err != nil {
		t.Fatal(err)
	}
	bound, err := SolveMulticastBound(p, 0, targets)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Throughput.Less(greedy.Throughput) {
		t.Fatalf("greedy %v exceeds bound %v", greedy.Throughput, bound.Throughput)
	}
	ratio := greedy.Throughput.Div(bound.Throughput)
	t.Logf("9-clique: greedy %v of bound %v (%.2f)", greedy.Throughput, bound.Throughput, ratio.Float64())
	// The heuristic should not be embarrassing on a dense platform.
	if ratio.Less(rat.New(1, 4)) {
		t.Fatalf("greedy achieves only %v of the bound", ratio)
	}
}

func TestCheckPackingCatchesOverload(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	exact, err := SolveTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.CheckPacking(); err != nil {
		t.Fatal(err)
	}
	// Inflate a rate: the port check must fire (and throughput
	// mismatch too; overload comes first).
	bad := *exact
	bad.Trees = append([]MulticastTree(nil), exact.Trees...)
	bad.Trees[0].Rate = rat.FromInt(5)
	if err := bad.CheckPacking(); err == nil {
		t.Fatal("expected overload error")
	}
}
