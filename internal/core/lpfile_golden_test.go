package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
)

var updateGolden = flag.Bool("update", false, "rewrite the LP-format golden files")

// TestWriteLPGolden pins the CPLEX LP-format export of the migrated
// models byte-for-byte: the writer renders from the Model surface,
// so its output must not move when the solver's internal
// representation does (the dense tableau -> sparse revised simplex
// migration is exactly the change this guards). Regenerate with
// go test ./internal/core -run TestWriteLPGolden -update.
func TestWriteLPGolden(t *testing.T) {
	fig1 := platform.Figure1()
	fig2 := platform.Figure2()
	cases := []struct {
		name  string
		build func() (*lp.Model, error)
	}{
		{"masterslave_figure1", func() (*lp.Model, error) {
			mm, err := buildMasterSlaveModel(fig1, 0, SendAndReceive)
			if err != nil {
				return nil, err
			}
			return mm.m, nil
		}},
		{"masterslave_sendrecv_figure1", func() (*lp.Model, error) {
			mm, err := buildMasterSlaveModel(fig1, 0, SendOrReceive)
			if err != nil {
				return nil, err
			}
			return mm.m, nil
		}},
		{"scatter_figure1", func() (*lp.Model, error) {
			dm, err := buildDistributionModel(fig1, 0, []int{3, 4, 5}, SendAndReceive, false)
			if err != nil {
				return nil, err
			}
			return dm.m, nil
		}},
		{"multicast_bound_figure2", func() (*lp.Model, error) {
			dm, err := buildDistributionModel(fig2, fig2.NodeByName("P0"), platform.Figure2Targets(fig2), SendAndReceive, true)
			if err != nil {
				return nil, err
			}
			return dm.m, nil
		}},
		{"treepacking_figure2", func() (*lp.Model, error) {
			trees, err := EnumerateMulticastTrees(fig2, fig2.NodeByName("P0"), platform.Figure2Targets(fig2))
			if err != nil {
				return nil, err
			}
			m, _ := buildTreePackingModel(fig2, trees)
			return m, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.WriteLP(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".lp")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("LP export of %s drifted from golden %s (regenerate with -update only if the model itself legitimately changed)", tc.name, path)
			}
		})
	}
}
