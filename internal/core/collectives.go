package core

import (
	"fmt"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// SolveReduceBound computes the optimal steady-state throughput of a
// pipelined reduce to root ("the approach for scatters also works for
// personalized all-to-all and reduce operations" — §4.2, [12]).
//
// A reduction combines partial results on the way to the root: the
// reduction trees are exactly the broadcast trees of the *reversed*
// platform, so the reduce throughput equals the broadcast bound on
// Reverse(G) rooted at root. Like broadcast (and unlike multicast)
// the bound is achievable.
func SolveReduceBound(p *platform.Platform, root int) (*Scatter, error) {
	return SolveReduceBoundOpts(p, root, nil)
}

// SolveReduceBoundOpts is SolveReduceBound under explicit LP options
// (warm starts across instance families; the basis is of the
// reversed-platform broadcast LP, which is structurally identical
// across platforms with the same shape, so it transfers like any
// other).
func SolveReduceBoundOpts(p *platform.Platform, root int, opts *lp.Options) (*Scatter, error) {
	r := p.Reverse()
	sol, err := SolveBroadcastBoundOpts(r, root, opts)
	if err != nil {
		return nil, fmt.Errorf("core: reduce: %w", err)
	}
	// Present the solution on the original platform: edge i of the
	// reversed platform is edge i of p with endpoints swapped, so the
	// activity variables transfer index-for-index.
	sol.P = p
	return sol, nil
}

// AllToAll is the solved steady-state personalized all-to-all
// program: every ordered pair (src, dst) of distinct participants
// exchanges TP distinct messages per time-unit.
type AllToAll struct {
	P            *platform.Platform
	Participants []int
	Model        PortModel

	Throughput rat.Rat
	// S[e] is the busy fraction of edge e.
	S []rat.Rat
	// Send[e][q] is the flow on edge e of pair q (see Pairs).
	Send [][]rat.Rat
	// Pairs lists the (src, dst) ordered pairs indexed by q.
	Pairs [][2]int
}

// SolveAllToAll builds and solves the personalized all-to-all LP: a
// scatter from every participant simultaneously, with a common
// throughput TP and per-pair conservation laws.
func SolveAllToAll(p *platform.Platform, participants []int) (*AllToAll, error) {
	if len(participants) < 2 {
		return nil, fmt.Errorf("core: all-to-all needs at least two participants")
	}
	seen := map[int]bool{}
	for _, i := range participants {
		if i < 0 || i >= p.NumNodes() {
			return nil, fmt.Errorf("core: participant %d out of range", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("core: duplicate participant %d", i)
		}
		seen[i] = true
	}
	var pairs [][2]int
	for _, s := range participants {
		for _, t := range participants {
			if s != t {
				pairs = append(pairs, [2]int{s, t})
			}
		}
	}

	m := lp.NewModel()
	one := rat.One()
	nE := p.NumEdges()

	sVar := make([]lp.Var, nE)
	for e := 0; e < nE; e++ {
		sVar[e] = m.VarRange(fmt.Sprintf("s[e%d]", e), one)
	}
	send := make([][]lp.Var, nE)
	for e := 0; e < nE; e++ {
		send[e] = make([]lp.Var, len(pairs))
		for q := range pairs {
			send[e][q] = m.Var(fmt.Sprintf("f[e%d,q%d]", e, q))
		}
	}
	tp := m.Var("TP")
	m.Objective(lp.Maximize, lp.Expr{}.PlusInt(tp, 1))

	addOnePortConstraints(m, p, sVar, SendAndReceive)

	// Distinct messages: per-edge times add up.
	for e := 0; e < nE; e++ {
		c := p.Edge(e).C
		ex := lp.Expr{}.PlusInt(sVar[e], -1)
		for q := range pairs {
			ex = ex.Plus(send[e][q], c)
		}
		m.Eq(fmt.Sprintf("sum[e%d]", e), ex, rat.Zero())
	}

	// Conservation at every node that is neither the pair's source
	// nor its destination.
	for i := 0; i < p.NumNodes(); i++ {
		for q, pr := range pairs {
			if i == pr[0] || i == pr[1] {
				continue
			}
			ex := lp.Expr{}
			for _, e := range p.InEdges(i) {
				ex = ex.PlusInt(send[e][q], 1)
			}
			for _, e := range p.OutEdges(i) {
				ex = ex.PlusInt(send[e][q], -1)
			}
			if len(ex) == 0 {
				continue
			}
			m.Eq(fmt.Sprintf("conserve[n%d,q%d]", i, q), ex, rat.Zero())
		}
	}

	// Delivery of every pair.
	for q, pr := range pairs {
		ex := lp.Expr{}.PlusInt(tp, -1)
		for _, e := range p.InEdges(pr[1]) {
			ex = ex.PlusInt(send[e][q], 1)
		}
		m.Eq(fmt.Sprintf("deliver[q%d]", q), ex, rat.Zero())
	}

	sol, err := m.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: all-to-all LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: all-to-all LP %v", sol.Status)
	}

	a := &AllToAll{
		P: p, Participants: append([]int(nil), participants...),
		Model:      SendAndReceive,
		Throughput: sol.Objective,
		S:          make([]rat.Rat, nE),
		Send:       make([][]rat.Rat, nE),
		Pairs:      pairs,
	}
	for e := 0; e < nE; e++ {
		a.S[e] = sol.Value(sVar[e])
		a.Send[e] = make([]rat.Rat, len(pairs))
		for q := range pairs {
			a.Send[e][q] = sol.Value(send[e][q])
		}
	}
	if err := a.Check(); err != nil {
		return nil, fmt.Errorf("core: invalid all-to-all solution: %w", err)
	}
	return a, nil
}

// Check re-verifies the all-to-all equations independently.
func (a *AllToAll) Check() error {
	p := a.P
	if err := checkOnePort(p, a.S, a.Model); err != nil {
		return err
	}
	for e := range a.S {
		tot := rat.Zero()
		for q := range a.Pairs {
			if a.Send[e][q].Sign() < 0 {
				return fmt.Errorf("core: negative flow e%d q%d", e, q)
			}
			tot = tot.Add(a.Send[e][q].Mul(p.Edge(e).C))
		}
		if !tot.Equal(a.S[e]) {
			return fmt.Errorf("core: edge %d busy time mismatch", e)
		}
	}
	for q, pr := range a.Pairs {
		got := rat.Zero()
		for _, e := range p.InEdges(pr[1]) {
			got = got.Add(a.Send[e][q])
		}
		if !got.Equal(a.Throughput) {
			return fmt.Errorf("core: pair %v receives %v != TP %v", pr, got, a.Throughput)
		}
		for i := 0; i < p.NumNodes(); i++ {
			if i == pr[0] || i == pr[1] {
				continue
			}
			in, out := rat.Zero(), rat.Zero()
			for _, e := range p.InEdges(i) {
				in = in.Add(a.Send[e][q])
			}
			for _, e := range p.OutEdges(i) {
				out = out.Add(a.Send[e][q])
			}
			if !in.Equal(out) {
				return fmt.Errorf("core: conservation violated n%d q%d", i, q)
			}
		}
	}
	return nil
}
