package core

import (
	"fmt"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// DAG describes one instance of the task graph whose independent
// copies are scheduled in the §4.2 generalization ("collections of
// identical DAGs ... the same suite of algorithmic kernels, but using
// different data samples").
type DAG struct {
	// Ops[k] is the computational weight of task type k: node i
	// spends Ops[k]*w_i time per execution.
	Ops []rat.Rat
	// Files are the dependence edges; a file of size Size is produced
	// by From and consumed by To, costing Size*c_ij per traversal of
	// platform edge (i,j).
	Files []File
}

// File is a dependence edge of the DAG.
type File struct {
	From, To int
	Size     rat.Rat
}

// Validate checks DAG structural invariants (acyclicity, ranges).
func (d *DAG) Validate() error {
	if len(d.Ops) == 0 {
		return fmt.Errorf("core: DAG has no tasks")
	}
	for k, o := range d.Ops {
		if o.Sign() <= 0 {
			return fmt.Errorf("core: task %d has non-positive weight", k)
		}
	}
	adj := make([][]int, len(d.Ops))
	for i, f := range d.Files {
		if f.From < 0 || f.From >= len(d.Ops) || f.To < 0 || f.To >= len(d.Ops) || f.From == f.To {
			return fmt.Errorf("core: file %d has bad endpoints", i)
		}
		if f.Size.Sign() <= 0 {
			return fmt.Errorf("core: file %d has non-positive size", i)
		}
		adj[f.From] = append(adj[f.From], f.To)
	}
	// Cycle check by DFS coloring.
	state := make([]int, len(d.Ops)) // 0 new, 1 active, 2 done
	var visit func(int) error
	visit = func(u int) error {
		state[u] = 1
		for _, v := range adj[u] {
			switch state[v] {
			case 1:
				return fmt.Errorf("core: DAG has a cycle through task %d", v)
			case 0:
				if err := visit(v); err != nil {
					return err
				}
			}
		}
		state[u] = 2
		return nil
	}
	for u := range d.Ops {
		if state[u] == 0 {
			if err := visit(u); err != nil {
				return err
			}
		}
	}
	return nil
}

// ChainDAG builds a linear pipeline T0 -> T1 -> ... with unit weights
// and sizes.
func ChainDAG(n int) *DAG {
	d := &DAG{}
	for i := 0; i < n; i++ {
		d.Ops = append(d.Ops, rat.One())
		if i > 0 {
			d.Files = append(d.Files, File{From: i - 1, To: i, Size: rat.One()})
		}
	}
	return d
}

// ForkJoinDAG builds source -> {n branches} -> sink with unit
// weights/sizes.
func ForkJoinDAG(branches int) *DAG {
	d := &DAG{Ops: []rat.Rat{rat.One()}}
	for b := 0; b < branches; b++ {
		d.Ops = append(d.Ops, rat.One())
		d.Files = append(d.Files, File{From: 0, To: 1 + b, Size: rat.One()})
	}
	sink := len(d.Ops)
	d.Ops = append(d.Ops, rat.One())
	for b := 0; b < branches; b++ {
		d.Files = append(d.Files, File{From: 1 + b, To: sink, Size: rat.One()})
	}
	return d
}

// DAGRate is the solution of the rate-based steady-state LP for DAG
// collections. It is an upper bound on the achievable throughput: the
// LP conserves file *types* independently and may pair files from
// different DAG instances, which is only known to be realizable for
// DAGs with a polynomial number of simple paths ([6, 4]; the general
// case is the paper's concluding open problem).
type DAGRate struct {
	P   *platform.Platform
	D   *DAG
	Src int // node initially holding all input data

	Throughput rat.Rat
	// Cons[i][k] is the rate at which node i executes task type k.
	Cons [][]rat.Rat
	// Flow[e][l] is the rate of file type l crossing platform edge e.
	Flow [][]rat.Rat
	// S[e] is the busy fraction of edge e.
	S []rat.Rat
}

// SolveDAGRateBound builds and solves the rate LP:
//
//	maximize  TP
//	s.t.      per node:  sum_k cons(i,k)*ops_k*w_i <= 1
//	          per edge:  s_e = sum_l flow(e,l)*size_l*c_e, one-port sums <= 1
//	          per (node, file l = k1->k2):
//	              in-flow + cons(i,k1) = out-flow + cons(i,k2)
//	          per task k: sum_i cons(i,k) = TP
func SolveDAGRateBound(p *platform.Platform, d *DAG, src int) (*DAGRate, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	_ = src // the rate LP needs no distinguished source: inputs are produced by entry tasks

	m := lp.NewModel()
	one := rat.One()
	nN, nE, nK, nL := p.NumNodes(), p.NumEdges(), len(d.Ops), len(d.Files)

	cons := make([][]lp.Var, nN)
	hasCons := make([]bool, nN)
	for i := 0; i < nN; i++ {
		if !p.CanCompute(i) {
			continue
		}
		hasCons[i] = true
		cons[i] = make([]lp.Var, nK)
		for k := 0; k < nK; k++ {
			cons[i][k] = m.Var(fmt.Sprintf("cons[n%d,k%d]", i, k))
		}
	}
	flow := make([][]lp.Var, nE)
	sVar := make([]lp.Var, nE)
	for e := 0; e < nE; e++ {
		sVar[e] = m.VarRange(fmt.Sprintf("s[e%d]", e), one)
		flow[e] = make([]lp.Var, nL)
		for l := 0; l < nL; l++ {
			flow[e][l] = m.Var(fmt.Sprintf("flow[e%d,l%d]", e, l))
		}
	}
	tp := m.Var("TP")
	m.Objective(lp.Maximize, lp.Expr{}.PlusInt(tp, 1))

	// Compute-time budget.
	for i := 0; i < nN; i++ {
		if !hasCons[i] {
			continue
		}
		ex := lp.Expr{}
		for k := 0; k < nK; k++ {
			ex = ex.Plus(cons[i][k], d.Ops[k].Mul(p.Weight(i).Val))
		}
		m.Le(fmt.Sprintf("cpu[n%d]", i), ex, one)
	}

	// Edge busy time and one-port.
	for e := 0; e < nE; e++ {
		c := p.Edge(e).C
		ex := lp.Expr{}.PlusInt(sVar[e], -1)
		for l := 0; l < nL; l++ {
			ex = ex.Plus(flow[e][l], d.Files[l].Size.Mul(c))
		}
		m.Eq(fmt.Sprintf("busy[e%d]", e), ex, rat.Zero())
	}
	addOnePortConstraints(m, p, sVar, SendAndReceive)

	// File conservation.
	for i := 0; i < nN; i++ {
		for l, f := range d.Files {
			ex := lp.Expr{}
			for _, e := range p.InEdges(i) {
				ex = ex.PlusInt(flow[e][l], 1)
			}
			for _, e := range p.OutEdges(i) {
				ex = ex.PlusInt(flow[e][l], -1)
			}
			if hasCons[i] {
				ex = ex.PlusInt(cons[i][f.From], 1)
				ex = ex.PlusInt(cons[i][f.To], -1)
			}
			if len(ex) == 0 {
				continue
			}
			m.Eq(fmt.Sprintf("file[n%d,l%d]", i, l), ex, rat.Zero())
		}
	}

	// Uniform throughput across task types.
	for k := 0; k < nK; k++ {
		ex := lp.Expr{}.PlusInt(tp, -1)
		for i := 0; i < nN; i++ {
			if hasCons[i] {
				ex = ex.PlusInt(cons[i][k], 1)
			}
		}
		m.Eq(fmt.Sprintf("rate[k%d]", k), ex, rat.Zero())
	}

	sol, err := m.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: DAG rate LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: DAG rate LP %v", sol.Status)
	}

	out := &DAGRate{
		P: p, D: d, Src: src,
		Throughput: sol.Objective,
		Cons:       make([][]rat.Rat, nN),
		Flow:       make([][]rat.Rat, nE),
		S:          make([]rat.Rat, nE),
	}
	for i := 0; i < nN; i++ {
		out.Cons[i] = make([]rat.Rat, nK)
		if hasCons[i] {
			for k := 0; k < nK; k++ {
				out.Cons[i][k] = sol.Value(cons[i][k])
			}
		}
	}
	for e := 0; e < nE; e++ {
		out.S[e] = sol.Value(sVar[e])
		out.Flow[e] = make([]rat.Rat, nL)
		for l := 0; l < nL; l++ {
			out.Flow[e][l] = sol.Value(flow[e][l])
		}
	}
	return out, nil
}

// maxAllocations caps the allocation enumeration of
// SolveDAGAllocation.
const maxAllocations = 1 << 20

// DAGAllocation is the achievable counterpart of DAGRate: it
// enumerates whole-DAG allocations (each task type mapped to one
// node, files routed along shortest paths) and packs them by an LP,
// so every scheduled instance is internally consistent. Restricting
// to explicit allocations is the [6, 4] strategy for DAGs with
// polynomially many paths.
type DAGAllocation struct {
	P *platform.Platform
	D *DAG

	Throughput rat.Rat
	// Allocs holds the used allocations (task -> node) with rates.
	Allocs []AllocRate
	// NumAllocs is the number of enumerated candidates.
	NumAllocs int
}

// AllocRate is one allocation executed at the given rate.
type AllocRate struct {
	Assign []int
	Rate   rat.Rat
}

// SolveDAGAllocation enumerates allocations and solves the packing LP
//
//	maximize sum_a x_a
//	s.t.     per node: compute time <= 1, send time <= 1, recv time <= 1.
func SolveDAGAllocation(p *platform.Platform, d *DAG) (*DAGAllocation, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	nN, nK := p.NumNodes(), len(d.Ops)

	// Compute nodes only.
	var computeNodes []int
	for i := 0; i < nN; i++ {
		if p.CanCompute(i) {
			computeNodes = append(computeNodes, i)
		}
	}
	if len(computeNodes) == 0 {
		return nil, fmt.Errorf("core: no compute node")
	}
	total := 1
	for k := 0; k < nK; k++ {
		total *= len(computeNodes)
		if total > maxAllocations {
			return nil, fmt.Errorf("core: allocation enumeration exceeds %d", maxAllocations)
		}
	}

	// Precompute shortest paths between compute node pairs.
	paths := make(map[[2]int][]int)
	for _, u := range computeNodes {
		for _, v := range computeNodes {
			if u != v {
				paths[[2]int{u, v}] = p.ShortestPath(u, v)
			}
		}
	}

	type usage struct {
		cpu  []rat.Rat // per node
		send []rat.Rat
		recv []rat.Rat
	}
	var allocs [][]int
	var usages []usage

	assign := make([]int, nK)
	var rec func(k int)
	rec = func(k int) {
		if k == nK {
			u := usage{
				cpu:  make([]rat.Rat, nN),
				send: make([]rat.Rat, nN),
				recv: make([]rat.Rat, nN),
			}
			for kk, node := range assign {
				u.cpu[node] = u.cpu[node].Add(d.Ops[kk].Mul(p.Weight(node).Val))
			}
			ok := true
			for _, f := range d.Files {
				a, b := assign[f.From], assign[f.To]
				if a == b {
					continue
				}
				path := paths[[2]int{a, b}]
				if path == nil {
					ok = false
					break
				}
				for _, e := range path {
					ed := p.Edge(e)
					t := f.Size.Mul(ed.C)
					u.send[ed.From] = u.send[ed.From].Add(t)
					u.recv[ed.To] = u.recv[ed.To].Add(t)
				}
			}
			if ok {
				allocs = append(allocs, append([]int(nil), assign...))
				usages = append(usages, u)
			}
			return
		}
		for _, node := range computeNodes {
			assign[k] = node
			rec(k + 1)
		}
	}
	rec(0)
	if len(allocs) == 0 {
		return nil, fmt.Errorf("core: no feasible allocation (disconnected compute nodes)")
	}

	m := lp.NewModel()
	one := rat.One()
	x := make([]lp.Var, len(allocs))
	obj := lp.Expr{}
	for a := range allocs {
		x[a] = m.Var(fmt.Sprintf("x[a%d]", a))
		obj = obj.PlusInt(x[a], 1)
	}
	m.Objective(lp.Maximize, obj)
	for i := 0; i < nN; i++ {
		cpuEx, sendEx, recvEx := lp.Expr{}, lp.Expr{}, lp.Expr{}
		for a := range allocs {
			if usages[a].cpu[i].Sign() > 0 {
				cpuEx = cpuEx.Plus(x[a], usages[a].cpu[i])
			}
			if usages[a].send[i].Sign() > 0 {
				sendEx = sendEx.Plus(x[a], usages[a].send[i])
			}
			if usages[a].recv[i].Sign() > 0 {
				recvEx = recvEx.Plus(x[a], usages[a].recv[i])
			}
		}
		if len(cpuEx) > 0 {
			m.Le(fmt.Sprintf("cpu[n%d]", i), cpuEx, one)
		}
		if len(sendEx) > 0 {
			m.Le(fmt.Sprintf("send[n%d]", i), sendEx, one)
		}
		if len(recvEx) > 0 {
			m.Le(fmt.Sprintf("recv[n%d]", i), recvEx, one)
		}
	}

	sol, err := m.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: DAG allocation LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: DAG allocation LP %v", sol.Status)
	}
	out := &DAGAllocation{
		P: p, D: d,
		Throughput: sol.Objective,
		NumAllocs:  len(allocs),
	}
	for a := range allocs {
		r := sol.Value(x[a])
		if r.Sign() > 0 {
			out.Allocs = append(out.Allocs, AllocRate{Assign: allocs[a], Rate: r})
		}
	}
	return out, nil
}
