package core

import (
	"fmt"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// PortCaps gives each node's number of network cards in the §5.1.2
// multiport model: Send[i] cards are dedicated to emissions and
// Recv[i] to receptions (the paper notes that letting one card do
// both makes reconstruction NP-hard; dedicated directions keep it
// polynomial — "a linear program can be derived ... and the schedule
// can be reconstructed (each node in the bipartite graph corresponds
// to a network card)").
type PortCaps struct {
	Send []int
	Recv []int
}

// UniformPorts gives every node k send cards and k receive cards.
func UniformPorts(p *platform.Platform, k int) PortCaps {
	s := make([]int, p.NumNodes())
	r := make([]int, p.NumNodes())
	for i := range s {
		s[i], r[i] = k, k
	}
	return PortCaps{Send: s, Recv: r}
}

// Validate checks the capacities.
func (pc PortCaps) Validate(p *platform.Platform) error {
	if len(pc.Send) != p.NumNodes() || len(pc.Recv) != p.NumNodes() {
		return fmt.Errorf("core: port caps must cover every node")
	}
	for i := range pc.Send {
		if pc.Send[i] < 1 || pc.Recv[i] < 1 {
			return fmt.Errorf("core: node %d needs at least one card per direction", i)
		}
	}
	return nil
}

// SolveMasterSlaveMultiport solves SSMS(G) under the aggregated
// multiport model: node i may run up to Send[i] simultaneous
// emissions and Recv[i] simultaneous receptions, each card able to
// serve *any* neighbor, each edge still carrying at most one transfer
// at a time (s_e <= 1). Per §5.1.2 the complexity of reconstructing a
// schedule from this relaxation is open, so the value is exposed as
// an upper bound only; use SolveMasterSlaveCards for the fixed
// card-to-card variant whose schedule reconstruction is polynomial.
func SolveMasterSlaveMultiport(p *platform.Platform, master int, caps PortCaps) (*MasterSlave, error) {
	if err := caps.Validate(p); err != nil {
		return nil, err
	}
	if master < 0 || master >= p.NumNodes() {
		return nil, fmt.Errorf("core: master index %d out of range", master)
	}
	m := lp.NewModel()
	one := rat.One()

	alpha := make([]lp.Var, p.NumNodes())
	hasAlpha := make([]bool, p.NumNodes())
	for i := 0; i < p.NumNodes(); i++ {
		if p.CanCompute(i) {
			alpha[i] = m.VarRange(fmt.Sprintf("alpha[%s]", p.Name(i)), one)
			hasAlpha[i] = true
		}
	}
	sVar := make([]lp.Var, p.NumEdges())
	for e := 0; e < p.NumEdges(); e++ {
		sVar[e] = m.VarRange(fmt.Sprintf("s[e%d]", e), one)
	}
	obj := lp.Expr{}
	for i := 0; i < p.NumNodes(); i++ {
		if hasAlpha[i] {
			obj = obj.Plus(alpha[i], p.Weight(i).Val.Inv())
		}
	}
	if len(obj) == 0 {
		return nil, fmt.Errorf("core: no node can compute")
	}
	m.Objective(lp.Maximize, obj)

	// Multiport constraints: aggregated card time per direction.
	for i := 0; i < p.NumNodes(); i++ {
		out := lp.Expr{}
		for _, e := range p.OutEdges(i) {
			out = out.PlusInt(sVar[e], 1)
		}
		if len(out) > 0 {
			m.Le(fmt.Sprintf("send-cards[%s]", p.Name(i)), out, rat.FromInt(int64(caps.Send[i])))
		}
		in := lp.Expr{}
		for _, e := range p.InEdges(i) {
			in = in.PlusInt(sVar[e], 1)
		}
		if len(in) > 0 {
			m.Le(fmt.Sprintf("recv-cards[%s]", p.Name(i)), in, rat.FromInt(int64(caps.Recv[i])))
		}
	}
	for _, e := range p.InEdges(master) {
		m.Eq(fmt.Sprintf("no-recv-master[%d]", e), lp.Expr{}.PlusInt(sVar[e], 1), rat.Zero())
	}
	for i := 0; i < p.NumNodes(); i++ {
		if i == master {
			continue
		}
		ex := lp.Expr{}
		for _, ei := range p.InEdges(i) {
			ex = ex.Plus(sVar[ei], p.Edge(ei).C.Inv())
		}
		if hasAlpha[i] {
			ex = ex.Plus(alpha[i], p.Weight(i).Val.Inv().Neg())
		}
		for _, eo := range p.OutEdges(i) {
			ex = ex.Plus(sVar[eo], p.Edge(eo).C.Inv().Neg())
		}
		if len(ex) == 0 {
			continue
		}
		m.Eq(fmt.Sprintf("conserve[%s]", p.Name(i)), ex, rat.Zero())
	}

	sol, err := m.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: multiport LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: multiport LP %v", sol.Status)
	}
	ms := &MasterSlave{
		P:          p,
		Master:     master,
		Model:      SendAndReceive, // per-card semantics; see CheckMultiport
		Throughput: sol.Objective,
		Alpha:      make([]rat.Rat, p.NumNodes()),
		S:          make([]rat.Rat, p.NumEdges()),
	}
	for i := 0; i < p.NumNodes(); i++ {
		if hasAlpha[i] {
			ms.Alpha[i] = sol.Value(alpha[i])
		}
	}
	for e := 0; e < p.NumEdges(); e++ {
		ms.S[e] = sol.Value(sVar[e])
	}
	if err := CheckMultiport(ms, caps); err != nil {
		return nil, fmt.Errorf("core: solver returned invalid multiport solution: %w", err)
	}
	return ms, nil
}

// CheckMultiport re-verifies a multiport solution's constraints.
func CheckMultiport(ms *MasterSlave, caps PortCaps) error {
	p := ms.P
	if err := caps.Validate(p); err != nil {
		return err
	}
	one := rat.One()
	for e, s := range ms.S {
		if s.Sign() < 0 || s.Cmp(one) > 0 {
			return fmt.Errorf("core: s[%d] = %v outside [0,1]", e, s)
		}
	}
	for i := 0; i < p.NumNodes(); i++ {
		out, in := rat.Zero(), rat.Zero()
		for _, e := range p.OutEdges(i) {
			out = out.Add(ms.S[e])
		}
		for _, e := range p.InEdges(i) {
			in = in.Add(ms.S[e])
		}
		if out.Cmp(rat.FromInt(int64(caps.Send[i]))) > 0 {
			return fmt.Errorf("core: node %s exceeds %d send cards", p.Name(i), caps.Send[i])
		}
		if in.Cmp(rat.FromInt(int64(caps.Recv[i]))) > 0 {
			return fmt.Errorf("core: node %s exceeds %d recv cards", p.Name(i), caps.Recv[i])
		}
	}
	for _, e := range p.InEdges(ms.Master) {
		if !ms.S[e].IsZero() {
			return fmt.Errorf("core: master receives on edge %d", e)
		}
	}
	for i := 0; i < p.NumNodes(); i++ {
		if i == ms.Master {
			continue
		}
		in := rat.Zero()
		for _, e := range p.InEdges(i) {
			in = in.Add(ms.TasksPerUnit(e))
		}
		out := ms.ComputeRate(i)
		for _, e := range p.OutEdges(i) {
			out = out.Add(ms.TasksPerUnit(e))
		}
		if !in.Equal(out) {
			return fmt.Errorf("core: conservation violated at %s", p.Name(i))
		}
	}
	return nil
}
