package core

import (
	"testing"
	"testing/quick"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// TestQuickStarLPMatchesClosedForm is the testing/quick form of the
// SSMS sanity property: on every star instance the LP equals the
// fractional-knapsack closed form.
func TestQuickStarLPMatchesClosedForm(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 3 {
			return true
		}
		wm := int64(raw[0]%6) + 1
		var ws []platform.Weight
		var cs []rat.Rat
		for i := 1; i+1 < len(raw) && len(ws) < 6; i += 2 {
			ws = append(ws, platform.WInt(int64(raw[i]%6)+1))
			cs = append(cs, rat.FromInt(int64(raw[i+1]%6)+1))
		}
		if len(ws) == 0 {
			return true
		}
		p := platform.Star(platform.WInt(wm), ws, cs)
		ms, err := SolveMasterSlave(p, 0)
		if err != nil {
			return false
		}
		closed, err := StarThroughput(p, 0)
		if err != nil {
			return false
		}
		return ms.Throughput.Equal(closed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScatterConservation checks, for quick-generated ring
// platforms, that the scatter LP solution passes its independent
// verifier and that throughput is positive and bounded by the
// source's out-port capacity.
func TestQuickScatterConservation(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 4 {
			return true
		}
		n := int(raw[0]%4) + 3
		p := platform.New()
		for i := 0; i < n; i++ {
			p.AddNode(string(rune('A'+i)), platform.WInt(int64(raw[i%len(raw)]%4)+1))
		}
		for i := 0; i < n; i++ {
			c := rat.FromInt(int64(raw[(i+1)%len(raw)]%4) + 1)
			p.AddBoth(i, (i+1)%n, c)
		}
		targets := []int{1, n - 1}
		if targets[0] == targets[1] {
			targets = targets[:1]
		}
		sc, err := SolveScatter(p, 0, targets)
		if err != nil {
			return false
		}
		if err := sc.Check(); err != nil {
			return false
		}
		if sc.Throughput.Sign() <= 0 {
			return false
		}
		// The source must push TP messages per target through its
		// out-port: TP * sum over targets of min edge cost <= out
		// budget 1 is implied; check the weaker port bound directly.
		out := rat.Zero()
		for _, e := range p.OutEdges(0) {
			out = out.Add(sc.S[e])
		}
		return out.Cmp(rat.One()) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
