package core

import (
	"fmt"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// CardAssign fixes, for every platform edge, which send card of its
// source and which receive card of its destination carry it — the
// §5.1.2 case where "each network card on a given host is used in
// only one direction ... and is linked to a set of fixed network
// cards on neighbor hosts". With the assignment fixed, the LP is
// per-card and the §4.1 reconstruction goes through with one
// bipartite node per card.
type CardAssign struct {
	Caps PortCaps
	// SendCard[e] in [0, Caps.Send[from]) and RecvCard[e] in
	// [0, Caps.Recv[to]) give edge e's cards.
	SendCard []int
	RecvCard []int
}

// RoundRobinCards spreads each node's edges over its cards cyclically
// — a reasonable default wiring.
func RoundRobinCards(p *platform.Platform, caps PortCaps) CardAssign {
	a := CardAssign{
		Caps:     caps,
		SendCard: make([]int, p.NumEdges()),
		RecvCard: make([]int, p.NumEdges()),
	}
	for i := 0; i < p.NumNodes(); i++ {
		for idx, e := range p.OutEdges(i) {
			a.SendCard[e] = idx % caps.Send[i]
		}
		for idx, e := range p.InEdges(i) {
			a.RecvCard[e] = idx % caps.Recv[i]
		}
	}
	return a
}

// Validate checks the assignment against the platform.
func (a CardAssign) Validate(p *platform.Platform) error {
	if err := a.Caps.Validate(p); err != nil {
		return err
	}
	if len(a.SendCard) != p.NumEdges() || len(a.RecvCard) != p.NumEdges() {
		return fmt.Errorf("core: card assignment must cover every edge")
	}
	for e := 0; e < p.NumEdges(); e++ {
		ed := p.Edge(e)
		if a.SendCard[e] < 0 || a.SendCard[e] >= a.Caps.Send[ed.From] {
			return fmt.Errorf("core: edge %d assigned to invalid send card", e)
		}
		if a.RecvCard[e] < 0 || a.RecvCard[e] >= a.Caps.Recv[ed.To] {
			return fmt.Errorf("core: edge %d assigned to invalid recv card", e)
		}
	}
	return nil
}

// CardSolution is a master-slave solution under a fixed card wiring.
type CardSolution struct {
	*MasterSlave
	Assign CardAssign
}

// SolveMasterSlaveCards solves SSMS(G) with per-card one-port
// constraints under the given fixed wiring.
func SolveMasterSlaveCards(p *platform.Platform, master int, assign CardAssign) (*CardSolution, error) {
	if err := assign.Validate(p); err != nil {
		return nil, err
	}
	if master < 0 || master >= p.NumNodes() {
		return nil, fmt.Errorf("core: master index %d out of range", master)
	}
	m := lp.NewModel()
	one := rat.One()

	alpha := make([]lp.Var, p.NumNodes())
	hasAlpha := make([]bool, p.NumNodes())
	obj := lp.Expr{}
	for i := 0; i < p.NumNodes(); i++ {
		if p.CanCompute(i) {
			alpha[i] = m.VarRange(fmt.Sprintf("alpha[%s]", p.Name(i)), one)
			hasAlpha[i] = true
			obj = obj.Plus(alpha[i], p.Weight(i).Val.Inv())
		}
	}
	if len(obj) == 0 {
		return nil, fmt.Errorf("core: no node can compute")
	}
	sVar := make([]lp.Var, p.NumEdges())
	for e := 0; e < p.NumEdges(); e++ {
		sVar[e] = m.VarRange(fmt.Sprintf("s[e%d]", e), one)
	}
	m.Objective(lp.Maximize, obj)

	// One-port per card.
	for i := 0; i < p.NumNodes(); i++ {
		for card := 0; card < assign.Caps.Send[i]; card++ {
			ex := lp.Expr{}
			for _, e := range p.OutEdges(i) {
				if assign.SendCard[e] == card {
					ex = ex.PlusInt(sVar[e], 1)
				}
			}
			if len(ex) > 0 {
				m.Le(fmt.Sprintf("send[%s#%d]", p.Name(i), card), ex, one)
			}
		}
		for card := 0; card < assign.Caps.Recv[i]; card++ {
			ex := lp.Expr{}
			for _, e := range p.InEdges(i) {
				if assign.RecvCard[e] == card {
					ex = ex.PlusInt(sVar[e], 1)
				}
			}
			if len(ex) > 0 {
				m.Le(fmt.Sprintf("recv[%s#%d]", p.Name(i), card), ex, one)
			}
		}
	}
	for _, e := range p.InEdges(master) {
		m.Eq(fmt.Sprintf("no-recv-master[%d]", e), lp.Expr{}.PlusInt(sVar[e], 1), rat.Zero())
	}
	for i := 0; i < p.NumNodes(); i++ {
		if i == master {
			continue
		}
		ex := lp.Expr{}
		for _, ei := range p.InEdges(i) {
			ex = ex.Plus(sVar[ei], p.Edge(ei).C.Inv())
		}
		if hasAlpha[i] {
			ex = ex.Plus(alpha[i], p.Weight(i).Val.Inv().Neg())
		}
		for _, eo := range p.OutEdges(i) {
			ex = ex.Plus(sVar[eo], p.Edge(eo).C.Inv().Neg())
		}
		if len(ex) == 0 {
			continue
		}
		m.Eq(fmt.Sprintf("conserve[%s]", p.Name(i)), ex, rat.Zero())
	}

	sol, err := m.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: card LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: card LP %v", sol.Status)
	}
	ms := &MasterSlave{
		P:          p,
		Master:     master,
		Model:      SendAndReceive,
		Throughput: sol.Objective,
		Alpha:      make([]rat.Rat, p.NumNodes()),
		S:          make([]rat.Rat, p.NumEdges()),
	}
	for i := 0; i < p.NumNodes(); i++ {
		if hasAlpha[i] {
			ms.Alpha[i] = sol.Value(alpha[i])
		}
	}
	for e := 0; e < p.NumEdges(); e++ {
		ms.S[e] = sol.Value(sVar[e])
	}
	cs := &CardSolution{MasterSlave: ms, Assign: assign}
	if err := cs.CheckCards(); err != nil {
		return nil, fmt.Errorf("core: invalid card solution: %w", err)
	}
	return cs, nil
}

// CheckCards re-verifies the per-card constraints and conservation.
func (cs *CardSolution) CheckCards() error {
	p := cs.P
	if err := cs.Assign.Validate(p); err != nil {
		return err
	}
	one := rat.One()
	for i := 0; i < p.NumNodes(); i++ {
		sendLoad := make([]rat.Rat, cs.Assign.Caps.Send[i])
		for _, e := range p.OutEdges(i) {
			c := cs.Assign.SendCard[e]
			sendLoad[c] = sendLoad[c].Add(cs.S[e])
		}
		for card, l := range sendLoad {
			if l.Cmp(one) > 0 {
				return fmt.Errorf("core: send card %d of %s overloaded: %v", card, p.Name(i), l)
			}
		}
		recvLoad := make([]rat.Rat, cs.Assign.Caps.Recv[i])
		for _, e := range p.InEdges(i) {
			c := cs.Assign.RecvCard[e]
			recvLoad[c] = recvLoad[c].Add(cs.S[e])
		}
		for card, l := range recvLoad {
			if l.Cmp(one) > 0 {
				return fmt.Errorf("core: recv card %d of %s overloaded: %v", card, p.Name(i), l)
			}
		}
	}
	for i := 0; i < p.NumNodes(); i++ {
		if i == cs.Master {
			continue
		}
		in := rat.Zero()
		for _, e := range p.InEdges(i) {
			in = in.Add(cs.TasksPerUnit(e))
		}
		out := cs.ComputeRate(i)
		for _, e := range p.OutEdges(i) {
			out = out.Add(cs.TasksPerUnit(e))
		}
		if !in.Equal(out) {
			return fmt.Errorf("core: conservation violated at %s", p.Name(i))
		}
	}
	return nil
}
