package core

import (
	"fmt"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// Scatter is the solved steady-state pipelined scatter program
// SSPS(G) of §3.2: Psource repeatedly sends distinct messages m_k to
// every target P_k; Send[e][k] is the fractional number of messages
// of type m_k crossing edge e per time-unit.
type Scatter struct {
	P       *platform.Platform
	Source  int
	Targets []int
	Model   PortModel

	// Throughput is TP: every target receives TP messages per
	// time-unit in steady state.
	Throughput rat.Rat
	// S[e] is the fraction of time edge e's sender spends sending.
	S []rat.Rat
	// Send[e][k] is send(i,j,k) for e = (i,j) and target index k.
	Send [][]rat.Rat

	// LP reports how the underlying solve went (pivot counts,
	// warm-start outcome) and Basis is the optimal basis, usable to
	// warm-start the LP of a structurally identical instance (same
	// node/edge counts and target list length).
	LP    lp.SolveInfo
	Basis *lp.Basis
}

// SolveScatter builds and solves SSPS(G) under the base model.
//
// The LP is the one displayed in §3.2:
//
//	maximize  TP
//	s.t.      0 <= s_ij <= 1
//	          sum_j s_ij <= 1, sum_j s_ji <= 1           (one-port)
//	          s_ij = sum_k send(i,j,k) * c_ij            (distinct messages add up)
//	          sum_j send(j,i,k) = sum_j send(i,j,k)      (i != source, i != P_k)
//	          sum_j send(j,k,k) - sum_j send(k,j,k) = TP (every target served, net)
//
// The delivery equation is enforced net of the target's own out-flow,
// so only messages genuinely originating at the source count (see the
// comment at the constraint).
func SolveScatter(p *platform.Platform, source int, targets []int) (*Scatter, error) {
	return solveDistribution(p, source, targets, SendAndReceive, false, nil)
}

// SolveScatterPort is SolveScatter under an explicit port model.
func SolveScatterPort(p *platform.Platform, source int, targets []int, pm PortModel) (*Scatter, error) {
	return solveDistribution(p, source, targets, pm, false, nil)
}

// SolveScatterPortOpts is SolveScatterPort under explicit LP options
// — the warm-start entry point for families of scatter instances.
func SolveScatterPortOpts(p *platform.Platform, source int, targets []int, pm PortModel, opts *lp.Options) (*Scatter, error) {
	return solveDistribution(p, source, targets, pm, false, opts)
}

// solveDistribution factors the common structure of the scatter LP
// (sumEdges=false is impossible; see broadcast.go) — when maxOperator
// is true the per-edge coupling s_ij = sum_k send*c becomes
// send(i,j,k)*c_ij <= s_ij for every k, i.e. identical messages may
// share a transmission (§3.3).
func solveDistribution(p *platform.Platform, source int, targets []int, pm PortModel, maxOperator bool, opts *lp.Options) (*Scatter, error) {
	dm, err := buildDistributionModel(p, source, targets, pm, maxOperator)
	if err != nil {
		return nil, err
	}
	m, sVar, send := dm.m, dm.sVar, dm.send
	nE, nK := p.NumEdges(), len(targets)

	sol, err := m.SolveOpts(opts)
	if err != nil {
		return nil, fmt.Errorf("core: scatter LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: scatter LP %v", sol.Status)
	}

	sc := &Scatter{
		P: p, Source: source, Targets: append([]int(nil), targets...),
		Model:      pm,
		Throughput: sol.Objective,
		S:          make([]rat.Rat, nE),
		Send:       make([][]rat.Rat, nE),
		LP:         sol.Info,
		Basis:      sol.Basis(),
	}
	for e := 0; e < nE; e++ {
		sc.S[e] = sol.Value(sVar[e])
		sc.Send[e] = make([]rat.Rat, nK)
		for k := 0; k < nK; k++ {
			sc.Send[e][k] = sol.Value(send[e][k])
		}
	}
	if err := sc.check(maxOperator); err != nil {
		return nil, fmt.Errorf("core: solver returned invalid scatter solution: %w", err)
	}
	return sc, nil
}

// distModel is the built-but-unsolved distribution LP (scatter or
// max-operator bound), exposing the variable handles the solver (and
// the parity/golden tests) need.
type distModel struct {
	m    *lp.Model
	sVar []lp.Var
	send [][]lp.Var
}

// buildDistributionModel constructs the §3.2/§3.3 LP without solving
// it.
func buildDistributionModel(p *platform.Platform, source int, targets []int, pm PortModel, maxOperator bool) (*distModel, error) {
	if source < 0 || source >= p.NumNodes() {
		return nil, fmt.Errorf("core: source %d out of range", source)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: no targets")
	}
	isTarget := make(map[int]int) // node -> target index
	for k, t := range targets {
		if t < 0 || t >= p.NumNodes() {
			return nil, fmt.Errorf("core: target %d out of range", t)
		}
		if t == source {
			return nil, fmt.Errorf("core: source cannot be a target (its messages never enter the network)")
		}
		if _, dup := isTarget[t]; dup {
			return nil, fmt.Errorf("core: duplicate target %d", t)
		}
		isTarget[t] = k
	}

	m := lp.NewModel()
	one := rat.One()
	nE, nK := p.NumEdges(), len(targets)

	sVar := make([]lp.Var, nE)
	for e := 0; e < nE; e++ {
		ed := p.Edge(e)
		sVar[e] = m.VarRange(fmt.Sprintf("s[%s->%s#%d]", p.Name(ed.From), p.Name(ed.To), e), one)
	}
	send := make([][]lp.Var, nE)
	for e := 0; e < nE; e++ {
		send[e] = make([]lp.Var, nK)
		for k := 0; k < nK; k++ {
			send[e][k] = m.Var(fmt.Sprintf("send[e%d,k%d]", e, k))
		}
	}
	tp := m.Var("TP")
	m.Objective(lp.Maximize, lp.Expr{}.PlusInt(tp, 1))

	addOnePortConstraints(m, p, sVar, pm)

	// Edge coupling: sum (scatter) or max (broadcast/multicast bound).
	for e := 0; e < nE; e++ {
		c := p.Edge(e).C
		if maxOperator {
			for k := 0; k < nK; k++ {
				ex := lp.Expr{}.Plus(send[e][k], c).PlusInt(sVar[e], -1)
				m.Le(fmt.Sprintf("share[e%d,k%d]", e, k), ex, rat.Zero())
			}
		} else {
			ex := lp.Expr{}.PlusInt(sVar[e], -1)
			for k := 0; k < nK; k++ {
				ex = ex.Plus(send[e][k], c)
			}
			m.Eq(fmt.Sprintf("sum[e%d]", e), ex, rat.Zero())
		}
	}

	// Conservation: every node forwards what it receives, per type,
	// except the source (which injects) and the type's own target
	// (which consumes).
	for i := 0; i < p.NumNodes(); i++ {
		if i == source {
			continue
		}
		for k := 0; k < nK; k++ {
			if targets[k] == i {
				continue
			}
			ex := lp.Expr{}
			for _, e := range p.InEdges(i) {
				ex = ex.PlusInt(send[e][k], 1)
			}
			for _, e := range p.OutEdges(i) {
				ex = ex.PlusInt(send[e][k], -1)
			}
			if len(ex) == 0 {
				continue
			}
			m.Eq(fmt.Sprintf("conserve[n%d,k%d]", i, k), ex, rat.Zero())
		}
	}

	// Delivery: each target accumulates TP messages of its type net of
	// what it forwards. The net form matters: with deliveries counted
	// on in-edges alone, a circulation touching the target (allowed by
	// the relaxed conservation there) fabricates throughput that never
	// left the source, and the "certified" optimum overstates what any
	// real schedule can ship — the simulation subsystem caught exactly
	// this on Figure 1. With net delivery, flow decomposition forces
	// TP units of genuine source-to-target paths per time-unit.
	for k := 0; k < nK; k++ {
		ex := lp.Expr{}.PlusInt(tp, -1)
		for _, e := range p.InEdges(targets[k]) {
			ex = ex.PlusInt(send[e][k], 1)
		}
		for _, e := range p.OutEdges(targets[k]) {
			ex = ex.PlusInt(send[e][k], -1)
		}
		m.Eq(fmt.Sprintf("deliver[k%d]", k), ex, rat.Zero())
	}
	return &distModel{m: m, sVar: sVar, send: send}, nil
}

// Check re-verifies the SSPS equations (sum semantics) independently.
func (sc *Scatter) Check() error { return sc.check(false) }

func (sc *Scatter) check(maxOperator bool) error {
	p := sc.P
	one := rat.One()
	for e, s := range sc.S {
		if s.Sign() < 0 || s.Cmp(one) > 0 {
			return fmt.Errorf("core: s[%d] = %v outside [0,1]", e, s)
		}
		c := p.Edge(e).C
		if maxOperator {
			for k, f := range sc.Send[e] {
				if f.Sign() < 0 {
					return fmt.Errorf("core: send[e%d][k%d] negative", e, k)
				}
				if f.Mul(c).Cmp(s) > 0 {
					return fmt.Errorf("core: edge %d type %d exceeds shared time", e, k)
				}
			}
		} else {
			tot := rat.Zero()
			for k, f := range sc.Send[e] {
				if f.Sign() < 0 {
					return fmt.Errorf("core: send[e%d][k%d] negative", e, k)
				}
				tot = tot.Add(f.Mul(c))
			}
			if !tot.Equal(s) {
				return fmt.Errorf("core: edge %d: sum_k send*c = %v != s = %v", e, tot, s)
			}
		}
	}
	if err := checkOnePort(p, sc.S, sc.Model); err != nil {
		return err
	}
	for i := 0; i < p.NumNodes(); i++ {
		if i == sc.Source {
			continue
		}
		for k := range sc.Targets {
			if sc.Targets[k] == i {
				continue
			}
			in, out := rat.Zero(), rat.Zero()
			for _, e := range p.InEdges(i) {
				in = in.Add(sc.Send[e][k])
			}
			for _, e := range p.OutEdges(i) {
				out = out.Add(sc.Send[e][k])
			}
			if !in.Equal(out) {
				return fmt.Errorf("core: conservation violated at node %d type %d: %v != %v", i, k, in, out)
			}
		}
	}
	for k, t := range sc.Targets {
		got := rat.Zero()
		for _, e := range p.InEdges(t) {
			got = got.Add(sc.Send[e][k])
		}
		for _, e := range p.OutEdges(t) {
			got = got.Sub(sc.Send[e][k])
		}
		if !got.Equal(sc.Throughput) {
			return fmt.Errorf("core: target %d nets %v != TP %v", t, got, sc.Throughput)
		}
	}
	return nil
}
