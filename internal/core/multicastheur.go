package core

import (
	"fmt"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// GreedyTreePacking is the heuristic companion of SolveTreePacking
// for platforms too large to enumerate Steiner trees (the optimal
// problem is NP-hard [7]; the paper's reference 7 is exactly
// "complexity results and heuristics for pipelined multicast").
//
// Strategy: solve the max-operator LP for guidance, then repeatedly
// peel a multicast tree out of the LP's flow support — growing the
// arborescence along edges with the largest guidance flow — and run
// it at the largest rate the residual port budgets allow. The result
// is an achievable packing (every invariant re-checked), typically
// close to the LP bound from below.
func GreedyTreePacking(p *platform.Platform, source int, targets []int) (*TreePacking, error) {
	bound, err := SolveMulticastBound(p, source, targets)
	if err != nil {
		return nil, err
	}
	// Guidance flow per edge: the largest per-type flow (the max-LP's
	// effective usage of the edge).
	guide := make([]rat.Rat, p.NumEdges())
	for e := 0; e < p.NumEdges(); e++ {
		for k := range targets {
			guide[e] = rat.Max(guide[e], bound.Send[e][k])
		}
	}

	// Residual port budgets (time fractions).
	sendBudget := make([]rat.Rat, p.NumNodes())
	recvBudget := make([]rat.Rat, p.NumNodes())
	for i := range sendBudget {
		sendBudget[i] = rat.One()
		recvBudget[i] = rat.One()
	}

	tp := &TreePacking{
		P: p, Source: source, Targets: append([]int(nil), targets...),
	}
	total := rat.Zero()
	for iter := 0; iter < 4*len(targets)+8; iter++ {
		tree := growTree(p, source, targets, guide, sendBudget, recvBudget)
		if tree == nil {
			break
		}
		// Largest feasible rate: for every node, rate * (port time in
		// tree) must fit the residual budget.
		rate := rat.Zero()
		first := true
		for v := 0; v < p.NumNodes(); v++ {
			st, rt := rat.Zero(), rat.Zero()
			for _, e := range tree {
				ed := p.Edge(e)
				if ed.From == v {
					st = st.Add(ed.C)
				}
				if ed.To == v {
					rt = rt.Add(ed.C)
				}
			}
			if st.Sign() > 0 {
				r := sendBudget[v].Div(st)
				if first || r.Less(rate) {
					rate, first = r, false
				}
			}
			if rt.Sign() > 0 {
				r := recvBudget[v].Div(rt)
				if first || r.Less(rate) {
					rate, first = r, false
				}
			}
		}
		if first || rate.Sign() <= 0 {
			break
		}
		// Don't overshoot the LP bound (keeps the packing tight when
		// a single tree could saturate more than the bound allows).
		if total.Add(rate).Cmp(bound.Throughput) > 0 {
			rate = bound.Throughput.Sub(total)
			if rate.Sign() <= 0 {
				break
			}
		}
		for v := 0; v < p.NumNodes(); v++ {
			for _, e := range tree {
				ed := p.Edge(e)
				if ed.From == v {
					sendBudget[v] = sendBudget[v].Sub(rate.Mul(ed.C))
				}
				if ed.To == v {
					recvBudget[v] = recvBudget[v].Sub(rate.Mul(ed.C))
				}
			}
		}
		// Reduce guidance along the used edges so the next tree
		// prefers fresh routes.
		for _, e := range tree {
			g := guide[e].Sub(rate)
			if g.Sign() < 0 {
				g = rat.Zero()
			}
			guide[e] = g
		}
		tp.Trees = append(tp.Trees, MulticastTree{Edges: tree, Rate: rate})
		total = total.Add(rate)
	}
	if len(tp.Trees) == 0 {
		return nil, fmt.Errorf("core: greedy packing found no feasible tree")
	}
	tp.Throughput = total
	tp.NumTrees = len(tp.Trees)
	return tp, nil
}

// growTree builds one minimal arborescence from source covering all
// targets, preferring edges with the largest guidance flow among
// those whose endpoints still have positive port budgets. Returns nil
// when some target is unreachable under the current budgets.
func growTree(p *platform.Platform, source int, targets []int, guide, sendBudget, recvBudget []rat.Rat) []int {
	inTree := make([]bool, p.NumNodes())
	inTree[source] = true
	var chosen []int
	covered := func() bool {
		for _, t := range targets {
			if !inTree[t] {
				return false
			}
		}
		return true
	}
	for !covered() {
		best := -1
		for e := 0; e < p.NumEdges(); e++ {
			ed := p.Edge(e)
			if !inTree[ed.From] || inTree[ed.To] {
				continue
			}
			if sendBudget[ed.From].Sign() <= 0 || recvBudget[ed.To].Sign() <= 0 {
				continue
			}
			if best < 0 || guide[best].Less(guide[e]) {
				best = e
			}
		}
		if best < 0 {
			return nil
		}
		chosen = append(chosen, best)
		inTree[p.Edge(best).To] = true
	}
	// Prune non-target leaves (reuse the enumeration's pruning on an
	// edge mask when small enough; otherwise prune directly).
	for {
		removed := false
		for i := 0; i < len(chosen); i++ {
			to := p.Edge(chosen[i]).To
			isTarget := false
			for _, t := range targets {
				if t == to {
					isTarget = true
				}
			}
			if isTarget {
				continue
			}
			leaf := true
			for _, e := range chosen {
				if p.Edge(e).From == to {
					leaf = false
				}
			}
			if leaf {
				chosen = append(chosen[:i], chosen[i+1:]...)
				removed = true
				i--
			}
		}
		if !removed {
			return chosen
		}
	}
}

// CheckPacking verifies that a packing (exact or greedy) is feasible:
// every tree reaches all targets and the aggregated port times fit in
// one time unit per node and direction.
func (tp *TreePacking) CheckPacking() error {
	p := tp.P
	send := make([]rat.Rat, p.NumNodes())
	recv := make([]rat.Rat, p.NumNodes())
	total := rat.Zero()
	for ti, tr := range tp.Trees {
		if tr.Rate.Sign() <= 0 {
			return fmt.Errorf("core: tree %d has non-positive rate", ti)
		}
		reach := map[int]bool{tp.Source: true}
		remaining := append([]int(nil), tr.Edges...)
		for progress := true; progress; {
			progress = false
			next := remaining[:0]
			for _, e := range remaining {
				ed := p.Edge(e)
				if reach[ed.From] && !reach[ed.To] {
					reach[ed.To] = true
					progress = true
					continue
				}
				next = append(next, e)
			}
			remaining = next
		}
		for _, t := range tp.Targets {
			if !reach[t] {
				return fmt.Errorf("core: tree %d misses target %d", ti, t)
			}
		}
		for _, e := range tr.Edges {
			ed := p.Edge(e)
			send[ed.From] = send[ed.From].Add(tr.Rate.Mul(ed.C))
			recv[ed.To] = recv[ed.To].Add(tr.Rate.Mul(ed.C))
		}
		total = total.Add(tr.Rate)
	}
	one := rat.One()
	for v := 0; v < p.NumNodes(); v++ {
		if send[v].Cmp(one) > 0 {
			return fmt.Errorf("core: node %s send port overloaded: %v", p.Name(v), send[v])
		}
		if recv[v].Cmp(one) > 0 {
			return fmt.Errorf("core: node %s recv port overloaded: %v", p.Name(v), recv[v])
		}
	}
	if !total.Equal(tp.Throughput) {
		return fmt.Errorf("core: packing throughput %v != sum of rates %v", tp.Throughput, total)
	}
	return nil
}
