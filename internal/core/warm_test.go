package core

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// perturbPlatform returns a platform with the same topology and
// compute/forwarder pattern as base but with node weights and edge
// costs shifted by a small step — the shape of a sweep family or of
// the §5.5 adaptive loop's re-estimated platform.
func perturbPlatform(base *platform.Platform, step int64) *platform.Platform {
	q := platform.New()
	for i := 0; i < base.NumNodes(); i++ {
		w := base.Weight(i)
		if !w.Inf {
			w = platform.W(w.Val.Add(rat.New(step, 103)))
		}
		q.AddNode(base.Name(i), w)
	}
	for _, ed := range base.Edges() {
		q.AddEdge(ed.From, ed.To, ed.C.Add(rat.New(step, 101)))
	}
	return q
}

// TestWarmStartMasterSlaveSweepFamily is the acceptance check on the
// paper's own LPs: re-solving a family of structurally identical
// master-slave instances from the previous member's optimal basis
// must use at least 5x fewer pivots than cold solves, while
// returning certified results whose objectives match the cold
// solves' exactly.
func TestWarmStartMasterSlaveSweepFamily(t *testing.T) {
	base := platform.RandomConnected(rand.New(rand.NewSource(42)), 12, 12, 5, 5, 0.15)
	coldPivots, warmPivots, warmSolves := 0, 0, 0
	var basis *lp.Basis
	for step := int64(0); step < 10; step++ {
		p := perturbPlatform(base, step)
		cold, err := SolveMasterSlave(p, 0)
		if err != nil {
			t.Fatalf("step %d: cold: %v", step, err)
		}
		warm, err := SolveMasterSlavePortOpts(p, 0, SendAndReceive, &lp.Options{WarmBasis: basis})
		if err != nil {
			t.Fatalf("step %d: warm: %v", step, err)
		}
		// Solve*'s internal Check() has already re-verified the warm
		// solution against every SSMS equation; the objective must be
		// the exact cold optimum.
		if !warm.Throughput.Equal(cold.Throughput) {
			t.Fatalf("step %d: warm throughput %v != cold %v", step, warm.Throughput, cold.Throughput)
		}
		if step > 0 {
			coldPivots += cold.LP.Pivots
			warmPivots += warm.LP.Pivots
			if warm.LP.WarmStarted {
				warmSolves++
			}
		}
		basis = warm.Basis
	}
	if warmSolves == 0 {
		t.Fatalf("no re-solve accepted its warm basis")
	}
	t.Logf("cold pivots %d, warm pivots %d over %d warm re-solves", coldPivots, warmPivots, warmSolves)
	if warmPivots*5 > coldPivots {
		t.Fatalf("warm re-solves took %d pivots vs %d cold — want >= 5x reduction", warmPivots, coldPivots)
	}
}
