package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func TestEvaluateSendRecvFigure1(t *testing.T) {
	p := platform.Figure1()
	master := p.NodeByName("P1")
	msBase, err := core.SolveMasterSlave(p, master)
	if err != nil {
		t.Fatal(err)
	}
	msSR, err := core.SolveMasterSlavePort(p, master, core.SendOrReceive)
	if err != nil {
		t.Fatal(err)
	}
	// The shared-port bound never exceeds the two-port bound.
	if msBase.Throughput.Less(msSR.Throughput) {
		t.Fatalf("send-or-receive bound %v beats base %v", msSR.Throughput, msBase.Throughput)
	}
	ev, err := EvaluateSendRecv(msSR)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Achieved.Cmp(ev.Bound) > 0 {
		t.Fatalf("achieved %v beats bound %v", ev.Achieved, ev.Bound)
	}
	// Greedy guarantee: at most a factor 2 loss.
	if ev.Achieved.Mul(rat.FromInt(2)).Less(ev.Bound) {
		t.Fatalf("achieved %v below half the bound %v", ev.Achieved, ev.Bound)
	}
	t.Logf("Figure 1 send-or-receive: bound %v, achieved %v (%d slots)",
		ev.Bound, ev.Achieved, ev.Slots)
}

func TestEvaluateSendRecvRejectsBaseModel(t *testing.T) {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateSendRecv(ms); err == nil {
		t.Fatal("expected model error")
	}
}

func TestEvaluateSendRecvRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(4), rng.Intn(5), 4, 4, 0.1)
		ms, err := core.SolveMasterSlavePort(p, 0, core.SendOrReceive)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := EvaluateSendRecv(ms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ev.Achieved.Sign() <= 0 || ev.Achieved.Cmp(ev.Bound) > 0 {
			t.Fatalf("trial %d: achieved %v outside (0, %v]", trial, ev.Achieved, ev.Bound)
		}
		if ev.Achieved.Mul(rat.FromInt(2)).Less(ev.Bound) {
			t.Fatalf("trial %d: worse than 2-approximation", trial)
		}
	}
}

func TestSendRecvStarNoLoss(t *testing.T) {
	// On a star all communications share the master vertex, so the
	// greedy decomposition is forced to serialize exactly as the LP
	// assumed: no stretch, achieved == bound.
	p := platform.Star(platform.WInt(3),
		[]platform.Weight{platform.WInt(1), platform.WInt(2)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(2)})
	ms, err := core.SolveMasterSlavePort(p, 0, core.SendOrReceive)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateSendRecv(ms)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Achieved.Equal(ev.Bound) {
		t.Fatalf("star should lose nothing: achieved %v, bound %v", ev.Achieved, ev.Bound)
	}
}
