package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func TestReconstructCardsStar(t *testing.T) {
	ws := make([]platform.Weight, 4)
	cs := make([]rat.Rat, 4)
	for i := range ws {
		ws[i] = platform.WInt(1)
		cs[i] = rat.One()
	}
	p := platform.Star(platform.WInt(1000), ws, cs)
	caps := core.UniformPorts(p, 2)
	sol, err := core.SolveMasterSlaveCards(p, 0, core.RoundRobinCards(p, caps))
	if err != nil {
		t.Fatal(err)
	}
	per, err := ReconstructCards(sol)
	if err != nil {
		t.Fatal(err)
	}
	if !per.Throughput.Equal(sol.Throughput) {
		t.Fatalf("throughput changed: %v vs %v", per.Throughput, sol.Throughput)
	}
	// With two cards, some slot must carry two simultaneous transfers
	// from the master (which the single-port Check would reject).
	sawParallel := false
	for _, s := range per.Slots {
		fromMaster := 0
		for _, e := range s.Edges {
			if p.Edge(e).From == 0 {
				fromMaster++
			}
		}
		if fromMaster == 2 {
			sawParallel = true
		}
		if fromMaster > 2 {
			t.Fatalf("slot uses %d > 2 master cards", fromMaster)
		}
	}
	if !sawParallel {
		t.Fatal("no slot exploits the second card")
	}
}

func TestReconstructCardsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 6; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(4), rng.Intn(6), 4, 4, 0.1)
		caps := core.UniformPorts(p, 1+rng.Intn(3))
		sol, err := core.SolveMasterSlaveCards(p, 0, core.RoundRobinCards(p, caps))
		if err != nil {
			t.Fatal(err)
		}
		per, err := ReconstructCards(sol)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		if err := per.CheckCards(sol.Assign); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestReconstructCardsK1MatchesSinglePort(t *testing.T) {
	p := platform.Figure1()
	caps := core.UniformPorts(p, 1)
	sol, err := core.SolveMasterSlaveCards(p, 0, core.RoundRobinCards(p, caps))
	if err != nil {
		t.Fatal(err)
	}
	per, err := ReconstructCards(sol)
	if err != nil {
		t.Fatal(err)
	}
	// With one card per direction the card schedule is a valid
	// single-port schedule too.
	if err := per.Check(); err != nil {
		t.Fatalf("k=1 card schedule fails single-port check: %v", err)
	}
}
