package schedule

import (
	"fmt"

	"repro/pkg/steady/sim/event"
)

// EventSpec converts the periodic schedule into the unified event
// core's replay input: a single flow commodity rooted at the master
// with the schedule's per-period edge and compute counts. The
// conversion validates the schedule first, so a spec obtained here is
// always runnable.
func (per *Periodic) EventSpec() (*event.PeriodicSpec, error) {
	if err := per.Check(); err != nil {
		return nil, fmt.Errorf("schedule: invalid schedule: %w", err)
	}
	return &event.PeriodicSpec{
		Platform: per.P,
		Commodities: []event.Commodity{{
			Name:      "tasks",
			Source:    per.Master,
			EdgeCount: per.EdgeTasks,
			Consume:   per.ComputeTasks,
			Quota:     per.TasksPerPeriod,
		}},
	}, nil
}
