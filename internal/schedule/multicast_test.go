package schedule

import (
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func TestReconstructTreePackingFigure2Multicast(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	pack, err := core.SolveTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := ReconstructTreePacking(pack)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Check(); err != nil {
		t.Fatal(err)
	}
	// The schedule realizes the true optimum 3/4: a constructive
	// witness that 3/4 is achievable while the LP bound 1 is not.
	if !mp.Throughput.Equal(rat.New(3, 4)) {
		t.Fatalf("throughput %v, want 3/4", mp.Throughput)
	}
	T := rat.FromBig(new(big.Rat).SetInt(mp.Period))
	ops := rat.FromBig(new(big.Rat).SetInt(mp.OpsPerPeriod))
	if !ops.Equal(mp.Throughput.Mul(T)) {
		t.Fatalf("ops/period %v != T*TP", ops)
	}
	t.Logf("Figure 2 multicast schedule: %v", mp)
}

func TestReconstructTreePackingBroadcastMeetsBound(t *testing.T) {
	// Constructive §4.3 achievability: the broadcast schedule built
	// from the packing has exactly the max-operator LP throughput.
	p := platform.Figure2()
	src := p.NodeByName("P0")
	bound, err := core.SolveBroadcastBound(p, src)
	if err != nil {
		t.Fatal(err)
	}
	var targets []int
	for i := 0; i < p.NumNodes(); i++ {
		if i != src {
			targets = append(targets, i)
		}
	}
	pack, err := core.SolveTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := ReconstructTreePacking(pack)
	if err != nil {
		t.Fatal(err)
	}
	if !mp.Throughput.Equal(bound.Throughput) {
		t.Fatalf("broadcast schedule %v != LP bound %v", mp.Throughput, bound.Throughput)
	}
}

func TestTreePackingScheduleRejectsBrokenTrees(t *testing.T) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	pack, err := core.SolveTreePacking(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := ReconstructTreePacking(pack)
	if err != nil {
		t.Fatal(err)
	}
	// Break a tree: drop its first edge; Check must notice the
	// target is no longer reached.
	mp.Trees[0] = mp.Trees[0][1:]
	if err := mp.Check(); err == nil {
		t.Fatal("expected unreachable-target error")
	}
}
