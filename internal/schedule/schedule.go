// Package schedule reconstructs concrete periodic schedules from the
// steady-state LP solutions of internal/core, following §4 of the
// paper:
//
//  1. the period T is the lcm of the denominators of the activity
//     variables, so all per-period task/message counts are integers;
//  2. the communications of one period form a weighted bipartite
//     graph (send ports on the left, receive ports on the right)
//     which internal/coloring decomposes into at most |E| + 2p
//     matchings — the slots of the periodic schedule;
//  3. grouping m consecutive periods amortizes start-up costs (§5.2);
//  4. truncating counts to a fixed period bounds the loss (§5.4).
package schedule

import (
	"fmt"
	"math/big"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// Slot is one time slice of the periodic communication orchestration:
// all listed platform edges are simultaneously busy for Dur time;
// they form a matching on (sender, receiver) pairs.
type Slot struct {
	Dur   rat.Rat
	Edges []int
}

// Periodic is the compact (polynomial-size) description of one period
// of an asymptotically optimal master-slave schedule.
type Periodic struct {
	P      *platform.Platform
	Master int

	// Period is the integer period T.
	Period *big.Int
	// EdgeTasks[e] is the integral number of task files crossing edge
	// e each period.
	EdgeTasks []*big.Int
	// ComputeTasks[i] is the integral number of tasks node i computes
	// each period.
	ComputeTasks []*big.Int
	// TasksPerPeriod = T * ntask(G) = sum of ComputeTasks.
	TasksPerPeriod *big.Int
	// Slots is the communication orchestration; the sum of durations
	// is Delta <= T.
	Slots []Slot
	// Throughput is the steady-state rate TasksPerPeriod / Period.
	Throughput rat.Rat
}

// Reconstruct turns a master-slave LP solution into a periodic
// schedule, performing the §4.1 construction.
func Reconstruct(ms *core.MasterSlave) (*Periodic, error) {
	if err := ms.Check(); err != nil {
		return nil, fmt.Errorf("schedule: refusing invalid solution: %w", err)
	}
	p := ms.P

	// Period: make every edge task rate s_e/c_e and compute rate
	// alpha_i/w_i integral.
	var rates []rat.Rat
	for e := 0; e < p.NumEdges(); e++ {
		rates = append(rates, ms.TasksPerUnit(e))
	}
	for i := 0; i < p.NumNodes(); i++ {
		rates = append(rates, ms.ComputeRate(i))
	}
	T := rat.DenLCM(rates...)

	per := &Periodic{
		P:            p,
		Master:       ms.Master,
		Period:       T,
		EdgeTasks:    make([]*big.Int, p.NumEdges()),
		ComputeTasks: make([]*big.Int, p.NumNodes()),
	}
	for e := 0; e < p.NumEdges(); e++ {
		n, ok := rat.ScaleInt(ms.TasksPerUnit(e), T)
		if !ok {
			return nil, fmt.Errorf("schedule: edge %d count not integral", e)
		}
		per.EdgeTasks[e] = n
	}
	total := new(big.Int)
	for i := 0; i < p.NumNodes(); i++ {
		n, ok := rat.ScaleInt(ms.ComputeRate(i), T)
		if !ok {
			return nil, fmt.Errorf("schedule: node %d count not integral", i)
		}
		per.ComputeTasks[i] = n
		total.Add(total, n)
	}
	per.TasksPerPeriod = total
	per.Throughput = ms.Throughput

	slots, err := orchestrate(p, func(e int) rat.Rat {
		// Busy time of edge e per period: n_e * c_e = T * s_e.
		return ms.S[e].MulBigInt(T)
	})
	if err != nil {
		return nil, err
	}
	per.Slots = slots

	if err := per.Check(); err != nil {
		return nil, fmt.Errorf("schedule: reconstruction invalid: %w", err)
	}
	return per, nil
}

// orchestrate builds the §4.1 bipartite graph (Psend_i, Precv_j) with
// the given per-edge busy times and decomposes it into matchings.
func orchestrate(p *platform.Platform, busy func(e int) rat.Rat) ([]Slot, error) {
	var edges []coloring.Edge
	for e := 0; e < p.NumEdges(); e++ {
		w := busy(e)
		if w.Sign() < 0 {
			return nil, fmt.Errorf("schedule: negative busy time on edge %d", e)
		}
		if w.Sign() == 0 {
			continue
		}
		ed := p.Edge(e)
		edges = append(edges, coloring.Edge{L: ed.From, R: ed.To, W: w, ID: e})
	}
	ms, _, err := coloring.DecomposeBipartite(p.NumNodes(), p.NumNodes(), edges)
	if err != nil {
		return nil, fmt.Errorf("schedule: orchestration: %w", err)
	}
	slots := make([]Slot, 0, len(ms))
	for _, m := range ms {
		s := Slot{Dur: m.Dur}
		for _, e := range m.Edges {
			s.Edges = append(s.Edges, e.ID)
		}
		slots = append(slots, s)
	}
	return slots, nil
}

// Check independently verifies all invariants of the periodic
// schedule: integral counts, integer conservation, per-edge slot time
// exactly n_e*c_e, slot matchings, and total slot time <= T.
func (per *Periodic) Check() error {
	p := per.P
	TR := rat.FromBig(new(big.Rat).SetInt(per.Period))

	// Conservation in integers.
	for i := 0; i < p.NumNodes(); i++ {
		if i == per.Master {
			continue
		}
		in := new(big.Int)
		for _, e := range p.InEdges(i) {
			in.Add(in, per.EdgeTasks[e])
		}
		out := new(big.Int).Set(per.ComputeTasks[i])
		for _, e := range p.OutEdges(i) {
			out.Add(out, per.EdgeTasks[e])
		}
		if in.Cmp(out) != 0 {
			return fmt.Errorf("schedule: integer conservation violated at %s: %v != %v",
				p.Name(i), in, out)
		}
	}
	// Master receives nothing.
	for _, e := range p.InEdges(per.Master) {
		if per.EdgeTasks[e].Sign() != 0 {
			return fmt.Errorf("schedule: master receives on edge %d", e)
		}
	}
	// Slot time per edge == n_e * c_e; matching property; total <= T.
	perEdge := make([]rat.Rat, p.NumEdges())
	total := rat.Zero()
	for si, s := range per.Slots {
		sender := map[int]bool{}
		recver := map[int]bool{}
		for _, e := range s.Edges {
			ed := p.Edge(e)
			if sender[ed.From] || recver[ed.To] {
				return fmt.Errorf("schedule: slot %d violates one-port", si)
			}
			sender[ed.From], recver[ed.To] = true, true
			perEdge[e] = perEdge[e].Add(s.Dur)
		}
		total = total.Add(s.Dur)
	}
	for e := 0; e < p.NumEdges(); e++ {
		want := rat.FromBig(new(big.Rat).SetInt(per.EdgeTasks[e])).Mul(p.Edge(e).C)
		if !perEdge[e].Equal(want) {
			return fmt.Errorf("schedule: edge %d gets %v slot time, needs %v", e, perEdge[e], want)
		}
	}
	if total.Cmp(TR) > 0 {
		return fmt.Errorf("schedule: slots total %v exceed period %v", total, TR)
	}
	// Compute fits in the period.
	for i := 0; i < p.NumNodes(); i++ {
		if per.ComputeTasks[i].Sign() == 0 {
			continue
		}
		if !p.CanCompute(i) {
			return fmt.Errorf("schedule: forwarder %s computes", p.Name(i))
		}
		t := rat.FromBig(new(big.Rat).SetInt(per.ComputeTasks[i])).Mul(p.Weight(i).Val)
		if t.Cmp(TR) > 0 {
			return fmt.Errorf("schedule: node %s computes %v > period", p.Name(i), t)
		}
	}
	// Throughput consistency.
	tp := rat.FromBig(new(big.Rat).SetFrac(per.TasksPerPeriod, per.Period))
	if !tp.Equal(per.Throughput) {
		return fmt.Errorf("schedule: throughput %v != counts ratio %v", per.Throughput, tp)
	}
	return nil
}

// Grouped returns the m-period grouping of §5.2: the period becomes
// m*T, every count is multiplied by m, and each slot's duration by m,
// so the number of communication rounds per (longer) period is
// unchanged and start-up costs are amortized.
func (per *Periodic) Grouped(m int64) *Periodic {
	if m < 1 {
		panic("schedule: grouping factor must be >= 1")
	}
	M := big.NewInt(m)
	g := &Periodic{
		P:              per.P,
		Master:         per.Master,
		Period:         new(big.Int).Mul(per.Period, M),
		EdgeTasks:      make([]*big.Int, len(per.EdgeTasks)),
		ComputeTasks:   make([]*big.Int, len(per.ComputeTasks)),
		TasksPerPeriod: new(big.Int).Mul(per.TasksPerPeriod, M),
		Throughput:     per.Throughput,
	}
	for e, n := range per.EdgeTasks {
		g.EdgeTasks[e] = new(big.Int).Mul(n, M)
	}
	for i, n := range per.ComputeTasks {
		g.ComputeTasks[i] = new(big.Int).Mul(n, M)
	}
	mr := rat.FromInt(m)
	for _, s := range per.Slots {
		g.Slots = append(g.Slots, Slot{Dur: s.Dur.Mul(mr), Edges: append([]int(nil), s.Edges...)})
	}
	return g
}

// StartupExtension returns the extra time one period costs when every
// communication round pays a start-up: each slot is extended by the
// largest start-up cost among its edges (transfers within a slot run
// in parallel). It is bounded by numSlots * maxStartup <= |E| * C,
// the paper's C|E| bound.
func (per *Periodic) StartupExtension(startup func(e int) rat.Rat) rat.Rat {
	ext := rat.Zero()
	for _, s := range per.Slots {
		m := rat.Zero()
		for _, e := range s.Edges {
			m = rat.Max(m, startup(e))
		}
		ext = ext.Add(m)
	}
	return ext
}

// EffectiveThroughput returns the steady-state throughput when each
// period is stretched by the start-up extension: tasks / (T + ext).
func (per *Periodic) EffectiveThroughput(startup func(e int) rat.Rat) rat.Rat {
	T := rat.FromBig(new(big.Rat).SetInt(per.Period))
	tasks := rat.FromBig(new(big.Rat).SetInt(per.TasksPerPeriod))
	return tasks.Div(T.Add(per.StartupExtension(startup)))
}

// FixedPeriod computes the best periodic schedule whose period is the
// given integer P (§5.4): per-edge counts are bounded by
// floor(P*s_e/c_e) and per-node compute by floor(P*alpha_i/w_i), and
// a small flow LP re-balances conservation. Its throughput tends to
// ntask(G) as P grows.
func FixedPeriod(ms *core.MasterSlave, P int64) (*Periodic, error) {
	if P < 1 {
		return nil, fmt.Errorf("schedule: period must be >= 1")
	}
	p := ms.P
	PB := big.NewInt(P)
	PR := rat.FromInt(P)

	// Integral caps from the optimal rates.
	edgeCap := make([]*big.Int, p.NumEdges())
	for e := range edgeCap {
		edgeCap[e] = ms.TasksPerUnit(e).Mul(PR).Floor()
	}
	compCap := make([]*big.Int, p.NumNodes())
	for i := range compCap {
		compCap[i] = ms.ComputeRate(i).Mul(PR).Floor()
	}

	// Flow LP over counts (totally unimodular, so the simplex vertex
	// is integral): maximize total compute subject to conservation.
	m := lp.NewModel()
	fe := make([]lp.Var, p.NumEdges())
	for e := range fe {
		fe[e] = m.VarRange(fmt.Sprintf("n[e%d]", e), rat.FromBig(new(big.Rat).SetInt(edgeCap[e])))
	}
	bi := make([]lp.Var, p.NumNodes())
	obj := lp.Expr{}
	for i := range bi {
		bi[i] = m.VarRange(fmt.Sprintf("comp[n%d]", i), rat.FromBig(new(big.Rat).SetInt(compCap[i])))
		obj = obj.PlusInt(bi[i], 1)
	}
	m.Objective(lp.Maximize, obj)
	for i := 0; i < p.NumNodes(); i++ {
		if i == ms.Master {
			continue
		}
		ex := lp.Expr{}.PlusInt(bi[i], -1)
		for _, e := range p.InEdges(i) {
			ex = ex.PlusInt(fe[e], 1)
		}
		for _, e := range p.OutEdges(i) {
			ex = ex.PlusInt(fe[e], -1)
		}
		m.Eq(fmt.Sprintf("conserve[n%d]", i), ex, rat.Zero())
	}
	sol, err := m.Solve()
	if err != nil {
		return nil, fmt.Errorf("schedule: fixed-period LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("schedule: fixed-period LP %v", sol.Status)
	}

	per := &Periodic{
		P:            p,
		Master:       ms.Master,
		Period:       PB,
		EdgeTasks:    make([]*big.Int, p.NumEdges()),
		ComputeTasks: make([]*big.Int, p.NumNodes()),
	}
	total := new(big.Int)
	for e := range fe {
		v := sol.Value(fe[e])
		if !v.IsInt() {
			return nil, fmt.Errorf("schedule: fixed-period count for edge %d not integral: %v", e, v)
		}
		per.EdgeTasks[e] = v.Floor()
	}
	for i := range bi {
		v := sol.Value(bi[i])
		if !v.IsInt() {
			return nil, fmt.Errorf("schedule: fixed-period count for node %d not integral: %v", i, v)
		}
		per.ComputeTasks[i] = v.Floor()
		total.Add(total, per.ComputeTasks[i])
	}
	per.TasksPerPeriod = total
	per.Throughput = rat.FromBig(new(big.Rat).SetFrac(total, PB))

	slots, err := orchestrate(p, func(e int) rat.Rat {
		return rat.FromBig(new(big.Rat).SetInt(per.EdgeTasks[e])).Mul(p.Edge(e).C)
	})
	if err != nil {
		return nil, err
	}
	per.Slots = slots
	if err := per.Check(); err != nil {
		return nil, fmt.Errorf("schedule: fixed-period schedule invalid: %w", err)
	}
	return per, nil
}

// String renders a compact description of the period.
func (per *Periodic) String() string {
	return fmt.Sprintf("period T=%v, %v tasks/period (rate %v), %d comm slots",
		per.Period, per.TasksPerPeriod, per.Throughput, len(per.Slots))
}
