package schedule

import (
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// Failure injection for the schedule verifiers (the counterpart of
// core's tamper tests): Check must reject corrupted periods.

func clonePeriodic(per *Periodic) *Periodic {
	c := *per
	c.EdgeTasks = make([]*big.Int, len(per.EdgeTasks))
	for i, n := range per.EdgeTasks {
		c.EdgeTasks[i] = new(big.Int).Set(n)
	}
	c.ComputeTasks = make([]*big.Int, len(per.ComputeTasks))
	for i, n := range per.ComputeTasks {
		c.ComputeTasks[i] = new(big.Int).Set(n)
	}
	c.TasksPerPeriod = new(big.Int).Set(per.TasksPerPeriod)
	c.Slots = append([]Slot(nil), per.Slots...)
	return &c
}

func TestPeriodicCheckRejectsTampering(t *testing.T) {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	per, err := Reconstruct(ms)
	if err != nil {
		t.Fatal(err)
	}

	c := clonePeriodic(per)
	c.EdgeTasks[0] = new(big.Int).Add(c.EdgeTasks[0], big.NewInt(1))
	if err := c.Check(); err == nil {
		t.Error("edge count tampering accepted")
	}

	c = clonePeriodic(per)
	c.TasksPerPeriod.Add(c.TasksPerPeriod, big.NewInt(5))
	if err := c.Check(); err == nil {
		t.Error("tasks-per-period tampering accepted")
	}

	c = clonePeriodic(per)
	if len(c.Slots) > 0 {
		// Duplicate a slot: per-edge time now exceeds n_e * c_e.
		c.Slots = append(c.Slots, c.Slots[0])
		if err := c.Check(); err == nil {
			t.Error("duplicated slot accepted")
		}
	}

	c = clonePeriodic(per)
	// A slot whose edges share a sender violates one-port.
	var twoOut []int
	for v := 0; v < p.NumNodes(); v++ {
		if len(p.OutEdges(v)) >= 2 {
			twoOut = p.OutEdges(v)[:2]
			break
		}
	}
	if twoOut != nil {
		c.Slots = []Slot{{Dur: rat.One(), Edges: twoOut}}
		if err := c.Check(); err == nil {
			t.Error("one-port violation accepted")
		}
	}

	c = clonePeriodic(per)
	// A forwarder that computes.
	for i := 0; i < p.NumNodes(); i++ {
		if !p.CanCompute(i) {
			c.ComputeTasks[i] = big.NewInt(1)
			if err := c.Check(); err == nil {
				t.Error("forwarder compute accepted")
			}
			break
		}
	}
}

func TestScatterPeriodicCheckRejectsTampering(t *testing.T) {
	p := platform.Figure1()
	src := p.NodeByName("P1")
	targets := []int{p.NodeByName("P4"), p.NodeByName("P5")}
	sc, err := core.SolveScatter(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ReconstructScatter(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate a message count: conservation or delivery must fire.
	for e := range sp.Msgs {
		if sp.Msgs[e][0].Sign() > 0 {
			sp.Msgs[e][0].Add(sp.Msgs[e][0], big.NewInt(1))
			break
		}
	}
	if err := sp.Check(); err == nil {
		t.Error("tampered scatter schedule accepted")
	}
}

func TestReconstructRefusesInvalidSolution(t *testing.T) {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := *ms
	bad.Alpha = append([]rat.Rat(nil), ms.Alpha...)
	bad.S = append([]rat.Rat(nil), ms.S...)
	bad.Throughput = bad.Throughput.Mul(rat.FromInt(3))
	if _, err := Reconstruct(&bad); err == nil {
		t.Fatal("Reconstruct accepted an invalid solution")
	}
}
