package schedule

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// ScatterPeriodic is the reconstructed periodic schedule of a
// pipelined scatter (§3.2 + §4.1): within each period of T time
// units, Msgs[e][k] messages of type k cross edge e, delivered to
// every target at OpsPerPeriod = T*TP messages per period.
type ScatterPeriodic struct {
	P       *platform.Platform
	Source  int
	Targets []int

	Period *big.Int
	// Msgs[e][k] is the integral per-period message count of target
	// type k on edge e.
	Msgs [][]*big.Int
	// OpsPerPeriod = T * TP, the per-period deliveries at every target.
	OpsPerPeriod *big.Int
	Slots        []Slot
	Throughput   rat.Rat
}

// ReconstructScatter performs the §4.1 construction on a scatter
// solution (sum semantics; it must not be applied to the max-operator
// multicast bound, whose unachievability is the point of §4.3).
func ReconstructScatter(sc *core.Scatter) (*ScatterPeriodic, error) {
	if err := sc.Check(); err != nil {
		return nil, fmt.Errorf("schedule: refusing invalid scatter solution: %w", err)
	}
	p := sc.P
	nE, nK := p.NumEdges(), len(sc.Targets)

	var rates []rat.Rat
	for e := 0; e < nE; e++ {
		rates = append(rates, sc.Send[e]...)
	}
	rates = append(rates, sc.Throughput)
	T := rat.DenLCM(rates...)

	sp := &ScatterPeriodic{
		P: p, Source: sc.Source, Targets: append([]int(nil), sc.Targets...),
		Period:     T,
		Msgs:       make([][]*big.Int, nE),
		Throughput: sc.Throughput,
	}
	for e := 0; e < nE; e++ {
		sp.Msgs[e] = make([]*big.Int, nK)
		for k := 0; k < nK; k++ {
			n, ok := rat.ScaleInt(sc.Send[e][k], T)
			if !ok {
				return nil, fmt.Errorf("schedule: message count e%d k%d not integral", e, k)
			}
			sp.Msgs[e][k] = n
		}
	}
	ops, ok := rat.ScaleInt(sc.Throughput, T)
	if !ok {
		return nil, fmt.Errorf("schedule: operations per period not integral")
	}
	sp.OpsPerPeriod = ops

	slots, err := orchestrate(p, func(e int) rat.Rat {
		// Distinct messages: busy time is the sum over types.
		tot := rat.Zero()
		for k := 0; k < nK; k++ {
			tot = tot.Add(rat.FromBig(new(big.Rat).SetInt(sp.Msgs[e][k])))
		}
		return tot.Mul(p.Edge(e).C)
	})
	if err != nil {
		return nil, err
	}
	sp.Slots = slots
	if err := sp.Check(); err != nil {
		return nil, fmt.Errorf("schedule: scatter reconstruction invalid: %w", err)
	}
	return sp, nil
}

// Check independently verifies the scatter schedule invariants.
func (sp *ScatterPeriodic) Check() error {
	p := sp.P
	TR := rat.FromBig(new(big.Rat).SetInt(sp.Period))

	// Integer conservation per type; delivery at targets.
	for k, tgt := range sp.Targets {
		for i := 0; i < p.NumNodes(); i++ {
			if i == sp.Source || i == tgt {
				continue
			}
			in, out := new(big.Int), new(big.Int)
			for _, e := range p.InEdges(i) {
				in.Add(in, sp.Msgs[e][k])
			}
			for _, e := range p.OutEdges(i) {
				out.Add(out, sp.Msgs[e][k])
			}
			if in.Cmp(out) != 0 {
				return fmt.Errorf("schedule: scatter conservation violated at n%d k%d", i, k)
			}
		}
		// Delivery is net of the target's own out-flow, matching the
		// LP's net delivery equation: only messages that genuinely
		// terminate at the target count.
		got := new(big.Int)
		for _, e := range p.InEdges(tgt) {
			got.Add(got, sp.Msgs[e][k])
		}
		for _, e := range p.OutEdges(tgt) {
			got.Sub(got, sp.Msgs[e][k])
		}
		if got.Cmp(sp.OpsPerPeriod) != 0 {
			return fmt.Errorf("schedule: target %d nets %v != %v per period", tgt, got, sp.OpsPerPeriod)
		}
	}
	// Slots: matching property, per-edge time, total <= T.
	perEdge := make([]rat.Rat, p.NumEdges())
	total := rat.Zero()
	for si, s := range sp.Slots {
		sender := map[int]bool{}
		recver := map[int]bool{}
		for _, e := range s.Edges {
			ed := p.Edge(e)
			if sender[ed.From] || recver[ed.To] {
				return fmt.Errorf("schedule: scatter slot %d violates one-port", si)
			}
			sender[ed.From], recver[ed.To] = true, true
			perEdge[e] = perEdge[e].Add(s.Dur)
		}
		total = total.Add(s.Dur)
	}
	for e := 0; e < p.NumEdges(); e++ {
		want := rat.Zero()
		for k := range sp.Targets {
			want = want.Add(rat.FromBig(new(big.Rat).SetInt(sp.Msgs[e][k])))
		}
		want = want.Mul(p.Edge(e).C)
		if !perEdge[e].Equal(want) {
			return fmt.Errorf("schedule: scatter edge %d gets %v, needs %v", e, perEdge[e], want)
		}
	}
	if total.Cmp(TR) > 0 {
		return fmt.Errorf("schedule: scatter slots %v exceed period %v", total, TR)
	}
	return nil
}

// String renders a compact description.
func (sp *ScatterPeriodic) String() string {
	return fmt.Sprintf("scatter period T=%v, %v ops/period (TP %v), %d comm slots",
		sp.Period, sp.OpsPerPeriod, sp.Throughput, len(sp.Slots))
}
