package schedule

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rr(n, d int64) rat.Rat { return rat.New(n, d) }

func mustMS(t *testing.T, p *platform.Platform, master int) *core.MasterSlave {
	t.Helper()
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestReconstructFigure1(t *testing.T) {
	p := platform.Figure1()
	ms := mustMS(t, p, p.NodeByName("P1"))
	per, err := Reconstruct(ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := per.Check(); err != nil {
		t.Fatal(err)
	}
	// Throughput is preserved exactly.
	if !per.Throughput.Equal(ms.Throughput) {
		t.Fatalf("throughput %v != LP %v", per.Throughput, ms.Throughput)
	}
	// Polynomial slot count: <= |E| + 2p.
	if len(per.Slots) > p.NumEdges()+2*p.NumNodes() {
		t.Fatalf("%d slots exceeds bound", len(per.Slots))
	}
	t.Logf("Figure 1 schedule: %v", per)
}

func TestReconstructStar(t *testing.T) {
	p := platform.Star(platform.WInt(2),
		[]platform.Weight{platform.WInt(3), platform.WInt(2)},
		[]rat.Rat{ri(1), ri(2)})
	ms := mustMS(t, p, 0)
	per, err := Reconstruct(ms)
	if err != nil {
		t.Fatal(err)
	}
	// Tasks per period must equal T * ntask.
	T := rat.FromBig(new(big.Rat).SetInt(per.Period))
	want := ms.Throughput.Mul(T)
	got := rat.FromBig(new(big.Rat).SetInt(per.TasksPerPeriod))
	if !got.Equal(want) {
		t.Fatalf("tasks/period %v != T*ntask %v", got, want)
	}
}

func TestReconstructRandomPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(5), rng.Intn(6), 4, 4, 0.15)
		ms := mustMS(t, p, 0)
		per, err := Reconstruct(ms)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		if err := per.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestGrouped(t *testing.T) {
	p := platform.Figure1()
	ms := mustMS(t, p, 0)
	per, err := Reconstruct(ms)
	if err != nil {
		t.Fatal(err)
	}
	g := per.Grouped(5)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if g.Period.Cmp(new(big.Int).Mul(per.Period, big.NewInt(5))) != 0 {
		t.Fatal("grouped period wrong")
	}
	if len(g.Slots) != len(per.Slots) {
		t.Fatal("grouping must not change the number of communication rounds")
	}
	if !g.Throughput.Equal(per.Throughput) {
		t.Fatal("grouping must not change throughput")
	}
}

func TestGroupedPanics(t *testing.T) {
	p := platform.Figure1()
	ms := mustMS(t, p, 0)
	per, _ := Reconstruct(ms)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	per.Grouped(0)
}

func TestStartupAmortization(t *testing.T) {
	// E6's core claim: effective throughput with start-up costs
	// increases with the grouping factor m and tends to ntask(G).
	p := platform.Figure1()
	ms := mustMS(t, p, 0)
	per, err := Reconstruct(ms)
	if err != nil {
		t.Fatal(err)
	}
	startup := func(e int) rat.Rat { return ri(3) }
	prev := rat.Zero()
	for _, m := range []int64{1, 2, 4, 8, 32, 128} {
		eff := per.Grouped(m).EffectiveThroughput(startup)
		if eff.Cmp(prev) < 0 {
			t.Fatalf("m=%d: effective throughput %v decreased", m, eff)
		}
		if eff.Cmp(per.Throughput) >= 0 {
			t.Fatalf("m=%d: effective throughput %v not below optimum %v", m, eff, per.Throughput)
		}
		prev = eff
	}
	// At m=128 we should be within 5% of the optimum on this platform.
	gap := per.Throughput.Sub(prev).Div(per.Throughput)
	if gap.Cmp(rr(1, 20)) > 0 {
		t.Fatalf("m=128 gap %v too large", gap)
	}
}

func TestStartupExtensionBoundedByCE(t *testing.T) {
	p := platform.Figure1()
	ms := mustMS(t, p, 0)
	per, _ := Reconstruct(ms)
	c := ri(7)
	ext := per.StartupExtension(func(int) rat.Rat { return c })
	bound := c.Mul(ri(int64(p.NumEdges())))
	// numSlots <= |E|+2p, but each slot costs at most C: the paper's
	// bound is C|E| for |E| rounds; ours is C*numSlots. Check the
	// looser documented bound.
	if ext.Cmp(c.Mul(ri(int64(len(per.Slots))))) > 0 {
		t.Fatalf("extension %v exceeds slots*C", ext)
	}
	_ = bound
}

func TestFixedPeriodConvergence(t *testing.T) {
	// §5.4: throughput(P) is nondecreasing-ish and approaches ntask.
	p := platform.Figure1()
	ms := mustMS(t, p, 0)
	opt := ms.Throughput
	var last rat.Rat
	for _, P := range []int64{1, 2, 4, 8, 16, 64, 256} {
		per, err := FixedPeriod(ms, P)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if err := per.Check(); err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if per.Throughput.Cmp(opt) > 0 {
			t.Fatalf("P=%d: fixed-period throughput %v beats optimum %v", P, per.Throughput, opt)
		}
		last = per.Throughput
	}
	gap := opt.Sub(last).Div(opt)
	if gap.Cmp(rr(1, 10)) > 0 {
		t.Fatalf("P=256 still %v away from optimum", gap)
	}
}

func TestFixedPeriodExactAtMultipleOfT(t *testing.T) {
	// When P is a multiple of the natural period T, no loss occurs.
	p := platform.Star(platform.WInt(2),
		[]platform.Weight{platform.WInt(3)}, []rat.Rat{ri(1)})
	ms := mustMS(t, p, 0)
	per, err := Reconstruct(ms)
	if err != nil {
		t.Fatal(err)
	}
	if !per.Period.IsInt64() {
		t.Skip("period too large")
	}
	P := per.Period.Int64() * 3
	fp, err := FixedPeriod(ms, P)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Throughput.Equal(ms.Throughput) {
		t.Fatalf("P=%d: %v != optimum %v", P, fp.Throughput, ms.Throughput)
	}
}

func TestFixedPeriodErrors(t *testing.T) {
	p := platform.Figure1()
	ms := mustMS(t, p, 0)
	if _, err := FixedPeriod(ms, 0); err == nil {
		t.Fatal("expected error for P=0")
	}
}

func TestReconstructScatterFigure1(t *testing.T) {
	p := platform.Figure1()
	src := p.NodeByName("P1")
	targets := []int{p.NodeByName("P4"), p.NodeByName("P5"), p.NodeByName("P6")}
	sc, err := core.SolveScatter(p, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ReconstructScatter(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Check(); err != nil {
		t.Fatal(err)
	}
	// ops/period = T * TP.
	T := rat.FromBig(new(big.Rat).SetInt(sp.Period))
	want := sc.Throughput.Mul(T)
	got := rat.FromBig(new(big.Rat).SetInt(sp.OpsPerPeriod))
	if !got.Equal(want) {
		t.Fatalf("ops/period %v != T*TP %v", got, want)
	}
	t.Logf("Figure 1 scatter schedule: %v", sp)
}

func TestReconstructScatterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 6; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(3), rng.Intn(4), 3, 3, 0)
		var targets []int
		for i := 1; i < p.NumNodes() && len(targets) < 2; i++ {
			targets = append(targets, i)
		}
		sc, err := core.SolveScatter(p, 0, targets)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := ReconstructScatter(sc)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, p)
		}
		if err := sp.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPeriodicStringers(t *testing.T) {
	p := platform.Figure1()
	ms := mustMS(t, p, 0)
	per, _ := Reconstruct(ms)
	if per.String() == "" {
		t.Fatal("empty String")
	}
}
