package schedule

import (
	"fmt"
	"math/big"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/pkg/steady/rat"
)

// SendRecvEvaluation quantifies §5.1.1: under the send-OR-receive
// model the LP bound still exists, but orchestrating the
// communications requires edge-coloring an arbitrary graph (NP-hard),
// so a greedy decomposition may stretch the period and lose
// throughput.
type SendRecvEvaluation struct {
	// Bound is the LP optimum ntask(G) under the shared-port model.
	Bound rat.Rat
	// Achieved is the throughput of the schedule obtained with the
	// greedy general-graph decomposition: the communication phase may
	// exceed T, stretching the period.
	Achieved rat.Rat
	// Period is the nominal period T; Stretched is the greedy
	// decomposition's total communication time (>= the max port load).
	Period, Stretched *big.Int
	// Slots is the number of matchings in the greedy decomposition.
	Slots int
}

// EvaluateSendRecv solves the send-or-receive master-slave LP and
// reconstructs a schedule with the greedy general-graph coloring,
// reporting bound vs achieved (the E9 gap).
func EvaluateSendRecv(ms *core.MasterSlave) (*SendRecvEvaluation, error) {
	if ms.Model != core.SendOrReceive {
		return nil, fmt.Errorf("schedule: solution is not under the send-or-receive model")
	}
	if err := ms.Check(); err != nil {
		return nil, fmt.Errorf("schedule: invalid solution: %w", err)
	}
	p := ms.P

	var rates []rat.Rat
	for e := 0; e < p.NumEdges(); e++ {
		rates = append(rates, ms.TasksPerUnit(e))
	}
	for i := 0; i < p.NumNodes(); i++ {
		rates = append(rates, ms.ComputeRate(i))
	}
	T := rat.DenLCM(rates...)
	TR := rat.FromBig(new(big.Rat).SetInt(T))

	// General conflict graph: one vertex per processor (single shared
	// port), one edge per platform link with its per-period busy time.
	var gedges []coloring.GEdge
	for e := 0; e < p.NumEdges(); e++ {
		busy := ms.S[e].MulBigInt(T)
		if busy.Sign() == 0 {
			continue
		}
		ed := p.Edge(e)
		gedges = append(gedges, coloring.GEdge{U: ed.From, V: ed.To, W: busy, ID: e})
	}
	slots, total, delta := coloring.DecomposeGeneral(p.NumNodes(), gedges)

	// Sanity: the LP's port constraints guarantee delta <= T.
	if delta.Cmp(TR) > 0 {
		return nil, fmt.Errorf("schedule: port load %v exceeds period %v", delta, TR)
	}
	// The schedule runs the greedy communication phase (length
	// `total`) plus overlapped computation (<= T): the effective
	// period is max(T, total).
	eff := rat.Max(TR, total)
	tasks := ms.Throughput.Mul(TR)
	achieved := tasks.Div(eff)

	ev := &SendRecvEvaluation{
		Bound:    ms.Throughput,
		Achieved: achieved,
		Period:   T,
		Slots:    len(slots),
	}
	// Stretched as an integer when it is one (common: integral busy
	// times), otherwise rounded up for reporting.
	if total.IsInt() {
		ev.Stretched = total.Floor()
	} else {
		ev.Stretched = total.Floor()
		ev.Stretched.Add(ev.Stretched, big.NewInt(1))
	}
	return ev, nil
}
