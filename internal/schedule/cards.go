package schedule

import (
	"fmt"
	"math/big"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/pkg/steady/rat"
)

// ReconstructCards performs the §4.1 construction for the fixed-
// wiring multiport model of §5.1.2: "the schedule can be
// reconstructed (each node in the bipartite graph corresponds to a
// network card)". Slots are matchings over cards, so a node with k
// cards may take part in up to k simultaneous transfers per
// direction, while each platform edge still carries one transfer at a
// time (it lives on exactly one card pair).
func ReconstructCards(cs *core.CardSolution) (*Periodic, error) {
	if err := cs.CheckCards(); err != nil {
		return nil, fmt.Errorf("schedule: refusing invalid card solution: %w", err)
	}
	p := cs.P

	var rates []rat.Rat
	for e := 0; e < p.NumEdges(); e++ {
		rates = append(rates, cs.TasksPerUnit(e))
	}
	for i := 0; i < p.NumNodes(); i++ {
		rates = append(rates, cs.ComputeRate(i))
	}
	T := rat.DenLCM(rates...)

	per := &Periodic{
		P:            p,
		Master:       cs.Master,
		Period:       T,
		EdgeTasks:    make([]*big.Int, p.NumEdges()),
		ComputeTasks: make([]*big.Int, p.NumNodes()),
	}
	for e := 0; e < p.NumEdges(); e++ {
		n, ok := rat.ScaleInt(cs.TasksPerUnit(e), T)
		if !ok {
			return nil, fmt.Errorf("schedule: edge %d count not integral", e)
		}
		per.EdgeTasks[e] = n
	}
	total := new(big.Int)
	for i := 0; i < p.NumNodes(); i++ {
		n, ok := rat.ScaleInt(cs.ComputeRate(i), T)
		if !ok {
			return nil, fmt.Errorf("schedule: node %d count not integral", i)
		}
		per.ComputeTasks[i] = n
		total.Add(total, n)
	}
	per.TasksPerPeriod = total
	per.Throughput = cs.Throughput

	// Card-level bipartite graph: one left node per (node, send card),
	// one right node per (node, recv card).
	sendBase := make([]int, p.NumNodes())
	recvBase := make([]int, p.NumNodes())
	nSend, nRecv := 0, 0
	for i := 0; i < p.NumNodes(); i++ {
		sendBase[i] = nSend
		nSend += cs.Assign.Caps.Send[i]
		recvBase[i] = nRecv
		nRecv += cs.Assign.Caps.Recv[i]
	}
	var edges []coloring.Edge
	for e := 0; e < p.NumEdges(); e++ {
		busy := cs.S[e].MulBigInt(T)
		if busy.Sign() == 0 {
			continue
		}
		ed := p.Edge(e)
		edges = append(edges, coloring.Edge{
			L:  sendBase[ed.From] + cs.Assign.SendCard[e],
			R:  recvBase[ed.To] + cs.Assign.RecvCard[e],
			W:  busy,
			ID: e,
		})
	}
	ms, _, err := coloring.DecomposeBipartite(nSend, nRecv, edges)
	if err != nil {
		return nil, fmt.Errorf("schedule: card orchestration: %w", err)
	}
	for _, m := range ms {
		s := Slot{Dur: m.Dur}
		for _, e := range m.Edges {
			s.Edges = append(s.Edges, e.ID)
		}
		per.Slots = append(per.Slots, s)
	}
	if err := per.CheckCards(cs.Assign); err != nil {
		return nil, fmt.Errorf("schedule: card reconstruction invalid: %w", err)
	}
	return per, nil
}

// CheckCards verifies the card schedule: integer conservation,
// per-card matching slots (a node may appear once per card), exact
// per-edge slot time, total slot time <= T.
func (per *Periodic) CheckCards(assign core.CardAssign) error {
	p := per.P
	TR := rat.FromBig(new(big.Rat).SetInt(per.Period))
	for i := 0; i < p.NumNodes(); i++ {
		if i == per.Master {
			continue
		}
		in := new(big.Int)
		for _, e := range p.InEdges(i) {
			in.Add(in, per.EdgeTasks[e])
		}
		out := new(big.Int).Set(per.ComputeTasks[i])
		for _, e := range p.OutEdges(i) {
			out.Add(out, per.EdgeTasks[e])
		}
		if in.Cmp(out) != 0 {
			return fmt.Errorf("schedule: integer conservation violated at %s", p.Name(i))
		}
	}
	perEdge := make([]rat.Rat, p.NumEdges())
	total := rat.Zero()
	for si, s := range per.Slots {
		sendCard := map[[2]int]bool{}
		recvCard := map[[2]int]bool{}
		for _, e := range s.Edges {
			ed := p.Edge(e)
			sk := [2]int{ed.From, assign.SendCard[e]}
			rk := [2]int{ed.To, assign.RecvCard[e]}
			if sendCard[sk] || recvCard[rk] {
				return fmt.Errorf("schedule: slot %d uses a card twice", si)
			}
			sendCard[sk], recvCard[rk] = true, true
			perEdge[e] = perEdge[e].Add(s.Dur)
		}
		total = total.Add(s.Dur)
	}
	for e := 0; e < p.NumEdges(); e++ {
		want := rat.FromBig(new(big.Rat).SetInt(per.EdgeTasks[e])).Mul(p.Edge(e).C)
		if !perEdge[e].Equal(want) {
			return fmt.Errorf("schedule: edge %d gets %v slot time, needs %v", e, perEdge[e], want)
		}
	}
	if total.Cmp(TR) > 0 {
		return fmt.Errorf("schedule: slots total %v exceed period %v", total, TR)
	}
	return nil
}
