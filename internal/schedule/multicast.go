package schedule

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// MulticastPeriodic is a periodic multicast/broadcast schedule built
// from an exact tree packing: within each period of T time units,
// Instances[t] multicast instances are routed along tree t, and every
// target receives OpsPerPeriod = T*TP messages.
//
// Its existence is the constructive side of §4.3: for broadcast the
// packing meets the max-operator LP bound (achievability, [5]); for
// multicast it meets the *true* optimum, which may sit strictly below
// the LP bound (Figure 2).
type MulticastPeriodic struct {
	P       *platform.Platform
	Source  int
	Targets []int

	Period       *big.Int
	Instances    []*big.Int // per packing tree
	Trees        [][]int    // edge lists, parallel to Instances
	OpsPerPeriod *big.Int
	Slots        []Slot
	Throughput   rat.Rat
}

// ReconstructTreePacking turns a core.TreePacking into a concrete
// periodic schedule: the period is the lcm of the tree rates'
// denominators, per-edge busy times aggregate the trees crossing the
// edge, and the §4.1 bipartite coloring orchestrates the one-port
// communications.
func ReconstructTreePacking(tp *core.TreePacking) (*MulticastPeriodic, error) {
	if len(tp.Trees) == 0 {
		return nil, fmt.Errorf("schedule: empty packing")
	}
	var rates []rat.Rat
	for _, t := range tp.Trees {
		rates = append(rates, t.Rate)
	}
	rates = append(rates, tp.Throughput)
	T := rat.DenLCM(rates...)

	mp := &MulticastPeriodic{
		P: tp.P, Source: tp.Source, Targets: append([]int(nil), tp.Targets...),
		Period:     T,
		Throughput: tp.Throughput,
	}
	for _, t := range tp.Trees {
		n, ok := rat.ScaleInt(t.Rate, T)
		if !ok {
			return nil, fmt.Errorf("schedule: tree instance count not integral")
		}
		mp.Instances = append(mp.Instances, n)
		mp.Trees = append(mp.Trees, append([]int(nil), t.Edges...))
	}
	ops, ok := rat.ScaleInt(tp.Throughput, T)
	if !ok {
		return nil, fmt.Errorf("schedule: ops per period not integral")
	}
	mp.OpsPerPeriod = ops

	slots, err := orchestrate(tp.P, func(e int) rat.Rat {
		busy := rat.Zero()
		for ti, es := range mp.Trees {
			for _, te := range es {
				if te == e {
					busy = busy.Add(rat.FromBig(new(big.Rat).SetInt(mp.Instances[ti])).Mul(tp.P.Edge(e).C))
				}
			}
		}
		return busy
	})
	if err != nil {
		return nil, err
	}
	mp.Slots = slots
	if err := mp.Check(); err != nil {
		return nil, fmt.Errorf("schedule: tree-packing reconstruction invalid: %w", err)
	}
	return mp, nil
}

// Check verifies the multicast schedule: every target is covered by
// every scheduled instance, deliveries per period equal T*TP, slots
// are matchings and cover each edge's exact busy time within T.
func (mp *MulticastPeriodic) Check() error {
	p := mp.P
	TR := rat.FromBig(new(big.Rat).SetInt(mp.Period))

	// Each tree must reach every target from the source, and the
	// instance counts must sum to the per-period deliveries.
	total := new(big.Int)
	for ti, es := range mp.Trees {
		reach := map[int]bool{mp.Source: true}
		remaining := append([]int(nil), es...)
		for progress := true; progress; {
			progress = false
			next := remaining[:0]
			for _, e := range remaining {
				ed := p.Edge(e)
				if reach[ed.From] && !reach[ed.To] {
					reach[ed.To] = true
					progress = true
					continue
				}
				next = append(next, e)
			}
			remaining = next
		}
		for _, t := range mp.Targets {
			if !reach[t] {
				return fmt.Errorf("schedule: tree %d does not reach target %d", ti, t)
			}
		}
		total.Add(total, mp.Instances[ti])
	}
	if total.Cmp(mp.OpsPerPeriod) != 0 {
		return fmt.Errorf("schedule: instances %v != ops/period %v", total, mp.OpsPerPeriod)
	}

	// Slot structure.
	busy := make([]rat.Rat, p.NumEdges())
	for ti, es := range mp.Trees {
		for _, e := range es {
			busy[e] = busy[e].Add(rat.FromBig(new(big.Rat).SetInt(mp.Instances[ti])).Mul(p.Edge(e).C))
		}
	}
	perEdge := make([]rat.Rat, p.NumEdges())
	slotTotal := rat.Zero()
	for si, s := range mp.Slots {
		sender := map[int]bool{}
		recver := map[int]bool{}
		for _, e := range s.Edges {
			ed := p.Edge(e)
			if sender[ed.From] || recver[ed.To] {
				return fmt.Errorf("schedule: multicast slot %d violates one-port", si)
			}
			sender[ed.From], recver[ed.To] = true, true
			perEdge[e] = perEdge[e].Add(s.Dur)
		}
		slotTotal = slotTotal.Add(s.Dur)
	}
	for e := range perEdge {
		if !perEdge[e].Equal(busy[e]) {
			return fmt.Errorf("schedule: edge %d gets %v, needs %v", e, perEdge[e], busy[e])
		}
	}
	if slotTotal.Cmp(TR) > 0 {
		return fmt.Errorf("schedule: slots %v exceed period %v", slotTotal, TR)
	}
	return nil
}

// String renders a compact description.
func (mp *MulticastPeriodic) String() string {
	return fmt.Sprintf("multicast period T=%v, %v ops/period (TP %v) over %d trees, %d comm slots",
		mp.Period, mp.OpsPerPeriod, mp.Throughput, len(mp.Trees), len(mp.Slots))
}
