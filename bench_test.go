// Package repro's root benchmark harness: one benchmark per
// experiment of DESIGN.md §3 (each regenerates a figure or claim of
// the paper), plus kernel benchmarks for the substrates on the
// critical path (exact simplex, edge coloring, reconstruction,
// simulators).
//
// Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/pkg/steady"
	"repro/pkg/steady/batch"
)

// benchExperiment times a full experiment regeneration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for _, e := range experiments.Registry() {
		if e.ID != id {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Run(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown experiment %s", id)
}

func BenchmarkE1MasterSlave(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Scatter(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3Multicast(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4Broadcast(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5Asymptotic(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Startup(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7FixedPeriod(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8Adaptive(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9SendRecv(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10Discovery(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11DAG(b *testing.B)             { benchExperiment(b, "E11") }
func BenchmarkE12Collectives(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13Baselines(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14Solvers(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15Divisible(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16Multiport(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17GreedyMulticast(b *testing.B) { benchExperiment(b, "E17") }

// Kernel benchmarks: the building blocks, at growing platform sizes.

func randomPlatform(n int) *platform.Platform {
	rng := rand.New(rand.NewSource(int64(n)))
	return platform.RandomConnected(rng, n, n, 5, 5, 0.15)
}

func BenchmarkSolveMasterSlave8(b *testing.B)  { benchSolveMS(b, 8) }
func BenchmarkSolveMasterSlave16(b *testing.B) { benchSolveMS(b, 16) }
func BenchmarkSolveMasterSlave24(b *testing.B) { benchSolveMS(b, 24) }

func benchSolveMS(b *testing.B, n int) {
	p := randomPlatform(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveMasterSlave(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveScatter8(b *testing.B) {
	p := randomPlatform(8)
	targets := []int{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveScatter(p, 0, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct16(b *testing.B) {
	p := randomPlatform(16)
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Reconstruct(ms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeriodicSim100Periods(b *testing.B) {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPeriodicMasterSlave(per, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakespan100kTasks(b *testing.B) {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		b.Fatal(err)
	}
	n := big.NewInt(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.MakespanPeriods(per, n); err != nil {
			b.Fatal(err)
		}
	}
}

// Batch-engine benchmarks: 12 jobs over 6 distinct platforms through
// the pkg/steady/batch worker pool. Cold restarts the engine every
// iteration (every distinct platform solves its LP); Warm reuses one
// engine, so after the first iteration every job is a cache hit —
// the spread between the two is the cache's leverage.

func batchJobs(b *testing.B) []batch.Job {
	b.Helper()
	solver, err := steady.New(steady.Spec{Problem: "masterslave"})
	if err != nil {
		b.Fatal(err)
	}
	var jobs []batch.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, batch.Job{
			ID:       fmt.Sprintf("j%d", i),
			Platform: randomPlatform(8 + 2*(i%6)),
			Solver:   solver,
		})
	}
	return jobs
}

func runBatchBench(b *testing.B, eng func() *batch.Engine) {
	jobs := batchJobs(b)
	ctx := context.Background()
	shared := eng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := shared
		if e == nil {
			e = batch.New(4)
		}
		for _, o := range e.Run(ctx, jobs) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

func BenchmarkBatchEngineCold(b *testing.B) { runBatchBench(b, func() *batch.Engine { return nil }) }
func BenchmarkBatchEngineWarm(b *testing.B) {
	runBatchBench(b, func() *batch.Engine { return batch.New(4) })
}

func BenchmarkTreePackingFigure2(b *testing.B) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveTreePacking(p, src, targets); err != nil {
			b.Fatal(err)
		}
	}
}
