// Package repro's root benchmark harness: one benchmark per
// experiment of DESIGN.md §3 (each regenerates a figure or claim of
// the paper), plus kernel benchmarks for the substrates on the
// critical path (exact simplex, edge coloring, reconstruction,
// simulators).
//
// Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/schedule"
	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	serverpkg "repro/pkg/steady/server"
	simpkg "repro/pkg/steady/sim"
	"repro/pkg/steady/sim/event"
)

// benchExperiment times a full experiment regeneration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for _, e := range experiments.Registry() {
		if e.ID != id {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Run(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown experiment %s", id)
}

func BenchmarkE1MasterSlave(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Scatter(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3Multicast(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4Broadcast(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5Asymptotic(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Startup(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7FixedPeriod(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8Adaptive(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9SendRecv(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10Discovery(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11DAG(b *testing.B)             { benchExperiment(b, "E11") }
func BenchmarkE12Collectives(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13Baselines(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14Solvers(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15Divisible(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16Multiport(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17GreedyMulticast(b *testing.B) { benchExperiment(b, "E17") }

// Kernel benchmarks: the building blocks, at growing platform sizes.

func randomPlatform(n int) *platform.Platform {
	rng := rand.New(rand.NewSource(int64(n)))
	return platform.RandomConnected(rng, n, n, 5, 5, 0.15)
}

func BenchmarkSolveMasterSlave8(b *testing.B)  { benchSolveMS(b, 8) }
func BenchmarkSolveMasterSlave16(b *testing.B) { benchSolveMS(b, 16) }
func BenchmarkSolveMasterSlave24(b *testing.B) { benchSolveMS(b, 24) }

func benchSolveMS(b *testing.B, n int) {
	p := randomPlatform(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveMasterSlave(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveScatter8(b *testing.B) {
	p := randomPlatform(8)
	targets := []int{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveScatter(p, 0, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct16(b *testing.B) {
	p := randomPlatform(16)
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Reconstruct(ms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeriodicSim100Periods(b *testing.B) {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := per.EventSpec()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := event.RunPeriodic(spec, 100, event.PeriodicOptions{PerPeriod: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakespan100kTasks(b *testing.B) {
	p := platform.Figure1()
	ms, err := core.SolveMasterSlave(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := per.EventSpec()
	if err != nil {
		b.Fatal(err)
	}
	n := big.NewInt(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := event.RunUntil(spec, n, event.PeriodicOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Batch-engine benchmarks: 12 jobs over 6 distinct platforms through
// the pkg/steady/batch worker pool. Cold restarts the engine every
// iteration (every distinct platform solves its LP); Warm reuses one
// engine, so after the first iteration every job is a cache hit —
// the spread between the two is the cache's leverage.

func batchJobs(b *testing.B) []batch.Job {
	b.Helper()
	solver, err := steady.New(steady.Spec{Problem: "masterslave"})
	if err != nil {
		b.Fatal(err)
	}
	var jobs []batch.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, batch.Job{
			ID:       fmt.Sprintf("j%d", i),
			Platform: randomPlatform(8 + 2*(i%6)),
			Solver:   solver,
		})
	}
	return jobs
}

func runBatchBench(b *testing.B, eng func() *batch.Engine) {
	jobs := batchJobs(b)
	ctx := context.Background()
	shared := eng()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := shared
		if e == nil {
			e = batch.New(4)
		}
		for _, o := range e.Run(ctx, jobs) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

func BenchmarkBatchEngineCold(b *testing.B) { runBatchBench(b, func() *batch.Engine { return nil }) }
func BenchmarkBatchEngineWarm(b *testing.B) {
	runBatchBench(b, func() *batch.Engine { return batch.New(4) })
}

// Cache benchmarks: concurrent hot lookups against the LP-solution
// cache with one lock (shards=1, the pre-sharding design) versus the
// sharded layout. Run with -cpu to vary goroutine count; the sharded
// cache should pull ahead as goroutines grow (the acceptance bar is
// >= 8).

func benchCacheParallel(b *testing.B, shards int) {
	const nkeys = 512
	cache := batch.NewCache(shards, 0)
	res := &steady.Result{}
	solve := func() (*steady.Result, error) { return res, nil }
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = batch.Key(fmt.Sprintf("%064x", i), "bench")
		if _, err, _ := cache.Do(context.Background(), keys[i], solve); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(4) // 4 x GOMAXPROCS goroutines, so >= 8 even on 2 cores
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err, hit := cache.Do(ctx, keys[i%nkeys], solve); err != nil || !hit {
				b.Errorf("miss on a hot key (err=%v)", err)
				return
			}
			i++
		}
	})
}

func BenchmarkSingleLockCacheParallel(b *testing.B) { benchCacheParallel(b, 1) }
func BenchmarkShardedCacheParallel(b *testing.B) {
	benchCacheParallel(b, batch.DefaultCacheShards)
}

// Server benchmarks: a full POST /v1/solve round-trip through the
// HTTP service. Hot serves every request from the sharded cache
// (steady-state service traffic); Cold restarts the server each
// iteration so the LP really solves — the spread is what the cache
// buys an HTTP client.

func benchServerSolve(b *testing.B, hot bool) {
	// allocs/op spans client and server, so the absolute number is
	// dominated by the HTTP client; the hot-path pass (pooled response
	// encoders, interned cache keys) still reads directly off it:
	// 408 allocs/op, 30724 B/op before vs 402 allocs/op, 26757 B/op
	// after on the same box.
	b.ReportAllocs()
	var buf bytes.Buffer
	if err := platform.Figure1().WriteJSON(&buf); err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(serverpkg.SolveRequest{
		Problem: "masterslave", Root: "P1", Platform: buf.Bytes(),
	})
	if err != nil {
		b.Fatal(err)
	}
	newServer := func() *httptest.Server {
		return httptest.NewServer(serverpkg.New(serverpkg.Config{}).Handler())
	}
	post := func(ts *httptest.Server) {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}

	if hot {
		ts := newServer()
		defer ts.Close()
		post(ts) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(ts)
		}
		return
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := newServer()
		post(ts)
		ts.Close()
	}
}

func BenchmarkServerSolveHot(b *testing.B)  { benchServerSolve(b, true) }
func BenchmarkServerSolveCold(b *testing.B) { benchServerSolve(b, false) }

// Simulation-engine benchmarks: the public replay engine on a solved
// master-slave instance. Static measures the exact periodic replay
// (steady-state extrapolation makes the horizon nearly free — the
// cost is the transient); Dynamic measures the event-driven scenario
// path; Sweep measures a small scenario grid through the worker pool
// with a warm LP cache.

func simBenchResult(b *testing.B) *steady.Result {
	b.Helper()
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		b.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), platform.Figure1())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkSimEngineStatic(b *testing.B) {
	res := simBenchResult(b)
	eng := simpkg.New(simpkg.Config{})
	sc := simpkg.Scenario{Periods: 100000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), res, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimEngineDynamic(b *testing.B) {
	res := simBenchResult(b)
	eng := simpkg.New(simpkg.Config{})
	sc := simpkg.Scenario{
		Tasks:     1000,
		Slowdowns: []simpkg.Slowdown{{Node: "P2", Factor: 2, From: 50, Until: 200}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), res, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimEngineSweep(b *testing.B) {
	p := platform.Figure1()
	spec := steady.Spec{Problem: "masterslave", Root: "P1"}
	var cells []simpkg.Cell
	for i := 0; i < 8; i++ {
		cells = append(cells, simpkg.Cell{
			ID: fmt.Sprintf("c%d", i), Platform: p, Spec: spec,
			Scenario: simpkg.Scenario{Periods: int64(100 * (i + 1))},
		})
	}
	eng := simpkg.New(simpkg.Config{Workers: 4})
	// Warm the shared LP cache so the benchmark isolates simulation.
	if outs := eng.Sweep(context.Background(), cells[:1]); outs[0].Err != nil {
		b.Fatal(outs[0].Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range eng.Sweep(context.Background(), cells) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

// LP warm-start benchmarks: the pkg/steady/lp revised simplex
// re-solving a sweep family of structurally identical master-slave
// LPs, cold (every member from scratch) versus warm (each member
// from its predecessor's optimal basis). The pivots/solve metric is
// the acceptance measure: warm re-solves must use >= 5x fewer pivots
// (the tests enforce it; the benchmark records it in BENCH_PR6.json).

func warmFamilyPlatform(base *platform.Platform, step int64) *platform.Platform {
	q := platform.New()
	for i := 0; i < base.NumNodes(); i++ {
		w := base.Weight(i)
		if !w.Inf {
			w = platform.W(w.Val.Add(rat.New(step, 103)))
		}
		q.AddNode(base.Name(i), w)
	}
	for _, ed := range base.Edges() {
		q.AddEdge(ed.From, ed.To, ed.C.Add(rat.New(step, 101)))
	}
	return q
}

func BenchmarkLPColdVsWarm(b *testing.B) {
	const familySize = 8
	base := randomPlatform(16)
	family := make([]*platform.Platform, familySize)
	for step := range family {
		family[step] = warmFamilyPlatform(base, int64(step))
	}

	b.Run("Cold", func(b *testing.B) {
		pivots := 0
		for i := 0; i < b.N; i++ {
			for _, p := range family {
				ms, err := core.SolveMasterSlave(p, 0)
				if err != nil {
					b.Fatal(err)
				}
				pivots += ms.LP.Pivots
			}
		}
		b.ReportMetric(float64(pivots)/float64(b.N*familySize), "pivots/solve")
	})
	b.Run("Warm", func(b *testing.B) {
		pivots := 0
		for i := 0; i < b.N; i++ {
			var basis *lp.Basis
			for _, p := range family {
				ms, err := core.SolveMasterSlavePortOpts(p, 0, core.SendAndReceive, &lp.Options{WarmBasis: basis})
				if err != nil {
					b.Fatal(err)
				}
				pivots += ms.LP.Pivots
				basis = ms.Basis
			}
		}
		b.ReportMetric(float64(pivots)/float64(b.N*familySize), "pivots/solve")
	})
}

// BenchmarkLPFloatFirstCold is the float-first acceptance benchmark:
// one cold master-slave solve of a 100-node generated platform,
// pure-exact versus float-first (float64 search + exact basis
// certification). Both paths return byte-identical certified
// rationals; the spread in ns/op is what the float search buys. The
// acceptance bar is FloatFirst >= 5x faster than Exact at this size
// (the measured trajectory, ~20x, is recorded in BENCH_PR6.json; the
// exact engine refactors its rational basis on every pivot at this
// scale, while the float engine refactors every 64 pivots and pays
// rational arithmetic only for one install-and-verify pass).
func BenchmarkLPFloatFirstCold(b *testing.B) {
	p := randomPlatform(100)
	b.Run("Exact", func(b *testing.B) {
		pivots := 0
		for i := 0; i < b.N; i++ {
			ms, err := core.SolveMasterSlave(p, 0)
			if err != nil {
				b.Fatal(err)
			}
			pivots += ms.LP.Pivots
		}
		b.ReportMetric(float64(pivots)/float64(b.N), "pivots/solve")
	})
	b.Run("FloatFirst", func(b *testing.B) {
		floatPivots, repairPivots, fallbacks := 0, 0, 0
		for i := 0; i < b.N; i++ {
			ms, err := core.SolveMasterSlavePortOpts(p, 0, core.SendAndReceive, &lp.Options{FloatFirst: true})
			if err != nil {
				b.Fatal(err)
			}
			floatPivots += ms.LP.FloatPivots
			repairPivots += ms.LP.RepairPivots
			if ms.LP.CertifiedCold {
				fallbacks++
			}
		}
		b.ReportMetric(float64(floatPivots)/float64(b.N), "float_pivots/solve")
		b.ReportMetric(float64(repairPivots)/float64(b.N), "repair_pivots/solve")
		b.ReportMetric(float64(fallbacks)/float64(b.N), "fallbacks/solve")
	})
}

// BenchmarkSimAdaptiveWarm measures the §5.5 adaptive scenario whose
// per-epoch LP re-solves warm-start from the previous epoch's basis
// (internal/adaptive carries it); pivots/resolve is the recorded
// measure of what the carry-over buys the control loop.
func BenchmarkSimAdaptiveWarm(b *testing.B) {
	res := simBenchResult(b)
	eng := simpkg.New(simpkg.Config{})
	sc := simpkg.Scenario{
		Tasks:       1000,
		Adaptive:    true,
		EpochLength: 10,
		Slowdowns:   []simpkg.Slowdown{{Node: "P2", Factor: 2, From: 50, Until: 200}},
	}
	var pivots, resolves int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eng.Run(context.Background(), res, sc)
		if err != nil {
			b.Fatal(err)
		}
		pivots += rep.LPPivots
		resolves += int64(rep.Resolves)
	}
	if resolves > 0 {
		b.ReportMetric(float64(pivots)/float64(resolves), "pivots/resolve")
	}
}

func BenchmarkTreePackingFigure2(b *testing.B) {
	p := platform.Figure2()
	src := p.NodeByName("P0")
	targets := platform.Figure2Targets(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveTreePacking(p, src, targets); err != nil {
			b.Fatal(err)
		}
	}
}
