// Command steadybench load-tests a steadyd server or cluster: it
// fires a configurable mix of /v1/solve, /v1/simulate, and /v1/sweep
// requests over a hot set of platforms at a target rate (or flat out),
// tracks latency in logarithmic buckets, and — when the targets are
// clustered — scrapes /v1/cluster before and after to report the
// cluster-wide cache hit rate, forwarding, and basis-ship traffic the
// run generated.
//
// Usage:
//
//	steadybench -targets http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	    -duration 10s -conns 64 -mix solve=100 -platforms 16
//
//	steadybench -targets http://127.0.0.1:8080 -rate 5000 -mix solve=95,simulate=5 -json
//
// The platform hot set is seeded, so two runs against the same cluster
// hit the same cache keys; requests round-robin across targets, so on
// a cluster most land on a non-owner and exercise forwarding. A run is
// "hot-dominated" after the first pass over the hot set: every later
// solve is a cache hit on its owner (scripts/cluster_smoke.sh builds
// its throughput gate on exactly this).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/steady/platform"
)

// latBuckets are the histogram upper bounds in microseconds,
// log-spaced 1-2-5 so four decades of latency fit in numBuckets
// counters.
var latBuckets = [...]int64{
	100, 200, 500,
	1000, 2000, 5000,
	10000, 20000, 50000,
	100000, 200000, 500000,
	1000000,
}

const numBuckets = len(latBuckets)

// hist is one worker's latency histogram; workers record privately and
// the histograms merge after the run, so the hot path has no shared
// atomics beyond the pacing counter.
type hist struct {
	counts   [numBuckets + 1]int64 // +1: overflow
	n        int64
	sumUs    int64
	maxUs    int64
	statuses map[int]int64
}

func newHist() *hist { return &hist{statuses: map[int]int64{}} }

func (h *hist) observe(us int64, status int) {
	i := sort.Search(len(latBuckets), func(i int) bool { return latBuckets[i] >= us })
	h.counts[i]++
	h.n++
	h.sumUs += us
	if us > h.maxUs {
		h.maxUs = us
	}
	h.statuses[status]++
}

func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sumUs += o.sumUs
	if o.maxUs > h.maxUs {
		h.maxUs = o.maxUs
	}
	for s, c := range o.statuses {
		h.statuses[s] += c
	}
}

// quantile returns the upper bound of the bucket containing the q-th
// latency quantile, in microseconds (an upper estimate, never under).
func (h *hist) quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			if i < len(latBuckets) {
				return latBuckets[i]
			}
			return h.maxUs
		}
	}
	return h.maxUs
}

// clusterScrape is the slice of GET /v1/cluster steadybench reads —
// kept minimal so the tool keeps working as the endpoint grows.
type clusterScrape struct {
	Enabled  bool `json:"enabled"`
	Counters struct {
		Forwards        int64 `json:"forwards"`
		ForwardErrors   int64 `json:"forward_errors"`
		ForwardedServed int64 `json:"forwarded_served"`
		BasisShips      int64 `json:"basis_ships"`
	} `json:"counters"`
	Cache struct {
		Solves int64 `json:"solves"`
		Hits   int64 `json:"hits"`
	} `json:"cache"`
}

// report is the run summary, printed as text or (with -json) one JSON
// object for scripts to gate on.
type report struct {
	Targets     int     `json:"targets"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	DurationSec float64 `json:"duration_s"`
	RPS         float64 `json:"rps"`

	MeanUs int64 `json:"mean_us"`
	P50Us  int64 `json:"p50_us"`
	P90Us  int64 `json:"p90_us"`
	P99Us  int64 `json:"p99_us"`
	MaxUs  int64 `json:"max_us"`

	Statuses map[string]int64 `json:"statuses"`

	Cluster bool `json:"cluster"`
	// Deltas across the run, summed over all targets.
	Solves     int64   `json:"solves"`
	Hits       int64   `json:"hits"`
	HitRate    float64 `json:"hit_rate"`
	Forwards   int64   `json:"forwards"`
	FwdErrors  int64   `json:"forward_errors"`
	BasisShips int64   `json:"basis_ships"`
}

type job struct {
	path string
	body []byte
}

func main() {
	var (
		targets   = flag.String("targets", "http://127.0.0.1:8080", "comma-separated steadyd base URLs; requests round-robin across them")
		duration  = flag.Duration("duration", 10*time.Second, "how long to fire")
		conns     = flag.Int("conns", 64, "concurrent connections (worker goroutines)")
		rate      = flag.Float64("rate", 0, "target request rate per second across all workers (0 = open throttle)")
		mix       = flag.String("mix", "solve=100", "request mix as kind=weight, e.g. solve=90,simulate=8,sweep=2")
		nplat     = flag.Int("platforms", 16, "distinct platforms in the hot set")
		sizes     = flag.String("sizes", "6,8", "platform node counts, cycled")
		seed      = flag.Int64("seed", 1, "platform-generator seed (same seed, same cache keys)")
		problem   = flag.String("problem", "masterslave", "problem to solve")
		warmup    = flag.Duration("warmup", 0, "untimed warmup before measuring (0 = none)")
		jsonOut   = flag.Bool("json", false, "print the report as one JSON object")
		goBench   = flag.String("gobench", "", "print the report as one `go test -bench`-format line under this benchmark name (for cmd/benchjson trajectories)")
		sweepPlat = flag.Int("sweep-platforms", 4, "platforms per /v1/sweep request")
	)
	flag.Parse()

	tgts := splitList(*targets)
	if len(tgts) == 0 {
		log.Fatal("steadybench: no targets")
	}
	jobs, err := buildJobs(*mix, *problem, *nplat, *sweepPlat, *sizes, *seed)
	if err != nil {
		log.Fatalf("steadybench: %v", err)
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxConnsPerHost:     *conns,
			MaxIdleConnsPerHost: *conns,
			MaxIdleConns:        *conns * len(tgts),
			IdleConnTimeout:     90 * time.Second,
		},
		Timeout: 2 * time.Minute,
	}

	if *warmup > 0 {
		runPhase(client, tgts, jobs, *warmup, *conns, 0)
	}
	before := scrapeAll(client, tgts)

	start := time.Now()
	h := runPhase(client, tgts, jobs, *duration, *conns, *rate)
	elapsed := time.Since(start)

	after := scrapeAll(client, tgts)

	rep := report{
		Targets:     len(tgts),
		Requests:    h.n,
		DurationSec: elapsed.Seconds(),
		RPS:         float64(h.n) / elapsed.Seconds(),
		MeanUs:      mean(h),
		P50Us:       h.quantile(0.50),
		P90Us:       h.quantile(0.90),
		P99Us:       h.quantile(0.99),
		MaxUs:       h.maxUs,
		Statuses:    map[string]int64{},
	}
	for s, c := range h.statuses {
		rep.Statuses[strconv.Itoa(s)] = c
		if s == 0 || s >= 400 {
			rep.Errors += c
		}
	}
	for i := range tgts {
		if !after[i].Enabled {
			continue
		}
		rep.Cluster = true
		rep.Solves += after[i].Cache.Solves - before[i].Cache.Solves
		rep.Hits += after[i].Cache.Hits - before[i].Cache.Hits
		rep.Forwards += after[i].Counters.Forwards - before[i].Counters.Forwards
		rep.FwdErrors += after[i].Counters.ForwardErrors - before[i].Counters.ForwardErrors
		rep.BasisShips += after[i].Counters.BasisShips - before[i].Counters.BasisShips
	}
	if lookups := rep.Solves + rep.Hits; lookups > 0 {
		rep.HitRate = float64(rep.Hits) / float64(lookups)
	}

	if *goBench != "" {
		// One testing-package-shaped line, parseable by cmd/benchjson,
		// so cluster throughput/latency rides the same BENCH_PRn.json
		// trajectory as the Go benchmarks. Every unit here is
		// machine-dependent, hence informational in benchjson -diff.
		fmt.Printf("Benchmark%s\t%8d\t%d ns/op\t%.0f req/s\t%d p50-us\t%d p99-us\t%.3f hit-rate\t%d errors\n",
			*goBench, rep.Requests, rep.MeanUs*1000, rep.RPS,
			rep.P50Us, rep.P99Us, rep.HitRate, rep.Errors)
		return
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			log.Fatalf("steadybench: %v", err)
		}
		return
	}
	fmt.Printf("steadybench: %d requests in %.2fs = %.0f req/s (%d errors) across %d target(s)\n",
		rep.Requests, rep.DurationSec, rep.RPS, rep.Errors, rep.Targets)
	fmt.Printf("  latency: mean %s  p50 <=%s  p90 <=%s  p99 <=%s  max %s\n",
		us(rep.MeanUs), us(rep.P50Us), us(rep.P90Us), us(rep.P99Us), us(rep.MaxUs))
	fmt.Printf("  statuses: %v\n", rep.Statuses)
	if rep.Cluster {
		fmt.Printf("  cluster: hit rate %.1f%% (%d hits / %d solves)  forwards %d (%d errors)  basis ships %d\n",
			100*rep.HitRate, rep.Hits, rep.Solves, rep.Forwards, rep.FwdErrors, rep.BasisShips)
	}
}

func mean(h *hist) int64 {
	if h.n == 0 {
		return 0
	}
	return h.sumUs / h.n
}

func us(v int64) string { return time.Duration(v * int64(time.Microsecond)).String() }

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildJobs prebuilds every request body once: the workers' hot loop
// only picks a slice and POSTs it. The mix expands into a 100-slot
// schedule the workers cycle through, so a weight of 5 is exactly 5%.
func buildJobs(mix, problem string, nplat, sweepPlat int, sizesCSV string, seed int64) ([]job, error) {
	var sizes []int
	for _, s := range splitList(sizesCSV) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no platform sizes")
	}
	if nplat <= 0 {
		return nil, fmt.Errorf("platforms must be positive")
	}

	// The hot set: nplat distinct platforms, deterministically seeded.
	plats := make([]json.RawMessage, nplat)
	for i := range plats {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		n := sizes[i%len(sizes)]
		p := platform.RandomConnected(rng, n, n, 5, 5, 0.15)
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			return nil, err
		}
		plats[i] = json.RawMessage(buf.Bytes())
	}

	type kindSpec struct {
		weight int
		build  func(p json.RawMessage, i int) (string, any)
	}
	kinds := map[string]kindSpec{
		"solve": {build: func(p json.RawMessage, _ int) (string, any) {
			return "/v1/solve", map[string]any{"problem": problem, "platform": p}
		}},
		"simulate": {build: func(p json.RawMessage, _ int) (string, any) {
			return "/v1/simulate", map[string]any{
				"problem": problem, "platform": p,
				"scenario": map[string]any{"periods": 4},
			}
		}},
		"sweep": {build: func(_ json.RawMessage, i int) (string, any) {
			lo := i % nplat
			hi := lo + sweepPlat
			var family []json.RawMessage
			for j := lo; j < hi; j++ {
				family = append(family, plats[j%nplat])
			}
			return "/v1/sweep", map[string]any{"problem": problem, "platforms": family}
		}},
	}
	total := 0
	for _, part := range splitList(mix) {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix part %q (want kind=weight)", part)
		}
		spec, known := kinds[k]
		if !known {
			return nil, fmt.Errorf("unknown mix kind %q (solve|simulate|sweep)", k)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		spec.weight = w
		kinds[k] = spec
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", mix)
	}

	// One job per (mix slot, hot platform): the schedule interleaves
	// kinds at their weights and walks the hot set.
	var jobs []job
	names := []string{"solve", "simulate", "sweep"} // stable order
	for i := 0; i < nplat; i++ {
		for _, name := range names {
			spec := kinds[name]
			count := spec.weight * 100 / total
			if count == 0 {
				continue
			}
			path, body := spec.build(plats[i], i)
			raw, err := json.Marshal(body)
			if err != nil {
				return nil, err
			}
			for w := 0; w < count; w++ {
				jobs = append(jobs, job{path: path, body: raw})
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("mix %q built no requests", mix)
	}
	return jobs, nil
}

// runPhase fires jobs at the targets for d with nconns workers and an
// optional total rate cap, returning the merged latency histogram.
func runPhase(client *http.Client, targets []string, jobs []job, d time.Duration, nconns int, rate float64) *hist {
	deadline := time.Now().Add(d)
	var next atomic.Int64 // shared request sequence, for pacing + job/target selection
	var interval time.Duration
	start := time.Now()
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}

	hists := make([]*hist, nconns)
	var wg sync.WaitGroup
	for w := 0; w < nconns; w++ {
		h := newHist()
		hists[w] = h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				if interval > 0 {
					at := start.Add(time.Duration(n) * interval)
					if at.After(deadline) {
						return
					}
					if wait := time.Until(at); wait > 0 {
						time.Sleep(wait)
					}
				}
				if time.Now().After(deadline) {
					return
				}
				j := jobs[int(n)%len(jobs)]
				t := targets[int(n)%len(targets)]
				t0 := time.Now()
				status := doOne(client, t, j)
				h.observe(time.Since(t0).Microseconds(), status)
			}
		}()
	}
	wg.Wait()
	merged := newHist()
	for _, h := range hists {
		merged.merge(h)
	}
	return merged
}

// doOne POSTs one request and drains the response; status 0 means a
// transport error.
func doOne(client *http.Client, target string, j job) int {
	resp, err := client.Post(target+j.path, "application/json", bytes.NewReader(j.body))
	if err != nil {
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// scrapeAll reads every target's /v1/cluster; a failed or non-cluster
// scrape leaves Enabled false so single-node runs just skip the
// cluster section.
func scrapeAll(client *http.Client, targets []string) []clusterScrape {
	out := make([]clusterScrape, len(targets))
	for i, t := range targets {
		resp, err := client.Get(t + "/v1/cluster")
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out[i])
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return out
}
