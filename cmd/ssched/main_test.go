package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestMasterSlaveDefaultFigure1(t *testing.T) {
	out := runCLI(t, "-problem", "masterslave", "-master", "P1")
	if !strings.Contains(out, "ntask(G) = 4/3") {
		t.Fatalf("missing throughput:\n%s", out)
	}
	if !strings.Contains(out, "slot 0") {
		t.Fatalf("missing schedule slots:\n%s", out)
	}
}

func TestMulticastDefaultFigure2(t *testing.T) {
	out := runCLI(t, "-problem", "multicast", "-source", "P0", "-targets", "P5,P6")
	for _, want := range []string{
		"sum-LP (achievable)  TP = 1/2",
		"max-LP (upper bound) TP = 1",
		"exact tree packing   TP = 3/4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestScatterAndBroadcastAndReduce(t *testing.T) {
	if out := runCLI(t, "-problem", "scatter", "-source", "P1", "-targets", "P4,P5"); !strings.Contains(out, "TP = ") {
		t.Fatalf("scatter output:\n%s", out)
	}
	if out := runCLI(t, "-problem", "broadcast", "-source", "P0"); !strings.Contains(out, "broadcast TP = 1/2") {
		t.Fatalf("broadcast output:\n%s", out)
	}
	if out := runCLI(t, "-problem", "reduce", "-root", "P1"); !strings.Contains(out, "reduce TP = ") {
		t.Fatalf("reduce output:\n%s", out)
	}
}

func TestSendRecvFlag(t *testing.T) {
	out := runCLI(t, "-problem", "masterslave", "-master", "P1", "-sendrecv")
	if !strings.Contains(out, "send-or-receive") || !strings.Contains(out, "greedy general-graph schedule") {
		t.Fatalf("send-or-receive output:\n%s", out)
	}
}

func TestDOTOutput(t *testing.T) {
	out := runCLI(t, "-dot")
	if !strings.Contains(out, "digraph platform") {
		t.Fatalf("dot output:\n%s", out)
	}
}

func TestPlatformFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	json := `{"nodes":[{"name":"M","w":"2"},{"name":"W","w":"1"}],
	          "edges":[{"from":"M","to":"W","c":"1"}]}`
	if err := os.WriteFile(path, []byte(json), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-problem", "masterslave", "-master", "M", path)
	// 1/2 (master) + 1 (worker fully fed) = 3/2.
	if !strings.Contains(out, "ntask(G) = 3/2") {
		t.Fatalf("file platform output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-problem", "nope"},
		{"-problem", "masterslave", "-master", "ZZZ"},
		{"-problem", "scatter", "-source", "P1"},            // missing targets
		{"-problem", "scatter", "-targets", "ZZZ"},          // unknown target
		{"-problem", "masterslave", "/does/not/exist.json"}, // bad file
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
