// Command ssched solves steady-state scheduling problems on a
// platform description and prints the LP solution and, where the
// theory allows it (§4), the reconstructed periodic schedule.
//
// Usage:
//
//	ssched -problem masterslave -master P1 platform.json
//	ssched -problem scatter -source P1 -targets P4,P5,P6 platform.json
//	ssched -problem multicast -source P0 -targets P5,P6 platform.json
//	ssched -problem broadcast -source P0 platform.json
//	ssched -problem reduce -root P1 platform.json
//	ssched -dot platform.json            # emit Graphviz and exit
//
// With no file argument the paper's Figure 1 platform is used
// (Figure 2 for -problem multicast).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/schedule"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssched:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ssched", flag.ContinueOnError)
	problem := fs.String("problem", "masterslave", "masterslave|scatter|multicast|broadcast|reduce")
	master := fs.String("master", "", "master/root node name (default: first node)")
	source := fs.String("source", "", "source node name (default: first node)")
	root := fs.String("root", "", "reduce root node name (default: first node)")
	targets := fs.String("targets", "", "comma-separated target node names")
	sendrecv := fs.Bool("sendrecv", false, "use the send-OR-receive port model (§5.1.1)")
	dot := fs.Bool("dot", false, "print the platform in Graphviz DOT format and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := loadPlatform(fs.Args(), *problem)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(w, p.DOT())
		return nil
	}

	nodeByName := func(name string, fallback int) (int, error) {
		if name == "" {
			return fallback, nil
		}
		id := p.NodeByName(name)
		if id < 0 {
			return 0, fmt.Errorf("unknown node %q", name)
		}
		return id, nil
	}
	parseTargets := func() ([]int, error) {
		if *targets == "" {
			return nil, fmt.Errorf("-targets required for %s", *problem)
		}
		var out []int
		for _, name := range strings.Split(*targets, ",") {
			id := p.NodeByName(strings.TrimSpace(name))
			if id < 0 {
				return nil, fmt.Errorf("unknown target %q", name)
			}
			out = append(out, id)
		}
		return out, nil
	}

	pm := core.SendAndReceive
	if *sendrecv {
		pm = core.SendOrReceive
	}

	switch *problem {
	case "masterslave":
		m, err := nodeByName(*master, 0)
		if err != nil {
			return err
		}
		ms, err := core.SolveMasterSlavePort(p, m, pm)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ntask(G) = %v = %.6f tasks/time-unit (%s model)\n",
			ms.Throughput, ms.Throughput.Float64(), pm)
		for i := 0; i < p.NumNodes(); i++ {
			fmt.Fprintf(w, "  alpha[%s] = %v\n", p.Name(i), ms.Alpha[i])
		}
		for e := 0; e < p.NumEdges(); e++ {
			if ms.S[e].Sign() > 0 {
				ed := p.Edge(e)
				fmt.Fprintf(w, "  s[%s->%s] = %v\n", p.Name(ed.From), p.Name(ed.To), ms.S[e])
			}
		}
		if pm == core.SendAndReceive {
			per, err := schedule.Reconstruct(ms)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "schedule: %v\n", per)
			for i, s := range per.Slots {
				fmt.Fprintf(w, "  slot %d (dur %v):", i, s.Dur)
				for _, e := range s.Edges {
					ed := p.Edge(e)
					fmt.Fprintf(w, " %s->%s", p.Name(ed.From), p.Name(ed.To))
				}
				fmt.Fprintln(w)
			}
		} else {
			ev, err := schedule.EvaluateSendRecv(ms)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "greedy general-graph schedule: achieved %v of bound %v (%d slots)\n",
				ev.Achieved, ev.Bound, ev.Slots)
		}
	case "scatter":
		s, err := nodeByName(*source, 0)
		if err != nil {
			return err
		}
		tg, err := parseTargets()
		if err != nil {
			return err
		}
		sc, err := core.SolveScatterPort(p, s, tg, pm)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "TP = %v = %.6f scatters/time-unit\n", sc.Throughput, sc.Throughput.Float64())
		if pm == core.SendAndReceive {
			sp, err := schedule.ReconstructScatter(sc)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "schedule: %v\n", sp)
		}
	case "multicast":
		s, err := nodeByName(*source, 0)
		if err != nil {
			return err
		}
		tg, err := parseTargets()
		if err != nil {
			return err
		}
		sum, err := core.SolveMulticastSum(p, s, tg)
		if err != nil {
			return err
		}
		bound, err := core.SolveMulticastBound(p, s, tg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "sum-LP (achievable)  TP = %v\n", sum.Throughput)
		fmt.Fprintf(w, "max-LP (upper bound) TP = %v\n", bound.Throughput)
		if p.NumEdges() <= 24 {
			pack, err := core.SolveTreePacking(p, s, tg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "exact tree packing   TP = %v (%d trees)\n", pack.Throughput, pack.NumTrees)
		} else {
			fmt.Fprintf(w, "exact tree packing skipped (platform too large; the problem is NP-hard)\n")
		}
	case "broadcast":
		s, err := nodeByName(*source, 0)
		if err != nil {
			return err
		}
		b, err := core.SolveBroadcastBound(p, s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "broadcast TP = %v (achievable per [5])\n", b.Throughput)
	case "reduce":
		r, err := nodeByName(*root, 0)
		if err != nil {
			return err
		}
		red, err := core.SolveReduceBound(p, r)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "reduce TP = %v\n", red.Throughput)
	default:
		return fmt.Errorf("unknown problem %q", *problem)
	}
	return nil
}

func loadPlatform(args []string, problem string) (*platform.Platform, error) {
	if len(args) == 0 {
		if problem == "multicast" || problem == "broadcast" {
			return platform.Figure2(), nil
		}
		return platform.Figure1(), nil
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return platform.ReadJSON(f)
}
