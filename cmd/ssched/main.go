// Command ssched solves steady-state scheduling problems on a
// platform description and prints the LP solution and, where the
// theory allows it (§4), the reconstructed periodic schedule. It is a
// thin shell over the pkg/steady facade.
//
// Usage:
//
//	ssched -problem masterslave -master P1 platform.json
//	ssched -problem scatter -source P1 -targets P4,P5,P6 platform.json
//	ssched -problem multicast -source P0 -targets P5,P6 platform.json
//	ssched -problem broadcast -source P0 platform.json
//	ssched -problem reduce -root P1 platform.json
//	ssched -dot platform.json            # emit Graphviz and exit
//
// With no file argument the paper's Figure 1 platform is used
// (Figure 2 for -problem multicast).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssched:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ssched", flag.ContinueOnError)
	problem := fs.String("problem", "masterslave", "masterslave|scatter|multicast|broadcast|reduce")
	master := fs.String("master", "", "master/root node name (default: first node)")
	source := fs.String("source", "", "source node name (default: first node)")
	root := fs.String("root", "", "reduce root node name (default: first node)")
	targets := fs.String("targets", "", "comma-separated target node names")
	sendrecv := fs.Bool("sendrecv", false, "use the send-OR-receive port model (§5.1.1)")
	dot := fs.Bool("dot", false, "print the platform in Graphviz DOT format and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := loadPlatform(fs.Args(), *problem)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(w, p.DOT())
		return nil
	}

	model := steady.SendAndReceive
	if *sendrecv {
		model = steady.SendOrReceive
	}
	ctx := context.Background()

	// One helper per facade call: build the solver for this problem
	// family and run it on the loaded platform.
	solve := func(spec steady.Spec) (*steady.Result, error) {
		solver, err := steady.New(spec)
		if err != nil {
			return nil, err
		}
		return solver.Solve(ctx, p)
	}
	splitTargets := func() ([]string, error) {
		if *targets == "" {
			return nil, fmt.Errorf("-targets required for %s", *problem)
		}
		return strings.Split(*targets, ","), nil
	}

	switch *problem {
	case "masterslave":
		res, err := solve(steady.Spec{Problem: "masterslave", Root: *master, Model: model})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ntask(G) = %v = %.6f tasks/time-unit (%s model)\n",
			res.Throughput, res.ThroughputFloat(), res.Model)
		for _, n := range res.Nodes {
			fmt.Fprintf(w, "  alpha[%s] = %v\n", n.Name, n.Alpha)
		}
		for _, l := range res.Links {
			if l.Busy.Sign() > 0 {
				fmt.Fprintf(w, "  s[%s->%s] = %v\n", l.From, l.To, l.Busy)
			}
		}
		if model == steady.SendAndReceive {
			sch, err := res.Reconstruct()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "schedule: %s\n", sch.Summary)
			for i, s := range sch.Slots {
				fmt.Fprintf(w, "  slot %d (dur %v):", i, s.Dur)
				for _, l := range s.Links {
					fmt.Fprintf(w, " %s->%s", l[0], l[1])
				}
				fmt.Fprintln(w)
			}
		} else {
			ev, err := res.EvaluateGreedy()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "greedy general-graph schedule: achieved %v of bound %v (%d slots)\n",
				ev.Achieved, ev.Bound, ev.Slots)
		}
	case "scatter":
		tg, err := splitTargets()
		if err != nil {
			return err
		}
		res, err := solve(steady.Spec{Problem: "scatter", Root: *source, Targets: tg, Model: model})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "TP = %v = %.6f scatters/time-unit\n", res.Throughput, res.ThroughputFloat())
		if model == steady.SendAndReceive {
			sch, err := res.Reconstruct()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "schedule: %s\n", sch.Summary)
		}
	case "multicast":
		tg, err := splitTargets()
		if err != nil {
			return err
		}
		sum, err := solve(steady.Spec{Problem: "multicast-sum", Root: *source, Targets: tg})
		if err != nil {
			return err
		}
		bound, err := solve(steady.Spec{Problem: "multicast", Root: *source, Targets: tg})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "sum-LP (achievable)  TP = %v\n", sum.Throughput)
		fmt.Fprintf(w, "max-LP (upper bound) TP = %v\n", bound.Throughput)
		if p.NumEdges() <= 24 {
			pack, err := solve(steady.Spec{Problem: "multicast-trees", Root: *source, Targets: tg})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "exact tree packing   TP = %v (%d trees)\n", pack.Throughput, pack.Trees)
		} else {
			fmt.Fprintf(w, "exact tree packing skipped (platform too large; the problem is NP-hard)\n")
		}
	case "broadcast":
		res, err := solve(steady.Spec{Problem: "broadcast", Root: *source})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "broadcast TP = %v (achievable per [5])\n", res.Throughput)
	case "reduce":
		res, err := solve(steady.Spec{Problem: "reduce", Root: *root})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "reduce TP = %v\n", res.Throughput)
	default:
		return fmt.Errorf("unknown problem %q", *problem)
	}
	return nil
}

func loadPlatform(args []string, problem string) (*platform.Platform, error) {
	if len(args) == 0 {
		if problem == "multicast" || problem == "broadcast" {
			return platform.Figure2(), nil
		}
		return platform.Figure1(), nil
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return platform.ReadJSON(f)
}
