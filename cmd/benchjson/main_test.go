package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE1MasterSlave-8          	       1	  1804876 ns/op
BenchmarkLPColdVsWarm/Cold-8      	       5	   3329565 ns/op	        20.00 pivots/solve
BenchmarkLPColdVsWarm/Warm-8      	       5	   1945626 ns/op	         2.500 pivots/solve
BenchmarkSimAdaptiveWarm          	       5	   8897509 ns/op	         0.1600 pivots/resolve
BenchmarkShardedCacheParallel-8   	 5619front	garbage line
PASS
ok  	repro	0.094s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	e1 := byName["E1MasterSlave"]
	if e1.Iterations != 1 || e1.NsPerOp != 1804876 {
		t.Fatalf("E1 = %+v", e1)
	}
	cold := byName["LPColdVsWarm/Cold"]
	if cold.NsPerOp != 3329565 || cold.Pivots != 20 {
		t.Fatalf("cold = %+v", cold)
	}
	warm := byName["LPColdVsWarm/Warm"]
	if warm.Pivots != 2.5 || warm.Metrics["pivots/solve"] != 2.5 {
		t.Fatalf("warm = %+v", warm)
	}
	// No -GOMAXPROCS suffix on this one: name must survive intact.
	ad := byName["SimAdaptiveWarm"]
	if ad.Pivots != 0.16 {
		t.Fatalf("adaptive = %+v", ad)
	}
}

func TestDiff(t *testing.T) {
	base := []Result{
		{Name: "LPColdVsWarm/Cold", NsPerOp: 3e6, Metrics: map[string]float64{"ns/op": 3e6, "pivots/solve": 20}},
		{Name: "LPFloatFirstCold/FloatFirst", NsPerOp: 9e6, Metrics: map[string]float64{"ns/op": 9e6, "float_pivots/solve": 106, "fallbacks/solve": 0}},
	}
	clone := func() []Result {
		out := make([]Result, len(base))
		for i, b := range base {
			m := map[string]float64{}
			for k, v := range b.Metrics {
				m[k] = v
			}
			out[i] = Result{Name: b.Name, NsPerOp: b.NsPerOp, Metrics: m}
		}
		return out
	}

	var buf strings.Builder
	if !Diff(&buf, base, clone()) {
		t.Fatalf("identical run failed the diff:\n%s", buf.String())
	}

	// ns/op movement alone is informational, never a failure.
	run := clone()
	run[0].NsPerOp *= 10
	run[0].Metrics["ns/op"] *= 10
	buf.Reset()
	if !Diff(&buf, base, run) {
		t.Fatalf("ns/op drift failed the diff:\n%s", buf.String())
	}

	// A pivot metric drifting is a failure.
	run = clone()
	run[0].Metrics["pivots/solve"] = 21
	buf.Reset()
	if Diff(&buf, base, run) {
		t.Fatal("pivot drift passed the diff")
	}
	if !strings.Contains(buf.String(), "drifted 20 -> 21") {
		t.Fatalf("drift report missing:\n%s", buf.String())
	}

	// So is a fallback count appearing where the baseline had none.
	run = clone()
	run[1].Metrics["fallbacks/solve"] = 1
	if Diff(&strings.Builder{}, base, run) {
		t.Fatal("fallback drift passed the diff")
	}

	// A baseline benchmark missing from the run is a failure ...
	buf.Reset()
	if Diff(&buf, base, clone()[:1]) {
		t.Fatal("missing benchmark passed the diff")
	}
	if !strings.Contains(buf.String(), "missing from this run") {
		t.Fatalf("missing-bench report absent:\n%s", buf.String())
	}

	// ... but a benchmark new in the run is only informational.
	run = append(clone(), Result{Name: "Brand/New", NsPerOp: 1, Metrics: map[string]float64{"ns/op": 1}})
	buf.Reset()
	if !Diff(&buf, base, run) {
		t.Fatalf("new benchmark failed the diff:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "new benchmark Brand/New") {
		t.Fatalf("new-bench note absent:\n%s", buf.String())
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \trepro\t0.094s",
		"BenchmarkOnly",
		"BenchmarkX-8\tnotanumber\t12 ns/op",
		"BenchmarkX-8\t5\t12 widgets", // no ns/op
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
