package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE1MasterSlave-8          	       1	  1804876 ns/op
BenchmarkLPColdVsWarm/Cold-8      	       5	   3329565 ns/op	        20.00 pivots/solve
BenchmarkLPColdVsWarm/Warm-8      	       5	   1945626 ns/op	         2.500 pivots/solve
BenchmarkSimAdaptiveWarm          	       5	   8897509 ns/op	         0.1600 pivots/resolve
BenchmarkShardedCacheParallel-8   	 5619front	garbage line
PASS
ok  	repro	0.094s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	e1 := byName["E1MasterSlave"]
	if e1.Iterations != 1 || e1.NsPerOp != 1804876 {
		t.Fatalf("E1 = %+v", e1)
	}
	cold := byName["LPColdVsWarm/Cold"]
	if cold.NsPerOp != 3329565 || cold.Pivots != 20 {
		t.Fatalf("cold = %+v", cold)
	}
	warm := byName["LPColdVsWarm/Warm"]
	if warm.Pivots != 2.5 || warm.Metrics["pivots/solve"] != 2.5 {
		t.Fatalf("warm = %+v", warm)
	}
	// No -GOMAXPROCS suffix on this one: name must survive intact.
	ad := byName["SimAdaptiveWarm"]
	if ad.Pivots != 0.16 {
		t.Fatalf("adaptive = %+v", ad)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \trepro\t0.094s",
		"BenchmarkOnly",
		"BenchmarkX-8\tnotanumber\t12 ns/op",
		"BenchmarkX-8\t5\t12 widgets", // no ns/op
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
