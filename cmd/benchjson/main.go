// Command benchjson converts `go test -bench` output into a
// machine-readable JSON record of the performance trajectory: one
// entry per benchmark with its name, ns/op, and any custom metrics
// (the LP benchmarks report pivots/solve and pivots/resolve). CI
// pipes the bench-smoke job through it and archives the result as
// BENCH_PR4.json, so perf regressions are visible in history instead
// of scrolling away in a log.
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	results, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(results))
}

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix or
	// the -GOMAXPROCS suffix (e.g. "LPColdVsWarm/Warm").
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// Pivots is the pivots/solve or pivots/resolve custom metric of
	// the LP benchmarks, when present.
	Pivots float64 `json:"pivots,omitempty"`
	// Metrics holds every reported unit (ns/op and pivots included),
	// keyed by unit name.
	Metrics map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output and extracts every benchmark
// line; non-benchmark lines (package headers, PASS/ok) are skipped.
func Parse(r io.Reader) ([]Result, error) {
	results := []Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseLine parses one "BenchmarkName-8  N  V unit  V unit ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields[0]) <= len("Benchmark") || fields[0][:len("Benchmark")] != "Benchmark" {
		return Result{}, false
	}
	name := fields[0][len("Benchmark"):]
	// Strip the -GOMAXPROCS suffix, if any.
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c == '-' {
			name = name[:i]
			break
		}
		if c < '0' || c > '9' {
			break
		}
	}
	var iters int64
	if _, err := fmt.Sscanf(fields[1], "%d", &iters); err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates "value unit".
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		res.Metrics[unit] = v
		switch unit {
		case "ns/op":
			res.NsPerOp = v
		case "pivots/solve", "pivots/resolve", "pivots":
			res.Pivots = v
		}
	}
	if _, ok := res.Metrics["ns/op"]; !ok {
		return Result{}, false
	}
	return res, true
}
