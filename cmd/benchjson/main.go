// Command benchjson converts `go test -bench` output into a
// machine-readable JSON record of the performance trajectory: one
// entry per benchmark with its name, ns/op, and any custom metrics
// (the LP benchmarks report pivots/solve and pivots/resolve). CI
// pipes the bench-smoke job through it and archives the result as
// BENCH_PR6.json, so perf regressions are visible in history instead
// of scrolling away in a log.
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson -out BENCH.json
//
// With -diff, the fresh run is compared against a checked-in
// baseline: a benchmark that exists in the baseline but not in the
// run fails the diff (a bench silently rotted away), as does drift in
// any deterministic trajectory metric (pivot and fallback counts —
// those are properties of the algorithm, not the machine). ns/op is
// reported but never gated: CI runners are too noisy to assert on
// wall time.
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson -diff BENCH_PR6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	diff := flag.String("diff", "", "baseline JSON to diff the run against: fail on missing benchmarks or pivot-metric drift (ns/op stays informational)")
	flag.Parse()

	results, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *diff != "" {
		f, err := os.Open(*diff)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var base []Result
		err = json.NewDecoder(f).Decode(&base)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *diff, err)
			os.Exit(1)
		}
		if !Diff(os.Stderr, base, results) {
			os.Exit(1)
		}
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(results))
}

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix or
	// the -GOMAXPROCS suffix (e.g. "LPColdVsWarm/Warm").
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// Pivots is the pivots/solve or pivots/resolve custom metric of
	// the LP benchmarks, when present.
	Pivots float64 `json:"pivots,omitempty"`
	// Metrics holds every reported unit (ns/op and pivots included),
	// keyed by unit name.
	Metrics map[string]float64 `json:"metrics"`
}

// gatedUnit reports whether a metric unit is a deterministic
// trajectory metric that -diff must hold fixed. Pivot and fallback
// counts are functions of the platform seeds and the (deterministic)
// pivot rules; they cannot legitimately drift without a code change
// that should also regenerate the baseline.
func gatedUnit(unit string) bool {
	return strings.Contains(unit, "pivots") || strings.Contains(unit, "fallbacks")
}

// Diff compares a fresh run against a baseline, writing a report to
// w. It returns false — the diff fails — when a baseline benchmark is
// missing from the run or a gated metric drifted. Benchmarks new in
// the run and ns/op movement are reported but never fail the diff.
func Diff(w io.Writer, base, run []Result) bool {
	byName := map[string]Result{}
	for _, r := range run {
		byName[r.Name] = r
	}
	ok := true
	for _, b := range base {
		r, found := byName[b.Name]
		if !found {
			fmt.Fprintf(w, "benchjson: FAIL %s: in baseline but missing from this run\n", b.Name)
			ok = false
			continue
		}
		for unit, want := range b.Metrics {
			if !gatedUnit(unit) {
				continue
			}
			got, has := r.Metrics[unit]
			switch {
			case !has:
				fmt.Fprintf(w, "benchjson: FAIL %s: metric %s gone (baseline %g)\n", b.Name, unit, want)
				ok = false
			case got != want:
				fmt.Fprintf(w, "benchjson: FAIL %s: %s drifted %g -> %g\n", b.Name, unit, want, got)
				ok = false
			}
		}
		if b.NsPerOp > 0 && r.NsPerOp > 0 {
			fmt.Fprintf(w, "benchjson: %s ns/op %.0f -> %.0f (%.2fx, informational)\n",
				b.Name, b.NsPerOp, r.NsPerOp, r.NsPerOp/b.NsPerOp)
		}
	}
	inBase := map[string]bool{}
	for _, b := range base {
		inBase[b.Name] = true
	}
	for _, r := range run {
		if !inBase[r.Name] {
			fmt.Fprintf(w, "benchjson: new benchmark %s (not in baseline)\n", r.Name)
		}
	}
	return ok
}

// Parse reads `go test -bench` output and extracts every benchmark
// line; non-benchmark lines (package headers, PASS/ok) are skipped.
func Parse(r io.Reader) ([]Result, error) {
	results := []Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseLine parses one "BenchmarkName-8  N  V unit  V unit ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields[0]) <= len("Benchmark") || fields[0][:len("Benchmark")] != "Benchmark" {
		return Result{}, false
	}
	name := fields[0][len("Benchmark"):]
	// Strip the -GOMAXPROCS suffix, if any.
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c == '-' {
			name = name[:i]
			break
		}
		if c < '0' || c > '9' {
			break
		}
	}
	var iters int64
	if _, err := fmt.Sscanf(fields[1], "%d", &iters); err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates "value unit".
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		res.Metrics[unit] = v
		switch unit {
		case "ns/op":
			res.NsPerOp = v
		case "pivots/solve", "pivots/resolve", "pivots":
			res.Pivots = v
		}
	}
	if _, ok := res.Metrics["ns/op"]; !ok {
		return Result{}, false
	}
	return res, true
}
