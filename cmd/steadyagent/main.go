// Command steadyagent drives a steadyd control-plane deployment the
// way a cluster-side monitoring daemon would: it registers a platform
// under POST /v1/deployments, then streams cost telemetry at the
// daemon every -interval while watching the deployment's epoch stream
// (GET /v1/deployments/{id}/watch). Halfway through the run (round
// -shift-at) the observed cost of one edge shifts by -shift-factor —
// an NWS-style bandwidth change — and the agent waits for the control
// plane to notice the drift and publish a re-solved epoch. On success
// it prints the deployment's final snapshot JSON to stdout and exits
// 0; if no drift epoch arrives before -timeout it exits 1.
//
// Usage:
//
//	steadyagent                          # demo 3-node star against :8080
//	steadyagent -addr http://host:8080 -id prod -platform p.json \
//	            -shift-edge P1:P2 -shift-factor 1.5 -interval 200ms
//
// scripts/control_smoke.sh builds the CI gate on top of this command.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "steadyd base URL")
		id       = flag.String("id", "agent-demo", "deployment id")
		problem  = flag.String("problem", "masterslave", "problem to keep solved")
		root     = flag.String("root", "", "root node name (empty = platform's first node)")
		model    = flag.String("model", "", "port model (empty = send-and-receive)")
		platFile = flag.String("platform", "", "platform JSON file (empty = built-in 3-node demo star)")
		interval = flag.Duration("interval", 200*time.Millisecond, "telemetry period")
		rounds   = flag.Int("rounds", 10, "telemetry rounds to send")
		shiftAt  = flag.Int("shift-at", 5, "round at which the observed edge cost shifts")
		shiftEdg = flag.String("shift-edge", "", "edge whose cost shifts, as from:to (empty = the platform's first edge)")
		shiftFac = flag.Float64("shift-factor", 1.5, "multiplier applied to the shifted edge's observed cost")
		timeout  = flag.Duration("timeout", 30*time.Second, "max wall time to wait for the drift epoch")
		verbose  = flag.Bool("v", false, "log every epoch and telemetry batch")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("steadyagent: ")

	p, err := loadPlatform(*platFile)
	if err != nil {
		log.Fatal(err)
	}
	shiftFrom, shiftTo, err := resolveShiftEdge(p, *shiftEdg)
	if err != nil {
		log.Fatal(err)
	}

	if err := createDeployment(*addr, *id, *problem, *root, *model, p); err != nil {
		log.Fatalf("create deployment: %v", err)
	}
	log.Printf("registered deployment %q (%s), shifting %s>%s x%g at round %d",
		*id, *problem, shiftFrom, shiftTo, *shiftFac, *shiftAt)

	// The watch stream runs concurrently with the telemetry loop;
	// drifted reports the first re-solved epoch.
	drifted := make(chan epoch, 1)
	go watch(*addr, *id, *verbose, drifted)

	deadline := time.Now().Add(*timeout)
	for i := 0; i < *rounds; i++ {
		obs := observationsFor(p, shiftFrom, shiftTo, i >= *shiftAt, *shiftFac)
		if err := postTelemetry(*addr, *id, obs); err != nil {
			log.Fatalf("telemetry round %d: %v", i, err)
		}
		if *verbose {
			log.Printf("round %d: sent %d observations (shifted=%v)", i, len(obs), i >= *shiftAt)
		}
		time.Sleep(*interval)
	}

	select {
	case ep := <-drifted:
		log.Printf("drift epoch v%d: throughput %s, warm=%v, pivots=%d, cache_hit=%v",
			ep.Version, ep.Throughput, ep.WarmStarted, ep.Pivots, ep.CacheHit)
	case <-time.After(time.Until(deadline)):
		log.Fatalf("no drift epoch within %v", *timeout)
	}

	snap, err := getJSON(*addr + "/v1/deployments/" + *id)
	if err != nil {
		log.Fatalf("final snapshot: %v", err)
	}
	os.Stdout.Write(snap)
}

// epoch is the slice of control.Epoch the agent cares about (decoding
// into a local struct keeps the command free of non-stdlib imports
// beyond the platform codec).
type epoch struct {
	Version     uint64 `json:"version"`
	Reason      string `json:"reason"`
	Throughput  string `json:"throughput"`
	WarmStarted bool   `json:"warm_started"`
	CacheHit    bool   `json:"cache_hit"`
	Pivots      int    `json:"pivots"`
}

// loadPlatform reads the platform file, or builds the demo star used
// across the control-plane tests and docs: master P1 (w=1), workers
// P2 (w=2, c=1) and P3 (w=3, c=2).
func loadPlatform(path string) (*platform.Platform, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return platform.ReadJSON(f)
	}
	p := platform.New()
	p1 := p.AddNode("P1", platform.WInt(1))
	p2 := p.AddNode("P2", platform.WInt(2))
	p3 := p.AddNode("P3", platform.WInt(3))
	p.AddEdge(p1, p2, rat.FromInt(1))
	p.AddEdge(p1, p3, rat.FromInt(2))
	return p, nil
}

func resolveShiftEdge(p *platform.Platform, spec string) (string, string, error) {
	if spec == "" {
		if p.NumEdges() == 0 {
			return "", "", fmt.Errorf("platform has no edges to shift")
		}
		e := p.Edge(0)
		return p.Name(e.From), p.Name(e.To), nil
	}
	from, to, ok := strings.Cut(spec, ":")
	if !ok {
		return "", "", fmt.Errorf("bad -shift-edge %q (want from:to)", spec)
	}
	return from, to, nil
}

// observationsFor reports every finite node weight and every edge
// cost at its nominal value — except the shifted edge, whose observed
// cost is nominal times factor once shifted is true.
func observationsFor(p *platform.Platform, shiftFrom, shiftTo string, shifted bool, factor float64) []map[string]any {
	var obs []map[string]any
	for i := 0; i < p.NumNodes(); i++ {
		if w := p.Weight(i); !w.Inf {
			obs = append(obs, map[string]any{"node": p.Name(i), "value": w.Val.Float64()})
		}
	}
	for _, e := range p.Edges() {
		v := e.C.Float64()
		if shifted && p.Name(e.From) == shiftFrom && p.Name(e.To) == shiftTo {
			v *= factor
		}
		obs = append(obs, map[string]any{"from": p.Name(e.From), "to": p.Name(e.To), "value": v})
	}
	return obs
}

func createDeployment(addr, id, problem, root, model string, p *platform.Platform) error {
	var pj bytes.Buffer
	if err := p.WriteJSON(&pj); err != nil {
		return err
	}
	req := map[string]any{"id": id, "problem": problem, "platform": json.RawMessage(pj.Bytes())}
	if root != "" {
		req["root"] = root
	}
	if model != "" {
		req["model"] = model
	}
	return postJSON(addr+"/v1/deployments", req)
}

func postTelemetry(addr, id string, obs []map[string]any) error {
	return postJSON(addr+"/v1/deployments/"+id+"/telemetry", map[string]any{"observations": obs})
}

func postJSON(url string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(buf.Bytes()))
	}
	return nil
}

func getJSON(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(buf.Bytes()))
	}
	return buf.Bytes(), nil
}

// watch tails the deployment's SSE epoch stream, sending the first
// epoch whose reason is "drift" (the re-solve the shift must provoke)
// to out. Stream errors are fatal only for the initial connect; a
// later drop just stops the tail (the main loop's timeout decides).
func watch(addr, id string, verbose bool, out chan<- epoch) {
	resp, err := http.Get(addr + "/v1/deployments/" + id + "/watch")
	if err != nil {
		log.Fatalf("watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("watch: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ep epoch
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ep); err != nil {
			continue
		}
		if verbose {
			log.Printf("epoch v%d (%s): throughput %s", ep.Version, ep.Reason, ep.Throughput)
		}
		if ep.Reason == "drift" {
			select {
			case out <- ep:
			default:
			}
		}
	}
}
