// Command steadyd serves the steady-state solver registry over HTTP:
// POST a platform to /v1/solve (or a platform family to /v1/sweep)
// and get certified exact-rational steady-state solutions back, or
// POST a platform plus a scenario to /v1/simulate (a family to
// /v1/simsweep) to replay the reconstructed schedule in simulated
// time, or register a platform under POST /v1/deployments and stream
// telemetry at it to keep a certified schedule continuously re-solved
// as the platform drifts (§5.5 adaptive scheduling; watch epochs on
// GET /v1/deployments/{id}/watch, drive it with cmd/steadyagent). See
// docs/API.md for the endpoint reference.
//
// Usage:
//
//	steadyd                             # listen on :8080 with defaults
//	steadyd -addr :9090 -workers 8 -cache-bound 65536
//	steadyd -max-nodes 32 -solve-timeout 10s -max-inflight 4
//	steadyd -pprof-addr localhost:6060  # profiling on a side listener
//	steadyd -metrics=false              # no /metrics, zero overhead
//
// Several steadyd processes form one horizontally scaled service when
// every one is started with the same -peers list and its own -self:
//
//	steadyd -addr :8081 -self http://127.0.0.1:8081 \
//	        -peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// A consistent-hash ring assigns every (platform, solver) pair an
// owning peer; /v1/solve requests for keys owned elsewhere are
// forwarded one hop to the owner, so the cluster shares one cache
// entry and one in-flight solve per key. GET /v1/cluster shows the
// membership and traffic counters. See docs/ARCHITECTURE.md.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests finish (up to the shutdown grace period), new connections
// are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/pkg/steady/cluster"
	"repro/pkg/steady/control"
	"repro/pkg/steady/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		shards     = flag.Int("cache-shards", 0, "LP-solution cache shards (0 = default)")
		bound      = flag.Int("cache-bound", 0, "LP-solution cache capacity in entries (0 = default, <0 = unbounded)")
		maxNodes   = flag.Int("max-nodes", 0, "largest accepted platform, in nodes (0 = default)")
		maxEdges   = flag.Int("max-edges", 0, "largest accepted platform, in edges (0 = default)")
		maxSweep   = flag.Int("max-sweep", 0, "largest accepted sweep, in platforms (0 = default)")
		timeout    = flag.Duration("solve-timeout", 0, "per-solve time limit (0 = default 30s)")
		inflight   = flag.Int("max-inflight", 0, "max concurrently running solves (0 = default)")
		bodyLimit  = flag.Int64("max-body", 0, "max request body bytes (0 = default 8 MiB)")
		simTimeout = flag.Duration("sim-timeout", 0, "per-simulation time limit (0 = default 30s)")
		simPeriods = flag.Int64("max-sim-periods", 0, "largest accepted replay horizon, in periods (0 = default)")
		simTasks   = flag.Int("max-sim-tasks", 0, "largest accepted dynamic-scenario task count (0 = default)")
		simHorizon = flag.Float64("max-sim-horizon", 0, "largest accepted dynamic-scenario horizon, in time units (0 = default)")
		simTrace   = flag.Int("max-trace-events", 0, "largest event trace a traced /v1/simulate may return (0 = default)")
		grace      = flag.Duration("grace", 15*time.Second, "graceful-shutdown grace period")
		floatFirst = flag.Bool("float-first", true, "run LP searches in float64 with exact basis certification (results stay exact; disable to force the pure-exact engine)")
		metrics    = flag.Bool("metrics", true, "serve Prometheus metrics on GET /metrics (disable for a zero-overhead server; /metrics then answers 404)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this separate operator-only address (empty = disabled)")
		queueWait  = flag.Duration("queue-wait", 0, "max time a request waits for a solve slot before 503 + Retry-After (0 = default 5s, <0 = wait as long as the client)")

		ctlEpoch    = flag.Duration("control-epoch", 0, "control-plane epoch: how often tracked deployments re-check drift (0 = default 2s)")
		ctlDrift    = flag.Float64("control-drift", 0, "relative forecast change that triggers a deployment re-solve (0 = default 0.1)")
		ctlInterval = flag.Duration("control-min-interval", 0, "min time between re-solves of one deployment (0 = one epoch)")
		ctlBudget   = flag.Int("control-budget", 0, "max deployment re-solves per epoch tick (0 = default 32)")
		ctlDeploys  = flag.Int("control-max-deployments", 0, "max tracked deployments (0 = default 1024)")
		ctlWatchers = flag.Int("control-max-watchers", 0, "max /v1/deployments/{id}/watch subscribers per deployment (0 = default 64)")
		ctlBuffer   = flag.Int("control-watch-buffer", 0, "epochs a watch subscriber may fall behind before eviction (0 = default 16)")
		ctlHistory  = flag.Int("control-history", 0, "epochs retained per deployment for Last-Event-ID replay (0 = default 64)")

		peers          = flag.String("peers", "", "comma-separated static cluster peer base URLs, including -self (empty = single-node)")
		self           = flag.String("self", "", "this process's own base URL within -peers (required with -peers)")
		noForward      = flag.Bool("no-forward", false, "degraded cluster mode: never forward requests, only ship warm bases")
		vnodes         = flag.Int("cluster-vnodes", 0, "consistent-hash virtual nodes per peer (0 = default)")
		healthInterval = flag.Duration("health-interval", 0, "peer health-probe period (0 = default 1s)")
		forwardTimeout = flag.Duration("forward-timeout", 0, "end-to-end limit on one forwarded request (0 = default 60s)")
	)
	flag.Parse()

	var cl *cluster.Cluster
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:           *self,
			Peers:          list,
			VirtualNodes:   *vnodes,
			NoForward:      *noForward,
			HealthInterval: *healthInterval,
			ForwardTimeout: *forwardTimeout,
		})
		if err != nil {
			log.Fatalf("steadyd: %v", err)
		}
	}

	srv := server.New(server.Config{
		Workers:       *workers,
		CacheShards:   *shards,
		CacheBound:    *bound,
		MaxNodes:      *maxNodes,
		MaxEdges:      *maxEdges,
		MaxSweepJobs:  *maxSweep,
		SolveTimeout:  *timeout,
		MaxInFlight:   *inflight,
		MaxBodyBytes:  *bodyLimit,
		SimTimeout:    *simTimeout,
		MaxSimPeriods: *simPeriods,
		MaxSimTasks:   *simTasks,
		MaxSimHorizon: *simHorizon,

		MaxTraceEvents: *simTrace,
		QueueWait:      *queueWait,

		DisableFloatFirst: !*floatFirst,
		DisableMetrics:    !*metrics,
		Cluster:           cl,
		Control: control.Config{
			Epoch:              *ctlEpoch,
			DriftThreshold:     *ctlDrift,
			MinResolveInterval: *ctlInterval,
			ResolveBudget:      *ctlBudget,
			MaxDeployments:     *ctlDeploys,
			MaxWatchers:        *ctlWatchers,
			WatchBuffer:        *ctlBuffer,
			History:            *ctlHistory,
		},
	})
	defer srv.Close()
	if cl != nil {
		cl.Start()
		log.Printf("steadyd: clustered as %s across %d peers", cl.Self(), len(cl.Health()))
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Profiling never rides on the service listener: -pprof-addr binds
	// a second, operator-only server, typically on localhost.
	if *pprofAddr != "" {
		ps := &http.Server{
			Addr:              *pprofAddr,
			Handler:           server.PprofMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("steadyd: pprof on %s", *pprofAddr)
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("steadyd: pprof: %v", err)
			}
		}()
		defer ps.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("steadyd: shutting down (grace %v)", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("steadyd: shutdown: %v", err)
		}
	}()

	log.Printf("steadyd: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("steadyd: %v", err)
	}
	<-done
	st := srv.Cache().Stats()
	log.Printf("steadyd: bye (%d solves, %d cache hits)", st.Solves, st.Hits)
}
