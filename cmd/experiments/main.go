// Command experiments regenerates the paper's figures and claims
// through the pkg/steady facade, and runs concurrent batch sweeps
// over random platform families with pkg/steady/batch.
//
// Usage:
//
//	experiments            # run everything
//	experiments E3 E5      # run selected experiments
//	experiments -list      # list experiment ids
//	experiments -batch -n 16 -workers 8 -format csv   # batch sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/platform"
	"repro/pkg/steady"
	"repro/pkg/steady/batch"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	batchMode := flag.Bool("batch", false, "run a concurrent batch sweep instead of the experiment suite")
	n := flag.Int("n", 16, "batch: number of platforms in the sweep")
	workers := flag.Int("workers", 0, "batch: worker-pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "batch: random platform seed")
	format := flag.String("format", "csv", "batch: output format, csv|json")
	problem := flag.String("problem", "masterslave", "batch: problem to sweep")
	flag.Parse()

	if *batchMode {
		if err := runBatch(*n, *workers, *seed, *format, *problem); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	suite := steady.Experiments()
	if *list {
		for _, e := range suite {
			fmt.Printf("%-5s %s\n", e.ID, e.Desc)
		}
		return
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	ran := 0
	for _, e := range suite {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Desc)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %v (try -list)\n", flag.Args())
		os.Exit(2)
	}
}

// runBatch sweeps the chosen problem over a family of random
// connected platforms, solving them concurrently through the batch
// engine and streaming records to stdout as they complete. Platform
// sizes cycle over a small set, so the sweep contains duplicate
// platforms and exercises the engine's LP-solution cache.
func runBatch(n, workers int, seed int64, format, problem string) error {
	solver, err := steady.New(steady.Spec{Problem: problem})
	if err != nil {
		return err
	}

	sizes := []int{6, 8, 10, 12}
	jobs := make([]batch.Job, n)
	for i := range jobs {
		size := sizes[i%len(sizes)]
		// Seeding by (seed, size) makes platforms repeat across the
		// sweep: repeats are served from the cache.
		rng := rand.New(rand.NewSource(seed + int64(size)))
		jobs[i] = batch.Job{
			ID:       fmt.Sprintf("job%02d-n%d", i, size),
			Platform: platform.RandomConnected(rng, size, size, 5, 5, 0.15),
			Solver:   solver,
		}
	}

	var sink batch.Sink
	switch format {
	case "csv":
		sink = batch.CSVSink(os.Stdout)
	case "json":
		sink = batch.JSONSink(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q (csv|json)", format)
	}

	eng := batch.New(workers)
	if err := eng.Stream(context.Background(), jobs, sink); err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "batch: %d jobs, %d LP solves, %d cache hits, %d workers\n",
		len(jobs), st.Solves, st.CacheHits, eng.Workers())
	return nil
}
