// Command experiments regenerates the paper's figures and claims.
//
// Usage:
//
//	experiments            # run everything
//	experiments E3 E5      # run selected experiments
//	experiments -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	reg := experiments.Registry()
	if *list {
		for _, e := range reg {
			fmt.Printf("%-5s %s\n", e.ID, e.Desc)
		}
		return
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	ran := 0
	for _, e := range reg {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Desc)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %v (try -list)\n", flag.Args())
		os.Exit(2)
	}
}
