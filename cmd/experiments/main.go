// Command experiments regenerates the paper's figures and claims
// through the pkg/steady facade, and runs concurrent batch sweeps
// over random platform families with pkg/steady/batch.
//
// Usage:
//
//	experiments            # run everything
//	experiments E3 E5      # run selected experiments
//	experiments -list      # list experiment ids
//	experiments -batch -n 16 -workers 8 -format csv   # batch sweep
//	experiments -batch -remote http://localhost:8080  # sweep via steadyd
//	experiments -sim                                  # simulate every solver's schedule
//	experiments -sim -metrics-dump                    # ... and dump metrics to stderr
//
// With -remote, the sweep is not solved in-process: the same
// generator parameters are POSTed to a running steadyd instance's
// /v1/sweep endpoint and its streamed records are copied to stdout,
// so local and remote runs produce the same platforms and the same
// exact-rational results.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/obs"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/server"
	"repro/pkg/steady/sim"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	batchMode := flag.Bool("batch", false, "run a concurrent batch sweep instead of the experiment suite")
	n := flag.Int("n", 16, "batch: number of platforms in the sweep")
	workers := flag.Int("workers", 0, "batch: worker-pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "batch: random platform seed")
	format := flag.String("format", "csv", "batch: output format, csv|json")
	problem := flag.String("problem", "masterslave", "batch: problem to sweep")
	remote := flag.String("remote", "", "batch: base URL of a steadyd instance to sweep against (e.g. http://localhost:8080)")
	simMode := flag.Bool("sim", false, "simulate every registered solver's reconstructed schedule and report achieved vs certified throughput")
	metricsDump := flag.Bool("metrics-dump", false, "after -batch or -sim, dump the run's metrics (Prometheus text format) to stderr")
	flag.Parse()

	if *remote != "" && !*batchMode {
		fmt.Fprintln(os.Stderr, "experiments: -remote requires -batch")
		os.Exit(2)
	}
	// -metrics-dump observes in-process runs; a remote sweep's metrics
	// live on the server (GET /metrics), and the experiment suite runs
	// through the plain facade.
	var reg *obs.Registry
	if *metricsDump {
		if *remote != "" || (!*batchMode && !*simMode) {
			fmt.Fprintln(os.Stderr, "experiments: -metrics-dump requires a local -batch or -sim run")
			os.Exit(2)
		}
		reg = obs.New()
	}
	if *simMode {
		if err := runSim(*workers, reg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		dumpMetrics(reg)
		return
	}
	if *batchMode {
		var err error
		if *remote != "" {
			err = runRemoteBatch(*remote, *n, *seed, *format, *problem)
		} else {
			err = runBatch(*n, *workers, *seed, *format, *problem, reg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		dumpMetrics(reg)
		return
	}

	suite := steady.Experiments()
	if *list {
		for _, e := range suite {
			fmt.Printf("%-5s %s\n", e.ID, e.Desc)
		}
		return
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	ran := 0
	for _, e := range suite {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Desc)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %v (try -list)\n", flag.Args())
		os.Exit(2)
	}
}

// runSim sweeps the simulation engine over every registered solver on
// its sample platform (the §4.2 asymptotic-optimality demonstration,
// generalized beyond master-slave), then runs two dynamic scenarios —
// a mid-run host slowdown with and without §5.5 adaptive re-solving —
// to show the dynamic machinery from the same entry point.
// dumpMetrics renders reg to stderr after a -metrics-dump run; the
// stdout stream (CSV/JSON records, experiment tables) stays clean.
func dumpMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "# --- metrics (Prometheus text format) ---")
	_ = reg.WritePrometheus(os.Stderr)
}

func runSim(workers int, reg *obs.Registry) error {
	fig1 := platform.Figure1()
	fig2 := platform.Figure2()
	cells := []sim.Cell{
		{ID: "masterslave", Platform: fig1, Spec: steady.Spec{Problem: "masterslave", Root: "P1"}},
		{ID: "scatter", Platform: fig1, Spec: steady.Spec{Problem: "scatter", Root: "P1", Targets: []string{"P4", "P6"}}},
		{ID: "multicast-sum", Platform: fig2, Spec: steady.Spec{Problem: "multicast-sum", Root: "P0", Targets: []string{"P5", "P6"}}},
		{ID: "multicast-trees", Platform: fig2, Spec: steady.Spec{Problem: "multicast-trees", Root: "P0", Targets: []string{"P5", "P6"}}},
		{ID: "multicast", Platform: fig2, Spec: steady.Spec{Problem: "multicast", Root: "P0", Targets: []string{"P5", "P6"}}},
		{ID: "broadcast", Platform: fig2, Spec: steady.Spec{Problem: "broadcast", Root: "P0"}},
		{ID: "reduce", Platform: fig1, Spec: steady.Spec{Problem: "reduce", Root: "P1"}},
	}
	eng := sim.New(sim.Config{Workers: workers, Obs: reg})
	fmt.Printf("Replaying reconstructed schedules (certified vs simulated):\n")
	fmt.Printf("  %-16s %-10s %-10s %-8s %s\n", "solver", "certified", "achieved", "ratio", "steady-after")
	for _, o := range eng.Sweep(context.Background(), cells) {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.ID, o.Err)
		}
		r := o.Report
		note := ""
		if r.Derived != "" {
			note = " (via " + r.Derived + ")"
		}
		// A schedule rate below the certified bound is a genuine gap
		// (§4.3); a ratio below 1 alone is just the startup transient.
		if r.ScheduleThroughput != "" && r.ScheduleThroughput != r.Certified {
			note += " <- bound gap"
		}
		fmt.Printf("  %-16s %-10s %-10s %-8.4f %d periods%s\n",
			o.ID, r.Certified, r.Achieved, r.RatioValue, r.SteadyAfter, note)
	}

	fmt.Printf("\nDynamic scenario: P2 and P4 run 3x slower during [50, 400):\n")
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		return err
	}
	res, err := solver.Solve(context.Background(), fig1)
	if err != nil {
		return err
	}
	for _, adaptive := range []bool{false, true} {
		sc := sim.Scenario{
			Name:  "slowdown",
			Tasks: 2000,
			Slowdowns: []sim.Slowdown{
				{Node: "P2", Factor: 3, From: 50, Until: 400},
				{Node: "P4", Factor: 3, From: 50, Until: 400},
			},
			Adaptive:    adaptive,
			EpochLength: 50,
		}
		rep, err := eng.Run(context.Background(), res, sc)
		if err != nil {
			return err
		}
		label := "fixed LP quotas  "
		if adaptive {
			label = "adaptive re-solve"
		}
		fmt.Printf("  %s: %d tasks in %.1f time units (%.4f/unit, %.2fx certified, %d re-solves)\n",
			label, rep.Done, rep.Makespan, rep.AchievedValue, rep.RatioValue, rep.Resolves)
	}
	return nil
}

// sweepSizes are the node counts a batch sweep cycles over, locally
// and via -remote (pkg/steady/server's generator defaults match).
var sweepSizes = []int{6, 8, 10, 12}

// runBatch sweeps the chosen problem over a family of random
// connected platforms, solving them concurrently through the batch
// engine and streaming records to stdout as they complete. Platform
// sizes cycle over a small set, so the sweep contains duplicate
// platforms and exercises the engine's LP-solution cache.
func runBatch(n, workers int, seed int64, format, problem string, reg *obs.Registry) error {
	solver, err := steady.New(steady.Spec{Problem: problem})
	if err != nil {
		return err
	}

	sizes := sweepSizes
	jobs := make([]batch.Job, n)
	for i := range jobs {
		size := sizes[i%len(sizes)]
		// Seeding by (seed, size) makes platforms repeat across the
		// sweep: repeats are served from the cache.
		rng := rand.New(rand.NewSource(seed + int64(size)))
		jobs[i] = batch.Job{
			ID:       fmt.Sprintf("job%02d-n%d", i, size),
			Platform: platform.RandomConnected(rng, size, size, 5, 5, 0.15),
			Solver:   solver,
		}
	}

	var sink batch.Sink
	switch format {
	case "csv":
		sink = batch.CSVSink(os.Stdout)
	case "json":
		sink = batch.JSONSink(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q (csv|json)", format)
	}

	eng := batch.New(workers)
	if reg != nil {
		eng.Cache().SetObs(reg)
	}
	if err := eng.Stream(context.Background(), jobs, sink); err != nil {
		return err
	}
	st := eng.Stats()
	cs := eng.Cache().Stats()
	fmt.Fprintf(os.Stderr, "batch: %d jobs, %d LP solves (%d warm-started), %d cache hits, %d workers\n",
		len(jobs), st.Solves, cs.WarmSolves, st.CacheHits, eng.Workers())
	fmt.Fprintf(os.Stderr, "batch: %d simplex pivots total (%d in warm re-solves)\n",
		cs.Pivots, cs.WarmPivots)
	return nil
}

// runRemoteBatch drives a steadyd instance instead of solving
// in-process: it POSTs the sweep's generator parameters to /v1/sweep
// and copies the streamed records to stdout as the server produces
// them. The server seeds its generator exactly like runBatch, so the
// records cover the same platforms.
func runRemoteBatch(base string, n int, seed int64, format, problem string) error {
	wireFormat := format
	if format == "json" {
		wireFormat = "ndjson" // the service name for JSON Lines
	} else if format != "csv" {
		return fmt.Errorf("unknown format %q (csv|json)", format)
	}
	req := server.SweepRequest{
		Problem:   problem,
		Generator: &server.Generator{Count: n, Sizes: sweepSizes, Seed: seed},
		Format:    wireFormat,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(base, "/")+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("remote sweep: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("remote sweep: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return fmt.Errorf("remote sweep: stream: %w", err)
	}
	fmt.Fprintf(os.Stderr, "batch: %d jobs swept remotely via %s\n", n, base)
	return nil
}
