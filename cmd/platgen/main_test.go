package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/sim"
)

func TestAllKindsProduceValidJSON(t *testing.T) {
	kinds := [][]string{
		{"-kind", "figure1"},
		{"-kind", "figure2"},
		{"-kind", "random", "-n", "6", "-extra", "4", "-seed", "3"},
		{"-kind", "star", "-n", "4"},
		{"-kind", "tree", "-fanout", "2", "-depth", "2"},
		{"-kind", "grid", "-rows", "2", "-cols", "3"},
		{"-kind", "ring", "-n", "5"},
		{"-kind", "clique", "-n", "4"},
	}
	for _, args := range kinds {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		p, err := platform.ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%v: invalid JSON round trip: %v", args, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestDeterministicSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-kind", "random", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "random", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different platforms")
	}
}

func TestDOTFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "figure1", "-dot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph platform") {
		t.Fatalf("dot output:\n%s", buf.String())
	}
}

func TestUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "mystery"}, &buf); err == nil {
		t.Fatal("expected error")
	}
}

func TestTraceFlagEmitsBundle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "figure1", "-trace", "-seed", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	p, sc, err := sim.ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("bundle did not round-trip: %v", err)
	}
	if p.NumNodes() != 6 {
		t.Fatalf("platform lost: %d nodes", p.NumNodes())
	}
	if !sc.Dynamic() {
		t.Fatal("generated scenario is not dynamic")
	}
	// Every computing node and every link carries a trace.
	if len(sc.NodeLoad) != 6 || len(sc.EdgeLoad) != p.NumEdges() {
		t.Fatalf("traces: %d node, %d edge (want 6, %d)", len(sc.NodeLoad), len(sc.EdgeLoad), p.NumEdges())
	}
	if sc.Seed != 5 {
		t.Fatalf("seed %d not carried into the scenario", sc.Seed)
	}

	// Same seed, same bundle.
	var again bytes.Buffer
	if err := run([]string{"-kind", "figure1", "-trace", "-seed", "5"}, &again); err != nil {
		t.Fatal(err)
	}
	if buf.String() != again.String() {
		t.Fatal("same seed produced different bundles")
	}
}

func TestTraceDOTExclusive(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "figure1", "-trace", "-dot"}, &buf); err == nil {
		t.Fatal("expected -dot/-trace conflict error")
	}
}
