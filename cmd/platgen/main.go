// Command platgen generates platform descriptions in the JSON format
// consumed by ssched.
//
// Usage:
//
//	platgen -kind random -n 10 -extra 8 -seed 7 > platform.json
//	platgen -kind figure1           # the paper's Figure 1
//	platgen -kind figure2           # the multicast counterexample
//	platgen -kind star -n 5
//	platgen -kind tree -fanout 2 -depth 3
//	platgen -kind grid -rows 3 -cols 4
//	platgen -kind random -trace > bundle.json   # platform + load-trace scenario
//
// With -trace the output is a pkg/steady/sim bundle: the platform
// plus a generated dynamic scenario (random-walk load traces on every
// computing node and every link, seeded by -seed), so platforms and
// the scenarios they were generated for travel together.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	"repro/pkg/steady/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "platgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("platgen", flag.ContinueOnError)
	kind := fs.String("kind", "random", "figure1|figure2|random|star|tree|grid|ring|clique")
	n := fs.Int("n", 8, "number of nodes (random/star/ring/clique)")
	extra := fs.Int("extra", 6, "extra random links (random)")
	seed := fs.Int64("seed", 1, "random seed")
	maxW := fs.Int64("maxw", 5, "max node weight")
	maxC := fs.Int64("maxc", 5, "max edge cost")
	forward := fs.Float64("forwarders", 0.1, "fraction of forwarder-only nodes (random)")
	fanout := fs.Int("fanout", 2, "tree fanout")
	depth := fs.Int("depth", 3, "tree depth")
	rows := fs.Int("rows", 3, "grid rows")
	cols := fs.Int("cols", 3, "grid cols")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of JSON")
	trace := fs.Bool("trace", false, "emit a platform+scenario bundle with random-walk load traces")
	horizon := fs.Float64("trace-horizon", 500, "trace: scenario horizon in time units")
	step := fs.Float64("trace-step", 25, "trace: load re-draw interval")
	hi := fs.Float64("trace-hi", 3, "trace: maximum load multiplier (min is 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	var p *platform.Platform
	switch *kind {
	case "figure1":
		p = platform.Figure1()
	case "figure2":
		p = platform.Figure2()
	case "random":
		p = platform.RandomConnected(rng, *n, *extra, *maxW, *maxC, *forward)
	case "star":
		ws := make([]platform.Weight, *n)
		cs := make([]rat.Rat, *n)
		for i := range ws {
			ws[i] = platform.WInt(1 + rng.Int63n(*maxW))
			cs[i] = rat.FromInt(1 + rng.Int63n(*maxC))
		}
		p = platform.Star(platform.WInt(1+rng.Int63n(*maxW)), ws, cs)
	case "tree":
		p = platform.Tree(rng, *fanout, *depth, *maxW, *maxC)
	case "grid":
		p = platform.Grid(rng, *rows, *cols, *maxW, *maxC)
	case "ring":
		p = platform.Ring(rng, *n, *maxW, *maxC)
	case "clique":
		p = platform.Clique(rng, *n, *maxW, *maxC)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if *dot && *trace {
		return fmt.Errorf("-dot and -trace are mutually exclusive")
	}
	if *dot {
		fmt.Fprint(w, p.DOT())
		return nil
	}
	if *trace {
		if *horizon <= 0 || *step <= 0 || *hi < 1 {
			return fmt.Errorf("trace flags need horizon > 0, step > 0, hi >= 1")
		}
		return sim.WriteBundle(w, p, traceScenario(p, *seed, *horizon, *step, *hi))
	}
	return p.WriteJSON(w)
}

// traceScenario builds the generated scenario of -trace: every
// computing node and every link gets a random-walk load trace in
// [1, hi]. The traces themselves are materialized at simulation time
// from the scenario seed, so the bundle stays compact and the same
// bundle always simulates the same way.
func traceScenario(p *platform.Platform, seed int64, horizon, step, hi float64) sim.Scenario {
	walk := sim.TraceSpec{Kind: "random-walk", Horizon: horizon, Step: step, Lo: 1, Hi: hi}
	sc := sim.Scenario{
		Name:     fmt.Sprintf("platgen-load-seed%d", seed),
		Seed:     seed,
		NodeLoad: map[string]sim.TraceSpec{},
		EdgeLoad: map[string]sim.TraceSpec{},
	}
	for i := 0; i < p.NumNodes(); i++ {
		if p.CanCompute(i) {
			sc.NodeLoad[p.Name(i)] = walk
		}
	}
	for _, e := range p.Edges() {
		sc.EdgeLoad[sim.EdgeKey(p.Name(e.From), p.Name(e.To))] = walk
	}
	return sc
}
