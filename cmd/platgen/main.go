// Command platgen generates platform descriptions in the JSON format
// consumed by ssched.
//
// Usage:
//
//	platgen -kind random -n 10 -extra 8 -seed 7 > platform.json
//	platgen -kind figure1           # the paper's Figure 1
//	platgen -kind figure2           # the multicast counterexample
//	platgen -kind star -n 5
//	platgen -kind tree -fanout 2 -depth 3
//	platgen -kind grid -rows 3 -cols 4
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/platform"
	"repro/internal/rat"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "platgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("platgen", flag.ContinueOnError)
	kind := fs.String("kind", "random", "figure1|figure2|random|star|tree|grid|ring|clique")
	n := fs.Int("n", 8, "number of nodes (random/star/ring/clique)")
	extra := fs.Int("extra", 6, "extra random links (random)")
	seed := fs.Int64("seed", 1, "random seed")
	maxW := fs.Int64("maxw", 5, "max node weight")
	maxC := fs.Int64("maxc", 5, "max edge cost")
	forward := fs.Float64("forwarders", 0.1, "fraction of forwarder-only nodes (random)")
	fanout := fs.Int("fanout", 2, "tree fanout")
	depth := fs.Int("depth", 3, "tree depth")
	rows := fs.Int("rows", 3, "grid rows")
	cols := fs.Int("cols", 3, "grid cols")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	var p *platform.Platform
	switch *kind {
	case "figure1":
		p = platform.Figure1()
	case "figure2":
		p = platform.Figure2()
	case "random":
		p = platform.RandomConnected(rng, *n, *extra, *maxW, *maxC, *forward)
	case "star":
		ws := make([]platform.Weight, *n)
		cs := make([]rat.Rat, *n)
		for i := range ws {
			ws[i] = platform.WInt(1 + rng.Int63n(*maxW))
			cs[i] = rat.FromInt(1 + rng.Int63n(*maxC))
		}
		p = platform.Star(platform.WInt(1+rng.Int63n(*maxW)), ws, cs)
	case "tree":
		p = platform.Tree(rng, *fanout, *depth, *maxW, *maxC)
	case "grid":
		p = platform.Grid(rng, *rows, *cols, *maxW, *maxC)
	case "ring":
		p = platform.Ring(rng, *n, *maxW, *maxC)
	case "clique":
		p = platform.Clique(rng, *n, *maxW, *maxC)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(w, p.DOT())
		return nil
	}
	return p.WriteJSON(w)
}
