// Command metricscheck validates a Prometheus text exposition: it
// parses the format strictly (HELP/TYPE comments, label syntax,
// histogram bucket monotonicity) and optionally requires named
// metrics to be present. CI scrapes a live steadyd's GET /metrics
// through it; operators can point it at any exposition.
//
// Usage:
//
//	metricscheck < metrics.txt
//	metricscheck -url http://localhost:8080/metrics
//	metricscheck -url ... -require steady_lp_solves_total,steady_http_requests_total
//
// Exit status 0 means the exposition parses and every required
// metric is present; 1 reports the first violation on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/pkg/steady/obs"
)

func main() {
	url := flag.String("url", "", "scrape this URL instead of reading stdin")
	require := flag.String("require", "", "comma-separated metric names that must be present (histograms: their _count suffix works)")
	quiet := flag.Bool("q", false, "print nothing on success")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *url != "" {
		resp, err := http.Get(*url)
		if err != nil {
			fatal("scrape %s: %v", *url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal("scrape %s: status %s", *url, resp.Status)
		}
		in = resp.Body
	}

	samples, err := obs.ParseExposition(in)
	if err != nil {
		fatal("invalid exposition: %v", err)
	}
	names := map[string]int{}
	for _, s := range samples {
		names[s.Name]++
	}
	var missing []string
	for _, want := range strings.Split(*require, ",") {
		if want = strings.TrimSpace(want); want != "" && names[want] == 0 {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fatal("missing required metrics: %s", strings.Join(missing, ", "))
	}
	if !*quiet {
		fmt.Printf("ok: %d samples across %d metric names\n", len(samples), len(names))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricscheck: "+format+"\n", args...)
	os.Exit(1)
}
