package repro

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestPublicAPIReferencesNoInternalTypes is the layering guard of the
// public API: no exported identifier in any pkg/... package may
// mention a repro/internal/... type anywhere in its exported surface
// (signatures, exported struct fields, exported methods, embedded
// types, type arguments). Internal packages may still back the
// implementation — but only behind unexported code, so an external
// module importing pkg/... can use every exported name it sees.
//
// The check type-checks every pkg/... package from source with
// go/types and walks the exported object graph. If it fails, either
// promote the internal package the offender leaks (as was done for
// internal/platform and internal/rat) or hide the reference behind
// unexported code.
func TestPublicAPIReferencesNoInternalTypes(t *testing.T) {
	for _, pkg := range typeCheckPublic(t) {
		g := &apiGuard{pkg: pkg, seen: map[types.Type]bool{}}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			g.checkObject(t, pkg.Path()+"."+name, obj)
		}
	}
}

// typeCheckPublic type-checks every non-test package under pkg/ from
// source, once per test binary (the API guard and the API surface
// golden share the result).
func typeCheckPublic(t *testing.T) []*types.Package {
	t.Helper()
	publicOnce.Do(func() {
		var paths []string
		publicErr = filepath.WalkDir("pkg", func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					paths = append(paths, "repro/"+filepath.ToSlash(path))
					break
				}
			}
			return nil
		})
		if publicErr != nil {
			return
		}
		if len(paths) < 5 {
			publicErr = fmt.Errorf("found only %d pkg/... packages (%v); the walk is broken", len(paths), paths)
			return
		}
		imp := importer.ForCompiler(token.NewFileSet(), "source", nil)
		for _, path := range paths {
			pkg, err := imp.Import(path)
			if err != nil {
				publicErr = fmt.Errorf("type-check %s: %w", path, err)
				return
			}
			publicPkgs = append(publicPkgs, pkg)
		}
	})
	if publicErr != nil {
		t.Fatal(publicErr)
	}
	return publicPkgs
}

var (
	publicOnce sync.Once
	publicPkgs []*types.Package
	publicErr  error
)

// apiGuard walks the exported type surface of one package.
type apiGuard struct {
	pkg  *types.Package
	seen map[types.Type]bool
}

func (g *apiGuard) checkObject(t *testing.T, label string, obj types.Object) {
	t.Helper()
	switch obj := obj.(type) {
	case *types.Func:
		g.checkType(t, label, obj.Type())
	case *types.TypeName:
		// The declared type: walk its exported structure and its
		// exported method set (value and pointer receivers alike).
		g.checkDeclared(t, label, obj)
	default: // *types.Var, *types.Const
		g.checkType(t, label, obj.Type())
	}
}

// checkDeclared validates an exported (or surface-reachable) type
// declaration: underlying structure filtered to exported members,
// plus exported methods.
func (g *apiGuard) checkDeclared(t *testing.T, label string, obj *types.TypeName) {
	t.Helper()
	typ := obj.Type()
	if named, ok := typ.(*types.Named); ok {
		g.walkStructure(t, label, named.Underlying())
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Exported() {
				g.checkType(t, label+"."+m.Name(), m.Type())
			}
		}
		return
	}
	// Alias or basic: the type itself is the surface.
	g.checkType(t, label, typ)
}

// checkType walks a type reference appearing directly in the exported
// surface (a signature, a field type, an element type).
func (g *apiGuard) checkType(t *testing.T, label string, typ types.Type) {
	t.Helper()
	if g.seen[typ] {
		return
	}
	g.seen[typ] = true

	switch typ := typ.(type) {
	case *types.Named:
		g.checkNamed(t, label, typ)
	case *types.Alias:
		g.checkType(t, label, types.Unalias(typ))
	case *types.Pointer:
		g.checkType(t, label, typ.Elem())
	case *types.Slice:
		g.checkType(t, label, typ.Elem())
	case *types.Array:
		g.checkType(t, label, typ.Elem())
	case *types.Chan:
		g.checkType(t, label, typ.Elem())
	case *types.Map:
		g.checkType(t, label, typ.Key())
		g.checkType(t, label, typ.Elem())
	case *types.Signature:
		g.checkTuple(t, label, typ.Params())
		g.checkTuple(t, label, typ.Results())
	case *types.Struct, *types.Interface:
		g.walkStructure(t, label, typ)
	}
}

// checkNamed judges one named-type reference and decides whether to
// descend.
func (g *apiGuard) checkNamed(t *testing.T, label string, named *types.Named) {
	t.Helper()
	obj := named.Obj()
	if pkg := obj.Pkg(); pkg != nil {
		if strings.Contains(pkg.Path(), "/internal/") || strings.HasPrefix(pkg.Path(), "internal/") {
			t.Errorf("%s references internal type %s.%s — external modules cannot import it",
				label, pkg.Path(), obj.Name())
			return
		}
	}
	if args := named.TypeArgs(); args != nil {
		for i := 0; i < args.Len(); i++ {
			g.checkType(t, fmt.Sprintf("%s[%d]", label, i), args.At(i))
		}
	}
	// An exported named type of the package under test is checked as
	// its own scope entry; named types of other (non-internal)
	// packages are opaque here — their own module-visibility is their
	// business. But an unexported local named type reachable from an
	// exported identifier has no scope entry of its own, so its
	// surface is this identifier's surface: descend.
	if obj.Pkg() == g.pkg && !obj.Exported() {
		g.checkDeclared(t, label+"/"+obj.Name(), obj)
	}
}

// walkStructure descends into a struct or interface, exported members
// only: unexported fields and methods are exactly where internal
// types are allowed to live.
func (g *apiGuard) walkStructure(t *testing.T, label string, typ types.Type) {
	t.Helper()
	switch typ := typ.(type) {
	case *types.Struct:
		for i := 0; i < typ.NumFields(); i++ {
			f := typ.Field(i)
			if f.Exported() {
				g.checkType(t, label+"."+f.Name(), f.Type())
			}
		}
	case *types.Interface:
		for i := 0; i < typ.NumExplicitMethods(); i++ {
			m := typ.ExplicitMethod(i)
			if m.Exported() {
				g.checkType(t, label+"."+m.Name(), m.Type())
			}
		}
		for i := 0; i < typ.NumEmbeddeds(); i++ {
			g.checkType(t, label, typ.EmbeddedType(i))
		}
	default:
		g.checkType(t, label, typ)
	}
}

// checkTuple checks every element of a parameter or result tuple.
func (g *apiGuard) checkTuple(t *testing.T, label string, tup *types.Tuple) {
	t.Helper()
	for i := 0; i < tup.Len(); i++ {
		g.checkType(t, label, tup.At(i).Type())
	}
}
