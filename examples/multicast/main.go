// Multicast counterexample: a guided tour of §3.3 and §4.3 on the
// paper's Figure 2 platform, showing why the max-operator LP bound of
// one message per time-unit cannot be met by any schedule. The whole
// tour runs through the public facade: the three registered multicast
// solvers sandwich the truth.
//
//	go run ./examples/multicast
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

func main() {
	p := platform.Figure2()
	targets := []string{"P5", "P6"}
	fmt.Println("The Figure 2 platform (all edges cost 1, except P3->P4 which costs 2):")
	fmt.Print(p)

	solve := func(problem string) *steady.Result {
		solver, err := steady.New(steady.Spec{Problem: problem, Root: "P0", Targets: targets})
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve(context.Background(), p)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// The pessimistic formulation: treat the identical multicast
	// messages as if they were distinct (scatter semantics).
	sum := solve("multicast-sum")
	fmt.Printf("\nsum-LP (distinct-message accounting): TP = %v\n", sum.Throughput)
	fmt.Println("  achievable, but pessimistic: one transmission could serve both targets.")

	// The optimistic formulation: replace the sum by a max.
	bound := solve("multicast")
	fmt.Printf("\nmax-LP (shared-transmission accounting): TP = %v\n", bound.Throughput)
	fmt.Println("  matches the paper: 'a solution ... reaches the throughput of")
	fmt.Println("  one message per time-unit' (Figure 3 flows).")

	// Ground truth: enumerate every minimal Steiner arborescence and
	// pack them optimally under the one-port constraints. (Exact
	// multicast throughput is NP-hard in general [7]; Figure 2 is
	// small enough to brute-force.)
	pack := solve("multicast-trees")
	fmt.Printf("\nexact optimum over %d candidate trees: TP = %v\n", pack.Trees, pack.Throughput)
	sched, err := pack.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("its periodic schedule: %v\n", sched.Summary)
	for i, s := range sched.Slots {
		fmt.Printf("  slot %d (dur %v):", i, s.Dur)
		for _, l := range s.Links {
			fmt.Printf(" %s->%s", l[0], l[1])
		}
		fmt.Println()
	}

	gap := bound.Throughput.Sub(pack.Throughput)
	fmt.Printf("\nconclusion: the LP bound %v exceeds the true optimum %v by %v —\n",
		bound.Throughput, pack.Throughput, gap)
	fmt.Println("'reconstructing a schedule from the solution of the linear program")
	fmt.Println("is not possible, the bound on the throughput cannot be met' (§4.3).")
	fmt.Println()
	fmt.Println("Why: serving both targets at rate 1 needs two different trees for")
	fmt.Println("odd (a) and even (b) messages, and both trees must cross P3->P4,")
	fmt.Println("whose cost 2 cannot carry one a-message AND one b-message per")
	fmt.Println("time-unit (Figure 3(d)).")
}
