// Divisible load ([8], cited in §5.2 and §6): a load of W arbitrary
// divisible units on a heterogeneous star. The one-round closed form
// makes every participant finish simultaneously; multi-installment
// distribution converges to the steady-state bound; per-message
// latency makes the optimal number of rounds interior — the same
// sqrt trade-off as §5.2's period grouping.
//
//	go run ./examples/divisible
package main

import (
	"fmt"
	"log"

	"repro/internal/divisible"
	"repro/pkg/steady/rat"
)

func main() {
	s := &divisible.Star{
		MasterW: rat.FromInt(4),
		W:       []rat.Rat{rat.FromInt(1), rat.FromInt(2), rat.FromInt(3)},
		C:       []rat.Rat{rat.FromInt(1), rat.FromInt(1), rat.FromInt(2)},
	}
	W := rat.FromInt(120)

	rate, err := s.SteadyStateRate()
	if err != nil {
		log.Fatal(err)
	}
	lb := W.Div(rate)
	fmt.Printf("star: master w=4, workers w=%v behind links c=%v\n", s.W, s.C)
	fmt.Printf("load W = %v, steady-state rate = %v, lower bound = %v\n\n", W, rate, lb)

	// One round, cheap-link-first activation.
	M, chunks, err := s.OneRound([]int{0, 1, 2}, W)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one round (order 0,1,2): makespan %v = %.2f\n", M, M.Float64())
	fmt.Printf("  master keeps %v; workers get %v, %v, %v\n", chunks[0], chunks[1], chunks[2], chunks[3])
	fmt.Println("  every participant finishes at exactly the makespan (optimality condition)")

	// Best order by exhaustive search.
	best, order, err := s.BestOneRound(W)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best single-round order %v: makespan %v\n\n", order, best)

	// Multi-installment: converges to the bound without latencies.
	fmt.Printf("%-8s %-12s %-8s\n", "rounds", "makespan", "ratio")
	for _, r := range []int{1, 2, 4, 16, 64} {
		m, err := s.MultiRound(W, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12.2f %.4f\n", r, m.Float64(), m.Div(lb).Float64())
	}

	// With latency, more rounds eventually hurts (§5.2 trade-off).
	s.L = []rat.Rat{rat.FromInt(3), rat.FromInt(3), rat.FromInt(3)}
	fmt.Printf("\nwith 3 time-units of latency per message:\n")
	fmt.Printf("%-8s %-12s\n", "rounds", "makespan")
	for _, r := range []int{1, 4, 8, 16, 64} {
		m, err := s.MultiRound(W, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12.2f\n", r, m.Float64())
	}
	fmt.Println("\nthe optimum sits strictly inside: amortize latencies, but not too far —")
	fmt.Println("'the length of the period should increase to +inf together with the total")
	fmt.Println("amount of work' (§5.2).")
}
