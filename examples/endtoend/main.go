// End-to-end grid campaign: the full §5 pipeline on a platform whose
// topology is *not* known in advance. All steady-state solving and
// the drifting deployment go through the public pkg/... API; only
// topology discovery (§5.3, internal/discovery) has no public surface
// yet — it is the ROADMAP's remaining internal-only stage.
//
//  1. probe the hidden platform ENV-style and reconstruct the
//     macroscopic tree (§5.3);
//
//  2. solve the steady-state LP on the reconstructed model (§3.1) and
//     rebuild the periodic schedule (§4.1);
//
//  3. deploy: replay the plan online with epoch re-planning when the
//     real platform drifts (§5.5), via pkg/steady/sim;
//
//  4. compare against what the naive ping model would have promised.
//
//     go run ./examples/endtoend
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/discovery"
	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	"repro/pkg/steady/sim"
)

// solve runs the facade's master-slave solver rooted at the named
// node (every platform in this example calls its master "M" except
// the naive model, which keeps node order instead of names).
func solve(p *platform.Platform, root string) *steady.Result {
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: root})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// The hidden platform: a 2-level routed tree the scheduler cannot
	// see directly.
	hidden := platform.New()
	m := hidden.AddNode("M", platform.WInt(6))
	r1 := hidden.AddNode("R1", platform.WInf())
	r2 := hidden.AddNode("R2", platform.WInf())
	s1 := hidden.AddNode("S1", platform.WInt(1))
	s2 := hidden.AddNode("S2", platform.WInt(2))
	s3 := hidden.AddNode("S3", platform.WInt(1))
	s4 := hidden.AddNode("S4", platform.WInt(3))
	hidden.AddEdge(m, r1, rat.FromInt(1))
	hidden.AddEdge(m, r2, rat.FromInt(2))
	hidden.AddEdge(r1, s1, rat.FromInt(1))
	hidden.AddEdge(r1, s2, rat.FromInt(2))
	hidden.AddEdge(r2, s3, rat.FromInt(1))
	hidden.AddEdge(r2, s4, rat.FromInt(1))

	// --- 1. discovery -------------------------------------------------
	pr, err := discovery.NewProber(hidden, m, []int{s1, s2, s3, s4})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := discovery.ReconstructTree(pr)
	if err != nil {
		log.Fatal(err)
	}
	naive := discovery.NaiveComplete(pr)
	fmt.Printf("discovery used %d probes; reconstructed platform:\n%s\n", pr.Probes, rec)

	// --- 2. plan ------------------------------------------------------
	trueRes := solve(hidden, "M")
	recRes := solve(rec, "M")
	naiveRes := solve(naive, "") // root = first node
	fmt.Printf("steady-state throughput: naive pings %v <= reconstructed %v <= true %v\n",
		naiveRes.Throughput, recRes.Throughput, trueRes.Throughput)

	per, err := recRes.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("periodic plan on the reconstructed model: %v\n\n", per.Summary)

	// --- 3. deploy with drift -----------------------------------------
	// The R1 subtree's uplink degrades 3x halfway through; the §5.5
	// adaptive controller re-solves the LP every 50 time-units.
	eng := sim.New(sim.Config{})
	rep, err := eng.Run(context.Background(), trueRes, sim.Scenario{
		Name:    "deploy",
		Horizon: 600,
		Slowdowns: []sim.Slowdown{
			{Edge: sim.EdgeKey("M", "R1"), Factor: 3, From: 300},
		},
		Adaptive:    true,
		EpochLength: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment over 600 time-units with a drift at t=300:\n")
	fmt.Printf("  %d tasks completed (%d LP re-solves, %d warm)\n", rep.Done, rep.Resolves, rep.WarmResolves)
	fmt.Printf("  achieved %.4f tasks/time-unit = %.2f of the pre-drift certified %v\n",
		rep.AchievedValue, rep.RatioValue, trueRes.Throughput)
}
