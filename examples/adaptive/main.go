// Dynamic adaptation (§5.5): a master-slave computation on a platform
// whose link speeds drift over time. Two schedulers compete over the
// same horizon through the public simulation engine: LP quotas frozen
// at t = 0, and the phase-based adaptive scheduler that measures,
// forecasts (NWS-style) and re-solves the LP every epoch — carrying
// the previous epoch's optimal basis, so re-solves are warm.
//
// The whole comparison runs against pkg/... imports only: build the
// platform with pkg/steady/platform, solve with pkg/steady, describe
// the drift as a pkg/steady/sim Scenario, and read the outcome off
// the simulation Report.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	"repro/pkg/steady/sim"
)

func main() {
	p := platform.Star(platform.WInt(25),
		[]platform.Weight{platform.WInt(2), platform.WInt(2), platform.WInt(4)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(1), rat.FromInt(2)})

	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P0"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}

	// The drift: worker 1's link runs 4x slower until t=400, worker
	// 2's the other way around; worker 3's link wanders randomly.
	const horizon = 1200
	drift := map[string]sim.TraceSpec{
		sim.EdgeKey("P0", "P1"): {Kind: "steps", Times: []float64{0, 400}, Mult: []float64{4, 1}},
		sim.EdgeKey("P0", "P2"): {Kind: "steps", Times: []float64{0, 400}, Mult: []float64{1, 4}},
		sim.EdgeKey("P0", "P3"): {Kind: "random-walk", Horizon: horizon, Step: 80, Lo: 1, Hi: 3},
	}

	fmt.Println("Platform (nominal):")
	fmt.Print(p)
	fmt.Printf("\nnominal LP: ntask = %v; horizon %v, link loads drift at t=400\n\n", res.Throughput, float64(horizon))

	eng := sim.New(sim.Config{})
	run := func(name string, sc sim.Scenario) *sim.Report {
		rep, err := eng.Run(context.Background(), res, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %4d tasks  (achieved %.4f /t, %.2f of nominal LP)\n",
			name, rep.Done, rep.AchievedValue, rep.RatioValue)
		return rep
	}

	run("static LP quotas (t=0)", sim.Scenario{
		Name: "static-quotas", Horizon: horizon, EdgeLoad: drift, Seed: 55,
	})
	adaptive := run("adaptive (epoch re-solve)", sim.Scenario{
		Name: "adaptive", Horizon: horizon, EdgeLoad: drift, Seed: 55,
		Adaptive: true, EpochLength: 75,
	})

	fmt.Printf("\nthe adaptive controller re-solved the steady-state LP %d times\n", adaptive.Resolves)
	fmt.Printf("(%d warm-started from the previous epoch's basis, %d simplex pivots in total)\n",
		adaptive.WarmResolves, adaptive.LPPivots)
	fmt.Println("\n'A key feature of steady-state scheduling is that it is adaptive' (§5.5).")
}
