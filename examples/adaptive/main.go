// Dynamic adaptation (§5.5): a master-slave computation on a platform
// whose link speeds drift over time. Three schedulers compete over
// the same horizon: plain demand-driven FCFS, LP quotas frozen at
// t = 0, and the phase-based adaptive scheduler that measures,
// forecasts (NWS-style) and re-solves the LP every epoch.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adaptive"
	"repro/internal/baseline"
	"repro/internal/platform"
	"repro/internal/rat"
	"repro/internal/sim"
)

func main() {
	p := platform.Star(platform.WInt(25),
		[]platform.Weight{platform.WInt(2), platform.WInt(2), platform.WInt(4)},
		[]rat.Rat{rat.FromInt(1), rat.FromInt(1), rat.FromInt(2)})
	tree, err := sim.ShortestPathTree(p, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The drift: worker 1's link degrades 4x at t=400 while worker
	// 2's recovers; worker 3's link wanders randomly.
	rng := rand.New(rand.NewSource(55))
	edgeLoad := []*sim.Trace{
		sim.StepTrace([]float64{0, 400}, []float64{4, 1}),
		sim.StepTrace([]float64{0, 400}, []float64{1, 4}),
		sim.RandomWalkTrace(rng, 1200, 80, 1, 3),
	}
	const horizon = 1200

	fmt.Println("Platform (nominal):")
	fmt.Print(p)
	fmt.Printf("\nhorizon %v, link loads drift at t=400\n\n", float64(horizon))

	run := func(name string, pol sim.Policy, epoch float64, onEpoch func(float64, *sim.EpochObservation)) int {
		res, err := sim.RunOnlineMasterSlave(sim.OnlineConfig{
			Platform: p, Tree: tree, Master: 0, Horizon: horizon,
			Policy: pol, EdgeLoad: edgeLoad,
			EpochLength: epoch, OnEpoch: onEpoch,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %4d tasks  (per node: %v)\n", name, res.Done, res.PerNode)
		return res.Done
	}

	run("demand-driven fcfs", baseline.FCFS{}, 0, nil)

	_, static, err := adaptive.NewController(p, 0, tree)
	if err != nil {
		log.Fatal(err)
	}
	run("static LP quotas (t=0)", static, 0, nil)

	ctl, dyn, err := adaptive.NewController(p, 0, tree)
	if err != nil {
		log.Fatal(err)
	}
	run("adaptive (epoch re-solve)", dyn, 75, ctl.OnEpoch)
	fmt.Printf("\nthe adaptive controller re-solved the steady-state LP %d times;\n", ctl.Resolves)
	fmt.Printf("its final platform estimate gives ntask = %v\n", ctl.LastThroughput)
	fmt.Println("\n'A key feature of steady-state scheduling is that it is adaptive' (§5.5).")
}
