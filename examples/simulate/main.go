// Command simulate demonstrates the public simulation subsystem
// (pkg/steady/sim): solve a steady-state problem, replay its
// reconstructed periodic schedule in exact simulated time, stress it
// under a dynamic scenario, and sweep a scenario grid concurrently.
//
// Run with:
//
//	go run ./examples/simulate
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/sim"
)

func main() {
	ctx := context.Background()
	p := platform.Figure1()
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(sim.Config{})

	// 1. Exact periodic replay: the reconstructed schedule reaches the
	// certified LP throughput after a transient bounded by the
	// platform depth (§4.2 asymptotic optimality, observed).
	rep, err := eng.Run(ctx, res, sim.Scenario{Periods: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static replay:   certified %s, achieved %s over %d periods (ratio %.4f, steady from period %d)\n",
		rep.Certified, rep.Achieved, rep.Periods, rep.RatioValue, rep.SteadyAfter)

	// 2. Dynamic scenario: the event-driven §5.5 simulator under a
	// churn-style outage (P2 practically offline for a while), with
	// adaptive epoch-based LP re-solving.
	storm := sim.Scenario{
		Name:        "p2-outage",
		Tasks:       1500,
		Slowdowns:   []sim.Slowdown{{Node: "P2", Factor: 50, From: 100, Until: 400}},
		Adaptive:    true,
		EpochLength: 50,
	}
	rep, err = eng.Run(ctx, res, storm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic outage:  %d tasks in %.1f time units = %.4f/unit (%.2fx certified, %d adaptive re-solves)\n",
		rep.Done, rep.Makespan, rep.AchievedValue, rep.RatioValue, rep.Resolves)

	// 3. Concurrent scenario sweep: every (platform, solver, scenario)
	// cell solves once through the shared LP cache and simulates in
	// parallel.
	cells := []sim.Cell{
		{ID: "fig1/static", Platform: p, Spec: steady.Spec{Problem: "masterslave", Root: "P1"}},
		{ID: "fig1/outage", Platform: p, Spec: steady.Spec{Problem: "masterslave", Root: "P1"}, Scenario: storm},
		{ID: "fig2/trees", Platform: platform.Figure2(),
			Spec: steady.Spec{Problem: "multicast-trees", Root: "P0", Targets: []string{"P5", "P6"}}},
	}
	fmt.Println("scenario sweep:")
	for _, o := range eng.Sweep(ctx, cells) {
		if o.Err != nil {
			log.Fatalf("%s: %v", o.ID, o.Err)
		}
		fmt.Printf("  %-12s %-8s ratio %.4f (cache hit %v)\n",
			o.ID, o.Report.Kind, o.Report.RatioValue, o.CacheHit)
	}
}
