// Start-up costs (§5.2): linear programs love linear costs, so
// per-message latencies break the clean story. The fix is to group m
// consecutive periods into one, amortizing one start-up per
// communication round over m periods' worth of data, with
// m ~ sqrt(n / ntask) for an n-task workload.
//
//	go run ./examples/startup
package main

import (
	"fmt"
	"log"
	"math"
	"math/big"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rat"
	"repro/internal/schedule"
)

func main() {
	p := platform.Figure1()
	master := p.NodeByName("P1")
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		log.Fatal(err)
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		log.Fatal(err)
	}

	C := rat.FromInt(5) // start-up cost per communication round
	startup := func(int) rat.Rat { return C }

	fmt.Printf("Figure 1: ntask(G) = %v; period T = %v with %d communication rounds\n",
		per.Throughput, per.Period, len(per.Slots))
	fmt.Printf("start-up cost per round C = %v\n\n", C)

	fmt.Printf("%-8s %-16s %-16s\n", "m", "eff. throughput", "fraction of opt")
	for _, m := range []int64{1, 2, 4, 8, 16, 32, 128, 512} {
		eff := per.Grouped(m).EffectiveThroughput(startup)
		fmt.Printf("%-8d %-16.4f %.4f\n", m, eff.Float64(), eff.Div(per.Throughput).Float64())
	}

	fmt.Println("\nthe sqrt rule of §5.2 for finite workloads:")
	fmt.Printf("%-10s %-8s %-14s %-14s\n", "n", "m*", "makespan", "ratio vs n/ntask")
	T, _ := new(big.Float).SetInt(per.Period).Float64()
	for _, n := range []float64{1e3, 1e4, 1e5, 1e6} {
		// m* = ceil(sqrt(n / ntask) / T).
		mStar := int64(math.Ceil(math.Sqrt(n/per.Throughput.Float64()) / T))
		if mStar < 1 {
			mStar = 1
		}
		g := per.Grouped(mStar)
		ext := g.StartupExtension(startup).Float64()
		periodLen := float64(mStar)*T + ext
		tasksPerPeriod, _ := new(big.Float).SetInt(g.TasksPerPeriod).Float64()
		periods := math.Ceil(n / tasksPerPeriod)
		makespan := periods * periodLen
		lb := n / per.Throughput.Float64()
		fmt.Printf("%-10.0f %-8d %-14.0f %.5f\n", n, mStar, makespan, makespan/lb)
	}
	fmt.Println("\nthe ratio tends to 1: start-up overheads vanish asymptotically (§5.2).")
}
