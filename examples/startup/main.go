// Start-up costs (§5.2): linear programs love linear costs, so
// per-message latencies break the clean story. The fix is to group m
// consecutive periods into one, amortizing one start-up per
// communication round over m periods' worth of data, with
// m ~ sqrt(n / ntask) for an n-task workload.
//
// Everything here goes through the public facade: solve with
// pkg/steady, reconstruct the §4.1 periodic schedule, then use
// Schedule.Grouped / EffectiveThroughput / StartupExtension for the
// §5.2 arithmetic.
//
//	go run ./examples/startup
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/big"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func main() {
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), platform.Figure1())
	if err != nil {
		log.Fatal(err)
	}
	sched, err := res.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}

	C := rat.FromInt(5) // start-up cost per communication round
	startup := func(from, to string) rat.Rat { return C }

	fmt.Printf("Figure 1: ntask(G) = %v; period T = %v with %d communication rounds\n",
		sched.Throughput, sched.Period(), len(sched.Slots))
	fmt.Printf("start-up cost per round C = %v\n\n", C)

	fmt.Printf("%-8s %-16s %-16s\n", "m", "eff. throughput", "fraction of opt")
	for _, m := range []int64{1, 2, 4, 8, 16, 32, 128, 512} {
		g, err := sched.Grouped(m)
		if err != nil {
			log.Fatal(err)
		}
		eff, err := g.EffectiveThroughput(startup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-16.4f %.4f\n", m, eff.Float64(), eff.Div(sched.Throughput).Float64())
	}

	fmt.Println("\nthe sqrt rule of §5.2 for finite workloads:")
	fmt.Printf("%-10s %-8s %-14s %-14s\n", "n", "m*", "makespan", "ratio vs n/ntask")
	T, _ := new(big.Float).SetInt(sched.Period()).Float64()
	for _, n := range []float64{1e3, 1e4, 1e5, 1e6} {
		// m* = ceil(sqrt(n / ntask) / T).
		mStar := int64(math.Ceil(math.Sqrt(n/sched.Throughput.Float64()) / T))
		if mStar < 1 {
			mStar = 1
		}
		g, err := sched.Grouped(mStar)
		if err != nil {
			log.Fatal(err)
		}
		extRat, err := g.StartupExtension(startup)
		if err != nil {
			log.Fatal(err)
		}
		periodLen := float64(mStar)*T + extRat.Float64()
		tasksPerPeriod, _ := new(big.Float).SetInt(g.TasksPerPeriod()).Float64()
		periods := math.Ceil(n / tasksPerPeriod)
		makespan := periods * periodLen
		lb := n / sched.Throughput.Float64()
		fmt.Printf("%-10.0f %-8d %-14.0f %.5f\n", n, mStar, makespan, makespan/lb)
	}
	fmt.Println("\nthe ratio tends to 1: start-up overheads vanish asymptotically (§5.2).")
}
