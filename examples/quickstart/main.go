// Quickstart: solve the steady-state master-slave problem on a small
// heterogeneous platform, reconstruct the asymptotically optimal
// periodic schedule, and validate it in simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/rat"
	"repro/internal/schedule"
	"repro/internal/sim"
)

func main() {
	// 1. Describe the platform of §2: a master, a pure forwarder
	//    (w = +inf) and two workers, with oriented weighted links.
	p := platform.New()
	master := p.AddNode("master", platform.WInt(4)) // 4 time units per task
	relay := p.AddNode("relay", platform.WInf())    // forwards, never computes
	fast := p.AddNode("fast", platform.WInt(1))
	slow := p.AddNode("slow", platform.WInt(3))
	p.AddEdge(master, relay, rat.New(1, 2)) // half a time unit per task file
	p.AddEdge(relay, fast, rat.One())
	p.AddEdge(relay, slow, rat.One())
	p.AddEdge(master, slow, rat.FromInt(2)) // a second, slower route

	fmt.Print(p)

	// 2. Solve the §3.1 linear program SSMS(G).
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal steady-state throughput ntask(G) = %v = %.4f tasks/time-unit\n",
		ms.Throughput, ms.Throughput.Float64())
	for i := 0; i < p.NumNodes(); i++ {
		fmt.Printf("  %-7s computes %v of the time (%v tasks/unit)\n",
			p.Name(i), ms.Alpha[i], ms.ComputeRate(i))
	}

	// 3. Reconstruct the §4.1 periodic schedule: period = lcm of the
	//    denominators; communications orchestrated into matchings.
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstructed schedule: %v\n", per)
	for i, s := range per.Slots {
		fmt.Printf("  slot %d (duration %v):", i, s.Dur)
		for _, e := range s.Edges {
			ed := p.Edge(e)
			fmt.Printf("  %s->%s", p.Name(ed.From), p.Name(ed.To))
		}
		fmt.Println()
	}

	// 4. Execute it from cold buffers: steady state is reached within
	//    depth(G) periods and every later period completes exactly
	//    T * ntask tasks (§4.2).
	stats, err := sim.RunPeriodicMasterSlave(per, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation (12 periods, cold start):\n")
	for pd, done := range stats.DonePerPeriod {
		fmt.Printf("  period %2d: %v tasks\n", pd, done)
	}
	fmt.Printf("steady state reached after %d periods (platform depth %d)\n",
		stats.SteadyAfter, p.MaxDepthFrom(master))
}
