// Quickstart: solve the steady-state master-slave problem on a small
// heterogeneous platform through the public pkg/steady facade,
// reconstruct the asymptotically optimal periodic schedule, and
// validate it in simulation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func main() {
	// 1. Describe the platform of §2: a master, a pure forwarder
	//    (w = +inf) and two workers, with oriented weighted links.
	//    (pkg/steady/platform is the facade's input type — platforms can
	//    also be loaded from JSON with platform.ReadJSON.)
	p := platform.New()
	master := p.AddNode("master", platform.WInt(4)) // 4 time units per task
	relay := p.AddNode("relay", platform.WInf())    // forwards, never computes
	fast := p.AddNode("fast", platform.WInt(1))
	slow := p.AddNode("slow", platform.WInt(3))
	p.AddEdge(master, relay, rat.New(1, 2)) // half a time unit per task file
	p.AddEdge(relay, fast, rat.One())
	p.AddEdge(relay, slow, rat.One())
	p.AddEdge(master, slow, rat.FromInt(2)) // a second, slower route

	fmt.Print(p)

	// 2. Solve the §3.1 linear program SSMS(G) through the facade.
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "master"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal steady-state throughput ntask(G) = %v = %.4f tasks/time-unit\n",
		res.Throughput, res.ThroughputFloat())
	for _, n := range res.Nodes {
		fmt.Printf("  %-7s computes %v of the time (%v tasks/unit)\n",
			n.Name, n.Alpha, n.Rate)
	}

	// 3. Reconstruct the §4.1 periodic schedule: period = lcm of the
	//    denominators; communications orchestrated into matchings.
	sch, err := res.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstructed schedule: %v\n", sch.Summary)
	for i, s := range sch.Slots {
		fmt.Printf("  slot %d (duration %v):", i, s.Dur)
		for _, l := range s.Links {
			fmt.Printf("  %s->%s", l[0], l[1])
		}
		fmt.Println()
	}

	// 4. Execute it from cold buffers: steady state is reached within
	//    depth(G) periods and every later period completes exactly
	//    T * ntask tasks (§4.2).
	stats, err := sch.Simulate(12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation (12 periods, cold start):\n")
	for pd, done := range stats.DonePerPeriod {
		fmt.Printf("  period %2d: %v tasks\n", pd, done)
	}
	fmt.Printf("steady state reached after %d periods (platform depth %d)\n",
		stats.SteadyAfter, p.MaxDepthFrom(master))
}
