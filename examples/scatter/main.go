// Pipelined scatter: solve SSPS(G) (§3.2) on a random grid platform,
// reconstruct the periodic schedule and print the per-type message
// routes of one period.
//
//	go run ./examples/scatter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/schedule"
)

func main() {
	rng := rand.New(rand.NewSource(2004)) // the paper's year, for luck
	p := platform.Grid(rng, 2, 3, 4, 3)
	src := 0
	targets := []int{2, 4, 5}

	fmt.Println("A 2x3 grid platform:")
	fmt.Print(p)
	fmt.Printf("\nsource %s scatters distinct messages to", p.Name(src))
	for _, t := range targets {
		fmt.Printf(" %s", p.Name(t))
	}
	fmt.Println()

	sc, err := core.SolveScatter(p, src, targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal pipelined throughput TP = %v = %.4f scatters/time-unit\n",
		sc.Throughput, sc.Throughput.Float64())

	sp, err := schedule.ReconstructScatter(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("periodic schedule: %v\n", sp)

	fmt.Println("\nper-period message counts by edge and destination:")
	for e := 0; e < p.NumEdges(); e++ {
		any := false
		for k := range targets {
			if sp.Msgs[e][k].Sign() > 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		ed := p.Edge(e)
		fmt.Printf("  %s->%s:", p.Name(ed.From), p.Name(ed.To))
		for k, t := range targets {
			if sp.Msgs[e][k].Sign() > 0 {
				fmt.Printf("  %v msgs for %s", sp.Msgs[e][k], p.Name(t))
			}
		}
		fmt.Println()
	}

	fmt.Println("\ncommunication orchestration (each slot is a matching):")
	for i, s := range sp.Slots {
		fmt.Printf("  slot %d (dur %v):", i, s.Dur)
		for _, e := range s.Edges {
			ed := p.Edge(e)
			fmt.Printf(" %s->%s", p.Name(ed.From), p.Name(ed.To))
		}
		fmt.Println()
	}
}
