// Pipelined scatter: solve SSPS(G) (§3.2) on a random grid platform
// through the public facade, reconstruct the periodic schedule and
// print the busy links and communication orchestration of one period.
//
//	go run ./examples/scatter
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

func main() {
	rng := rand.New(rand.NewSource(2004)) // the paper's year, for luck
	p := platform.Grid(rng, 2, 3, 4, 3)
	src := p.Name(0)
	targets := []string{p.Name(2), p.Name(4), p.Name(5)}

	fmt.Println("A 2x3 grid platform:")
	fmt.Print(p)
	fmt.Printf("\nsource %s scatters distinct messages to %v\n", src, targets)

	solver, err := steady.New(steady.Spec{Problem: "scatter", Root: src, Targets: targets})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal pipelined throughput TP = %v = %.4f scatters/time-unit\n",
		res.Throughput, res.ThroughputFloat())

	fmt.Println("\nper-link busy fractions of the LP witness (nonzero only):")
	for _, l := range res.Links {
		if !l.Busy.IsZero() {
			fmt.Printf("  %s->%s: busy %v\n", l.From, l.To, l.Busy)
		}
	}

	sched, err := res.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperiodic schedule: %v\n", sched.Summary)

	fmt.Println("\ncommunication orchestration (each slot is a matching):")
	for i, s := range sched.Slots {
		fmt.Printf("  slot %d (dur %v):", i, s.Dur)
		for _, l := range s.Links {
			fmt.Printf(" %s->%s", l[0], l[1])
		}
		fmt.Println()
	}
}
