// Server example: start the steadyd HTTP service in-process and
// drive it as a client would — list solvers, solve the paper's
// Figure 1 platform twice (the second hits the sharded LP-solution
// cache), stream a small sweep, and read the service stats.
//
//	go run ./examples/server
//
// Against a separately running daemon (`go run ./cmd/steadyd`), the
// same requests work with curl; see docs/API.md.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/server"
)

func main() {
	// Start the service on a loopback port, as cmd/steadyd would.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: server.New(server.Config{}).Handler()}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Println("steadyd serving on", base)

	// 1. Discover the registered problems.
	var solvers server.SolversResponse
	getJSON(base+"/v1/solvers", &solvers)
	fmt.Printf("\n%d registered problems:\n", len(solvers.Problems))
	for _, s := range solvers.Problems {
		fmt.Printf("  %-16s %s\n", s.Problem, s.Description)
	}

	// 2. Solve Figure 1 twice: an LP solve, then a cache hit.
	var buf bytes.Buffer
	if err := platform.Figure1().WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	req := server.SolveRequest{Problem: "masterslave", Root: "P1", Platform: buf.Bytes()}
	fmt.Println("\nPOST /v1/solve (Figure 1, masterslave, root P1):")
	for i := 0; i < 2; i++ {
		var res server.SolveResponse
		postJSON(base+"/v1/solve", req, &res)
		fmt.Printf("  ntask(G) = %s (%.4f), cache_hit=%v, %dus\n",
			res.Throughput, res.Value, res.CacheHit, res.ElapsedMicros)
	}

	// 3. Stream a sweep over 8 random platforms as NDJSON.
	sweep := server.SweepRequest{
		Problem:   "masterslave",
		Generator: &server.Generator{Count: 8, Seed: 1},
		Format:    "ndjson",
	}
	body, _ := json.Marshal(sweep)
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPOST /v1/sweep (8 random platforms), streamed records:")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec struct {
			Job      string `json:"job"`
			Tput     string `json:"throughput"`
			CacheHit bool   `json:"cache_hit"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s throughput=%-6s cache_hit=%v\n", rec.Job, rec.Tput, rec.CacheHit)
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// 4. Read the service counters.
	var stats server.StatsResponse
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("\nstats: %d solves, %d cache hits (rate %.2f), %d cached entries in %d shards\n",
		stats.Cache.Solves, stats.Cache.Hits, stats.Cache.HitRate,
		stats.Cache.Entries, stats.Cache.Shards)
}

func getJSON(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(resp, dst)
}

func postJSON(url string, body, dst any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(resp, dst)
}

func decode(resp *http.Response, dst any) {
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: %s", resp.Status, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}
