#!/usr/bin/env bash
# control_smoke.sh — boot a LIVE steadyd with a fast control epoch and
# prove the online scheduling control plane end to end:
#
#   1. cmd/steadyagent registers the demo star (P1 w=1 -> P2 w=2 c=1,
#      P3 w=3 c=2) as a deployment and streams telemetry at it; halfway
#      through, the observed P1->P2 bandwidth cost shifts x1.5 — the
#      NWS-forecast step change of §5.5;
#   2. the control plane notices the drift and publishes a re-solved
#      epoch while telemetry is still flowing (within a couple of
#      200ms control epochs — the agent run is gated at 6s wall);
#   3. a plain `curl -N` subscriber on /v1/deployments/{id}/watch saw
#      BOTH epochs as SSE events, and the v2 drift epoch carries a
#      delta against v1: throughput changed, node P3 re-rated, both
#      links re-rated;
#   4. the drift re-solve was warm — it reused the create epoch's
#      simplex basis with at most 2 exact pivots (re-planning after a
#      bandwidth change costs ~zero exact work);
#   5. the v2 schedule is byte-identical to a FRESH daemon's certified
#      cold solve of the true drifted platform (c(P1->P2)=3/2,
#      throughput 13/8): same fingerprint, same exact rates — the
#      telemetry estimate converged to the real platform and the warm
#      path changes nothing about the answer;
#   6. the steady_control_* metric families are exported.
#
# CI runs it on every push; locally: ./scripts/control_smoke.sh
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
DIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$DIR"
}
trap cleanup EXIT

cd "$REPO"
go build -o "$DIR/steadyd" ./cmd/steadyd
go build -o "$DIR/steadyagent" ./cmd/steadyagent
go build -o "$DIR/metricscheck" ./cmd/metricscheck

wait_up() { # wait_up <base-url>
  for i in $(seq 1 100); do
    curl -fsS "$1/v1/deployments" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  return 1
}

# Boot the daemon under test with a fast control epoch; probe a few
# ports in case one is taken.
BOOTED=0
for PORT in 18491 18591 18691; do
  URL="http://127.0.0.1:$PORT"
  "$DIR/steadyd" -addr "127.0.0.1:$PORT" -control-epoch 200ms \
    >"$DIR/steadyd.log" 2>&1 &
  DPID=$!
  if wait_up "$URL"; then PIDS+=("$DPID"); BOOTED=1; break; fi
  kill "$DPID" 2>/dev/null || true
done
if [ "$BOOTED" != "1" ]; then
  echo "control_smoke: could not boot steadyd" >&2
  exit 1
fi
echo "control_smoke: steadyd up on $URL (control epoch 200ms)"

# --- the agent drives a bandwidth shift through the control plane ----
# 8 telemetry rounds every 150ms; from round 2 on, the observed
# P1->P2 cost is 1.5 instead of 1. The agent exits 0 only after its
# own watch stream delivers a drift epoch, and prints the final
# deployment snapshot. The 6s wall gate is the "re-solve landed while
# telemetry was still flowing" assertion (the rounds alone take 1.2s).
START=$SECONDS
"$DIR/steadyagent" -addr "$URL" -id smoke -root P1 -interval 150ms -rounds 8 \
  -shift-at 2 -shift-factor 1.5 -timeout 20s -v \
  >"$DIR/snapshot.json" 2>"$DIR/agent.log" &
AGENT=$!

# A second, independent subscriber: plain curl on the SSE stream, as
# an operator would tail it. Wait for the agent to create the
# deployment first (watching an unknown id is a 404).
for i in $(seq 1 100); do
  curl -fsS "$URL/v1/deployments/smoke" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -NfsS --max-time 30 "$URL/v1/deployments/smoke/watch" \
  >"$DIR/watch.sse" 2>/dev/null &
CURL=$!

if ! wait "$AGENT"; then
  echo "control_smoke: steadyagent failed:" >&2
  cat "$DIR/agent.log" >&2
  exit 1
fi
ELAPSED=$((SECONDS - START))
if [ "$ELAPSED" -gt 6 ]; then
  echo "control_smoke: drift re-solve took ${ELAPSED}s — not within the control epoch" >&2
  exit 1
fi
echo "control_smoke: agent saw the drift epoch in ${ELAPSED}s (rounds alone take 1.2s)"

# Give the curl subscriber a beat to flush the v2 event, then stop it.
for i in $(seq 1 50); do
  grep -q '^id: 2$' "$DIR/watch.sse" 2>/dev/null && break
  sleep 0.1
done
kill "$CURL" 2>/dev/null || true
wait "$CURL" 2>/dev/null || true

# --- the watch stream carried both epochs, v2 with a delta -----------
python3 - "$DIR/watch.sse" <<'EOF'
import json, sys
events = {}
for line in open(sys.argv[1]):
    if line.startswith("data: "):
        ep = json.loads(line[len("data: "):])
        events[ep["version"]] = ep
if 1 not in events or 2 not in events:
    sys.exit(f"control_smoke: watch stream missing epochs (saw {sorted(events)})")
v1, v2 = events[1], events[2]
fail = []
if v1["reason"] != "create" or v1["throughput"] != "7/4":
    fail.append(f"v1 is {v1['reason']}/{v1['throughput']}, want create/7/4")
if v2["reason"] != "drift" or v2["throughput"] != "13/8":
    fail.append(f"v2 is {v2['reason']}/{v2['throughput']}, want drift/13/8")
d = v2.get("delta")
if not d:
    fail.append("v2 has no delta")
else:
    if d["from_version"] != 1: fail.append(f"delta.from_version {d['from_version']}")
    if not d["throughput_changed"]: fail.append("delta says throughput unchanged")
    if [n["name"] for n in d.get("nodes", [])] != ["P3"]:
        fail.append(f"delta nodes {d.get('nodes')}, want just P3")
    if len(d.get("links", [])) != 2:
        fail.append(f"delta links {d.get('links')}, want both")
if fail: sys.exit("control_smoke: " + "; ".join(fail))
print("control_smoke: watch delivered v1 (create) and v2 (drift) with a delta "
      f"touching {len(d['nodes'])} node(s) and {len(d['links'])} link(s)")
EOF

# --- the re-solve was warm and the estimate converged exactly --------
python3 - "$DIR/snapshot.json" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
ep = snap["epoch"]
fail = []
if ep["version"] != 2: fail.append(f"final version {ep['version']}, want 2 (one clean re-solve)")
if not ep["warm_started"]: fail.append("drift re-solve was not warm-started")
if ep["pivots"] > 2: fail.append(f"{ep['pivots']} exact pivots, want <= 2")
if snap["warm_resolves"] != 1: fail.append(f"warm_resolves {snap['warm_resolves']}")
link = next(l for l in snap["model_links"] if l["from"] == "P1" and l["to"] == "P2")
if link["current"] != "3/2":
    fail.append(f"estimated c(P1->P2) {link['current']!r}, want exactly 3/2")
if fail: sys.exit("control_smoke: " + "; ".join(fail))
print(f"control_smoke: warm re-solve with {ep['pivots']} exact pivots, "
      f"estimated c(P1->P2) = {link['current']}")
EOF

# --- byte-identity: v2 equals a fresh certified solve ----------------
# A SECOND daemon (empty cache, no telemetry) solves the true drifted
# platform cold; every certified quantity of the control plane's warm
# v2 epoch must match it exactly.
FRESH=0
for PORT2 in 18791 18891 18991; do
  URL2="http://127.0.0.1:$PORT2"
  "$DIR/steadyd" -addr "127.0.0.1:$PORT2" >"$DIR/steadyd2.log" 2>&1 &
  DPID2=$!
  if wait_up "$URL2"; then PIDS+=("$DPID2"); FRESH=1; break; fi
  kill "$DPID2" 2>/dev/null || true
done
if [ "$FRESH" != "1" ]; then
  echo "control_smoke: could not boot the fresh comparison daemon" >&2
  exit 1
fi
DRIFTED='{"nodes":[{"name":"P1","w":"1"},{"name":"P2","w":"2"},{"name":"P3","w":"3"}],"edges":[{"from":"P1","to":"P2","c":"3/2"},{"from":"P1","to":"P3","c":"2"}]}'
printf '{"problem":"masterslave","root":"P1","platform":%s}' "$DRIFTED" > "$DIR/solve.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data @"$DIR/solve.json" "$URL2/v1/solve" > "$DIR/fresh.json"
python3 - "$DIR/snapshot.json" "$DIR/fresh.json" <<'EOF'
import json, sys
ep = json.load(open(sys.argv[1]))["epoch"]
fresh = json.load(open(sys.argv[2]))
def canon(d):
    # The certified quantities: platform fingerprint, exact objective,
    # and the full exact schedule. (Warm/cold, pivots, cache and
    # timing legitimately differ.)
    return json.dumps({k: d[k] for k in
                       ("solver", "fingerprint", "throughput", "value",
                        "nodes", "links")}, sort_keys=True)
a, b = canon(ep), canon(fresh)
if a != b:
    sys.exit(f"control_smoke: warm v2 differs from fresh certified solve:\n{a}\n{b}")
print(f"control_smoke: v2 byte-identical to fresh cold solve "
      f"(fingerprint {fresh['fingerprint'][:12]}..., throughput {fresh['throughput']})")
EOF

# --- metrics: the control families are exported ----------------------
"$DIR/metricscheck" -url "$URL/metrics" -require \
  steady_control_deployments,steady_control_watchers,steady_control_ticks_total,steady_control_epochs_total,steady_control_resolves_total,steady_control_resolve_errors_total,steady_control_warm_resolves_total,steady_control_resolve_pivots_total,steady_control_drift_events_total,steady_control_drift_suppressed_total,steady_control_observations_total,steady_control_observations_rejected_total,steady_control_watch_evictions_total,steady_control_watch_resyncs_total,steady_control_delta_changes_total

echo "control smoke OK"
