#!/usr/bin/env bash
# cluster_smoke.sh — boot a LIVE 3-node steadyd cluster on loopback and
# prove the scaling story end to end:
#
#   1. all three peers see each other healthy via /v1/cluster;
#   2. a forwarded solve answers byte-identically to a direct solve on
#      the owner (ignoring the per-request cache_hit/elapsed_us fields);
#   3. a hot-dominated steadybench run sustains the throughput floor
#      with zero errors, a >=95% cluster-wide cache hit rate, and live
#      forwarding traffic; its p99 is reported;
#   4. warm-basis shipping actually happened (basis_ships >= 1
#      cluster-wide — the /v1/simulate slice of the mix solves locally
#      on non-owners, which ship the owner's basis);
#   5. killing one node leaves a cluster that still answers every
#      request (zero errors after the ring rebalances — graceful
#      degradation, never a 5xx);
#   6. the steady_cluster_* metric families are exported.
#
# The throughput floor scales with the machine: on a big box
# (>= 16 CPUs) the gate is the full 100000 req/s target from the
# scaling work; on smaller machines (CI runners, laptops) it is
# 1500 req/s per CPU so the smoke stays meaningful without flaking.
# Override with CLUSTER_SMOKE_MIN_RPS, e.g.:
#
#   CLUSTER_SMOKE_MIN_RPS=100000 ./scripts/cluster_smoke.sh   # the real gate
#   CLUSTER_SMOKE_MIN_RPS=1 ./scripts/cluster_smoke.sh        # just the behavior checks
#
# CI runs it on every push; locally: ./scripts/cluster_smoke.sh
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
DIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$DIR"
}
trap cleanup EXIT

cd "$REPO"
go build -o "$DIR/steadyd" ./cmd/steadyd
go build -o "$DIR/steadybench" ./cmd/steadybench
go build -o "$DIR/metricscheck" ./cmd/metricscheck

NCPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$NCPU" -ge 16 ]; then
  DEFAULT_MIN_RPS=100000
else
  DEFAULT_MIN_RPS=$((1500 * NCPU))
fi
MIN_RPS="${CLUSTER_SMOKE_MIN_RPS:-$DEFAULT_MIN_RPS}"
DURATION="${CLUSTER_SMOKE_DURATION:-10s}"
CONNS="${CLUSTER_SMOKE_CONNS:-$((32 * NCPU))}"

# Three peers on consecutive loopback ports; probe a few bases in case
# one is taken.
start_cluster() {
  local base=$1
  P1="http://127.0.0.1:$base"; P2="http://127.0.0.1:$((base+1))"; P3="http://127.0.0.1:$((base+2))"
  PEERS="$P1,$P2,$P3"
  PIDS=()
  for url in "$P1" "$P2" "$P3"; do
    "$DIR/steadyd" -addr "${url#http://}" -self "$url" -peers "$PEERS" \
      -health-interval 250ms -queue-wait 2s >"$DIR/node-${url##*:}.log" 2>&1 &
    PIDS+=($!)
  done
  # Every peer must answer and see BOTH others healthy.
  for i in $(seq 1 100); do
    healthy=0
    for url in "$P1" "$P2" "$P3"; do
      n="$(curl -fsS "$url/v1/cluster" 2>/dev/null | python3 -c '
import json,sys
try: d=json.load(sys.stdin)
except Exception: print(0); raise SystemExit
print(sum(1 for p in d.get("peers",[]) if p["healthy"]))' 2>/dev/null || echo 0)"
      [ "$n" = "3" ] && healthy=$((healthy+1))
    done
    [ "$healthy" = "3" ] && return 0
    sleep 0.1
  done
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  PIDS=()
  return 1
}

BOOTED=0
for base in 18191 18291 18391; do
  if start_cluster "$base"; then BOOTED=1; break; fi
done
if [ "$BOOTED" != "1" ]; then
  echo "cluster_smoke: could not boot a healthy 3-node cluster" >&2
  exit 1
fi
echo "cluster_smoke: 3 nodes up ($PEERS), all healthy"

# --- byte-identity: a forwarded solve equals a direct solve ----------
PLAT='{"nodes":[{"name":"P1","w":"1"},{"name":"P2","w":"2"},{"name":"P3","w":"3"}],"edges":[{"from":"P1","to":"P2","c":"1"},{"from":"P1","to":"P3","c":"2"}]}'
printf '{"problem":"masterslave","root":"P1","platform":%s}' "$PLAT" > "$DIR/solve.json"
for url in "$P1" "$P2" "$P3"; do
  curl -fsS -X POST -H 'Content-Type: application/json' \
    --data @"$DIR/solve.json" "$url/v1/solve" > "$DIR/resp-${url##*:}.json"
done
python3 - "$DIR"/resp-*.json <<'EOF'
import json, sys
def canon(path):
    d = json.load(open(path))
    # cache_hit and elapsed_us legitimately differ per request; every
    # certified quantity must not.
    d.pop("cache_hit", None); d.pop("elapsed_us", None)
    return json.dumps(d, sort_keys=True)
resps = [canon(p) for p in sys.argv[1:]]
if len(set(resps)) != 1:
    sys.exit("cluster_smoke: forwarded and direct solves differ:\n" + "\n".join(resps))
EOF
echo "cluster_smoke: forwarded solve byte-identical to direct solve"

# --- load: hot-dominated mix across all three nodes ------------------
"$DIR/steadybench" -targets "$PEERS" -duration "$DURATION" -conns "$CONNS" \
  -platforms 24 -mix solve=96,simulate=4 -json > "$DIR/bench.json"
python3 - "$DIR/bench.json" "$MIN_RPS" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1])); floor = float(sys.argv[2])
print(f"cluster_smoke: {rep['requests']} requests, {rep['rps']:.0f} req/s "
      f"(floor {floor:.0f}), p99 <= {rep['p99_us']}us, "
      f"hit rate {100*rep['hit_rate']:.1f}%, forwards {rep['forwards']}, "
      f"basis ships {rep['basis_ships']}, errors {rep['errors']}")
fail = []
if rep["rps"] < floor: fail.append(f"rps {rep['rps']:.0f} under floor {floor:.0f}")
if rep["errors"] != 0: fail.append(f"{rep['errors']} errors (statuses {rep['statuses']})")
if not rep["cluster"]: fail.append("targets are not clustered")
if rep["hit_rate"] < 0.95: fail.append(f"cluster-wide hit rate {rep['hit_rate']:.3f} < 0.95")
if rep["forwards"] == 0: fail.append("no forwarding traffic")
if fail: sys.exit("cluster_smoke: " + "; ".join(fail))
EOF

# Basis shipping is cumulative across boot + run (the first non-owner
# /v1/simulate of each solver ships once, then its local basis is warm).
SHIPS=0
for url in "$P1" "$P2" "$P3"; do
  n="$(curl -fsS "$url/v1/cluster" | python3 -c 'import json,sys; print(json.load(sys.stdin)["counters"]["basis_ships"])')"
  SHIPS=$((SHIPS + n))
done
if [ "$SHIPS" -lt 1 ]; then
  echo "cluster_smoke: no warm basis was ever shipped" >&2
  exit 1
fi
echo "cluster_smoke: $SHIPS warm bases shipped cluster-wide"

# --- peer loss: the survivors keep answering everything --------------
kill "${PIDS[2]}" 2>/dev/null || true
wait "${PIDS[2]}" 2>/dev/null || true
PIDS=("${PIDS[0]}" "${PIDS[1]}")
sleep 1  # > health-interval: both survivors notice
"$DIR/steadybench" -targets "$P1,$P2" -duration 3s -conns "$CONNS" \
  -platforms 24 -mix solve=100 -json > "$DIR/bench2.json"
python3 - "$DIR/bench2.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
if rep["errors"] != 0:
    sys.exit(f"cluster_smoke: {rep['errors']} errors after peer loss (statuses {rep['statuses']})")
print(f"cluster_smoke: after peer loss: {rep['rps']:.0f} req/s, 0 errors")
EOF

# --- metrics: the cluster families are exported ----------------------
"$DIR/metricscheck" -url "$P1/metrics" -require \
  steady_cluster_forwards_total,steady_cluster_forward_errors_total,steady_cluster_forwarded_served_total,steady_cluster_basis_ships_total,steady_cluster_basis_ship_errors_total,steady_cluster_health_checks_total,steady_cluster_ring_size,steady_cluster_peers,steady_cluster_peers_healthy,steady_cluster_peer_up

echo "cluster smoke OK"
