#!/usr/bin/env bash
# extmodule_smoke.sh — prove the pkg/ tree is importable from OUTSIDE
# this module, forever.
#
# Materializes a throwaway Go module in a temp dir with a `replace`
# directive pointing back at this checkout, writes a small client that
# builds a platform, validates a spec, solves it with a warm-started
# re-solve, and round-trips the platform through the JSON codec —
# using ONLY repro/pkg/... imports — then builds and runs it.
#
# Go forbids external modules from importing internal/ packages, so
# this smoke test fails the moment any pkg/... export (transitively)
# requires an internal type from the caller. CI runs it on every push;
# run it locally with: ./scripts/extmodule_smoke.sh
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

cat > "$DIR/go.mod" <<EOF
module extclient

go 1.24

require repro v0.0.0

replace repro => $REPO
EOF

cat > "$DIR/main.go" <<'EOF'
// extclient is the out-of-module consumer of repro's public API: it
// may import repro/pkg/... only, and must be able to do everything
// the README quickstart promises.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

func main() {
	spec := steady.Spec{Problem: "masterslave", Root: "P1"}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	solver, err := steady.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	p := platform.Figure1()
	cold, err := solver.Solve(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := solver.Solve(context.Background(), p, steady.WarmStart(cold.Basis()))
	if err != nil {
		log.Fatal(err)
	}
	if !warm.Throughput.Equal(cold.Throughput) || !warm.WarmStarted {
		log.Fatalf("warm re-solve disagrees: %v vs %v", warm.Throughput, cold.Throughput)
	}
	var buf strings.Builder
	if err := p.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	if _, err := platform.ReadJSON(strings.NewReader(buf.String())); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("external module OK: ntask(Figure1) = %v, warm re-solve in %d pivots\n",
		cold.Throughput, warm.Pivots)
}
EOF

cd "$DIR"
go build ./...
go run .
