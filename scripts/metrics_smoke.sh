#!/usr/bin/env bash
# metrics_smoke.sh — scrape a LIVE steadyd and validate its metrics.
#
# Builds steadyd and metricscheck, starts the daemon on a free local
# port, drives one solve and one simulation through the HTTP API, then
# scrapes GET /metrics and feeds it to metricscheck, requiring the
# families every layer of the observability stack must export (lp,
# cache, sim, sim/event, server/RED). Also checks that /v1/stats still
# answers and that -metrics=false turns /metrics into a 404.
#
# CI runs it on every push; locally: ./scripts/metrics_smoke.sh
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
DIR="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

cd "$REPO"
go build -o "$DIR/steadyd" ./cmd/steadyd
go build -o "$DIR/metricscheck" ./cmd/metricscheck

# wait_up starts steadyd with the given extra flags on a free port,
# setting ADDR/BASE/PID. Ports are probed until one binds (the daemon
# exits immediately when the bind fails).
wait_up() {
  for port in 18080 18081 18082 18083 18084; do
    ADDR="127.0.0.1:$port"
    BASE="http://$ADDR"
    "$DIR/steadyd" -addr "$ADDR" "$@" &
    PID=$!
    for i in $(seq 1 50); do
      if ! kill -0 "$PID" 2>/dev/null; then break; fi
      curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && return 0
      sleep 0.1
    done
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=""
  done
  echo "metrics_smoke: could not start steadyd" >&2
  exit 1
}

wait_up

# One small platform, reused by the solve (twice, for a cache hit)
# and the simulation.
PLAT='{"nodes":[{"name":"P1","w":"1"},{"name":"P2","w":"2"},{"name":"P3","w":"3"}],"edges":[{"from":"P1","to":"P2","c":"1"},{"from":"P1","to":"P3","c":"2"}]}'
printf '{"problem":"masterslave","root":"P1","platform":%s}' "$PLAT" > "$DIR/solve.json"
printf '{"problem":"masterslave","root":"P1","platform":%s,"scenario":{"periods":20}}' "$PLAT" > "$DIR/simulate.json"

curl -fsS -X POST -H 'Content-Type: application/json' --data @"$DIR/solve.json" "$BASE/v1/solve" >/dev/null
curl -fsS -X POST -H 'Content-Type: application/json' --data @"$DIR/solve.json" "$BASE/v1/solve" >/dev/null
curl -fsS -X POST -H 'Content-Type: application/json' --data @"$DIR/simulate.json" "$BASE/v1/simulate" >/dev/null
curl -fsS "$BASE/v1/stats" | grep -q '"solvers"'

"$DIR/metricscheck" -url "$BASE/metrics" -require \
  steady_lp_solves_total,steady_cache_misses_total,steady_sim_runs_total,steady_sim_events_total,steady_solve_requests_total,steady_http_requests_total,steady_stage_duration_seconds_count,steady_server_uptime_seconds,steady_control_deployments,steady_control_epochs_total,steady_control_resolves_total,steady_control_drift_events_total,steady_control_observations_total

kill "$PID"; wait "$PID" 2>/dev/null || true; PID=""

# -metrics=false: the endpoint must not exist, the service must still work.
wait_up -metrics=false
CODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/metrics")"
if [ "$CODE" != "404" ]; then
  echo "metrics_smoke: GET /metrics with -metrics=false answered $CODE, want 404" >&2
  exit 1
fi
curl -fsS -X POST -H 'Content-Type: application/json' --data @"$DIR/solve.json" "$BASE/v1/solve" >/dev/null

echo "metrics smoke OK"
