#!/usr/bin/env bash
# bench_cluster.sh — boot a quiet 3-node loopback steadyd cluster, run
# a short hot-dominated steadybench pass, and print the result as one
# `go test -bench`-format line (steadybench -gobench) on stdout:
#
#   BenchmarkSteadybenchCluster3x  <reqs>  <ns/op> ...  <req/s> ...
#
# cmd/benchjson parses that line like any Go benchmark, so cluster
# throughput and latency ride the committed BENCH_PRn.json trajectory
# alongside the in-process benchmarks (CI appends this script's output
# to the bench-smoke run before the benchjson diff). All progress
# chatter goes to stderr; stdout carries only the benchmark line.
#
# Tunables: BENCH_CLUSTER_DURATION (default 3s), BENCH_CLUSTER_CONNS.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
DIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$DIR"
}
trap cleanup EXIT

cd "$REPO"
go build -o "$DIR/steadyd" ./cmd/steadyd
go build -o "$DIR/steadybench" ./cmd/steadybench

NCPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
DURATION="${BENCH_CLUSTER_DURATION:-3s}"
CONNS="${BENCH_CLUSTER_CONNS:-$((16 * NCPU))}"

start_cluster() {
  local base=$1
  P1="http://127.0.0.1:$base"; P2="http://127.0.0.1:$((base+1))"; P3="http://127.0.0.1:$((base+2))"
  PEERS="$P1,$P2,$P3"
  PIDS=()
  for url in "$P1" "$P2" "$P3"; do
    "$DIR/steadyd" -addr "${url#http://}" -self "$url" -peers "$PEERS" \
      -health-interval 250ms -queue-wait 2s >"$DIR/node-${url##*:}.log" 2>&1 &
    PIDS+=($!)
  done
  for i in $(seq 1 100); do
    healthy=0
    for url in "$P1" "$P2" "$P3"; do
      n="$(curl -fsS "$url/v1/cluster" 2>/dev/null | python3 -c '
import json,sys
try: d=json.load(sys.stdin)
except Exception: print(0); raise SystemExit
print(sum(1 for p in d.get("peers",[]) if p["healthy"]))' 2>/dev/null || echo 0)"
      [ "$n" = "3" ] && healthy=$((healthy+1))
    done
    [ "$healthy" = "3" ] && return 0
    sleep 0.1
  done
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  PIDS=()
  return 1
}

BOOTED=0
for base in 18491 18591 18691; do
  if start_cluster "$base"; then BOOTED=1; break; fi
done
if [ "$BOOTED" != "1" ]; then
  echo "bench_cluster: could not boot a healthy 3-node cluster" >&2
  exit 1
fi
echo "bench_cluster: 3 nodes up ($PEERS); $DURATION run, $CONNS conns" >&2

"$DIR/steadybench" -targets "$PEERS" -duration "$DURATION" -conns "$CONNS" \
  -platforms 24 -mix solve=96,simulate=4 -warmup 1s \
  -gobench SteadybenchCluster3x
