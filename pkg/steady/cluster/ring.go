// Package cluster turns a set of steadyd processes into one logical
// solve service: a consistent-hash ring assigns every (Fingerprint,
// solver) cache key an owning peer, non-owners forward solve requests
// to the owner in a single hop, and peers that must solve a key they
// do not own first ask the owner for its cached LP basis — a few
// hundred bytes — so a remote cache miss becomes a ~0-pivot local
// re-solve (warm-basis shipping; the certified result is byte-identical
// either way, see pkg/steady/lp's warm-start contract).
//
// The package is deliberately below pkg/steady/server in the import
// graph: the server owns the HTTP handlers (/v1/cluster and the
// forwarding interception), this package owns the ring, the peer
// client, health tracking, and the steady_cluster_* metrics. Nothing
// here imports the server, the batch engine, or internal/ packages.
//
// Degradation is always graceful: a dead owner, a failed forward, or
// a failed basis fetch falls back to a plain local solve. The cluster
// can lose every peer but one and still answer every request — more
// slowly, never with an availability error.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring positions each peer
// occupies. 64 virtual nodes keep the expected ownership imbalance of
// a small cluster within a few percent while keeping the ring tiny
// (a 16-peer ring is 1024 entries).
const DefaultVirtualNodes = 64

// ringEntry is one virtual node: a position on the 64-bit hash circle
// and the peer that owns it.
type ringEntry struct {
	pos  uint64
	peer string
}

// Ring is an immutable consistent-hash ring over a set of peers.
// Placement is deterministic: the position of every virtual node is a
// pure hash of the peer name and the virtual-node index, so two
// processes given the same peer list build the identical ring and
// agree on every key's owner without coordination. Build one with
// NewRing; derive a degraded view with Without.
type Ring struct {
	entries []ringEntry // sorted by pos
	peers   []string    // sorted, deduplicated
	vnodes  int
}

// NewRing builds a ring over peers with the given virtual-node count
// (<= 0 selects DefaultVirtualNodes). Peer names are deduplicated;
// order does not matter. An empty peer list yields a ring whose Owner
// returns "".
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, vnodes: vnodes}
	r.entries = make([]ringEntry, 0, len(uniq)*vnodes)
	for _, p := range uniq {
		for v := 0; v < vnodes; v++ {
			r.entries = append(r.entries, ringEntry{pos: ringHash(fmt.Sprintf("%s#%d", p, v)), peer: p})
		}
	}
	sort.Slice(r.entries, func(i, j int) bool {
		a, b := r.entries[i], r.entries[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.peer < b.peer // deterministic tie-break on (vanishingly rare) collisions
	})
	return r
}

// ringHash is the ring's placement and lookup hash: 64-bit FNV-1a
// passed through a splitmix64 finalizer. FNV is stable and seedless —
// every process must compute identical positions, which rules out
// maphash — but its raw output clusters on the short, similar strings
// peers and virtual nodes produce; the finalizer spreads those
// clusters over the whole 64-bit circle (TestRingDistribution pins
// the resulting balance).
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	z := h.Sum64() + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Owner returns the peer owning key: the first virtual node at or
// clockwise of the key's position. Returns "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.entries) == 0 {
		return ""
	}
	pos := ringHash(key)
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].pos >= pos })
	if i == len(r.entries) {
		i = 0
	}
	return r.entries[i].peer
}

// Owners returns up to n distinct peers in ring order starting at the
// key's owner — the owner first, then the peers that would own the key
// if the ones before them disappeared. It is the preference order for
// warm-basis fetches: when the owner is down, the next peer in line is
// the likeliest to have solved the key before the last rebalance.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.entries) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	pos := ringHash(key)
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].pos >= pos })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for scanned := 0; scanned < len(r.entries) && len(out) < n; scanned++ {
		e := r.entries[(i+scanned)%len(r.entries)]
		if !seen[e.peer] {
			seen[e.peer] = true
			out = append(out, e.peer)
		}
	}
	return out
}

// Without returns the ring over the same peer set minus the named
// peers — the degraded view used while peers are unhealthy. Keys owned
// by surviving peers keep their owner (the consistent-hashing
// property); only the removed peers' keys move, to their ring
// successors.
func (r *Ring) Without(down map[string]bool) *Ring {
	if len(down) == 0 {
		return r
	}
	kept := make([]string, 0, len(r.peers))
	for _, p := range r.peers {
		if !down[p] {
			kept = append(kept, p)
		}
	}
	if len(kept) == len(r.peers) {
		return r
	}
	return NewRing(kept, r.vnodes)
}

// Peers returns the ring's peer set, sorted.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Size returns the number of virtual nodes on the ring.
func (r *Ring) Size() int { return len(r.entries) }

// VirtualNodes returns the per-peer virtual node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }
