package cluster

import (
	"fmt"
	"testing"
)

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return peers
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Realistic key shape: hex fingerprint + solver name.
		keys[i] = fmt.Sprintf("%064x|masterslave", i*2654435761)
	}
	return keys
}

// TestRingDeterministic: two rings built from the same peers (in any
// order, with duplicates) assign every key the same owner — the
// property that lets peers route without coordination.
func TestRingDeterministic(t *testing.T) {
	peers := testPeers(5)
	a := NewRing(peers, 64)
	shuffled := []string{peers[3], peers[0], peers[4], peers[0], peers[2], peers[1]}
	b := NewRing(shuffled, 64)
	if a.Size() != b.Size() || a.Size() != 5*64 {
		t.Fatalf("ring sizes %d, %d; want %d", a.Size(), b.Size(), 5*64)
	}
	for _, k := range testKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %q: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingDistribution: with virtual nodes, ownership spreads across
// peers roughly evenly — no peer may own more than twice or less than
// half its fair share over a large key set.
func TestRingDistribution(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		ring := NewRing(testPeers(n), 0) // default vnodes
		counts := map[string]int{}
		keys := testKeys(20000)
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("%d peers: only %d ever own a key: %v", n, len(counts), counts)
		}
		fair := len(keys) / n
		for p, got := range counts {
			if got < fair/2 || got > fair*2 {
				t.Errorf("%d peers: %s owns %d keys, fair share %d (out of [%d, %d])",
					n, p, got, fair, fair/2, fair*2)
			}
		}
	}
}

// TestRingRebalanceOnLoss: removing a peer moves ONLY that peer's keys
// (to ring successors); every key owned by a survivor keeps its owner.
// This is the consistent-hashing property that makes peer loss cheap:
// the surviving cache entries all stay valid.
func TestRingRebalanceOnLoss(t *testing.T) {
	peers := testPeers(4)
	full := NewRing(peers, 64)
	lost := peers[1]
	degraded := full.Without(map[string]bool{lost: true})
	if got := len(degraded.Peers()); got != 3 {
		t.Fatalf("degraded ring has %d peers, want 3", got)
	}
	moved := 0
	keys := testKeys(5000)
	for _, k := range keys {
		before, after := full.Owner(k), degraded.Owner(k)
		if after == lost {
			t.Fatalf("degraded ring still routes %q to the lost peer", k)
		}
		if before != lost && before != after {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, before, after)
		}
		if before == lost {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("lost peer owned no keys; distribution test should have caught this")
	}
	// Without no peers down is the identity, not a copy.
	if full.Without(nil) != full || full.Without(map[string]bool{}) != full {
		t.Fatal("Without(nothing) rebuilt the ring")
	}
}

// TestRingOwners: preference order starts at the owner, lists distinct
// healthy peers, and is consistent with Without: the second owner is
// exactly who would own the key if the first disappeared.
func TestRingOwners(t *testing.T) {
	peers := testPeers(4)
	ring := NewRing(peers, 64)
	for _, k := range testKeys(500) {
		owners := ring.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 3) = %v", k, owners)
		}
		if owners[0] != ring.Owner(k) {
			t.Fatalf("Owners[0] %q != Owner %q", owners[0], ring.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q: %v", k, o, owners)
			}
			seen[o] = true
		}
		successor := ring.Without(map[string]bool{owners[0]: true}).Owner(k)
		if successor != owners[1] {
			t.Fatalf("Owners[1] %q, but successor after losing the owner is %q", owners[1], successor)
		}
	}
}

// TestRingEmpty: the empty ring answers rather than panics.
func TestRingEmpty(t *testing.T) {
	ring := NewRing(nil, 8)
	if got := ring.Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := ring.Owners("anything", 2); got != nil {
		t.Fatalf("empty ring owners = %v", got)
	}
}

// BenchmarkRingOwner: Owner is on the forwarding hot path of every
// clustered request — it must stay allocation-free.
func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(testPeers(8), DefaultVirtualNodes)
	keys := testKeys(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i%len(keys)])
	}
}
