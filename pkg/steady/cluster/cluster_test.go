package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/obs"
	"repro/pkg/steady/rat"
)

func testConfig(self string, peers []string) Config {
	return Config{Self: self, Peers: peers, HealthInterval: 10 * time.Millisecond}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("accepted a config without Self")
	}
	if _, err := New(Config{Self: "http://a", Peers: []string{"http://b"}}); err == nil {
		t.Fatal("accepted a peer list missing self")
	}
	c, err := New(Config{Self: "http://a", Peers: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Owner("key") == "" {
		t.Fatal("two-peer cluster owns nothing")
	}
}

// TestMarkPeerRebalances: marking a peer down excludes it from routing
// immediately and keeps survivors' keys in place; marking it back up
// restores the original ring exactly.
func TestMarkPeerRebalances(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	c, err := New(testConfig("http://a", peers))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := testKeys(2000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = c.Owner(k)
	}
	c.MarkPeer("http://b", false)
	for _, k := range keys {
		owner := c.Owner(k)
		if owner == "http://b" {
			t.Fatalf("down peer still owns %q", k)
		}
		if before[k] != "http://b" && owner != before[k] {
			t.Fatalf("key %q moved %q -> %q though its owner is up", k, before[k], owner)
		}
	}
	c.MarkPeer("http://b", true)
	for _, k := range keys {
		if c.Owner(k) != before[k] {
			t.Fatalf("recovery did not restore ownership of %q", k)
		}
	}
	// Self can never be marked down.
	c.MarkPeer("http://a", false)
	for _, st := range c.Health() {
		if st.Self && !st.Healthy {
			t.Fatal("self was marked unhealthy")
		}
	}
}

// TestShouldForward covers the routing decision table: own key (no),
// peer-owned key (yes), peer-owned in NoForward mode (no), peer-owned
// but peer down (owner moves; forwards to the successor or serves
// locally).
func TestShouldForward(t *testing.T) {
	peers := []string{"http://a", "http://b"}
	c, err := New(testConfig("http://a", peers))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mine, theirs string
	for _, k := range testKeys(100) {
		if c.Owner(k) == "http://a" && mine == "" {
			mine = k
		}
		if c.Owner(k) == "http://b" && theirs == "" {
			theirs = k
		}
	}
	if mine == "" || theirs == "" {
		t.Fatal("could not find keys on both peers")
	}
	if _, ok := c.ShouldForward(mine); ok {
		t.Fatal("wants to forward its own key")
	}
	owner, ok := c.ShouldForward(theirs)
	if !ok || owner != "http://b" {
		t.Fatalf("ShouldForward(peer key) = %q, %v", owner, ok)
	}
	c.MarkPeer("http://b", false)
	if owner, ok := c.ShouldForward(theirs); ok {
		t.Fatalf("wants to forward to a down peer's replacement %q (2-peer ring: self)", owner)
	}
	c.MarkPeer("http://b", true)

	nf, err := New(Config{Self: "http://a", Peers: peers, NoForward: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	if _, ok := nf.ShouldForward(theirs); ok {
		t.Fatal("NoForward cluster still wants to forward")
	}
}

// TestHealthLoop: a live health loop detects a dead peer and a healed
// one through real HTTP probes of /v1/cluster.
func TestHealthLoop(t *testing.T) {
	var mu sync.Mutex
	up := true
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ok := up
		mu.Unlock()
		if r.URL.Path != "/v1/cluster" || !ok {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peerSrv.Close()

	self := "http://self.invalid"
	c, err := New(testConfig(self, []string{self, peerSrv.URL}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Start()

	healthy := func(want bool) bool {
		for i := 0; i < 100; i++ {
			for _, st := range c.Health() {
				if st.Peer == peerSrv.URL && st.Healthy == want {
					return true
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false
	}
	if !healthy(true) {
		t.Fatal("peer never became healthy")
	}
	mu.Lock()
	up = false
	mu.Unlock()
	if !healthy(false) {
		t.Fatal("dead peer never detected")
	}
	mu.Lock()
	up = true
	mu.Unlock()
	if !healthy(true) {
		t.Fatal("healed peer never detected")
	}
	if c.Stats().HealthChecks == 0 {
		t.Fatal("no health-check rounds counted")
	}
}

// TestFetchBasis: the basis fetch round-trips a real lp.Basis over
// HTTP, treats 204 as "no basis" without an error count, and counts
// a dead peer as a ship error while returning nil.
func TestFetchBasis(t *testing.T) {
	m := lp.NewModel()
	x := m.Var("x")
	m.Objective(lp.Maximize, lp.Expr{}.Plus(x, rat.One()))
	m.Le("c", lp.Expr{}.Plus(x, rat.One()), rat.One())
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	basis := sol.Basis()
	if basis == nil {
		t.Fatal("no basis to ship")
	}

	var served bool
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != BasisPath {
			http.NotFound(w, r)
			return
		}
		switch r.URL.Query().Get("solver") {
		case "have":
			served = true
			_ = json.NewEncoder(w).Encode(basis)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer owner.Close()

	self := "http://self.invalid"
	reg := obs.New()
	cfg := testConfig(self, []string{self, owner.URL})
	cfg.Obs = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Any key will do: with one live remote peer, Owners always
	// includes it.
	got := c.FetchBasis(context.Background(), "k|have", "have")
	if got == nil || !served {
		t.Fatalf("basis not shipped (got=%v served=%v)", got, served)
	}
	if got.Len() != basis.Len() {
		t.Fatalf("shipped basis has %d entries, want %d", got.Len(), basis.Len())
	}
	if c.Stats().BasisShips != 1 || c.Stats().BasisShipErrors != 0 {
		t.Fatalf("stats after ship: %+v", c.Stats())
	}
	if c.FetchBasis(context.Background(), "k|none", "none") != nil {
		t.Fatal("204 produced a basis")
	}
	if c.Stats().BasisShipErrors != 0 {
		t.Fatal("204 counted as a ship error")
	}

	owner.Close()
	if c.FetchBasis(context.Background(), "k|have", "have") != nil {
		t.Fatal("dead peer produced a basis")
	}
	if c.Stats().BasisShipErrors == 0 {
		t.Fatal("dead peer not counted as ship error")
	}
	// The metrics registry mirrors the same counters.
	if v := counterValue(t, reg, "steady_cluster_basis_ships_total"); v != 1 {
		t.Fatalf("steady_cluster_basis_ships_total = %v, want 1", v)
	}
}

func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
