package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/obs"
)

// ForwardedHeader marks a request that was already forwarded once by
// a peer. A receiving peer never forwards such a request again — it
// serves it locally whatever its ring says — so a request crosses the
// cluster at most one hop and routing loops are impossible even while
// peers disagree about membership.
const ForwardedHeader = "X-Steady-Forwarded"

// ServedByHeader names the peer whose cache/solver actually produced
// a forwarded response, for observability on the client side.
const ServedByHeader = "X-Steady-Served-By"

// BasisPath is the route peers fetch warm bases from, relative to a
// peer's base URL. The solver name travels in the "solver" query
// parameter; the response is the lp.Basis JSON wire form, or 204 when
// the peer has no basis for that solver yet.
const BasisPath = "/v1/cluster/basis"

// Config describes one peer's view of the cluster. Self and Peers are
// base URLs ("http://10.0.0.1:8080"); Peers must include Self.
type Config struct {
	// Self is this process's own base URL, used to recognize keys it
	// owns. Required.
	Self string
	// Peers is the static membership list, including Self. Every peer
	// must be configured with the same list (order and duplicates do
	// not matter — the ring sorts and deduplicates).
	Peers []string
	// VirtualNodes is the per-peer virtual-node count of the ring;
	// 0 selects DefaultVirtualNodes.
	VirtualNodes int
	// NoForward switches the peer into degraded mode: it never
	// forwards a request, but before solving a key it does not own it
	// still ships the owner's warm basis, so remote misses stay cheap.
	NoForward bool
	// HealthInterval is the period of the background peer health
	// check; 0 = 1s. Health is probed with GET <peer>/v1/cluster.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe; 0 = 1s.
	HealthTimeout time.Duration
	// ForwardTimeout bounds one forwarded request end to end; it must
	// cover the owner's solve. 0 = 60s.
	ForwardTimeout time.Duration
	// BasisTimeout bounds one warm-basis fetch (a few hundred bytes);
	// 0 = 2s.
	BasisTimeout time.Duration
	// MaxPeerConns bounds the connection pool per peer; 0 = 128.
	MaxPeerConns int
	// Obs, when non-nil, receives the steady_cluster_* metrics.
	Obs *obs.Registry
}

func (c Config) withDefaults() (Config, error) {
	if c.Self == "" {
		return c, fmt.Errorf("cluster: Config.Self is required")
	}
	if _, err := url.Parse(c.Self); err != nil {
		return c, fmt.Errorf("cluster: bad self URL %q: %w", c.Self, err)
	}
	inPeers := false
	for _, p := range c.Peers {
		if _, err := url.Parse(p); err != nil {
			return c, fmt.Errorf("cluster: bad peer URL %q: %w", p, err)
		}
		if p == c.Self {
			inPeers = true
		}
	}
	if !inPeers {
		return c, fmt.Errorf("cluster: peer list %v does not contain self %q", c.Peers, c.Self)
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 60 * time.Second
	}
	if c.BasisTimeout <= 0 {
		c.BasisTimeout = 2 * time.Second
	}
	if c.MaxPeerConns <= 0 {
		c.MaxPeerConns = 128
	}
	return c, nil
}

// PeerStatus is one peer's health as seen by this process, reported
// by Health and rendered in /v1/cluster.
type PeerStatus struct {
	Peer    string `json:"peer"`
	Self    bool   `json:"self,omitempty"`
	Healthy bool   `json:"healthy"`
}

// Stats is a snapshot of the cluster counters, rendered in
// /v1/cluster.
type Stats struct {
	// Forwards counts requests this peer forwarded to an owner;
	// ForwardErrors the forwards that failed and fell back to a local
	// solve. ForwardedServed counts requests this peer served that
	// arrived already forwarded (it was the owner).
	Forwards        int64 `json:"forwards"`
	ForwardErrors   int64 `json:"forward_errors"`
	ForwardedServed int64 `json:"forwarded_served"`
	// BasisShips counts warm bases successfully fetched from a peer
	// before a local solve of a non-owned key; BasisShipErrors the
	// fetches that failed (the solve then ran cold — never an error).
	BasisShips      int64 `json:"basis_ships"`
	BasisShipErrors int64 `json:"basis_ship_errors"`
	// HealthChecks counts completed probe rounds.
	HealthChecks int64 `json:"health_checks"`
}

// Cluster is one peer's runtime view: the ring, the health table, and
// the pooled HTTP client used to talk to other peers. Construct with
// New, start health probing with Start, and Close when done. All
// methods are safe for concurrent use.
type Cluster struct {
	cfg    Config
	full   *Ring
	client *http.Client

	mu   sync.RWMutex
	down map[string]bool
	live *Ring // full.Without(down), rebuilt on health transitions

	forwards        atomic.Int64
	forwardErrs     atomic.Int64
	forwardedServed atomic.Int64
	basisShips      atomic.Int64
	basisShipErrs   atomic.Int64
	healthChecks    atomic.Int64

	peerUp  *obs.GaugeVec
	obsOnce sync.Once

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Cluster from cfg. It does not start the health loop —
// call Start — so tests can drive health transitions deterministically
// with MarkPeer.
func New(cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	full := NewRing(cfg.Peers, cfg.VirtualNodes)
	c := &Cluster{
		cfg:  cfg,
		full: full,
		live: full,
		down: map[string]bool{},
		client: &http.Client{
			Transport: &http.Transport{
				// Bounded pooling: at most MaxPeerConns sockets per peer,
				// all kept alive — forwarding must never pay a dial on the
				// hot path, and a slow peer must not grow sockets without
				// bound.
				MaxConnsPerHost:     cfg.MaxPeerConns,
				MaxIdleConnsPerHost: cfg.MaxPeerConns,
				MaxIdleConns:        cfg.MaxPeerConns * 4,
				IdleConnTimeout:     90 * time.Second,
				DialContext: (&net.Dialer{
					Timeout:   2 * time.Second,
					KeepAlive: 30 * time.Second,
				}).DialContext,
			},
		},
		stop: make(chan struct{}),
	}
	c.SetObs(cfg.Obs)
	return c, nil
}

// SetObs registers the steady_cluster_* families. The cluster's own
// atomics stay the source of truth (so /v1/cluster works with metrics
// disabled); the registry reads them through CounterFunc/GaugeFunc.
// New calls it with Config.Obs; pkg/steady/server calls it with the
// server's registry when the cluster was built without one. Only the
// first non-nil registry wins.
func (c *Cluster) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.obsOnce.Do(func() { c.registerObs(reg) })
}

func (c *Cluster) registerObs(reg *obs.Registry) {
	reg.CounterFunc("steady_cluster_forwards_total",
		"Requests forwarded to their owning peer.",
		func() float64 { return float64(c.forwards.Load()) })
	reg.CounterFunc("steady_cluster_forward_errors_total",
		"Forwards that failed and fell back to a local solve.",
		func() float64 { return float64(c.forwardErrs.Load()) })
	reg.CounterFunc("steady_cluster_forwarded_served_total",
		"Requests served locally that arrived already forwarded by a peer.",
		func() float64 { return float64(c.forwardedServed.Load()) })
	reg.CounterFunc("steady_cluster_basis_ships_total",
		"Warm LP bases successfully fetched from a peer before a local solve.",
		func() float64 { return float64(c.basisShips.Load()) })
	reg.CounterFunc("steady_cluster_basis_ship_errors_total",
		"Warm-basis fetches that failed (the solve ran cold instead).",
		func() float64 { return float64(c.basisShipErrs.Load()) })
	reg.CounterFunc("steady_cluster_health_checks_total",
		"Completed peer health-probe rounds.",
		func() float64 { return float64(c.healthChecks.Load()) })
	reg.GaugeFunc("steady_cluster_ring_size",
		"Virtual nodes on the live ring (healthy peers x virtual-node count).",
		func() float64 { return float64(c.ring().Size()) })
	reg.GaugeFunc("steady_cluster_peers",
		"Configured cluster peers.",
		func() float64 { return float64(len(c.full.Peers())) })
	reg.GaugeFunc("steady_cluster_peers_healthy",
		"Peers currently considered healthy (self included).",
		func() float64 { return float64(len(c.ring().Peers())) })
	c.peerUp = reg.GaugeVec("steady_cluster_peer_up",
		"1 when the labeled peer answered its last health probe, else 0.", "peer")
	for _, p := range c.full.Peers() {
		c.peerUp.With(p).Set(1)
	}
}

// Self returns this peer's own base URL.
func (c *Cluster) Self() string { return c.cfg.Self }

// NoForward reports whether the peer runs in degraded no-forwarding
// mode (Config.NoForward).
func (c *Cluster) NoForward() bool { return c.cfg.NoForward }

// RingSize returns the live ring's virtual-node count (healthy peers
// times VirtualNodes); it shrinks while peers are down.
func (c *Cluster) RingSize() int { return c.ring().Size() }

// VirtualNodes returns the configured per-peer virtual-node count.
func (c *Cluster) VirtualNodes() int { return c.full.VirtualNodes() }

// ring returns the current live ring (healthy peers only).
func (c *Cluster) ring() *Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.live
}

// Owner returns the healthy peer owning key. Self is always healthy
// from its own point of view, so Owner never returns "".
func (c *Cluster) Owner(key string) string { return c.ring().Owner(key) }

// Owners returns up to n distinct healthy peers in ring preference
// order for key (the owner first; see Ring.Owners).
func (c *Cluster) Owners(key string, n int) []string { return c.ring().Owners(key, n) }

// MarkPeer records a health transition for peer. The health loop calls
// it after every probe; the forwarding path calls it on transport
// errors so a crashed owner stops attracting forwards before the next
// probe. Marking self has no effect — a peer never excludes itself.
func (c *Cluster) MarkPeer(peer string, healthy bool) {
	if peer == c.cfg.Self {
		return
	}
	c.mu.Lock()
	changed := c.down[peer] == healthy
	if healthy {
		delete(c.down, peer)
	} else {
		c.down[peer] = true
	}
	if changed {
		c.live = c.full.Without(c.down)
	}
	c.mu.Unlock()
	if changed {
		v := 0.0
		if healthy {
			v = 1.0
		}
		c.peerUp.With(peer).Set(v)
	}
}

// Health returns every configured peer's current status, sorted by
// peer URL.
func (c *Cluster) Health() []PeerStatus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	peers := c.full.Peers()
	out := make([]PeerStatus, 0, len(peers))
	for _, p := range peers {
		out = append(out, PeerStatus{Peer: p, Self: p == c.cfg.Self, Healthy: !c.down[p]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Stats returns a snapshot of the cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Forwards:        c.forwards.Load(),
		ForwardErrors:   c.forwardErrs.Load(),
		ForwardedServed: c.forwardedServed.Load(),
		BasisShips:      c.basisShips.Load(),
		BasisShipErrors: c.basisShipErrs.Load(),
		HealthChecks:    c.healthChecks.Load(),
	}
}

// NoteForwardedServed records that this peer served a request that
// arrived already forwarded (pkg/steady/server calls it when it sees
// ForwardedHeader).
func (c *Cluster) NoteForwardedServed() { c.forwardedServed.Add(1) }

// ShouldForward reports whether a request for key should be forwarded,
// and to which peer: the key must be owned by a healthy peer other
// than self, the cluster must not be in NoForward mode, and the
// request must not itself be a forward (callers check ForwardedHeader
// before asking).
func (c *Cluster) ShouldForward(key string) (owner string, ok bool) {
	owner = c.Owner(key)
	if owner == "" || owner == c.cfg.Self || c.cfg.NoForward {
		return owner, false
	}
	return owner, true
}

// Forward replays a request body against the owning peer, marking it
// as forwarded so the owner cannot forward again. It returns the
// owner's raw response; the caller relays status, headers, and body
// verbatim. Two failure classes both return an error so the caller
// falls back to a local solve — the client never sees a
// cluster-internal 5xx: transport errors additionally mark the peer
// unhealthy (the ring rebalances immediately), while a 5xx answer
// just counts as a forward error (the peer is alive — saturated or
// broken — so it keeps its ring positions and its health is left to
// the probe loop). The owner's 4xx verdicts are relayed, not retried:
// a bad request is bad everywhere.
func (c *Cluster) Forward(ctx context.Context, owner, path, contentType string, body []byte) (*http.Response, error) {
	c.forwards.Add(1)
	fctx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, owner+path, bytes.NewReader(body))
	if err != nil {
		cancel()
		c.forwardErrs.Add(1)
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(ForwardedHeader, c.cfg.Self)
	resp, err := c.client.Do(req)
	if err != nil {
		cancel()
		c.forwardErrs.Add(1)
		// Only transport-level failure condemns the peer: an HTTP error
		// status is the peer answering, just unhappily — and 4xx/5xx
		// verdicts are relayed to the client, not retried locally.
		if ctx.Err() == nil {
			c.MarkPeer(owner, false)
		}
		return nil, err
	}
	if resp.StatusCode >= 500 {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		cancel()
		c.forwardErrs.Add(1)
		return nil, fmt.Errorf("cluster: peer %s answered %s", owner, resp.Status)
	}
	// The response body must stay readable after this call; tie the
	// timeout's cancel to its closure.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// FetchBasis asks peers, in ring preference order for key, for their
// cached warm basis under solver, returning the first one shipped (or
// nil: basis shipping is best-effort by design — every failure path
// just means a cold local solve). Self is skipped; at most two peers
// are asked so a broken cluster costs two bounded round-trips, not a
// scan.
func (c *Cluster) FetchBasis(ctx context.Context, key, solver string) *lp.Basis {
	for _, peer := range c.Owners(key, 3) {
		if peer == c.cfg.Self {
			continue
		}
		if b := c.fetchBasisFrom(ctx, peer, solver); b != nil {
			return b
		}
	}
	return nil
}

func (c *Cluster) fetchBasisFrom(ctx context.Context, peer, solver string) *lp.Basis {
	fctx, cancel := context.WithTimeout(ctx, c.cfg.BasisTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet,
		peer+BasisPath+"?solver="+url.QueryEscape(solver), nil)
	if err != nil {
		c.basisShipErrs.Add(1)
		return nil
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.basisShipErrs.Add(1)
		return nil
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNoContent {
		return nil // healthy peer, no basis yet: not an error
	}
	if resp.StatusCode != http.StatusOK {
		c.basisShipErrs.Add(1)
		return nil
	}
	var b lp.Basis
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&b); err != nil {
		c.basisShipErrs.Add(1)
		return nil
	}
	if b.Len() == 0 {
		return nil
	}
	c.basisShips.Add(1)
	return &b
}

// Start launches the background health loop: every HealthInterval it
// probes every peer but self with GET <peer>/v1/cluster and feeds the
// verdicts to MarkPeer. Call Close to stop it.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.HealthInterval)
		defer t.Stop()
		c.probeAll()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

func (c *Cluster) probeAll() {
	for _, p := range c.full.Peers() {
		if p == c.cfg.Self {
			continue
		}
		c.MarkPeer(p, c.probe(p))
	}
	c.healthChecks.Add(1)
}

func (c *Cluster) probe(peer string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cluster", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Close stops the health loop and releases idle peer connections.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.client.CloseIdleConnections()
}

// cancelOnClose defers a request timeout's cancel func until the
// response body is closed, so the caller can stream the body without
// the context dying under it.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}
