// Package rat implements exact rational arithmetic for steady-state
// scheduling. Values are immutable; every operation returns a new Rat.
//
// The representation is hybrid: a fast path keeps numerator and
// denominator in int64 and promotes to math/big on overflow, so the
// common case (small platform constants, early simplex pivots) stays
// allocation-free while deep pivot chains remain exact.
package rat

import (
	"fmt"
	"math"
	"math/big"
)

// Rat is an immutable exact rational number.
//
// The zero value is 0. When b is nil the value is n/d with d > 0 and
// gcd(|n|, d) == 1 (d == 0 is interpreted as the zero value 0/1).
// When b is non-nil it holds the canonical value and n, d are unused.
type Rat struct {
	n, d int64
	b    *big.Rat
}

// Zero returns 0.
func Zero() Rat { return Rat{} }

// One returns 1.
func One() Rat { return Rat{n: 1, d: 1} }

// FromInt returns v as a rational.
func FromInt(v int64) Rat { return Rat{n: v, d: 1} }

// New returns num/den. It panics if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if den < 0 {
		// Guard against MinInt64 negation overflow.
		if num == math.MinInt64 || den == math.MinInt64 {
			b := new(big.Rat).SetFrac(big.NewInt(num), big.NewInt(den))
			return fromBig(b)
		}
		num, den = -num, -den
	}
	return normSmall(num, den)
}

// FromBig returns a Rat holding the value of b (which is copied).
func FromBig(b *big.Rat) Rat {
	return fromBig(new(big.Rat).Set(b))
}

// fromBig adopts b (no copy) and demotes to the small form when possible.
func fromBig(b *big.Rat) Rat {
	if b.Num().IsInt64() && b.Denom().IsInt64() {
		return Rat{n: b.Num().Int64(), d: b.Denom().Int64()}
	}
	return Rat{b: b}
}

// normSmall reduces num/den (den > 0) to lowest terms.
func normSmall(num, den int64) Rat {
	if num == 0 {
		return Rat{}
	}
	g := gcd64(abs64(num), den)
	return Rat{n: num / g, d: den / g}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// den returns the denominator of the small form, mapping the zero
// value's 0 to 1.
func (x Rat) den() int64 {
	if x.d == 0 {
		return 1
	}
	return x.d
}

// Big returns the value as a newly allocated big.Rat.
func (x Rat) Big() *big.Rat {
	if x.b != nil {
		return new(big.Rat).Set(x.b)
	}
	return big.NewRat(x.n, x.den())
}

// bigRef returns a big.Rat view without copying when already big.
func (x Rat) bigRef() *big.Rat {
	if x.b != nil {
		return x.b
	}
	return big.NewRat(x.n, x.den())
}

// Num returns the numerator as a big.Int.
func (x Rat) Num() *big.Int {
	if x.b != nil {
		return new(big.Int).Set(x.b.Num())
	}
	return big.NewInt(x.n)
}

// Den returns the denominator (always positive) as a big.Int.
func (x Rat) Den() *big.Int {
	if x.b != nil {
		return new(big.Int).Set(x.b.Denom())
	}
	return big.NewInt(x.den())
}

// Small reports the value as int64 numerator/denominator when it fits.
func (x Rat) Small() (num, den int64, ok bool) {
	if x.b != nil {
		return 0, 0, false
	}
	return x.n, x.den(), true
}

// mulOvf multiplies with overflow detection.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	r := a * b
	if r/a != b || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
		return 0, false
	}
	return r, true
}

// addOvf adds with overflow detection.
func addOvf(a, b int64) (int64, bool) {
	r := a + b
	if (a > 0 && b > 0 && r < 0) || (a < 0 && b < 0 && r >= 0) {
		return 0, false
	}
	return r, true
}

// Add returns x + y.
func (x Rat) Add(y Rat) Rat {
	if x.b == nil && y.b == nil {
		xd, yd := x.den(), y.den()
		// Reduce cross terms by g = gcd(xd, yd) to delay overflow.
		g := gcd64(xd, yd)
		xdg, ydg := xd/g, yd/g
		if n1, ok := mulOvf(x.n, ydg); ok {
			if n2, ok := mulOvf(y.n, xdg); ok {
				if num, ok := addOvf(n1, n2); ok {
					if den, ok := mulOvf(xdg, yd); ok {
						return normSmall(num, den)
					}
				}
			}
		}
	}
	return fromBig(new(big.Rat).Add(x.bigRef(), y.bigRef()))
}

// Sub returns x - y.
func (x Rat) Sub(y Rat) Rat { return x.Add(y.Neg()) }

// Neg returns -x.
func (x Rat) Neg() Rat {
	if x.b == nil {
		if x.n == math.MinInt64 {
			return fromBig(new(big.Rat).Neg(x.bigRef()))
		}
		return Rat{n: -x.n, d: x.d}
	}
	return fromBig(new(big.Rat).Neg(x.b))
}

// Mul returns x * y.
func (x Rat) Mul(y Rat) Rat {
	if x.b == nil && y.b == nil {
		xd, yd := x.den(), y.den()
		// Cross-reduce before multiplying to delay overflow.
		g1 := gcd64(abs64(x.n), yd)
		g2 := gcd64(abs64(y.n), xd)
		xn, yden := x.n/g1, yd/g1
		yn, xden := y.n/g2, xd/g2
		if num, ok := mulOvf(xn, yn); ok {
			if den, ok := mulOvf(xden, yden); ok {
				return normSmall(num, den)
			}
		}
	}
	return fromBig(new(big.Rat).Mul(x.bigRef(), y.bigRef()))
}

// Div returns x / y. It panics if y == 0.
func (x Rat) Div(y Rat) Rat {
	return x.Mul(y.Inv())
}

// Inv returns 1/x. It panics if x == 0.
func (x Rat) Inv() Rat {
	if x.IsZero() {
		panic("rat: division by zero")
	}
	if x.b == nil {
		n, d := x.n, x.den()
		if n < 0 {
			if n == math.MinInt64 {
				return fromBig(new(big.Rat).Inv(x.bigRef()))
			}
			return Rat{n: -d, d: -n}
		}
		return Rat{n: d, d: n}
	}
	return fromBig(new(big.Rat).Inv(x.b))
}

// Abs returns |x|.
func (x Rat) Abs() Rat {
	if x.Sign() < 0 {
		return x.Neg()
	}
	return x
}

// Sign returns -1, 0 or +1.
func (x Rat) Sign() int {
	if x.b != nil {
		return x.b.Sign()
	}
	switch {
	case x.n > 0:
		return 1
	case x.n < 0:
		return -1
	}
	return 0
}

// IsZero reports whether x == 0.
func (x Rat) IsZero() bool { return x.Sign() == 0 }

// IsOne reports whether x == 1.
func (x Rat) IsOne() bool {
	if x.b != nil {
		return x.b.Cmp(oneBig) == 0
	}
	return x.n == 1 && x.den() == 1
}

var oneBig = big.NewRat(1, 1)

// Cmp compares x and y, returning -1, 0 or +1.
func (x Rat) Cmp(y Rat) int {
	d := x.Sub(y)
	return d.Sign()
}

// Equal reports x == y.
func (x Rat) Equal(y Rat) bool { return x.Cmp(y) == 0 }

// Less reports x < y.
func (x Rat) Less(y Rat) bool { return x.Cmp(y) < 0 }

// LessEq reports x <= y.
func (x Rat) LessEq(y Rat) bool { return x.Cmp(y) <= 0 }

// Min returns the smaller of x and y.
func Min(x, y Rat) Rat {
	if x.Cmp(y) <= 0 {
		return x
	}
	return y
}

// Max returns the larger of x and y.
func Max(x, y Rat) Rat {
	if x.Cmp(y) >= 0 {
		return x
	}
	return y
}

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs ...Rat) Rat {
	s := Zero()
	for _, x := range xs {
		s = s.Add(x)
	}
	return s
}

// Float64 returns the nearest float64 value.
func (x Rat) Float64() float64 {
	f, _ := x.bigRef().Float64()
	return f
}

// IsInt reports whether x is an integer.
func (x Rat) IsInt() bool {
	if x.b != nil {
		return x.b.IsInt()
	}
	return x.den() == 1
}

// Floor returns the largest integer <= x, as a big.Int.
func (x Rat) Floor() *big.Int {
	num, den := x.Num(), x.Den()
	q, m := new(big.Int).QuoRem(num, den, new(big.Int))
	if m.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	return q
}

// FloorInt64 returns Floor as an int64 (ok=false on overflow).
func (x Rat) FloorInt64() (int64, bool) {
	f := x.Floor()
	if !f.IsInt64() {
		return 0, false
	}
	return f.Int64(), true
}

// String formats x as "n" or "n/d".
func (x Rat) String() string {
	if x.b != nil {
		if x.b.IsInt() {
			return x.b.Num().String()
		}
		return x.b.String()
	}
	if x.den() == 1 {
		return fmt.Sprintf("%d", x.n)
	}
	return fmt.Sprintf("%d/%d", x.n, x.den())
}

// MarshalText implements encoding.TextMarshaler.
func (x Rat) MarshalText() ([]byte, error) { return []byte(x.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler, accepting the
// formats produced by String as well as big.Rat's "n/d".
func (x *Rat) UnmarshalText(text []byte) error {
	r, err := Parse(string(text))
	if err != nil {
		return err
	}
	*x = r
	return nil
}

// Parse parses "n", "n/d" or a decimal like "1.5".
func Parse(s string) (Rat, error) {
	b, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return fromBig(b), nil
}

// MustParse is Parse that panics on error; intended for constants.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// ApproxFloat returns the best rational approximation of f with
// denominator at most maxDen, using continued fractions. It is used to
// feed measured (floating-point) resource speeds into the exact LP.
// It panics if f is NaN or infinite or maxDen < 1.
func ApproxFloat(f float64, maxDen int64) Rat {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		panic("rat: cannot approximate non-finite float")
	}
	if maxDen < 1 {
		panic("rat: maxDen must be >= 1")
	}
	neg := f < 0
	if neg {
		f = -f
	}
	// Continued fraction expansion with convergents p/q.
	var (
		p0, q0 int64 = 0, 1
		p1, q1 int64 = 1, 0
		x            = f
	)
	for i := 0; i < 64; i++ {
		a := int64(math.Floor(x))
		p2, ok1 := mulOvf(a, p1)
		q2, ok2 := mulOvf(a, q1)
		if !ok1 || !ok2 {
			break
		}
		p2, ok1 = addOvf(p2, p0)
		q2, ok2 = addOvf(q2, q0)
		if !ok1 || !ok2 {
			break
		}
		if q2 > maxDen {
			break
		}
		p0, q0, p1, q1 = p1, q1, p2, q2
		frac := x - math.Floor(x)
		if frac < 1e-15 {
			break
		}
		x = 1 / frac
	}
	if q1 == 0 {
		p1, q1 = 0, 1
	}
	if neg {
		p1 = -p1
	}
	return New(p1, q1)
}

// DenLCM returns the least common multiple of the denominators of xs
// (1 for an empty slice). It is the period constructor of §4.1: any
// x in xs times the result is an integer.
func DenLCM(xs ...Rat) *big.Int {
	l := big.NewInt(1)
	g := new(big.Int)
	t := new(big.Int)
	for _, x := range xs {
		d := x.Den()
		g.GCD(nil, nil, l, d)
		t.Div(d, g)
		l.Mul(l, t)
	}
	return l
}

// ScaleInt returns x*s as a big.Int when the product is integral.
func ScaleInt(x Rat, s *big.Int) (*big.Int, bool) {
	num := x.Num()
	num.Mul(num, s)
	den := x.Den()
	q, m := new(big.Int).QuoRem(num, den, new(big.Int))
	if m.Sign() != 0 {
		return nil, false
	}
	return q, true
}

// MulBigInt returns x * s exactly.
func (x Rat) MulBigInt(s *big.Int) Rat {
	b := new(big.Rat).SetInt(s)
	return fromBig(b.Mul(b, x.bigRef()))
}
