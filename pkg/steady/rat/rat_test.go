package rat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// ref mirrors a Rat into a pure big.Rat for reference computation.
func ref(x Rat) *big.Rat { return x.Big() }

// arb builds a Rat (sometimes deliberately overflow-prone) from raw ints.
func arb(n, d int64) Rat {
	if d == 0 {
		d = 1
	}
	return New(n, d)
}

func TestZeroValue(t *testing.T) {
	var z Rat
	if !z.IsZero() {
		t.Fatalf("zero value not zero: %v", z)
	}
	if got := z.Add(One()); !got.IsOne() {
		t.Fatalf("0+1 = %v", got)
	}
	if z.String() != "0" {
		t.Fatalf("zero String = %q", z.String())
	}
	if !z.IsInt() {
		t.Fatal("zero not integer")
	}
}

func TestNewNormalization(t *testing.T) {
	cases := []struct {
		n, d int64
		want string
	}{
		{6, 4, "3/2"},
		{-6, 4, "-3/2"},
		{6, -4, "-3/2"},
		{-6, -4, "3/2"},
		{0, 7, "0"},
		{7, 7, "1"},
		{7, 1, "7"},
		{math.MinInt64, -1, "9223372036854775808"},
	}
	for _, c := range cases {
		if got := New(c.n, c.d).String(); got != c.want {
			t.Errorf("New(%d,%d) = %s, want %s", c.n, c.d, got, c.want)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 0)
}

func TestInvPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zero().Inv()
}

func TestArithmeticMatchesBigRat(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a, b := arb(an, ad), arb(bn, bd)
		ra, rb := ref(a), ref(b)

		if got, want := ref(a.Add(b)), new(big.Rat).Add(ra, rb); got.Cmp(want) != 0 {
			t.Logf("add mismatch %v + %v: got %v want %v", a, b, got, want)
			return false
		}
		if got, want := ref(a.Sub(b)), new(big.Rat).Sub(ra, rb); got.Cmp(want) != 0 {
			return false
		}
		if got, want := ref(a.Mul(b)), new(big.Rat).Mul(ra, rb); got.Cmp(want) != 0 {
			return false
		}
		if !b.IsZero() {
			if got, want := ref(a.Div(b)), new(big.Rat).Quo(ra, rb); got.Cmp(want) != 0 {
				return false
			}
		}
		if got, want := ref(a.Neg()), new(big.Rat).Neg(ra); got.Cmp(want) != 0 {
			return false
		}
		if a.Cmp(b) != ra.Cmp(rb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowPromotion(t *testing.T) {
	big1 := New(math.MaxInt64, 3)
	big2 := New(math.MaxInt64-4, 5)
	prod := big1.Mul(big2)
	want := new(big.Rat).Mul(big1.Big(), big2.Big())
	if prod.Big().Cmp(want) != 0 {
		t.Fatalf("promoted mul wrong: %v vs %v", prod, want)
	}
	sum := big1.Add(big2)
	wantS := new(big.Rat).Add(big1.Big(), big2.Big())
	if sum.Big().Cmp(wantS) != 0 {
		t.Fatalf("promoted add wrong: %v vs %v", sum, wantS)
	}
	// Deep chain stays exact and demotes when it can.
	x := New(1, 3)
	for i := 0; i < 200; i++ {
		x = x.Mul(New(7, 5)).Add(New(1, 9))
	}
	y := big.NewRat(1, 3)
	for i := 0; i < 200; i++ {
		y.Mul(y, big.NewRat(7, 5))
		y.Add(y, big.NewRat(1, 9))
	}
	if x.Big().Cmp(y) != 0 {
		t.Fatal("long chain diverged from big.Rat reference")
	}
}

func TestFieldAxioms(t *testing.T) {
	f := func(an, ad, bn, bd, cn, cd int64) bool {
		a, b, c := arb(an, ad), arb(bn, bd), arb(cn, cd)
		// Associativity and commutativity.
		if !a.Add(b).Add(c).Equal(a.Add(b.Add(c))) {
			return false
		}
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			return false
		}
		if !a.Add(b).Equal(b.Add(a)) || !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		// Distributivity.
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		// Inverses.
		if !a.Sub(a).IsZero() {
			return false
		}
		if !a.IsZero() && !a.Div(a).IsOne() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestOrdering(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a, b := arb(an, ad), arb(bn, bd)
		switch a.Cmp(b) {
		case -1:
			return a.Less(b) && a.LessEq(b) && !a.Equal(b) && Max(a, b).Equal(b) && Min(a, b).Equal(a)
		case 0:
			return !a.Less(b) && a.LessEq(b) && a.Equal(b)
		case 1:
			return !a.Less(b) && !a.LessEq(b) && Max(a, b).Equal(a) && Min(a, b).Equal(b)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(an, ad int64) bool {
		a := arb(an, ad)
		back, err := Parse(a.String())
		return err == nil && back.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseDecimal(t *testing.T) {
	got := MustParse("1.5")
	if !got.Equal(New(3, 2)) {
		t.Fatalf("1.5 parsed as %v", got)
	}
	if _, err := Parse("x/y"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestMarshalTextRoundTrip(t *testing.T) {
	a := New(-22, 7)
	txt, err := a.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var b Rat
	if err := b.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("round trip %v -> %v", a, b)
	}
}

func TestFloor(t *testing.T) {
	cases := []struct {
		x    Rat
		want int64
	}{
		{New(7, 2), 3},
		{New(-7, 2), -4},
		{New(4, 2), 2},
		{Zero(), 0},
		{New(-4, 2), -2},
	}
	for _, c := range cases {
		got, ok := c.x.FloorInt64()
		if !ok || got != c.want {
			t.Errorf("Floor(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestApproxFloat(t *testing.T) {
	cases := []struct {
		f      float64
		maxDen int64
		want   Rat
	}{
		{0.5, 100, New(1, 2)},
		{0.333333333333, 10, New(1, 3)},
		{1.25, 1000, New(5, 4)},
		{-2.75, 8, New(-11, 4)},
		{3, 1, FromInt(3)},
	}
	for _, c := range cases {
		got := ApproxFloat(c.f, c.maxDen)
		if !got.Equal(c.want) {
			t.Errorf("ApproxFloat(%v,%d) = %v, want %v", c.f, c.maxDen, got, c.want)
		}
	}
}

func TestApproxFloatQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		f := rng.Float64()*20 - 10
		r := ApproxFloat(f, 1_000_000)
		if d := math.Abs(r.Float64() - f); d > 1e-6 {
			t.Fatalf("ApproxFloat(%v) = %v off by %v", f, r, d)
		}
		if den := r.Den(); den.Cmp(big.NewInt(1_000_000)) > 0 {
			t.Fatalf("denominator bound violated: %v", den)
		}
	}
}

func TestDenLCM(t *testing.T) {
	l := DenLCM(New(1, 6), New(3, 4), New(5, 9))
	if l.Cmp(big.NewInt(36)) != 0 {
		t.Fatalf("lcm(6,4,9) = %v, want 36", l)
	}
	if DenLCM().Cmp(big.NewInt(1)) != 0 {
		t.Fatal("empty lcm should be 1")
	}
	// Property: every input times the LCM is integral.
	f := func(an, ad, bn, bd int64) bool {
		a, b := arb(an, ad), arb(bn, bd)
		l := DenLCM(a, b)
		_, okA := ScaleInt(a, l)
		_, okB := ScaleInt(b, l)
		return okA && okB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleInt(t *testing.T) {
	v, ok := ScaleInt(New(3, 4), big.NewInt(8))
	if !ok || v.Int64() != 6 {
		t.Fatalf("3/4 * 8 = %v (ok=%v)", v, ok)
	}
	if _, ok := ScaleInt(New(3, 4), big.NewInt(2)); ok {
		t.Fatal("3/4*2 should not be integral")
	}
}

func TestMulBigInt(t *testing.T) {
	x := New(3, 7).MulBigInt(big.NewInt(14))
	if !x.Equal(FromInt(6)) {
		t.Fatalf("3/7*14 = %v", x)
	}
}

func TestSumAbsSign(t *testing.T) {
	s := Sum(New(1, 2), New(1, 3), New(1, 6))
	if !s.IsOne() {
		t.Fatalf("sum = %v", s)
	}
	if Sum().Sign() != 0 {
		t.Fatal("empty sum nonzero")
	}
	if New(-3, 2).Abs().Cmp(New(3, 2)) != 0 {
		t.Fatal("abs wrong")
	}
}

func TestFloat64(t *testing.T) {
	if New(1, 2).Float64() != 0.5 {
		t.Fatal("float conversion wrong")
	}
}

func BenchmarkAddSmall(b *testing.B) {
	x, y := New(355, 113), New(22, 7)
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkMulSmall(b *testing.B) {
	x, y := New(355, 113), New(22, 7)
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkMulPromoted(b *testing.B) {
	x := New(math.MaxInt64, 3)
	y := New(math.MaxInt64-4, 5)
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}
