package steady_test

import (
	"context"
	"fmt"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

// ExampleSolver_masterSlave solves the paper's §3.1 master-slave
// problem on the Figure 1 platform: the optimal steady state
// processes 4/3 tasks per time-unit.
func ExampleSolver_masterSlave() {
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		panic(err)
	}
	res, err := solver.Solve(context.Background(), platform.Figure1())
	if err != nil {
		panic(err)
	}
	fmt.Println(solver.Name())
	fmt.Println("ntask(G) =", res.Throughput)
	// Output:
	// masterslave[root=P1]
	// ntask(G) = 4/3
}

// ExampleResult_Reconstruct turns the LP solution into a concrete
// periodic schedule (§4.1): the period is the lcm of the activity
// variables' denominators, and the communications of one period are
// orchestrated into conflict-free slots.
func ExampleResult_Reconstruct() {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	res, _ := solver.Solve(context.Background(), platform.Figure1())
	sch, err := res.Reconstruct()
	if err != nil {
		panic(err)
	}
	fmt.Println(sch.Summary)
	// Output:
	// period T=6, 8 tasks/period (rate 4/3), 2 comm slots
}

// ExampleNew_multicast reproduces the Figure 2/3 counterexample: the
// achievable sum-LP sits strictly below the exact tree packing, which
// sits strictly below the max-operator upper bound.
func ExampleNew_multicast() {
	p := platform.Figure2()
	for _, problem := range []string{"multicast-sum", "multicast-trees", "multicast"} {
		solver, _ := steady.New(steady.Spec{
			Problem: problem,
			Root:    "P0",
			Targets: []string{"P5", "P6"},
		})
		res, err := solver.Solve(context.Background(), p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-15s TP = %v\n", problem, res.Throughput)
	}
	// Output:
	// multicast-sum   TP = 1/2
	// multicast-trees TP = 3/4
	// multicast       TP = 1
}

// ExampleFingerprint shows the canonical platform hash that keys the
// batch engine's LP-solution cache: construction-independent, but
// sensitive to any weight change.
func ExampleFingerprint() {
	a := platform.Figure1()
	b := platform.Figure1()
	fmt.Println("same content, same hash:", steady.Fingerprint(a) == steady.Fingerprint(b))
	fmt.Println("different content:      ", steady.Fingerprint(a) == steady.Fingerprint(platform.Figure2()))
	// Output:
	// same content, same hash: true
	// different content:       false
}
