package steady

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rat"
	"repro/internal/schedule"
)

// Slot is one time slice of a reconstructed periodic schedule: the
// listed links are simultaneously busy for Dur time and form a
// matching on (sender, receiver) pairs.
type Slot struct {
	Dur rat.Rat
	// Links are the (from, to) node-name pairs active in the slot.
	Links [][2]string
}

// Schedule is the facade view of a reconstructed periodic schedule
// (§4 of the paper): a compact, polynomial-size description of one
// period that achieves the LP throughput asymptotically.
type Schedule struct {
	// Summary is the one-line rendering of the underlying schedule
	// (period, per-period work, slot count).
	Summary string
	// Slots is the communication orchestration; the durations sum to
	// at most one period.
	Slots []Slot
	// Throughput is the schedule's steady-state rate, equal to the LP
	// optimum.
	Throughput rat.Rat
}

// GreedyEvaluation quantifies §5.1.1: under the send-OR-receive port
// model reconstruction requires edge-coloring an arbitrary graph
// (NP-hard), so only a greedy decomposition is evaluated, reporting
// how much of the LP bound it achieves.
type GreedyEvaluation struct {
	// Bound is the LP optimum under the shared-port model.
	Bound rat.Rat
	// Achieved is the throughput of the greedy schedule (<= Bound).
	Achieved rat.Rat
	// Slots is the number of matchings in the greedy decomposition.
	Slots int
}

// Reconstruct turns the result into a concrete periodic schedule
// following the §4.1 construction. It is available for masterslave
// and scatter results under the base send-and-receive model; the
// multicast max-operator bound is deliberately not reconstructible
// (its unachievability is the point of §4.3), and the send-or-receive
// model only admits the greedy evaluation (see EvaluateGreedy).
func (r *Result) Reconstruct() (*Schedule, error) {
	if r.Model != SendAndReceive {
		return nil, fmt.Errorf("steady: no exact reconstruction under the %s model; use EvaluateGreedy", r.Model)
	}
	switch sol := r.raw.(type) {
	case *core.MasterSlave:
		per, err := schedule.Reconstruct(sol)
		if err != nil {
			return nil, err
		}
		return &Schedule{
			Summary:    per.String(),
			Slots:      facadeSlots(r, per.Slots),
			Throughput: per.Throughput,
		}, nil
	case *core.Scatter:
		if r.Problem != "scatter" && r.Problem != "multicast-sum" {
			return nil, fmt.Errorf("steady: %s results have bound semantics and no schedule", r.Problem)
		}
		sp, err := schedule.ReconstructScatter(sol)
		if err != nil {
			return nil, err
		}
		return &Schedule{
			Summary:    sp.String(),
			Slots:      facadeSlots(r, sp.Slots),
			Throughput: sp.Throughput,
		}, nil
	case *core.TreePacking:
		mp, err := schedule.ReconstructTreePacking(sol)
		if err != nil {
			return nil, err
		}
		return &Schedule{
			Summary:    mp.String(),
			Slots:      facadeSlots(r, mp.Slots),
			Throughput: mp.Throughput,
		}, nil
	default:
		return nil, fmt.Errorf("steady: %s results are not reconstructible", r.Problem)
	}
}

// EvaluateGreedy reconstructs a schedule for a send-or-receive
// masterslave result with the greedy general-graph coloring and
// reports achieved versus bound throughput (the E9 gap).
func (r *Result) EvaluateGreedy() (*GreedyEvaluation, error) {
	ms, ok := r.raw.(*core.MasterSlave)
	if !ok {
		return nil, fmt.Errorf("steady: greedy evaluation applies to masterslave results only")
	}
	if r.Model != SendOrReceive {
		return nil, fmt.Errorf("steady: greedy evaluation applies to the send-or-receive model; use Reconstruct")
	}
	ev, err := schedule.EvaluateSendRecv(ms)
	if err != nil {
		return nil, err
	}
	return &GreedyEvaluation{Bound: ev.Bound, Achieved: ev.Achieved, Slots: ev.Slots}, nil
}

func facadeSlots(r *Result, slots []schedule.Slot) []Slot {
	p := r.Platform
	out := make([]Slot, len(slots))
	for i, s := range slots {
		out[i].Dur = s.Dur
		out[i].Links = make([][2]string, len(s.Edges))
		for j, e := range s.Edges {
			ed := p.Edge(e)
			out[i].Links[j] = [2]string{p.Name(ed.From), p.Name(ed.To)}
		}
	}
	return out
}
