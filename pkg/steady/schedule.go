package steady

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/pkg/steady/rat"
	sim "repro/pkg/steady/sim/event"
)

// Slot is one time slice of a reconstructed periodic schedule: the
// listed links are simultaneously busy for Dur time and form a
// matching on (sender, receiver) pairs.
type Slot struct {
	Dur rat.Rat
	// Links are the (from, to) node-name pairs active in the slot.
	Links [][2]string
}

// Schedule is the facade view of a reconstructed periodic schedule
// (§4 of the paper): a compact, polynomial-size description of one
// period that achieves the LP throughput asymptotically.
type Schedule struct {
	// Summary is the one-line rendering of the underlying schedule
	// (period, per-period work, slot count).
	Summary string
	// Slots is the communication orchestration; the durations sum to
	// at most one period.
	Slots []Slot
	// Throughput is the schedule's steady-state rate, equal to the LP
	// optimum.
	Throughput rat.Rat

	// periodic is the underlying master-slave schedule, retained so
	// Simulate can execute it; nil for the other problems.
	periodic *schedule.Periodic
}

// Period returns the integer period T of a reconstructed masterslave
// schedule (nil for the other problems, whose facade schedules carry
// only slots and throughput). The returned value is a copy.
func (s *Schedule) Period() *big.Int {
	if s.periodic == nil {
		return nil
	}
	return new(big.Int).Set(s.periodic.Period)
}

// TasksPerPeriod returns T * ntask(G), the integral number of tasks
// one period completes in steady state (nil for non-masterslave
// schedules). The returned value is a copy.
func (s *Schedule) TasksPerPeriod() *big.Int {
	if s.periodic == nil {
		return nil
	}
	return new(big.Int).Set(s.periodic.TasksPerPeriod)
}

// Grouped returns the m-period grouping of §5.2: the period becomes
// m*T and every slot and count is scaled by m, so the number of
// communication rounds per (longer) period is unchanged and per-round
// start-up costs are amortized over m periods' worth of data. It is
// available for masterslave schedules only.
func (s *Schedule) Grouped(m int64) (*Schedule, error) {
	if s.periodic == nil {
		return nil, fmt.Errorf("steady: only masterslave schedules support grouping")
	}
	if m < 1 {
		return nil, fmt.Errorf("steady: grouping factor %d must be >= 1", m)
	}
	g := s.periodic.Grouped(m)
	return &Schedule{
		Summary:    g.String(),
		Slots:      periodicSlots(g),
		Throughput: g.Throughput,
		periodic:   g,
	}, nil
}

// StartupExtension returns the extra time one period costs when every
// communication round pays a start-up (§5.2): each slot is extended
// by the largest start-up cost among its links, since transfers
// within a slot run in parallel. startup maps a link (by endpoint
// names) to its per-round cost. Masterslave schedules only.
func (s *Schedule) StartupExtension(startup func(from, to string) rat.Rat) (rat.Rat, error) {
	if s.periodic == nil {
		return rat.Zero(), fmt.Errorf("steady: only masterslave schedules model start-up costs")
	}
	return s.periodic.StartupExtension(s.edgeStartup(startup)), nil
}

// EffectiveThroughput returns the steady-state throughput when each
// period is stretched by its start-up extension: tasks / (T + ext).
// Grouping first (see Grouped) amortizes the extension, which is the
// §5.2 story: effective throughput climbs back toward the LP optimum
// as m grows. Masterslave schedules only.
func (s *Schedule) EffectiveThroughput(startup func(from, to string) rat.Rat) (rat.Rat, error) {
	if s.periodic == nil {
		return rat.Zero(), fmt.Errorf("steady: only masterslave schedules model start-up costs")
	}
	return s.periodic.EffectiveThroughput(s.edgeStartup(startup)), nil
}

// edgeStartup adapts a by-name startup cost to the internal by-edge-
// index form.
func (s *Schedule) edgeStartup(startup func(from, to string) rat.Rat) func(int) rat.Rat {
	p := s.periodic.P
	return func(e int) rat.Rat {
		ed := p.Edge(e)
		return startup(p.Name(ed.From), p.Name(ed.To))
	}
}

// periodicSlots renders a periodic schedule's slots in facade form.
func periodicSlots(per *schedule.Periodic) []Slot {
	p := per.P
	out := make([]Slot, len(per.Slots))
	for i, s := range per.Slots {
		out[i].Dur = s.Dur
		out[i].Links = make([][2]string, len(s.Edges))
		for j, e := range s.Edges {
			ed := p.Edge(e)
			out[i].Links[j] = [2]string{p.Name(ed.From), p.Name(ed.To)}
		}
	}
	return out
}

// Simulation is the outcome of executing a reconstructed schedule
// from cold buffers: §4.2's asymptotic-optimality claim made
// concrete. Steady state is reached within depth(G) periods, after
// which every period completes exactly T·ntask tasks.
type Simulation struct {
	// DonePerPeriod[p] is the number of tasks completed in period p.
	DonePerPeriod []*big.Int
	// SteadyAfter is the first period whose completion count reaches
	// the steady-state per-period total (-1 if never reached).
	SteadyAfter int64
}

// Simulate executes the schedule for the given number of periods,
// starting from cold buffers, and reports per-period completions.
// It is available for masterslave schedules only — for every other
// problem (and for scenario-driven simulation in general) use
// pkg/steady/sim, which replays any registered solver's schedule via
// Result.Replay.
func (s *Schedule) Simulate(periods int64) (*Simulation, error) {
	if s.periodic == nil {
		return nil, fmt.Errorf("steady: only masterslave schedules are simulatable")
	}
	spec, err := s.periodic.EventSpec()
	if err != nil {
		return nil, err
	}
	st, err := sim.RunPeriodic(spec, periods, sim.PeriodicOptions{PerPeriod: true})
	if err != nil {
		return nil, err
	}
	return &Simulation{DonePerPeriod: st.DonePerPeriod, SteadyAfter: st.SteadyAfter}, nil
}

// GreedyEvaluation quantifies §5.1.1: under the send-OR-receive port
// model reconstruction requires edge-coloring an arbitrary graph
// (NP-hard), so only a greedy decomposition is evaluated, reporting
// how much of the LP bound it achieves.
type GreedyEvaluation struct {
	// Bound is the LP optimum under the shared-port model.
	Bound rat.Rat
	// Achieved is the throughput of the greedy schedule (<= Bound).
	Achieved rat.Rat
	// Slots is the number of matchings in the greedy decomposition.
	Slots int
}

// Reconstruct turns the result into a concrete periodic schedule
// following the §4.1 construction. It is available for masterslave
// and scatter results under the base send-and-receive model; the
// multicast max-operator bound is deliberately not reconstructible
// (its unachievability is the point of §4.3), and the send-or-receive
// model only admits the greedy evaluation (see EvaluateGreedy).
func (r *Result) Reconstruct() (*Schedule, error) {
	if r.Model != SendAndReceive {
		return nil, fmt.Errorf("steady: no exact reconstruction under the %s model; use EvaluateGreedy", r.Model)
	}
	switch sol := r.raw.(type) {
	case *core.MasterSlave:
		per, err := schedule.Reconstruct(sol)
		if err != nil {
			return nil, err
		}
		return &Schedule{
			Summary:    per.String(),
			Slots:      facadeSlots(r, per.Slots),
			Throughput: per.Throughput,
			periodic:   per,
		}, nil
	case *core.Scatter:
		if r.Problem != "scatter" && r.Problem != "multicast-sum" {
			return nil, fmt.Errorf("steady: %s results have bound semantics and no schedule", r.Problem)
		}
		sp, err := schedule.ReconstructScatter(sol)
		if err != nil {
			return nil, err
		}
		return &Schedule{
			Summary:    sp.String(),
			Slots:      facadeSlots(r, sp.Slots),
			Throughput: sp.Throughput,
		}, nil
	case *core.TreePacking:
		mp, err := schedule.ReconstructTreePacking(sol)
		if err != nil {
			return nil, err
		}
		return &Schedule{
			Summary:    mp.String(),
			Slots:      facadeSlots(r, mp.Slots),
			Throughput: mp.Throughput,
		}, nil
	default:
		return nil, fmt.Errorf("steady: %s results are not reconstructible", r.Problem)
	}
}

// EvaluateGreedy reconstructs a schedule for a send-or-receive
// masterslave result with the greedy general-graph coloring and
// reports achieved versus bound throughput (the E9 gap).
func (r *Result) EvaluateGreedy() (*GreedyEvaluation, error) {
	ms, ok := r.raw.(*core.MasterSlave)
	if !ok {
		return nil, fmt.Errorf("steady: greedy evaluation applies to masterslave results only")
	}
	if r.Model != SendOrReceive {
		return nil, fmt.Errorf("steady: greedy evaluation applies to the send-or-receive model; use Reconstruct")
	}
	ev, err := schedule.EvaluateSendRecv(ms)
	if err != nil {
		return nil, err
	}
	return &GreedyEvaluation{Bound: ev.Bound, Achieved: ev.Achieved, Slots: ev.Slots}, nil
}

func facadeSlots(r *Result, slots []schedule.Slot) []Slot {
	p := r.Platform
	out := make([]Slot, len(slots))
	for i, s := range slots {
		out[i].Dur = s.Dur
		out[i].Links = make([][2]string, len(s.Edges))
		for j, e := range s.Edges {
			ed := p.Edge(e)
			out[i].Links[j] = [2]string{p.Name(ed.From), p.Name(ed.To)}
		}
	}
	return out
}
