package control

// Observation is one telemetry measurement of a live platform: either
// a node's observed compute cost (seconds per task — set Node) or a
// directed link's observed transfer cost (seconds per unit-size
// message — set From and To). Exactly one of the two forms must be
// used. Value carries the measured cost; it must be finite and
// strictly positive (forecast.CheckMeasurement is the shared guard),
// and a batch containing any invalid observation is rejected whole —
// no forecaster sees a partial batch.
type Observation struct {
	// Node names a platform node for a compute-cost measurement.
	Node string `json:"node,omitempty"`
	// From and To name a directed platform edge for a transfer-cost
	// measurement.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Value is the measured cost in the platform's units (w for
	// nodes, c for edges).
	Value float64 `json:"value"`
}

// NodeRate is one node's share of a published schedule epoch, as
// exact-rational strings (same rendering as /v1/solve).
type NodeRate struct {
	Name string `json:"name"`
	// Alpha is the fraction of each time-unit the node computes.
	Alpha string `json:"alpha"`
	// Rate is the node's tasks per time-unit (empty for
	// forwarder-only nodes).
	Rate string `json:"rate,omitempty"`
}

// LinkRate is one directed link's busy fraction in a published epoch.
type LinkRate struct {
	From string `json:"from"`
	To   string `json:"to"`
	Busy string `json:"busy"`
}

// Delta lists what changed between two consecutive epochs of the same
// deployment: only the nodes and links whose rates differ from the
// previous version appear. A subscriber that already holds
// FromVersion can apply the delta instead of re-reading the full
// schedule.
type Delta struct {
	// FromVersion is the epoch this delta applies on top of.
	FromVersion uint64 `json:"from_version"`
	// ThroughputChanged reports that the objective moved (the new
	// value is in the enclosing epoch).
	ThroughputChanged bool `json:"throughput_changed"`
	// Nodes and Links hold only the entries whose rates changed.
	Nodes []NodeRate `json:"nodes,omitempty"`
	Links []LinkRate `json:"links,omitempty"`
}

// Epoch is one published version of a deployment's certified
// steady-state schedule. Every quantity is exact (rational strings);
// the epoch is self-contained — Nodes and Links always carry the full
// schedule — and Delta additionally lists what changed since the
// previous version.
type Epoch struct {
	// Deployment is the owning deployment id.
	Deployment string `json:"deployment"`
	// Version numbers epochs per deployment, starting at 1; it is the
	// SSE event id on /v1/deployments/{id}/watch.
	Version uint64 `json:"version"`
	// Solver is the canonical solver name; Fingerprint the content
	// hash of the estimated platform this epoch was solved on.
	Solver      string `json:"solver"`
	Fingerprint string `json:"fingerprint"`
	// Throughput is the exact objective, Value its float rendering.
	Throughput string  `json:"throughput"`
	Value      float64 `json:"value"`
	// Nodes and Links carry the full certified schedule.
	Nodes []NodeRate `json:"nodes,omitempty"`
	Links []LinkRate `json:"links"`
	// Pivots counts the exact simplex pivots of the solve behind this
	// epoch and WarmStarted reports whether it reused the previous
	// epoch's basis — the pair is the "re-planning is cheap" evidence.
	Pivots      int  `json:"pivots"`
	WarmStarted bool `json:"warm_started"`
	// CacheHit reports that the solve was served from the LP cache
	// (an estimated platform seen before, e.g. drift that reverted).
	CacheHit bool `json:"cache_hit"`
	// Reason says why the epoch was published: "create", "replace" or
	// "drift". MaxDrift is, for drift epochs, the largest relative
	// change between a forecast and the previous model.
	Reason   string  `json:"reason"`
	MaxDrift float64 `json:"max_drift,omitempty"`
	// Delta lists the changes since the previous version; nil on the
	// first epoch and when the platform topology changed (replace).
	Delta *Delta `json:"delta,omitempty"`
	// Resync marks an epoch the subscriber must take whole, discarding
	// any incrementally-applied state: a replay-gap copy (its
	// Last-Event-ID fell behind the retained history) or a replace
	// whose new platform topology makes a delta impossible.
	Resync bool `json:"resync,omitempty"`
}

// ModelNode is one node of a deployment's platform model as reported
// by Snapshot: the nominal cost, the value the current schedule was
// solved on, and the live forecast state.
type ModelNode struct {
	Name string `json:"name"`
	// Nominal is the node's declared w ("inf" for forwarder-only
	// nodes); Current is the exact value in the current model.
	Nominal string `json:"nominal"`
	Current string `json:"current"`
	// Forecast is the predictor's next-value forecast (0 before any
	// observation) and Predictor the currently-best sub-predictor.
	Forecast  float64 `json:"forecast,omitempty"`
	Predictor string  `json:"predictor,omitempty"`
	// Observations counts accepted measurements for this series.
	Observations int64 `json:"observations"`
}

// ModelLink is one directed edge of the platform model, mirroring
// ModelNode for transfer costs.
type ModelLink struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	Nominal      string  `json:"nominal"`
	Current      string  `json:"current"`
	Forecast     float64 `json:"forecast,omitempty"`
	Predictor    string  `json:"predictor,omitempty"`
	Observations int64   `json:"observations"`
}

// Snapshot is the full observable state of one deployment: identity,
// the current epoch, the platform model with its forecast state, and
// lifetime counters. GET /v1/deployments/{id} returns it verbatim.
type Snapshot struct {
	ID      string `json:"id"`
	Problem string `json:"problem"`
	Solver  string `json:"solver"`
	Model   string `json:"model"`
	// Epoch is the current certified schedule.
	Epoch *Epoch `json:"epoch"`
	// Nodes and Links describe the platform model and per-series
	// forecast state.
	Nodes []ModelNode `json:"model_nodes"`
	Links []ModelLink `json:"model_links"`
	// Watchers is the number of live /watch subscribers.
	Watchers int `json:"watchers"`
	// Resolves counts solves behind published epochs (the create
	// included); WarmResolves the subset that reused a basis.
	Resolves     int64 `json:"resolves"`
	WarmResolves int64 `json:"warm_resolves"`
	// DriftEvents counts ticks on which drift beyond the threshold
	// was detected (whether or not a re-solve was allowed to fire).
	DriftEvents int64 `json:"drift_events"`
	// Observations counts accepted telemetry measurements.
	Observations int64 `json:"observations"`
}
