package control

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/control/forecast"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// demoPlatform is the control-plane test fixture: a 3-node star whose
// master-slave LP has a unique optimum both nominally (throughput
// 7/4) and after the injected c(P1>P2)=4 shift (17/12), so schedules
// are comparable byte-for-byte across solve paths.
func demoPlatform() *platform.Platform {
	p := platform.New()
	p1 := p.AddNode("P1", platform.WInt(1))
	p2 := p.AddNode("P2", platform.WInt(2))
	p3 := p.AddNode("P3", platform.WInt(3))
	p.AddEdge(p1, p2, rat.FromInt(1))
	p.AddEdge(p1, p3, rat.FromInt(2))
	return p
}

func demoSpec() steady.Spec { return steady.Spec{Problem: "masterslave", Root: "P1"} }

func mustCreate(t *testing.T, m *Manager, id string) *Snapshot {
	t.Helper()
	snap, err := m.Create(context.Background(), id, demoSpec(), demoPlatform())
	if err != nil {
		t.Fatalf("Create(%q): %v", id, err)
	}
	return snap
}

// driftBatch is telemetry that shifts c(P1>P2) from 1 to 1.5: a 50%
// drift, well past the default threshold, yet small enough that the
// previous epoch's basis stays optimal (the re-solve warm-starts in 0
// exact pivots). 1.5 is exact in binary, so the estimated platform
// equals the true drifted platform fingerprint-for-fingerprint.
var driftBatch = []Observation{{From: "P1", To: "P2", Value: 1.5}}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	snap := mustCreate(t, m, "demo")
	if snap.Epoch == nil || snap.Epoch.Version != 1 {
		t.Fatalf("create epoch = %+v, want version 1", snap.Epoch)
	}
	if snap.Epoch.Throughput != "7/4" {
		t.Fatalf("nominal throughput = %q, want 7/4", snap.Epoch.Throughput)
	}
	if snap.Epoch.Reason != "create" {
		t.Fatalf("reason = %q, want create", snap.Epoch.Reason)
	}
	if len(snap.Epoch.Links) != 2 || len(snap.Epoch.Nodes) != 3 {
		t.Fatalf("epoch has %d nodes, %d links; want 3, 2", len(snap.Epoch.Nodes), len(snap.Epoch.Links))
	}
	if snap.Epoch.Delta != nil {
		t.Fatalf("first epoch has a delta: %+v", snap.Epoch.Delta)
	}

	got, err := m.Get("demo")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Epoch.Version != 1 || got.Resolves != 1 {
		t.Fatalf("Get snapshot = version %d, resolves %d; want 1, 1", got.Epoch.Version, got.Resolves)
	}
	if ids := m.List(); len(ids) != 1 || ids[0] != "demo" {
		t.Fatalf("List = %v", ids)
	}

	if err := m.Remove("demo"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := m.Get("demo"); !errors.Is(err, ErrUnknownDeployment) {
		t.Fatalf("Get after Remove = %v, want ErrUnknownDeployment", err)
	}
	if err := m.Remove("demo"); !errors.Is(err, ErrUnknownDeployment) {
		t.Fatalf("double Remove = %v, want ErrUnknownDeployment", err)
	}
}

func TestCreateRejectsBadInput(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	ctx := context.Background()

	for _, id := range []string{"", "a b", "x/y", ".hidden", "-lead", string(make([]byte, 80))} {
		if _, err := m.Create(ctx, id, demoSpec(), demoPlatform()); !errors.Is(err, ErrBadDeployment) {
			t.Errorf("Create(id=%q) = %v, want ErrBadDeployment", id, err)
		}
	}
	if _, err := m.Create(ctx, "ok", steady.Spec{Problem: "no-such"}, demoPlatform()); !errors.Is(err, steady.ErrUnknownProblem) {
		t.Errorf("bad problem = %v, want ErrUnknownProblem", err)
	}
	if _, err := m.Create(ctx, "ok", demoSpec(), nil); !errors.Is(err, ErrBadDeployment) {
		t.Errorf("nil platform = %v, want ErrBadDeployment", err)
	}
	// A failed create must not leave a half-born deployment behind.
	if _, err := m.Create(ctx, "ghost", steady.Spec{Problem: "masterslave", Root: "NoSuchNode"}, demoPlatform()); err == nil {
		t.Fatal("create with unknown root succeeded")
	}
	if _, err := m.Get("ghost"); !errors.Is(err, ErrUnknownDeployment) {
		t.Errorf("half-born deployment visible: %v", err)
	}
}

func TestDeploymentCap(t *testing.T) {
	m := NewManager(Config{MaxDeployments: 2})
	defer m.Close()
	mustCreate(t, m, "a")
	mustCreate(t, m, "b")
	if _, err := m.Create(context.Background(), "c", demoSpec(), demoPlatform()); !errors.Is(err, ErrTooManyDeployments) {
		t.Fatalf("third create = %v, want ErrTooManyDeployments", err)
	}
	// Replacing an existing deployment stays within the cap.
	if _, err := m.Create(context.Background(), "b", demoSpec(), demoPlatform()); err != nil {
		t.Fatalf("replace at cap: %v", err)
	}
}

// TestTelemetryValidation table-tests every bad payload shape: the
// whole batch must be rejected (HTTP 400 upstream) and no forecaster
// may see any of it — including the valid observations riding along.
func TestTelemetryValidation(t *testing.T) {
	withForwarder := func() *platform.Platform {
		p := demoPlatform()
		f := p.AddNode("F", platform.WInf())
		p.AddEdge(0, f, rat.FromInt(1))
		return p
	}
	m := NewManager(Config{})
	defer m.Close()
	if _, err := m.Create(context.Background(), "demo", demoSpec(), withForwarder()); err != nil {
		t.Fatalf("create: %v", err)
	}

	valid := Observation{From: "P1", To: "P2", Value: 2}
	cases := map[string]struct {
		batch   []Observation
		wantErr error
	}{
		"empty batch":       {nil, ErrBadObservation},
		"unknown node":      {[]Observation{{Node: "P9", Value: 1}}, ErrBadObservation},
		"forwarder node":    {[]Observation{{Node: "F", Value: 1}}, ErrBadObservation},
		"unknown edge":      {[]Observation{{From: "P2", To: "P3", Value: 1}}, ErrBadObservation},
		"unknown endpoint":  {[]Observation{{From: "P1", To: "P9", Value: 1}}, ErrBadObservation},
		"node and edge":     {[]Observation{{Node: "P1", From: "P1", To: "P2", Value: 1}}, ErrBadObservation},
		"neither":           {[]Observation{{Value: 1}}, ErrBadObservation},
		"edge missing to":   {[]Observation{{From: "P1", Value: 1}}, ErrBadObservation},
		"NaN value":         {[]Observation{{Node: "P1", Value: math.NaN()}}, forecast.ErrBadMeasurement},
		"+Inf value":        {[]Observation{{Node: "P1", Value: math.Inf(1)}}, forecast.ErrBadMeasurement},
		"-Inf value":        {[]Observation{{From: "P1", To: "P2", Value: math.Inf(-1)}}, forecast.ErrBadMeasurement},
		"zero value":        {[]Observation{{Node: "P2", Value: 0}}, forecast.ErrBadMeasurement},
		"negative value":    {[]Observation{{Node: "P2", Value: -3}}, forecast.ErrBadMeasurement},
		"valid riding bad":  {[]Observation{valid, {Node: "P1", Value: math.NaN()}}, forecast.ErrBadMeasurement},
		"bad riding valid":  {[]Observation{{Node: "P9", Value: 1}, valid}, ErrBadObservation},
		"two distinct bads": {[]Observation{{Node: "P9", Value: 1}, {Node: "P1", Value: -1}}, ErrBadObservation},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			n, err := m.Observe("demo", tc.batch)
			if err == nil || n != 0 {
				t.Fatalf("Observe accepted bad batch (n=%d, err=%v)", n, err)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Observe error = %v, want %v in chain", err, tc.wantErr)
			}
		})
	}

	// Atomicity: none of the valid observations riding in rejected
	// batches reached a series.
	snap, err := m.Get("demo")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Observations != 0 {
		t.Fatalf("rejected batches leaked %d observations into forecasters", snap.Observations)
	}

	if _, err := m.Observe("nope", []Observation{valid}); !errors.Is(err, ErrUnknownDeployment) {
		t.Fatalf("Observe on unknown deployment = %v", err)
	}
	if n, err := m.Observe("demo", []Observation{valid, {Node: "P2", Value: 2.1}}); err != nil || n != 2 {
		t.Fatalf("valid batch rejected: n=%d err=%v", n, err)
	}
	snap, _ = m.Get("demo")
	if snap.Observations != 2 {
		t.Fatalf("accepted observations = %d, want 2", snap.Observations)
	}
}

// TestDriftResolve is the §5.5 loop end to end in-process: telemetry
// shifts an edge cost 1.5x, the next tick re-solves warm from the
// previous basis, and the published epoch carries the drifted
// schedule plus a delta of exactly the changed rates.
func TestDriftResolve(t *testing.T) {
	m := NewManager(Config{Epoch: time.Second})
	defer m.Close()
	mustCreate(t, m, "demo")
	now := time.Now()

	if _, err := m.Observe("demo", driftBatch); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if n := m.Tick(context.Background(), now.Add(time.Second)); n != 1 {
		t.Fatalf("Tick published %d epochs, want 1", n)
	}
	snap, err := m.Get("demo")
	if err != nil {
		t.Fatal(err)
	}
	ep := snap.Epoch
	if ep.Version != 2 || ep.Reason != "drift" {
		t.Fatalf("epoch = version %d reason %q, want 2/drift", ep.Version, ep.Reason)
	}
	if ep.Throughput != "13/8" {
		t.Fatalf("drifted throughput = %q, want 13/8", ep.Throughput)
	}
	if !ep.WarmStarted {
		t.Fatal("drift re-solve did not warm-start from the previous basis")
	}
	if ep.Pivots > 2 {
		t.Fatalf("drift re-solve took %d exact pivots, want ~0", ep.Pivots)
	}
	if ep.MaxDrift < 0.45 || ep.MaxDrift > 0.55 {
		t.Fatalf("MaxDrift = %v, want ~0.5 (1 -> 1.5)", ep.MaxDrift)
	}
	if ep.Delta == nil || ep.Delta.FromVersion != 1 || !ep.Delta.ThroughputChanged {
		t.Fatalf("delta = %+v, want from_version 1 with throughput change", ep.Delta)
	}
	// Both edge rates move (the send budget is re-split) but only P3's
	// compute rate changes — P1 and the still-saturated P2 must stay
	// out of the delta.
	if len(ep.Delta.Links) != 2 {
		t.Fatalf("delta links = %+v, want both edges changed", ep.Delta.Links)
	}
	if len(ep.Delta.Nodes) != 1 || ep.Delta.Nodes[0].Name != "P3" {
		t.Fatalf("delta nodes = %+v, want exactly P3", ep.Delta.Nodes)
	}

	// The model now matches the telemetry: no further drift, no
	// further re-solves.
	if n := m.Tick(context.Background(), now.Add(2*time.Second)); n != 0 {
		t.Fatalf("steady tick published %d epochs, want 0", n)
	}

	// And the published schedule equals a fresh certified solve of
	// the drifted platform, byte for byte.
	drifted := platform.New()
	p1 := drifted.AddNode("P1", platform.WInt(1))
	p2 := drifted.AddNode("P2", platform.WInt(2))
	p3 := drifted.AddNode("P3", platform.WInt(3))
	drifted.AddEdge(p1, p2, rat.New(3, 2))
	drifted.AddEdge(p1, p3, rat.FromInt(2))
	solver, _ := steady.New(demoSpec())
	fresh, err := solver.Solve(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Fingerprint != ep.Fingerprint {
		t.Fatalf("estimated platform fingerprint %s != drifted platform %s", ep.Fingerprint, fresh.Fingerprint)
	}
	if fresh.Throughput.String() != ep.Throughput {
		t.Fatalf("throughput %s != fresh certified %s", ep.Throughput, fresh.Throughput)
	}
	for i, n := range fresh.Nodes {
		if ep.Nodes[i].Alpha != n.Alpha.String() {
			t.Fatalf("node %s alpha %s != fresh %s", n.Name, ep.Nodes[i].Alpha, n.Alpha)
		}
	}
	for i, l := range fresh.Links {
		if ep.Links[i].Busy != l.Busy.String() {
			t.Fatalf("link %s>%s busy %s != fresh %s", l.From, l.To, ep.Links[i].Busy, l.Busy)
		}
	}
}

func TestDriftBelowThresholdDoesNotResolve(t *testing.T) {
	m := NewManager(Config{Epoch: time.Second, DriftThreshold: 0.5})
	defer m.Close()
	mustCreate(t, m, "demo")
	// 1 -> 1.2 is a 20% change, under the 50% threshold.
	if _, err := m.Observe("demo", []Observation{{From: "P1", To: "P2", Value: 1.2}}); err != nil {
		t.Fatal(err)
	}
	if n := m.Tick(context.Background(), time.Now().Add(time.Minute)); n != 0 {
		t.Fatalf("sub-threshold drift published %d epochs", n)
	}
	snap, _ := m.Get("demo")
	if snap.DriftEvents != 0 || snap.Epoch.Version != 1 {
		t.Fatalf("snapshot = %d drift events, version %d; want 0, 1", snap.DriftEvents, snap.Epoch.Version)
	}
}

func TestMinResolveInterval(t *testing.T) {
	m := NewManager(Config{Epoch: time.Second, MinResolveInterval: 10 * time.Second})
	defer m.Close()
	mustCreate(t, m, "demo")
	now := time.Now()
	if _, err := m.Observe("demo", driftBatch); err != nil {
		t.Fatal(err)
	}
	// Drift is real but the interval has not elapsed: suppressed,
	// counted as a drift event.
	if n := m.Tick(context.Background(), now.Add(time.Second)); n != 0 {
		t.Fatalf("early tick published %d epochs", n)
	}
	snap, _ := m.Get("demo")
	if snap.DriftEvents != 1 || snap.Epoch.Version != 1 {
		t.Fatalf("after early tick: %d drift events, version %d; want 1, 1", snap.DriftEvents, snap.Epoch.Version)
	}
	// Once the interval elapses the re-solve fires.
	if n := m.Tick(context.Background(), now.Add(11*time.Second)); n != 1 {
		t.Fatalf("late tick published %d epochs, want 1", n)
	}
}

func TestResolveBudget(t *testing.T) {
	m := NewManager(Config{Epoch: time.Second, ResolveBudget: 1})
	defer m.Close()
	mustCreate(t, m, "a")
	mustCreate(t, m, "b")
	now := time.Now()
	for _, id := range []string{"a", "b"} {
		if _, err := m.Observe(id, driftBatch); err != nil {
			t.Fatal(err)
		}
	}
	// One budget slot, two drifting deployments: deterministic order
	// means "a" wins this tick, "b" the next.
	if n := m.Tick(context.Background(), now.Add(time.Second)); n != 1 {
		t.Fatalf("budgeted tick published %d epochs, want 1", n)
	}
	sa, _ := m.Get("a")
	sb, _ := m.Get("b")
	if sa.Epoch.Version != 2 || sb.Epoch.Version != 1 {
		t.Fatalf("after tick 1: a=v%d b=v%d; want 2, 1", sa.Epoch.Version, sb.Epoch.Version)
	}
	if n := m.Tick(context.Background(), now.Add(2*time.Second)); n != 1 {
		t.Fatalf("second tick published %d epochs, want 1", n)
	}
	sb, _ = m.Get("b")
	if sb.Epoch.Version != 2 {
		t.Fatalf("b not re-solved on second tick: v%d", sb.Epoch.Version)
	}
}

func TestReplaceResetsSeriesAndBumpsVersion(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	mustCreate(t, m, "demo")
	if _, err := m.Observe("demo", driftBatch); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Watch("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	<-sub.Events() // the v1 epoch

	snap, err := m.Create(context.Background(), "demo", demoSpec(), demoPlatform())
	if err != nil {
		t.Fatalf("replace: %v", err)
	}
	if snap.Epoch.Version != 2 || snap.Epoch.Reason != "replace" {
		t.Fatalf("replace epoch = v%d %q, want v2 replace", snap.Epoch.Version, snap.Epoch.Reason)
	}
	if snap.Observations != 0 {
		t.Fatalf("replace kept %d observations; series must reset", snap.Observations)
	}
	// Existing subscribers ride through a replace.
	select {
	case ep := <-sub.Events():
		if ep.Version != 2 || ep.Reason != "replace" {
			t.Fatalf("subscriber saw %+v", ep)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber did not receive the replace epoch")
	}
	// The old telemetry is gone: no drift on the next tick.
	if n := m.Tick(context.Background(), time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("replaced deployment still drifting: %d epochs", n)
	}
}

func TestComputeDelta(t *testing.T) {
	prev := &Epoch{
		Version:    3,
		Throughput: "7/4",
		Nodes:      []NodeRate{{Name: "P1", Alpha: "1", Rate: "1"}, {Name: "P2", Alpha: "1", Rate: "1/2"}},
		Links:      []LinkRate{{From: "P1", To: "P2", Busy: "1"}},
	}
	next := &Epoch{
		Version:    4,
		Throughput: "7/4",
		Nodes:      []NodeRate{{Name: "P1", Alpha: "1", Rate: "1"}, {Name: "P2", Alpha: "1/2", Rate: "1/4"}},
		Links:      []LinkRate{{From: "P1", To: "P2", Busy: "1"}},
	}
	d := computeDelta(prev, next)
	if d == nil || d.FromVersion != 3 || d.ThroughputChanged {
		t.Fatalf("delta = %+v", d)
	}
	if len(d.Nodes) != 1 || d.Nodes[0].Name != "P2" || len(d.Links) != 0 {
		t.Fatalf("delta contents = %+v", d)
	}
	// Topology change: no delta.
	if d := computeDelta(prev, &Epoch{Nodes: next.Nodes[:1], Links: next.Links}); d != nil {
		t.Fatalf("topology-changing delta = %+v, want nil", d)
	}
}

func TestConcurrentTelemetryAndTicks(t *testing.T) {
	m := NewManager(Config{Epoch: time.Second})
	defer m.Close()
	mustCreate(t, m, "demo")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := 1 + float64((g*31+i)%40)/10 // 1.0 .. 4.9
				_, _ = m.Observe("demo", []Observation{{From: "P1", To: "P2", Value: v}})
			}
		}(g)
	}
	base := time.Now()
	for i := 0; i < 5; i++ {
		m.Tick(context.Background(), base.Add(time.Duration(i+1)*time.Second))
	}
	close(stop)
	wg.Wait()
	if _, err := m.Get("demo"); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkControlEpoch measures one full control-plane epoch under
// drift: telemetry ingest, drift detection, rational model rebuild,
// warm re-solve through the cache, delta computation, and publish to
// one subscriber.
func BenchmarkControlEpoch(b *testing.B) {
	m := NewManager(Config{Epoch: time.Second, DriftThreshold: 1e-9})
	defer m.Close()
	if _, err := m.Create(context.Background(), "bench", demoSpec(), demoPlatform()); err != nil {
		b.Fatal(err)
	}
	sub, err := m.Watch("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	<-sub.Events()
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh cost every iteration (1.5 .. 2.5 in 1/512 steps)
		// forces a real re-solve on most ticks rather than a cache
		// hit on a previously seen model.
		v := 1.5 + float64(i%512)/512
		if _, err := m.Observe("bench", []Observation{{From: "P1", To: "P2", Value: v}}); err != nil {
			b.Fatal(err)
		}
		now = now.Add(time.Second)
		if n := m.Tick(context.Background(), now); n == 1 {
			<-sub.Events()
		}
	}
}

func TestManagerCloseIdempotent(t *testing.T) {
	m := NewManager(Config{})
	mustCreate(t, m, "demo")
	sub, err := m.Watch("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()
	// Drain: the v1 epoch, then the channel closes at shutdown.
	for range sub.Events() {
	}
	// A never-started manager closes cleanly too.
	NewManager(Config{}).Close()
}

func TestWatchUnknownDeployment(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	if _, err := m.Watch("nope", 0); !errors.Is(err, ErrUnknownDeployment) {
		t.Fatalf("Watch = %v, want ErrUnknownDeployment", err)
	}
}

// driftTo publishes epochs until the deployment reaches the given
// version, doubling the observed edge cost each round so every tick
// sees unmistakable drift (pair with a small Config.DriftThreshold —
// the forecaster battery lags a step-change, so the predicted move is
// a fraction of the 2x jump).
func driftTo(t *testing.T, m *Manager, id string, upto uint64) {
	t.Helper()
	now := time.Now()
	snap, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	for v := snap.Epoch.Version; v < upto; v++ {
		val := float64(uint64(1) << v)
		if _, err := m.Observe(id, []Observation{{From: "P1", To: "P2", Value: val}}); err != nil {
			t.Fatal(err)
		}
		// Tick times scale with the version so repeated driftTo calls
		// against one manager keep moving the clock forward past
		// MinResolveInterval.
		tick := now.Add(time.Duration(v) * 24 * time.Hour)
		if n := m.Tick(context.Background(), tick); n != 1 {
			t.Fatalf("drift round v%d published %d", v, n)
		}
	}
}

func TestWatchReplayAndResync(t *testing.T) {
	m := NewManager(Config{History: 3, DriftThreshold: 1e-6})
	defer m.Close()
	mustCreate(t, m, "demo")
	driftTo(t, m, "demo", 6) // history now holds v4, v5, v6

	// Fresh subscriber: current epoch only.
	fresh, err := m.Watch("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if ep := <-fresh.Events(); ep.Version != 6 || ep.Resync {
		t.Fatalf("fresh subscriber got v%d (resync=%v), want clean v6", ep.Version, ep.Resync)
	}

	// Resume from v4: v5 and v6 replay in order, with deltas intact.
	resume, err := m.Watch("demo", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer resume.Close()
	for _, want := range []uint64{5, 6} {
		ep := <-resume.Events()
		if ep.Version != want || ep.Resync || ep.Delta == nil {
			t.Fatalf("replay got v%d (resync=%v, delta=%v), want clean v%d with delta", ep.Version, ep.Resync, ep.Delta, want)
		}
	}

	// Resume from v1: that history is gone — one Resync epoch, no
	// delta, full schedule.
	stale, err := m.Watch("demo", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	ep := <-stale.Events()
	if ep.Version != 6 || !ep.Resync || ep.Delta != nil {
		t.Fatalf("stale resume got v%d (resync=%v, delta=%v), want v6 resync without delta", ep.Version, ep.Resync, ep.Delta)
	}
	if len(ep.Links) != 2 {
		t.Fatalf("resync epoch not self-contained: %+v", ep)
	}

	// Up to date: nothing pending, next epoch arrives live.
	current, err := m.Watch("demo", 6)
	if err != nil {
		t.Fatal(err)
	}
	defer current.Close()
	select {
	case ep := <-current.Events():
		t.Fatalf("up-to-date subscriber got unsolicited v%d", ep.Version)
	default:
	}
	driftTo(t, m, "demo", 7)
	if ep := <-current.Events(); ep.Version != 7 {
		t.Fatalf("live epoch = v%d, want 7", ep.Version)
	}
}

func TestSlowConsumerEviction(t *testing.T) {
	m := NewManager(Config{WatchBuffer: 1, DriftThreshold: 1e-6})
	defer m.Close()
	mustCreate(t, m, "demo")

	slow, err := m.Watch("demo", 0) // buffer holds v1 + 1 live epoch
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.Watch("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	<-fast.Events() // fast keeps draining; slow never reads

	driftTo(t, m, "demo", 3) // two more epochs: second overflows slow
	if ep := <-fast.Events(); ep.Version != 2 {
		t.Fatalf("fast subscriber got v%d, want 2", ep.Version)
	}
	if ep := <-fast.Events(); ep.Version != 3 {
		t.Fatalf("fast subscriber got v%d, want 3", ep.Version)
	}

	// The slow subscriber was evicted: buffered epochs then close.
	got := 0
	for range slow.Events() {
		got++
	}
	if got != 2 {
		t.Fatalf("slow subscriber drained %d epochs before eviction, want 2 (v1 + v2)", got)
	}
	snap, _ := m.Get("demo")
	if snap.Watchers != 1 {
		t.Fatalf("watchers after eviction = %d, want 1", snap.Watchers)
	}
	// Close after eviction is a harmless no-op.
	slow.Close()

	// The evicted client resumes with its last seen version and gets
	// the missed epoch.
	back, err := m.Watch("demo", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if ep := <-back.Events(); ep.Version != 3 {
		t.Fatalf("resumed subscriber got v%d, want 3", ep.Version)
	}
}

func TestWatcherCap(t *testing.T) {
	m := NewManager(Config{MaxWatchers: 2})
	defer m.Close()
	mustCreate(t, m, "demo")
	a, err := m.Watch("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch("demo", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch("demo", 0); !errors.Is(err, ErrTooManyWatchers) {
		t.Fatalf("third watcher = %v, want ErrTooManyWatchers", err)
	}
	// Closing frees the slot.
	a.Close()
	if _, err := m.Watch("demo", 0); err != nil {
		t.Fatalf("watch after close: %v", err)
	}
}

func TestBackgroundLoopFiresResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("timer-driven")
	}
	m := NewManager(Config{Epoch: 20 * time.Millisecond, MinResolveInterval: time.Nanosecond})
	defer m.Close()
	mustCreate(t, m, "demo")
	if _, err := m.Observe("demo", driftBatch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get("demo")
		if err != nil {
			t.Fatal(err)
		}
		if snap.Epoch.Version >= 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("background loop never re-solved the drifted deployment")
}

func TestSnapshotModelState(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	mustCreate(t, m, "demo")
	if _, err := m.Observe("demo", []Observation{{From: "P1", To: "P2", Value: 4}, {Node: "P2", Value: 2.5}}); err != nil {
		t.Fatal(err)
	}
	m.Tick(context.Background(), time.Now().Add(time.Hour))
	snap, err := m.Get("demo")
	if err != nil {
		t.Fatal(err)
	}
	var link *ModelLink
	for i := range snap.Links {
		if snap.Links[i].From == "P1" && snap.Links[i].To == "P2" {
			link = &snap.Links[i]
		}
	}
	if link == nil || link.Nominal != "1" || link.Current != "4" || link.Observations != 1 {
		t.Fatalf("model link = %+v, want nominal 1, current 4, 1 observation", link)
	}
	if link.Predictor == "" || link.Forecast != 4 {
		t.Fatalf("model link forecast state = %+v", link)
	}
	var node *ModelNode
	for i := range snap.Nodes {
		if snap.Nodes[i].Name == "P2" {
			node = &snap.Nodes[i]
		}
	}
	if node == nil || node.Nominal != "2" || node.Current != "5/2" || node.Observations != 1 {
		t.Fatalf("model node = %+v, want nominal 2, current 5/2", node)
	}
}

// TestSharedCacheAcrossDeployments: the manager's LP cache is shared,
// so a second deployment on an already-solved platform publishes its
// first epoch straight from the cache — same fingerprint, zero solve.
func TestSharedCacheAcrossDeployments(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	a := mustCreate(t, m, "a")
	if a.Epoch.CacheHit {
		t.Fatalf("first solve reported a cache hit: %+v", a.Epoch)
	}
	b := mustCreate(t, m, "b")
	if !b.Epoch.CacheHit {
		t.Fatalf("identical platform was not served from the cache: %+v", b.Epoch)
	}
	if b.Epoch.Fingerprint != a.Epoch.Fingerprint || b.Epoch.Throughput != a.Epoch.Throughput {
		t.Fatalf("cached epoch diverged: %+v vs %+v", b.Epoch, a.Epoch)
	}
	if b.Epoch.Version != 1 {
		t.Fatalf("fresh deployment started at version %d", b.Epoch.Version)
	}
}

// bigPlatform is a 4-node star: same names as demoPlatform for P1-P3
// plus a P4 arm, so it shares observable series with the demo star but
// has an incompatible topology (no delta between the two is possible).
func bigPlatform() *platform.Platform {
	p := platform.New()
	p1 := p.AddNode("P1", platform.WInt(1))
	p2 := p.AddNode("P2", platform.WInt(2))
	p3 := p.AddNode("P3", platform.WInt(3))
	p4 := p.AddNode("P4", platform.WInt(4))
	p.AddEdge(p1, p2, rat.FromInt(1))
	p.AddEdge(p1, p3, rat.FromInt(2))
	p.AddEdge(p1, p4, rat.FromInt(3))
	return p
}

// TestReplaceTopologyChangeMarksResync pins the signal delta-tracking
// subscribers rely on: a replace whose new platform cannot be diffed
// against the old one (topology changed) publishes its epoch with
// Delta nil and Resync set, while a same-topology replace keeps a
// normal delta and no resync.
func TestReplaceTopologyChangeMarksResync(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	mustCreate(t, m, "demo")
	sub, err := m.Watch("demo", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	<-sub.Events() // the v1 epoch

	snap, err := m.Create(context.Background(), "demo", demoSpec(), bigPlatform())
	if err != nil {
		t.Fatalf("replace: %v", err)
	}
	if snap.Epoch.Delta != nil || !snap.Epoch.Resync {
		t.Fatalf("topology-changing replace epoch: delta=%+v resync=%v; want nil delta, resync",
			snap.Epoch.Delta, snap.Epoch.Resync)
	}
	select {
	case ep := <-sub.Events():
		if ep.Version != 2 || ep.Delta != nil || !ep.Resync {
			t.Fatalf("subscriber saw v%d delta=%+v resync=%v; want v2, nil delta, resync",
				ep.Version, ep.Delta, ep.Resync)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber did not receive the replace epoch")
	}

	// Same-topology replace: a delta is possible, so no resync.
	snap, err = m.Create(context.Background(), "demo", demoSpec(), bigPlatform())
	if err != nil {
		t.Fatalf("same-topology replace: %v", err)
	}
	if snap.Epoch.Delta == nil || snap.Epoch.Resync {
		t.Fatalf("same-topology replace epoch: delta=%+v resync=%v; want delta, no resync",
			snap.Epoch.Delta, snap.Epoch.Resync)
	}
}

// TestReplaceDuringTickResolve reproduces the Tick/replace race
// deterministically: a replace to an incompatible platform is parked
// inside its solve (holding solveMu) while Tick evaluates drift on the
// platform about to be retired. Before Tick pinned its estimate under
// solveMu it would publish that stale estimate over the replacement —
// d.cur sized to the old topology, d.base to the new — and the next
// snapshot or drift scan indexed out of range and crashed the
// background loop. Now Tick re-checks under solveMu and skips.
func TestReplaceDuringTickResolve(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var gateBig atomic.Bool
	solve := func(ctx context.Context, key string, solver steady.Solver, p *platform.Platform, extra ...steady.SolveOption) (*steady.Result, bool, error) {
		if gateBig.Load() && p.NumNodes() == 4 {
			entered <- struct{}{}
			<-release
		}
		res, err := solver.Solve(ctx, p, extra...)
		return res, false, err
	}
	m := NewManager(Config{
		DriftThreshold:     1e-9,
		MinResolveInterval: time.Nanosecond,
		Solve:              solve,
	})
	defer m.Close()
	mustCreate(t, m, "demo")
	if _, err := m.Observe("demo", driftBatch); err != nil {
		t.Fatal(err)
	}

	gateBig.Store(true)
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		if _, err := m.Create(context.Background(), "demo", demoSpec(), bigPlatform()); err != nil {
			t.Errorf("replace: %v", err)
		}
	}()
	<-entered // the replace holds solveMu; the 4-node star is not yet installed

	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		m.Tick(context.Background(), time.Now().Add(time.Hour))
	}()
	// Let Tick see the drifted 3-node platform and block on solveMu,
	// then let the replace install the 4-node star under it.
	time.Sleep(50 * time.Millisecond)
	gateBig.Store(false)
	close(release)
	<-repDone
	<-tickDone

	// The snapshot must be internally consistent: 4-node base, 4-node
	// current model, fresh series reporting no drift.
	snap, err := m.Get("demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Nodes) != 4 || len(snap.Links) != 3 {
		t.Fatalf("snapshot has %d nodes, %d links; want 4, 3", len(snap.Nodes), len(snap.Links))
	}
	if snap.Epoch.Reason != "replace" {
		t.Fatalf("current epoch reason = %q, want replace (the stale drift epoch must not publish)", snap.Epoch.Reason)
	}
	if n := m.Tick(context.Background(), time.Now().Add(2*time.Hour)); n != 0 {
		t.Fatalf("replaced deployment still drifting: %d epochs", n)
	}
}

// TestConcurrentReplaceAndTicks races topology-flipping replaces
// against drift-triggered re-solves and snapshot reads. Before Tick
// pinned its estimate under solveMu, a replace could land between
// Tick's estimate and its publish, leaving d.cur sized to the retired
// topology while d.base and the series used the new one — the next
// driftLocked or snapshotLocked then indexed out of range and crashed
// the background loop. Run under -race.
func TestConcurrentReplaceAndTicks(t *testing.T) {
	// A deliberately slow SolveFunc stretches the time Create holds
	// solveMu before installing the new platform — exactly when a racy
	// Tick would build its estimate from the platform about to be
	// retired.
	slow := func(ctx context.Context, key string, solver steady.Solver, p *platform.Platform, extra ...steady.SolveOption) (*steady.Result, bool, error) {
		time.Sleep(200 * time.Microsecond)
		res, err := solver.Solve(ctx, p, extra...)
		return res, false, err
	}
	m := NewManager(Config{
		Epoch:              time.Second,
		MinResolveInterval: time.Nanosecond,
		DriftThreshold:     1e-9,
		Solve:              slow,
	})
	defer m.Close()
	mustCreate(t, m, "demo")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // flip the platform between the 3- and 4-node stars
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := demoPlatform()
			if i%2 == 1 {
				p = bigPlatform()
			}
			if _, err := m.Create(context.Background(), "demo", demoSpec(), p); err != nil {
				t.Errorf("replace: %v", err)
				return
			}
		}
	}()
	go func() { // telemetry on both shared and big-only series
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := 1.25 + float64(i%5)/8
			_, _ = m.Observe("demo", []Observation{{From: "P1", To: "P2", Value: v}})
			_, _ = m.Observe("demo", []Observation{{From: "P1", To: "P3", Value: v + 1}})
			// Only valid while the 4-node star is installed; rejected
			// (whole-batch) otherwise, which is exactly the point: its
			// series exists in one topology and not the other.
			_, _ = m.Observe("demo", []Observation{{From: "P1", To: "P4", Value: v + 2}})
		}
	}()

	base := time.Now()
	for i := 0; i < 150; i++ {
		m.Tick(context.Background(), base.Add(time.Duration(i+1)*time.Second))
		if _, err := m.Get("demo"); err != nil {
			t.Fatalf("Get during churn: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestWatchRemoveRace races Watch against Remove: a subscription must
// either fail with ErrUnknownDeployment or end up on a deployment
// whose removal closes it. Before Watch re-verified its registration,
// a Remove landing between lookup and the subscriber add left the sub
// on an orphaned deployment — open forever, delivering nothing.
func TestWatchRemoveRace(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	var subs []*Subscription
	for i := 0; i < 500; i++ {
		mustCreate(t, m, "demo")
		start := make(chan struct{})
		done := make(chan struct{})
		go func() {
			<-start
			_ = m.Remove("demo")
			close(done)
		}()
		close(start)
		if sub, err := m.Watch("demo", 0); err == nil {
			subs = append(subs, sub)
		} else if !errors.Is(err, ErrUnknownDeployment) {
			t.Fatalf("Watch: %v", err)
		}
		<-done
	}

	// Every subscription Watch returned was registered when its Remove
	// had not yet swept subscribers, so that Remove must have closed it.
	for i, sub := range subs {
		deadline := time.After(2 * time.Second)
	drain:
		for {
			select {
			case _, open := <-sub.Events():
				if !open {
					break drain
				}
			case <-deadline:
				t.Fatalf("subscription %d orphaned: channel never closed", i)
			}
		}
	}
}

var _ = fmt.Sprintf // keep fmt handy for debugging edits
