package control

import (
	"fmt"
	"sync"
)

// Subscription is one subscriber's view of a deployment's epoch
// stream. Events delivers epochs in version order; the channel closes
// when the subscriber is evicted (its buffer overflowed — it must
// resubscribe with its last seen version), when the deployment is
// removed, or when the Manager closes. A replace does not close the
// stream: subscribers receive the replacement epoch, marked Resync
// when the new platform's topology makes a delta impossible. Call
// Close when done reading; it only deregisters, the channel is left
// to the garbage collector.
type Subscription struct {
	d    *deployment
	ch   chan *Epoch
	once sync.Once
}

// Events returns the epoch stream. A closed channel means the
// subscription ended server-side (eviction, removal, shutdown);
// resubscribe with the last seen version to resume.
func (s *Subscription) Events() <-chan *Epoch { return s.ch }

// Close deregisters the subscription. It never closes the events
// channel (the publisher owns that side) and is safe to call more
// than once, including after an eviction.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.d.mu.Lock()
		delete(s.d.watched, s)
		s.d.mu.Unlock()
	})
}

// Watch subscribes to a deployment's epoch stream. lastVersion is the
// subscriber's resume point (the SSE Last-Event-ID): 0 means a fresh
// subscriber, which immediately receives the current epoch; a
// subscriber resuming from version v receives every retained epoch
// after v in order. When v has already fallen out of the bounded
// history, the subscriber instead receives one copy of the current
// epoch marked Resync (and no delta) — it must discard incremental
// state and start over from that full schedule.
func (m *Manager) Watch(id string, lastVersion uint64) (*Subscription, error) {
	d, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.epoch == nil {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownDeployment, id)
	}
	if n := len(d.watched); n >= m.cfg.MaxWatchers {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: deployment %q has %d watchers, limit %d",
			ErrTooManyWatchers, id, n, m.cfg.MaxWatchers)
	}

	var pending []*Epoch
	switch {
	case lastVersion == 0:
		pending = []*Epoch{d.epoch}
	case lastVersion >= d.epoch.Version:
		// Already up to date (or claims to be from the future — the
		// next published epoch will straighten it out).
	case len(d.history) > 0 && d.history[0].Version <= lastVersion+1:
		for _, ep := range d.history {
			if ep.Version > lastVersion {
				pending = append(pending, ep)
			}
		}
	default:
		// The resume point predates the retained history: replaying
		// is impossible, hand over the current epoch in full.
		cp := *d.epoch
		cp.Resync = true
		cp.Delta = nil
		pending = []*Epoch{&cp}
		m.metrics.incResync()
	}

	// The buffer always fits the replay plus WatchBuffer live epochs,
	// so a resuming subscriber cannot be evicted by its own backlog.
	sub := &Subscription{d: d, ch: make(chan *Epoch, m.cfg.WatchBuffer+len(pending))}
	for _, ep := range pending {
		sub.ch <- ep
	}
	d.watched[sub] = struct{}{}
	d.mu.Unlock()

	// Re-verify the registration: a Remove between lookup and the add
	// above has already swept this deployment's subscribers, and a sub
	// registered after that sweep would stream keepalives forever. Now
	// that the sub is visible to Remove's sweep, a current registry
	// entry proves any later Remove will close it. (m.mu is never taken
	// while holding d.mu: Close holds m.mu across d.mu, so the inverse
	// order can deadlock behind a pending writer.)
	m.mu.RLock()
	registered := m.deps[id] == d
	m.mu.RUnlock()
	if !registered {
		sub.Close()
		return nil, fmt.Errorf("%w: %q", ErrUnknownDeployment, id)
	}
	return sub, nil
}

// Watchers returns the number of live subscriptions across all
// deployments (the steady_control_watchers gauge).
func (m *Manager) Watchers() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, d := range m.deps {
		d.mu.Lock()
		n += len(d.watched)
		d.mu.Unlock()
	}
	return n
}
