package control

import (
	"repro/pkg/steady"
	"repro/pkg/steady/obs"
)

// controlMetrics is the steady_control_* instrument set. Instruments
// are resolved eagerly at construction — including every label value
// the package can emit — so all families render (at zero) from the
// first scrape and `metricscheck -require` can pin them in CI. A nil
// registry yields a zero controlMetrics whose methods are no-ops.
type controlMetrics struct {
	reg *obs.Registry

	ticks         *obs.Counter
	epochs        *obs.Counter
	resolveByWhy  *obs.CounterVec
	resolveCreate *obs.Counter
	resolveDrift  *obs.Counter
	resolveErrs   *obs.Counter
	warmResolves  *obs.Counter
	pivots        *obs.Counter
	driftEvents   *obs.Counter
	suppressed    *obs.CounterVec
	supMinIvl     *obs.Counter
	supBudget     *obs.Counter
	observations  *obs.Counter
	rejected      *obs.Counter
	evictions     *obs.Counter
	resyncs       *obs.Counter
	deltaChanges  *obs.Counter
}

func newControlMetrics(reg *obs.Registry, m *Manager) *controlMetrics {
	cm := &controlMetrics{reg: reg}
	if reg == nil {
		return cm
	}
	reg.GaugeFunc("steady_control_deployments",
		"Deployments currently tracked by the control plane.",
		func() float64 { return float64(m.Len()) })
	reg.GaugeFunc("steady_control_watchers",
		"Live /v1/deployments/{id}/watch subscriptions across all deployments.",
		func() float64 { return float64(m.Watchers()) })
	cm.ticks = reg.Counter("steady_control_ticks_total",
		"Control-loop epochs evaluated (every deployment's drift checked once per tick).")
	cm.epochs = reg.Counter("steady_control_epochs_total",
		"Schedule epochs published (creates, replaces and drift re-solves).")
	cm.resolveByWhy = reg.CounterVec("steady_control_resolves_total",
		"Certified solves behind published epochs, by reason.", "reason")
	cm.resolveCreate = cm.resolveByWhy.With("create")
	cm.resolveDrift = cm.resolveByWhy.With("drift")
	cm.resolveByWhy.With("replace")
	cm.resolveErrs = reg.Counter("steady_control_resolve_errors_total",
		"Control-plane solves that failed (the previous epoch stays current).")
	cm.warmResolves = reg.Counter("steady_control_warm_resolves_total",
		"Epoch solves that warm-started from a prior basis (epoch-to-epoch reuse).")
	cm.pivots = reg.Counter("steady_control_resolve_pivots_total",
		"Exact simplex pivots across control-plane solves (the re-planning cost).")
	cm.driftEvents = reg.Counter("steady_control_drift_events_total",
		"Ticks on which a deployment's forecast drift exceeded the threshold.")
	cm.suppressed = reg.CounterVec("steady_control_drift_suppressed_total",
		"Drift events that did not re-solve, by reason (min_interval, budget).", "reason")
	cm.supMinIvl = cm.suppressed.With("min_interval")
	cm.supBudget = cm.suppressed.With("budget")
	cm.observations = reg.Counter("steady_control_observations_total",
		"Telemetry measurements accepted into forecasters.")
	cm.rejected = reg.Counter("steady_control_observations_rejected_total",
		"Telemetry measurements rejected by validation (whole batches count).")
	cm.evictions = reg.Counter("steady_control_watch_evictions_total",
		"Watch subscribers evicted for falling a full buffer behind.")
	cm.resyncs = reg.Counter("steady_control_watch_resyncs_total",
		"Watch resumes whose Last-Event-ID predated the retained history (full resync).")
	cm.deltaChanges = reg.Counter("steady_control_delta_changes_total",
		"Changed node and link rates published across epoch deltas.")
	return cm
}

func (cm *controlMetrics) incTick() {
	if cm.reg != nil {
		cm.ticks.Inc()
	}
}

func (cm *controlMetrics) incDrift() {
	if cm.reg != nil {
		cm.driftEvents.Inc()
	}
}

func (cm *controlMetrics) incSuppressed(reason string) {
	if cm.reg == nil {
		return
	}
	if reason == "budget" {
		cm.supBudget.Inc()
	} else {
		cm.supMinIvl.Inc()
	}
}

func (cm *controlMetrics) incResolveErr() {
	if cm.reg != nil {
		cm.resolveErrs.Inc()
	}
}

func (cm *controlMetrics) incObservations(n int) {
	if cm.reg != nil {
		cm.observations.Add(int64(n))
	}
}

func (cm *controlMetrics) incRejected(n int) {
	if cm.reg != nil {
		cm.rejected.Add(int64(n))
	}
}

func (cm *controlMetrics) incEviction() {
	if cm.reg != nil {
		cm.evictions.Inc()
	}
}

func (cm *controlMetrics) incResync() {
	if cm.reg != nil {
		cm.resyncs.Inc()
	}
}

func (cm *controlMetrics) incDeltaChanges(n int) {
	if cm.reg != nil {
		cm.deltaChanges.Add(int64(n))
	}
}

// noteResolve records one published epoch's solve.
func (cm *controlMetrics) noteResolve(reason string, res *steady.Result) {
	if cm.reg == nil {
		return
	}
	cm.epochs.Inc()
	switch reason {
	case "create":
		cm.resolveCreate.Inc()
	case "drift":
		cm.resolveDrift.Inc()
	default:
		cm.resolveByWhy.With(reason).Inc()
	}
	if res.WarmStarted {
		cm.warmResolves.Inc()
	}
	cm.pivots.Add(int64(res.Pivots))
}
