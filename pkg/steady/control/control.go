// Package control is the online scheduling control plane: the
// production form of the paper's §5.5 phase-based dynamic scheduling
// ("during each phase, machine and network parameters are collected
// ... this information will then guide the scheduling decisions for
// the next phase"). Where internal/adaptive closes that loop inside a
// simulation, this package closes it for a live service:
//
//   - a Manager tracks deployments — each a platform graph plus a
//     steady-state problem spec — and keeps a current certified
//     schedule (an Epoch) per deployment;
//   - telemetry observations (Observation) feed per-node and per-edge
//     NWS-style forecasters (pkg/steady/control/forecast), every
//     measurement passing the shared CheckMeasurement guard before it
//     can touch a series;
//   - each epoch tick, a drift detector compares the forecasts
//     against the values the current schedule was solved on; relative
//     change beyond Config.DriftThreshold — rate-limited by
//     Config.MinResolveInterval and Config.ResolveBudget so noisy
//     telemetry cannot melt the solver — triggers a re-solve;
//   - the re-solve rebuilds the rational platform model from the
//     forecasts (continued-fraction approximation with bounded
//     denominators, exactly as internal/adaptive does), solves it
//     through the LP cache warm-started from the previous epoch's
//     terminal basis (PR 4/6's 215→0-pivot machinery is what makes
//     continuous re-planning affordable), and publishes a new
//     versioned Epoch whose Delta lists only the changed rates;
//   - subscribers follow a deployment over Subscription channels
//     (served as SSE by pkg/steady/server's /v1/deployments/{id}/watch)
//     with Last-Event-ID replay from a bounded history and eviction
//     of slow consumers, so one stuck reader never blocks the loop.
//
// Everything published is exact: epochs carry the same certified
// rational schedules /v1/solve returns, and an estimated platform
// that round-trips to a fingerprint seen before is a cache hit — a
// drift that reverts costs no pivots at all.
package control

import (
	"context"
	"errors"
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/control/forecast"
	"repro/pkg/steady/lp"
	"repro/pkg/steady/obs"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// Typed errors, matched with errors.Is by callers (pkg/steady/server
// maps them to HTTP statuses: unknown deployment → 404, the two
// capacity errors → 429, bad ids/observations → 400).
var (
	ErrUnknownDeployment  = errors.New("control: unknown deployment")
	ErrTooManyDeployments = errors.New("control: too many deployments")
	ErrTooManyWatchers    = errors.New("control: too many watchers")
	ErrBadDeployment      = errors.New("control: bad deployment")
	ErrBadObservation     = errors.New("control: bad observation")
)

// idPattern bounds deployment ids: they appear in URL paths and
// metrics, so only a conservative charset is accepted.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// SolveFunc runs one certified solve for the control plane. key is
// the canonical cache key (batch.Key of the estimated platform's
// fingerprint and the solver name); extra options are appended after
// any the implementation adds itself, so an extra WarmStart wins
// (options apply in order). The boolean reports a cache hit.
// pkg/steady/server supplies a SolveFunc backed by its shared LP
// cache and concurrency gate; NewManager defaults to a private
// batch.Cache.
type SolveFunc func(ctx context.Context, key string, solver steady.Solver, p *platform.Platform, extra ...steady.SolveOption) (*steady.Result, bool, error)

// Config tunes a Manager. The zero value selects sensible defaults
// for every field.
type Config struct {
	// Epoch is the control loop period: how often drift is evaluated.
	// 0 = 2s.
	Epoch time.Duration
	// MinResolveInterval is the minimum time between re-solves of one
	// deployment, whatever the telemetry does. 0 = one Epoch.
	MinResolveInterval time.Duration
	// DriftThreshold is the relative change between a forecast and
	// the value the current schedule was solved on that triggers a
	// re-solve (0.1 = 10%). 0 = 0.1.
	DriftThreshold float64
	// MaxDen bounds the denominators of the rational platform model
	// rebuilt from float forecasts (continued-fraction approximation,
	// as internal/adaptive). 0 = 4096.
	MaxDen int64
	// ResolveBudget caps re-solves per tick across all deployments —
	// the cost ceiling of one epoch. 0 = 32.
	ResolveBudget int
	// MaxDeployments caps tracked deployments. 0 = 1024.
	MaxDeployments int
	// MaxWatchers caps concurrent subscribers per deployment. 0 = 64.
	MaxWatchers int
	// WatchBuffer is a subscriber's channel depth; a subscriber that
	// falls this many epochs behind is evicted (its channel closes).
	// 0 = 16.
	WatchBuffer int
	// History is how many epochs are retained per deployment for
	// Last-Event-ID replay; older resume points get a Resync epoch.
	// 0 = 64.
	History int
	// SolveTimeout bounds one control-plane solve. 0 = 30s.
	SolveTimeout time.Duration
	// Solve runs the solves. nil = a private batch.Cache with
	// float-first enabled (warm-start included).
	Solve SolveFunc
	// Obs receives the steady_control_* metric families; nil records
	// nothing.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = 2 * time.Second
	}
	if c.MinResolveInterval <= 0 {
		c.MinResolveInterval = c.Epoch
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.1
	}
	if c.MaxDen <= 0 {
		c.MaxDen = 4096
	}
	if c.ResolveBudget <= 0 {
		c.ResolveBudget = 32
	}
	if c.MaxDeployments <= 0 {
		c.MaxDeployments = 1024
	}
	if c.MaxWatchers <= 0 {
		c.MaxWatchers = 64
	}
	if c.WatchBuffer <= 0 {
		c.WatchBuffer = 16
	}
	if c.History <= 0 {
		c.History = 64
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	return c
}

// Manager is the deployment registry and epoch loop. Construct with
// NewManager; it is safe for concurrent use. The background loop
// starts on the first Create (or an explicit Start) and stops at
// Close.
type Manager struct {
	cfg     Config
	solve   SolveFunc
	metrics *controlMetrics

	mu   sync.RWMutex
	deps map[string]*deployment

	startOnce sync.Once
	closeOnce sync.Once
	loopCtx   context.Context
	loopStop  context.CancelFunc
	loopDone  chan struct{}
}

// deployment is the per-deployment state. Two locks: mu guards all
// mutable state (telemetry keeps flowing during a solve), solveMu
// serializes the solves themselves (a re-solve and a replace never
// interleave).
type deployment struct {
	id string

	solveMu sync.Mutex

	mu      sync.Mutex
	spec    steady.Spec
	solver  steady.Solver
	base    *platform.Platform
	wEst    []*forecast.Adaptive // per node; nil for forwarder-only nodes
	cEst    []*forecast.Adaptive // per edge
	wObs    []int64              // accepted observations per node series
	cObs    []int64
	cur     *platform.Platform // the model the current epoch was solved on
	curW    []float64          // float view of cur's node costs
	curC    []float64          // ... and edge costs, for drift comparison
	basis   *lp.Basis          // terminal basis of the current epoch's LP
	epoch   *Epoch
	history []*Epoch // ascending versions, bounded by Config.History
	watched map[*Subscription]struct{}

	lastResolve  time.Time
	resolves     int64
	warmResolves int64
	driftEvents  int64
	observations int64
}

// NewManager builds a Manager from cfg (zero value = defaults).
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, deps: map[string]*deployment{}, loopDone: make(chan struct{})}
	m.loopCtx, m.loopStop = context.WithCancel(context.Background())
	m.solve = cfg.Solve
	if m.solve == nil {
		cache := batch.NewCache(0, 0)
		if cfg.Obs != nil {
			cache.SetObs(cfg.Obs)
		}
		m.solve = func(ctx context.Context, key string, solver steady.Solver, p *platform.Platform, extra ...steady.SolveOption) (*steady.Result, bool, error) {
			res, err, hit := cache.DoSolve(ctx, key, solver.Name(), func(sctx context.Context, opts ...steady.SolveOption) (*steady.Result, error) {
				return solver.Solve(sctx, p, append(opts, extra...)...)
			})
			return res, hit, err
		}
	}
	m.metrics = newControlMetrics(cfg.Obs, m)
	return m
}

// Len returns the number of tracked deployments.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.deps)
}

// List returns the tracked deployment ids, sorted.
func (m *Manager) List() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.deps))
	for id := range m.deps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Start launches the background epoch loop (one tick per
// Config.Epoch). It is idempotent; Create calls it automatically, so
// explicit use is only needed to begin ticking before any deployment
// exists.
func (m *Manager) Start() {
	m.startOnce.Do(func() {
		go func() {
			defer close(m.loopDone)
			t := time.NewTicker(m.cfg.Epoch)
			defer t.Stop()
			for {
				select {
				case <-m.loopCtx.Done():
					return
				case now := <-t.C:
					m.Tick(m.loopCtx, now)
				}
			}
		}()
	})
}

// Close stops the epoch loop and evicts every subscriber (their
// channels close). Tracked deployments remain readable; Close is
// idempotent.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		m.loopStop()
		// Only wait for a loop that was actually started.
		started := true
		m.startOnce.Do(func() { started = false; close(m.loopDone) })
		if started {
			<-m.loopDone
		}
		m.mu.RLock()
		defer m.mu.RUnlock()
		for _, d := range m.deps {
			d.mu.Lock()
			for sub := range d.watched {
				delete(d.watched, sub)
				close(sub.ch)
			}
			d.mu.Unlock()
		}
	})
}

// Create registers (or replaces) a deployment: it solves the problem
// on the nominal platform synchronously and publishes epoch 1 (on
// replace: the next version, to the existing subscribers). A replace
// resets every telemetry series — the old forecasts describe the old
// platform.
func (m *Manager) Create(ctx context.Context, id string, spec steady.Spec, p *platform.Platform) (*Snapshot, error) {
	if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("%w: id %q (want %s)", ErrBadDeployment, id, idPattern)
	}
	solver, err := steady.New(spec)
	if err != nil {
		return nil, err
	}
	if p == nil || p.NumNodes() == 0 {
		return nil, fmt.Errorf("%w: empty platform", ErrBadDeployment)
	}

	m.mu.Lock()
	d, replace := m.deps[id]
	if !replace {
		if len(m.deps) >= m.cfg.MaxDeployments {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: limit %d", ErrTooManyDeployments, m.cfg.MaxDeployments)
		}
		d = &deployment{id: id, watched: map[*Subscription]struct{}{}}
		m.deps[id] = d
	}
	m.mu.Unlock()
	m.Start()

	d.solveMu.Lock()
	defer d.solveMu.Unlock()

	sctx, cancel := context.WithTimeout(ctx, m.cfg.SolveTimeout)
	defer cancel()
	key := batch.Key(steady.Fingerprint(p), solver.Name())
	res, hit, err := m.solve(sctx, key, solver, p)
	if err != nil {
		m.metrics.incResolveErr()
		m.mu.Lock()
		// A failed create must not leave a half-born deployment; a
		// failed replace keeps the old one running.
		if cur, ok := m.deps[id]; ok && cur == d && d.epochLocked() == nil {
			delete(m.deps, id)
		}
		m.mu.Unlock()
		return nil, err
	}

	reason := "create"
	if replace && d.epochLocked() != nil {
		reason = "replace"
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	d.spec = spec
	d.solver = solver
	d.base = p
	d.wEst = make([]*forecast.Adaptive, p.NumNodes())
	d.cEst = make([]*forecast.Adaptive, p.NumEdges())
	d.wObs = make([]int64, p.NumNodes())
	d.cObs = make([]int64, p.NumEdges())
	for i := range d.wEst {
		if !p.Weight(i).Inf {
			d.wEst[i] = forecast.NewAdaptive()
		}
	}
	for e := range d.cEst {
		d.cEst[e] = forecast.NewAdaptive()
	}
	// Observations counts the current model's series, which a replace
	// just emptied.
	d.observations = 0
	d.publishLocked(m, res, p, hit, reason, 0, time.Now())
	return d.snapshotLocked(), nil
}

// epochLocked reads the current epoch under d.mu (helper for callers
// holding only solveMu).
func (d *deployment) epochLocked() *Epoch {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Remove drops a deployment and evicts its subscribers.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	d, ok := m.deps[id]
	if ok {
		delete(m.deps, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDeployment, id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for sub := range d.watched {
		delete(d.watched, sub)
		close(sub.ch)
	}
	return nil
}

func (m *Manager) lookup(id string) (*deployment, error) {
	m.mu.RLock()
	d, ok := m.deps[id]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDeployment, id)
	}
	return d, nil
}

// Get returns the deployment's current snapshot.
func (m *Manager) Get(id string) (*Snapshot, error) {
	d, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.epoch == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDeployment, id)
	}
	return d.snapshotLocked(), nil
}

// Observe ingests one telemetry batch. The whole batch is validated
// first — every observation must name an existing node (with finite
// compute capacity) or edge and carry a finite, strictly positive
// value — and a batch with any invalid observation is rejected whole:
// no forecaster sees a partial batch. The returned error joins every
// problem found and matches both ErrBadObservation and
// forecast.ErrBadMeasurement with errors.Is.
func (m *Manager) Observe(id string, batch []Observation) (int, error) {
	d, err := m.lookup(id)
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.epoch == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownDeployment, id)
	}
	if len(batch) == 0 {
		return 0, fmt.Errorf("%w: empty batch", ErrBadObservation)
	}
	type target struct{ node, edge int }
	targets := make([]target, len(batch))
	var errs []error
	for i, o := range batch {
		bad := func(format string, args ...any) {
			errs = append(errs, fmt.Errorf("observation %d: %w: %s", i, ErrBadObservation, fmt.Sprintf(format, args...)))
		}
		switch {
		case o.Node != "" && (o.From != "" || o.To != ""):
			bad("names both a node (%q) and an edge", o.Node)
		case o.Node != "":
			n := d.base.NodeByName(o.Node)
			switch {
			case n < 0:
				bad("unknown node %q", o.Node)
			case d.base.Weight(n).Inf:
				bad("node %q is forwarder-only (w = inf) and has no compute cost", o.Node)
			default:
				targets[i] = target{node: n, edge: -1}
			}
		case o.From != "" && o.To != "":
			from, to := d.base.NodeByName(o.From), d.base.NodeByName(o.To)
			if from < 0 || to < 0 {
				bad("unknown edge %s>%s", o.From, o.To)
				continue
			}
			e := d.base.FindEdge(from, to)
			if e < 0 {
				bad("no edge %s>%s in the platform", o.From, o.To)
				continue
			}
			targets[i] = target{node: -1, edge: e}
		default:
			bad("names neither a node nor an edge (set node, or from and to)")
		}
		if err := forecast.CheckMeasurement(o.Value); err != nil {
			errs = append(errs, fmt.Errorf("observation %d: %w", i, err))
		}
	}
	if len(errs) > 0 {
		m.metrics.incRejected(len(batch))
		return 0, errors.Join(errs...)
	}
	for i, t := range targets {
		if t.edge >= 0 {
			d.cEst[t.edge].Update(batch[i].Value)
			d.cObs[t.edge]++
		} else {
			d.wEst[t.node].Update(batch[i].Value)
			d.wObs[t.node]++
		}
	}
	d.observations += int64(len(batch))
	m.metrics.incObservations(len(batch))
	return len(batch), nil
}

// Tick runs one epoch of the control loop at the given instant: every
// deployment's drift is evaluated, and those beyond the threshold —
// subject to MinResolveInterval and the per-tick ResolveBudget — are
// re-solved on their re-estimated rational platform, warm-started
// from their previous basis, and their new epoch published. It
// returns the number of epochs published. The background loop calls
// Tick once per Config.Epoch; tests drive it directly with a
// synthetic clock.
func (m *Manager) Tick(ctx context.Context, now time.Time) int {
	m.metrics.incTick()
	m.mu.RLock()
	deps := make([]*deployment, 0, len(m.deps))
	for _, d := range m.deps {
		deps = append(deps, d)
	}
	m.mu.RUnlock()
	// Deterministic order: budget exhaustion hits the
	// lexicographically last deployments, not random ones.
	sort.Slice(deps, func(i, j int) bool { return deps[i].id < deps[j].id })

	budget := m.cfg.ResolveBudget
	published := 0
	for _, d := range deps {
		if ctx.Err() != nil {
			break
		}
		d.mu.Lock()
		if d.epoch == nil {
			d.mu.Unlock()
			continue
		}
		drift := d.driftLocked()
		if drift <= m.cfg.DriftThreshold {
			d.mu.Unlock()
			continue
		}
		d.driftEvents++
		m.metrics.incDrift()
		if now.Sub(d.lastResolve) < m.cfg.MinResolveInterval {
			m.metrics.incSuppressed("min_interval")
			d.mu.Unlock()
			continue
		}
		if budget <= 0 {
			m.metrics.incSuppressed("budget")
			d.mu.Unlock()
			continue
		}
		d.mu.Unlock()

		// Estimate and publish under solveMu, so a concurrent Create
		// (replace) cannot swap the platform in between: Create mutates
		// base and the series only while holding solveMu, so everything
		// read under d.mu from here on belongs to one platform
		// generation. The trigger conditions are re-checked first — the
		// drift measured above may describe a platform that a replace
		// just retired (whose fresh series report no drift at all).
		d.solveMu.Lock()
		d.mu.Lock()
		drift = d.driftLocked()
		if d.epoch == nil || drift <= m.cfg.DriftThreshold ||
			now.Sub(d.lastResolve) < m.cfg.MinResolveInterval {
			d.mu.Unlock()
			d.solveMu.Unlock()
			continue
		}
		est := d.estimateLocked(m.cfg.MaxDen)
		solver, basis := d.solver, d.basis
		d.mu.Unlock()
		budget--

		sctx, cancel := context.WithTimeout(ctx, m.cfg.SolveTimeout)
		key := batch.Key(steady.Fingerprint(est), solver.Name())
		var extra []steady.SolveOption
		if basis != nil {
			// Appended after the SolveFunc's own options, so the
			// deployment's epoch-to-epoch basis wins over any cached
			// one: the previous epoch is the best warm start there is.
			extra = append(extra, steady.WarmStart(basis))
		}
		res, hit, err := m.solve(sctx, key, solver, est, extra...)
		cancel()
		if err != nil {
			m.metrics.incResolveErr()
			d.solveMu.Unlock()
			continue
		}
		d.mu.Lock()
		d.publishLocked(m, res, est, hit, "drift", drift, now)
		d.mu.Unlock()
		d.solveMu.Unlock()
		published++
	}
	return published
}

// driftLocked returns the largest relative change between a series'
// forecast and the value the current schedule was solved on, over
// every series with at least one accepted observation. Forecasts the
// shared guard rejects (possible over valid observations, e.g. a
// smoothed series decaying to a denormal) are skipped: they can never
// enter a platform model, so they must not trigger solves either.
func (d *deployment) driftLocked() float64 {
	max := 0.0
	for i, est := range d.wEst {
		if est == nil || d.wObs[i] == 0 {
			continue
		}
		if f := est.Predict(); forecast.CheckMeasurement(f) == nil {
			if rel := math.Abs(f-d.curW[i]) / d.curW[i]; rel > max {
				max = rel
			}
		}
	}
	for e, est := range d.cEst {
		if d.cObs[e] == 0 {
			continue
		}
		if f := est.Predict(); forecast.CheckMeasurement(f) == nil {
			if rel := math.Abs(f-d.curC[e]) / d.curC[e]; rel > max {
				max = rel
			}
		}
	}
	return max
}

// estimateLocked rebuilds the rational platform model from the
// forecasts: same topology as the nominal platform, node and edge
// costs replaced by continued-fraction approximations (denominators
// bounded by maxDen) wherever a valid forecast exists, nominal values
// elsewhere.
func (d *deployment) estimateLocked(maxDen int64) *platform.Platform {
	q := platform.New()
	for i := 0; i < d.base.NumNodes(); i++ {
		w := d.base.Weight(i)
		if est := d.wEst[i]; est != nil && d.wObs[i] > 0 {
			if f := est.Predict(); forecast.CheckMeasurement(f) == nil {
				w = platform.W(rat.ApproxFloat(f, maxDen))
			}
		}
		q.AddNode(d.base.Name(i), w)
	}
	for e, ed := range d.base.Edges() {
		c := ed.C
		if d.cObs[e] > 0 {
			if f := d.cEst[e].Predict(); forecast.CheckMeasurement(f) == nil {
				c = rat.ApproxFloat(f, maxDen)
			}
		}
		q.AddEdge(ed.From, ed.To, c)
	}
	return q
}

// publishLocked installs a solved result as the deployment's next
// epoch: it computes the delta against the previous version, updates
// the model floats the drift detector compares against, stores the
// terminal basis for the next warm start, appends to the replay
// history, and fans the epoch out to every subscriber (evicting the
// ones whose buffers are full). Called under d.mu.
func (d *deployment) publishLocked(m *Manager, res *steady.Result, est *platform.Platform, hit bool, reason string, drift float64, now time.Time) {
	var version uint64 = 1
	if d.epoch != nil {
		version = d.epoch.Version + 1
	}
	ep := &Epoch{
		Deployment:  d.id,
		Version:     version,
		Solver:      res.Solver,
		Fingerprint: res.Fingerprint,
		Throughput:  res.Throughput.String(),
		Value:       res.ThroughputFloat(),
		Pivots:      res.Pivots,
		WarmStarted: res.WarmStarted,
		CacheHit:    hit,
		Reason:      reason,
		MaxDrift:    drift,
	}
	for _, n := range res.Nodes {
		nr := NodeRate{Name: n.Name, Alpha: n.Alpha.String()}
		if !n.Rate.IsZero() {
			nr.Rate = n.Rate.String()
		}
		ep.Nodes = append(ep.Nodes, nr)
	}
	for _, l := range res.Links {
		ep.Links = append(ep.Links, LinkRate{From: l.From, To: l.To, Busy: l.Busy.String()})
	}
	if prev := d.epoch; prev != nil {
		ep.Delta = computeDelta(prev, ep)
		if ep.Delta != nil {
			m.metrics.incDeltaChanges(len(ep.Delta.Nodes) + len(ep.Delta.Links))
		} else {
			// The topology changed (a replace with an incompatible
			// platform): no delta is possible, so mark the epoch Resync
			// — delta-tracking subscribers must discard incremental
			// state and take this schedule whole.
			ep.Resync = true
		}
	}

	d.epoch = ep
	d.history = append(d.history, ep)
	if over := len(d.history) - m.cfg.History; over > 0 {
		d.history = append(d.history[:0], d.history[over:]...)
	}
	d.basis = res.Basis()
	d.lastResolve = now
	d.resolves++
	if res.WarmStarted {
		d.warmResolves++
	}
	d.cur = est
	d.curW = make([]float64, est.NumNodes())
	for i := range d.curW {
		if w := est.Weight(i); !w.Inf {
			d.curW[i] = w.Val.Float64()
		}
	}
	d.curC = make([]float64, est.NumEdges())
	for e, ed := range est.Edges() {
		d.curC[e] = ed.C.Float64()
	}
	m.metrics.noteResolve(reason, res)

	for sub := range d.watched {
		select {
		case sub.ch <- ep:
		default:
			// The subscriber's buffer is full: it is WatchBuffer
			// epochs behind a loop that must not block. Evict it;
			// the closed channel tells its reader to resubscribe
			// (Last-Event-ID resume replays what it missed).
			delete(d.watched, sub)
			close(sub.ch)
			m.metrics.incEviction()
		}
	}
}

// computeDelta lists the node and link rates that changed between two
// epochs of the same deployment. It returns nil when the topologies
// differ (a replace with a new platform): there is no meaningful
// diff, subscribers must take the epoch whole.
func computeDelta(prev, next *Epoch) *Delta {
	if len(prev.Nodes) != len(next.Nodes) || len(prev.Links) != len(next.Links) {
		return nil
	}
	delta := &Delta{FromVersion: prev.Version, ThroughputChanged: prev.Throughput != next.Throughput}
	for i, n := range next.Nodes {
		if prev.Nodes[i].Name != n.Name {
			return nil
		}
		if prev.Nodes[i] != n {
			delta.Nodes = append(delta.Nodes, n)
		}
	}
	for i, l := range next.Links {
		if prev.Links[i].From != l.From || prev.Links[i].To != l.To {
			return nil
		}
		if prev.Links[i] != l {
			delta.Links = append(delta.Links, l)
		}
	}
	return delta
}

// snapshotLocked renders the deployment's observable state under d.mu.
func (d *deployment) snapshotLocked() *Snapshot {
	s := &Snapshot{
		ID:           d.id,
		Problem:      d.spec.Problem,
		Solver:       d.solver.Name(),
		Model:        d.spec.Model.String(),
		Epoch:        d.epoch,
		Watchers:     len(d.watched),
		Resolves:     d.resolves,
		WarmResolves: d.warmResolves,
		DriftEvents:  d.driftEvents,
		Observations: d.observations,
	}
	for i := 0; i < d.base.NumNodes(); i++ {
		mn := ModelNode{
			Name:    d.base.Name(i),
			Nominal: d.base.Weight(i).String(),
			Current: d.cur.Weight(i).String(),
		}
		if !d.base.Weight(i).Inf && d.wObs[i] > 0 {
			mn.Forecast = d.wEst[i].Predict()
			mn.Predictor = d.wEst[i].BestName()
			mn.Observations = d.wObs[i]
		}
		s.Nodes = append(s.Nodes, mn)
	}
	for e, ed := range d.base.Edges() {
		ml := ModelLink{
			From:    d.base.Name(ed.From),
			To:      d.base.Name(ed.To),
			Nominal: ed.C.String(),
			Current: d.cur.Edge(e).C.String(),
		}
		if d.cObs[e] > 0 {
			ml.Forecast = d.cEst[e].Predict()
			ml.Predictor = d.cEst[e].BestName()
			ml.Observations = d.cObs[e]
		}
		s.Links = append(s.Links, ml)
	}
	return s
}
