package forecast

import (
	"math"
	"math/rand"
	"testing"
)

func TestLastValue(t *testing.T) {
	p := &LastValue{}
	p.Update(3)
	p.Update(7)
	if p.Predict() != 7 {
		t.Fatalf("predict = %v", p.Predict())
	}
}

func TestRunningMean(t *testing.T) {
	p := &RunningMean{}
	if p.Predict() != 0 {
		t.Fatal("empty mean not 0")
	}
	for _, v := range []float64{2, 4, 6} {
		p.Update(v)
	}
	if p.Predict() != 4 {
		t.Fatalf("mean = %v", p.Predict())
	}
}

func TestWindowMean(t *testing.T) {
	p := NewWindowMean(2)
	if p.Predict() != 0 {
		t.Fatal("empty window not 0")
	}
	for _, v := range []float64{10, 2, 4} {
		p.Update(v)
	}
	if p.Predict() != 3 {
		t.Fatalf("window mean = %v, want 3 (last two)", p.Predict())
	}
}

func TestWindowMedian(t *testing.T) {
	p := NewWindowMedian(3)
	for _, v := range []float64{1, 100, 2} {
		p.Update(v)
	}
	if p.Predict() != 2 {
		t.Fatalf("median = %v, want 2", p.Predict())
	}
	p.Update(3) // window now {100, 2, 3}
	if p.Predict() != 3 {
		t.Fatalf("median = %v, want 3", p.Predict())
	}
	q := NewWindowMedian(2)
	q.Update(1)
	q.Update(5)
	if q.Predict() != 3 {
		t.Fatalf("even median = %v, want 3", q.Predict())
	}
}

func TestExpSmoothing(t *testing.T) {
	p := NewExpSmoothing(0.5)
	p.Update(4)
	if p.Predict() != 4 {
		t.Fatal("first value must initialize")
	}
	p.Update(8)
	if p.Predict() != 6 {
		t.Fatalf("smoothed = %v, want 6", p.Predict())
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewWindowMean(0) },
		func() { NewWindowMedian(0) },
		func() { NewExpSmoothing(0) },
		func() { NewExpSmoothing(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAdaptivePicksLastOnTrend(t *testing.T) {
	// On a steadily increasing series, last-value beats the running
	// mean; the adaptive predictor must converge to it.
	a := NewAdaptive()
	for i := 0; i < 200; i++ {
		a.Update(float64(i))
	}
	if a.BestName() != "last" {
		t.Fatalf("best = %q, want last", a.BestName())
	}
	if a.Predict() != 199 {
		t.Fatalf("predict = %v", a.Predict())
	}
}

func TestAdaptivePicksRobustOnSpikes(t *testing.T) {
	// Stable value with occasional huge spikes: medians win over
	// last-value.
	a := NewAdaptive()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		v := 10.0
		if rng.Intn(10) == 0 {
			v = 1000
		}
		a.Update(v)
	}
	name := a.BestName()
	if name == "last" {
		t.Fatalf("adaptive picked %q on a spiky series", name)
	}
}

func TestAdaptiveBeatsWorstPredictor(t *testing.T) {
	// The adaptive mixture's RMSE is close to the best individual's
	// on several regimes.
	regimes := []func(i int, rng *rand.Rand) float64{
		func(i int, rng *rand.Rand) float64 { return 5 },                                      // constant
		func(i int, rng *rand.Rand) float64 { return float64(i) * 0.1 },                       // trend
		func(i int, rng *rand.Rand) float64 { return 5 + rng.NormFloat64() },                  // noise
		func(i int, rng *rand.Rand) float64 { return 5 + 3*math.Sin(float64(i)/7) },           // periodic
		func(i int, rng *rand.Rand) float64 { return 5 + float64(rng.Intn(2))*rng.Float64() }, // bursty
	}
	for ri, gen := range regimes {
		rng := rand.New(rand.NewSource(int64(ri + 1)))
		series := make([]float64, 300)
		for i := range series {
			series[i] = gen(i, rng)
		}
		adaptive := RMSE(NewAdaptive(), series)
		best := math.Inf(1)
		for _, p := range []Predictor{
			&LastValue{}, &RunningMean{}, NewWindowMean(5), NewWindowMean(20),
			NewWindowMedian(5), NewWindowMedian(20), NewExpSmoothing(0.2), NewExpSmoothing(0.5),
		} {
			if e := RMSE(p, series); e < best {
				best = e
			}
		}
		if adaptive > best*1.5+1e-9 {
			t.Fatalf("regime %d: adaptive RMSE %v far above best individual %v", ri, adaptive, best)
		}
	}
}

func TestRMSEShortSeries(t *testing.T) {
	if RMSE(&LastValue{}, []float64{1}) != 0 {
		t.Fatal("short series RMSE must be 0")
	}
	// Perfect prediction on a constant series (after the first).
	if RMSE(&LastValue{}, []float64{4, 4, 4, 4}) != 0 {
		t.Fatal("constant series should have zero error for last-value")
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Predictor{
		&LastValue{}, &RunningMean{}, NewWindowMean(3), NewWindowMedian(3),
		NewExpSmoothing(0.3), NewAdaptive(),
	} {
		if p.Name() == "" {
			t.Fatal("empty name")
		}
	}
}
