// Package forecast is the reproduction's stand-in for the Network
// Weather Service [18] used by §5.5's dynamic scheduling: a family of
// time-series predictors plus NWS's key idea — run all predictors in
// parallel on each series, track their errors, and forecast with
// whichever has been most accurate so far ("use the past to predict
// the future").
//
// The package is public because the online control plane
// (pkg/steady/control) feeds live platform telemetry through these
// predictors; internal/adaptive uses the same battery inside the §5.5
// simulation. Predictors are deterministic: the same observation
// sequence always yields the same chosen sub-predictor and the same
// forecast. They are NOT safe for concurrent use — callers serialize
// access per series (the control plane holds one battery per node and
// per edge under its deployment lock).
//
// CheckMeasurement is the shared ingestion guard: every float
// measurement that will be converted to an exact rational platform
// value must be finite and strictly positive, otherwise downstream
// continued-fraction conversion would build an invalid platform.
package forecast

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadMeasurement reports a telemetry value that must not enter a
// forecaster or a rational platform model: NaN, ±Inf, zero or
// negative. Match with errors.Is.
var ErrBadMeasurement = errors.New("forecast: bad measurement")

// CheckMeasurement validates one observed platform cost (seconds per
// task for a node, seconds per unit-size transfer for an edge): it
// must be a finite float strictly greater than zero. Everything that
// ingests float measurements into the exact rational model —
// internal/adaptive's epoch observations and the control plane's
// /v1/deployments telemetry — shares this guard, so an invalid
// measurement is rejected at the boundary instead of surfacing later
// as an invalid platform.
func CheckMeasurement(v float64) error {
	if math.IsNaN(v) {
		return fmt.Errorf("%w: NaN", ErrBadMeasurement)
	}
	if math.IsInf(v, 0) {
		return fmt.Errorf("%w: %v", ErrBadMeasurement, v)
	}
	if v <= 0 {
		return fmt.Errorf("%w: non-positive value %v", ErrBadMeasurement, v)
	}
	return nil
}

// Predictor forecasts the next value of a series from its history.
type Predictor interface {
	// Update feeds one observation.
	Update(v float64)
	// Predict returns the forecast for the next observation.
	Predict() float64
	// Name labels the predictor.
	Name() string
	// Reset discards all history, returning the predictor to its
	// initial state (the control plane resets a series when its
	// deployment is replaced).
	Reset()
}

// LastValue predicts the most recent observation.
type LastValue struct{ last float64 }

// Update implements Predictor.
func (p *LastValue) Update(v float64) { p.last = v }

// Predict implements Predictor.
func (p *LastValue) Predict() float64 { return p.last }

// Name implements Predictor.
func (p *LastValue) Name() string { return "last" }

// Reset implements Predictor.
func (p *LastValue) Reset() { p.last = 0 }

// RunningMean predicts the mean of all observations.
type RunningMean struct {
	sum float64
	n   int
}

// Update implements Predictor.
func (p *RunningMean) Update(v float64) { p.sum += v; p.n++ }

// Reset implements Predictor.
func (p *RunningMean) Reset() { p.sum, p.n = 0, 0 }

// Predict implements Predictor.
func (p *RunningMean) Predict() float64 {
	if p.n == 0 {
		return 0
	}
	return p.sum / float64(p.n)
}

// Name implements Predictor.
func (p *RunningMean) Name() string { return "mean" }

// WindowMean predicts the mean of the last K observations.
type WindowMean struct {
	k   int
	buf []float64
}

// NewWindowMean returns a sliding-window mean of width k.
func NewWindowMean(k int) *WindowMean {
	if k < 1 {
		panic("forecast: window must be >= 1")
	}
	return &WindowMean{k: k}
}

// Update implements Predictor.
func (p *WindowMean) Update(v float64) {
	p.buf = append(p.buf, v)
	if len(p.buf) > p.k {
		p.buf = p.buf[1:]
	}
}

// Predict implements Predictor.
func (p *WindowMean) Predict() float64 {
	if len(p.buf) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range p.buf {
		s += v
	}
	return s / float64(len(p.buf))
}

// Name implements Predictor.
func (p *WindowMean) Name() string { return fmt.Sprintf("window-mean(%d)", p.k) }

// Reset implements Predictor.
func (p *WindowMean) Reset() { p.buf = p.buf[:0] }

// WindowMedian predicts the median of the last K observations,
// robust to the load spikes of shared platforms.
type WindowMedian struct {
	k   int
	buf []float64
}

// NewWindowMedian returns a sliding-window median of width k.
func NewWindowMedian(k int) *WindowMedian {
	if k < 1 {
		panic("forecast: window must be >= 1")
	}
	return &WindowMedian{k: k}
}

// Update implements Predictor.
func (p *WindowMedian) Update(v float64) {
	p.buf = append(p.buf, v)
	if len(p.buf) > p.k {
		p.buf = p.buf[1:]
	}
}

// Predict implements Predictor.
func (p *WindowMedian) Predict() float64 {
	if len(p.buf) == 0 {
		return 0
	}
	s := append([]float64(nil), p.buf...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Name implements Predictor.
func (p *WindowMedian) Name() string { return fmt.Sprintf("window-median(%d)", p.k) }

// Reset implements Predictor.
func (p *WindowMedian) Reset() { p.buf = p.buf[:0] }

// ExpSmoothing predicts with exponential smoothing of parameter
// alpha in (0, 1].
type ExpSmoothing struct {
	alpha float64
	val   float64
	init  bool
}

// NewExpSmoothing returns an exponential smoother.
func NewExpSmoothing(alpha float64) *ExpSmoothing {
	if alpha <= 0 || alpha > 1 {
		panic("forecast: alpha must be in (0,1]")
	}
	return &ExpSmoothing{alpha: alpha}
}

// Update implements Predictor.
func (p *ExpSmoothing) Update(v float64) {
	if !p.init {
		p.val, p.init = v, true
		return
	}
	p.val = p.alpha*v + (1-p.alpha)*p.val
}

// Predict implements Predictor.
func (p *ExpSmoothing) Predict() float64 { return p.val }

// Name implements Predictor.
func (p *ExpSmoothing) Name() string { return fmt.Sprintf("exp(%.2f)", p.alpha) }

// Reset implements Predictor.
func (p *ExpSmoothing) Reset() { p.val, p.init = 0, false }

// Adaptive is the NWS mixture: it runs a battery of predictors and
// forecasts with the one whose mean squared error has been lowest.
type Adaptive struct {
	preds []Predictor
	sqerr []float64
	n     int
}

// NewAdaptive returns the standard battery (last value, running mean,
// window means/medians, exponential smoothings).
func NewAdaptive() *Adaptive {
	preds := []Predictor{
		&LastValue{},
		&RunningMean{},
		NewWindowMean(5),
		NewWindowMean(20),
		NewWindowMedian(5),
		NewWindowMedian(20),
		NewExpSmoothing(0.2),
		NewExpSmoothing(0.5),
	}
	return &Adaptive{preds: preds, sqerr: make([]float64, len(preds))}
}

// Update implements Predictor: it first scores every sub-predictor
// against the new observation, then feeds it to all of them.
func (a *Adaptive) Update(v float64) {
	if a.n > 0 {
		for i, p := range a.preds {
			d := p.Predict() - v
			a.sqerr[i] += d * d
		}
	}
	for _, p := range a.preds {
		p.Update(v)
	}
	a.n++
}

// Predict implements Predictor.
func (a *Adaptive) Predict() float64 {
	return a.preds[a.Best()].Predict()
}

// Best returns the index of the predictor with the lowest accumulated
// squared error.
func (a *Adaptive) Best() int {
	best := 0
	for i := 1; i < len(a.preds); i++ {
		if a.sqerr[i] < a.sqerr[best] {
			best = i
		}
	}
	return best
}

// BestName returns the current best sub-predictor's name.
func (a *Adaptive) BestName() string { return a.preds[a.Best()].Name() }

// Name implements Predictor.
func (a *Adaptive) Name() string { return "adaptive" }

// Reset implements Predictor: it resets every sub-predictor and zeroes
// the error trackers, so the battery behaves exactly like a fresh
// NewAdaptive.
func (a *Adaptive) Reset() {
	for i, p := range a.preds {
		p.Reset()
		a.sqerr[i] = 0
	}
	a.n = 0
}

// RMSE evaluates a predictor on a series: at each step it predicts,
// observes, and accumulates the squared error (the first prediction,
// made with no history, is skipped).
func RMSE(p Predictor, series []float64) float64 {
	if len(series) < 2 {
		return 0
	}
	sum := 0.0
	for i, v := range series {
		if i > 0 {
			d := p.Predict() - v
			sum += d * d
		}
		p.Update(v)
	}
	return math.Sqrt(sum / float64(len(series)-1))
}
