package forecast

import (
	"math"
	"math/rand"
	"testing"
)

// --- predictor-selection edge cases ----------------------------------

func TestAdaptiveEmptyHistory(t *testing.T) {
	a := NewAdaptive()
	if got := a.Predict(); got != 0 {
		t.Fatalf("empty-history forecast = %v, want 0", got)
	}
	// No errors have been scored, so selection must fall back to the
	// first predictor in the battery.
	if got := a.Best(); got != 0 {
		t.Fatalf("empty-history Best() = %d, want 0", got)
	}
	if got := a.BestName(); got != "last" {
		t.Fatalf("empty-history BestName() = %q, want \"last\"", got)
	}
}

func TestAdaptiveSingleSample(t *testing.T) {
	a := NewAdaptive()
	a.Update(3.5)
	// One sample: every sub-predictor agrees, no error has been scored
	// (the first prediction is made with no history), and the forecast
	// is the sample itself.
	if got := a.Predict(); got != 3.5 {
		t.Fatalf("single-sample forecast = %v, want 3.5", got)
	}
	if got := a.Best(); got != 0 {
		t.Fatalf("single-sample Best() = %d, want 0 (no errors scored yet)", got)
	}
}

func TestAdaptiveTieBreaking(t *testing.T) {
	// A constant series keeps every sub-predictor exactly right, so all
	// accumulated errors stay 0. Selection must break the tie toward
	// the lowest index, deterministically.
	a := NewAdaptive()
	for i := 0; i < 50; i++ {
		a.Update(2)
	}
	if got := a.Best(); got != 0 {
		t.Fatalf("all-tied Best() = %d, want 0 (lowest index wins ties)", got)
	}
	if got := a.BestName(); got != "last" {
		t.Fatalf("all-tied BestName() = %q, want \"last\"", got)
	}
	if got := a.Predict(); got != 2 {
		t.Fatalf("constant-series forecast = %v, want 2", got)
	}
}

func TestAdaptiveReset(t *testing.T) {
	// Drive the battery onto a non-default best predictor with a spiky
	// series (the medians win), then Reset and check the tracker state
	// is indistinguishable from a fresh battery.
	spiky := func(a *Adaptive) {
		for i := 0; i < 60; i++ {
			v := 1.0
			if i%5 == 4 {
				v = 40
			}
			a.Update(v)
		}
	}
	a := NewAdaptive()
	spiky(a)
	if a.Best() == 0 {
		t.Fatal("spiky series did not move Best() off the default; test fixture is too weak")
	}
	a.Reset()
	if got := a.Predict(); got != 0 {
		t.Fatalf("post-Reset forecast = %v, want 0", got)
	}
	if got := a.Best(); got != 0 {
		t.Fatalf("post-Reset Best() = %d, want 0", got)
	}

	// After Reset the battery must replay a series exactly like a fresh
	// instance: same selections, same forecasts.
	fresh := NewAdaptive()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		v := 1 + rng.Float64()
		a.Update(v)
		fresh.Update(v)
		if a.Best() != fresh.Best() || a.Predict() != fresh.Predict() {
			t.Fatalf("step %d: reset battery diverged from fresh (best %d vs %d, predict %v vs %v)",
				i, a.Best(), fresh.Best(), a.Predict(), fresh.Predict())
		}
	}
}

// TestAdaptiveDeterminism is the determinism property the control
// plane's epochs rely on: feeding the same series into two fresh
// batteries yields the same chosen predictor and the same forecast at
// every step, for a spread of series shapes.
func TestAdaptiveDeterminism(t *testing.T) {
	shapes := map[string]func(rng *rand.Rand, i int) float64{
		"noise":    func(rng *rand.Rand, i int) float64 { return 1 + rng.Float64() },
		"trend":    func(rng *rand.Rand, i int) float64 { return float64(i) + rng.Float64()/10 },
		"spikes":   func(rng *rand.Rand, i int) float64 { return 1 + 50*float64(i%7/6) + rng.Float64() },
		"seasonal": func(rng *rand.Rand, i int) float64 { return 2 + math.Sin(float64(i)/5) + rng.Float64()/4 },
	}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				series := make([]float64, 300)
				rng := rand.New(rand.NewSource(seed))
				for i := range series {
					series[i] = gen(rng, i)
				}
				a, b := NewAdaptive(), NewAdaptive()
				for i, v := range series {
					a.Update(v)
					b.Update(v)
					if a.BestName() != b.BestName() {
						t.Fatalf("seed %d step %d: chosen predictor diverged: %q vs %q",
							seed, i, a.BestName(), b.BestName())
					}
					if a.Predict() != b.Predict() {
						t.Fatalf("seed %d step %d: forecast diverged: %v vs %v",
							seed, i, a.Predict(), b.Predict())
					}
				}
			}
		})
	}
}

// --- the shared measurement guard ------------------------------------

func TestCheckMeasurement(t *testing.T) {
	bad := map[string]float64{
		"NaN":      math.NaN(),
		"+Inf":     math.Inf(1),
		"-Inf":     math.Inf(-1),
		"zero":     0,
		"negative": -1.5,
	}
	for name, v := range bad {
		if err := CheckMeasurement(v); err == nil {
			t.Errorf("CheckMeasurement(%s) accepted %v", name, v)
		}
	}
	good := []float64{1e-300, 0.5, 1, 1e12}
	for _, v := range good {
		if err := CheckMeasurement(v); err != nil {
			t.Errorf("CheckMeasurement(%v) rejected a valid measurement: %v", v, err)
		}
	}
}
