package steady

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// Replay is a problem-independent description of one period of a
// reconstructed steady-state schedule, the input format of the public
// simulation engine (pkg/steady/sim). Every registered problem maps
// onto the same three ingredients:
//
//   - a Period T (integer, the lcm of the solution's denominators);
//   - a set of Commodities, each with integral per-edge transfer
//     counts per period and either consumption (master-slave tasks)
//     or delivery (scatter messages, multicast instances) semantics;
//   - the schedule's own steady-state rate (ScheduleThroughput) and
//     the certified objective of the originating Result (Certified),
//     which coincide except for derived companion schedules.
//
// The engine replays the commodities store-and-forward at period
// granularity — a node can only forward or consume what it received
// in earlier periods — exactly the §4.2 construction whose transient
// is bounded by the platform depth.
type Replay struct {
	// Platform is the graph the replay runs on. For reduce it is the
	// reversed platform (reduce = broadcast on Reverse(G), §4.2).
	Platform *platform.Platform
	// Period is the integer period T.
	Period *big.Int
	// Certified is the originating Result's objective: the value the
	// simulated throughput is measured against.
	Certified rat.Rat
	// ScheduleThroughput is the replayed schedule's own steady-state
	// rate. It equals Certified except when the schedule is a derived
	// companion (Derived != ""), where it may sit strictly below a
	// bound-semantics objective (the §4.3 multicast gap).
	ScheduleThroughput rat.Rat
	// OpsPerPeriod is the schedule's total completed operations per
	// steady-state period (tasks for masterslave; per-target message
	// batches for the distribution problems).
	OpsPerPeriod *big.Int
	// Commodities are the independent flows/disseminations replayed.
	Commodities []ReplayCommodity
	// Derived names the companion schedule used when the problem
	// itself has bound semantics and no schedule: "multicast-trees"
	// for multicast/broadcast/reduce. Empty otherwise.
	Derived string
}

// ReplayCommodity is one independently-conserved flow (master-slave
// tasks, one scatter target type) or one replicated dissemination
// (one multicast tree) of a Replay.
type ReplayCommodity struct {
	// Name labels the commodity in reports ("tasks", "msg[P4]",
	// "tree#2").
	Name string
	// Source is the node index holding an unbounded supply.
	Source int
	// Replicated marks dissemination semantics: sending does not
	// debit the sender (data is copied), and availability is bounded
	// by cumulative receptions. Flow commodities debit a buffer.
	Replicated bool
	// EdgeCount[e] is the integral number of units crossing platform
	// edge e each period (nil entries are treated as zero).
	EdgeCount []*big.Int
	// Consume[i] is the integral number of units node i consumes each
	// period (master-slave compute); nil for delivery semantics.
	Consume []*big.Int
	// Sinks are the delivery targets; the commodity's completed count
	// is the minimum over sinks of cumulative arrivals. Empty for
	// consumption semantics.
	Sinks []int
	// Quota is the certified per-period completion count of this
	// commodity in steady state.
	Quota *big.Int
}

// Replay turns the result into the problem-independent periodic
// replay description consumed by pkg/steady/sim. It is available for
// every registered problem under the base send-and-receive model:
//
//   - masterslave, scatter, multicast-sum, multicast-trees replay
//     their own reconstructed schedules (§4.1);
//   - multicast, broadcast and reduce have bound semantics and no
//     schedule of their own, so an exact tree packing (§4.3) is
//     solved as a companion: for broadcast and reduce the packing
//     meets the bound, for multicast it may sit strictly below it
//     (the Figure 2 gap), which the replay reports honestly.
//
// Send-or-receive results only admit the greedy evaluation (see
// EvaluateGreedy); Replay returns an error for them. The companion
// solve enumerates Steiner arborescences and is exponential in the
// worst case, so like Solve it is intended for small platforms.
func (r *Result) Replay() (*Replay, error) {
	if r.Model != SendAndReceive {
		return nil, fmt.Errorf("steady: no exact replay under the %s model; use EvaluateGreedy", r.Model)
	}
	switch sol := r.raw.(type) {
	case *core.MasterSlave:
		per, err := schedule.Reconstruct(sol)
		if err != nil {
			return nil, err
		}
		return replayFromPeriodic(r, per), nil
	case *core.TreePacking:
		mp, err := schedule.ReconstructTreePacking(sol)
		if err != nil {
			return nil, err
		}
		return replayFromMulticast(r, mp, "")
	case *core.Scatter:
		switch r.Problem {
		case "scatter", "multicast-sum":
			sp, err := schedule.ReconstructScatter(sol)
			if err != nil {
				return nil, err
			}
			return replayFromScatter(r, sp), nil
		case "multicast", "broadcast":
			return companionReplay(r, sol.P, sol.Source, sol.Targets)
		case "reduce":
			// The reduce bound was solved as broadcast on Reverse(G)
			// and presented on the original platform with the edge
			// activity transferring index-for-index; the companion
			// packing (and therefore the replay) runs on the reversed
			// platform, where the disseminations actually flow.
			return companionReplay(r, sol.P.Reverse(), sol.Source, sol.Targets)
		default:
			return nil, fmt.Errorf("steady: %s results are not replayable", r.Problem)
		}
	default:
		return nil, fmt.Errorf("steady: %s results are not replayable", r.Problem)
	}
}

// companionReplay solves the exact tree packing on the given platform
// and wraps it as a derived replay whose Certified value remains the
// originating bound.
func companionReplay(r *Result, p *platform.Platform, source int, targets []int) (*Replay, error) {
	pack, err := core.SolveTreePacking(p, source, targets)
	if err != nil {
		return nil, fmt.Errorf("steady: %s companion packing: %w", r.Problem, err)
	}
	mp, err := schedule.ReconstructTreePacking(pack)
	if err != nil {
		return nil, fmt.Errorf("steady: %s companion schedule: %w", r.Problem, err)
	}
	return replayFromMulticast(r, mp, "multicast-trees")
}

func replayFromPeriodic(r *Result, per *schedule.Periodic) *Replay {
	return &Replay{
		Platform:           per.P,
		Period:             per.Period,
		Certified:          r.Throughput,
		ScheduleThroughput: per.Throughput,
		OpsPerPeriod:       per.TasksPerPeriod,
		Commodities: []ReplayCommodity{{
			Name:      "tasks",
			Source:    per.Master,
			EdgeCount: decycle(per.P, per.EdgeTasks),
			Consume:   per.ComputeTasks,
			Quota:     per.TasksPerPeriod,
		}},
	}
}

// decycle returns a copy of the per-period edge counts with every
// directed cycle canceled (subtracting the cycle's minimum count
// around it). LP witnesses may sit on degenerate vertices carrying
// circulations; a circulation preserves conservation and net
// delivery, so removing it changes no certified quantity, but it
// would confuse a provenance-tracking replay — a cycle re-delivers
// the same units forever once primed. Cancellation preserves each
// node's divergence, so conservation and net deliveries survive.
func decycle(p *platform.Platform, counts []*big.Int) []*big.Int {
	out := make([]*big.Int, len(counts))
	for e, n := range counts {
		out[e] = new(big.Int)
		if n != nil {
			out[e].Set(n)
		}
	}
	for {
		cycle := findCycle(p, out)
		if cycle == nil {
			return out
		}
		min := new(big.Int).Set(out[cycle[0]])
		for _, e := range cycle[1:] {
			if out[e].Cmp(min) < 0 {
				min.Set(out[e])
			}
		}
		for _, e := range cycle {
			out[e].Sub(out[e], min)
		}
	}
}

// findCycle returns the edge indices of one directed cycle in the
// support of counts, or nil if the support is acyclic.
func findCycle(p *platform.Platform, counts []*big.Int) []int {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make([]int, p.NumNodes())
	parentEdge := make([]int, p.NumNodes())
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		for _, e := range p.OutEdges(u) {
			if counts[e].Sign() <= 0 {
				continue
			}
			v := p.Edge(e).To
			switch color[v] {
			case white:
				parentEdge[v] = e
				if dfs(v) {
					return true
				}
			case grey:
				// Found a cycle v -> ... -> u -> v; walk back.
				cycle = []int{e}
				for w := u; w != v; w = p.Edge(parentEdge[w]).From {
					cycle = append(cycle, parentEdge[w])
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < p.NumNodes(); u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

func replayFromScatter(r *Result, sp *schedule.ScatterPeriodic) *Replay {
	p := sp.P
	rp := &Replay{
		Platform:           p,
		Period:             sp.Period,
		Certified:          r.Throughput,
		ScheduleThroughput: sp.Throughput,
		OpsPerPeriod:       sp.OpsPerPeriod,
	}
	for k, tgt := range sp.Targets {
		edge := make([]*big.Int, p.NumEdges())
		for e := 0; e < p.NumEdges(); e++ {
			edge[e] = sp.Msgs[e][k]
		}
		rp.Commodities = append(rp.Commodities, ReplayCommodity{
			Name:      "msg[" + p.Name(tgt) + "]",
			Source:    sp.Source,
			EdgeCount: decycle(p, edge),
			Sinks:     []int{tgt},
			Quota:     sp.OpsPerPeriod,
		})
	}
	return rp
}

func replayFromMulticast(r *Result, mp *schedule.MulticastPeriodic, derived string) (*Replay, error) {
	p := mp.P
	rp := &Replay{
		Platform:           p,
		Period:             mp.Period,
		Certified:          r.Throughput,
		ScheduleThroughput: mp.Throughput,
		OpsPerPeriod:       mp.OpsPerPeriod,
		Derived:            derived,
	}
	for t, edges := range mp.Trees {
		if mp.Instances[t].Sign() == 0 {
			continue
		}
		edge := make([]*big.Int, p.NumEdges())
		for _, e := range edges {
			if edge[e] != nil {
				return nil, fmt.Errorf("steady: tree %d repeats edge %d", t, e)
			}
			edge[e] = mp.Instances[t]
		}
		rp.Commodities = append(rp.Commodities, ReplayCommodity{
			Name:       fmt.Sprintf("tree#%d", t),
			Source:     mp.Source,
			Replicated: true,
			EdgeCount:  edge,
			Sinks:      append([]int(nil), mp.Targets...),
			Quota:      mp.Instances[t],
		})
	}
	if len(rp.Commodities) == 0 {
		return nil, fmt.Errorf("steady: packing schedules no instances")
	}
	return rp, nil
}
