package obs

import (
	"sync"
	"time"
)

// spanRingCapacity is the number of recent spans retained per
// registry. Old spans are overwritten FIFO; the ring exists for
// post-hoc inspection (cmd/experiments -metrics-dump, debugging), not
// durable tracing.
const spanRingCapacity = 256

// SpanRecord is one completed lifecycle span.
type SpanRecord struct {
	Stage    string
	Start    time.Time
	Duration time.Duration
}

type spanRing struct {
	mu   sync.Mutex
	buf  [spanRingCapacity]SpanRecord
	next int
	n    int
}

func (sr *spanRing) push(rec SpanRecord) {
	sr.mu.Lock()
	sr.buf[sr.next] = rec
	sr.next = (sr.next + 1) % spanRingCapacity
	if sr.n < spanRingCapacity {
		sr.n++
	}
	sr.mu.Unlock()
}

// Span measures one stage of a solve (or any other) lifecycle. Obtain
// one with Registry.StartSpan and finish it with End; the elapsed wall
// time feeds the steady_stage_duration_seconds histogram for its stage
// and the registry's recent-span ring. The zero/nil Span is a valid
// no-op, so spans cost nothing when metrics are disabled.
type Span struct {
	reg   *Registry
	stage string
	start time.Time
}

// StartSpan begins a lifecycle span for the named stage. On a nil
// registry the returned span is inert (End is a no-op and reads no
// clock), preserving zero cost when disabled.
func (r *Registry) StartSpan(stage string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, stage: stage, start: time.Now()}
}

// End completes the span, recording its duration. It returns the
// elapsed time (0 for an inert span) so callers can reuse the single
// clock read.
func (s Span) End() time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.HistogramVec("steady_stage_duration_seconds",
		"Wall time per solve-lifecycle stage.", nil, "stage").
		With(s.stage).Observe(d.Seconds())
	s.reg.spans.push(SpanRecord{Stage: s.stage, Start: s.start, Duration: d})
	return d
}

// RecentSpans returns the most recent completed spans, oldest first,
// up to the ring capacity. Nil-safe.
func (r *Registry) RecentSpans() []SpanRecord {
	if r == nil {
		return nil
	}
	sr := &r.spans
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SpanRecord, 0, sr.n)
	start := sr.next - sr.n
	if start < 0 {
		start += spanRingCapacity
	}
	for i := 0; i < sr.n; i++ {
		out = append(out, sr.buf[(start+i)%spanRingCapacity])
	}
	return out
}
