package obs

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateMetrics = flag.Bool("update", false, "rewrite docs/METRICS.txt from the synthetic exposition fixture")

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "").Inc()
	r.Counter("a_total", "").Add(5)
	if got := r.Counter("a_total", "").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	r.Gauge("g", "").Set(3)
	r.Gauge("g", "").Add(-1)
	r.Gauge("g", "").SetMax(9)
	if got := r.Gauge("g", "").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v, want 0", got)
	}
	r.Histogram("h_seconds", "", nil).Observe(0.5)
	if got := r.Histogram("h_seconds", "", nil).Count(); got != 0 {
		t.Fatalf("nil histogram count = %d, want 0", got)
	}
	r.CounterVec("cv_total", "", "k").With("v").Inc()
	r.GaugeVec("gv", "", "k").With("v").Set(1)
	r.HistogramVec("hv_seconds", "", nil, "k").With("v").Observe(1)
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	r.CounterFunc("cf_total", "", func() float64 { return 1 })
	sp := r.StartSpan("solve")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	if rs := r.RecentSpans(); rs != nil {
		t.Fatalf("nil RecentSpans = %v, want nil", rs)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry rendered %q", buf.String())
	}
}

func TestInstrumentBasics(t *testing.T) {
	r := New()
	c := r.Counter("solves_total", "Total solves.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("solves_total", "Total solves."); again != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "Current depth.")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("SetMax lowered gauge to %v", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax = %v, want 7", got)
	}

	h := r.Histogram("latency_seconds", "Latency.", nil)
	for _, v := range []float64{50e-6, 100e-6, 0.3, 2, 42} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("hist count = %d, want 5", got)
	}
	if got := h.Max(); got != 42 {
		t.Fatalf("hist max = %v, want 42", got)
	}
	wantSum := 50e-6 + 100e-6 + 0.3 + 2 + 42
	if math.Abs(h.Sum()-wantSum) > 1e-12 {
		t.Fatalf("hist sum = %v, want %v", h.Sum(), wantSum)
	}
	// 50µs and 100µs both land in the first bucket (le-inclusive);
	// 42 overflows past the 10s bound.
	want := []int64{2, 0, 0, 0, 1, 1, 1}
	got := h.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestVecLabelsAndCardinalityBound(t *testing.T) {
	r := New()
	cv := r.CounterVec("req_total", "Requests.", "endpoint", "code")
	cv.With("/v1/solve", "200").Add(3)
	cv.With("/v1/solve", "400").Inc()
	if got := cv.With("/v1/solve", "200").Value(); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}

	// Past the cardinality bound, new label values collapse into _other.
	big := r.CounterVec("card_total", "Cardinality probe.", "id")
	for i := 0; i < MaxSeriesPerFamily+50; i++ {
		big.With(fmt.Sprintf("id%d", i)).Inc()
	}
	if got := big.With(fmt.Sprintf("id%d", MaxSeriesPerFamily+7)).Value(); got < 1 {
		t.Fatalf("overflow series absorbed nothing")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `card_total{id="_other"}`) {
		t.Fatalf("exposition missing _other overflow series:\n%s", buf.String())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "")
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"kind", func() { r.Gauge("x_total", "") }},
		{"labels", func() { r.CounterVec("x_total", "", "k") }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch did not panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestSpansFeedHistogramAndRing(t *testing.T) {
	r := New()
	sp := r.StartSpan("lp_solve")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration = %v, want > 0", d)
	}
	r.StartSpan("certify").End()
	h := r.HistogramVec("steady_stage_duration_seconds", "", nil, "stage").With("lp_solve")
	if h.Count() != 1 {
		t.Fatalf("stage histogram count = %d, want 1", h.Count())
	}
	spans := r.RecentSpans()
	if len(spans) != 2 || spans[0].Stage != "lp_solve" || spans[1].Stage != "certify" {
		t.Fatalf("RecentSpans = %+v", spans)
	}

	// Overflow the ring; the oldest spans must fall off, newest stay.
	for i := 0; i < spanRingCapacity+10; i++ {
		r.StartSpan(fmt.Sprintf("s%d", i)).End()
	}
	spans = r.RecentSpans()
	if len(spans) != spanRingCapacity {
		t.Fatalf("ring len = %d, want %d", len(spans), spanRingCapacity)
	}
	if got := spans[len(spans)-1].Stage; got != fmt.Sprintf("s%d", spanRingCapacity+9) {
		t.Fatalf("newest span = %s", got)
	}
}

// TestConcurrentAccess hammers one registry from many goroutines while
// rendering it, and is expected to run under -race in CI.
func TestConcurrentAccess(t *testing.T) {
	r := New()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			h := r.Histogram("conc_seconds", "", nil)
			cv := r.CounterVec("conc_labeled_total", "", "worker")
			g := r.Gauge("conc_gauge", "")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i%7) * 1e-3)
				cv.With(fmt.Sprintf("w%d", w)).Inc()
				g.SetMax(float64(i))
				r.StartSpan("conc").End()
			}
		}(w)
	}
	// Render concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("render: %v", err)
				return
			}
			if _, err := ParseExposition(&buf); err != nil {
				t.Errorf("parse mid-flight render: %v", err)
				return
			}
			r.RecentSpans()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("conc_total", "").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("conc_seconds", "", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// syntheticRegistry builds a deterministic registry covering every
// instrument kind; it is the fixture behind the docs/METRICS.txt
// golden. Live latency values are wall-clock dependent and would land
// in different buckets run to run, so the golden is synthetic by
// design — the live-server exposition is validated for parseability in
// the server integration tests and CI instead.
func syntheticRegistry() *Registry {
	r := New()
	c := r.Counter("steady_lp_pivots_total", "Simplex pivots across all solves.")
	c.Add(1234)
	r.CounterVec("steady_lp_solves_total", "LP solves by search path.", "path").With("cold").Add(3)
	r.CounterVec("steady_lp_solves_total", "LP solves by search path.", "path").With("float").Add(9)
	r.CounterVec("steady_lp_solves_total", "LP solves by search path.", "path").With("warm").Add(4)
	g := r.Gauge("steady_sim_heap_depth_highwater", "Deepest event heap observed.")
	g.SetMax(17)
	r.GaugeFunc("steady_cache_entries", "Cached LP solutions resident.", func() float64 { return 42 })
	h := r.Histogram("steady_solve_duration_seconds", "End-to-end solve wall time.", nil)
	for _, v := range []float64{50e-6, 900e-6, 900e-6, 5e-3, 0.07, 0.7, 3, 25} {
		h.Observe(v)
	}
	hv := r.HistogramVec("steady_lp_phase_seconds", "Wall time per LP phase.", nil, "phase")
	hv.With("phase1").Observe(2e-3)
	hv.With("phase2").Observe(8e-3)
	hv.With("certify").Observe(4e-4)
	rv := r.CounterVec("steady_http_requests_total", "HTTP requests by endpoint and status.", "endpoint", "code")
	rv.With("/v1/solve", "200").Add(100)
	rv.With("/v1/solve", "422").Add(2)
	rv.With("/v1/stats", "200").Add(7)
	// The cluster families, mirrored read-through from the cluster's
	// own atomics in production (cluster.Cluster.SetObs).
	r.CounterFunc("steady_cluster_forwards_total", "Solve requests forwarded to their ring owner.", func() float64 { return 57 })
	r.CounterFunc("steady_cluster_basis_ships_total", "Warm bases fetched from peers.", func() float64 { return 2 })
	r.GaugeFunc("steady_cluster_peers_healthy", "Peers currently considered healthy.", func() float64 { return 3 })
	pu := r.GaugeVec("steady_cluster_peer_up", "Per-peer health (1 up, 0 down).", "peer")
	pu.With("http://10.0.0.1:8080").Set(1)
	pu.With("http://10.0.0.2:8080").Set(0)
	// The control-plane families (control.Manager, SetObs): tracked
	// deployments, telemetry-driven re-solves, and watch streaming.
	r.GaugeFunc("steady_control_deployments", "Deployments currently tracked.", func() float64 { return 2 })
	r.GaugeFunc("steady_control_watchers", "Live watch subscribers across deployments.", func() float64 { return 3 })
	res := r.CounterVec("steady_control_resolves_total", "Control-plane re-solves by reason.", "reason")
	res.With("create").Add(2)
	res.With("drift").Add(5)
	res.With("replace").Add(1)
	r.Counter("steady_control_warm_resolves_total", "Re-solves that reused the previous epoch's basis.").Add(5)
	r.Counter("steady_control_drift_events_total", "Ticks with forecast drift beyond the threshold.").Add(6)
	return r
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "..", "docs", "METRICS.txt")
	if *updateMetrics {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regen with go test ./pkg/steady/obs -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from docs/METRICS.txt (regen with go test ./pkg/steady/obs -update)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestParseExpositionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name+labelsKeyExcept(s.Labels, "")] = s.Value
	}
	if got := byName["steady_lp_pivots_total"]; got != 1234 {
		t.Fatalf("pivots sample = %v, want 1234", got)
	}
	if got := byName["steady_solve_duration_seconds_count"]; got != 8 {
		t.Fatalf("histogram count sample = %v, want 8", got)
	}
	var inf float64
	for _, s := range samples {
		if s.Name == "steady_solve_duration_seconds_bucket" && s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
	}
	if inf != 8 {
		t.Fatalf("+Inf bucket = %v, want 8 (cumulative)", inf)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"name{unterminated=\"x value 1\n",
		"1leading_digit 3\n",
		"# TYPE x notatype\nx 1\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition accepted %q", bad)
		}
	}
}
