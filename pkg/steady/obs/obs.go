// Package obs is the observability substrate for the steady-state
// scheduler: a dependency-free, concurrency-safe metrics registry that
// renders the Prometheus text exposition format, plus a lightweight
// span API for solve-lifecycle tracing.
//
// The package is deliberately a leaf — it imports only the standard
// library — so every layer (lp, batch, sim, server) can depend on it
// without cycles, and external tools can parse its output with any
// Prometheus-compatible scraper.
//
// # Zero cost when disabled
//
// Every constructor and every instrument method is nil-receiver-safe:
//
//	var reg *obs.Registry             // nil: metrics disabled
//	c := reg.Counter("x_total", "…")  // c == nil
//	c.Inc()                           // no-op, no allocation
//
// Library code therefore threads a possibly-nil *Registry through its
// options and instruments unconditionally; when no registry is
// configured the cost is a nil check and a predicted branch.
//
// # Determinism
//
// Instruments only ever *record* — they never feed values back into
// the code under observation. The simulator's determinism tests
// (TestTraceMatchesUntracedRun and the golden traces) run with a live
// registry attached and assert byte-identical output.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DurationBuckets is the log-bucket scheme shared with the server's
// historical /v1/stats histograms: decade boundaries from 100µs to
// 10s, in seconds. Observations above the last bound land in the
// implicit +Inf bucket (the ">10s" overflow of the JSON view).
var DurationBuckets = []float64{100e-6, 1e-3, 10e-3, 100e-3, 1, 10}

// MaxSeriesPerFamily bounds label cardinality: once a labeled family
// holds this many distinct series, further label values collapse into
// a single overflow series labeled "_other". This keeps a hostile or
// buggy caller from growing the registry without bound.
const MaxSeriesPerFamily = 256

// overflowLabel is the label value used once a family exceeds
// MaxSeriesPerFamily distinct series.
const overflowLabel = "_other"

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric family: a help string, a type, a label
// schema, and the series registered under it.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string  // label keys; empty for unlabeled instruments
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label-values key -> *Counter | *Gauge | *Histogram
	order  []string       // insertion order of keys, for bounded eviction decisions
	fn     func() float64 // CounterFunc/GaugeFunc callback (unlabeled only)
}

// Registry owns a set of metric families. The zero value is NOT ready
// to use — call New. A nil *Registry is valid everywhere and disables
// collection.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted lazily at render time

	spans spanRing
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family registered under name, creating it if
// absent. It panics if the name is already registered with a
// different type or label schema — that is a programming error, and
// silently returning a mismatched instrument would corrupt exposition.
func (r *Registry) lookup(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:    name,
			help:    help,
			kind:    k,
			labels:  append([]string(nil), labels...),
			buckets: append([]float64(nil), buckets...),
			series:  make(map[string]any),
		}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, f.kind, k))
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: %s registered with labels %v, requested with %v", name, f.labels, labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: %s registered with labels %v, requested with %v", name, f.labels, labels))
		}
	}
	return f
}

// get returns the series for key, creating it via mk if the family has
// room. Past MaxSeriesPerFamily distinct series the overflow series is
// returned instead, so cardinality stays bounded.
func (f *family) get(key string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if len(f.labels) > 0 && len(f.series) >= MaxSeriesPerFamily {
		key = overflowKey(len(f.labels))
		if s, ok := f.series[key]; ok {
			return s
		}
	}
	s := mk()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

func overflowKey(n int) string {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = overflowLabel
	}
	return seriesKey(vals)
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindCounter, nil, nil)
	return f.get("", func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindGauge, nil, nil)
	return f.get("", func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time. Useful for exporting state the owner already tracks (cache
// entries, in-flight solves) without double counting. No-op on a nil
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter whose value is computed by fn at
// render time. fn must be monotonically non-decreasing. No-op on a nil
// registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds (ascending, in the observed unit). Returns nil
// on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	f := r.lookup(name, help, kindHistogram, nil, buckets)
	return f.get("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec returns a labeled counter family. Call With(values...) to
// resolve one series. Returns nil on a nil registry.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic("obs: CounterVec requires at least one label")
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, labels, nil)}
}

// GaugeVec returns a labeled gauge family. Returns nil on a nil
// registry.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic("obs: GaugeVec requires at least one label")
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labels, nil)}
}

// HistogramVec returns a labeled histogram family with the given
// buckets (DurationBuckets when nil). Returns nil on a nil registry.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic("obs: HistogramVec requires at least one label")
	}
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labels, buckets)}
}

// Counter is a monotonically increasing count. The nil *Counter is a
// valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The nil *Gauge is a valid
// no-op instrument.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets and tracks sum,
// count, and max. All methods are lock-free; a concurrent render may
// observe a sum slightly ahead of the bucket counts (and vice versa),
// which Prometheus semantics permit. The nil *Histogram is a valid
// no-op instrument.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits, CAS max
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: Prometheus buckets are le-inclusive
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Snapshot returns the per-bucket counts (len(bounds)+1, last is the
// overflow above the final bound), non-cumulative.
func (h *Histogram) Snapshot() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With resolves the series for the given label values (one per label
// key, in declaration order). Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.get(seriesKey(values), func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With resolves the series for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.get(seriesKey(values), func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With resolves the series for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	f := v.f
	return f.get(seriesKey(values), func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// seriesKey encodes label values into a map key. 0x1f (unit separator)
// cannot appear in sane label values; values containing it still hash
// consistently, they just can't collide across positions.
func seriesKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

// splitKey is the inverse of seriesKey for rendering.
func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	vals := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == 0x1f {
			vals = append(vals, key[start:i])
			start = i + 1
		}
	}
	vals = append(vals, key[start:])
	return vals
}
