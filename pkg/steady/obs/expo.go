package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the
// Prometheus text exposition format (version 0.0.4). Families are
// sorted by name and series by label values, so the output is
// deterministic given deterministic instrument values. A nil registry
// renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	seriesByKey := make(map[string]any, len(keys))
	for _, k := range keys {
		seriesByKey[k] = f.series[k]
	}
	fn := f.fn
	f.mu.Unlock()

	if len(keys) == 0 && fn == nil {
		return nil
	}
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)

	if fn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatValue(fn()))
		return nil
	}

	sort.Strings(keys)
	for _, key := range keys {
		labels := formatLabels(f.labels, splitKey(key, len(f.labels)))
		switch s := seriesByKey[key].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatValue(s.Value()))
		case *Histogram:
			writeHistogram(w, f.name, f.labels, splitKey(key, len(f.labels)), s)
		}
	}
	return nil
}

func writeHistogram(w *bufio.Writer, name string, labelKeys, labelVals []string, h *Histogram) {
	counts := h.Snapshot()
	var cum int64
	for i, bound := range h.Bounds() {
		cum += counts[i]
		labels := formatLabels(append(labelKeys, "le"), append(labelVals, formatValue(bound)))
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, cum)
	}
	cum += counts[len(counts)-1]
	infLabels := formatLabels(append(labelKeys, "le"), append(labelVals, "+Inf"))
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, infLabels, cum)
	base := formatLabels(labelKeys, labelVals)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, base, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, base, h.Count())
}

func formatLabels(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Sample is one parsed exposition line: a metric name, its label set,
// and the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition reads Prometheus text exposition format and returns
// the samples, validating the subset of the format this package emits:
// optional # HELP/# TYPE comments, `name{labels} value` sample lines,
// histogram bucket monotonicity, and that every sample under a # TYPE
// comment belongs to that family. It is used by the test suite and by
// cmd/metricscheck to prove /metrics output is scrapeable.
func ParseExposition(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var samples []Sample
	typed := make(map[string]string) // family -> type
	lastBucket := make(map[string]int64)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineno, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without type %q", lineno, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineno, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		base := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suffix)
			if trimmed != base && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if len(typed) > 0 {
			if _, ok := typed[base]; !ok {
				return nil, fmt.Errorf("line %d: sample %s has no # TYPE", lineno, s.Name)
			}
		}
		if strings.HasSuffix(s.Name, "_bucket") && typed[base] == "histogram" {
			key := base + "\x00" + labelsKeyExcept(s.Labels, "le")
			if int64(s.Value) < lastBucket[key] {
				return nil, fmt.Errorf("line %d: histogram %s buckets not cumulative", lineno, base)
			}
			lastBucket[key] = int64(s.Value)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

func labelsKeyExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// The value may be followed by an optional timestamp; we emit none,
	// but accept one for scraper compatibility.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at s[0]=='{',
// returning the index just past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return 0, nil, fmt.Errorf("malformed label block %q", s)
		}
		key := s[i : i+j]
		if !validLabelName(key) {
			return 0, nil, fmt.Errorf("invalid label name %q", key)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value")
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c", s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
