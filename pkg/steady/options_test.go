package steady_test

import (
	"context"
	"errors"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

// TestWarmStartOption pins the functional-option warm-start path: a
// second solve of the same instance seeded with the first result's
// basis runs warm and certifies the same exact throughput.
func TestWarmStartOption(t *testing.T) {
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := solver.Solve(context.Background(), platform.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarted {
		t.Fatal("cold solve claims a warm start")
	}
	if cold.Basis() == nil {
		t.Fatal("cold solve exposes no basis")
	}

	warm, err := solver.Solve(context.Background(), platform.Figure1(),
		steady.WarmStart(cold.Basis()))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("WarmStart option ignored")
	}
	if !warm.Throughput.Equal(cold.Throughput) {
		t.Fatalf("warm throughput %v != cold %v", warm.Throughput, cold.Throughput)
	}
	if warm.Pivots > cold.Pivots {
		t.Fatalf("warm re-solve of the identical LP took %d pivots, cold took %d", warm.Pivots, cold.Pivots)
	}

	// A nil basis is a documented no-op, not a crash or a warm claim.
	again, err := solver.Solve(context.Background(), platform.Figure1(), steady.WarmStart(nil))
	if err != nil {
		t.Fatal(err)
	}
	if again.WarmStarted {
		t.Fatal("WarmStart(nil) claims a warm start")
	}
}

// TestOnSolveDoneOption checks the option form of the completion
// hook: exactly one firing per Solve call, for completed and for
// immediately rejected solves alike, and multiple hooks all fire.
func TestOnSolveDoneOption(t *testing.T) {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave"})

	fired := 0
	if _, err := solver.Solve(context.Background(), platform.Figure1(),
		steady.OnSolveDone(func() { fired++ })); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("completed solve fired the hook %d times, want 1", fired)
	}

	fired = 0
	if _, err := solver.Solve(context.Background(), nil,
		steady.OnSolveDone(func() { fired++ })); err == nil {
		t.Fatal("nil platform accepted")
	}
	if fired != 1 {
		t.Fatalf("rejected solve fired the hook %d times, want 1", fired)
	}

	var order []string
	_, err := solver.Solve(context.Background(), platform.Figure1(),
		steady.OnSolveDone(func() { order = append(order, "a") }),
		steady.OnSolveDone(func() { order = append(order, "b") }))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("hooks fired as %v, want [a b]", order)
	}
}

// TestDeprecatedContextCarriers keeps the one-release compatibility
// promise: WithWarmStart and WithSolveDone still work through the
// context, and explicit options compose with (hooks) or override
// (basis) them.
func TestDeprecatedContextCarriers(t *testing.T) {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	cold, err := solver.Solve(context.Background(), platform.Figure1())
	if err != nil {
		t.Fatal(err)
	}

	ctx := steady.WithWarmStart(context.Background(), cold.Basis())
	warm, err := solver.Solve(ctx, platform.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("deprecated WithWarmStart carrier ignored")
	}

	ctxFired, optFired := 0, 0
	ctx = steady.WithSolveDone(context.Background(), func() { ctxFired++ })
	if _, err := solver.Solve(ctx, platform.Figure1(),
		steady.OnSolveDone(func() { optFired++ })); err != nil {
		t.Fatal(err)
	}
	if ctxFired != 1 || optFired != 1 {
		t.Fatalf("hook firings ctx=%d opt=%d, want 1 and 1", ctxFired, optFired)
	}
}

// TestTypedErrors pins the sentinel-error contract of New, Validate
// and Solve: callers branch with errors.Is, the HTTP service maps all
// three to 400.
func TestTypedErrors(t *testing.T) {
	if _, err := steady.New(steady.Spec{Problem: "nope"}); !errors.Is(err, steady.ErrUnknownProblem) {
		t.Fatalf("unknown problem: %v does not wrap ErrUnknownProblem", err)
	}
	if _, err := steady.New(steady.Spec{Problem: "scatter"}); !errors.Is(err, steady.ErrBadSpec) {
		t.Fatalf("scatter without targets: %v does not wrap ErrBadSpec", err)
	}
	if _, err := steady.New(steady.Spec{Problem: "broadcast", Model: steady.SendOrReceive}); !errors.Is(err, steady.ErrBadSpec) {
		t.Fatalf("broadcast under send-or-receive: %v does not wrap ErrBadSpec", err)
	}
	if _, err := steady.New(steady.Spec{Problem: "masterslave", Model: steady.PortModel(7)}); !errors.Is(err, steady.ErrBadSpec) {
		t.Fatalf("undefined port model: %v does not wrap ErrBadSpec", err)
	}

	for _, spec := range []steady.Spec{
		{Problem: "nope"},
		{Problem: "scatter"},
		{Problem: "masterslave", Model: steady.PortModel(7)},
	} {
		if err := spec.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", spec)
		}
	}
	if err := (steady.Spec{Problem: "masterslave", Root: "P1"}).Validate(); err != nil {
		t.Fatalf("Validate rejected a good spec: %v", err)
	}
	// Validate resolves node names only at Solve time, by design.
	if err := (steady.Spec{Problem: "masterslave", Root: "ZZZ"}).Validate(); err != nil {
		t.Fatalf("Validate rejected a spec whose root only a platform can judge: %v", err)
	}

	solver, _ := steady.New(steady.Spec{Problem: "masterslave", Root: "ZZZ"})
	if _, err := solver.Solve(context.Background(), platform.Figure1()); !errors.Is(err, steady.ErrNoSuchNode) {
		t.Fatalf("unknown root: %v does not wrap ErrNoSuchNode", err)
	}
	solver, _ = steady.New(steady.Spec{Problem: "scatter", Root: "P1", Targets: []string{"P9"}})
	if _, err := solver.Solve(context.Background(), platform.Figure1()); !errors.Is(err, steady.ErrNoSuchNode) {
		t.Fatalf("unknown target: %v does not wrap ErrNoSuchNode", err)
	}
}
