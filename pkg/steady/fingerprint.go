package steady

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/pkg/steady/platform"
)

// Fingerprint returns a canonical content hash of the platform: two
// platforms built with the same node names, weights, and edges (in
// the same order) share a fingerprint, regardless of how they were
// constructed. The batch engine keys its LP-solution cache on
// (Fingerprint, Solver.Name), so the hash covers every input the
// solvers read: node names, node weights, and directed edges with
// their costs. Weights and costs hash via their normalized rational
// rendering, so equal rationals hash equally.
//
// Node order is significant: the built-in solvers address nodes by
// index (Spec.Root == "" means node 0), so platforms that differ only
// by node permutation are distinct solve inputs.
func Fingerprint(p *platform.Platform) string {
	h := sha256.New()
	fmt.Fprintf(h, "steady/v1 %d %d\n", p.NumNodes(), p.NumEdges())
	for i := 0; i < p.NumNodes(); i++ {
		fmt.Fprintf(h, "n %s %s\n", p.Name(i), p.Weight(i))
	}
	for e := 0; e < p.NumEdges(); e++ {
		ed := p.Edge(e)
		fmt.Fprintf(h, "e %d %d %s\n", ed.From, ed.To, ed.C)
	}
	return hex.EncodeToString(h.Sum(nil))
}
