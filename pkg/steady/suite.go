package steady

import (
	"io"

	"repro/internal/experiments"
)

// Experiment is one entry of the paper-reproduction suite: running it
// regenerates a figure or claim of the paper on the facade's solvers.
type Experiment struct {
	// ID is the stable experiment identifier (E1..E17).
	ID string
	// Desc says which figure or claim the experiment regenerates.
	Desc string
	// Run executes the experiment, writing its report to w.
	Run func(w io.Writer) error
}

// Experiments returns the paper-reproduction suite in presentation
// order. It is the facade over internal/experiments, so commands need
// not reach into internal packages to regenerate the paper.
func Experiments() []Experiment {
	reg := experiments.Registry()
	out := make([]Experiment, len(reg))
	for i, e := range reg {
		out[i] = Experiment{ID: e.ID, Desc: e.Desc, Run: e.Run}
	}
	return out
}
