package steady

import "errors"

// Sentinel errors returned by New, Spec.Validate and Solve. They are
// wrapped with call-site detail, so match with errors.Is. The HTTP
// service maps all three to 400 Bad Request: they mean the request
// was wrong, not that the solver failed.
var (
	// ErrUnknownProblem reports a Spec.Problem that no registered
	// factory claims (see Problems for the registered names).
	ErrUnknownProblem = errors.New("steady: unknown problem")
	// ErrNoSuchNode reports a Spec.Root or Spec.Targets entry that the
	// platform being solved does not contain. It surfaces at Solve
	// time, since specs are resolved against each platform anew.
	ErrNoSuchNode = errors.New("steady: no such node")
	// ErrBadSpec reports a structurally invalid Spec: a problem that
	// requires targets given none, a port model the problem does not
	// support, or an undefined PortModel value.
	ErrBadSpec = errors.New("steady: bad spec")
)
