package batch_test

import (
	"context"
	"fmt"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
)

// TestFloatFirstSweepInterplay: with the default (float-first ON)
// cache, a sweep family's first miss runs the float search and every
// later miss warm-starts from its certified basis — so the whole
// sweep completes in (near) zero exact pivots, while every result
// stays byte-identical to a pure-exact solve of the same platform.
func TestFloatFirstSweepInterplay(t *testing.T) {
	solver, err := steady.New(steady.Spec{Problem: "masterslave"})
	if err != nil {
		t.Fatal(err)
	}
	plats := familyPlatforms(8)
	jobs := make([]batch.Job, len(plats))
	for i, p := range plats {
		jobs[i] = batch.Job{ID: fmt.Sprintf("fam%d", i), Platform: p, Solver: solver}
	}
	eng := batch.New(1) // deterministic order: each miss sees its predecessor's basis
	if !eng.Cache().FloatFirst() {
		t.Fatal("float-first must be ON by default")
	}
	outs := eng.Run(context.Background(), jobs)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		// Certified-exact through the float path: byte-identical to a
		// fresh pure-exact solve. This is also the never-cache-
		// uncertified guarantee — what the cache returned IS what the
		// exact engine certifies.
		exact, err := solver.Solve(context.Background(), plats[i])
		if err != nil {
			t.Fatal(err)
		}
		if !o.Result.Throughput.Equal(exact.Throughput) {
			t.Fatalf("job %d: cached throughput %v != pure-exact %v", i, o.Result.Throughput, exact.Throughput)
		}
		for l := range exact.Links {
			if !o.Result.Links[l].Busy.Equal(exact.Links[l].Busy) {
				t.Fatalf("job %d link %d: cached %v != pure-exact %v",
					i, l, o.Result.Links[l].Busy, exact.Links[l].Busy)
			}
		}
	}

	cs := eng.Cache().Stats()
	if cs.FloatSolves < 1 {
		t.Fatalf("no solve ran the float-first path: %+v", cs)
	}
	if cs.FloatPivots == 0 {
		t.Fatalf("float-first solve reports no float pivots: %+v", cs)
	}
	if cs.WarmSolves < int64(len(jobs)-1) {
		t.Fatalf("warm solves %d, want >= %d (every miss after the first)", cs.WarmSolves, len(jobs)-1)
	}
	// The headline interplay property: float search + exact
	// certificate on the first miss, remembered basis afterwards —
	// the sweep's total exact pivot count stays (near) zero.
	if cs.Pivots > int64(len(jobs)) {
		t.Fatalf("sweep took %d exact pivots across %d solves, want ~0 (float search + warm re-solves)", cs.Pivots, len(jobs))
	}
	if cs.ExactFallbacks != 0 {
		t.Fatalf("unexpected exact fallbacks: %+v", cs)
	}
	t.Logf("solves=%d warm=%d float=%d float_pivots=%d repair=%d exact_pivots=%d",
		cs.Solves, cs.WarmSolves, cs.FloatSolves, cs.FloatPivots, cs.RepairPivots, cs.Pivots)
}

// TestSetFloatFirstOptOut: SetFloatFirst(false) must restore the
// pure-exact trajectory — no float counters, nonzero exact pivots.
func TestSetFloatFirstOptOut(t *testing.T) {
	solver, err := steady.New(steady.Spec{Problem: "masterslave"})
	if err != nil {
		t.Fatal(err)
	}
	p := familyPlatforms(1)[0]
	eng := batch.New(1)
	eng.Cache().SetFloatFirst(false)
	if eng.Cache().FloatFirst() {
		t.Fatal("SetFloatFirst(false) did not stick")
	}
	out := eng.Run(context.Background(), []batch.Job{{ID: "solo", Platform: p, Solver: solver}})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	cs := eng.Cache().Stats()
	if cs.FloatSolves != 0 || cs.FloatPivots != 0 {
		t.Fatalf("opted-out cache ran the float path: %+v", cs)
	}
	if cs.Pivots == 0 {
		t.Fatalf("pure-exact solve reports no pivots: %+v", cs)
	}
}
