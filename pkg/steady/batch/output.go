package batch

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Record is the serialized form of an Outcome shared by the JSON and
// CSV writers. Throughput is the exact rational as a string — the
// repository-wide invariant is that results are exact; Value is the
// nearest float64 for spreadsheet consumers.
type Record struct {
	Job      string  `json:"job,omitempty"`
	Solver   string  `json:"solver"`
	Platform string  `json:"platform,omitempty"` // canonical fingerprint
	Tput     string  `json:"throughput,omitempty"`
	Value    float64 `json:"value,omitempty"`
	CacheHit bool    `json:"cache_hit"`
	MicroSec int64   `json:"elapsed_us"`
	Err      string  `json:"error,omitempty"`
}

// ToRecord flattens an outcome for serialization.
func ToRecord(o Outcome) Record {
	r := Record{
		Job:      o.JobID,
		Solver:   o.Solver,
		CacheHit: o.CacheHit,
		MicroSec: o.Elapsed.Microseconds(),
	}
	if o.Result != nil {
		r.Platform = o.Result.Fingerprint
		r.Tput = o.Result.Throughput.String()
		r.Value = o.Result.ThroughputFloat()
	}
	if o.Err != nil {
		r.Err = o.Err.Error()
	}
	return r
}

// JSONSink returns a Sink that streams one JSON object per line
// (JSON Lines) to w as outcomes complete.
func JSONSink(w io.Writer) Sink {
	enc := json.NewEncoder(w)
	return func(o Outcome) error {
		return enc.Encode(ToRecord(o))
	}
}

var csvHeader = []string{"job", "solver", "platform", "throughput", "value", "cache_hit", "elapsed_us", "error"}

// CSVSink returns a Sink that streams CSV to w as outcomes complete,
// writing the header before the first record and flushing after
// every record so partial output is usable.
func CSVSink(w io.Writer) Sink {
	cw := csv.NewWriter(w)
	wroteHeader := false
	return func(o Outcome) error {
		if !wroteHeader {
			if err := cw.Write(csvHeader); err != nil {
				return err
			}
			wroteHeader = true
		}
		r := ToRecord(o)
		if err := cw.Write([]string{
			r.Job, r.Solver, r.Platform, r.Tput,
			strconv.FormatFloat(r.Value, 'g', -1, 64),
			strconv.FormatBool(r.CacheHit),
			strconv.FormatInt(r.MicroSec, 10),
			r.Err,
		}); err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
}

// WriteJSON writes collected outcomes as JSON Lines.
func WriteJSON(w io.Writer, outcomes []Outcome) error {
	sink := JSONSink(w)
	for _, o := range outcomes {
		if err := sink(o); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes collected outcomes as CSV with a header row.
func WriteCSV(w io.Writer, outcomes []Outcome) error {
	sink := CSVSink(w)
	for _, o := range outcomes {
		if err := sink(o); err != nil {
			return err
		}
	}
	return nil
}
