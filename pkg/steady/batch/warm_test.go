package batch_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// familyPlatforms builds a (seed,size)-style sweep family: one
// random topology, cost/weight perturbations per member, so every
// member's LP has the same shape and the engine's cached basis can
// warm-start each next miss.
func familyPlatforms(n int) []*platform.Platform {
	base := platform.RandomConnected(rand.New(rand.NewSource(17)), 10, 10, 5, 5, 0.15)
	out := make([]*platform.Platform, n)
	for step := range out {
		q := platform.New()
		for i := 0; i < base.NumNodes(); i++ {
			w := base.Weight(i)
			if !w.Inf {
				w = platform.W(w.Val.Add(rat.New(int64(step), 103)))
			}
			q.AddNode(base.Name(i), w)
		}
		for _, ed := range base.Edges() {
			q.AddEdge(ed.From, ed.To, ed.C.Add(rat.New(int64(step), 101)))
		}
		out[step] = q
	}
	return out
}

// TestEngineWarmStartsSweepFamily: a sweep over structurally
// identical platforms must warm-start every miss after the first,
// and the warm results must carry the exact throughputs a cold
// in-process solve computes.
func TestEngineWarmStartsSweepFamily(t *testing.T) {
	solver, err := steady.New(steady.Spec{Problem: "masterslave"})
	if err != nil {
		t.Fatal(err)
	}
	plats := familyPlatforms(8)
	jobs := make([]batch.Job, len(plats))
	for i, p := range plats {
		jobs[i] = batch.Job{ID: fmt.Sprintf("fam%d", i), Platform: p, Solver: solver}
	}
	// One worker: deterministic solve order, so every job after the
	// first finds its predecessor's basis in the cache. Float-first is
	// disabled so the warm-vs-cold comparison below measures the exact
	// engine's own pivot trajectory (with it on, the cold miss takes ~0
	// exact pivots too and the comparison is vacuous — see
	// TestFloatFirstSweepInterplay for that regime).
	eng := batch.New(1)
	eng.Cache().SetFloatFirst(false)
	outs := eng.Run(context.Background(), jobs)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		// Exactness through the warm path: same exact optimum as a
		// fresh cold solve.
		cold, err := solver.Solve(context.Background(), plats[i])
		if err != nil {
			t.Fatal(err)
		}
		if !o.Result.Throughput.Equal(cold.Throughput) {
			t.Fatalf("job %d: warm-path throughput %v != cold %v", i, o.Result.Throughput, cold.Throughput)
		}
	}
	cs := eng.Cache().Stats()
	if cs.WarmSolves < int64(len(jobs)-1) {
		t.Fatalf("warm solves %d, want >= %d (every miss after the first)", cs.WarmSolves, len(jobs)-1)
	}
	cold := cs.Pivots - cs.WarmPivots
	if cs.WarmPivots*5 > cold {
		t.Fatalf("warm pivots %d vs cold %d — want >= 5x reduction", cs.WarmPivots, cold)
	}
	t.Logf("solves=%d warm=%d pivots=%d warm_pivots=%d", cs.Solves, cs.WarmSolves, cs.Pivots, cs.WarmPivots)
}

// TestWarmStatsExposed: the cache's warm counters are visible
// through Engine.Cache().Stats() and reset-free across Run calls.
func TestWarmStatsExposed(t *testing.T) {
	cs := batch.NewCache(4, 0).Stats()
	if cs.WarmSolves != 0 || cs.Pivots != 0 || cs.WarmPivots != 0 {
		t.Fatalf("fresh cache has nonzero LP counters: %+v", cs)
	}
}
