package batch

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/obs"
)

func shardCounterSum(reg *obs.Registry, name string, shards int) int64 {
	vec := reg.CounterVec(name, "", "shard")
	var n int64
	for i := 0; i < shards; i++ {
		n += vec.With(fmt.Sprintf("%d", i)).Value()
	}
	return n
}

func TestCacheObsCounters(t *testing.T) {
	reg := obs.New()
	c := NewCache(4, 4)
	c.SetObs(reg)
	res := &steady.Result{}

	// 8 distinct keys into a bound of 4: every insert is a miss, the
	// last ones must evict.
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key%d", i)
		c.Do(context.Background(), k, func() (*steady.Result, error) { return res, nil })
	}
	// Re-resolve the freshest key: a hit.
	c.Do(context.Background(), "key7", func() (*steady.Result, error) { return res, nil })

	if got := shardCounterSum(reg, "steady_cache_misses_total", 4); got != 8 {
		t.Fatalf("miss counter sum = %d, want 8", got)
	}
	if got := shardCounterSum(reg, "steady_cache_hits_total", 4); got != 1 {
		t.Fatalf("hit counter sum = %d, want 1", got)
	}
	if got := shardCounterSum(reg, "steady_cache_evictions_total", 4); got < 1 {
		t.Fatalf("eviction counter sum = %d, want >= 1", got)
	}

	// The registry counters agree with the cache's own stats.
	st := c.Stats()
	if got := shardCounterSum(reg, "steady_cache_hits_total", 4); got != st.Hits {
		t.Fatalf("registry hits %d != CacheStats.Hits %d", got, st.Hits)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"steady_cache_entries", "steady_cache_inflight", "steady_cache_misses_total{shard=\"0\"}"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, buf.String())
		}
	}
}

func TestCacheObsDedupWaits(t *testing.T) {
	reg := obs.New()
	c := NewCache(1, 0)
	c.SetObs(reg)
	res := &steady.Result{}

	claimed := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), "k", func() (*steady.Result, error) {
			close(claimed)
			<-release
			return res, nil
		})
	}()
	<-claimed
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), "k", func() (*steady.Result, error) { return res, nil })
	}()
	// The duplicate is blocked on the claimant; let it finish.
	for shardCounterSum(reg, "steady_cache_dedup_waits_total", 1) == 0 {
	}
	close(release)
	wg.Wait()
	if got := shardCounterSum(reg, "steady_cache_dedup_waits_total", 1); got != 1 {
		t.Fatalf("dedup wait counter = %d, want 1", got)
	}
	if got := shardCounterSum(reg, "steady_cache_hits_total", 1); got != 1 {
		t.Fatalf("hit counter = %d, want 1", got)
	}
}
