package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// fingerprintKeys returns n cache keys built from n platforms with
// pairwise distinct fingerprints, as the engine would produce them.
func fingerprintKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		p := platform.New()
		m := p.AddNode("M", platform.WInt(1))
		w := p.AddNode("W", platform.WInt(int64(i)+1))
		p.AddEdge(m, w, rat.One())
		keys[i] = Key(steady.Fingerprint(p), "masterslave")
	}
	return keys
}

// TestCacheShardDistribution inserts many real fingerprint keys and
// checks the hash spreads them over every shard: no shard may be
// empty or hold more than a small multiple of its fair share, or the
// sharding would not relieve contention.
func TestCacheShardDistribution(t *testing.T) {
	const n, shards = 512, 8
	c := NewCache(shards, 0)
	res := &steady.Result{}
	for _, k := range fingerprintKeys(n) {
		c.Do(context.Background(), k, func() (*steady.Result, error) { return res, nil })
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	fair := n / shards
	for i := range c.shards {
		got := len(c.shards[i].m)
		if got == 0 {
			t.Fatalf("shard %d is empty (fair share %d)", i, fair)
		}
		if got > 3*fair {
			t.Fatalf("shard %d holds %d entries, > 3x fair share %d", i, got, fair)
		}
	}
}

// TestCacheParallelHitMiss hammers overlapping keys from many
// goroutines (run under -race): every key's solve runs exactly once,
// every caller gets the one shared result, and the counters add up.
func TestCacheParallelHitMiss(t *testing.T) {
	const (
		keys       = 64
		goroutines = 16
		opsEach    = 200
	)
	c := NewCache(16, 0)
	ks := fingerprintKeys(keys)
	var solves atomic.Int64
	results := make([]*steady.Result, keys)
	for i := range results {
		results[i] = &steady.Result{Solver: fmt.Sprintf("r%d", i), Throughput: rat.FromInt(int64(i))}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < opsEach; op++ {
				i := (g*opsEach + op) % keys
				res, err, _ := c.Do(context.Background(), ks[i], func() (*steady.Result, error) {
					solves.Add(1)
					return results[i], nil
				})
				if err != nil {
					t.Errorf("key %d: %v", i, err)
					return
				}
				if res != results[i] {
					t.Errorf("key %d: got result %q, want %q", i, res.Solver, results[i].Solver)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := solves.Load(); got != keys {
		t.Fatalf("solve functions ran %d times, want %d", got, keys)
	}
	st := c.Stats()
	if st.Solves != keys {
		t.Fatalf("Stats.Solves = %d, want %d", st.Solves, keys)
	}
	if want := int64(goroutines*opsEach - keys); st.Hits != want {
		t.Fatalf("Stats.Hits = %d, want %d", st.Hits, want)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after quiescence", st.InFlight)
	}
}

// TestCacheInFlightDedup blocks solves on several keys (spread over
// shards) while waiters pile up, then releases them: each key must
// have solved exactly once, with every waiter sharing the outcome.
func TestCacheInFlightDedup(t *testing.T) {
	const (
		keys    = 8
		waiters = 10
	)
	c := NewCache(4, 0)
	ks := fingerprintKeys(keys)
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(keys)
	var solves atomic.Int64

	var wg sync.WaitGroup
	claim := func(i int, first bool) {
		defer wg.Done()
		res, err, _ := c.Do(context.Background(), ks[i], func() (*steady.Result, error) {
			if first {
				started.Done()
			}
			solves.Add(1)
			<-release
			return &steady.Result{Solver: ks[i]}, nil
		})
		if err != nil || res.Solver != ks[i] {
			t.Errorf("key %d: res=%v err=%v", i, res, err)
		}
	}
	// One claimant per key first, so the solve is guaranteed in
	// flight when the waiters arrive.
	for i := 0; i < keys; i++ {
		wg.Add(1)
		go claim(i, true)
	}
	started.Wait()
	for i := 0; i < keys; i++ {
		for j := 0; j < waiters; j++ {
			wg.Add(1)
			go claim(i, false)
		}
	}
	if got := c.Stats().InFlight; got != keys {
		t.Fatalf("InFlight = %d with %d blocked solves", got, keys)
	}
	close(release)
	wg.Wait()

	if got := solves.Load(); got != keys {
		t.Fatalf("solves ran %d times, want %d", got, keys)
	}
	st := c.Stats()
	if st.Solves != keys || st.Hits != keys*waiters {
		t.Fatalf("stats = %+v, want %d solves and %d hits", st, keys, keys*waiters)
	}
}

// TestCacheCanceledSolveEvicted re-checks the cancellation contract
// on the sharded cache: a canceled solve's key is evicted, waiters
// re-claim it, and Solves counts only real completions.
func TestCacheCanceledSolveEvicted(t *testing.T) {
	c := NewCache(4, 0)
	key := fingerprintKeys(1)[0]

	_, err, _ := c.Do(context.Background(), key, func() (*steady.Result, error) {
		return nil, context.Canceled
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Stats(); st.Solves != 0 || st.Entries != 0 {
		t.Fatalf("canceled solve left stats %+v", st)
	}

	res, err, hit := c.Do(context.Background(), key, func() (*steady.Result, error) {
		return &steady.Result{Solver: "real"}, nil
	})
	if err != nil || hit || res.Solver != "real" {
		t.Fatalf("re-solve after eviction: res=%v err=%v hit=%v", res, err, hit)
	}
	if st := c.Stats(); st.Solves != 1 || st.Entries != 1 {
		t.Fatalf("stats after re-solve = %+v", st)
	}
}

// TestCacheBoundNeverExceeded pins the capacity contract after
// sharding: per-shard bounds are the floor of bound/shards, so total
// capacity stays at or under the requested bound even when it does
// not divide evenly.
func TestCacheBoundNeverExceeded(t *testing.T) {
	const bound = 20
	c := NewCache(16, bound)
	for _, k := range fingerprintKeys(5 * bound) {
		c.Do(context.Background(), k, func() (*steady.Result, error) { return &steady.Result{}, nil })
	}
	if got := c.Len(); got > bound {
		t.Fatalf("cache holds %d entries, bound %d", got, bound)
	}
}

// TestCacheTinyBoundClampsShards pins the capacity contract: a cache
// whose bound is smaller than its shard count shrinks the shard
// count, so total capacity equals the requested bound instead of
// silently becoming one entry per shard.
func TestCacheTinyBoundClampsShards(t *testing.T) {
	c := NewCache(16, 1)
	if c.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", c.Shards())
	}
	ks := fingerprintKeys(3)
	for _, k := range ks {
		c.Do(context.Background(), k, func() (*steady.Result, error) { return &steady.Result{}, nil })
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (bound)", c.Len())
	}
}
