package batch

import (
	"context"
	"hash/maphash"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/pkg/steady"
	"repro/pkg/steady/lp"
	"repro/pkg/steady/obs"
)

// Cache is a sharded LP-solution cache with in-flight deduplication.
// Keys are "fingerprint|solver" strings (see Key); each key is owned
// by exactly one of N shards, selected by hashing the key, so
// concurrent lookups on distinct keys contend only when they land on
// the same shard. This is what lets a long-running service (or a
// wide batch sweep) serve cache hits from many goroutines without a
// single mutex serializing them.
//
// Semantics per key are identical to the original single-lock engine
// cache:
//
//   - the first caller of Do for a key claims it and runs the solve;
//     every concurrent duplicate blocks on the claim instead of
//     re-solving;
//   - errors are cached like results (an infeasible instance fails
//     once, not once per duplicate), EXCEPT cancellation: a canceled
//     or timed-out solve says nothing about the instance, so its key
//     is evicted and the next caller re-solves it;
//   - eviction is per shard: at the shard's bound, inserting a new
//     entry drops one completed entry; in-flight entries are never
//     evicted, their waiters hold them.
//
// A Cache is safe for concurrent use and may be shared between an
// Engine and other consumers (pkg/steady/server shares one cache
// between its /v1/solve handler and its sweep engine), so a result
// solved for one front-end is a hit for the other.
type Cache struct {
	shards []cacheShard
	seed   maphash.Seed

	solves   atomic.Int64
	hits     atomic.Int64
	inflight atomic.Int64

	// warm remembers, per solver name, the optimal basis of the most
	// recent successful solve. Platforms in a sweep family (same
	// (seed,size) scheme, perturbed costs) produce structurally
	// identical LPs, so the neighbor's basis warm-starts the next
	// miss; a basis that does not fit is discarded by the LP layer
	// and the solve runs cold.
	warmMu sync.Mutex
	warm   map[string]*lp.Basis

	warmSolves atomic.Int64
	pivots     atomic.Int64
	warmPivots atomic.Int64

	// noFloatFirst disables the float-first LP path for cache misses
	// (see SetFloatFirst; the zero value means float-first is ON).
	noFloatFirst atomic.Bool

	floatSolves    atomic.Int64
	floatPivots    atomic.Int64
	repairPivots   atomic.Int64
	exactFallbacks atomic.Int64

	// obsReg, when non-nil, is forwarded to the LP layer on every miss
	// (see SetObs). The per-shard instruments live on the shards.
	obsReg *obs.Registry
}

type cacheShard struct {
	mu    sync.Mutex
	m     map[string]*entry
	bound int // max entries in this shard; <= 0 means unbounded

	// Per-shard instruments, resolved once by SetObs; all nil-safe, so
	// the unobserved cache pays only nil checks.
	hits      *obs.Counter
	misses    *obs.Counter
	dedup     *obs.Counter
	evictions *obs.Counter
}

// DefaultCacheShards is the shard count used when NewCache is given
// shards <= 0. 16 shards keep per-shard contention negligible for a
// worker pool or HTTP server of typical size while costing only a few
// hundred bytes of overhead.
const DefaultCacheShards = 16

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	// Solves is the number of LPs actually run (cache misses, net of
	// canceled solves whose entries were evicted).
	Solves int64
	// Hits is the number of lookups served from a completed entry.
	Hits int64
	// InFlight is the number of solves currently running.
	InFlight int64
	// Entries is the current number of cached entries across shards.
	Entries int
	// Shards is the shard count the cache was built with.
	Shards int
	// WarmSolves is the number of solves that warm-started from a
	// cached basis (a subset of Solves).
	WarmSolves int64
	// Pivots is the total simplex pivot count across all solves, and
	// WarmPivots the share spent in warm-started ones — the spread
	// against cold solves is what basis reuse buys. Pivots counts only
	// exact rational pivots (float-first search pivots are reported
	// separately in FloatPivots).
	Pivots     int64
	WarmPivots int64
	// FloatSolves is the number of solves that ran the float-first
	// path (see Cache.SetFloatFirst), FloatPivots their float64 search
	// pivots, and RepairPivots the exact pivots spent repairing float
	// bases during certification. ExactFallbacks counts float-first
	// solves whose certification was abandoned for a pure-exact
	// re-solve (Result.CertifiedCold) — every cached result is exact
	// and certified either way.
	FloatSolves    int64
	FloatPivots    int64
	RepairPivots   int64
	ExactFallbacks int64
}

// HitRate is Hits / (Hits + Solves), or 0 before any traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Solves
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache builds a cache with the given shard count and total entry
// bound. shards <= 0 selects DefaultCacheShards; bound <= 0 means
// unbounded. The bound is split across shards rounding down, so
// total capacity never exceeds the stated bound (a non-divisible
// bound forgoes at most shards-1 entries), and the shard count is
// clamped to the bound so a tiny cache (bound < shards) still evicts
// at its stated capacity instead of silently holding one entry per
// shard.
func NewCache(shards, bound int) *Cache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	if bound > 0 && shards > bound {
		shards = bound
	}
	c := &Cache{
		shards: make([]cacheShard, shards),
		seed:   maphash.MakeSeed(),
		warm:   map[string]*lp.Basis{},
	}
	perShard := 0
	if bound > 0 {
		perShard = bound / shards
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{m: map[string]*entry{}, bound: perShard}
	}
	return c
}

// Key renders the canonical cache key for a platform fingerprint and
// a solver name.
func Key(fingerprint, solver string) string { return fingerprint + "|" + solver }

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Solves:     c.solves.Load(),
		Hits:       c.hits.Load(),
		InFlight:   c.inflight.Load(),
		Entries:    c.Len(),
		Shards:     len(c.shards),
		WarmSolves: c.warmSolves.Load(),
		Pivots:     c.pivots.Load(),
		WarmPivots: c.warmPivots.Load(),

		FloatSolves:    c.floatSolves.Load(),
		FloatPivots:    c.floatPivots.Load(),
		RepairPivots:   c.repairPivots.Load(),
		ExactFallbacks: c.exactFallbacks.Load(),
	}
}

// SetObs attaches a metrics registry to the cache: per-shard
// hit/miss/dedup-wait/eviction counters, entry and in-flight gauges,
// and — via DoSolve — the LP layer's per-solve metrics. Call it once,
// before the cache serves traffic (the server does so at
// construction); the instruments are resolved eagerly so the hot path
// pays no registry lookups. A nil registry is a no-op.
func (c *Cache) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.obsReg = reg
	hits := reg.CounterVec("steady_cache_hits_total", "Cache lookups served from a completed entry, by shard.", "shard")
	misses := reg.CounterVec("steady_cache_misses_total", "Cache lookups that claimed the key and ran the solve, by shard.", "shard")
	dedup := reg.CounterVec("steady_cache_dedup_waits_total", "Cache lookups that blocked on another caller's in-flight solve, by shard.", "shard")
	evict := reg.CounterVec("steady_cache_evictions_total", "Completed entries dropped to make room, by shard.", "shard")
	for i := range c.shards {
		label := strconv.Itoa(i)
		sh := &c.shards[i]
		sh.hits = hits.With(label)
		sh.misses = misses.With(label)
		sh.dedup = dedup.With(label)
		sh.evictions = evict.With(label)
	}
	reg.GaugeFunc("steady_cache_entries", "Cached LP solutions currently resident.", func() float64 {
		return float64(c.Len())
	})
	reg.GaugeFunc("steady_cache_inflight", "Cache-claimed solves currently running.", func() float64 {
		return float64(c.inflight.Load())
	})
}

// SetFloatFirst enables or disables the float-first LP path for cache
// misses. It is ON by default: batch sweeps are exactly the workload
// the float-search/exact-certificate split is for, and every result
// is certified exact either way (see steady.FloatFirst). Disable it
// to reproduce the pure-exact engine's pivot trajectory, e.g. when
// comparing warm-start pivot counts against true cold solves.
func (c *Cache) SetFloatFirst(enabled bool) { c.noFloatFirst.Store(!enabled) }

// FloatFirst reports whether cache misses run the float-first path.
func (c *Cache) FloatFirst() bool { return !c.noFloatFirst.Load() }

// WarmBasis returns the optimal basis of the most recent successful
// solve under the named solver, or nil. It is what DoSolve feeds to
// the steady.WarmStart solve option; callers composing their own
// solve closures can do the same.
func (c *Cache) WarmBasis(solver string) *lp.Basis {
	c.warmMu.Lock()
	defer c.warmMu.Unlock()
	return c.warm[solver]
}

// NoteResult records a successful solve: it remembers the result's
// basis for future warm starts under the same solver and feeds the
// pivot/warm counters. DoSolve calls it automatically.
func (c *Cache) NoteResult(solver string, res *steady.Result) {
	if res == nil {
		return
	}
	c.pivots.Add(int64(res.Pivots))
	if res.WarmStarted {
		c.warmSolves.Add(1)
		c.warmPivots.Add(int64(res.Pivots))
	}
	if res.FloatPivots > 0 || res.CertifiedCold {
		c.floatSolves.Add(1)
		c.floatPivots.Add(int64(res.FloatPivots))
		c.repairPivots.Add(int64(res.RepairPivots))
		if res.CertifiedCold {
			c.exactFallbacks.Add(1)
		}
	}
	if b := res.Basis(); b != nil {
		c.warmMu.Lock()
		c.warm[solver] = b
		c.warmMu.Unlock()
	}
}

// DoSolve is Do with basis reuse: on a miss it runs solve with a
// steady.WarmStart option carrying the solver's most recent optimal
// basis and records the outcome for the next miss.
// Solvers in a sweep family thereby re-solve in a handful of pivots.
// Note that a warm-started solve returns a certified optimal vertex
// that can differ from the cold one when the LP's optimum is not
// unique — same exact objective, possibly different activity
// variables — so results depend (harmlessly, but observably) on
// traffic order; Result.WarmStarted says which path produced one.
//
// Unless SetFloatFirst(false) was called, misses without a usable
// warm basis run the float-first path (steady.FloatFirst): the LP
// search happens in float64 and only the exactly certified basis
// result is returned — and therefore cached. An uncertifiable float
// result never reaches the cache by construction: certification
// failure re-solves pure-exact inside the same call (the result then
// reports CertifiedCold), and a solve error is cached only as an
// error, never as a value.
func (c *Cache) DoSolve(ctx context.Context, key, solver string, solve func(context.Context, ...steady.SolveOption) (*steady.Result, error)) (*steady.Result, error, bool) {
	return c.Do(ctx, key, func() (*steady.Result, error) {
		opts := []steady.SolveOption{steady.WarmStart(c.WarmBasis(solver))}
		if c.FloatFirst() {
			opts = append(opts, steady.FloatFirst())
		}
		if c.obsReg != nil {
			opts = append(opts, steady.WithObs(c.obsReg))
		}
		res, err := solve(ctx, opts...)
		if err == nil {
			c.NoteResult(solver, res)
		}
		return res, err
	})
}

// Do resolves key against the cache, running solve only for the
// first caller to claim the key. Concurrent callers with the same key
// block until the claimant finishes and then share its outcome (the
// third return reports such a hit). If the claimant's solve is
// canceled or times out, the key is evicted and one of the waiters
// re-claims it, unless its own ctx is already done.
//
// solve runs on the caller's goroutine; it should honor the ctx it
// captured. Results are shared across callers without copying, which
// is safe because solver results are immutable by convention.
func (c *Cache) Do(ctx context.Context, key string, solve func() (*steady.Result, error)) (*steady.Result, error, bool) {
	sh := c.shard(key)
	for {
		sh.mu.Lock()
		ent, hit := sh.m[key]
		if !hit {
			ent = &entry{done: make(chan struct{})}
			sh.evictLocked()
			sh.m[key] = ent
			sh.mu.Unlock()
			sh.misses.Inc()
			c.solves.Add(1)
			c.inflight.Add(1)
			ent.res, ent.err = solve()
			c.inflight.Add(-1)
			if canceled(ent.err) {
				// A canceled solve says nothing about the instance:
				// evict the key so a later caller solves it for real.
				sh.mu.Lock()
				delete(sh.m, key)
				sh.mu.Unlock()
				c.solves.Add(-1)
			}
			close(ent.done)
			return ent.res, ent.err, false
		}
		sh.mu.Unlock()

		select {
		case <-ent.done:
			// Already completed: a plain hit, no dedup wait.
		default:
			sh.dedup.Inc()
		}

		select {
		case <-ent.done:
			if canceled(ent.err) {
				// The solve this caller was waiting on ran under
				// another caller's context and was canceled there —
				// that says nothing about this call. Its key has been
				// evicted, so claim it ourselves unless our own ctx
				// is gone.
				if err := ctx.Err(); err != nil {
					return nil, err, false
				}
				continue
			}
			sh.hits.Inc()
			c.hits.Add(1)
			return ent.res, ent.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
}

// evictLocked makes room for one insertion under sh.mu: at the
// bound, it drops one completed entry (map order, effectively
// random). In-flight entries are never evicted — their waiters hold
// them.
func (sh *cacheShard) evictLocked() {
	if sh.bound <= 0 || len(sh.m) < sh.bound {
		return
	}
	for k, old := range sh.m {
		select {
		case <-old.done:
			delete(sh.m, k)
			sh.evictions.Inc()
			return
		default:
		}
	}
}
