package batch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// blockingSolver counts how many Solve calls are running at once and
// releases them only when enough have gathered, proving the engine
// actually runs jobs concurrently (not just queues them).
type blockingSolver struct {
	mu      sync.Mutex
	running int
	peak    int
	need    int
	release chan struct{}
}

func (s *blockingSolver) Name() string { return "blocking" }

func (s *blockingSolver) Solve(ctx context.Context, p *platform.Platform, _ ...steady.SolveOption) (*steady.Result, error) {
	s.mu.Lock()
	s.running++
	if s.running > s.peak {
		s.peak = s.running
	}
	if s.peak >= s.need {
		select {
		case <-s.release:
		default:
			close(s.release)
		}
	}
	s.mu.Unlock()

	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	return &steady.Result{Solver: "blocking", Throughput: rat.One()}, nil
}

// distinctPlatforms returns n platforms with pairwise distinct
// fingerprints, so every job is a cache miss.
func distinctPlatforms(n int) []*platform.Platform {
	out := make([]*platform.Platform, n)
	for i := range out {
		p := platform.New()
		m := p.AddNode("M", platform.WInt(1))
		w := p.AddNode("W", platform.WInt(int64(i)+1))
		p.AddEdge(m, w, rat.One())
		out[i] = p
	}
	return out
}

// TestConcurrentSolves is the acceptance check for the batch engine:
// at least 4 platforms are genuinely in flight at the same time.
func TestConcurrentSolves(t *testing.T) {
	const n = 4
	solver := &blockingSolver{need: n, release: make(chan struct{})}
	var jobs []batch.Job
	for i, p := range distinctPlatforms(n) {
		jobs = append(jobs, batch.Job{ID: fmt.Sprintf("j%d", i), Platform: p, Solver: solver})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	eng := batch.New(n)
	outcomes := eng.Run(ctx, jobs)
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("job %s: %v", o.JobID, o.Err)
		}
	}
	if solver.peak < n {
		t.Fatalf("peak concurrency %d, want >= %d", solver.peak, n)
	}
}

// TestCacheHits submits duplicate platforms and verifies the LP is
// solved once per distinct (platform, solver) pair, with every
// duplicate served from the cache and equal to the original.
func TestCacheHits(t *testing.T) {
	solver, err := steady.New(steady.Spec{Problem: "masterslave"})
	if err != nil {
		t.Fatal(err)
	}
	base := distinctPlatforms(3)
	var jobs []batch.Job
	for round := 0; round < 3; round++ {
		for i, p := range base {
			jobs = append(jobs, batch.Job{ID: fmt.Sprintf("r%d-p%d", round, i), Platform: p, Solver: solver})
		}
	}

	eng := batch.New(4)
	outcomes := eng.Run(context.Background(), jobs)

	byKey := map[string]rat.Rat{}
	hits := 0
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("job %s: %v", o.JobID, o.Err)
		}
		if o.CacheHit {
			hits++
		}
		if prev, ok := byKey[o.Key]; ok {
			if !prev.Equal(o.Result.Throughput) {
				t.Fatalf("key %s: throughput %v != cached %v", o.Key, o.Result.Throughput, prev)
			}
		} else {
			byKey[o.Key] = o.Result.Throughput
		}
	}
	st := eng.Stats()
	if st.Solves != int64(len(base)) {
		t.Fatalf("Solves = %d, want %d", st.Solves, len(base))
	}
	if want := int64(len(jobs) - len(base)); st.CacheHits != want || int64(hits) != want {
		t.Fatalf("CacheHits = %d (outcomes: %d), want %d", st.CacheHits, hits, want)
	}

	// A second Run on the same engine is served entirely from cache.
	again := eng.Run(context.Background(), jobs[:len(base)])
	for _, o := range again {
		if !o.CacheHit {
			t.Fatalf("job %s missed a warm cache", o.JobID)
		}
	}
}

func TestRunPreservesJobOrder(t *testing.T) {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave"})
	var jobs []batch.Job
	for i, p := range distinctPlatforms(6) {
		jobs = append(jobs, batch.Job{ID: fmt.Sprintf("j%d", i), Platform: p, Solver: solver})
	}
	outcomes := batch.New(3).Run(context.Background(), jobs)
	for i, o := range outcomes {
		if o.JobID != jobs[i].ID {
			t.Fatalf("outcome %d is %s, want %s", i, o.JobID, jobs[i].ID)
		}
	}
}

func TestStreamSinkErrorStopsRun(t *testing.T) {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave"})
	var jobs []batch.Job
	for i, p := range distinctPlatforms(8) {
		jobs = append(jobs, batch.Job{ID: fmt.Sprintf("j%d", i), Platform: p, Solver: solver})
	}
	boom := errors.New("sink full")
	seen := 0
	err := batch.New(2).Stream(context.Background(), jobs, func(batch.Outcome) error {
		seen++
		if seen == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Stream error = %v, want %v", err, boom)
	}
	if seen < 3 || seen > len(jobs) {
		t.Fatalf("sink saw %d outcomes", seen)
	}
}

func TestCancelledContext(t *testing.T) {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var jobs []batch.Job
	for i, p := range distinctPlatforms(4) {
		jobs = append(jobs, batch.Job{ID: fmt.Sprintf("j%d", i), Platform: p, Solver: solver})
	}
	eng := batch.New(2)
	outcomes := eng.Run(ctx, jobs)
	for _, o := range outcomes {
		if o.Err == nil {
			t.Fatalf("job %s succeeded under a canceled context", o.JobID)
		}
	}
	// The canceled run must not have poisoned the cache.
	good := eng.Run(context.Background(), jobs)
	for _, o := range good {
		if o.Err != nil {
			t.Fatalf("job %s after cancellation: %v", o.JobID, o.Err)
		}
	}
}

// TestCacheBound verifies eviction: with capacity 1 and sequential
// jobs, only the most recent platform stays cached, so re-running the
// older ones solves them again instead of growing memory.
func TestCacheBound(t *testing.T) {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave"})
	plats := distinctPlatforms(5)
	var jobs []batch.Job
	for i, p := range plats {
		jobs = append(jobs, batch.Job{ID: fmt.Sprintf("j%d", i), Platform: p, Solver: solver})
	}
	eng := batch.NewBounded(1, 1)
	eng.Run(context.Background(), jobs)
	if st := eng.Stats(); st.Solves != 5 || st.CacheHits != 0 {
		t.Fatalf("first pass stats = %+v", st)
	}
	// Last platform survived; the earlier ones were evicted.
	last := eng.Run(context.Background(), jobs[4:])
	if !last[0].CacheHit {
		t.Fatalf("most recent platform was evicted")
	}
	again := eng.Run(context.Background(), jobs[:4])
	for _, o := range again {
		if o.CacheHit {
			t.Fatalf("job %s hit a cache that should have evicted it", o.JobID)
		}
		if o.Err != nil {
			t.Fatalf("job %s: %v", o.JobID, o.Err)
		}
	}
}

// TestNameEscaping guards the cache key against node names that
// contain the spec-name separator characters: the two specs below
// would collide if names were joined unescaped.
func TestNameEscaping(t *testing.T) {
	a, err := steady.New(steady.Spec{Problem: "scatter", Root: "A", Targets: []string{"B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := steady.New(steady.Spec{Problem: "scatter", Root: "A", Targets: []string{"B+C"}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() == b.Name() {
		t.Fatalf("distinct specs share name %q", a.Name())
	}
}

func TestInvalidJob(t *testing.T) {
	out := batch.New(1).Run(context.Background(), []batch.Job{{ID: "bad"}})
	if out[0].Err == nil {
		t.Fatalf("nil platform/solver accepted")
	}
}

func TestJSONAndCSVOutput(t *testing.T) {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave"})
	p := distinctPlatforms(1)[0]
	jobs := []batch.Job{
		{ID: "a", Platform: p, Solver: solver},
		{ID: "b", Platform: p, Solver: solver}, // duplicate: cache hit
	}
	outcomes := batch.New(1).Run(context.Background(), jobs)

	var jbuf bytes.Buffer
	if err := batch.WriteJSON(&jbuf, outcomes); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jbuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(lines))
	}
	var rec batch.Record
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("bad JSONL: %v", err)
	}
	if rec.Job != "b" || !rec.CacheHit || rec.Tput == "" {
		t.Fatalf("record = %+v", rec)
	}

	var cbuf bytes.Buffer
	if err := batch.WriteCSV(&cbuf, outcomes); err != nil {
		t.Fatal(err)
	}
	csv := cbuf.String()
	if !strings.HasPrefix(csv, "job,solver,platform,throughput") {
		t.Fatalf("CSV missing header:\n%s", csv)
	}
	if got := strings.Count(strings.TrimSpace(csv), "\n"); got != 2 {
		t.Fatalf("CSV data rows = %d, want 2:\n%s", got, csv)
	}
}
