// Package batch solves many steady-state problems concurrently on
// top of the pkg/steady facade.
//
// An Engine runs a worker pool with bounded parallelism and
// deduplicates work through a sharded LP-solution cache (Cache)
// keyed by (steady.Fingerprint(platform), solver.Name()): submitting
// the same platform/solver pair twice — even concurrently — solves
// the LP once. This is the substrate for parameter sweeps
// (cmd/experiments -batch) and for the HTTP service front-end
// (pkg/steady/server, which shares one Cache between its solve
// handler and its sweep engine): steady-state LPs are pure functions
// of their platform, so their results are safely shareable.
//
//	eng := batch.New(8)
//	outcomes := eng.Run(ctx, jobs)
//	batch.WriteCSV(os.Stdout, outcomes)
//
// Results can also be streamed as they complete with Engine.Stream
// and the JSONSink/CSVSink adapters.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

// Job pairs a platform with the solver to run on it.
type Job struct {
	// ID is an optional caller-chosen label carried through to the
	// Outcome and the JSON/CSV records.
	ID       string
	Platform *platform.Platform
	Solver   steady.Solver
}

// Outcome is the terminal state of one job.
type Outcome struct {
	// JobID echoes Job.ID.
	JobID string
	// Solver is the solver name, Key the cache key the job resolved
	// to (platform fingerprint + solver name).
	Solver string
	Key    string
	// Result is the solved problem; nil when Err is set.
	Result *steady.Result
	Err    error
	// CacheHit reports that the job reused a result another job
	// solved (or was already solving) rather than running its own LP.
	CacheHit bool
	// Elapsed is the wall time from job pickup to completion; for a
	// cache hit on an in-flight key it includes the wait.
	Elapsed time.Duration
}

// Stats are cumulative engine counters.
type Stats struct {
	// Solves is the number of LPs actually solved (cache misses).
	Solves int64
	// CacheHits is the number of jobs served from the cache.
	CacheHits int64
}

// entry is one cache slot. done is closed once res/err are final, so
// concurrent duplicates block on it instead of re-solving.
type entry struct {
	done chan struct{}
	res  *steady.Result
	err  error
}

// Engine is a concurrent batch solver with a sharded LP-solution
// cache (see Cache). The zero value is not usable; construct with
// New, NewBounded, or NewWithCache. An Engine may be reused across
// Run/Stream calls and retains its cache, so repeated sweeps over
// overlapping platform families get warmer and warmer. The cache is
// bounded (DefaultCacheBound entries unless NewBounded says
// otherwise); when full, a completed entry is evicted per insertion,
// so a long-lived engine's memory stays bounded too.
type Engine struct {
	workers int
	cache   *Cache
}

// DefaultCacheBound is the cache capacity used by New, in entries.
// Each entry retains the solved platform and its full exact solution,
// so the bound caps the engine's memory, not just map size.
const DefaultCacheBound = 4096

// New returns an Engine running at most workers concurrent solves,
// with the default cache bound. workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine { return NewBounded(workers, DefaultCacheBound) }

// NewBounded is New with an explicit cache capacity; cacheBound <= 0
// means unbounded.
func NewBounded(workers, cacheBound int) *Engine {
	return NewWithCache(workers, NewCache(DefaultCacheShards, cacheBound))
}

// NewWithCache builds an Engine over an existing cache, so several
// consumers (for example pkg/steady/server's solve handler and its
// sweep engine) share one result set. workers <= 0 selects
// GOMAXPROCS.
func NewWithCache(workers int, cache *Cache) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cache == nil {
		cache = NewCache(DefaultCacheShards, DefaultCacheBound)
	}
	return &Engine{workers: workers, cache: cache}
}

// Workers returns the engine's parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's LP-solution cache.
func (e *Engine) Cache() *Cache { return e.cache }

// Stats returns a snapshot of the cumulative counters.
func (e *Engine) Stats() Stats {
	cs := e.cache.Stats()
	return Stats{Solves: cs.Solves, CacheHits: cs.Hits}
}

// Run solves all jobs with bounded parallelism and returns their
// outcomes in job order. A canceled context marks the remaining jobs
// with ctx.Err() rather than abandoning them silently.
func (e *Engine) Run(ctx context.Context, jobs []Job) []Outcome {
	out := make([]Outcome, len(jobs))
	e.execute(ctx, jobs, func(i int, o Outcome) error {
		out[i] = o
		return nil
	})
	return out
}

// Sink receives outcomes as they complete. Calls are serialized by
// the engine, so a Sink may write to a shared stream without its own
// locking. A non-nil error stops the run: in-flight jobs finish, the
// remaining ones are dropped, and the error is returned from Stream.
type Sink func(Outcome) error

// Stream solves all jobs with bounded parallelism, delivering each
// outcome to sink in completion order (not job order).
func (e *Engine) Stream(ctx context.Context, jobs []Job, sink Sink) error {
	return e.execute(ctx, jobs, func(_ int, o Outcome) error {
		return sink(o)
	})
}

func (e *Engine) execute(ctx context.Context, jobs []Job, emit func(int, Outcome) error) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		emitMu  sync.Mutex
		emitErr error
		stopped bool
		work    = make(chan int)
		wg      sync.WaitGroup
		deliver = func(i int, o Outcome) bool {
			emitMu.Lock()
			defer emitMu.Unlock()
			if stopped {
				return false
			}
			if err := emit(i, o); err != nil {
				emitErr = err
				stopped = true
				return false
			}
			return true
		}
	)

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				deliver(i, e.solve(ctx, jobs[i]))
			}
		}()
	}

feed:
	for i := range jobs {
		emitMu.Lock()
		dead := stopped
		emitMu.Unlock()
		if dead {
			break feed
		}
		select {
		case work <- i:
		case <-ctx.Done():
			// Mark everything not yet handed to a worker as canceled.
			for j := i; j < len(jobs); j++ {
				deliver(j, Outcome{JobID: jobs[j].ID, Solver: solverName(jobs[j]), Err: ctx.Err()})
			}
			break feed
		}
	}
	close(work)
	wg.Wait()
	return emitErr
}

func solverName(j Job) string {
	if j.Solver == nil {
		return ""
	}
	return j.Solver.Name()
}

// solve resolves one job against the cache, running the LP only for
// the first job to claim its key. Errors are cached alongside
// results: an infeasible or malformed instance fails once, not once
// per duplicate.
func (e *Engine) solve(ctx context.Context, job Job) Outcome {
	start := time.Now()
	o := Outcome{JobID: job.ID, Solver: solverName(job)}
	if job.Solver == nil || job.Platform == nil {
		o.Err = fmt.Errorf("batch: job %q needs a platform and a solver", job.ID)
		o.Elapsed = time.Since(start)
		return o
	}
	o.Key = Key(steady.Fingerprint(job.Platform), o.Solver)
	o.Result, o.Err, o.CacheHit = e.cache.DoSolve(ctx, o.Key, o.Solver, func(sctx context.Context, opts ...steady.SolveOption) (*steady.Result, error) {
		return job.Solver.Solve(sctx, job.Platform, opts...)
	})
	o.Elapsed = time.Since(start)
	return o
}

func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
