package steady

import (
	"context"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/obs"
)

// SolveOption tunes one Solve call. Options are applied in order, so
// a later WarmStart overrides an earlier one; OnSolveDone hooks
// accumulate instead. The zero set of options is a plain cold solve.
type SolveOption func(*SolveConfig)

// WarmStart asks the solver to warm-start its LP from the given basis
// (normally Result.Basis() of a structurally identical platform
// solved with the same spec). A basis that does not fit the model is
// silently discarded and the solve runs cold; Result.WarmStarted
// reports which path ran. A nil basis is a no-op, so callers can pass
// a cache lookup's result unconditionally.
func WarmStart(b *lp.Basis) SolveOption {
	return func(c *SolveConfig) {
		if b != nil {
			c.WarmBasis = b
		}
	}
}

// FloatFirst asks the solver to run its LP through the float-first
// fast path: the simplex *search* runs in float64 and only the final
// basis is reinstalled and certified (or repaired, or re-solved from
// scratch) over exact rationals — see lp.Options.FloatFirst. Every
// returned quantity is still an exact, certified rational; the option
// trades nothing but internal search arithmetic, and typically speeds
// cold solves of 100+ node platforms by an order of magnitude.
// Result.FloatPivots, Result.RepairPivots and Result.CertifiedCold
// report how the certification went. A WarmStart basis, when present,
// takes precedence (warm re-solves are already a handful of exact
// pivots — a float phase would only add overhead).
func FloatFirst() SolveOption {
	return func(c *SolveConfig) { c.FloatFirst = true }
}

// WithObs asks the solver to record per-solve metrics (pivot and
// refactorization counters, solve-path counts, lifecycle spans) into
// the given registry — see pkg/steady/obs. Observation is one-way:
// nothing read from the registry influences the solve, and results
// are identical with or without it. A nil registry is a no-op, so
// callers can pass their possibly-disabled registry unconditionally.
func WithObs(reg *obs.Registry) SolveOption {
	return func(c *SolveConfig) {
		if reg != nil {
			c.Obs = reg
		}
	}
}

// OnSolveDone registers a hook that the solver invokes exactly once
// per Solve call, when the underlying computation has truly finished:
// at return for a completed (or immediately rejected) solve, or when
// the abandoned background LP finally exits for a canceled one.
// Solve itself returns promptly on cancellation, but the exact
// simplex it started cannot be interrupted mid-pivot — the hook is
// how a caller that meters CPU (pkg/steady/server's concurrency gate)
// keeps its accounting tied to the real computation instead of to
// Solve's return. Multiple hooks all fire, in registration order.
func OnSolveDone(fn func()) SolveOption {
	return func(c *SolveConfig) {
		if fn != nil {
			c.done = append(c.done, fn)
		}
	}
}

// SolveConfig is the resolved per-call configuration a Solver sees
// after applying its options. Custom Solver implementations should
// build one with NewSolveConfig (which also honors the deprecated
// context carriers) and call Done exactly once when their computation
// has truly finished; the built-in solvers do.
type SolveConfig struct {
	// WarmBasis is the warm-start hint, or nil for a cold solve.
	WarmBasis *lp.Basis
	// FloatFirst selects the float-search/exact-certificate LP path
	// (see the FloatFirst option).
	FloatFirst bool
	// Obs is the metrics registry to record the solve into, or nil
	// when observability is disabled (see the WithObs option).
	Obs *obs.Registry

	done []func()
}

// Done fires the completion hooks (see OnSolveDone). Calling it with
// no hooks registered is a no-op, so solvers can call it
// unconditionally.
func (c *SolveConfig) Done() {
	for _, fn := range c.done {
		fn()
	}
}

// NewSolveConfig resolves a Solve call's options. For compatibility
// it first adopts the deprecated context carriers (WithWarmStart,
// WithSolveDone), then applies opts in order, so explicit options
// take precedence over context values.
func NewSolveConfig(ctx context.Context, opts ...SolveOption) *SolveConfig {
	cfg := &SolveConfig{}
	if b, ok := ctx.Value(warmBasisKey).(*lp.Basis); ok && b != nil {
		cfg.WarmBasis = b
	}
	if fn, ok := ctx.Value(solveDoneKey).(func()); ok && fn != nil {
		cfg.done = append(cfg.done, fn)
	}
	for _, opt := range opts {
		opt(cfg)
	}
	return cfg
}

// lpOptions renders the config as options for the exact LP engine
// (nil when the solve is fully default, letting the engine take its
// own defaults without an allocation).
func (c *SolveConfig) lpOptions() *lp.Options {
	if c.WarmBasis == nil && !c.FloatFirst && c.Obs == nil {
		return nil
	}
	return &lp.Options{WarmBasis: c.WarmBasis, FloatFirst: c.FloatFirst, Obs: c.Obs}
}

// ctxKey keys the deprecated context carriers.
type ctxKey int

const (
	solveDoneKey ctxKey = iota
	warmBasisKey
)

// WithWarmStart returns a context asking the built-in solvers to
// warm-start their LP from the given basis. A nil basis is a no-op.
//
// Deprecated: pass the WarmStart option to Solve instead. This
// context carrier remains for one release so existing callers keep
// working; an explicit WarmStart option overrides it.
func WithWarmStart(ctx context.Context, b *lp.Basis) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, warmBasisKey, b)
}

// WithSolveDone returns a context carrying a completion hook that a
// built-in solver invokes exactly once per Solve call, when the
// underlying computation has truly finished.
//
// Deprecated: pass the OnSolveDone option to Solve instead. This
// context carrier remains for one release so existing callers keep
// working; it composes with OnSolveDone hooks (all fire).
func WithSolveDone(ctx context.Context, fn func()) context.Context {
	return context.WithValue(ctx, solveDoneKey, fn)
}
