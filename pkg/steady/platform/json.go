package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/pkg/steady/rat"
)

// ErrInvalid marks a platform that violates the model's structural
// invariants: non-positive node weights or edge costs, self-loops,
// edges naming unknown nodes, duplicate node names, or an empty
// graph. ReadJSON and Validate wrap it with detail — match with
// errors.Is. The builder methods (AddNode, AddEdge) still panic on
// the same violations: they guard programmer-constructed platforms,
// while ErrInvalid guards decoded input, which is data, not code.
var ErrInvalid = errors.New("platform: invalid")

// jsonPlatform is the serialized form used by the cmd tools.
type jsonPlatform struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Name string `json:"name"`
	W    string `json:"w"` // rational or "inf"
}

type jsonEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	C    string `json:"c"`
}

// WriteJSON serializes the platform.
func (p *Platform) WriteJSON(w io.Writer) error {
	jp := jsonPlatform{}
	for i := 0; i < p.NumNodes(); i++ {
		jp.Nodes = append(jp.Nodes, jsonNode{Name: p.Name(i), W: p.Weight(i).String()})
	}
	for _, e := range p.Edges() {
		jp.Edges = append(jp.Edges, jsonEdge{
			From: p.Name(e.From), To: p.Name(e.To), C: e.C.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}

// ReadJSON deserializes a platform written by WriteJSON. Decoded
// input is data, not code, so every model violation — not just the
// ones Validate can see after the fact — is checked before the graph
// is built and reported as an error wrapping ErrInvalid; ReadJSON
// never panics on malformed input (pkg/steady/server feeds request
// bodies straight into it).
func ReadJSON(r io.Reader) (*Platform, error) {
	var jp jsonPlatform
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("platform: decode: %w", err)
	}
	p := New()
	idx := make(map[string]int, len(jp.Nodes))
	for _, n := range jp.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("%w: node with empty name", ErrInvalid)
		}
		if _, dup := idx[n.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate node name %q", ErrInvalid, n.Name)
		}
		var w Weight
		if n.W == "inf" {
			w = WInf()
		} else {
			v, err := rat.Parse(n.W)
			if err != nil {
				return nil, fmt.Errorf("%w: node %s: %v", ErrInvalid, n.Name, err)
			}
			if v.Sign() <= 0 {
				return nil, fmt.Errorf("%w: node %s: weight %s is not positive", ErrInvalid, n.Name, n.W)
			}
			w = W(v)
		}
		idx[n.Name] = p.AddNode(n.Name, w)
	}
	for _, e := range jp.Edges {
		from, okF := idx[e.From]
		to, okT := idx[e.To]
		if !okF || !okT {
			return nil, fmt.Errorf("%w: edge %s->%s references unknown node", ErrInvalid, e.From, e.To)
		}
		if from == to {
			return nil, fmt.Errorf("%w: edge %s->%s is a self-loop", ErrInvalid, e.From, e.To)
		}
		c, err := rat.Parse(e.C)
		if err != nil {
			return nil, fmt.Errorf("%w: edge %s->%s: %v", ErrInvalid, e.From, e.To, err)
		}
		if c.Sign() <= 0 {
			return nil, fmt.Errorf("%w: edge %s->%s: cost %s is not positive", ErrInvalid, e.From, e.To, e.C)
		}
		p.AddEdge(from, to, c)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
