// Package platform implements the target architectural model of §2 of
// the paper: a node-weighted, edge-weighted directed graph
// G = (V, E, w, c). Node P_i needs w_i time-steps per computational
// unit (w_i = +inf means a pure forwarder); edge e_ij needs c_ij
// time-steps per data unit. The operation mode is full-overlap,
// single-port for incoming and for outgoing communications.
package platform

import (
	"fmt"
	"strings"

	"repro/pkg/steady/rat"
)

// Weight is a node computation weight: time per task. Inf marks a
// node with no computing power that can still forward data.
type Weight struct {
	Val rat.Rat
	Inf bool
}

// W returns a finite weight.
func W(val rat.Rat) Weight { return Weight{Val: val} }

// WInt returns a finite integer weight.
func WInt(v int64) Weight { return Weight{Val: rat.FromInt(v)} }

// WInf returns the infinite (forwarder-only) weight.
func WInf() Weight { return Weight{Inf: true} }

func (w Weight) String() string {
	if w.Inf {
		return "inf"
	}
	return w.Val.String()
}

// Edge is a directed communication link with cost C time-steps per
// data unit (C > 0).
type Edge struct {
	From, To int
	C        rat.Rat
}

// Platform is the heterogeneous target graph. Construct with New,
// AddNode and AddEdge; it is then immutable by convention.
type Platform struct {
	names []string
	w     []Weight
	edges []Edge
	out   [][]int // node -> outgoing edge indices
	in    [][]int // node -> incoming edge indices
}

// New returns an empty platform.
func New() *Platform { return &Platform{} }

// AddNode adds a node and returns its index.
func (p *Platform) AddNode(name string, w Weight) int {
	if !w.Inf && w.Val.Sign() <= 0 {
		panic(fmt.Sprintf("platform: node %s: weight must be positive (w=0 would allow infinite compute rate)", name))
	}
	p.names = append(p.names, name)
	p.w = append(p.w, w)
	p.out = append(p.out, nil)
	p.in = append(p.in, nil)
	return len(p.names) - 1
}

// AddEdge adds a directed edge from -> to with cost c and returns its
// index. Costs must be positive rationals (an absent edge stands for
// c = +inf).
func (p *Platform) AddEdge(from, to int, c rat.Rat) int {
	if from < 0 || from >= len(p.names) || to < 0 || to >= len(p.names) {
		panic("platform: edge endpoint out of range")
	}
	if from == to {
		panic("platform: self loop")
	}
	if c.Sign() <= 0 {
		panic("platform: edge cost must be positive")
	}
	idx := len(p.edges)
	p.edges = append(p.edges, Edge{From: from, To: to, C: c})
	p.out[from] = append(p.out[from], idx)
	p.in[to] = append(p.in[to], idx)
	return idx
}

// AddBoth adds edges in both directions with the same cost.
func (p *Platform) AddBoth(a, b int, c rat.Rat) (ab, ba int) {
	return p.AddEdge(a, b, c), p.AddEdge(b, a, c)
}

// NumNodes returns |V|.
func (p *Platform) NumNodes() int { return len(p.names) }

// NumEdges returns |E|.
func (p *Platform) NumEdges() int { return len(p.edges) }

// Name returns node i's name.
func (p *Platform) Name(i int) string { return p.names[i] }

// NodeByName returns the index of the named node, or -1.
func (p *Platform) NodeByName(name string) int {
	for i, n := range p.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Weight returns node i's computation weight.
func (p *Platform) Weight(i int) Weight { return p.w[i] }

// CanCompute reports whether node i has finite computing power.
func (p *Platform) CanCompute(i int) bool { return !p.w[i].Inf }

// Edge returns edge e.
func (p *Platform) Edge(e int) Edge { return p.edges[e] }

// Edges returns all edges (shared slice; do not mutate).
func (p *Platform) Edges() []Edge { return p.edges }

// OutEdges returns the indices of edges leaving node i.
func (p *Platform) OutEdges(i int) []int { return p.out[i] }

// InEdges returns the indices of edges entering node i.
func (p *Platform) InEdges(i int) []int { return p.in[i] }

// FindEdge returns the first edge from -> to, or -1.
func (p *Platform) FindEdge(from, to int) int {
	for _, e := range p.out[from] {
		if p.edges[e].To == to {
			return e
		}
	}
	return -1
}

// Clone returns a deep copy.
func (p *Platform) Clone() *Platform {
	q := New()
	for i, n := range p.names {
		q.AddNode(n, p.w[i])
	}
	for _, e := range p.edges {
		q.AddEdge(e.From, e.To, e.C)
	}
	return q
}

// Reverse returns the platform with every edge direction flipped
// (used for reduce = broadcast on the reversed graph).
func (p *Platform) Reverse() *Platform {
	q := New()
	for i, n := range p.names {
		q.AddNode(n, p.w[i])
	}
	for _, e := range p.edges {
		q.AddEdge(e.To, e.From, e.C)
	}
	return q
}

// Validate checks structural invariants (parallel edges are allowed;
// the model's +inf node weights are allowed). Violations are reported
// as errors wrapping ErrInvalid.
func (p *Platform) Validate() error {
	if len(p.names) == 0 {
		return fmt.Errorf("%w: empty", ErrInvalid)
	}
	seen := make(map[string]bool, len(p.names))
	for _, n := range p.names {
		if seen[n] {
			return fmt.Errorf("%w: duplicate node name %q", ErrInvalid, n)
		}
		seen[n] = true
	}
	for i, e := range p.edges {
		if e.C.Sign() <= 0 {
			return fmt.Errorf("%w: edge %d has non-positive cost", ErrInvalid, i)
		}
	}
	return nil
}

// ReachableFrom returns the set of nodes reachable from src
// (including src) following edge directions.
func (p *Platform) ReachableFrom(src int) []bool {
	seen := make([]bool, p.NumNodes())
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range p.out[u] {
			v := p.edges[e].To
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// DepthFrom returns, for each node, the minimum number of hops from
// src (-1 if unreachable). The maximum finite value bounds the number
// of warm-up periods needed to reach steady state (§4.2).
func (p *Platform) DepthFrom(src int) []int {
	depth := make([]int, p.NumNodes())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range p.out[u] {
			v := p.edges[e].To
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return depth
}

// MaxDepthFrom returns the largest finite depth from src.
func (p *Platform) MaxDepthFrom(src int) int {
	max := 0
	for _, d := range p.DepthFrom(src) {
		if d > max {
			max = d
		}
	}
	return max
}

// ShortestPath returns the minimum-total-cost path from src to dst as
// a list of edge indices (nil if unreachable), using Dijkstra over
// rational edge costs.
func (p *Platform) ShortestPath(src, dst int) []int {
	n := p.NumNodes()
	dist := make([]rat.Rat, n)
	fixed := make([]bool, n)
	has := make([]bool, n)
	from := make([]int, n) // edge used to reach node
	for i := range from {
		from[i] = -1
	}
	has[src] = true
	for {
		u := -1
		for v := 0; v < n; v++ {
			if !has[v] || fixed[v] {
				continue
			}
			if u < 0 || dist[v].Less(dist[u]) {
				u = v
			}
		}
		if u < 0 {
			break
		}
		fixed[u] = true
		if u == dst {
			break
		}
		for _, e := range p.out[u] {
			v := p.edges[e].To
			nd := dist[u].Add(p.edges[e].C)
			if !has[v] || nd.Less(dist[v]) {
				has[v], dist[v], from[v] = true, nd, e
			}
		}
	}
	if !fixed[dst] {
		return nil
	}
	var path []int
	for v := dst; v != src; {
		e := from[v]
		path = append(path, e)
		v = p.edges[e].From
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// String gives a compact human-readable rendering.
func (p *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "platform %d nodes %d edges\n", p.NumNodes(), p.NumEdges())
	for i, n := range p.names {
		fmt.Fprintf(&b, "  %s w=%s\n", n, p.w[i])
	}
	for _, e := range p.edges {
		fmt.Fprintf(&b, "  %s -> %s c=%s\n", p.names[e.From], p.names[e.To], e.C)
	}
	return b.String()
}

// DOT renders the platform in Graphviz format (for inspecting the
// Figure 1 / Figure 2 style diagrams).
func (p *Platform) DOT() string {
	var b strings.Builder
	b.WriteString("digraph platform {\n")
	for i, n := range p.names {
		fmt.Fprintf(&b, "  %q [label=\"%s\\nw=%s\"];\n", n, n, p.w[i])
	}
	for _, e := range p.edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s\"];\n",
			p.names[e.From], p.names[e.To], e.C)
	}
	b.WriteString("}\n")
	return b.String()
}
