package platform_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

// generators is the named family of random-platform constructors the
// codec and determinism properties quantify over.
var generators = []struct {
	name  string
	build func(rng *rand.Rand) *platform.Platform
}{
	{"tree", func(rng *rand.Rand) *platform.Platform {
		return platform.Tree(rng, 2+rng.Intn(2), 1+rng.Intn(3), 5, 4)
	}},
	{"grid", func(rng *rand.Rand) *platform.Platform {
		return platform.Grid(rng, 2+rng.Intn(3), 2+rng.Intn(3), 5, 4)
	}},
	{"ring", func(rng *rand.Rand) *platform.Platform {
		return platform.Ring(rng, 3+rng.Intn(8), 5, 4)
	}},
	{"clique", func(rng *rand.Rand) *platform.Platform {
		return platform.Clique(rng, 3+rng.Intn(5), 5, 4)
	}},
	{"random-connected", func(rng *rand.Rand) *platform.Platform {
		n := 4 + rng.Intn(8)
		return platform.RandomConnected(rng, n, n, 5, 4, 0.2)
	}},
}

// TestJSONRoundTripProperty is the codec's property test: for random
// platforms from every generator, Write → Read must reproduce the
// platform exactly — re-writing the read-back platform yields the
// identical bytes. Byte identity implies the codec loses neither
// node/edge order nor exact rational values.
func TestJSONRoundTripProperty(t *testing.T) {
	for _, g := range generators {
		t.Run(g.name, func(t *testing.T) {
			for seed := int64(0); seed < 25; seed++ {
				p := g.build(rand.New(rand.NewSource(seed)))

				var first bytes.Buffer
				if err := p.WriteJSON(&first); err != nil {
					t.Fatalf("seed %d: write: %v", seed, err)
				}
				q, err := platform.ReadJSON(bytes.NewReader(first.Bytes()))
				if err != nil {
					t.Fatalf("seed %d: read back: %v", seed, err)
				}
				var second bytes.Buffer
				if err := q.WriteJSON(&second); err != nil {
					t.Fatalf("seed %d: re-write: %v", seed, err)
				}
				if !bytes.Equal(first.Bytes(), second.Bytes()) {
					t.Fatalf("seed %d: round trip is lossy:\nfirst:\n%s\nsecond:\n%s",
						seed, first.Bytes(), second.Bytes())
				}
				if p.NumNodes() != q.NumNodes() || p.NumEdges() != q.NumEdges() {
					t.Fatalf("seed %d: shape changed: %dx%d -> %dx%d",
						seed, p.NumNodes(), p.NumEdges(), q.NumNodes(), q.NumEdges())
				}
			}
		})
	}
}

// TestGeneratorDeterminism pins the "same seed, same platform"
// contract every sweep reproducibility claim rests on (cmd/platgen
// bundles, the server's Generator, cmd/experiments -batch): two runs
// of any generator from equal seeds must produce platforms with equal
// canonical fingerprints, and a different seed must change the
// fingerprint for at least one generator draw.
func TestGeneratorDeterminism(t *testing.T) {
	for _, g := range generators {
		t.Run(g.name, func(t *testing.T) {
			differs := false
			for seed := int64(1); seed <= 10; seed++ {
				a := steady.Fingerprint(g.build(rand.New(rand.NewSource(seed))))
				b := steady.Fingerprint(g.build(rand.New(rand.NewSource(seed))))
				if a != b {
					t.Fatalf("seed %d: fingerprints differ across runs: %s vs %s", seed, a, b)
				}
				c := steady.Fingerprint(g.build(rand.New(rand.NewSource(seed + 1000))))
				if a != c {
					differs = true
				}
			}
			if !differs {
				t.Fatalf("changing the seed never changed the fingerprint; generator ignores its rng")
			}
		})
	}
}
