package platform_test

import (
	"errors"
	"strings"
	"testing"

	"repro/pkg/steady/platform"
)

// TestReadJSONInvalidInputs feeds ReadJSON every class of model
// violation a decoded platform can carry. Each must come back as an
// error wrapping platform.ErrInvalid — never a panic: the HTTP
// service pipes request bodies straight into ReadJSON, so a panic
// here was a remotely triggerable crash of /v1/solve.
func TestReadJSONInvalidInputs(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"zero weight", `{"nodes":[{"name":"A","w":"0"}],"edges":[]}`},
		{"negative weight", `{"nodes":[{"name":"A","w":"-3"}],"edges":[]}`},
		{"unparsable weight", `{"nodes":[{"name":"A","w":"fast"}],"edges":[]}`},
		{"empty node name", `{"nodes":[{"name":"","w":"1"}],"edges":[]}`},
		{"duplicate node name", `{"nodes":[{"name":"A","w":"1"},{"name":"A","w":"2"}],"edges":[]}`},
		{"empty platform", `{"nodes":[],"edges":[]}`},
		{"zero cost", `{"nodes":[{"name":"A","w":"1"},{"name":"B","w":"1"}],"edges":[{"from":"A","to":"B","c":"0"}]}`},
		{"negative cost", `{"nodes":[{"name":"A","w":"1"},{"name":"B","w":"1"}],"edges":[{"from":"A","to":"B","c":"-1/2"}]}`},
		{"unparsable cost", `{"nodes":[{"name":"A","w":"1"},{"name":"B","w":"1"}],"edges":[{"from":"A","to":"B","c":"slow"}]}`},
		{"self loop", `{"nodes":[{"name":"A","w":"1"}],"edges":[{"from":"A","to":"A","c":"1"}]}`},
		{"unknown endpoint", `{"nodes":[{"name":"A","w":"1"}],"edges":[{"from":"A","to":"B","c":"1"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadJSON panicked: %v", r)
				}
			}()
			p, err := platform.ReadJSON(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("accepted invalid platform: %v", p)
			}
			if !errors.Is(err, platform.ErrInvalid) {
				t.Fatalf("error %v does not wrap platform.ErrInvalid", err)
			}
		})
	}
}

// TestReadJSONSyntaxError keeps malformed JSON (as opposed to a
// well-formed description of an invalid platform) a plain decode
// error.
func TestReadJSONSyntaxError(t *testing.T) {
	if _, err := platform.ReadJSON(strings.NewReader(`{"nodes": [`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}
