package platform

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/pkg/steady/rat"
)

func TestAddNodeEdgeBasics(t *testing.T) {
	p := New()
	a := p.AddNode("A", WInt(2))
	b := p.AddNode("B", WInf())
	e := p.AddEdge(a, b, rat.New(3, 2))
	if p.NumNodes() != 2 || p.NumEdges() != 1 {
		t.Fatalf("sizes: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if p.Edge(e).From != a || p.Edge(e).To != b {
		t.Fatal("edge endpoints wrong")
	}
	if !p.CanCompute(a) || p.CanCompute(b) {
		t.Fatal("CanCompute wrong")
	}
	if p.FindEdge(a, b) != e || p.FindEdge(b, a) != -1 {
		t.Fatal("FindEdge wrong")
	}
	if p.NodeByName("B") != b || p.NodeByName("Z") != -1 {
		t.Fatal("NodeByName wrong")
	}
	if len(p.OutEdges(a)) != 1 || len(p.InEdges(b)) != 1 {
		t.Fatal("adjacency wrong")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("zero weight", func() {
		New().AddNode("A", WInt(0))
	})
	assertPanics("self loop", func() {
		p := New()
		a := p.AddNode("A", WInt(1))
		p.AddEdge(a, a, rat.One())
	})
	assertPanics("non-positive cost", func() {
		p := New()
		a := p.AddNode("A", WInt(1))
		b := p.AddNode("B", WInt(1))
		p.AddEdge(a, b, rat.Zero())
	})
	assertPanics("endpoint out of range", func() {
		p := New()
		a := p.AddNode("A", WInt(1))
		p.AddEdge(a, 7, rat.One())
	})
}

func TestValidateDuplicateNames(t *testing.T) {
	p := New()
	p.AddNode("A", WInt(1))
	p.AddNode("A", WInt(1))
	if err := p.Validate(); err == nil {
		t.Fatal("expected duplicate-name error")
	}
	if err := New().Validate(); err == nil {
		t.Fatal("expected empty-platform error")
	}
}

func TestFigure1Shape(t *testing.T) {
	p := Figure1()
	if p.NumNodes() != 6 {
		t.Fatalf("nodes = %d", p.NumNodes())
	}
	if p.NumEdges() != 14 { // 7 bidirectional links
		t.Fatalf("edges = %d", p.NumEdges())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Connectivity from P1.
	for i, ok := range p.ReachableFrom(p.NodeByName("P1")) {
		if !ok {
			t.Fatalf("node %s unreachable", p.Name(i))
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	p := Figure2()
	if p.NumNodes() != 7 || p.NumEdges() != 9 {
		t.Fatalf("shape: %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	// The single cost-2 edge is P3 -> P4.
	e := p.FindEdge(p.NodeByName("P3"), p.NodeByName("P4"))
	if e < 0 || !p.Edge(e).C.Equal(rat.FromInt(2)) {
		t.Fatal("P3->P4 cost-2 edge missing")
	}
	// Every other edge has cost 1.
	for i, ed := range p.Edges() {
		if i == e {
			continue
		}
		if !ed.C.IsOne() {
			t.Fatalf("edge %d has cost %v, want 1", i, ed.C)
		}
	}
	tg := Figure2Targets(p)
	if len(tg) != 2 || p.Name(tg[0]) != "P5" || p.Name(tg[1]) != "P6" {
		t.Fatal("targets wrong")
	}
	// Both targets reachable from the source.
	reach := p.ReachableFrom(p.NodeByName("P0"))
	if !reach[tg[0]] || !reach[tg[1]] {
		t.Fatal("targets unreachable")
	}
}

func TestDepthFrom(t *testing.T) {
	p := Figure2()
	d := p.DepthFrom(p.NodeByName("P0"))
	want := map[string]int{"P0": 0, "P1": 1, "P2": 1, "P3": 2, "P5": 2, "P6": 2, "P4": 3}
	for name, wd := range want {
		if d[p.NodeByName(name)] != wd {
			t.Errorf("depth(%s) = %d, want %d", name, d[p.NodeByName(name)], wd)
		}
	}
	if p.MaxDepthFrom(p.NodeByName("P0")) != 3 {
		t.Fatal("max depth wrong")
	}
	// P0 is unreachable from P5 (all edges point away from P0).
	d5 := p.DepthFrom(p.NodeByName("P5"))
	if d5[p.NodeByName("P0")] != -1 {
		t.Fatal("P0 should be unreachable from P5")
	}
}

func TestShortestPath(t *testing.T) {
	p := Figure2()
	src, dst := p.NodeByName("P0"), p.NodeByName("P4")
	path := p.ShortestPath(src, dst)
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3 hops", len(path))
	}
	total := rat.Zero()
	at := src
	for _, e := range path {
		if p.Edge(e).From != at {
			t.Fatal("path not contiguous")
		}
		at = p.Edge(e).To
		total = total.Add(p.Edge(e).C)
	}
	if at != dst {
		t.Fatal("path does not end at dst")
	}
	if !total.Equal(rat.FromInt(4)) { // 1 + 1 + 2
		t.Fatalf("path cost = %v, want 4", total)
	}
	if p.ShortestPath(p.NodeByName("P5"), src) != nil {
		t.Fatal("expected nil path for unreachable pair")
	}
}

func TestReverse(t *testing.T) {
	p := Figure2()
	r := p.Reverse()
	if r.NumEdges() != p.NumEdges() {
		t.Fatal("edge count changed")
	}
	for i, e := range p.Edges() {
		re := r.Edge(i)
		if re.From != e.To || re.To != e.From || !re.C.Equal(e.C) {
			t.Fatal("edge not reversed")
		}
	}
	// In the reversed graph P0 is reachable from P5.
	if r.DepthFrom(r.NodeByName("P5"))[r.NodeByName("P0")] < 0 {
		t.Fatal("reverse reachability wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Figure1()
	q := p.Clone()
	q.AddNode("X", WInt(1))
	if p.NumNodes() == q.NumNodes() {
		t.Fatal("clone shares storage")
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		p    *Platform
	}{
		{"star", Star(WInt(2), []Weight{WInt(1), WInt(3), WInf()}, []rat.Rat{rat.One(), rat.FromInt(2), rat.One()})},
		{"tree", Tree(rng, 2, 3, 5, 5)},
		{"random", RandomConnected(rng, 12, 10, 5, 5, 0.2)},
		{"grid", Grid(rng, 3, 4, 5, 5)},
		{"clique", Clique(rng, 5, 5, 5)},
		{"ring", Ring(rng, 6, 5, 5)},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	// RandomConnected is strongly connected by construction.
	rc := RandomConnected(rng, 15, 5, 4, 4, 0.3)
	for src := 0; src < rc.NumNodes(); src++ {
		for i, ok := range rc.ReachableFrom(src) {
			if !ok {
				t.Fatalf("random platform not strongly connected: %d unreachable from %d", i, src)
			}
		}
	}
	// Star: workers have no outgoing edges; master has no incoming.
	star := cases[0].p
	if len(star.InEdges(0)) != 0 {
		t.Fatal("star master has incoming edges")
	}
	for i := 1; i < star.NumNodes(); i++ {
		if len(star.OutEdges(i)) != 0 {
			t.Fatal("star worker has outgoing edges")
		}
	}
}

func TestTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Tree(rng, 3, 2, 4, 4)
	if p.NumNodes() != 1+3+9 {
		t.Fatalf("nodes = %d, want 13", p.NumNodes())
	}
	if p.NumEdges() != 2*(3+9) {
		t.Fatalf("edges = %d", p.NumEdges())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, p := range []*Platform{Figure1(), Figure2()} {
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		q, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumNodes() != p.NumNodes() || q.NumEdges() != p.NumEdges() {
			t.Fatal("round trip changed shape")
		}
		for i := 0; i < p.NumNodes(); i++ {
			if q.Name(i) != p.Name(i) || q.Weight(i).Inf != p.Weight(i).Inf {
				t.Fatal("round trip changed node")
			}
			if !q.Weight(i).Inf && !q.Weight(i).Val.Equal(p.Weight(i).Val) {
				t.Fatal("round trip changed weight")
			}
		}
		for i, e := range p.Edges() {
			qe := q.Edge(i)
			if qe.From != e.From || qe.To != e.To || !qe.C.Equal(e.C) {
				t.Fatal("round trip changed edge")
			}
		}
	}
}

func TestJSONInfWeight(t *testing.T) {
	p := New()
	p.AddNode("F", WInf())
	p.AddNode("C", WInt(2))
	p.AddEdge(0, 1, rat.New(1, 2))
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Weight(0).Inf {
		t.Fatal("inf weight lost")
	}
}

func TestJSONErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"nodes":[{"name":"A","w":"x"}],"edges":[]}`,
		`{"nodes":[{"name":"A","w":"1"}],"edges":[{"from":"A","to":"Z","c":"1"}]}`,
		`{"nodes":[{"name":"A","w":"1"},{"name":"B","w":"1"}],"edges":[{"from":"A","to":"B","c":"bogus"}]}`,
	}
	for i, s := range bad {
		if _, err := ReadJSON(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStringAndDOT(t *testing.T) {
	p := Figure1()
	if s := p.String(); !strings.Contains(s, "P1") {
		t.Fatal("String missing node")
	}
	d := p.DOT()
	if !strings.Contains(d, "digraph") || !strings.Contains(d, "P6") {
		t.Fatal("DOT output malformed")
	}
}
