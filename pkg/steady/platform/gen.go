package platform

import (
	"fmt"
	"math/rand"

	"repro/pkg/steady/rat"
)

// Figure1 builds the example platform of the paper's Figure 1: six
// nodes P1..P6 with edges P1-P2, P1-P3, P2-P4, P2-P5, P3-P6, P4-P5,
// P5-P6 (each added in both directions here, since the figure's links
// carry no arrowheads and §2 says links are oriented — a bidirectional
// link is two opposite edges).
//
// The paper's figure shows symbolic labels only; the concrete rational
// values below are this reproduction's fixed instance (documented in
// DESIGN.md).
func Figure1() *Platform {
	p := New()
	p1 := p.AddNode("P1", WInt(3))
	p2 := p.AddNode("P2", WInt(2))
	p3 := p.AddNode("P3", WInt(3))
	p4 := p.AddNode("P4", WInt(1))
	p5 := p.AddNode("P5", WInt(4))
	p6 := p.AddNode("P6", WInt(2))
	p.AddBoth(p1, p2, rat.FromInt(1)) // c12
	p.AddBoth(p1, p3, rat.FromInt(2)) // c13
	p.AddBoth(p2, p4, rat.FromInt(1)) // c24
	p.AddBoth(p2, p5, rat.FromInt(2)) // c25
	p.AddBoth(p3, p6, rat.FromInt(3)) // c36
	p.AddBoth(p4, p5, rat.FromInt(2)) // c45
	p.AddBoth(p5, p6, rat.FromInt(1)) // c56
	return p
}

// Figure2 builds the multicast counterexample platform of the paper's
// Figure 2: seven nodes P0..P6, source P0, targets {P5, P6}. All edge
// costs are 1 except c(P3->P4) = 2. The edge set is inferred from the
// flows of Figure 3: P0->P1, P0->P2, P1->P5, P1->P3, P2->P3, P2->P6,
// P3->P4, P4->P5, P4->P6.
func Figure2() *Platform {
	p := New()
	ids := make([]int, 7)
	for i := range ids {
		// Computation weights are irrelevant for the multicast
		// problem; use 1.
		ids[i] = p.AddNode(fmt.Sprintf("P%d", i), WInt(1))
	}
	one := rat.FromInt(1)
	p.AddEdge(ids[0], ids[1], one)
	p.AddEdge(ids[0], ids[2], one)
	p.AddEdge(ids[1], ids[5], one)
	p.AddEdge(ids[1], ids[3], one)
	p.AddEdge(ids[2], ids[3], one)
	p.AddEdge(ids[2], ids[6], one)
	p.AddEdge(ids[3], ids[4], rat.FromInt(2))
	p.AddEdge(ids[4], ids[5], one)
	p.AddEdge(ids[4], ids[6], one)
	return p
}

// Figure2Targets returns the multicast target set of Figure 2.
func Figure2Targets(p *Platform) []int {
	return []int{p.NodeByName("P5"), p.NodeByName("P6")}
}

// Star builds a single-level master/worker platform: master P0 linked
// to n workers with the given weights and link costs. The classic
// bandwidth-centric scenario of [3].
func Star(masterW Weight, workerW []Weight, link []rat.Rat) *Platform {
	if len(workerW) != len(link) {
		panic("platform: Star: mismatched lengths")
	}
	p := New()
	m := p.AddNode("P0", masterW)
	for i := range workerW {
		w := p.AddNode(fmt.Sprintf("P%d", i+1), workerW[i])
		p.AddEdge(m, w, link[i])
	}
	return p
}

// Tree builds a complete k-ary tree of the given depth with random
// weights/costs in [1, maxW] and [1, maxC]. Edges point away from the
// root (node 0) and back, modelling a hierarchical grid.
func Tree(rng *rand.Rand, fanout, depth int, maxW, maxC int64) *Platform {
	p := New()
	root := p.AddNode("N0", WInt(1+rng.Int63n(maxW)))
	frontier := []int{root}
	next := 1
	for d := 0; d < depth; d++ {
		var newFrontier []int
		for _, u := range frontier {
			for k := 0; k < fanout; k++ {
				v := p.AddNode(fmt.Sprintf("N%d", next), WInt(1+rng.Int63n(maxW)))
				next++
				c := rat.FromInt(1 + rng.Int63n(maxC))
				p.AddBoth(u, v, c)
				newFrontier = append(newFrontier, v)
			}
		}
		frontier = newFrontier
	}
	return p
}

// RandomConnected builds a random strongly-connected platform: a
// random ring through all n nodes (guaranteeing strong connectivity)
// plus extra random bidirectional links. Weights are in [1,maxW],
// costs in [1,maxC]; a proportion forwardOnly of nodes (never node 0)
// get w = +inf.
func RandomConnected(rng *rand.Rand, n, extra int, maxW, maxC int64, forwardOnly float64) *Platform {
	p := New()
	for i := 0; i < n; i++ {
		w := WInt(1 + rng.Int63n(maxW))
		if i > 0 && rng.Float64() < forwardOnly {
			w = WInf()
		}
		p.AddNode(fmt.Sprintf("N%d", i), w)
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		u, v := perm[i], perm[(i+1)%n]
		p.AddEdge(u, v, rat.FromInt(1+rng.Int63n(maxC)))
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || p.FindEdge(u, v) >= 0 {
			continue
		}
		p.AddEdge(u, v, rat.FromInt(1+rng.Int63n(maxC)))
	}
	return p
}

// Grid builds an r x c torus-free mesh with bidirectional links,
// random weights/costs.
func Grid(rng *rand.Rand, rows, cols int, maxW, maxC int64) *Platform {
	p := New()
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p.AddNode(fmt.Sprintf("N%d_%d", r, c), WInt(1+rng.Int63n(maxW)))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				p.AddBoth(id(r, c), id(r, c+1), rat.FromInt(1+rng.Int63n(maxC)))
			}
			if r+1 < rows {
				p.AddBoth(id(r, c), id(r+1, c), rat.FromInt(1+rng.Int63n(maxC)))
			}
		}
	}
	return p
}

// Clique builds a complete bidirectional graph on n nodes.
func Clique(rng *rand.Rand, n int, maxW, maxC int64) *Platform {
	p := New()
	for i := 0; i < n; i++ {
		p.AddNode(fmt.Sprintf("N%d", i), WInt(1+rng.Int63n(maxW)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p.AddBoth(i, j, rat.FromInt(1+rng.Int63n(maxC)))
		}
	}
	return p
}

// Ring builds a bidirectional ring on n nodes.
func Ring(rng *rand.Rand, n int, maxW, maxC int64) *Platform {
	p := New()
	for i := 0; i < n; i++ {
		p.AddNode(fmt.Sprintf("N%d", i), WInt(1+rng.Int63n(maxW)))
	}
	for i := 0; i < n; i++ {
		p.AddBoth(i, (i+1)%n, rat.FromInt(1+rng.Int63n(maxC)))
	}
	return p
}
