package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/sim"
	"repro/pkg/steady/sim/event"
)

// SolveRequest is the body of POST /v1/solve: a problem spec plus the
// platform to solve it on. The platform uses the repository's
// canonical JSON schema (the one cmd/platgen emits and cmd/ssched
// reads): {"nodes": [{"name", "w"}], "edges": [{"from", "to", "c"}]}
// with weights and costs as exact-rational strings ("3", "1/2",
// "inf" for forwarder-only nodes).
type SolveRequest struct {
	// Problem is a registered problem name (GET /v1/solvers lists
	// them).
	Problem string `json:"problem"`
	// Root is the master / source / reduction root node name; empty
	// means the platform's first node.
	Root string `json:"root,omitempty"`
	// Targets are target node names for scatter and the multicast
	// variants.
	Targets []string `json:"targets,omitempty"`
	// Model is "send-and-receive" (default) or "send-or-receive"
	// (§5.1.1 shared-port model; masterslave and scatter only).
	Model string `json:"model,omitempty"`
	// Platform is the platform graph in canonical JSON.
	Platform json.RawMessage `json:"platform"`
}

// Spec converts the request's problem fields to a steady.Spec.
func (r *SolveRequest) Spec() (steady.Spec, error) {
	model, err := parseModel(r.Model)
	if err != nil {
		return steady.Spec{}, err
	}
	return steady.Spec{Problem: r.Problem, Root: r.Root, Targets: r.Targets, Model: model}, nil
}

func parseModel(s string) (steady.PortModel, error) {
	switch s {
	case "", steady.SendAndReceive.String():
		return steady.SendAndReceive, nil
	case steady.SendOrReceive.String():
		return steady.SendOrReceive, nil
	default:
		return 0, fmt.Errorf("unknown port model %q (want %q or %q)",
			s, steady.SendAndReceive, steady.SendOrReceive)
	}
}

// NodeActivityJSON is one node's compute activity in a SolveResponse,
// as exact-rational strings.
type NodeActivityJSON struct {
	Name string `json:"name"`
	// Alpha is the fraction of each time-unit the node computes.
	Alpha string `json:"alpha"`
	// Rate is the node's tasks per time-unit (empty for
	// forwarder-only nodes).
	Rate string `json:"rate,omitempty"`
}

// LinkActivityJSON is one directed link's busy fraction in a
// SolveResponse, as an exact-rational string.
type LinkActivityJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
	Busy string `json:"busy"`
}

// SolveResponse is the body of a successful POST /v1/solve. All
// rational quantities are strings rendered by pkg/steady/rat, byte-
// identical to what the in-process facade returns — the service
// never converts through floats (Value is a display convenience
// only).
type SolveResponse struct {
	// Solver is the canonical solver name (problem plus parameters);
	// together with Fingerprint it is the result's cache identity.
	Solver string `json:"solver"`
	// Problem echoes the registered problem name.
	Problem string `json:"problem"`
	// Model is the port model the result was computed under.
	Model string `json:"model"`
	// Fingerprint is the canonical content hash of the platform.
	Fingerprint string `json:"fingerprint"`
	// Throughput is the exact objective value, e.g. "4/3".
	Throughput string `json:"throughput"`
	// Value is Throughput as the nearest float64, for display only.
	Value float64 `json:"value"`
	// Nodes holds per-node compute activity (masterslave only).
	Nodes []NodeActivityJSON `json:"nodes,omitempty"`
	// Links holds per-link busy fractions in platform edge order.
	Links []LinkActivityJSON `json:"links,omitempty"`
	// Trees is, for multicast-trees, the number of candidate Steiner
	// arborescences enumerated by the exact packing.
	Trees int `json:"trees,omitempty"`
	// CacheHit reports that the result was served from the shared
	// LP-solution cache instead of running a fresh solve.
	CacheHit bool `json:"cache_hit"`
	// ElapsedMicros is the request's solve wall time in microseconds
	// (near zero on a cache hit).
	ElapsedMicros int64 `json:"elapsed_us"`
}

func solveResponse(res *steady.Result, hit bool, elapsedMicros int64) *SolveResponse {
	out := &SolveResponse{
		Solver:        res.Solver,
		Problem:       res.Problem,
		Model:         res.Model.String(),
		Fingerprint:   res.Fingerprint,
		Throughput:    res.Throughput.String(),
		Value:         res.ThroughputFloat(),
		Trees:         res.Trees,
		CacheHit:      hit,
		ElapsedMicros: elapsedMicros,
	}
	for _, n := range res.Nodes {
		jn := NodeActivityJSON{Name: n.Name, Alpha: n.Alpha.String()}
		if !n.Rate.IsZero() {
			jn.Rate = n.Rate.String()
		}
		out.Nodes = append(out.Nodes, jn)
	}
	for _, l := range res.Links {
		out.Links = append(out.Links, LinkActivityJSON{From: l.From, To: l.To, Busy: l.Busy.String()})
	}
	return out
}

// Generator describes a family of random connected platforms for
// POST /v1/sweep, mirroring cmd/experiments -batch: platform i has
// Sizes[i%len(Sizes)] nodes and is seeded by (Seed + size), so a
// sweep contains repeated platforms and exercises the LP-solution
// cache.
type Generator struct {
	// Kind selects the generator; only "random" (the default) is
	// currently defined.
	Kind string `json:"kind,omitempty"`
	// Count is the number of platforms in the sweep.
	Count int `json:"count"`
	// Sizes are the node counts cycled over; default [6, 8, 10, 12].
	Sizes []int `json:"sizes,omitempty"`
	// Seed seeds the random platforms; same seed, same sweep.
	Seed int64 `json:"seed,omitempty"`
	// MaxW and MaxC bound random node weights and link costs;
	// default 5 each.
	MaxW int64 `json:"max_w,omitempty"`
	MaxC int64 `json:"max_c,omitempty"`
	// ForwardOnly is the probability a node is a pure forwarder
	// (w = inf); default 0.15.
	ForwardOnly float64 `json:"forward_only,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a problem spec plus
// either a platform generator or an explicit platform list, fanned
// out through the batch engine. Results stream back one record per
// line (NDJSON, or CSV rows) as each solve completes, so a client
// can consume a long sweep incrementally.
type SweepRequest struct {
	Problem string   `json:"problem"`
	Root    string   `json:"root,omitempty"`
	Targets []string `json:"targets,omitempty"`
	Model   string   `json:"model,omitempty"`
	// Generator describes random platforms; mutually exclusive with
	// Platforms.
	Generator *Generator `json:"generator,omitempty"`
	// Platforms is an explicit list of platforms in canonical JSON.
	Platforms []json.RawMessage `json:"platforms,omitempty"`
	// Format is "ndjson" (default) or "csv".
	Format string `json:"format,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate: a problem spec,
// the platform to solve it on, and the scenario to replay the
// reconstructed schedule under. An absent scenario is the static
// scenario (exact periodic replay).
type SimulateRequest struct {
	Problem string   `json:"problem"`
	Root    string   `json:"root,omitempty"`
	Targets []string `json:"targets,omitempty"`
	Model   string   `json:"model,omitempty"`
	// Platform is the platform graph in canonical JSON.
	Platform json.RawMessage `json:"platform"`
	// Scenario configures the simulation (see pkg/steady/sim).
	Scenario sim.Scenario `json:"scenario"`
	// Trace requests the structured event trace of the run in the
	// response (bounded by Config.MaxTraceEvents).
	Trace bool `json:"trace,omitempty"`
}

// SimulateResponse is the body of a successful POST /v1/simulate. The
// report is byte-identical to an in-process sim.Engine run on the
// same result and scenario.
type SimulateResponse struct {
	// Report is the simulation report, with certified quantities as
	// exact-rational strings.
	Report *sim.Report `json:"report"`
	// CacheHit reports that the underlying solve came from the shared
	// LP-solution cache.
	CacheHit bool `json:"cache_hit"`
	// ElapsedMicros is solve plus simulation wall time.
	ElapsedMicros int64 `json:"elapsed_us"`
	// Trace is the structured event trace of the run, present when the
	// request set trace: true (see event.Record for kinds). Two
	// requests with the same platform, scenario, and seed return
	// byte-identical traces.
	Trace []event.Record `json:"trace,omitempty"`
	// TraceTruncated reports that the run emitted more records than
	// Config.MaxTraceEvents and the tail was dropped; the report's
	// trace_events still counts every emitted record.
	TraceTruncated bool `json:"trace_truncated,omitempty"`
}

// SimSweepRequest is the body of POST /v1/simsweep: a problem spec, a
// platform family (generator or explicit list, as in /v1/sweep), and
// a set of scenarios. Every (platform, scenario) cell is solved and
// simulated through the engine's worker pool; records stream back as
// NDJSON lines or CSV rows as cells complete.
type SimSweepRequest struct {
	Problem string   `json:"problem"`
	Root    string   `json:"root,omitempty"`
	Targets []string `json:"targets,omitempty"`
	Model   string   `json:"model,omitempty"`
	// Generator describes random platforms; mutually exclusive with
	// Platforms.
	Generator *Generator `json:"generator,omitempty"`
	// Platforms is an explicit list of platforms in canonical JSON.
	Platforms []json.RawMessage `json:"platforms,omitempty"`
	// Scenarios are simulated per platform; empty means one static
	// scenario.
	Scenarios []sim.Scenario `json:"scenarios,omitempty"`
	// Format is "ndjson" (default) or "csv".
	Format string `json:"format,omitempty"`
}

// SimStatsJSON is the simulation section of GET /v1/stats.
type SimStatsJSON struct {
	// Runs counts completed POST /v1/simulate simulations; Errors the
	// failed ones.
	Runs   int64 `json:"runs"`
	Errors int64 `json:"errors"`
	// SweepCells counts cells simulated through POST /v1/simsweep.
	SweepCells int64 `json:"sweep_cells"`
	// Periodic, Online and Greedy break successful simulations down
	// by substrate.
	Periodic int64 `json:"periodic"`
	Online   int64 `json:"online"`
	Greedy   int64 `json:"greedy"`
}

// SolverInfo is one entry of GET /v1/solvers.
type SolverInfo struct {
	Problem     string `json:"problem"`
	Description string `json:"description"`
	// NeedsTargets reports that Spec.Targets is required.
	NeedsTargets bool `json:"needs_targets"`
	// Models lists the supported port models.
	Models []string `json:"models"`
}

// SolversResponse is the body of GET /v1/solvers.
type SolversResponse struct {
	Problems []SolverInfo `json:"problems"`
}

// CacheStatsJSON is the cache section of GET /v1/stats.
type CacheStatsJSON struct {
	Solves   int64   `json:"solves"`
	Hits     int64   `json:"hits"`
	HitRate  float64 `json:"hit_rate"`
	InFlight int64   `json:"in_flight"`
	Entries  int     `json:"entries"`
	Shards   int     `json:"shards"`
}

// LPStatsJSON is the LP-engine section of GET /v1/stats: exact
// simplex pivot counts and warm-start traffic across every solve
// that went through the server's shared cache (/v1/solve, /v1/sweep,
// /v1/simulate, /v1/simsweep). A warm solve reused the optimal basis
// of the solver's previous instance (see pkg/steady/lp); the spread
// between warm and cold pivots-per-solve is the warm-start win.
type LPStatsJSON struct {
	// PivotsTotal is the simplex pivot count summed over all solves.
	PivotsTotal int64 `json:"pivots_total"`
	// WarmSolves / ColdSolves split cache-miss solves by whether a
	// cached basis was accepted.
	WarmSolves int64 `json:"warm_solves"`
	ColdSolves int64 `json:"cold_solves"`
	// WarmPivots / ColdPivots split PivotsTotal the same way.
	WarmPivots int64 `json:"warm_pivots"`
	ColdPivots int64 `json:"cold_pivots"`
	// FloatFirst reports whether the float-search/exact-certificate
	// path is enabled (Config.DisableFloatFirst). FloatSolves counts
	// solves that ran it, FloatPivots their float64 search pivots (not
	// part of PivotsTotal, which counts exact pivots only),
	// RepairPivots the exact pivots spent repairing float bases during
	// certification, and ExactFallbacks the float-first solves that
	// fell back to a pure-exact re-solve. Results are certified exact
	// on every path.
	FloatFirst     bool  `json:"float_first"`
	FloatSolves    int64 `json:"float_solves"`
	FloatPivots    int64 `json:"float_pivots"`
	RepairPivots   int64 `json:"repair_pivots"`
	ExactFallbacks int64 `json:"exact_fallbacks"`
}

// SolverStatsJSON is one solver's latency histogram in GET /v1/stats.
type SolverStatsJSON struct {
	// Count is the number of requests observed for this solver
	// (solves and cache hits alike).
	Count int64 `json:"count"`
	// Errors is the number of failed requests.
	Errors int64 `json:"errors"`
	// CacheHits is the number of requests served from the cache.
	CacheHits int64 `json:"cache_hits"`
	// MeanMicros and MaxMicros summarize the latency distribution.
	MeanMicros int64 `json:"mean_us"`
	MaxMicros  int64 `json:"max_us"`
	// Buckets is the latency histogram. Finite buckets are
	// cumulative, Prometheus-style: "<=1ms" counts every request at
	// or under 1ms (so values are non-decreasing up to "<=10s");
	// ">10s", present only when nonzero, counts the overflow.
	Buckets map[string]int64 `json:"buckets"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_s"`
	// InFlightSolves is the number of LPs running right now.
	InFlightSolves int64          `json:"in_flight_solves"`
	Cache          CacheStatsJSON `json:"cache"`
	// LP reports simplex pivot and warm-start counters.
	LP LPStatsJSON `json:"lp"`
	// Simulations counts simulation traffic (POST /v1/simulate and
	// /v1/simsweep).
	Simulations SimStatsJSON `json:"simulations"`
	// Solvers maps canonical solver names to per-solver request
	// latency histograms.
	Solvers map[string]SolverStatsJSON `json:"solvers"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// decodePlatform parses a canonical-JSON platform and validates it
// against the server's size limits.
func decodePlatform(raw json.RawMessage, maxNodes, maxEdges int) (*platform.Platform, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing platform")
	}
	p, err := platform.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if p.NumNodes() > maxNodes {
		return nil, errTooLarge{fmt.Sprintf("platform has %d nodes, limit %d", p.NumNodes(), maxNodes)}
	}
	if p.NumEdges() > maxEdges {
		return nil, errTooLarge{fmt.Sprintf("platform has %d edges, limit %d", p.NumEdges(), maxEdges)}
	}
	return p, nil
}

// errTooLarge marks a request that exceeded a size limit, mapped to
// HTTP 413.
type errTooLarge struct{ msg string }

func (e errTooLarge) Error() string { return e.msg }

func cacheStatsJSON(cs batch.CacheStats) CacheStatsJSON {
	return CacheStatsJSON{
		Solves:   cs.Solves,
		Hits:     cs.Hits,
		HitRate:  cs.HitRate(),
		InFlight: cs.InFlight,
		Entries:  cs.Entries,
		Shards:   cs.Shards,
	}
}

func lpStatsJSON(cs batch.CacheStats, floatFirst bool) LPStatsJSON {
	return LPStatsJSON{
		PivotsTotal: cs.Pivots,
		WarmSolves:  cs.WarmSolves,
		ColdSolves:  cs.Solves - cs.WarmSolves,
		WarmPivots:  cs.WarmPivots,
		ColdPivots:  cs.Pivots - cs.WarmPivots,

		FloatFirst:     floatFirst,
		FloatSolves:    cs.FloatSolves,
		FloatPivots:    cs.FloatPivots,
		RepairPivots:   cs.RepairPivots,
		ExactFallbacks: cs.ExactFallbacks,
	}
}
