package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/control"
	"repro/pkg/steady/platform"
)

// This file is the HTTP face of the online scheduling control plane
// (pkg/steady/control): deployment CRUD, telemetry ingestion, and the
// /v1/deployments/{id}/watch SSE stream of schedule epochs.

// DeploymentRequest is the body of POST /v1/deployments: a deployment
// id plus the same problem/platform fields as POST /v1/solve. Posting
// an existing id atomically replaces that deployment (new nominal
// platform, fresh telemetry series) while its watch subscribers ride
// along; the epoch version keeps counting.
type DeploymentRequest struct {
	// ID names the deployment in URLs and metrics:
	// 1-64 chars from [A-Za-z0-9._-], starting alphanumeric.
	ID string `json:"id"`
	SolveRequest
}

// TelemetryRequest is the body of POST /v1/deployments/{id}/telemetry:
// a batch of cost measurements. The batch is transactional — one
// invalid observation (unknown name, NaN/Inf, non-positive value,
// ambiguous node-and-edge form) rejects the whole batch with 400 and
// no forecaster sees any of it, so a half-applied probe can never
// skew the next re-solve.
type TelemetryRequest struct {
	Observations []control.Observation `json:"observations"`
}

// TelemetryResponse is the body of a successful telemetry post.
type TelemetryResponse struct {
	// Accepted is the number of measurements applied (the whole
	// batch, by the transactional contract).
	Accepted int `json:"accepted"`
}

// DeploymentListResponse is the body of GET /v1/deployments.
type DeploymentListResponse struct {
	Deployments []string `json:"deployments"`
}

// Control returns the server's control-plane manager, for embedders
// that want to drive or inspect deployments in-process (tests, the
// steadyd shell). The server owns its lifecycle: Server.Close closes
// it.
func (s *Server) Control() *control.Manager { return s.manager }

// controlSolve is the control.SolveFunc the server installs: every
// epoch re-solve runs through the shared LP cache (identical
// estimated platforms across deployments or /v1/solve requests are
// one cache entry) and under the MaxInFlight concurrency gate, with
// the manager's extra options — its epoch-to-epoch warm basis —
// appended last so they win.
func (s *Server) controlSolve(ctx context.Context, key string, solver steady.Solver, p *platform.Platform, extra ...steady.SolveOption) (*steady.Result, bool, error) {
	res, err, hit := s.cache.DoSolve(ctx, key, solver.Name(), func(sctx context.Context, opts ...steady.SolveOption) (*steady.Result, error) {
		return s.gatedSolve(sctx, solver, p, append(opts, extra...)...)
	})
	return res, hit, err
}

func (s *Server) handleDeploymentCreate(w http.ResponseWriter, r *http.Request) {
	var req DeploymentRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	p, err := decodePlatform(req.Platform, s.cfg.MaxNodes, s.cfg.MaxEdges)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	snap, err := s.manager.Create(r.Context(), req.ID, spec, p)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleDeploymentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DeploymentListResponse{Deployments: s.manager.List()})
}

func (s *Server) handleDeploymentGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleDeploymentDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.manager.Remove(r.PathValue("id")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	var req TelemetryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	n, err := s.manager.Observe(r.PathValue("id"), req.Observations)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, TelemetryResponse{Accepted: n})
}

// watchKeepalive is how often an idle watch stream emits an SSE
// comment so intermediaries don't reap the connection.
const watchKeepalive = 15 * time.Second

// handleWatch streams a deployment's epochs as Server-Sent Events:
//
//	id: <version>
//	event: epoch
//	data: <control.Epoch JSON>
//
// A fresh subscriber immediately receives the current epoch. A
// reconnecting client sends the standard Last-Event-ID header (or an
// ?after= query parameter) with the last version it saw: retained
// epochs after it replay in order, and a version that has fallen out
// of the bounded history yields one full epoch marked "resync"
// instead. A client that stops reading for a full buffer is evicted —
// the stream ends and it must reconnect with Last-Event-ID. The
// stream also ends when the deployment is removed or the server shuts
// down; a replace keeps it open, delivering the replacement epoch —
// marked "resync" (no delta) when the new platform's topology differs
// from the old one.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	last, err := watchResume(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	sub, err := s.manager.Watch(r.PathValue("id"), last)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxy buffering defeats SSE
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	keep := time.NewTicker(watchKeepalive)
	defer keep.Stop()
	for {
		select {
		case <-r.Context().Done():
			// Client gone: Close (deferred) deregisters immediately, so
			// a dead stream never counts against MaxWatchers nor
			// lingers until eviction.
			return
		case <-keep.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ep, open := <-sub.Events():
			if !open {
				// Evicted, removed, or shutting down: end the stream;
				// the client reconnects with Last-Event-ID.
				return
			}
			data, err := json.Marshal(ep)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: epoch\ndata: %s\n\n", ep.Version, data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// watchResume extracts the resume version of a watch request: the SSE
// standard Last-Event-ID header, or an ?after= query parameter for
// plain curl use. 0 (or neither) means a fresh subscription.
func watchResume(r *http.Request) (uint64, error) {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("after")
	}
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad resume version %q: %w", v, err)
	}
	return n, nil
}
