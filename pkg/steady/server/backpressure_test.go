package server

// White-box regression tests for the solve-gate backpressure fix: a
// saturated server must answer 503 with Retry-After, not hang until
// the client's context dies, and cached answers must keep flowing
// because cache hits never take a solve slot.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/steady/platform"
)

func solveBody(t *testing.T) *strings.Reader {
	t.Helper()
	var plat bytes.Buffer
	if err := platform.Figure1().WriteJSON(&plat); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"problem": "masterslave", "root": "P1", "platform": json.RawMessage(plat.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(string(body))
}

// TestSaturatedSolveReturns503 fills every solve slot by hand and
// checks the next cold solve is refused with 503 + Retry-After within
// the queue-wait budget (the regression: it used to block until the
// client gave up, burning a connection per queued request).
func TestSaturatedSolveReturns503(t *testing.T) {
	s := New(Config{MaxInFlight: 2, QueueWait: 50 * time.Millisecond})
	defer s.Close()
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{} // occupy every slot: a wedged solver
	}
	defer func() {
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}()

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", solveBody(t))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated solve: status %d body %s, want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("503 took %v, the gate is not bounded by QueueWait", elapsed)
	}
}

// TestSaturatedCacheHitStillServes: with all slots taken, a key that
// is already cached answers 200 — hits bypass the gate entirely.
func TestSaturatedCacheHitStillServes(t *testing.T) {
	s := New(Config{MaxInFlight: 2, QueueWait: 50 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the cache while the gate is open.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", solveBody(t))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming solve: status %d", resp.StatusCode)
	}

	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}()

	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", solveBody(t))
	if err != nil {
		t.Fatal(err)
	}
	var out SolveResponse
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !out.CacheHit {
		t.Fatalf("saturated cache hit: status %d cache_hit %v, want a 200 hit",
			resp.StatusCode, out.CacheHit)
	}
}

// TestNegativeQueueWaitBlocks: QueueWait < 0 restores the old
// wait-forever behavior — the request holds until a slot frees.
func TestNegativeQueueWaitBlocks(t *testing.T) {
	s := New(Config{MaxInFlight: 1, QueueWait: -1})
	defer s.Close()
	s.sem <- struct{}{}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", solveBody(t))
		if err != nil {
			done <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()

	select {
	case code := <-done:
		t.Fatalf("request finished with %d while the gate was closed", code)
	case <-time.After(200 * time.Millisecond):
	}
	<-s.sem // free the slot: the queued request proceeds
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("queued solve finished with %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued solve never completed after the slot freed")
	}
}

// TestInternKeyStable: the interner returns the same string (same
// backing allocation is the point, equality is what we can assert)
// and survives its bounded reset.
func TestInternKeyStable(t *testing.T) {
	in := newKeyInterner()
	a := in.intern("fp1", "solverA")
	b := in.intern("fp1", "solverA")
	if a != b {
		t.Fatalf("intern returned different keys: %q vs %q", a, b)
	}
	if c := in.intern("fp2", "solverA"); c == a {
		t.Fatalf("distinct inputs interned to the same key %q", c)
	}
	// Blow past the bound: the table resets instead of growing forever.
	for i := 0; i < maxInternedKeys+10; i++ {
		in.intern(string(rune('a'+i%26))+string(rune(i)), "s")
	}
	in.mu.RLock()
	size := len(in.m)
	in.mu.RUnlock()
	if size > maxInternedKeys {
		t.Fatalf("interner grew to %d entries, bound is %d", size, maxInternedKeys)
	}
	if d := in.intern("fp1", "solverA"); d != a {
		t.Fatalf("post-reset intern changed the key: %q vs %q", d, a)
	}
}
