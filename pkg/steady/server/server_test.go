package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/server"
	"repro/pkg/steady/sim"
)

func newTestServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func platformJSON(t *testing.T, p *platform.Platform) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSolve(t *testing.T, resp *http.Response) server.SolveResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSolveEndToEnd is the acceptance check for the service: the
// /v1/solve endpoint returns byte-identical exact-rational results
// to an in-process steady.Solve on the same platform and spec.
func TestSolveEndToEnd(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	p := platform.Figure1()

	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}

	got := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
		Problem:  "masterslave",
		Root:     "P1",
		Platform: platformJSON(t, p),
	}))

	if got.Solver != want.Solver || got.Problem != "masterslave" {
		t.Fatalf("identity mismatch: %+v", got)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Fatalf("fingerprint %q != in-process %q", got.Fingerprint, want.Fingerprint)
	}
	if got.Throughput != want.Throughput.String() {
		t.Fatalf("throughput %q != in-process %q", got.Throughput, want.Throughput)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("nodes %d != %d", len(got.Nodes), len(want.Nodes))
	}
	for i, n := range want.Nodes {
		if got.Nodes[i].Name != n.Name || got.Nodes[i].Alpha != n.Alpha.String() {
			t.Fatalf("node %d: got %+v, want %s alpha=%s", i, got.Nodes[i], n.Name, n.Alpha)
		}
	}
	if len(got.Links) != len(want.Links) {
		t.Fatalf("links %d != %d", len(got.Links), len(want.Links))
	}
	for i, l := range want.Links {
		if got.Links[i].Busy != l.Busy.String() {
			t.Fatalf("link %d: busy %q != %q", i, got.Links[i].Busy, l.Busy)
		}
	}
	if got.CacheHit {
		t.Fatalf("first solve reported a cache hit")
	}

	// The same request again is served from the sharded cache, with
	// the identical exact result.
	again := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
		Problem:  "masterslave",
		Root:     "P1",
		Platform: platformJSON(t, p),
	}))
	if !again.CacheHit {
		t.Fatalf("duplicate solve missed the cache")
	}
	if again.Throughput != got.Throughput || again.Fingerprint != got.Fingerprint {
		t.Fatalf("cache returned a different result: %+v vs %+v", again, got)
	}
}

// TestSolveMulticastFamily checks the Figure 2/3 counterexample
// through the service: sum-LP < tree packing < max-operator bound.
func TestSolveMulticastFamily(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	p := platformJSON(t, platform.Figure2())
	want := map[string]string{
		"multicast-sum":   "1/2",
		"multicast-trees": "3/4",
		"multicast":       "1",
	}
	for problem, tput := range want {
		got := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
			Problem:  problem,
			Root:     "P0",
			Targets:  []string{"P5", "P6"},
			Platform: p,
		}))
		if got.Throughput != tput {
			t.Fatalf("%s: throughput %q, want %q", problem, got.Throughput, tput)
		}
	}
}

func TestSolveRejections(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxNodes: 4})
	fig1 := platformJSON(t, platform.Figure1()) // 6 nodes > limit 4

	cases := []struct {
		name   string
		req    server.SolveRequest
		status int
	}{
		{"unknown problem", server.SolveRequest{Problem: "nope", Platform: fig1}, http.StatusBadRequest},
		{"bad model", server.SolveRequest{Problem: "masterslave", Model: "warp", Platform: fig1}, http.StatusBadRequest},
		{"missing platform", server.SolveRequest{Problem: "masterslave"}, http.StatusBadRequest},
		{"oversized platform", server.SolveRequest{Problem: "masterslave", Platform: fig1}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/solve", tc.req)
		var e server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("%s: undecodable error body (%v)", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, e.Error)
		}
	}

	// Unknown node names are resolved at solve time and rejected too.
	small := platform.New()
	small.AddNode("A", platform.WInt(1))
	resp := postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
		Problem: "masterslave", Root: "Z", Platform: platformJSON(t, small),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown node: status %d, want 400", resp.StatusCode)
	}
}

// TestSolveTimeout pins the 504 mapping: a solve that cannot finish
// inside Config.SolveTimeout is cut off and reported as a gateway
// timeout, and the cache is not poisoned by it.
func TestSolveTimeout(t *testing.T) {
	ts := newTestServer(t, server.Config{SolveTimeout: time.Nanosecond})
	resp := postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
		Problem:  "masterslave",
		Platform: platformJSON(t, platform.Figure1()),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestSweepNDJSON runs a generator sweep end-to-end and checks every
// streamed record against an in-process solve of the identically
// seeded platform: same fingerprints, byte-identical throughputs.
func TestSweepNDJSON(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	const count = 8
	seed := int64(7)

	resp := postJSON(t, ts.URL+"/v1/sweep", server.SweepRequest{
		Problem:   "masterslave",
		Generator: &server.Generator{Count: count, Seed: seed},
		Format:    "ndjson",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}

	// Reproduce the generator's platforms in-process (same (seed,
	// size) scheme) and solve them directly.
	solver, err := steady.New(steady.Spec{Problem: "masterslave"})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{6, 8, 10, 12}
	want := map[string]*steady.Result{} // job id -> in-process result
	for i := 0; i < count; i++ {
		size := sizes[i%len(sizes)]
		rng := rand.New(rand.NewSource(seed + int64(size)))
		p := platform.RandomConnected(rng, size, size, 5, 5, 0.15)
		res, err := solver.Solve(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprintf("job%02d-n%d", i, size)] = res
	}

	lines := strings.Split(strings.TrimSpace(readAll(t, resp.Body)), "\n")
	if len(lines) != count {
		t.Fatalf("NDJSON lines = %d, want %d", len(lines), count)
	}
	hits := 0
	for _, line := range lines {
		var rec batch.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if rec.Err != "" {
			t.Fatalf("job %s failed: %s", rec.Job, rec.Err)
		}
		res, ok := want[rec.Job]
		if !ok {
			t.Fatalf("unexpected job id %q", rec.Job)
		}
		if rec.Platform != res.Fingerprint {
			t.Fatalf("job %s: fingerprint %q != in-process %q", rec.Job, rec.Platform, res.Fingerprint)
		}
		if rec.Tput != res.Throughput.String() {
			t.Fatalf("job %s: throughput %q != in-process %q", rec.Job, rec.Tput, res.Throughput)
		}
		if rec.CacheHit {
			hits++
		}
	}
	// Sizes cycle 4 values over 8 jobs with per-size seeding, so the
	// second half repeats the first half's platforms.
	if hits != count/2 {
		t.Fatalf("cache hits = %d, want %d", hits, count/2)
	}
}

func TestSweepCSVAndExplicitPlatforms(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	fig1 := platformJSON(t, platform.Figure1())
	resp := postJSON(t, ts.URL+"/v1/sweep", server.SweepRequest{
		Problem:   "masterslave",
		Root:      "P1",
		Platforms: []json.RawMessage{fig1, fig1, fig1},
		Format:    "csv",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("Content-Type %q", ct)
	}
	body := readAll(t, resp.Body)
	if !strings.HasPrefix(body, "job,solver,platform,throughput") {
		t.Fatalf("CSV missing header:\n%s", body)
	}
	rows := strings.Split(strings.TrimSpace(body), "\n")
	if len(rows) != 4 { // header + 3 records
		t.Fatalf("CSV rows = %d, want 4:\n%s", len(rows), body)
	}
	if !strings.Contains(body, "4/3") {
		t.Fatalf("CSV lost the exact throughput:\n%s", body)
	}
}

func TestSweepRejections(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxSweepJobs: 4})
	for name, req := range map[string]server.SweepRequest{
		"no source":         {Problem: "masterslave"},
		"both sources":      {Problem: "masterslave", Generator: &server.Generator{Count: 1}, Platforms: []json.RawMessage{[]byte(`{}`)}},
		"oversized sweep":   {Problem: "masterslave", Generator: &server.Generator{Count: 100}},
		"bad generator":     {Problem: "masterslave", Generator: &server.Generator{Kind: "grid", Count: 1}},
		"unknown problem":   {Problem: "nope", Generator: &server.Generator{Count: 1}},
		"missing targets":   {Problem: "scatter", Generator: &server.Generator{Count: 1}},
		"unsupported model": {Problem: "broadcast", Model: "send-or-receive", Generator: &server.Generator{Count: 1}},
	} {
		resp := postJSON(t, ts.URL+"/v1/sweep", req)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestSolversStatsAndHealth(t *testing.T) {
	ts := newTestServer(t, server.Config{})

	resp, err := http.Get(ts.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	var solvers server.SolversResponse
	if err := json.NewDecoder(resp.Body).Decode(&solvers); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(solvers.Problems) != len(steady.Problems()) {
		t.Fatalf("solvers = %d, want %d", len(solvers.Problems), len(steady.Problems()))
	}
	for _, info := range solvers.Problems {
		if info.Description == "" {
			t.Fatalf("problem %s has no description", info.Problem)
		}
		if info.Problem == "masterslave" && len(info.Models) != 2 {
			t.Fatalf("masterslave models = %v", info.Models)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Two identical solves: one miss, one hit; stats must say so.
	for i := 0; i < 2; i++ {
		decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
			Problem:  "masterslave",
			Platform: platformJSON(t, platform.Figure1()),
		}))
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache.Solves != 1 || stats.Cache.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 solve + 1 hit", stats.Cache)
	}
	if stats.Cache.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", stats.Cache.HitRate)
	}
	h, ok := stats.Solvers["masterslave"]
	if !ok {
		t.Fatalf("no histogram for masterslave: %+v", stats.Solvers)
	}
	if h.Count != 2 || h.CacheHits != 1 || h.Errors != 0 {
		t.Fatalf("masterslave histogram = %+v", h)
	}
	// Buckets are cumulative: the widest finite bucket holds every
	// request (nothing here takes 10s), and counts never decrease.
	if h.Buckets["<=10s"] != 2 {
		t.Fatalf("histogram <=10s = %d, want 2: %+v", h.Buckets["<=10s"], h.Buckets)
	}
	prev := int64(0)
	for _, label := range []string{"<=100us", "<=1ms", "<=10ms", "<=100ms", "<=1s", "<=10s"} {
		n, ok := h.Buckets[label]
		if !ok || n < prev {
			t.Fatalf("bucket %s = %d (prev %d, present %v): %+v", label, n, prev, ok, h.Buckets)
		}
		prev = n
	}
}

func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSimulateParity is the acceptance check for the simulation
// service: POST /v1/simulate returns the same metrics as an
// in-process sim.Engine run on the same result and scenario.
func TestSimulateParity(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	p := platform.Figure1()
	scenario := sim.Scenario{Periods: 200}

	resp := postJSON(t, ts.URL+"/v1/simulate", server.SimulateRequest{
		Problem:  "masterslave",
		Root:     "P1",
		Platform: platformJSON(t, p),
		Scenario: scenario,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var got server.SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.New(sim.Config{}).Run(context.Background(), res, scenario)
	if err != nil {
		t.Fatal(err)
	}

	gotJSON, _ := json.Marshal(got.Report)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("service report differs from in-process run:\n service: %s\n local:   %s", gotJSON, wantJSON)
	}
	if got.Report.RatioValue < 0.95 {
		t.Errorf("served replay ratio %v < 0.95", got.Report.RatioValue)
	}
}

func TestSimulateAllProblems(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	fig2 := platformJSON(t, platform.Figure2())
	cases := []server.SimulateRequest{
		{Problem: "multicast-sum", Root: "P0", Targets: []string{"P5", "P6"}, Platform: fig2},
		{Problem: "multicast-trees", Root: "P0", Targets: []string{"P5", "P6"}, Platform: fig2},
		{Problem: "broadcast", Root: "P0", Platform: fig2},
	}
	for _, req := range cases {
		resp := postJSON(t, ts.URL+"/v1/simulate", req)
		func() {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(resp.Body)
				t.Fatalf("%s: status %d: %s", req.Problem, resp.StatusCode, msg)
			}
			var out server.SimulateResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			if out.Report.Kind != "periodic" || out.Report.RatioValue < 0.95 {
				t.Errorf("%s: kind %s ratio %v", req.Problem, out.Report.Kind, out.Report.RatioValue)
			}
		}()
	}
}

func TestSimulateDynamicScenario(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	resp := postJSON(t, ts.URL+"/v1/simulate", server.SimulateRequest{
		Problem:  "masterslave",
		Root:     "P1",
		Platform: platformJSON(t, platform.Figure1()),
		Scenario: sim.Scenario{
			Tasks:     300,
			Slowdowns: []sim.Slowdown{{Node: "P4", Factor: 2, From: 0, Until: 100}},
		},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var out server.SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Report.Kind != "online" || out.Report.Done != 300 {
		t.Errorf("dynamic report: kind %s done %d", out.Report.Kind, out.Report.Done)
	}
}

// TestSimulateTrace exercises the trace option end to end: the
// response carries the structured event trace, two identical requests
// return byte-identical traces, and a tight MaxTraceEvents cap
// truncates with the flag set.
func TestSimulateTrace(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	req := server.SimulateRequest{
		Problem:  "masterslave",
		Root:     "P1",
		Platform: platformJSON(t, platform.Figure1()),
		Scenario: sim.Scenario{
			Tasks:     100,
			Seed:      5,
			Slowdowns: []sim.Slowdown{{Node: "P4", Factor: 2, From: 0, Until: 100}},
		},
		Trace: true,
	}
	fetch := func(url string) server.SimulateResponse {
		t.Helper()
		resp := postJSON(t, url+"/v1/simulate", req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, msg)
		}
		var out server.SimulateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := fetch(ts.URL)
	if len(first.Trace) == 0 || first.TraceTruncated {
		t.Fatalf("trace: %d records, truncated %v", len(first.Trace), first.TraceTruncated)
	}
	if first.Report.TraceEvents != int64(len(first.Trace)) {
		t.Errorf("report counts %d trace events, response carries %d",
			first.Report.TraceEvents, len(first.Trace))
	}
	for i, rec := range first.Trace {
		if rec.Seq != int64(i) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	second := fetch(ts.URL)
	a, _ := json.Marshal(first.Trace)
	b, _ := json.Marshal(second.Trace)
	if string(a) != string(b) {
		t.Error("same request, different traces")
	}

	// A tight cap truncates the trace but not the simulation.
	capped := newTestServer(t, server.Config{MaxTraceEvents: 10})
	got := fetch(capped.URL)
	if len(got.Trace) != 10 || !got.TraceTruncated {
		t.Errorf("capped trace: %d records, truncated %v", len(got.Trace), got.TraceTruncated)
	}
	if got.Report.Done != first.Report.Done {
		t.Errorf("trace cap changed the simulation: done %d vs %d", got.Report.Done, first.Report.Done)
	}
}

func TestSimulateRejections(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxSimPeriods: 100, MaxSimTasks: 50})
	fig1 := platformJSON(t, platform.Figure1())
	cases := []struct {
		req    server.SimulateRequest
		status int
	}{
		{server.SimulateRequest{Problem: "nope", Platform: fig1}, http.StatusBadRequest},
		{server.SimulateRequest{Problem: "masterslave", Platform: fig1,
			Scenario: sim.Scenario{Periods: 101}}, http.StatusRequestEntityTooLarge},
		{server.SimulateRequest{Problem: "masterslave", Platform: fig1,
			Scenario: sim.Scenario{Tasks: 51}}, http.StatusRequestEntityTooLarge},
		{server.SimulateRequest{Problem: "masterslave", Platform: fig1,
			Scenario: sim.Scenario{Arrivals: &sim.ArrivalSpec{Kind: "poisson", Rate: 1, Count: 51}}},
			http.StatusRequestEntityTooLarge},
		{server.SimulateRequest{Problem: "masterslave", Platform: fig1,
			Scenario: sim.Scenario{NodeLoad: map[string]sim.TraceSpec{"P1": {Kind: "wat"}}}}, http.StatusBadRequest},
		{server.SimulateRequest{Problem: "scatter", Root: "P1", Targets: []string{"P4"}, Platform: fig1,
			Scenario: sim.Scenario{Tasks: 10}}, http.StatusBadRequest}, // dynamic needs masterslave
		{server.SimulateRequest{Problem: "masterslave"}, http.StatusBadRequest}, // missing platform
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/simulate", c.req)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("case %d: status %d, want %d", i, resp.StatusCode, c.status)
		}
	}
}

func TestSimSweepNDJSON(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	resp := postJSON(t, ts.URL+"/v1/simsweep", server.SimSweepRequest{
		Problem:   "masterslave",
		Generator: &server.Generator{Count: 4, Sizes: []int{5, 6}, Seed: 3},
		Scenarios: []sim.Scenario{
			{Name: "static"},
			{Name: "hundred", Periods: 100},
		},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	records := 0
	for {
		var rec sim.CellRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		records++
		if rec.Err != "" {
			t.Errorf("cell %s failed: %s", rec.Cell, rec.Err)
			continue
		}
		if rec.Report == nil || rec.Report.Kind != "periodic" {
			t.Errorf("cell %s: bad report %+v", rec.Cell, rec.Report)
		}
	}
	if records != 8 { // 4 platforms x 2 scenarios
		t.Errorf("got %d records, want 8", records)
	}

	// The scenario grid re-simulates but must not re-solve: stats
	// show at most one LP per distinct platform.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Simulations.SweepCells != 8 || stats.Simulations.Periodic != 8 {
		t.Errorf("sim stats = %+v, want 8 periodic sweep cells", stats.Simulations)
	}
	if stats.Cache.Solves > 2 { // 2 distinct (seed,size) platforms
		t.Errorf("sweep ran %d LP solves for 2 distinct platforms", stats.Cache.Solves)
	}
}

func TestSimSweepCellCap(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxSweepJobs: 4})
	var scenarios []sim.Scenario
	for i := 0; i < 3; i++ {
		scenarios = append(scenarios, sim.Scenario{Periods: int64(10 + i)})
	}
	resp := postJSON(t, ts.URL+"/v1/simsweep", server.SimSweepRequest{
		Problem:   "masterslave",
		Generator: &server.Generator{Count: 2, Sizes: []int{5}},
		Scenarios: scenarios, // 2 x 3 = 6 cells > 4
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", resp.StatusCode)
	}
}

// TestSimulateDefaultTasksClamped pins the admission-control fix: a
// dynamic scenario that names neither tasks nor horizon must not run
// the engine's default task count past the operator's -max-sim-tasks.
func TestSimulateDefaultTasksClamped(t *testing.T) {
	ts := newTestServer(t, server.Config{MaxSimTasks: 50})
	resp := postJSON(t, ts.URL+"/v1/simulate", server.SimulateRequest{
		Problem:  "masterslave",
		Root:     "P1",
		Platform: platformJSON(t, platform.Figure1()),
		Scenario: sim.Scenario{Slowdowns: []sim.Slowdown{{Node: "P2", Factor: 2}}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var out server.SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Report.Done > 50 {
		t.Errorf("empty dynamic scenario ran %d tasks, above the 50-task cap", out.Report.Done)
	}
}

func TestSimSweepDuplicateScenarioLabels(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	resp := postJSON(t, ts.URL+"/v1/simsweep", server.SimSweepRequest{
		Problem:   "masterslave",
		Generator: &server.Generator{Count: 1, Sizes: []int{5}},
		Scenarios: []sim.Scenario{{Name: "x", Periods: 10}, {Name: "x", Periods: 100}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate scenario labels: status %d, want 400", resp.StatusCode)
	}
}

// TestSimSweepFeedsSolverHistograms verifies simsweep traffic is
// visible in the per-solver latency histograms like every other
// solving endpoint.
func TestSimSweepFeedsSolverHistograms(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	resp := postJSON(t, ts.URL+"/v1/simsweep", server.SimSweepRequest{
		Problem:   "masterslave",
		Generator: &server.Generator{Count: 2, Sizes: []int{5}},
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	h, ok := stats.Solvers["masterslave"]
	if !ok || h.Count != 2 {
		t.Errorf("simsweep cells missing from solver histograms: %+v", stats.Solvers)
	}
}
