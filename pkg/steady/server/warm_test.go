package server_test

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	"repro/pkg/steady/server"
)

// TestStatsLPCounters: solving a family of structurally identical
// platforms through /v1/solve must surface simplex pivots and
// warm-start traffic in the lp section of GET /v1/stats — the second
// and later misses reuse the first solve's optimal basis. Float-first
// is disabled so the counters reflect the pure-exact engine's pivot
// trajectory (the float-first counters have their own test).
func TestStatsLPCounters(t *testing.T) {
	ts := newTestServer(t, server.Config{DisableFloatFirst: true})

	base := platform.RandomConnected(rand.New(rand.NewSource(5)), 8, 8, 5, 5, 0)
	for step := int64(0); step < 3; step++ {
		q := platform.New()
		for i := 0; i < base.NumNodes(); i++ {
			w := base.Weight(i)
			if !w.Inf {
				w = platform.W(w.Val.Add(rat.New(step, 103)))
			}
			q.AddNode(base.Name(i), w)
		}
		for _, ed := range base.Edges() {
			q.AddEdge(ed.From, ed.To, ed.C.Add(rat.New(step, 101)))
		}
		decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
			Problem:  "masterslave",
			Platform: platformJSON(t, q),
		}))
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.LP.PivotsTotal <= 0 {
		t.Fatalf("lp.pivots_total = %d, want > 0: %+v", stats.LP.PivotsTotal, stats.LP)
	}
	if stats.LP.WarmSolves != 2 || stats.LP.ColdSolves != 1 {
		t.Fatalf("lp solves = %+v, want 2 warm + 1 cold", stats.LP)
	}
	if stats.LP.WarmPivots+stats.LP.ColdPivots != stats.LP.PivotsTotal {
		t.Fatalf("lp pivot split inconsistent: %+v", stats.LP)
	}
	if stats.LP.WarmPivots*5 > stats.LP.ColdPivots {
		t.Fatalf("warm pivots %d vs cold %d — warm start bought nothing", stats.LP.WarmPivots, stats.LP.ColdPivots)
	}
}
