package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/pkg/steady/obs"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/server"
	"repro/pkg/steady/sim"
)

// scrapeMetrics fetches GET /metrics and parses the exposition,
// which doubles as a validity check of the rendered format.
func scrapeMetrics(t *testing.T, base string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	samples, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return samples
}

// metricValue finds the sample with the given name whose labels
// include every given pair.
func metricValue(samples []obs.Sample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

func getStats(t *testing.T, base string) server.StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestMetricsStatsConsistency runs a scripted workload — two solves
// (one cache hit), one simulation — and checks that GET /metrics and
// GET /v1/stats are two views of the same registry: every number
// reported by both must agree, and the exposition must cover all four
// layers (lp, cache, sim, http).
func TestMetricsStatsConsistency(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	p := platformJSON(t, platform.Figure1())

	solveReq := server.SolveRequest{Problem: "masterslave", Root: "P1", Platform: p}
	first := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", solveReq))
	again := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", solveReq))
	if first.CacheHit || !again.CacheHit {
		t.Fatalf("expected miss then hit, got %v then %v", first.CacheHit, again.CacheHit)
	}
	simResp := postJSON(t, ts.URL+"/v1/simulate", server.SimulateRequest{
		Problem: "masterslave", Root: "P1", Platform: p,
		Scenario: sim.Scenario{Periods: 20},
	})
	io.Copy(io.Discard, simResp.Body)
	simResp.Body.Close()
	if simResp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", simResp.StatusCode)
	}

	stats := getStats(t, ts.URL)
	samples := scrapeMetrics(t, ts.URL)

	solver := first.Solver
	ss, ok := stats.Solvers[solver]
	if !ok {
		t.Fatalf("stats has no solver entry %q (have %v)", solver, stats.Solvers)
	}
	// 2 x /v1/solve plus the /v1/simulate solve (a cache hit).
	if ss.Count != 3 || ss.CacheHits != 2 || ss.Errors != 0 {
		t.Fatalf("solver stats: %+v, want count=3 hits=2 errors=0", ss)
	}
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"steady_solve_requests_total", map[string]string{"solver": solver}, float64(ss.Count)},
		{"steady_solve_cache_hits_total", map[string]string{"solver": solver}, float64(ss.CacheHits)},
		{"steady_server_sim_runs_total", nil, float64(stats.Simulations.Runs)},
		{"steady_server_sim_substrate_total", map[string]string{"kind": "periodic"}, float64(stats.Simulations.Periodic)},
		{"steady_http_requests_total", map[string]string{"endpoint": "POST /v1/solve", "code": "200"}, 2},
		{"steady_http_requests_total", map[string]string{"endpoint": "POST /v1/simulate", "code": "200"}, 1},
	}
	for _, c := range checks {
		got, ok := metricValue(samples, c.name, c.labels)
		if !ok {
			t.Errorf("metric %s%v missing from exposition", c.name, c.labels)
			continue
		}
		if got != c.want {
			t.Errorf("metric %s%v = %g, stats view says %g", c.name, c.labels, got, c.want)
		}
	}
	if stats.Simulations.Runs != 1 || stats.Simulations.Periodic != 1 {
		t.Errorf("sim stats: %+v, want runs=1 periodic=1", stats.Simulations)
	}

	// The histogram behind the JSON view: count equals requests, and
	// the cumulative finite buckets never exceed it.
	if v, ok := metricValue(samples, "steady_solve_duration_seconds_count",
		map[string]string{"solver": solver}); !ok || v != float64(ss.Count) {
		t.Errorf("duration histogram count = %g (present %v), want %d", v, ok, ss.Count)
	}
	for label, n := range ss.Buckets {
		if n < 0 || n > ss.Count {
			t.Errorf("bucket %q = %d outside [0, %d]", label, n, ss.Count)
		}
	}

	// All four layers must be represented in one scrape.
	for _, name := range []string{
		"steady_lp_pivots_total",              // lp
		"steady_lp_solves_total",              // lp
		"steady_cache_misses_total",           // batch
		"steady_cache_entries",                // batch
		"steady_sim_runs_total",               // sim engine
		"steady_sim_events_total",             // sim/event
		"steady_stage_duration_seconds_count", // spans
		"steady_server_uptime_seconds",        // server
		"steady_http_request_duration_seconds_count",
	} {
		if _, ok := metricValue(samples, name, nil); !ok {
			t.Errorf("layer metric %s missing from exposition", name)
		}
	}
}

// TestMetricsDisabled pins the off switch: no /metrics endpoint, an
// empty (but well-formed) /v1/stats, and solves still work.
func TestMetricsDisabled(t *testing.T) {
	ts := newTestServer(t, server.Config{DisableMetrics: true})
	p := platformJSON(t, platform.Figure1())
	res := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
		Problem: "masterslave", Root: "P1", Platform: p,
	}))
	if res.Throughput == "" {
		t.Fatal("solve failed with metrics disabled")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with metrics disabled: status %d, want 404", resp.StatusCode)
	}

	stats := getStats(t, ts.URL)
	if len(stats.Solvers) != 0 {
		t.Errorf("disabled metrics still reported solvers: %v", stats.Solvers)
	}
	if stats.Simulations != (server.SimStatsJSON{}) {
		t.Errorf("disabled metrics still reported simulations: %+v", stats.Simulations)
	}
	// The cache section comes from the cache itself, not the registry,
	// and keeps working.
	if stats.Cache.Solves == 0 {
		t.Errorf("cache stats empty with metrics disabled: %+v", stats.Cache)
	}
}

// TestRegistryInjection: a caller-supplied registry is the one the
// server records into, and Registry() hands it back.
func TestRegistryInjection(t *testing.T) {
	reg := obs.New()
	s := server.New(server.Config{Registry: reg})
	if s.Registry() != reg {
		t.Fatal("Registry() did not return the injected registry")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
		Problem: "masterslave", Root: "P1", Platform: platformJSON(t, platform.Figure1()),
	}))
	solves := reg.CounterVec("steady_lp_solves_total", "", "path")
	if solves.With("cold").Value()+solves.With("float").Value()+solves.With("warm").Value() == 0 {
		t.Error("injected registry saw no LP solves")
	}
	if s2 := server.New(server.Config{Registry: reg, DisableMetrics: true}); s2.Registry() != nil {
		t.Error("DisableMetrics did not win over an injected registry")
	}
}

// TestPprofMux: the standard profile index is served; the service
// routes are not on it.
func TestPprofMux(t *testing.T) {
	ts := httptest.NewServer(server.PprofMux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof mux serves service routes")
	}
}
