package server

import (
	"testing"
	"time"

	"repro/pkg/steady/obs"
)

// BenchmarkStatsUnderLoad exercises the request-recording hot path
// while a scraper snapshots continuously — the contention profile the
// registry rewrite targets. The historical implementation grew a
// per-solver histogram map under a single mutex, so every request
// thread serialized behind every /v1/stats reader; the registry
// version touches only atomics after a lock-free sync.Map lookup.
func BenchmarkStatsUnderLoad(b *testing.B) {
	m := newMetrics(obs.New())
	solvers := [...]string{"masterslave:P1:sr", "scatter:P1:sr", "multicast-trees:P0", "reduce:P1"}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				m.snapshot()
			}
		}
	}()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.observe(solvers[i%len(solvers)], 250*time.Microsecond, false, i%2 == 0)
			i++
		}
	})
	close(stop)
	<-done
}
