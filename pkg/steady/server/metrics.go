package server

import (
	"sync"
	"time"

	"repro/pkg/steady/obs"
)

// latencyBucketLabels are the /v1/stats names of the shared log-bucket
// scheme (obs.DurationBuckets): decades from 100µs to 10s, plus an
// overflow. They exist so the JSON view stays byte-compatible with the
// historical hand-rolled histograms while the data lives in the
// registry.
var latencyBucketLabels = []string{"<=100us", "<=1ms", "<=10ms", "<=100ms", "<=1s", "<=10s"}

const overflowBucket = ">10s"

// solverInst is the resolved instrument set of one solver, cached so
// the per-request hot path is a sync.Map load plus atomic updates —
// no registry or label-map lookups, and no shared mutex (the
// historical implementation allocated per-solver map entries under a
// single lock; BenchmarkStatsUnderLoad covers the difference).
type solverInst struct {
	requests *obs.Counter
	errors   *obs.Counter
	hits     *obs.Counter
	latency  *obs.Histogram
}

// metrics aggregates per-solver request latencies on the shared
// registry. The zero-value-with-nil-registry form is valid and makes
// every method a no-op (Config.DisableMetrics).
type metrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec
	errors   *obs.CounterVec
	hits     *obs.CounterVec
	latency  *obs.HistogramVec

	solvers sync.Map // solver name -> *solverInst
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{reg: reg}
	if reg == nil {
		return m
	}
	m.requests = reg.CounterVec("steady_solve_requests_total",
		"Solve requests observed, by solver (cache hits and errors included).", "solver")
	m.errors = reg.CounterVec("steady_solve_errors_total",
		"Failed solve requests, by solver.", "solver")
	m.hits = reg.CounterVec("steady_solve_cache_hits_total",
		"Solve requests served from the LP-solution cache, by solver.", "solver")
	m.latency = reg.HistogramVec("steady_solve_duration_seconds",
		"End-to-end solve request wall time, by solver.", nil, "solver")
	return m
}

// inst resolves (and caches) the named solver's instruments.
func (m *metrics) inst(solver string) *solverInst {
	if v, ok := m.solvers.Load(solver); ok {
		return v.(*solverInst)
	}
	in := &solverInst{
		requests: m.requests.With(solver),
		errors:   m.errors.With(solver),
		hits:     m.hits.With(solver),
		latency:  m.latency.With(solver),
	}
	actual, _ := m.solvers.LoadOrStore(solver, in)
	return actual.(*solverInst)
}

// observe records one finished request for the named solver.
func (m *metrics) observe(solver string, elapsed time.Duration, failed, cacheHit bool) {
	if m.reg == nil {
		return
	}
	in := m.inst(solver)
	in.requests.Inc()
	if failed {
		in.errors.Inc()
	}
	if cacheHit {
		in.hits.Inc()
	}
	in.latency.Observe(elapsed.Seconds())
}

// snapshot renders the per-solver histograms for GET /v1/stats,
// reading the same registry series /metrics exposes. Finite buckets
// are cumulative, Prometheus-style: "<=10ms" counts every request at
// or under 10ms, so "<=10s" equals Count minus the ">10s" overflow.
func (m *metrics) snapshot() map[string]SolverStatsJSON {
	out := map[string]SolverStatsJSON{}
	if m.reg == nil {
		return out
	}
	m.solvers.Range(func(k, v any) bool {
		in := v.(*solverInst)
		h := in.latency
		s := SolverStatsJSON{
			Count:     in.requests.Value(),
			Errors:    in.errors.Value(),
			CacheHits: in.hits.Value(),
			MaxMicros: time.Duration(h.Max() * float64(time.Second)).Microseconds(),
			Buckets:   make(map[string]int64, len(latencyBucketLabels)+1),
		}
		if n := h.Count(); n > 0 {
			mean := h.Sum() / float64(n)
			s.MeanMicros = time.Duration(mean * float64(time.Second)).Microseconds()
		}
		counts := h.Snapshot()
		cum := int64(0)
		for i, label := range latencyBucketLabels {
			cum += counts[i]
			s.Buckets[label] = cum
		}
		if over := counts[len(counts)-1]; over > 0 {
			s.Buckets[overflowBucket] = over
		}
		out[k.(string)] = s
		return true
	})
	return out
}

// simMetrics counts the server's simulation traffic on the registry.
// The deeper substrate metrics (events processed, heap high-water,
// extrapolations) come from the sim engine itself via sim.Config.Obs;
// these counters are the request-level view /v1/stats reports.
type simMetrics struct {
	reg        *obs.Registry
	runs       *obs.Counter
	errors     *obs.Counter
	sweepCells *obs.Counter
	substrate  *obs.CounterVec
}

func newSimMetrics(reg *obs.Registry) *simMetrics {
	m := &simMetrics{reg: reg}
	if reg == nil {
		return m
	}
	m.runs = reg.Counter("steady_server_sim_runs_total",
		"POST /v1/simulate runs (errors included).")
	m.errors = reg.Counter("steady_server_sim_errors_total",
		"Failed simulation runs and sweep cells.")
	m.sweepCells = reg.Counter("steady_server_sim_sweep_cells_total",
		"Cells simulated through POST /v1/simsweep (errors included).")
	m.substrate = reg.CounterVec("steady_server_sim_substrate_total",
		"Successful simulations by substrate.", "kind")
	return m
}

// observe records one finished simulation. kind is the report's
// substrate ("periodic", "online", "greedy"); sweep marks /v1/simsweep
// cells rather than single /v1/simulate runs.
func (m *simMetrics) observe(kind string, failed, sweep bool) {
	if m.reg == nil {
		return
	}
	if sweep {
		m.sweepCells.Inc()
	} else {
		m.runs.Inc()
	}
	if failed {
		m.errors.Inc()
		return
	}
	switch kind {
	case "periodic", "online", "greedy":
		m.substrate.With(kind).Inc()
	}
}

func (m *simMetrics) snapshot() SimStatsJSON {
	if m.reg == nil {
		return SimStatsJSON{}
	}
	return SimStatsJSON{
		Runs:       m.runs.Value(),
		Errors:     m.errors.Value(),
		SweepCells: m.sweepCells.Value(),
		Periodic:   m.substrate.With("periodic").Value(),
		Online:     m.substrate.With("online").Value(),
		Greedy:     m.substrate.With("greedy").Value(),
	}
}
