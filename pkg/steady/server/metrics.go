package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds of the per-solver latency
// histogram. Exact-simplex solves span microseconds (tiny platforms,
// cache hits) to seconds (large LPs), so the buckets are logarithmic.
var latencyBuckets = []struct {
	label string
	le    time.Duration
}{
	{"<=100us", 100 * time.Microsecond},
	{"<=1ms", time.Millisecond},
	{"<=10ms", 10 * time.Millisecond},
	{"<=100ms", 100 * time.Millisecond},
	{"<=1s", time.Second},
	{"<=10s", 10 * time.Second},
}

const overflowBucket = ">10s"

// hist is one solver's request-latency histogram.
type hist struct {
	count, errors, hits int64
	sum, max            time.Duration
	buckets             []int64 // len(latencyBuckets)+1, last is overflow
}

// metrics aggregates per-solver request latencies. One mutex guards
// the whole map: observations happen once per request (not per cache
// probe), so this is nowhere near the contention profile the sharded
// result cache exists for.
type metrics struct {
	mu        sync.Mutex
	perSolver map[string]*hist
}

func newMetrics() *metrics { return &metrics{perSolver: map[string]*hist{}} }

// observe records one finished request for the named solver.
func (m *metrics) observe(solver string, elapsed time.Duration, failed, cacheHit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.perSolver[solver]
	if !ok {
		h = &hist{buckets: make([]int64, len(latencyBuckets)+1)}
		m.perSolver[solver] = h
	}
	h.count++
	if failed {
		h.errors++
	}
	if cacheHit {
		h.hits++
	}
	h.sum += elapsed
	if elapsed > h.max {
		h.max = elapsed
	}
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if elapsed <= latencyBuckets[i].le {
			break
		}
	}
	h.buckets[i]++
}

// simMetrics counts simulation traffic with plain atomics: unlike
// the per-solver histograms there is no map to guard, so no mutex.
type simMetrics struct {
	runs, errors, sweepCells    atomic.Int64
	periodic, online, greedyRun atomic.Int64
}

// observe records one finished simulation. kind is the report's
// substrate ("periodic", "online", "greedy"); sweep marks /v1/simsweep
// cells rather than single /v1/simulate runs.
func (m *simMetrics) observe(kind string, failed, sweep bool) {
	if sweep {
		m.sweepCells.Add(1)
	} else {
		m.runs.Add(1)
	}
	if failed {
		m.errors.Add(1)
		return
	}
	switch kind {
	case "periodic":
		m.periodic.Add(1)
	case "online":
		m.online.Add(1)
	case "greedy":
		m.greedyRun.Add(1)
	}
}

func (m *simMetrics) snapshot() SimStatsJSON {
	return SimStatsJSON{
		Runs:       m.runs.Load(),
		Errors:     m.errors.Load(),
		SweepCells: m.sweepCells.Load(),
		Periodic:   m.periodic.Load(),
		Online:     m.online.Load(),
		Greedy:     m.greedyRun.Load(),
	}
}

// snapshot renders the histograms for GET /v1/stats. Finite buckets
// are cumulative, Prometheus-style: "<=10ms" counts every request at
// or under 10ms, so "<=10s" equals Count minus the ">10s" overflow.
func (m *metrics) snapshot() map[string]SolverStatsJSON {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]SolverStatsJSON, len(m.perSolver))
	for name, h := range m.perSolver {
		s := SolverStatsJSON{
			Count:     h.count,
			Errors:    h.errors,
			CacheHits: h.hits,
			MaxMicros: h.max.Microseconds(),
			Buckets:   make(map[string]int64, len(h.buckets)),
		}
		if h.count > 0 {
			s.MeanMicros = (h.sum / time.Duration(h.count)).Microseconds()
		}
		cum := int64(0)
		for i, b := range latencyBuckets {
			cum += h.buckets[i]
			s.Buckets[b.label] = cum
		}
		if over := h.buckets[len(latencyBuckets)]; over > 0 {
			s.Buckets[overflowBucket] = over
		}
		out[name] = s
	}
	return out
}
