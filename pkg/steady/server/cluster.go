package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/pkg/steady/batch"
	"repro/pkg/steady/cluster"
	"repro/pkg/steady/lp"
)

// errMissingSolver rejects a basis fetch without a solver name.
var errMissingSolver = errors.New("missing solver query parameter")

// ClusterResponse is the body of GET /v1/cluster: this peer's view of
// the membership, ring, and forwarding traffic. Peers also use the
// endpoint as their health probe (any 200 counts), and load tools
// (cmd/steadybench) aggregate the per-node Cache sections into the
// cluster-wide hit rate.
type ClusterResponse struct {
	// Enabled is false on a single-node server (no -peers); every
	// other field is then zero.
	Enabled bool `json:"enabled"`
	// Self is this peer's own base URL; NoForward reports degraded
	// basis-ship-only mode.
	Self      string `json:"self,omitempty"`
	NoForward bool   `json:"no_forward,omitempty"`
	// VirtualNodes is the per-peer virtual-node count; RingSize the
	// live ring's total virtual nodes (healthy peers x VirtualNodes),
	// which shrinks while peers are down.
	VirtualNodes int `json:"virtual_nodes,omitempty"`
	RingSize     int `json:"ring_size,omitempty"`
	// Peers is this peer's health view of the full membership.
	Peers []cluster.PeerStatus `json:"peers,omitempty"`
	// Counters reports forwarding and basis-shipping traffic.
	Counters cluster.Stats `json:"counters"`
	// Cache is this node's LP-solution cache section, duplicated from
	// /v1/stats so cluster-wide hit rates aggregate from one endpoint.
	Cache CacheStatsJSON `json:"cache"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, ClusterResponse{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, ClusterResponse{
		Enabled:      true,
		Self:         s.cluster.Self(),
		NoForward:    s.cluster.NoForward(),
		VirtualNodes: s.cluster.VirtualNodes(),
		RingSize:     s.cluster.RingSize(),
		Peers:        s.cluster.Health(),
		Counters:     s.cluster.Stats(),
		Cache:        cacheStatsJSON(s.cache.Stats()),
	})
}

// handleClusterBasis serves this node's cached warm basis for the
// solver named in the query — the supply side of warm-basis shipping.
// A basis is a few hundred bytes of model-term indices; shipping one
// lets a peer that must solve a key it does not own re-solve in ~0
// pivots instead of from scratch, with a byte-identical certified
// result (the lp warm-start contract). 204 means "no basis yet", which
// peers treat as a plain cold solve, not an error.
func (s *Server) handleClusterBasis(w http.ResponseWriter, r *http.Request) {
	solver := r.URL.Query().Get("solver")
	if solver == "" {
		writeErr(w, http.StatusBadRequest, errMissingSolver)
		return
	}
	b := s.cache.WarmBasis(solver)
	if b == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

// routeSolve decides where a solve-shaped request for key runs. When
// it returns true the response has been written (the request was
// forwarded to the owning peer and its answer relayed verbatim);
// false means "solve locally" — either this peer owns the key, the
// request already crossed the cluster once (the ForwardedHeader
// guard: one hop, never loops), forwarding is disabled, or the
// forward failed and graceful degradation turns the request into a
// local solve.
func (s *Server) routeSolve(w http.ResponseWriter, r *http.Request, key string, raw []byte) bool {
	if s.cluster == nil {
		return false
	}
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		s.cluster.NoteForwardedServed()
		return false
	}
	owner, ok := s.cluster.ShouldForward(key)
	if !ok {
		return false
	}
	resp, err := s.cluster.Forward(r.Context(), owner, r.URL.Path, "application/json", raw)
	if err != nil {
		// The owner is unreachable or answered 5xx: fall back to a
		// local solve. The client never sees a cluster-internal error.
		return false
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set(cluster.ServedByHeader, owner)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// shipBasis fetches a warm basis from the key's owner (or its ring
// successors) ahead of a local solve of a key this peer does not own.
// It returns nil — and the solve runs cold — whenever shipping cannot
// help: no cluster, we own the key, the request was forwarded to us
// (the sender already decided we should do the work), or the local
// cache already holds a warm basis for the solver (as good as a
// shipped one, and free).
func (s *Server) shipBasis(ctx context.Context, r *http.Request, key, solver string) *lp.Basis {
	if s.cluster == nil || r.Header.Get(cluster.ForwardedHeader) != "" {
		return nil
	}
	if s.cluster.Owner(key) == s.cluster.Self() {
		return nil
	}
	if s.cache.WarmBasis(solver) != nil {
		return nil
	}
	return s.cluster.FetchBasis(ctx, key, solver)
}

// keyID identifies one cache key before interning.
type keyID struct{ fp, solver string }

// keyInterner deduplicates the "fingerprint|solver" cache-key strings
// built on every request: hot traffic re-solves the same platforms, so
// the concatenation — one allocation per request on the hottest path —
// is cached and shared. Bounded: at capacity the table resets rather
// than grows (interning is an optimization, not a correctness
// requirement).
type keyInterner struct {
	mu sync.RWMutex
	m  map[keyID]string
}

// maxInternedKeys bounds the intern table. 65536 entries (~10 MiB of
// keys) covers any realistic hot set; hostile all-miss traffic just
// cycles the table.
const maxInternedKeys = 65536

func newKeyInterner() *keyInterner {
	return &keyInterner{m: make(map[keyID]string)}
}

// intern returns the canonical cache-key string for (fp, solver),
// building it at most once per table generation.
func (ki *keyInterner) intern(fp, solver string) string {
	id := keyID{fp, solver}
	ki.mu.RLock()
	k, ok := ki.m[id]
	ki.mu.RUnlock()
	if ok {
		return k
	}
	k = batch.Key(fp, solver)
	ki.mu.Lock()
	if exist, ok := ki.m[id]; ok {
		k = exist
	} else {
		if len(ki.m) >= maxInternedKeys {
			ki.m = make(map[keyID]string)
		}
		ki.m[id] = k
	}
	ki.mu.Unlock()
	return k
}
