package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/cluster"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/server"
)

// testCluster is a real multi-node cluster on loopback listeners: n
// servers that each know the full peer list, with the health loop NOT
// running so tests drive membership transitions deterministically via
// MarkPeer.
type testCluster struct {
	urls    []string
	servers []*server.Server
	https   []*http.Server
}

func newTestCluster(t *testing.T, n int, mutate func(i int, ccfg *cluster.Config, scfg *server.Config)) *testCluster {
	t.Helper()
	// The chicken-and-egg of self-addressed peers: listeners first (the
	// OS picks ports), then every config can name every URL.
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		urls[i] = "http://" + lis.Addr().String()
	}
	tc := &testCluster{urls: urls}
	for i, lis := range listeners {
		ccfg := cluster.Config{Self: urls[i], Peers: urls}
		scfg := server.Config{}
		if mutate != nil {
			mutate(i, &ccfg, &scfg)
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		scfg.Cluster = cl
		srv := server.New(scfg)
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(lis) }()
		tc.servers = append(tc.servers, srv)
		tc.https = append(tc.https, hs)
	}
	t.Cleanup(func() {
		for i := range tc.servers {
			_ = tc.https[i].Close()
			tc.servers[i].Close()
		}
	})
	return tc
}

// stop kills node i's HTTP listener (the process "crashes"); its
// Server and membership entry remain, as in a real outage.
func (tc *testCluster) stop(i int) { _ = tc.https[i].Close() }

// ownerOf returns the index of the node owning the key for p under
// solverName, according to node 0's full ring.
func (tc *testCluster) ownerOf(t *testing.T, p *platform.Platform, solverName string) int {
	t.Helper()
	key := batch.Key(steady.Fingerprint(p), solverName)
	owner := tc.servers[0].Cluster().Owner(key)
	for i, u := range tc.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %q not among %v", owner, tc.urls)
	return -1
}

// canonSolve strips the per-request fields (cache_hit, elapsed_us)
// and returns the response's canonical bytes: everything that must be
// byte-identical no matter which peer answered.
func canonSolve(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad solve response %s: %v", body, err)
	}
	delete(m, "cache_hit")
	delete(m, "elapsed_us")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func solverName(t *testing.T, spec steady.Spec) string {
	t.Helper()
	solver, err := steady.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return solver.Name()
}

// TestClusterForwardByteIdentity: the same solve POSTed to every node
// of a 3-node cluster answers byte-identically everywhere (modulo the
// per-request cache_hit/elapsed_us fields); non-owners forward (the
// X-Steady-Served-By header names the owner) and the owner solves
// exactly once.
func TestClusterForwardByteIdentity(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	p := platform.Figure1()
	owner := tc.ownerOf(t, p, solverName(t, steady.Spec{Problem: "masterslave", Root: "P1"}))

	req := server.SolveRequest{Problem: "masterslave", Root: "P1", Platform: platformJSON(t, p)}
	var canon []string
	forwarded := 0
	for i, u := range tc.urls {
		resp := postJSON(t, u+"/v1/solve", req)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d (%v): %s", i, resp.StatusCode, err, body)
		}
		if served := resp.Header.Get(cluster.ServedByHeader); served != "" {
			forwarded++
			if served != tc.urls[owner] {
				t.Fatalf("node %d forwarded to %q, owner is %q", i, served, tc.urls[owner])
			}
			if i == owner {
				t.Fatal("the owner forwarded to itself")
			}
		}
		canon = append(canon, canonSolve(t, body))
	}
	for i := 1; i < len(canon); i++ {
		if canon[i] != canon[0] {
			t.Fatalf("node %d answered differently:\n%s\nvs\n%s", i, canon[i], canon[0])
		}
	}
	if forwarded != 2 {
		t.Fatalf("%d of 3 requests were forwarded, want 2 (all but the owner's)", forwarded)
	}
	// One logical solve cluster-wide: only the owner's cache worked.
	for i, srv := range tc.servers {
		want := int64(0)
		if i == owner {
			want = 1
		}
		if got := srv.Cache().Stats().Solves; got != want {
			t.Errorf("node %d ran %d solves, want %d", i, got, want)
		}
	}
}

// TestClusterSingleFlight: concurrent identical requests sprayed over
// all three nodes collapse into ONE solve cluster-wide — forwarding
// concentrates the key on its owner, whose cache single-flights the
// misses.
func TestClusterSingleFlight(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	p := platform.Figure1()
	req := server.SolveRequest{Problem: "masterslave", Root: "P1", Platform: platformJSON(t, p)}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	const perNode = 8
	var wg sync.WaitGroup
	errs := make(chan error, 3*perNode)
	for _, u := range tc.urls {
		for r := 0; r < perNode; r++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
				}
			}(u)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var solves int64
	for _, srv := range tc.servers {
		solves += srv.Cache().Stats().Solves
	}
	if solves != 1 {
		t.Fatalf("cluster ran %d solves for one key under concurrency, want 1", solves)
	}
}

// TestClusterBasisShipping: in NoForward mode a non-owner must solve a
// remote key locally — it ships the owner's warm basis first, so its
// local solve is warm (the basis reinstalls the owner's terminal
// vertex) and byte-identical to the owner's answer.
func TestClusterBasisShipping(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int, ccfg *cluster.Config, scfg *server.Config) {
		ccfg.NoForward = true
	})
	p := platform.Figure1()
	owner := tc.ownerOf(t, p, solverName(t, steady.Spec{Problem: "masterslave", Root: "P1"}))
	req := server.SolveRequest{Problem: "masterslave", Root: "P1", Platform: platformJSON(t, p)}

	// The owner solves first and caches its terminal basis.
	resp := postJSON(t, tc.urls[owner]+"/v1/solve", req)
	ownerBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner solve: status %d: %s", resp.StatusCode, ownerBody)
	}

	// A non-owner now solves the same key locally (NoForward): it must
	// fetch the owner's basis and answer identically.
	other := (owner + 1) % 3
	resp = postJSON(t, tc.urls[other]+"/v1/solve", req)
	otherBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner solve: status %d: %s", resp.StatusCode, otherBody)
	}
	if canonSolve(t, otherBody) != canonSolve(t, ownerBody) {
		t.Fatalf("basis-shipped solve differs from owner's:\n%s\nvs\n%s", otherBody, ownerBody)
	}
	st := tc.servers[other].Cluster().Stats()
	if st.BasisShips != 1 {
		t.Fatalf("non-owner shipped %d bases, want 1", st.BasisShips)
	}
	cs := tc.servers[other].Cache().Stats()
	if cs.Solves != 1 || cs.WarmSolves != 1 {
		t.Fatalf("non-owner ran %d solves (%d warm), want 1 warm solve from the shipped basis",
			cs.Solves, cs.WarmSolves)
	}
}

// TestClusterOwnerDownFallback: with the owner dead, a request for its
// key still succeeds — the forward fails, the peer is marked down, the
// solve falls back to a cold local run, and later requests do not even
// attempt the forward (the live ring rebalanced).
func TestClusterOwnerDownFallback(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	p := platform.Figure1()
	name := solverName(t, steady.Spec{Problem: "masterslave", Root: "P1"})
	owner := tc.ownerOf(t, p, name)
	tc.stop(owner)

	other := (owner + 1) % 3
	req := server.SolveRequest{Problem: "masterslave", Root: "P1", Platform: platformJSON(t, p)}
	resp := postJSON(t, tc.urls[other]+"/v1/solve", req)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve with dead owner: status %d: %s (graceful degradation must never 5xx)",
			resp.StatusCode, body)
	}
	st := tc.servers[other].Cluster().Stats()
	if st.Forwards != 1 || st.ForwardErrors != 1 {
		t.Fatalf("stats after dead-owner solve: %+v, want exactly one failed forward", st)
	}
	// The failed forward marked the owner down: the key moved to a
	// survivor on the live ring, so the next request from `other`
	// either serves locally or forwards to the other survivor — never
	// the corpse.
	if newOwner := tc.servers[other].Cluster().Owner(batch.Key(steady.Fingerprint(p), name)); newOwner == tc.urls[owner] {
		t.Fatalf("dead owner %q still owns the key on the live ring", newOwner)
	}
	resp = postJSON(t, tc.urls[other]+"/v1/solve", req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second solve: status %d", resp.StatusCode)
	}
	if st := tc.servers[other].Cluster().Stats(); st.ForwardErrors != 1 {
		t.Fatalf("second solve attempted the dead owner again: %+v", st)
	}
}

// TestClusterEndpointSingleNode: an unclustered server still serves
// GET /v1/cluster, reporting enabled=false.
func TestClusterEndpointSingleNode(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled {
		t.Fatal("single-node server claims to be clustered")
	}
}

// TestClusterEndpoint: a clustered node reports its membership view,
// ring size, and counters.
func TestClusterEndpoint(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	resp, err := http.Get(tc.urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || out.Self != tc.urls[0] || len(out.Peers) != 3 {
		t.Fatalf("cluster view: %+v", out)
	}
	if out.RingSize != 3*out.VirtualNodes {
		t.Fatalf("ring size %d with %d virtual nodes per peer", out.RingSize, out.VirtualNodes)
	}
}

// TestClusterBasisEndpoint: /v1/cluster/basis serves 204 before any
// solve, then the solver's terminal basis after one.
func TestClusterBasisEndpoint(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	p := platform.Figure1()
	name := solverName(t, steady.Spec{Problem: "masterslave", Root: "P1"})
	owner := tc.ownerOf(t, p, name)
	u := tc.urls[owner] + cluster.BasisPath + "?solver=" + name

	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("basis before any solve: status %d, want 204", resp.StatusCode)
	}

	pr := postJSON(t, tc.urls[owner]+"/v1/solve", server.SolveRequest{
		Problem: "masterslave", Root: "P1", Platform: platformJSON(t, p)})
	io.Copy(io.Discard, pr.Body)
	pr.Body.Close()

	resp, err = http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"entries"`)) {
		t.Fatalf("basis after solve: status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Get(tc.urls[owner] + cluster.BasisPath)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("basis without solver param: status %d, want 400", resp.StatusCode)
	}
}

// TestClusterForwardLoopGuard: a request that already carries the
// forwarded header is served locally even by a non-owner, so rings
// that disagree can never bounce a request around.
func TestClusterForwardLoopGuard(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	p := platform.Figure1()
	owner := tc.ownerOf(t, p, solverName(t, steady.Spec{Problem: "masterslave", Root: "P1"}))
	other := (owner + 1) % 3

	raw, err := json.Marshal(server.SolveRequest{
		Problem: "masterslave", Root: "P1", Platform: platformJSON(t, p)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, tc.urls[other]+"/v1/solve", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded-marked request: status %d", resp.StatusCode)
	}
	// Served locally by the non-owner: its cache solved, the owner's
	// never saw the key, and the hop was counted.
	if got := tc.servers[other].Cache().Stats().Solves; got != 1 {
		t.Fatalf("non-owner ran %d solves, want 1 (local serve)", got)
	}
	if got := tc.servers[owner].Cache().Stats().Solves; got != 0 {
		t.Fatalf("owner ran %d solves for a request that must not travel", got)
	}
	if st := tc.servers[other].Cluster().Stats(); st.ForwardedServed != 1 || st.Forwards != 0 {
		t.Fatalf("loop-guard stats: %+v", st)
	}
}
