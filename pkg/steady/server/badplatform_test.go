package server_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/pkg/steady/server"
)

// TestSolveInvalidPlatforms posts every class of malformed platform
// JSON to /v1/solve and requires a clean 400 with an error body.
// Before platform.ReadJSON validated decoded input, several of these
// payloads flowed into the panicking AddNode/AddEdge builders and
// crashed the handler (httptest turns that into a closed connection,
// postJSON would fail) — this test is the regression fence.
func TestSolveInvalidPlatforms(t *testing.T) {
	ts := newTestServer(t, server.Config{})
	cases := []struct {
		name string
		json string
	}{
		{"zero weight", `{"nodes":[{"name":"A","w":"0"}],"edges":[]}`},
		{"negative weight", `{"nodes":[{"name":"A","w":"-3"}],"edges":[]}`},
		{"unparsable weight", `{"nodes":[{"name":"A","w":"fast"}],"edges":[]}`},
		{"duplicate node name", `{"nodes":[{"name":"A","w":"1"},{"name":"A","w":"2"}],"edges":[]}`},
		{"empty platform", `{"nodes":[],"edges":[]}`},
		{"zero cost", `{"nodes":[{"name":"A","w":"1"},{"name":"B","w":"1"}],"edges":[{"from":"A","to":"B","c":"0"}]}`},
		{"negative cost", `{"nodes":[{"name":"A","w":"1"},{"name":"B","w":"1"}],"edges":[{"from":"A","to":"B","c":"-1"}]}`},
		{"self loop", `{"nodes":[{"name":"A","w":"1"}],"edges":[{"from":"A","to":"A","c":"1"}]}`},
		{"unknown endpoint", `{"nodes":[{"name":"A","w":"1"}],"edges":[{"from":"A","to":"B","c":"1"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
				Problem:  "masterslave",
				Platform: json.RawMessage(tc.json),
			})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e server.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("undecodable error body (%v)", err)
			}
		})
	}
}
