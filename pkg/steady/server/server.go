// Package server exposes the pkg/steady solver registry as a
// long-running HTTP service (cmd/steadyd is its binary shell). It is
// the service layer the ROADMAP's "heavy traffic" north star calls
// for: every solve is an exact-rational LP, results are shared
// through the sharded pkg/steady/batch cache, and the endpoints are
// plain JSON so clients need no knowledge of the paper.
//
// Endpoints (full reference with schemas in docs/API.md):
//
//	GET  /v1/solvers  registered problems and their parameters
//	POST /v1/solve    one platform + spec -> certified exact result
//	POST /v1/sweep    platform family -> streamed NDJSON/CSV records
//	POST /v1/simulate one platform + spec + scenario -> simulation report
//	POST /v1/simsweep platform family x scenarios -> streamed records
//	GET  /v1/healthz  liveness probe
//	GET  /v1/stats    cache/simulation counters and latency histograms
//	GET  /v1/cluster  cluster membership, ring, and forwarding counters
//	GET  /v1/cluster/basis  this node's warm LP basis for a solver
//	GET  /metrics     the same registry in Prometheus text format
//
// The server defends the exact simplex — whose worst case is
// exponential — with three request limits: platform size caps
// (Config.MaxNodes/MaxEdges, HTTP 413), a per-solve timeout
// (Config.SolveTimeout, HTTP 504), and a bound on concurrently
// running solves (Config.MaxInFlight; excess requests queue up to
// Config.QueueWait for a slot, then answer 503 with a Retry-After
// header — saturation is reported, never hidden in an unbounded
// queue). Cache hits bypass the concurrency gate entirely, so a hot
// working set stays fast no matter how slow the cold traffic is.
//
// With Config.Cluster set, several servers form one logical service:
// a consistent-hash ring over the static peer list assigns every
// (fingerprint, solver) cache key an owner, /v1/solve requests for
// keys owned elsewhere are forwarded one hop to the owner (so the
// whole cluster shares one cache entry and one in-flight solve per
// key), and local solves of non-owned keys first ship the owner's
// warm basis. See pkg/steady/cluster and docs/ARCHITECTURE.md.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/cluster"
	"repro/pkg/steady/control"
	"repro/pkg/steady/control/forecast"
	"repro/pkg/steady/obs"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/sim"
	"repro/pkg/steady/sim/event"
)

// Config tunes a Server. The zero value selects sensible defaults
// for every field.
type Config struct {
	// Workers bounds the sweep engine's worker pool; 0 = GOMAXPROCS.
	Workers int
	// CacheShards is the LP-solution cache's shard count; 0 selects
	// batch.DefaultCacheShards.
	CacheShards int
	// CacheBound caps cached entries; 0 selects
	// batch.DefaultCacheBound, negative means unbounded.
	CacheBound int
	// MaxNodes and MaxEdges cap accepted platform sizes (the exact
	// simplex is exponential in the worst case); 0 = 64 and 1024.
	MaxNodes int
	MaxEdges int
	// MaxSweepJobs caps the platforms in one sweep; 0 = 1024.
	MaxSweepJobs int
	// SolveTimeout bounds one LP solve; 0 = 30s.
	SolveTimeout time.Duration
	// MaxInFlight bounds concurrently running solves across all
	// requests; 0 = 2 x GOMAXPROCS.
	MaxInFlight int
	// QueueWait bounds how long a request waits for a MaxInFlight
	// slot before the server answers 503 with a Retry-After header;
	// 0 = 5s, negative = wait as long as the client does (the pre-
	// backpressure behavior). Cache hits never wait.
	QueueWait time.Duration
	// MaxBodyBytes caps request bodies; 0 = 8 MiB.
	MaxBodyBytes int64
	// SimTimeout bounds one simulation (after its solve); 0 = 30s.
	SimTimeout time.Duration
	// MaxSimPeriods caps a requested static replay horizon and
	// MaxSimTasks/MaxSimHorizon cap dynamic scenarios, bounding the
	// work a request can ask for before it starts; 0 = 65536 periods,
	// 200000 tasks, 1e6 time units.
	MaxSimPeriods int64
	MaxSimTasks   int
	MaxSimHorizon float64
	// MaxTraceEvents caps the structured event trace a traced
	// /v1/simulate request may return; longer runs truncate the trace
	// and set trace_truncated. 0 = 100000.
	MaxTraceEvents int
	// DisableFloatFirst turns off the float-first LP path for cache
	// misses (see batch.Cache.SetFloatFirst). The zero value keeps it
	// enabled: the float64 search with an exact rational certificate
	// returns the same certified-exact results an order of magnitude
	// faster on large platforms; /v1/stats' lp section reports the
	// float/repair/fallback traffic.
	DisableFloatFirst bool
	// Registry, when non-nil, is the metrics registry the server
	// records into and GET /metrics renders — supply one to share a
	// registry with embedding code. When nil, New creates a private
	// registry (unless DisableMetrics is set).
	Registry *obs.Registry
	// DisableMetrics turns the observability layer off entirely: no
	// registry is created, GET /metrics answers 404, /v1/stats reports
	// empty counters, and request handling records nothing.
	// DisableMetrics wins over a supplied Registry.
	DisableMetrics bool
	// Cluster, when non-nil, joins this server to a multi-node
	// cluster (see pkg/steady/cluster): /v1/solve requests for keys
	// owned by healthy peers are forwarded to them, /v1/cluster and
	// /v1/cluster/basis are served, and local solves of non-owned
	// keys ship the owner's warm basis. The server takes ownership:
	// Server.Close closes the cluster. The caller decides when to
	// start health probing (cluster.Cluster.Start) — typically after
	// the listener is up.
	Cluster *cluster.Cluster
	// Control tunes the online scheduling control plane behind
	// /v1/deployments (see pkg/steady/control): epoch length, drift
	// threshold, re-solve budget, watcher limits. The zero value
	// selects that package's defaults. Control.Solve and Control.Obs
	// are overridden by the server — deployments solve through the
	// shared LP cache and concurrency gate and report into the
	// server's registry; Control.SolveTimeout defaults to the server's
	// SolveTimeout.
	Control control.Config
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheShards <= 0 {
		c.CacheShards = batch.DefaultCacheShards
	}
	if c.CacheBound == 0 {
		c.CacheBound = batch.DefaultCacheBound
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 64
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 1024
	}
	if c.MaxSweepJobs <= 0 {
		c.MaxSweepJobs = 1024
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueWait == 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.SimTimeout <= 0 {
		c.SimTimeout = 30 * time.Second
	}
	if c.MaxSimPeriods <= 0 {
		c.MaxSimPeriods = 65536
	}
	if c.MaxSimTasks <= 0 {
		c.MaxSimTasks = 200000
	}
	if c.MaxSimHorizon <= 0 {
		c.MaxSimHorizon = 1e6
	}
	if c.MaxTraceEvents <= 0 {
		c.MaxTraceEvents = 100000
	}
	return c
}

// Server is the HTTP solve service. Construct with New; serve its
// Handler with net/http. A Server is safe for concurrent use and
// holds no per-request state beyond the shared cache and counters.
type Server struct {
	cfg        Config
	cache      *batch.Cache
	engine     *batch.Engine
	simEngine  *sim.Engine
	sem        chan struct{}
	reg        *obs.Registry
	metrics    *metrics
	simMetrics *simMetrics
	cluster    *cluster.Cluster
	manager    *control.Manager
	keys       *keyInterner
	start      time.Time
	mux        *http.ServeMux
}

// New builds a Server from cfg (zero value = defaults). The solve
// handler and the sweep engine share one sharded LP-solution cache,
// so a platform solved through either endpoint is a cache hit for
// both.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	bound := cfg.CacheBound
	if bound < 0 {
		bound = 0 // batch.NewCache: <= 0 means unbounded
	}
	cache := batch.NewCache(cfg.CacheShards, bound)
	cache.SetFloatFirst(!cfg.DisableFloatFirst)
	// One registry serves every layer: the request handlers, the LP
	// cache (and through it pkg/steady/lp), and the simulation engine.
	// DisableMetrics leaves it nil, which every instrument treats as
	// "record nothing" at the cost of a nil check.
	reg := cfg.Registry
	if cfg.DisableMetrics {
		reg = nil
	} else if reg == nil {
		reg = obs.New()
	}
	if reg != nil {
		cache.SetObs(reg)
	}
	engine := batch.NewWithCache(cfg.Workers, cache)
	s := &Server{
		cfg:    cfg,
		cache:  cache,
		engine: engine,
		// The simulation engine sweeps through the same batch engine,
		// so a platform solved by any endpoint is a cache hit for all.
		// CellTimeout applies the per-simulation limit to every sweep
		// cell individually.
		simEngine: sim.NewWithBatch(sim.Config{
			MaxPeriods:  cfg.MaxSimPeriods,
			Workers:     cfg.Workers,
			CellTimeout: cfg.SimTimeout,
			Obs:         reg,
		}, engine),
		sem:        make(chan struct{}, cfg.MaxInFlight),
		reg:        reg,
		metrics:    newMetrics(reg),
		simMetrics: newSimMetrics(reg),
		cluster:    cfg.Cluster,
		keys:       newKeyInterner(),
		start:      time.Now(),
		mux:        http.NewServeMux(),
	}
	if s.cluster != nil {
		// A cluster built without its own registry reports into the
		// server's, so steady_cluster_* lands next to everything else.
		s.cluster.SetObs(reg)
	}
	// The control plane solves through the same cache and concurrency
	// gate as every other endpoint, and reports into the same registry.
	ctl := cfg.Control
	ctl.Solve = s.controlSolve
	ctl.Obs = reg
	if ctl.SolveTimeout <= 0 {
		ctl.SolveTimeout = cfg.SolveTimeout
	}
	s.manager = control.NewManager(ctl)
	if reg != nil {
		reg.GaugeFunc("steady_server_uptime_seconds",
			"Seconds since the server was constructed.",
			func() float64 { return time.Since(s.start).Seconds() })
		reg.GaugeFunc("steady_server_solve_slots_inuse",
			"Occupied MaxInFlight solve/simulation slots.",
			func() float64 { return float64(len(s.sem)) })
	}
	s.mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/simsweep", s.handleSimSweep)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/cluster/basis", s.handleClusterBasis)
	s.mux.HandleFunc("POST /v1/deployments", s.handleDeploymentCreate)
	s.mux.HandleFunc("GET /v1/deployments", s.handleDeploymentList)
	s.mux.HandleFunc("GET /v1/deployments/{id}", s.handleDeploymentGet)
	s.mux.HandleFunc("DELETE /v1/deployments/{id}", s.handleDeploymentDelete)
	s.mux.HandleFunc("POST /v1/deployments/{id}/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("GET /v1/deployments/{id}/watch", s.handleWatch)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Cluster returns the cluster this server joined, nil for a
// single-node server.
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// Close releases the server's background resources: the control
// plane's epoch loop (evicting its watch subscribers), and the
// cluster's health loop and peer connections. It is safe to call more
// than once.
func (s *Server) Close() {
	s.manager.Close()
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// Handler returns the service's HTTP handler: the route mux, wrapped
// in the RED middleware (requests by endpoint and status, in-flight
// gauge, latency histograms by endpoint) when metrics are enabled.
func (s *Server) Handler() http.Handler {
	if s.reg == nil {
		return s.mux
	}
	requests := s.reg.CounterVec("steady_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "endpoint", "code")
	durations := s.reg.HistogramVec("steady_http_request_duration_seconds",
		"HTTP request wall time, by route pattern.", nil, "endpoint")
	inflight := s.reg.Gauge("steady_http_inflight_requests",
		"HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		inflight.Add(-1)
		// ServeMux stamps the matched route pattern onto the request,
		// so the label is the bounded route set ("POST /v1/solve"),
		// never the raw URL. Unmatched requests (404/405) keep an
		// empty pattern.
		endpoint := r.Pattern
		if endpoint == "" {
			endpoint = "unmatched"
		}
		requests.With(endpoint, strconv.Itoa(sw.code)).Inc()
		durations.With(endpoint).Observe(time.Since(start).Seconds())
	})
}

// Registry returns the server's metrics registry, nil when
// Config.DisableMetrics is set. Embedding callers may register their
// own instruments on it or render it out of band.
func (s *Server) Registry() *obs.Registry { return s.reg }

// statusWriter captures the response status for the RED middleware.
// It forwards Flush so the sweep endpoints keep streaming.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// Cache returns the server's LP-solution cache (shared by /v1/solve
// and /v1/sweep), mainly for tests and embedding callers.
func (s *Server) Cache() *batch.Cache { return s.cache }

// errSaturated reports that every MaxInFlight slot stayed busy for
// the whole QueueWait window; statusFor maps it to 503 and writeErr
// adds a Retry-After header. Load shedding beats unbounded queueing:
// a client told to retry in a second costs nothing while it waits, a
// queued request holds a connection and a goroutine.
var errSaturated = errors.New("server saturated: all solve slots busy")

// acquire claims a solve slot. A free slot is claimed immediately;
// otherwise the request waits up to QueueWait (absorbing bursts), then
// gives up with errSaturated. A negative QueueWait waits as long as
// the client does.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.cfg.QueueWait < 0 {
		select {
		case s.sem <- struct{}{}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return errSaturated
	}
}

func (s *Server) release() { <-s.sem }

// gatedSolve runs one solve under the concurrency gate and the
// per-solve timeout. It is the only path on which LPs run, for both
// endpoints, so MaxInFlight bounds the whole server. The slot is
// released through the steady.OnSolveDone completion hook rather
// than at return: a timed-out request answers 504 promptly, but its
// uninterruptible simplex keeps its slot until it actually exits, so
// retry storms of worst-case platforms queue instead of piling up
// unbounded background LPs.
func (s *Server) gatedSolve(ctx context.Context, solver steady.Solver, p *platform.Platform, opts ...steady.SolveOption) (*steady.Result, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	sctx, cancel := context.WithTimeout(ctx, s.cfg.SolveTimeout)
	defer cancel()
	return solver.Solve(sctx, p, append(opts, steady.OnSolveDone(s.release))...)
}

// gatedSolver adapts gatedSolve to the steady.Solver interface for
// the sweep engine. Name is the inner solver's name, so sweep cache
// keys coincide with /v1/solve cache keys.
type gatedSolver struct {
	s     *Server
	inner steady.Solver
}

func (g gatedSolver) Name() string { return g.inner.Name() }

func (g gatedSolver) Solve(ctx context.Context, p *platform.Platform, opts ...steady.SolveOption) (*steady.Result, error) {
	return g.s.gatedSolve(ctx, g.inner, p, opts...)
}

// solveFn is the cache-miss closure /v1/solve and /v1/simulate hand to
// the cache: a gated solve that, when this peer is clustered and does
// not own the key, first tries to warm-start from the owner's shipped
// basis. The shipped WarmStart is appended after the cache's own
// options and options apply in order, so it wins exactly when the
// local cache had nothing (shipBasis only fetches then).
func (s *Server) solveFn(r *http.Request, key string, solver steady.Solver, p *platform.Platform) func(context.Context, ...steady.SolveOption) (*steady.Result, error) {
	return func(sctx context.Context, opts ...steady.SolveOption) (*steady.Result, error) {
		if b := s.shipBasis(sctx, r, key, solver.Name()); b != nil {
			opts = append(opts, steady.WarmStart(b))
		}
		return s.gatedSolve(sctx, solver, p, opts...)
	}
}

// --- handlers ---------------------------------------------------------

// problemMeta is static documentation metadata for GET /v1/solvers.
// The registry itself only knows names; parameter requirements live
// in each factory's validation, mirrored here for discoverability.
var problemMeta = map[string]struct {
	desc         string
	needsTargets bool
	bothModels   bool
}{
	"masterslave":     {"§3.1 SSMS(G): steady-state master-slave tasking", false, true},
	"scatter":         {"§3.2 SSPS(G): pipelined personalized messages", true, true},
	"multicast":       {"§3.3 max-operator relaxation (upper bound, possibly unachievable)", true, false},
	"multicast-sum":   {"§3.3 sum-LP (achievable lower bound)", true, false},
	"multicast-trees": {"§4.3 exact Steiner-arborescence packing", true, false},
	"broadcast":       {"§3.3 bound with all reachable nodes as targets", false, false},
	"reduce":          {"§4.2 reduce = broadcast on the reversed graph", false, false},
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	resp := SolversResponse{}
	for _, name := range steady.Problems() {
		info := SolverInfo{Problem: name, Models: []string{steady.SendAndReceive.String()}}
		if meta, ok := problemMeta[name]; ok {
			info.Description = meta.desc
			info.NeedsTargets = meta.needsTargets
			if meta.bothModels {
				info.Models = append(info.Models, steady.SendOrReceive.String())
			}
		}
		resp.Problems = append(resp.Problems, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// The raw body is kept: if the key's owner is another peer the
	// bytes are forwarded verbatim instead of being re-encoded.
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req SolveRequest
	if !decodeStrict(w, raw, &req) {
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	solver, err := steady.New(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	p, err := decodePlatform(req.Platform, s.cfg.MaxNodes, s.cfg.MaxEdges)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}

	start := time.Now()
	key := s.keys.intern(steady.Fingerprint(p), solver.Name())
	if s.routeSolve(w, r, key, raw) {
		return
	}
	res, err, hit := s.cache.DoSolve(r.Context(), key, solver.Name(), s.solveFn(r, key, solver, p))
	elapsed := time.Since(start)
	s.metrics.observe(solver.Name(), elapsed, err != nil, hit)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse(res, hit, elapsed.Microseconds()))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	model, err := parseModel(req.Model)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	solver, err := steady.New(steady.Spec{Problem: req.Problem, Root: req.Root, Targets: req.Targets, Model: model})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	jobs, err := s.sweepJobs(&req, gatedSolver{s: s, inner: solver})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}

	var sink batch.Sink
	out := &flushWriter{w: w}
	switch req.Format {
	case "", "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink = batch.JSONSink(out)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		sink = batch.CSVSink(out)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (ndjson|csv)", req.Format))
		return
	}
	w.WriteHeader(http.StatusOK)

	// From here the status is committed; per-record errors travel in
	// the records themselves, and each record is flushed so clients
	// see results as they complete. A sink error means the client
	// went away — the engine stops feeding and in-flight solves
	// finish into the shared cache.
	observing := func(o batch.Outcome) error {
		s.metrics.observe(o.Solver, o.Elapsed, o.Err != nil, o.CacheHit)
		return sink(o)
	}
	_ = s.engine.Stream(r.Context(), jobs, observing)
}

// checkScenario validates a scenario and enforces the simulation
// resource caps: over-limit scenarios are rejected up front with 413
// rather than started and timed out.
// It may tighten the scenario in place: a dynamic scenario that sets
// neither tasks nor horizon would otherwise run the engine's default
// task count, silently bypassing an operator's stricter -max-sim-tasks.
func (s *Server) checkScenario(sc *sim.Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	if sc.Periods > s.cfg.MaxSimPeriods {
		return errTooLarge{fmt.Sprintf("scenario asks %d periods, limit %d", sc.Periods, s.cfg.MaxSimPeriods)}
	}
	if sc.Tasks > s.cfg.MaxSimTasks {
		return errTooLarge{fmt.Sprintf("scenario asks %d tasks, limit %d", sc.Tasks, s.cfg.MaxSimTasks)}
	}
	if sc.Horizon > s.cfg.MaxSimHorizon {
		return errTooLarge{fmt.Sprintf("scenario horizon %g exceeds limit %g", sc.Horizon, s.cfg.MaxSimHorizon)}
	}
	if n := sc.Arrivals.NumArrivals(); n > s.cfg.MaxSimTasks {
		return errTooLarge{fmt.Sprintf("scenario arrivals release %d tasks, limit %d", n, s.cfg.MaxSimTasks)}
	}
	if sc.Dynamic() && sc.Tasks == 0 && sc.Horizon == 0 && sc.Arrivals == nil && sim.DefaultDynamicTasks > s.cfg.MaxSimTasks {
		sc.Tasks = s.cfg.MaxSimTasks
	}
	return nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	model, err := parseModel(req.Model)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	solver, err := steady.New(steady.Spec{Problem: req.Problem, Root: req.Root, Targets: req.Targets, Model: model})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkScenario(&req.Scenario); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	p, err := decodePlatform(req.Platform, s.cfg.MaxNodes, s.cfg.MaxEdges)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}

	start := time.Now()
	key := s.keys.intern(steady.Fingerprint(p), solver.Name())
	res, err, hit := s.cache.DoSolve(r.Context(), key, solver.Name(), s.solveFn(r, key, solver, p))
	s.metrics.observe(solver.Name(), time.Since(start), err != nil, hit)
	if err != nil {
		s.simMetrics.observe("", true, false)
		writeErr(w, statusFor(err), err)
		return
	}
	// The simulation is CPU-bound like a solve, so it claims a
	// MaxInFlight slot of its own: cache-hit solve traffic cannot
	// fan out into unbounded concurrent simulations. Both simulation
	// substrates honor the SimTimeout context (the event simulator
	// via OnlineConfig.Interrupt), mapping to 504.
	if err := s.acquire(r.Context()); err != nil {
		s.simMetrics.observe("", true, false)
		writeErr(w, statusFor(err), err)
		return
	}
	var rec *event.MemoryRecorder
	if req.Trace {
		rec = &event.MemoryRecorder{Limit: s.cfg.MaxTraceEvents}
	}
	sctx, cancel := context.WithTimeout(r.Context(), s.cfg.SimTimeout)
	var rep *sim.Report
	if rec != nil {
		rep, err = s.simEngine.RunRecorded(sctx, res, req.Scenario, rec)
	} else {
		rep, err = s.simEngine.Run(sctx, res, req.Scenario)
	}
	cancel()
	s.release()
	if err != nil {
		s.simMetrics.observe("", true, false)
		writeErr(w, statusFor(err), err)
		return
	}
	s.simMetrics.observe(rep.Kind, false, false)
	resp := SimulateResponse{
		Report:        rep,
		CacheHit:      hit,
		ElapsedMicros: time.Since(start).Microseconds(),
	}
	if rec != nil {
		resp.Trace = rec.Records
		resp.TraceTruncated = rec.Dropped > 0
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSimSweep(w http.ResponseWriter, r *http.Request) {
	var req SimSweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	model, err := parseModel(req.Model)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec := steady.Spec{Problem: req.Problem, Root: req.Root, Targets: req.Targets, Model: model}
	solver, err := steady.New(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	scenarios := req.Scenarios
	if len(scenarios) == 0 {
		scenarios = []sim.Scenario{{}}
	}
	labels := map[string]int{}
	for i := range scenarios {
		if err := s.checkScenario(&scenarios[i]); err != nil {
			writeErr(w, statusFor(err), fmt.Errorf("scenario %d: %w", i, err))
			return
		}
		// Cell ids are jobID/label; colliding labels would make the
		// streamed records indistinguishable.
		label := scenarioID(scenarios[i], i)
		if prev, dup := labels[label]; dup {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("scenarios %d and %d share the label %q", prev, i, label))
			return
		}
		labels[label] = i
	}
	jobs, err := s.sweepJobs(&SweepRequest{
		Problem: req.Problem, Root: req.Root, Targets: req.Targets, Model: req.Model,
		Generator: req.Generator, Platforms: req.Platforms,
	}, gatedSolver{s: s, inner: solver})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if n := len(jobs) * len(scenarios); n > s.cfg.MaxSweepJobs {
		err := errTooLarge{fmt.Sprintf("sweep has %d cells (%d platforms x %d scenarios), limit %d",
			n, len(jobs), len(scenarios), s.cfg.MaxSweepJobs)}
		writeErr(w, statusFor(err), err)
		return
	}
	cells := make([]sim.Cell, 0, len(jobs)*len(scenarios))
	for _, job := range jobs {
		for si, sc := range scenarios {
			cells = append(cells, sim.Cell{
				ID:       fmt.Sprintf("%s/%s", job.ID, scenarioID(sc, si)),
				Platform: job.Platform,
				Spec:     spec,
				Scenario: sc,
				Solver:   job.Solver, // the gated solver: sweeps respect MaxInFlight
			})
		}
	}

	var sink sim.CellSink
	out := &flushWriter{w: w}
	switch req.Format {
	case "", "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink = sim.JSONCellSink(out)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		sink = sim.CSVCellSink(out)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (ndjson|csv)", req.Format))
		return
	}
	w.WriteHeader(http.StatusOK)

	// Same contract as /v1/sweep: the status is committed, per-cell
	// errors travel in the records, and a sink error means the client
	// went away. The per-simulation limit is enforced per cell by the
	// engine's CellTimeout, not by a pooled deadline here. Each cell
	// also lands in the per-solver latency histogram, like /v1/sweep
	// records, so operators see simsweep LP traffic in /v1/stats.
	observing := func(o sim.CellOutcome) error {
		kind := ""
		if o.Report != nil {
			kind = o.Report.Kind
		}
		s.simMetrics.observe(kind, o.Err != nil, true)
		s.metrics.observe(solver.Name(), o.Elapsed, o.Err != nil, o.CacheHit)
		return sink(o)
	}
	_ = s.simEngine.StreamSweep(r.Context(), cells, observing)
}

// scenarioID labels a scenario inside a sweep cell id.
func scenarioID(sc sim.Scenario, i int) string {
	if sc.Name != "" {
		return sc.Name
	}
	return fmt.Sprintf("s%02d", i)
}

// sweepJobs expands a sweep request into batch jobs, enforcing the
// sweep and platform size limits.
func (s *Server) sweepJobs(req *SweepRequest, solver steady.Solver) ([]batch.Job, error) {
	if (req.Generator == nil) == (len(req.Platforms) == 0) {
		return nil, fmt.Errorf("sweep needs exactly one of generator or platforms")
	}
	if len(req.Platforms) > 0 {
		if len(req.Platforms) > s.cfg.MaxSweepJobs {
			return nil, errTooLarge{fmt.Sprintf("sweep has %d platforms, limit %d", len(req.Platforms), s.cfg.MaxSweepJobs)}
		}
		jobs := make([]batch.Job, len(req.Platforms))
		for i, raw := range req.Platforms {
			p, err := decodePlatform(raw, s.cfg.MaxNodes, s.cfg.MaxEdges)
			if err != nil {
				return nil, fmt.Errorf("platform %d: %w", i, err)
			}
			jobs[i] = batch.Job{ID: fmt.Sprintf("p%02d", i), Platform: p, Solver: solver}
		}
		return jobs, nil
	}
	return s.generatorJobs(req.Generator, solver)
}

// generatorJobs builds the random-platform family of a Generator,
// with the same (seed, size) scheme as cmd/experiments -batch so a
// remote sweep reproduces a local one exactly.
func (s *Server) generatorJobs(g *Generator, solver steady.Solver) ([]batch.Job, error) {
	if g.Kind != "" && g.Kind != "random" {
		return nil, fmt.Errorf("unknown generator kind %q (want \"random\")", g.Kind)
	}
	if g.Count <= 0 {
		return nil, fmt.Errorf("generator count must be positive, got %d", g.Count)
	}
	if g.Count > s.cfg.MaxSweepJobs {
		return nil, errTooLarge{fmt.Sprintf("sweep has %d platforms, limit %d", g.Count, s.cfg.MaxSweepJobs)}
	}
	sizes := g.Sizes
	if len(sizes) == 0 {
		sizes = []int{6, 8, 10, 12}
	}
	for _, n := range sizes {
		if n < 2 || n > s.cfg.MaxNodes {
			return nil, errTooLarge{fmt.Sprintf("generator size %d outside [2, %d]", n, s.cfg.MaxNodes)}
		}
	}
	maxW, maxC, fwd := g.MaxW, g.MaxC, g.ForwardOnly
	if maxW <= 0 {
		maxW = 5
	}
	if maxC <= 0 {
		maxC = 5
	}
	if fwd <= 0 {
		fwd = 0.15
	}
	jobs := make([]batch.Job, g.Count)
	for i := range jobs {
		size := sizes[i%len(sizes)]
		// Seeding by (seed, size) makes platforms repeat across the
		// sweep: repeats are served from the cache.
		rng := rand.New(rand.NewSource(g.Seed + int64(size)))
		jobs[i] = batch.Job{
			ID:       fmt.Sprintf("job%02d-n%d", i, size),
			Platform: platform.RandomConnected(rng, size, size, maxW, maxC, fwd),
			Solver:   solver,
		}
	}
	return jobs, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the registry in the Prometheus text
// exposition format. With metrics disabled there is nothing to
// render and the endpoint does not exist: 404, zero overhead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		InFlightSolves: cs.InFlight,
		Cache:          cacheStatsJSON(cs),
		LP:             lpStatsJSON(cs, s.cache.FloatFirst()),
		Simulations:    s.simMetrics.snapshot(),
		Solvers:        s.metrics.snapshot(),
	})
}

// --- plumbing ---------------------------------------------------------

// decodeBody parses a JSON request body under the size limit,
// rejecting unknown fields so schema typos fail loudly. It writes the
// error response itself and reports success.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// readBody slurps a request body under the size limit. /v1/solve uses
// it instead of decodeBody because a clustered server may forward the
// raw bytes to the key's owner verbatim.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, fmt.Errorf("read request: %w", err))
		return nil, false
	}
	return raw, true
}

// decodeStrict parses raw with the same unknown-field strictness as
// decodeBody, writing the error response itself.
func decodeStrict(w http.ResponseWriter, raw []byte, dst any) bool {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// statusFor maps a solve-path error to an HTTP status: size limits
// to 413, the server-side solve timeout to 504, client cancellation
// to 499 (nginx convention; the client is gone anyway). The facade's
// typed request errors — steady.ErrUnknownProblem, steady.ErrBadSpec,
// steady.ErrNoSuchNode, platform.ErrInvalid — all mean the request
// was wrong, so they map to 400, as does everything else (infeasible
// instances, malformed JSON): the solver itself cannot fail on a
// well-formed request.
func statusFor(err error) int {
	switch {
	case errors.As(err, &errTooLarge{}):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, errSaturated):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, control.ErrUnknownDeployment):
		return http.StatusNotFound
	case errors.Is(err, control.ErrTooManyDeployments),
		errors.Is(err, control.ErrTooManyWatchers):
		return http.StatusTooManyRequests
	case errors.Is(err, control.ErrBadDeployment),
		errors.Is(err, control.ErrBadObservation),
		errors.Is(err, forecast.ErrBadMeasurement):
		return http.StatusBadRequest
	case errors.Is(err, steady.ErrUnknownProblem),
		errors.Is(err, steady.ErrBadSpec),
		errors.Is(err, steady.ErrNoSuchNode),
		errors.Is(err, platform.ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

// encBuf pairs a response buffer with a JSON encoder bound to it, so
// the hot path reuses both: the per-response json.NewEncoder and the
// backing array were the largest steady-state allocations in
// BenchmarkServerSolveHot.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &encBuf{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

// maxPooledEncBuf keeps pathological responses (a traced simulation
// can be tens of MB) from pinning their buffers in the pool forever.
const maxPooledEncBuf = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*encBuf)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Drop the entry: a json.Encoder remembers its first error and
		// would poison every later response.
		http.Error(w, `{"error":"encoding response failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes())
	if e.buf.Cap() <= maxPooledEncBuf {
		encPool.Put(e)
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		// Backpressure contract: tell well-behaved clients when to come
		// back instead of letting them busy-retry into the gate.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// flushWriter flushes the HTTP response after every write, so sweep
// records reach the client as they complete rather than when the
// response buffer fills.
type flushWriter struct{ w http.ResponseWriter }

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}
