package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/server"
)

// ExampleServer solves the paper's Figure 1 master-slave problem over
// HTTP: the service returns the same exact rational the in-process
// facade computes, and a repeated request is served from the sharded
// LP-solution cache.
func ExampleServer() {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var pbuf bytes.Buffer
	if err := platform.Figure1().WriteJSON(&pbuf); err != nil {
		panic(err)
	}
	body, err := json.Marshal(server.SolveRequest{
		Problem:  "masterslave",
		Root:     "P1",
		Platform: pbuf.Bytes(),
	})
	if err != nil {
		panic(err)
	}

	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		var res server.SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			panic(err)
		}
		resp.Body.Close()
		fmt.Printf("ntask(G) = %s cache_hit=%v\n", res.Throughput, res.CacheHit)
	}
	// Output:
	// ntask(G) = 4/3 cache_hit=false
	// ntask(G) = 4/3 cache_hit=true
}

// ExampleServer_sweep streams a two-platform sweep as NDJSON records.
func ExampleServer_sweep() {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var pbuf bytes.Buffer
	if err := platform.Figure1().WriteJSON(&pbuf); err != nil {
		panic(err)
	}
	body, err := json.Marshal(server.SweepRequest{
		Problem:   "masterslave",
		Root:      "P1",
		Platforms: []json.RawMessage{pbuf.Bytes(), pbuf.Bytes()},
		Format:    "ndjson",
	})
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()

	dec := json.NewDecoder(resp.Body)
	hits := 0
	for dec.More() {
		var rec struct {
			Tput     string `json:"throughput"`
			CacheHit bool   `json:"cache_hit"`
		}
		if err := dec.Decode(&rec); err != nil {
			panic(err)
		}
		if rec.CacheHit {
			hits++
		}
		fmt.Println("throughput", rec.Tput)
	}
	fmt.Println("cache hits:", hits)
	// Output:
	// throughput 4/3
	// throughput 4/3
	// cache hits: 1
}
