package server_test

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	"repro/pkg/steady/server"
)

// TestStatsFloatFirstCounters: by default the server's cache runs the
// float-first LP path; solving a sweep family through /v1/solve must
// surface the float/repair/fallback traffic in the lp section of
// GET /v1/stats, with the warm-start interplay keeping exact pivots
// at (near) zero.
func TestStatsFloatFirstCounters(t *testing.T) {
	ts := newTestServer(t, server.Config{})

	base := platform.RandomConnected(rand.New(rand.NewSource(5)), 8, 8, 5, 5, 0)
	var throughputs []string
	for step := int64(0); step < 3; step++ {
		q := platform.New()
		for i := 0; i < base.NumNodes(); i++ {
			w := base.Weight(i)
			if !w.Inf {
				w = platform.W(w.Val.Add(rat.New(step, 103)))
			}
			q.AddNode(base.Name(i), w)
		}
		for _, ed := range base.Edges() {
			q.AddEdge(ed.From, ed.To, ed.C.Add(rat.New(step, 101)))
		}
		res := decodeSolve(t, postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
			Problem:  "masterslave",
			Platform: platformJSON(t, q),
		}))
		throughputs = append(throughputs, res.Throughput)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	lp := stats.LP
	if !lp.FloatFirst {
		t.Fatalf("lp.float_first = false on a default server: %+v", lp)
	}
	if lp.FloatSolves < 1 || lp.FloatPivots <= 0 {
		t.Fatalf("float-first traffic missing from stats: %+v", lp)
	}
	if lp.WarmSolves != 2 || lp.ColdSolves != 1 {
		t.Fatalf("lp solves = %+v, want 2 warm + 1 cold", lp)
	}
	if lp.ExactFallbacks != 0 {
		t.Fatalf("unexpected exact fallbacks: %+v", lp)
	}
	// Float search on the miss, warm re-solves after: the family
	// costs (near) zero exact pivots end to end.
	if lp.PivotsTotal > 3 {
		t.Fatalf("lp.pivots_total = %d, want ~0 under float-first + warm starts: %+v", lp.PivotsTotal, lp)
	}

	// Same family against a float-first-disabled server: identical
	// exact throughputs, pure-exact counters.
	ts2 := newTestServer(t, server.Config{DisableFloatFirst: true})
	for step := int64(0); step < 3; step++ {
		q := platform.New()
		for i := 0; i < base.NumNodes(); i++ {
			w := base.Weight(i)
			if !w.Inf {
				w = platform.W(w.Val.Add(rat.New(step, 103)))
			}
			q.AddNode(base.Name(i), w)
		}
		for _, ed := range base.Edges() {
			q.AddEdge(ed.From, ed.To, ed.C.Add(rat.New(step, 101)))
		}
		res := decodeSolve(t, postJSON(t, ts2.URL+"/v1/solve", server.SolveRequest{
			Problem:  "masterslave",
			Platform: platformJSON(t, q),
		}))
		if res.Throughput != throughputs[step] {
			t.Fatalf("step %d: float-first server %q != exact server %q", step, throughputs[step], res.Throughput)
		}
	}
	resp2, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stats2 server.StatsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&stats2); err != nil {
		t.Fatal(err)
	}
	if stats2.LP.FloatFirst || stats2.LP.FloatSolves != 0 || stats2.LP.FloatPivots != 0 {
		t.Fatalf("disabled server reports float traffic: %+v", stats2.LP)
	}
	if stats2.LP.PivotsTotal == 0 {
		t.Fatalf("pure-exact server reports no pivots: %+v", stats2.LP)
	}
}
