package server

import (
	"net/http"
	"net/http/pprof"
)

// PprofMux returns a mux serving the standard net/http/pprof
// endpoints under /debug/pprof/. The server never mounts these on its
// own handler: profiling is opt-in and belongs on a separate,
// operator-only listener (steadyd -pprof-addr), so the service ports
// never expose stack dumps or CPU profiles.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
