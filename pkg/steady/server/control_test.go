package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/steady/control"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	"repro/pkg/steady/server"
)

// newControlServer is newTestServer plus the *server.Server handle
// (to drive the control manager deterministically) and a Close that
// also stops the control plane's background loop.
func newControlServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// controlStar is the 3-node fixture of the control-plane tests:
// master P1 (w=1), workers P2 (w=2, c=1) and P3 (w=3, c=2).
// Nominal master-slave throughput 7/4; after the c(P1>P2)=1.5 drift,
// 13/8 — both unique optima.
func controlStar() *platform.Platform {
	p := platform.New()
	p1 := p.AddNode("P1", platform.WInt(1))
	p2 := p.AddNode("P2", platform.WInt(2))
	p3 := p.AddNode("P3", platform.WInt(3))
	p.AddEdge(p1, p2, rat.FromInt(1))
	p.AddEdge(p1, p3, rat.FromInt(2))
	return p
}

func createDeployment(t *testing.T, ts *httptest.Server, id string) control.Snapshot {
	t.Helper()
	resp := postJSON(t, ts.URL+"/v1/deployments", server.DeploymentRequest{
		ID: id,
		SolveRequest: server.SolveRequest{
			Problem:  "masterslave",
			Root:     "P1",
			Platform: platformJSON(t, controlStar()),
		},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("create deployment: status %d: %s", resp.StatusCode, msg)
	}
	var snap control.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestDeploymentLifecycleHTTP(t *testing.T) {
	_, ts := newControlServer(t, server.Config{Control: control.Config{Epoch: time.Hour}})

	snap := createDeployment(t, ts, "demo")
	if snap.Epoch == nil || snap.Epoch.Version != 1 || snap.Epoch.Throughput != "7/4" {
		t.Fatalf("create snapshot = %+v", snap.Epoch)
	}

	resp, err := http.Get(ts.URL + "/v1/deployments")
	if err != nil {
		t.Fatal(err)
	}
	var list server.DeploymentListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Deployments) != 1 || list.Deployments[0] != "demo" {
		t.Fatalf("list = %+v", list)
	}

	resp, err = http.Get(ts.URL + "/v1/deployments/demo")
	if err != nil {
		t.Fatal(err)
	}
	var got control.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.ID != "demo" || got.Epoch.Version != 1 || len(got.Nodes) != 3 {
		t.Fatalf("get snapshot = %+v", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/deployments/demo", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/deployments/demo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestControlBadRequests table-tests the hostile-input contract of
// every control endpoint: malformed bodies, bad ids, unknown names,
// non-finite and non-positive measurements all answer 4xx without
// touching any state.
func TestControlBadRequests(t *testing.T) {
	_, ts := newControlServer(t, server.Config{Control: control.Config{Epoch: time.Hour}})
	createDeployment(t, ts, "demo")

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	goodPlatform := string(platformJSON(t, controlStar()))

	cases := map[string]struct {
		path string
		body string
		want int
	}{
		"create broken json": {"/v1/deployments", `{"id":`, 400},
		"create unknown field": {"/v1/deployments",
			`{"id":"x","problem":"masterslave","platfrm":{}}`, 400},
		"create bad id": {"/v1/deployments",
			`{"id":"no spaces!","problem":"masterslave","platform":` + goodPlatform + `}`, 400},
		"create bad problem": {"/v1/deployments",
			`{"id":"x","problem":"nope","platform":` + goodPlatform + `}`, 400},
		"create bad root": {"/v1/deployments",
			`{"id":"x","problem":"masterslave","root":"Z","platform":` + goodPlatform + `}`, 400},
		"telemetry unknown deployment": {"/v1/deployments/ghost/telemetry",
			`{"observations":[{"node":"P2","value":2}]}`, 404},
		"telemetry empty batch":  {"/v1/deployments/demo/telemetry", `{"observations":[]}`, 400},
		"telemetry unknown node": {"/v1/deployments/demo/telemetry", `{"observations":[{"node":"P9","value":2}]}`, 400},
		"telemetry unknown edge": {"/v1/deployments/demo/telemetry", `{"observations":[{"from":"P2","to":"P3","value":2}]}`, 400},
		"telemetry node and edge": {"/v1/deployments/demo/telemetry",
			`{"observations":[{"node":"P2","from":"P1","to":"P2","value":2}]}`, 400},
		"telemetry neither":        {"/v1/deployments/demo/telemetry", `{"observations":[{"value":2}]}`, 400},
		"telemetry zero value":     {"/v1/deployments/demo/telemetry", `{"observations":[{"node":"P2","value":0}]}`, 400},
		"telemetry negative value": {"/v1/deployments/demo/telemetry", `{"observations":[{"node":"P2","value":-4}]}`, 400},
		"telemetry null value":     {"/v1/deployments/demo/telemetry", `{"observations":[{"node":"P2","value":null}]}`, 400},
		"telemetry huge literal":   {"/v1/deployments/demo/telemetry", `{"observations":[{"node":"P2","value":1e999}]}`, 400},
		"telemetry valid rides with bad": {"/v1/deployments/demo/telemetry",
			`{"observations":[{"node":"P2","value":2},{"node":"P9","value":2}]}`, 400},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if got := post(tc.path, tc.body); got != tc.want {
				t.Fatalf("status %d, want %d", got, tc.want)
			}
		})
	}

	// None of the rejected telemetry reached a forecaster.
	resp, err := http.Get(ts.URL + "/v1/deployments/demo")
	if err != nil {
		t.Fatal(err)
	}
	var snap control.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Observations != 0 {
		t.Fatalf("rejected batches leaked %d observations", snap.Observations)
	}

	// Watch-specific 4xx: bad resume version and unknown deployment.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/deployments/demo/watch", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad Last-Event-ID: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/deployments/ghost/watch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("watch unknown deployment: status %d, want 404", resp.StatusCode)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    string
	event string
	data  []byte
}

// readEvent reads the next SSE event, skipping keepalive comments.
func readEvent(t *testing.T, br *bufio.Reader) sseEvent {
	t.Helper()
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.data != nil {
				return ev
			}
		case strings.HasPrefix(line, ":"): // keepalive comment
		case strings.HasPrefix(line, "id: "):
			ev.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(line[len("data: "):])
		}
	}
}

// watchStream opens /v1/deployments/{id}/watch and returns a reader
// over the event stream plus a cancel for the request.
func watchStream(t *testing.T, ts *httptest.Server, id, lastEventID string) (*bufio.Reader, context.CancelFunc, *http.Response) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/deployments/"+id+"/watch", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { cancel(); resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("watch: status %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch Content-Type = %q", ct)
	}
	return bufio.NewReader(resp.Body), cancel, resp
}

// TestWatchDriftDelta drives the full loop over HTTP: create, watch,
// post drifting telemetry, and assert the re-solved epoch arrives as
// a delta event whose schedule is byte-identical to POST /v1/solve of
// the true drifted platform.
func TestWatchDriftDelta(t *testing.T) {
	// A real 50ms control loop: telemetry must surface as a new epoch
	// without any test-side nudging.
	_, ts := newControlServer(t, server.Config{
		Control: control.Config{Epoch: 50 * time.Millisecond},
	})
	createDeployment(t, ts, "demo")
	br, _, _ := watchStream(t, ts, "demo", "")

	first := readEvent(t, br)
	if first.id != "1" || first.event != "epoch" {
		t.Fatalf("first event = id %q event %q", first.id, first.event)
	}
	var v1 control.Epoch
	if err := json.Unmarshal(first.data, &v1); err != nil {
		t.Fatal(err)
	}
	if v1.Throughput != "7/4" || v1.Reason != "create" {
		t.Fatalf("first epoch = %+v", v1)
	}

	resp := postJSON(t, ts.URL+"/v1/deployments/demo/telemetry", server.TelemetryRequest{
		Observations: []control.Observation{{From: "P1", To: "P2", Value: 1.5}},
	})
	var tr server.TelemetryResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.Accepted != 1 {
		t.Fatalf("telemetry accepted = %d", tr.Accepted)
	}

	second := readEvent(t, br)
	var v2 control.Epoch
	if err := json.Unmarshal(second.data, &v2); err != nil {
		t.Fatal(err)
	}
	if second.id != "2" || v2.Version != 2 || v2.Reason != "drift" {
		t.Fatalf("drift event = id %q %+v", second.id, v2)
	}
	if v2.Throughput != "13/8" {
		t.Fatalf("drifted throughput = %q, want 13/8", v2.Throughput)
	}
	if !v2.WarmStarted || v2.Pivots > 2 {
		t.Fatalf("drift re-solve: warm=%v pivots=%d, want warm ~0-pivot", v2.WarmStarted, v2.Pivots)
	}
	if v2.Delta == nil || v2.Delta.FromVersion != 1 || !v2.Delta.ThroughputChanged {
		t.Fatalf("delta = %+v", v2.Delta)
	}

	// Byte-identity with a fresh certified solve of the drifted
	// platform through the ordinary solve endpoint.
	drifted := platform.New()
	p1 := drifted.AddNode("P1", platform.WInt(1))
	p2 := drifted.AddNode("P2", platform.WInt(2))
	p3 := drifted.AddNode("P3", platform.WInt(3))
	drifted.AddEdge(p1, p2, rat.New(3, 2))
	drifted.AddEdge(p1, p3, rat.FromInt(2))
	sresp := postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
		Problem: "masterslave", Root: "P1", Platform: platformJSON(t, drifted),
	})
	sol := decodeSolve(t, sresp)
	if sol.Fingerprint != v2.Fingerprint || sol.Throughput != v2.Throughput {
		t.Fatalf("epoch %s@%s vs solve %s@%s", v2.Throughput, v2.Fingerprint, sol.Throughput, sol.Fingerprint)
	}
	for i, n := range sol.Nodes {
		if v2.Nodes[i].Alpha != n.Alpha || v2.Nodes[i].Rate != n.Rate {
			t.Fatalf("node %s: epoch %+v vs solve %+v", n.Name, v2.Nodes[i], n)
		}
	}
	for i, l := range sol.Links {
		if v2.Links[i].Busy != l.Busy {
			t.Fatalf("link %s>%s: epoch %q vs solve %q", l.From, l.To, v2.Links[i].Busy, l.Busy)
		}
	}
}

// TestWatchResumeHTTP checks Last-Event-ID replay and the resync
// fallback over real HTTP, driving epochs deterministically through
// the in-process manager (the background loop is parked at a 1h
// period).
func TestWatchResumeHTTP(t *testing.T) {
	srv, ts := newControlServer(t, server.Config{
		Control: control.Config{Epoch: time.Hour, History: 3, DriftThreshold: 1e-6},
	})
	createDeployment(t, ts, "demo")

	m := srv.Control()
	now := time.Now()
	for v := uint64(1); v < 6; v++ {
		if _, err := m.Observe("demo", []control.Observation{{From: "P1", To: "P2", Value: float64(uint64(1) << v)}}); err != nil {
			t.Fatal(err)
		}
		if n := m.Tick(context.Background(), now.Add(time.Duration(v)*24*time.Hour)); n != 1 {
			t.Fatalf("drift round v%d published %d", v, n)
		}
	}

	// Resume from v4: v5 and v6 replay in order.
	br, _, _ := watchStream(t, ts, "demo", "4")
	for _, want := range []string{"5", "6"} {
		ev := readEvent(t, br)
		if ev.id != want {
			t.Fatalf("replayed event id %q, want %q", ev.id, want)
		}
	}

	// Resume from v1 (fallen out of History=3): one resync epoch.
	br, _, _ = watchStream(t, ts, "demo", "1")
	ev := readEvent(t, br)
	var ep control.Epoch
	if err := json.Unmarshal(ev.data, &ep); err != nil {
		t.Fatal(err)
	}
	if !ep.Resync || ep.Version != 6 || ep.Delta != nil {
		t.Fatalf("stale resume = %+v, want v6 resync without delta", ep)
	}
}

// TestWatchDisconnectReleasesSlot: closing the client request frees
// the MaxWatchers slot (the handler deregisters on context done, it
// does not wait for an eviction).
func TestWatchDisconnectReleasesSlot(t *testing.T) {
	srv, ts := newControlServer(t, server.Config{
		Control: control.Config{Epoch: time.Hour, MaxWatchers: 1},
	})
	createDeployment(t, ts, "demo")

	br, cancel, _ := watchStream(t, ts, "demo", "")
	readEvent(t, br) // stream is live

	resp, err := http.Get(ts.URL + "/v1/deployments/demo/watch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second watcher: status %d, want 429", resp.StatusCode)
	}

	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Control().Watchers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected watcher still registered after 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	br2, _, _ := watchStream(t, ts, "demo", "")
	readEvent(t, br2)
}

// TestWatchStreamEndsOnRemove: deleting a watched deployment closes
// every subscriber's stream promptly (EOF, not a hang).
func TestWatchStreamEndsOnRemove(t *testing.T) {
	_, ts := newControlServer(t, server.Config{Control: control.Config{Epoch: time.Hour}})
	createDeployment(t, ts, "demo")
	br, _, resp := watchStream(t, ts, "demo", "")
	readEvent(t, br)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/deployments/demo", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	select {
	case <-done: // EOF (or reset): the stream ended either way
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream did not end after deployment removal")
	}
}

// TestControlMetricsExposed: the steady_control_* families render on
// /metrics from the first scrape, pre-seeded label children included.
func TestControlMetricsExposed(t *testing.T) {
	_, ts := newControlServer(t, server.Config{Control: control.Config{Epoch: time.Hour}})
	createDeployment(t, ts, "demo")
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"steady_control_deployments 1",
		`steady_control_resolves_total{reason="create"} 1`,
		`steady_control_resolves_total{reason="drift"} 0`,
		`steady_control_drift_suppressed_total{reason="min_interval"} 0`,
		"steady_control_epochs_total 1",
		"steady_control_watchers 0",
		"steady_control_observations_total 0",
		"steady_control_watch_evictions_total 0",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
