package steady_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

// parityPlatforms builds the property-test corpus: ≥50 platforms
// drawn from every generator family (tree, grid, ring, clique, random
// connected) under mixed seeds, sized so that even the exponential
// tree-packing solver stays fast.
func parityPlatforms() []*platform.Platform {
	var out []*platform.Platform
	for seed := int64(1); seed <= 10; seed++ {
		out = append(out,
			platform.Tree(rand.New(rand.NewSource(seed)), 2, 2, 5, 5),
			platform.Grid(rand.New(rand.NewSource(seed)), 3, 3, 5, 5),
			platform.Ring(rand.New(rand.NewSource(seed)), 8, 5, 5),
			platform.Clique(rand.New(rand.NewSource(seed)), 5, 5, 5),
			platform.RandomConnected(rand.New(rand.NewSource(seed)), 10, 8, 5, 5, 0.2),
		)
	}
	return out
}

// paritySpecs renders every registered problem as a concrete spec for
// the given platform (targets resolved to real node names), plus the
// send-or-receive variants of the two problems that support them.
func paritySpecs(t *testing.T, p *platform.Platform) []steady.Spec {
	t.Helper()
	targets := []string{p.Name(1), p.Name(p.NumNodes() - 1)}
	specs := []steady.Spec{}
	for _, problem := range steady.Problems() {
		spec := steady.Spec{Problem: problem}
		switch problem {
		case "scatter", "multicast", "multicast-sum", "multicast-trees":
			spec.Targets = targets
		}
		specs = append(specs, spec)
	}
	specs = append(specs,
		steady.Spec{Problem: "masterslave", Model: steady.SendOrReceive},
		steady.Spec{Problem: "scatter", Targets: targets, Model: steady.SendOrReceive},
	)
	return specs
}

// TestFloatFirstParityAllSolvers is the float-first parity property
// test: on 50 generated platforms × every registered solver, the
// float-first path must return byte-identical certified output to the
// pure-exact engine — same Throughput, same per-node and per-link
// activity values. The float search mirrors the exact engine's
// pivot-for-pivot walk, so certification installs the exact engine's
// own terminal basis; any float misjudgment surfaces as repair pivots
// or an exact fallback, both of which still certify the same optimum
// (the objective is always unique even when the vertex is not — a
// divergence here would mean the certificate itself is broken).
func TestFloatFirstParityAllSolvers(t *testing.T) {
	ctx := context.Background()
	plats := parityPlatforms()
	if len(plats) < 50 {
		t.Fatalf("corpus has %d platforms, want >= 50", len(plats))
	}
	solves, repairs, fallbacks := 0, 0, 0
	for pi, p := range plats {
		for _, spec := range paritySpecs(t, p) {
			name := fmt.Sprintf("platform %d, spec %+v", pi, spec)
			solver, err := steady.New(spec)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			cold, err := solver.Solve(ctx, p)
			if err != nil {
				t.Fatalf("%s: cold: %v", name, err)
			}
			ff, err := solver.Solve(ctx, p, steady.FloatFirst())
			if err != nil {
				t.Fatalf("%s: float-first: %v", name, err)
			}
			solves++
			if !cold.Throughput.Equal(ff.Throughput) {
				t.Fatalf("%s: throughput cold %v, float-first %v", name, cold.Throughput, ff.Throughput)
			}
			if len(cold.Nodes) != len(ff.Nodes) || len(cold.Links) != len(ff.Links) {
				t.Fatalf("%s: activity shapes differ", name)
			}
			for i := range cold.Nodes {
				if !cold.Nodes[i].Alpha.Equal(ff.Nodes[i].Alpha) {
					t.Fatalf("%s: node %d alpha cold %v, float-first %v",
						name, i, cold.Nodes[i].Alpha, ff.Nodes[i].Alpha)
				}
			}
			for i := range cold.Links {
				if !cold.Links[i].Busy.Equal(ff.Links[i].Busy) {
					t.Fatalf("%s: link %d busy cold %v, float-first %v",
						name, i, cold.Links[i].Busy, ff.Links[i].Busy)
				}
			}
			if ff.FloatPivots == 0 && !ff.CertifiedCold && ff.Pivots > 0 {
				t.Fatalf("%s: FloatFirst() had no effect: %+v", name, ff)
			}
			if cold.FloatPivots != 0 || cold.CertifiedCold {
				t.Fatalf("%s: cold solve reports float-first counters: %+v", name, cold)
			}
			if ff.RepairPivots > 0 {
				repairs++
			}
			if ff.CertifiedCold {
				fallbacks++
			}
		}
	}
	t.Logf("platforms=%d solves=%d repaired=%d fallbacks=%d", len(plats), solves, repairs, fallbacks)
}
