// Package steady is the public facade over the repository's
// steady-state scheduling solvers (internal/core, internal/schedule,
// pkg/steady/lp) for the linear programs of Beaumont, Legrand, Marchal
// and Robert, "Assessing the impact and limits of steady-state
// scheduling for mixed task and data parallelism on heterogeneous
// platforms" (IPDPS 2004).
//
// The facade presents every steady-state problem of §3–§5 of the
// paper through one uniform interface:
//
//	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
//	result, err := solver.Solve(ctx, platform.Figure1())
//
// A Solver is a reusable, platform-independent description of a
// problem instance (which problem, which root/source node, which
// targets, which port model); Solve applies it to a concrete
// platform graph and returns a Result carrying the optimal
// steady-state throughput together with the per-node and per-link
// activity variables, all as exact rationals (see pkg/steady/rat — the
// schedule period is the lcm of the solution's denominators, so
// floating point is never used on the solve path).
//
// Built-in problems, registered at init time:
//
//	masterslave      §3.1 SSMS(G): independent equal-sized tasks
//	scatter          §3.2 SSPS(G): pipelined personalized messages
//	multicast        §3.3 max-operator relaxation (upper bound)
//	multicast-sum    §3.3 sum-LP (achievable lower bound)
//	multicast-trees  §4.3 exact Steiner-arborescence packing
//	broadcast        §3.3 bound with all reachable nodes as targets
//	reduce           §4.2 reduce = broadcast on the reversed graph
//
// masterslave and scatter also accept the send-OR-receive port model
// of §5.1.1 via Spec.Model. Additional problems can be added with
// Register; pkg/steady/batch builds a concurrent, caching batch
// engine on top of this interface.
package steady

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/pkg/steady/lp"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// PortModel selects the communication model: the paper's base model
// (§2, separate send and receive ports, full overlap) or the
// restricted shared-port model of §5.1.1.
type PortModel int

const (
	// SendAndReceive is the base model: at most one emission and one
	// reception at a time, overlapping with computation.
	SendAndReceive PortModel = iota
	// SendOrReceive shares a single port for emissions and receptions
	// (§5.1.1); schedule reconstruction becomes NP-hard, so only a
	// greedy evaluation is available (see Result.EvaluateGreedy).
	SendOrReceive
)

func (m PortModel) String() string {
	if m == SendOrReceive {
		return "send-or-receive"
	}
	return "send-and-receive"
}

func (m PortModel) core() core.PortModel {
	if m == SendOrReceive {
		return core.SendOrReceive
	}
	return core.SendAndReceive
}

// Spec describes a problem instance independently of any platform.
// Node references are by name and resolved against the platform at
// Solve time, so one Solver can be applied to a whole family of
// platforms (as the batch engine does).
type Spec struct {
	// Problem is a registered problem name (see Problems).
	Problem string
	// Root is the master (masterslave), source (scatter, multicast,
	// broadcast) or reduction root (reduce). Empty means the
	// platform's first node.
	Root string
	// Targets are the target node names for scatter and the multicast
	// variants. Ignored by the other problems.
	Targets []string
	// Model is the port model; only masterslave and scatter support
	// SendOrReceive.
	Model PortModel
}

// Validate checks the spec against the registry without solving
// anything: the problem must be registered (ErrUnknownProblem), the
// port model defined and supported, and problem-specific requirements
// met — e.g. scatter and the multicast variants need targets
// (ErrBadSpec). Node names are not checked here: they resolve against
// each platform at Solve time (ErrNoSuchNode). Match the reported
// errors with errors.Is.
func (s Spec) Validate() error {
	_, err := New(s)
	return err
}

// name renders the spec as a compact canonical string: the problem
// name plus any non-default parameters in a fixed order. It is used
// as Solver.Name and therefore as part of the batch engine's cache
// key, so it must encode every parameter that affects the solution —
// node names are escaped so that names containing the separator
// characters cannot make two distinct specs render identically.
func (s Spec) name() string {
	var parts []string
	if s.Root != "" {
		parts = append(parts, "root="+escapeName(s.Root))
	}
	if len(s.Targets) > 0 {
		esc := make([]string, len(s.Targets))
		for i, t := range s.Targets {
			esc[i] = escapeName(t)
		}
		parts = append(parts, "targets="+strings.Join(esc, "+"))
	}
	if s.Model != SendAndReceive {
		parts = append(parts, "model="+s.Model.String())
	}
	if len(parts) == 0 {
		return s.Problem
	}
	return s.Problem + "[" + strings.Join(parts, ",") + "]"
}

// specReserved are the separator characters of Spec.name's encoding.
const specReserved = "[]=,+%"

// escapeName percent-encodes the separator characters in a node name
// so the rendered spec name is unambiguous. Ordinary names (P1, w03)
// pass through unchanged.
func escapeName(s string) string {
	if !strings.ContainsAny(s, specReserved) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if c := s[i]; strings.IndexByte(specReserved, c) >= 0 {
			fmt.Fprintf(&b, "%%%02X", c)
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// NodeActivity is one node's share of the steady-state solution.
type NodeActivity struct {
	// Name is the platform node name.
	Name string
	// Alpha is the fraction of each time-unit the node computes.
	Alpha rat.Rat
	// Rate is the node's tasks per time-unit, alpha/w (zero for
	// forwarder-only nodes).
	Rate rat.Rat
}

// LinkActivity is one directed link's share of the steady-state
// solution. Platforms may carry parallel links, so entries are an
// ordered slice (platform edge order), not a map.
type LinkActivity struct {
	From, To string
	// Busy is the fraction of each time-unit the link transfers data.
	Busy rat.Rat
}

// Result is a solved steady-state problem on a concrete platform.
// All quantities are exact rationals; Check on the underlying
// internal solution has already re-verified the paper's equations
// (one-port constraints, conservation laws) before the Result is
// returned, so a non-nil Result is certified feasible.
type Result struct {
	// Solver is the Name() of the solver that produced the result.
	Solver string
	// Problem is the registered problem name.
	Problem string
	// Model is the port model the result was computed under.
	Model PortModel
	// Platform is the solved platform (immutable by convention).
	Platform *platform.Platform
	// Fingerprint is the canonical content hash of Platform (see
	// Fingerprint); together with Solver it identifies the result.
	Fingerprint string
	// Throughput is the problem's objective: ntask(G) for
	// masterslave, TP for the distribution problems. For "multicast"
	// (max-operator) it is an upper bound, possibly unachievable.
	Throughput rat.Rat
	// Nodes holds per-node compute activity (masterslave only; nil
	// for the distribution problems, whose LPs have no alpha).
	Nodes []NodeActivity
	// Links holds per-link busy fractions in platform edge order.
	Links []LinkActivity
	// Trees is, for multicast-trees only, the number of candidate
	// Steiner arborescences enumerated by the exact packing.
	Trees int
	// Pivots is the simplex pivot count of the underlying LP solve
	// and WarmStarted reports whether that solve started from a warm
	// basis (see the WarmStart option). A warm-started solve returns a
	// certified optimal vertex that can differ from the cold solve's
	// when the optimum is not unique — same exact Throughput, same
	// verified feasibility, possibly different activity variables.
	Pivots      int
	WarmStarted bool
	// FloatPivots, RepairPivots and CertifiedCold report the
	// float-first certification outcome when the FloatFirst option was
	// used (see lp.SolveInfo): float64 search pivots, exact pivots
	// spent repairing the float basis, and whether certification was
	// abandoned for a pure-exact re-solve. All zero otherwise.
	FloatPivots   int
	RepairPivots  int
	CertifiedCold bool

	basis *lp.Basis // optimal LP basis, for warm-started re-solves
	raw   any       // underlying internal/core solution, for reconstruction
}

// Basis returns the optimal basis of the LP behind this result (nil
// for solvers that do not expose one). Feed it to the WarmStart
// solve option when
// solving a structurally identical platform — same node/edge counts
// and the same spec — to re-solve in a handful of pivots.
// pkg/steady/batch does this automatically for sweep families.
func (r *Result) Basis() *lp.Basis { return r.basis }

// ThroughputFloat returns the objective as the nearest float64, for
// display; exact comparisons must use Throughput.
func (r *Result) ThroughputFloat() float64 { return r.Throughput.Float64() }

// Solver is a reusable steady-state problem that can be applied to
// any platform. Implementations must be safe for concurrent use by
// multiple goroutines: the batch engine calls Solve from its worker
// pool.
type Solver interface {
	// Name identifies the solver instance, including its parameters;
	// it is part of the batch engine's cache key.
	Name() string
	// Solve runs the problem on p and returns the certified result.
	// Solve honors ctx cancellation; the platform is not mutated.
	// Options tune the one call: WarmStart seeds the LP basis,
	// OnSolveDone registers a completion hook. Implementations should
	// resolve the options with NewSolveConfig and call its Done
	// exactly once when their computation has truly finished (the
	// built-in solvers do) — pkg/steady/server's concurrency gate
	// depends on it.
	Solve(ctx context.Context, p *platform.Platform, opts ...SolveOption) (*Result, error)
}

// Factory builds a Solver from a Spec; it validates the spec (e.g.
// scatter requires targets) but resolves node names only at Solve
// time.
type Factory func(Spec) (Solver, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register makes a problem available to New. It panics on a
// duplicate or empty name, mirroring database/sql.Register.
func Register(problem string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if problem == "" || f == nil {
		panic("steady: Register with empty problem or nil factory")
	}
	if _, dup := registry[problem]; dup {
		panic("steady: Register called twice for problem " + problem)
	}
	registry[problem] = f
}

// Problems returns the registered problem names, sorted.
func Problems() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds a Solver for the given spec from the registry. A
// rejected spec reports ErrUnknownProblem or ErrBadSpec (match with
// errors.Is).
func New(spec Spec) (Solver, error) {
	regMu.RLock()
	f, ok := registry[spec.Problem]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %s)",
			ErrUnknownProblem, spec.Problem, strings.Join(Problems(), ", "))
	}
	if spec.Model != SendAndReceive && spec.Model != SendOrReceive {
		return nil, fmt.Errorf("%w: undefined port model %d", ErrBadSpec, spec.Model)
	}
	return f(spec)
}

// builtin is the Solver for all built-in problems: a spec plus a
// solve function over resolved node indices and LP options (the
// warm-start hint from the context, when present).
type builtin struct {
	spec Spec
	run  func(p *platform.Platform, root int, targets []int, spec Spec, opts *lp.Options) (*Result, error)
}

func (b *builtin) Name() string { return b.spec.name() }

func (b *builtin) Solve(ctx context.Context, p *platform.Platform, solveOpts ...SolveOption) (*Result, error) {
	cfg := NewSolveConfig(ctx, solveOpts...)
	if p == nil {
		cfg.Done()
		return nil, fmt.Errorf("steady: nil platform")
	}
	if err := ctx.Err(); err != nil {
		cfg.Done()
		return nil, err
	}
	root, err := resolveNode(p, b.spec.Root)
	if err != nil {
		cfg.Done()
		return nil, err
	}
	targets, err := resolveTargets(p, b.spec.Targets)
	if err != nil {
		cfg.Done()
		return nil, err
	}
	opts := cfg.lpOptions()
	// The exact simplex is synchronous; run it aside so cancellation
	// returns promptly. An abandoned solve finishes in the background
	// and is discarded (the platform is never mutated); the
	// completion hooks (OnSolveDone) fire only once it has.
	type reply struct {
		res *Result
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		res, err := b.run(p, root, targets, b.spec, opts)
		ch <- reply{res, err}
	}()
	select {
	case <-ctx.Done():
		go func() {
			<-ch
			cfg.Done()
		}()
		return nil, ctx.Err()
	case out := <-ch:
		cfg.Done()
		if out.err != nil {
			return nil, out.err
		}
		out.res.Solver = b.spec.name()
		out.res.Problem = b.spec.Problem
		out.res.Model = b.spec.Model
		out.res.Platform = p
		out.res.Fingerprint = Fingerprint(p)
		return out.res, nil
	}
}

// resolveNode maps a node name to its index; empty means node 0.
func resolveNode(p *platform.Platform, name string) (int, error) {
	if name == "" {
		return 0, nil
	}
	id := p.NodeByName(name)
	if id < 0 {
		return 0, fmt.Errorf("%w: unknown node %q", ErrNoSuchNode, name)
	}
	return id, nil
}

func resolveTargets(p *platform.Platform, names []string) ([]int, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]int, 0, len(names))
	for _, name := range names {
		id := p.NodeByName(strings.TrimSpace(name))
		if id < 0 {
			return nil, fmt.Errorf("%w: unknown target %q", ErrNoSuchNode, name)
		}
		out = append(out, id)
	}
	return out, nil
}

func nodeActivities(p *platform.Platform, alpha []rat.Rat) []NodeActivity {
	out := make([]NodeActivity, p.NumNodes())
	for i := range out {
		out[i] = NodeActivity{Name: p.Name(i), Alpha: alpha[i]}
		if w := p.Weight(i); !w.Inf {
			out[i].Rate = alpha[i].Div(w.Val)
		}
	}
	return out
}

func linkActivities(p *platform.Platform, s []rat.Rat) []LinkActivity {
	out := make([]LinkActivity, p.NumEdges())
	for e := range out {
		ed := p.Edge(e)
		out[e] = LinkActivity{From: p.Name(ed.From), To: p.Name(ed.To), Busy: s[e]}
	}
	return out
}

// needTargets validates at New time that the spec names targets.
func needTargets(spec Spec) error {
	if len(spec.Targets) == 0 {
		return fmt.Errorf("%w: %s requires targets", ErrBadSpec, spec.Problem)
	}
	return nil
}

// baseModelOnly rejects the send-or-receive model for problems whose
// LPs are only formulated under the base model.
func baseModelOnly(spec Spec) error {
	if spec.Model != SendAndReceive {
		return fmt.Errorf("%w: %s supports only the send-and-receive model", ErrBadSpec, spec.Problem)
	}
	return nil
}

func fromScatter(sc *core.Scatter) *Result {
	return &Result{
		Throughput:    sc.Throughput,
		Links:         linkActivities(sc.P, sc.S),
		Pivots:        sc.LP.Pivots,
		WarmStarted:   sc.LP.WarmStarted,
		FloatPivots:   sc.LP.FloatPivots,
		RepairPivots:  sc.LP.RepairPivots,
		CertifiedCold: sc.LP.CertifiedCold,
		basis:         sc.Basis,
		raw:           sc,
	}
}

func init() {
	Register("masterslave", func(spec Spec) (Solver, error) {
		return &builtin{spec: spec, run: func(p *platform.Platform, root int, _ []int, spec Spec, opts *lp.Options) (*Result, error) {
			ms, err := core.SolveMasterSlavePortOpts(p, root, spec.Model.core(), opts)
			if err != nil {
				return nil, err
			}
			return &Result{
				Throughput:    ms.Throughput,
				Nodes:         nodeActivities(p, ms.Alpha),
				Links:         linkActivities(p, ms.S),
				Pivots:        ms.LP.Pivots,
				WarmStarted:   ms.LP.WarmStarted,
				FloatPivots:   ms.LP.FloatPivots,
				RepairPivots:  ms.LP.RepairPivots,
				CertifiedCold: ms.LP.CertifiedCold,
				basis:         ms.Basis,
				raw:           ms,
			}, nil
		}}, nil
	})
	Register("scatter", func(spec Spec) (Solver, error) {
		if err := needTargets(spec); err != nil {
			return nil, err
		}
		return &builtin{spec: spec, run: func(p *platform.Platform, root int, targets []int, spec Spec, opts *lp.Options) (*Result, error) {
			sc, err := core.SolveScatterPortOpts(p, root, targets, spec.Model.core(), opts)
			if err != nil {
				return nil, err
			}
			return fromScatter(sc), nil
		}}, nil
	})
	Register("multicast", func(spec Spec) (Solver, error) {
		if err := needTargets(spec); err != nil {
			return nil, err
		}
		if err := baseModelOnly(spec); err != nil {
			return nil, err
		}
		return &builtin{spec: spec, run: func(p *platform.Platform, root int, targets []int, _ Spec, opts *lp.Options) (*Result, error) {
			sc, err := core.SolveMulticastBoundOpts(p, root, targets, opts)
			if err != nil {
				return nil, err
			}
			return fromScatter(sc), nil
		}}, nil
	})
	Register("multicast-sum", func(spec Spec) (Solver, error) {
		if err := needTargets(spec); err != nil {
			return nil, err
		}
		if err := baseModelOnly(spec); err != nil {
			return nil, err
		}
		return &builtin{spec: spec, run: func(p *platform.Platform, root int, targets []int, _ Spec, opts *lp.Options) (*Result, error) {
			sc, err := core.SolveMulticastSumOpts(p, root, targets, opts)
			if err != nil {
				return nil, err
			}
			return fromScatter(sc), nil
		}}, nil
	})
	Register("multicast-trees", func(spec Spec) (Solver, error) {
		if err := needTargets(spec); err != nil {
			return nil, err
		}
		if err := baseModelOnly(spec); err != nil {
			return nil, err
		}
		return &builtin{spec: spec, run: func(p *platform.Platform, root int, targets []int, _ Spec, opts *lp.Options) (*Result, error) {
			pack, err := core.SolveTreePackingOpts(p, root, targets, opts)
			if err != nil {
				return nil, err
			}
			return &Result{
				Throughput:    pack.Throughput,
				Trees:         pack.NumTrees,
				Pivots:        pack.LP.Pivots,
				WarmStarted:   pack.LP.WarmStarted,
				FloatPivots:   pack.LP.FloatPivots,
				RepairPivots:  pack.LP.RepairPivots,
				CertifiedCold: pack.LP.CertifiedCold,
				basis:         pack.Basis,
				raw:           pack,
			}, nil
		}}, nil
	})
	Register("broadcast", func(spec Spec) (Solver, error) {
		if err := baseModelOnly(spec); err != nil {
			return nil, err
		}
		return &builtin{spec: spec, run: func(p *platform.Platform, root int, _ []int, _ Spec, opts *lp.Options) (*Result, error) {
			sc, err := core.SolveBroadcastBoundOpts(p, root, opts)
			if err != nil {
				return nil, err
			}
			return fromScatter(sc), nil
		}}, nil
	})
	Register("reduce", func(spec Spec) (Solver, error) {
		if err := baseModelOnly(spec); err != nil {
			return nil, err
		}
		return &builtin{spec: spec, run: func(p *platform.Platform, root int, _ []int, _ Spec, opts *lp.Options) (*Result, error) {
			sc, err := core.SolveReduceBoundOpts(p, root, opts)
			if err != nil {
				return nil, err
			}
			return fromScatter(sc), nil
		}}, nil
	})
}
