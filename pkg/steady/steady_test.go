package steady_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func mustSolve(t *testing.T, spec steady.Spec, p *platform.Platform) *steady.Result {
	t.Helper()
	solver, err := steady.New(spec)
	if err != nil {
		t.Fatalf("New(%+v): %v", spec, err)
	}
	res, err := solver.Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("%s: %v", solver.Name(), err)
	}
	return res
}

// TestMasterSlaveFigure1 pins the facade to the paper's §3.1 result:
// ntask(G) = 4/3 on the Figure 1 platform with master P1.
func TestMasterSlaveFigure1(t *testing.T) {
	p := platform.Figure1()
	res := mustSolve(t, steady.Spec{Problem: "masterslave", Root: "P1"}, p)
	if want := rat.New(4, 3); !res.Throughput.Equal(want) {
		t.Fatalf("throughput = %v, want %v", res.Throughput, want)
	}
	if len(res.Nodes) != p.NumNodes() || len(res.Links) != p.NumEdges() {
		t.Fatalf("activity sizes %d/%d, want %d/%d",
			len(res.Nodes), len(res.Links), p.NumNodes(), p.NumEdges())
	}
	// The per-node rates must sum back to the throughput (the
	// exact-rational invariant, re-checked through the facade view).
	sum := rat.Zero()
	for _, n := range res.Nodes {
		sum = sum.Add(n.Rate)
	}
	if !sum.Equal(res.Throughput) {
		t.Fatalf("sum of node rates %v != throughput %v", sum, res.Throughput)
	}
	if res.Fingerprint != steady.Fingerprint(p) {
		t.Fatalf("result fingerprint mismatch")
	}
	sch, err := res.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if !sch.Throughput.Equal(res.Throughput) {
		t.Fatalf("schedule throughput %v != LP %v", sch.Throughput, res.Throughput)
	}
	if len(sch.Slots) == 0 {
		t.Fatalf("no communication slots")
	}
}

// TestMulticastFamilyFigure2 pins the three multicast solvers to the
// Figure 2/3 counterexample: sum-LP 1/2 < tree packing 3/4 < bound 1.
func TestMulticastFamilyFigure2(t *testing.T) {
	p := platform.Figure2()
	spec := steady.Spec{Root: "P0", Targets: []string{"P5", "P6"}}
	for _, tc := range []struct {
		problem string
		want    rat.Rat
	}{
		{"multicast-sum", rat.New(1, 2)},
		{"multicast-trees", rat.New(3, 4)},
		{"multicast", rat.One()},
	} {
		spec.Problem = tc.problem
		res := mustSolve(t, spec, p)
		if !res.Throughput.Equal(tc.want) {
			t.Errorf("%s: TP = %v, want %v", tc.problem, res.Throughput, tc.want)
		}
	}
}

func TestBroadcastAndReduceFigure2(t *testing.T) {
	p := platform.Figure2()
	b := mustSolve(t, steady.Spec{Problem: "broadcast", Root: "P0"}, p)
	if want := rat.New(1, 2); !b.Throughput.Equal(want) {
		t.Fatalf("broadcast TP = %v, want %v", b.Throughput, want)
	}
	// Reduce runs on the reversed graph, so root it at a node with
	// incoming edges (Figure 2's P0 is a pure source).
	r := mustSolve(t, steady.Spec{Problem: "reduce", Root: "P1"}, platform.Figure1())
	if r.Throughput.Sign() <= 0 {
		t.Fatalf("reduce TP = %v, want > 0", r.Throughput)
	}
}

func TestScatterReconstruct(t *testing.T) {
	p := platform.Figure1()
	res := mustSolve(t, steady.Spec{Problem: "scatter", Root: "P1", Targets: []string{"P4", "P5"}}, p)
	sch, err := res.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if !sch.Throughput.Equal(res.Throughput) {
		t.Fatalf("schedule throughput %v != LP %v", sch.Throughput, res.Throughput)
	}
}

// TestSendOrReceiveModel exercises the §5.1.1 port model end to end:
// the LP bound exists but only the greedy evaluation is offered.
func TestSendOrReceiveModel(t *testing.T) {
	p := platform.Figure1()
	res := mustSolve(t, steady.Spec{Problem: "masterslave", Root: "P1", Model: steady.SendOrReceive}, p)
	if _, err := res.Reconstruct(); err == nil {
		t.Fatalf("Reconstruct under send-or-receive should fail")
	}
	ev, err := res.EvaluateGreedy()
	if err != nil {
		t.Fatalf("EvaluateGreedy: %v", err)
	}
	if !ev.Bound.Equal(res.Throughput) {
		t.Fatalf("bound %v != LP %v", ev.Bound, res.Throughput)
	}
	if ev.Achieved.Cmp(ev.Bound) > 0 {
		t.Fatalf("achieved %v exceeds bound %v", ev.Achieved, ev.Bound)
	}
}

// TestMulticastBoundNotReconstructible pins §4.3: the max-operator
// bound has no schedule, by design.
func TestMulticastBoundNotReconstructible(t *testing.T) {
	p := platform.Figure2()
	res := mustSolve(t, steady.Spec{Problem: "multicast", Root: "P0", Targets: []string{"P5", "P6"}}, p)
	if _, err := res.Reconstruct(); err == nil {
		t.Fatalf("multicast bound must not reconstruct")
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := steady.New(steady.Spec{Problem: "nope"}); err == nil {
		t.Errorf("unknown problem accepted")
	}
	if _, err := steady.New(steady.Spec{Problem: "scatter"}); err == nil {
		t.Errorf("scatter without targets accepted")
	}
	if _, err := steady.New(steady.Spec{Problem: "broadcast", Model: steady.SendOrReceive}); err == nil {
		t.Errorf("broadcast under send-or-receive accepted")
	}
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "ZZZ"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := solver.Solve(context.Background(), platform.Figure1()); err == nil {
		t.Errorf("unknown root accepted at solve time")
	}
}

func TestProblemsRegistry(t *testing.T) {
	got := strings.Join(steady.Problems(), " ")
	for _, want := range []string{"masterslave", "scatter", "multicast", "multicast-sum", "multicast-trees", "broadcast", "reduce"} {
		if !strings.Contains(got, want) {
			t.Errorf("Problems() = %q, missing %q", got, want)
		}
	}
}

func TestSolverNameEncodesSpec(t *testing.T) {
	a, _ := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	b, _ := steady.New(steady.Spec{Problem: "masterslave", Root: "P2"})
	c, _ := steady.New(steady.Spec{Problem: "masterslave", Root: "P1", Model: steady.SendOrReceive})
	if a.Name() == b.Name() || a.Name() == c.Name() || b.Name() == c.Name() {
		t.Fatalf("solver names collide: %q %q %q", a.Name(), b.Name(), c.Name())
	}
}

func TestSolveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	solver, _ := steady.New(steady.Spec{Problem: "masterslave"})
	if _, err := solver.Solve(ctx, platform.Figure1()); err == nil {
		t.Fatalf("canceled context accepted")
	}
}

// TestWithSolveDone pins the completion-hook contract the server's
// concurrency gate depends on: the hook fires exactly once per Solve
// call — at return for completed and immediately rejected solves,
// and for a canceled one no earlier than when the background LP (if
// it started) has exited.
func TestWithSolveDone(t *testing.T) {
	solver, _ := steady.New(steady.Spec{Problem: "masterslave"})
	hook := func() (context.Context, chan struct{}) {
		fired := make(chan struct{}, 2)
		return steady.WithSolveDone(context.Background(), func() {
			fired <- struct{}{}
		}), fired
	}
	expectOnce := func(name string, fired chan struct{}) {
		t.Helper()
		select {
		case <-fired:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: hook never fired", name)
		}
		select {
		case <-fired:
			t.Fatalf("%s: hook fired twice", name)
		case <-time.After(10 * time.Millisecond):
		}
	}

	ctx, fired := hook()
	if _, err := solver.Solve(ctx, platform.Figure1()); err != nil {
		t.Fatal(err)
	}
	expectOnce("completed solve", fired)

	ctx, fired = hook()
	if _, err := solver.Solve(ctx, nil); err == nil {
		t.Fatalf("nil platform accepted")
	}
	expectOnce("rejected solve", fired)

	ctx, fired = hook()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := solver.Solve(cctx, platform.Figure1()); err == nil {
		t.Fatalf("canceled context accepted")
	}
	expectOnce("pre-canceled solve", fired)

	// Cancel racing a running solve: whichever way the race falls,
	// the hook still fires exactly once.
	ctx, fired = hook()
	cctx, cancel = context.WithCancel(ctx)
	go cancel()
	solver.Solve(cctx, platform.Figure1())
	expectOnce("racing cancellation", fired)
}

func TestFingerprint(t *testing.T) {
	a, b := platform.Figure1(), platform.Figure1()
	if steady.Fingerprint(a) != steady.Fingerprint(b) {
		t.Fatalf("identical platforms fingerprint differently")
	}
	c := platform.Figure1().Clone()
	c.AddNode("extra", platform.WInt(3))
	if steady.Fingerprint(a) == steady.Fingerprint(c) {
		t.Fatalf("different platforms share a fingerprint")
	}
	if steady.Fingerprint(a) == steady.Fingerprint(platform.Figure2()) {
		t.Fatalf("Figure1 and Figure2 share a fingerprint")
	}
}

func TestExperimentsSuite(t *testing.T) {
	suite := steady.Experiments()
	if len(suite) < 17 {
		t.Fatalf("suite has %d experiments, want >= 17", len(suite))
	}
	for _, e := range suite {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
	}
}
